package gatewords

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// renderReport serializes a report with a pinned runtime so two runs of the
// same configuration are byte-comparable.
func renderReport(t *testing.T, d *Design, rep *Report, ev *Evaluation) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d, rep, ev, false, 42*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func observerCounters(t *testing.T, o *Observer) map[string]int64 {
	t.Helper()
	raw, err := o.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int64, len(doc.Counters))
	for _, c := range doc.Counters {
		out[c.Name] = c.Value
	}
	return out
}

// TestConcurrentIdentifySharedDesignAndObserver is the facade concurrency
// contract: one Design and one Observer shared by many simultaneous
// Identify calls — mixed sequential/parallel, with and without reduction
// verification, interleaved with baseline identification and evaluation —
// must produce exactly the reports the same configurations produce alone,
// and the shared Observer must end up with the precise sum of every run's
// work counters (no lost updates, no aliased recorders). Run under -race.
func TestConcurrentIdentifySharedDesignAndObserver(t *testing.T) {
	d, err := GenerateBenchmark("b08a")
	if err != nil {
		t.Fatal(err)
	}

	configs := []Options{
		{Workers: 1},
		{Workers: 4},
		{Workers: 1, VerifyReduction: true},
		{Workers: 4, VerifyReduction: true},
	}
	const runsPerConfig = 2

	// Expected outputs and counter totals, computed run-by-run in isolation.
	expected := make([][]byte, len(configs))
	wantCounters := map[string]int64{}
	for i, opt := range configs {
		solo := NewObserver()
		opt.Observer = solo
		rep, err := Identify(d, opt)
		if err != nil {
			t.Fatal(err)
		}
		ev := Evaluate(d, rep)
		expected[i] = renderReport(t, d, rep, &ev)
		for name, v := range observerCounters(t, solo) {
			wantCounters[name] += v * runsPerConfig
		}
	}

	shared := NewObserver()
	var wg sync.WaitGroup
	errs := make(chan error, len(configs)*runsPerConfig+2)
	for i, opt := range configs {
		for r := 0; r < runsPerConfig; r++ {
			wg.Add(1)
			go func(i int, opt Options) {
				defer wg.Done()
				opt.Observer = shared
				rep, err := Identify(d, opt)
				if err != nil {
					errs <- fmt.Errorf("config %d: %v", i, err)
					return
				}
				ev := Evaluate(d, rep)
				if got := renderReport(t, d, rep, &ev); !bytes.Equal(got, expected[i]) {
					errs <- fmt.Errorf("config %d: concurrent report differs from its solo run", i)
				}
			}(i, opt)
		}
	}
	// Readers and unrelated pipelines share the Design at the same time:
	// the baseline identifier, and a snapshot reader racing the writers.
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := IdentifyBaseline(d, 0); err != nil {
			errs <- fmt.Errorf("baseline: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := shared.Snapshot().MarshalJSON(); err != nil {
				errs <- fmt.Errorf("snapshot: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	got := observerCounters(t, shared)
	for name, want := range wantCounters {
		if got[name] != want {
			t.Errorf("shared observer counter %s = %d, want %d (sum of %d runs)",
				name, got[name], want, len(configs)*runsPerConfig)
		}
	}
}

// TestObserverMergeAndSnapshot pins the aggregation API under concurrency:
// per-run private observers merged into one must equal the shared-observer
// total, and a Snapshot is immutable while its source keeps recording.
func TestObserverMergeAndSnapshot(t *testing.T) {
	d, err := GenerateBenchmark("b03a")
	if err != nil {
		t.Fatal(err)
	}

	total := NewObserver()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			private := NewObserver()
			if _, err := Identify(d, Options{Observer: private}); err != nil {
				t.Error(err)
				return
			}
			total.Merge(private)
		}()
	}
	wg.Wait()

	solo := NewObserver()
	if _, err := Identify(d, Options{Observer: solo}); err != nil {
		t.Fatal(err)
	}
	want := observerCounters(t, solo)
	got := observerCounters(t, total)
	for name, v := range want {
		if got[name] != v*4 {
			t.Errorf("merged counter %s = %d, want %d", name, got[name], v*4)
		}
	}

	snap := total.Snapshot()
	before := observerCounters(t, snap)
	if _, err := Identify(d, Options{Observer: total}); err != nil {
		t.Fatal(err)
	}
	if after := observerCounters(t, snap); !mapsEqual(before, after) {
		t.Error("snapshot changed when its source recorded a new run")
	}
	total.Merge(total) // self-merge must be a no-op, not a deadlock or a double
	if doubled := observerCounters(t, total); !mapsEqual(doubled, observerCounters(t, total)) {
		t.Error("self-merge unstable")
	}
}

func mapsEqual(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
