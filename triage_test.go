package gatewords

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// triageTrojan is the textual implant for the seeded-trigger test: a 3-gate
// AND cone over rare internal signals — the classic low-testability trigger.
const triageTrojan = `
  wire troj_t1, troj_t2, troj_trig;
  AND4 TROJ1 (troj_t1, U101, U103, U105, U107);
  AND4 TROJ2 (troj_t2, troj_t1, U109, U111, U113);
  AND2 TROJ3 (troj_trig, troj_t2, U115);
`

// tamperedB14a generates b14a and splices the trigger in before endmodule.
func tamperedB14a(t *testing.T) *Design {
	t.Helper()
	clean, err := GenerateBenchmark("b14a")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := clean.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(sb.String(), "endmodule", triageTrojan+"endmodule", 1)
	d, err := ParseVerilogString("b14a_tampered", tampered)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestTriageSeededTrigger pins the acceptance criterion: on b14a with a
// seeded 3-gate trigger, at least one trigger gate ranks in the top-5
// suspects (in practice all three land there — the trigger's combination of
// extreme controllability cost, unobservability, and unique cone shape is
// exactly what the score measures).
func TestTriageSeededTrigger(t *testing.T) {
	rep, err := Triage(tamperedB14a(t), TriageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suspects) < 5 {
		t.Fatalf("only %d suspects", len(rep.Suspects))
	}
	found := 0
	for _, s := range rep.Suspects[:5] {
		if strings.HasPrefix(s.Gate, "TROJ") {
			found++
		}
	}
	if found == 0 {
		var names []string
		for _, s := range rep.Suspects[:5] {
			names = append(names, s.Gate)
		}
		t.Errorf("no trigger gate in top-5: %v", names)
	}
	if sev := rep.TopSeverity(); sev != "high" {
		t.Errorf("top severity = %q, want high", sev)
	}
}

// TestGoldenB14Triage pins the full b14a triage ranking against a checked-in
// golden file, and requires the JSON to be byte-identical between a
// sequential and a parallel identification run — the determinism contract of
// the whole stack. Regenerate with TRIAGE_GOLDEN_UPDATE=1.
func TestGoldenB14Triage(t *testing.T) {
	d, err := GenerateBenchmark("b14a")
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) []byte {
		rep, err := Triage(d, TriageOptions{Identify: Options{Workers: workers}})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := render(0)
	par := render(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("sequential and parallel triage differ (%d vs %d bytes)", len(seq), len(par))
	}

	golden := filepath.Join("testdata", "b14a_triage.golden.json")
	if os.Getenv("TRIAGE_GOLDEN_UPDATE") != "" {
		if err := os.WriteFile(golden, seq, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with TRIAGE_GOLDEN_UPDATE=1)", err)
	}
	if !bytes.Equal(seq, want) {
		t.Errorf("b14a triage ranking drifted from golden (%d vs %d bytes); regenerate with TRIAGE_GOLDEN_UPDATE=1 and review the diff",
			len(seq), len(want))
	}
}

// TestTriageObserver: the scoap/triage stages and counters thread through
// the shared Observer machinery.
func TestTriageObserver(t *testing.T) {
	d, err := GenerateBenchmark("b03a")
	if err != nil {
		t.Fatal(err)
	}
	observer := NewObserver()
	rep, err := Triage(d, TriageOptions{TopN: -1, Observer: observer})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(observer)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Stages []struct {
			Stage string  `json:"stage"`
			MS    float64 `json:"ms"`
			Spans int64   `json:"spans"`
		} `json:"stages"`
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	spans := map[string]int64{}
	for _, s := range doc.Stages {
		spans[s.Stage] = s.Spans
	}
	if spans["scoap"] != 1 || spans["triage"] != 1 {
		t.Errorf("stage spans scoap=%d triage=%d, want 1/1", spans["scoap"], spans["triage"])
	}
	counters := map[string]int64{}
	for _, c := range doc.Counters {
		counters[c.Name] = c.Value
	}
	if counters["scoap_iterations"] <= 0 {
		t.Errorf("scoap_iterations = %d, want > 0", counters["scoap_iterations"])
	}
	if got := counters["triage_suspects"]; got != int64(len(rep.Suspects)) {
		t.Errorf("triage_suspects = %d, want %d", got, len(rep.Suspects))
	}
	// The identification stages must have been recorded through the same
	// Observer (TriageOptions.Observer overrides Identify's).
	if spans["group"] == 0 {
		t.Error("identification stages were not threaded through the Observer")
	}
}

// TestTriageTopNAndSeverity: the cap and the severity bucketing.
func TestTriageTopNAndSeverity(t *testing.T) {
	d, err := GenerateBenchmark("b03a")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Triage(d, TriageOptions{TopN: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suspects) > 3 {
		t.Errorf("TopN=3 kept %d suspects", len(rep.Suspects))
	}
	for i := 1; i < len(rep.Suspects); i++ {
		if rep.Suspects[i].Score > rep.Suspects[i-1].Score {
			t.Errorf("suspects not sorted by score at %d", i)
		}
	}
	all, err := Triage(d, TriageOptions{TopN: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Suspects) > 0 && len(all.Suspects) < len(rep.Suspects) {
		t.Error("TopN=-1 returned fewer suspects than TopN=3")
	}
	for _, s := range all.Suspects {
		want := "low"
		switch {
		case s.Score >= 0.8:
			want = "high"
		case s.Score >= 0.5:
			want = "medium"
		}
		if s.Severity != want {
			t.Errorf("gate %s score %.4f severity %q, want %q", s.Gate, s.Score, s.Severity, want)
		}
	}
}
