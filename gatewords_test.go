package gatewords

import (
	"strings"
	"testing"
)

const tinyModule = `
module tiny (a, b, s, s2, \w_reg[0] , \w_reg[1] );
  input a, b, s, s2;
  output \w_reg[0] , \w_reg[1] ;
  wire x0, x1, y0, y1, d0, d1;
  NAND2 gx0 (x0, a, s);
  NAND2 gy0 (y0, b, s2);
  NAND2 gx1 (x1, b, s);
  NAND2 gy1 (y1, a, s2);
  NAND2 gb0 (d0, x0, y0);
  NAND2 gb1 (d1, x1, y1);
  DFF ff0 (\w_reg[0] , d0);
  DFF ff1 (\w_reg[1] , d1);
endmodule
`

func TestParseAndStats(t *testing.T) {
	d, err := ParseVerilogString("tiny.v", tinyModule)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "tiny" {
		t.Errorf("name %q", d.Name())
	}
	st := d.Stats()
	if st.DFFs != 2 || st.Gates != 6 || st.PIs != 4 || st.POs != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestParseError(t *testing.T) {
	_, err := ParseVerilogString("bad.v", "module m (a;")
	if err == nil {
		t.Fatal("bad module accepted")
	}
	if !strings.Contains(err.Error(), "bad.v") {
		t.Errorf("error lacks file name: %v", err)
	}
}

func TestReferenceWords(t *testing.T) {
	d, err := ParseVerilogString("tiny.v", tinyModule)
	if err != nil {
		t.Fatal(err)
	}
	refs := d.ReferenceWords()
	if len(refs) != 1 || refs[0].Name != "w_reg" {
		t.Fatalf("refs: %+v", refs)
	}
	if refs[0].Bits[0] != "d0" || refs[0].Bits[1] != "d1" {
		t.Errorf("bits: %v (must be D-input nets)", refs[0].Bits)
	}
}

func TestIdentifyAndEvaluate(t *testing.T) {
	d, err := ParseVerilogString("tiny.v", tinyModule)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(d, rep)
	if ev.ReferenceWords != 1 || ev.FullyFound != 1 {
		t.Errorf("evaluation: %+v", ev)
	}
	if ev.PerWord["w_reg"] != "fully-found" {
		t.Errorf("per-word: %+v", ev.PerWord)
	}
	base, err := IdentifyBaseline(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base.Technique != "shape-hashing" {
		t.Errorf("technique %q", base.Technique)
	}
	bev := Evaluate(d, base)
	if bev.FullyFound != 1 {
		t.Errorf("baseline on uniform word: %+v", bev)
	}
}

func TestFigure1EndToEnd(t *testing.T) {
	d, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Identify(d, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(d, rep)
	if ev.FullyFound != ev.ReferenceWords {
		t.Fatalf("figure 1: %d/%d fully found", ev.FullyFound, ev.ReferenceWords)
	}
	if len(rep.ControlSignalsUsed) == 0 {
		t.Error("no control signals used on Figure 1")
	}
	if len(rep.Trace) == 0 {
		t.Error("trace requested but empty")
	}
	base, err := IdentifyBaseline(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	bev := Evaluate(d, base)
	if bev.FullyFound >= ev.FullyFound {
		t.Errorf("baseline (%d) must trail the technique (%d) on Figure 1",
			bev.FullyFound, ev.FullyFound)
	}
}

func TestReduceFacade(t *testing.T) {
	d, err := GenerateBenchmark("b08")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assignment := map[string]bool{}
	for _, w := range rep.Words {
		for n, v := range w.Assignment {
			assignment[n] = v
		}
	}
	if len(assignment) == 0 {
		t.Fatal("no assignments harvested from b08")
	}
	reduced, err := Reduce(d, assignment)
	if err != nil {
		t.Fatal(err)
	}
	if reduced.Stats().Gates >= d.Stats().Gates {
		t.Error("reduction did not remove gates")
	}
	// The §2.1 integration claim: the baseline improves on the reduced
	// circuit.
	before, _ := IdentifyBaseline(d, 0)
	after, _ := IdentifyBaseline(reduced, 0)
	if Evaluate(reduced, after).FullyFound <= Evaluate(d, before).FullyFound {
		t.Error("baseline did not improve on the reduced circuit")
	}
}

func TestReduceUnknownNet(t *testing.T) {
	d, err := ParseVerilogString("tiny.v", tinyModule)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reduce(d, map[string]bool{"ghost": true}); err == nil {
		t.Error("unknown net accepted")
	}
}

func TestGenerateBenchmarkNames(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 12 {
		t.Fatalf("benchmarks: %v", names)
	}
	if _, err := GenerateBenchmark("b03"); err != nil {
		t.Errorf("short name: %v", err)
	}
	if _, err := GenerateBenchmark("bogus"); err == nil {
		t.Error("bogus benchmark accepted")
	}
}

func TestWriteVerilogRoundTrip(t *testing.T) {
	d, err := GenerateBenchmark("b03")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := d.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ParseVerilogString("b03.v", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != d.Stats() {
		t.Errorf("stats changed: %+v vs %+v", back.Stats(), d.Stats())
	}
	var dot strings.Builder
	if err := d.WriteDOT(&dot); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph") {
		t.Error("DOT output malformed")
	}
}

func TestMultiBitWords(t *testing.T) {
	d, err := ParseVerilogString("tiny.v", tinyModule)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rep.MultiBitWords() {
		if len(w.Bits) < 2 {
			t.Error("MultiBitWords returned a singleton")
		}
	}
}

func TestOptionsAblations(t *testing.T) {
	d, err := GenerateBenchmark("b08")
	if err != nil {
		t.Fatal(err)
	}
	full, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := Identify(d, Options{MaxAssign: 1, DisablePartialGroups: true})
	if err != nil {
		t.Fatal(err)
	}
	evF := Evaluate(d, full)
	evR := Evaluate(d, restricted)
	if evR.FullyFound > evF.FullyFound {
		t.Errorf("restricting options improved results: %d > %d", evR.FullyFound, evF.FullyFound)
	}
	if evR.FullyFound == evF.FullyFound {
		t.Error("b08 contains a pair-assignment word; MaxAssign=1 must lose it")
	}
}

func TestParseVerilogHierarchy(t *testing.T) {
	src := `
module cell2 (a, b, y);
  input a, b;
  output y;
  NAND2 g (y, a, b);
endmodule
module main2 (p, q, r, \acc_reg[0] , \acc_reg[1] );
  input p, q, r;
  output \acc_reg[0] , \acc_reg[1] ;
  wire d0, d1;
  cell2 u0 (.a(p), .b(q), .y(d0));
  cell2 u1 (.a(q), .b(r), .y(d1));
  DFF f0 (\acc_reg[0] , d0);
  DFF f1 (\acc_reg[1] , d1);
endmodule
`
	d, err := ParseVerilogHierarchy("hier.v", src, "")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "main2" {
		t.Errorf("top = %q", d.Name())
	}
	st := d.Stats()
	if st.Gates != 2 || st.DFFs != 2 {
		t.Errorf("stats: %+v", st)
	}
	rep, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(d, rep)
	if ev.FullyFound != 1 {
		t.Errorf("flattened word not found: %+v", ev)
	}
	// Explicit top selection.
	if _, err := ParseVerilogHierarchy("hier.v", src, "cell2"); err != nil {
		t.Errorf("explicit top: %v", err)
	}
	if _, err := ParseVerilogHierarchy("hier.v", src, "nope"); err == nil {
		t.Error("bogus top accepted")
	}
}
