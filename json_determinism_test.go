package gatewords

import (
	"bytes"
	"testing"
	"time"
)

// TestReportJSONDeterministic pins the serving surface's byte stability on a
// mid-size benchmark: identifying the same design twice — and once more with
// the parallel pipeline — must yield byte-identical report JSON once the one
// wall-clock field (runtime) is held fixed. This is what lets the service
// cache serve stored bytes as if it had re-run the pipeline, and what keeps
// map-iteration order out of assignments and per-word evaluation tables.
func TestReportJSONDeterministic(t *testing.T) {
	d, err := GenerateBenchmark("b14a")
	if err != nil {
		t.Fatal(err)
	}
	render := func(opt Options) []byte {
		rep, err := Identify(d, opt)
		if err != nil {
			t.Fatal(err)
		}
		ev := Evaluate(d, rep)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, d, rep, &ev, false, 7*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	first := render(Options{})
	second := render(Options{})
	if !bytes.Equal(first, second) {
		t.Error("two sequential runs serialized differently")
	}
	parallel := render(Options{Workers: 4})
	if !bytes.Equal(first, parallel) {
		t.Error("parallel run serialized differently from sequential")
	}
	if len(first) == 0 || !bytes.HasPrefix(bytes.TrimSpace(first), []byte("{")) {
		t.Fatalf("report is not a JSON object: %.60s", first)
	}
}

// TestObserverJSONDeterministicCountersOnly pins /metrics-style stability at
// the recorder level: two observers fed identical runs agree on every
// counter, gauge, and span count (wall times are scheduling noise and are
// the only permitted difference).
func TestObserverJSONDeterministicCountersOnly(t *testing.T) {
	d, err := GenerateBenchmark("b08a")
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() map[string]int64 {
		o := NewObserver()
		if _, err := Identify(d, Options{Observer: o}); err != nil {
			t.Fatal(err)
		}
		return observerCounters(t, o)
	}
	if a, b := runOnce(), runOnce(); !mapsEqual(a, b) {
		t.Errorf("identical runs produced different counters:\n%v\n%v", a, b)
	}
}
