package gatewords

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"gatewords/internal/bench"
	"gatewords/internal/scoap"
)

// scoapBenchFile is the committed SCOAP-engine throughput baseline emitted by
// `make bench-scoap` and schema-checked by TestBenchScoapJSONWellFormed on
// every test run.
const scoapBenchFile = "BENCH_scoap.json"

// scoapBenchDefaults are the analogs the committed baseline covers: the two
// mid-size benches where the fixed-point solver's throughput is meaningful
// but a regeneration still takes seconds, not minutes.
var scoapBenchDefaults = []string{"b14a", "b15a"}

type scoapBenchRow struct {
	Bench       string  `json:"bench"`
	Gates       int     `json:"gates"`
	Nets        int     `json:"nets"`
	Iterations  int64   `json:"iterations"`
	WidenedSCCs int     `json:"widened_sccs"`
	ComputeMS   float64 `json:"compute_ms"`
	GatesPerSec float64 `json:"gates_per_sec"`
}

type scoapBenchDoc struct {
	Note    string          `json:"note"`
	Benches []scoapBenchRow `json:"benches"`
}

// TestEmitScoapBench is the bench-scoap harness (see `make bench-scoap`): it
// times scoap.Compute — both dataflow passes, forward controllability and
// backward observability, to their fixed points — over the default analogs
// and writes the throughput rows to the JSON file named by BENCH_SCOAP_OUT.
// Without that variable it is skipped, so the regular test run stays fast.
// BENCH_SCOAP_BENCHES, when set, overrides the bench list — the CI smoke
// uses it to run one small analog against a throwaway file.
func TestEmitScoapBench(t *testing.T) {
	out := os.Getenv("BENCH_SCOAP_OUT")
	if out == "" {
		t.Skip("set BENCH_SCOAP_OUT to emit " + scoapBenchFile)
	}
	names := scoapBenchDefaults
	if subset := os.Getenv("BENCH_SCOAP_BENCHES"); subset != "" {
		names = nil
		for _, name := range strings.Split(subset, ",") {
			names = append(names, strings.TrimSpace(name))
		}
	}
	doc := scoapBenchDoc{
		Note: "scoap.Compute wall time and gate throughput (CC0/CC1 forward + CO backward to fixed point) per analog; gates counts combinational gates plus DFFs",
	}
	for _, name := range names {
		p, ok := bench.ProfileByName(name)
		if !ok {
			t.Fatalf("unknown bench profile %q", name)
		}
		gen, err := p.Generate()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Warm once so the measured run sees a hot allocator, then time the
		// real pass.
		scoap.Compute(gen.NL, scoap.Config{})
		start := time.Now()
		res := scoap.Compute(gen.NL, scoap.Config{})
		elapsed := time.Since(start)
		stats := gen.NL.ComputeStats()
		gates := stats.Gates + stats.DFFs
		ms := float64(elapsed.Microseconds()) / 1000
		row := scoapBenchRow{
			Bench:       name,
			Gates:       gates,
			Nets:        gen.NL.NetCount(),
			Iterations:  res.Iterations,
			WidenedSCCs: res.WidenedSCCs,
			ComputeMS:   ms,
			GatesPerSec: float64(gates) / elapsed.Seconds(),
		}
		doc.Benches = append(doc.Benches, row)
		t.Logf("%s: %d gates in %.1fms (%.0f gates/sec, %d iterations, %d widened SCCs)",
			name, gates, ms, row.GatesPerSec, res.Iterations, res.WidenedSCCs)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestBenchScoapJSONWellFormed guards the committed baseline: the file must
// parse, cover the default analogs in order, and carry sane rows. Timings are
// machine-dependent and are only checked for sanity (positive wall time and
// throughput, solver iterations at least one sweep, no widening on the acyclic
// analogs).
func TestBenchScoapJSONWellFormed(t *testing.T) {
	data, err := os.ReadFile(scoapBenchFile)
	if err != nil {
		t.Fatalf("missing committed baseline (run `make bench-scoap`): %v", err)
	}
	var doc scoapBenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("%s: %v", scoapBenchFile, err)
	}
	if len(doc.Benches) != len(scoapBenchDefaults) {
		t.Fatalf("%d benches, want %d (%v)", len(doc.Benches), len(scoapBenchDefaults), scoapBenchDefaults)
	}
	for i, row := range doc.Benches {
		if want := scoapBenchDefaults[i]; row.Bench != want {
			t.Errorf("bench[%d] = %q, want %q", i, row.Bench, want)
		}
		if row.Gates <= 0 || row.Nets <= 0 {
			t.Errorf("%s: degenerate size row: %+v", row.Bench, row)
		}
		if row.Iterations <= 0 {
			t.Errorf("%s: %d solver iterations, want > 0", row.Bench, row.Iterations)
		}
		if row.WidenedSCCs != 0 {
			t.Errorf("%s: %d widened SCCs — the analog suite is acyclic per scan stage, widening means the solver regressed", row.Bench, row.WidenedSCCs)
		}
		if row.ComputeMS <= 0 || row.GatesPerSec <= 0 {
			t.Errorf("%s: non-positive timing row: %+v", row.Bench, row)
		}
	}
}
