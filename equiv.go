package gatewords

import (
	"fmt"
	"sort"

	"gatewords/internal/eqcheck"
	"gatewords/internal/logic"
)

// EquivalenceOptions tunes the combinational equivalence checker behind
// CheckEquivalence. The zero value uses sensible defaults.
type EquivalenceOptions struct {
	// MaxConflicts caps each SAT query in solver conflicts (0 = default;
	// negative disables SAT, so undecided outputs report "unknown").
	MaxConflicts int
	// SimRounds is the number of 64-lane random simulation rounds run
	// before SAT (0 = default; negative skips simulation).
	SimRounds int
	// Restarts is the Luby restart base interval of the CDCL engine, in
	// conflicts (0 = default; negative disables restarts).
	Restarts int
	// NoLearn selects the legacy non-learning DPLL engine instead of the
	// incremental CDCL default — slower, but an independent implementation
	// useful for cross-checking a surprising verdict.
	NoLearn bool
}

// OutputEquivalence is the verdict for one matched observable: a primary
// output, or a flip-flop next-state function named "ff:" + the gate name.
type OutputEquivalence struct {
	Name string `json:"name"`
	// Verdict is "equivalent", "not-equivalent" or "unknown".
	Verdict string `json:"verdict"`
	// Stage is the pipeline stage that decided: "strash", "sim" or "sat".
	Stage string `json:"stage"`
	// Cex assigns the shared inputs of a refuted output so the two designs
	// disagree on it.
	Cex map[string]bool `json:"cex,omitempty"`
}

// EquivalenceReport is the outcome of comparing two designs output by
// output.
type EquivalenceReport struct {
	// Outputs holds one verdict per name-matched observable, in
	// deterministic order.
	Outputs []OutputEquivalence `json:"outputs"`
	// OnlyInA / OnlyInB list observables present in just one design; they
	// are reported, not compared.
	OnlyInA []string `json:"only_in_a,omitempty"`
	OnlyInB []string `json:"only_in_b,omitempty"`
}

// Verdict aggregates: "not-equivalent" if any output is refuted, else
// "unknown" if any is undecided, else "equivalent".
func (r *EquivalenceReport) Verdict() string {
	worst := "equivalent"
	for _, o := range r.Outputs {
		switch o.Verdict {
		case "not-equivalent":
			return "not-equivalent"
		case "unknown":
			worst = "unknown"
		}
	}
	return worst
}

// CheckEquivalence proves or refutes combinational equivalence of two
// designs, observable by observable. Flip-flops are cut: each next-state
// function is compared as an output and each flip-flop's current state is a
// free input, so the check is one time-frame (sequential equivalence is out
// of scope). Like-named inputs are identified; pin forces named nets to
// constants in both designs before comparison (the nets "$const0" and
// "$const1" are always pinned, matching the tie-off convention of Reduce).
// An error means the designs could not be compared at all — no shared
// observables, or a netlist the AIG cannot model (combinational cycles).
func CheckEquivalence(a, b *Design, pin map[string]bool, opt EquivalenceOptions) (*EquivalenceReport, error) {
	pins := make(map[string]logic.Value, len(pin))
	for name, v := range pin {
		if _, ok := a.nl.NetByName(name); !ok {
			if _, ok := b.nl.NetByName(name); !ok {
				return nil, fmt.Errorf("gatewords: pinned net %q exists in neither design", name)
			}
		}
		if v {
			pins[name] = logic.One
		} else {
			pins[name] = logic.Zero
		}
	}
	res, err := eqcheck.CheckNetlists(a.nl, b.nl, pins, eqcheck.Options{
		MaxConflicts: opt.MaxConflicts,
		SimRounds:    opt.SimRounds,
		Restarts:     opt.Restarts,
		NoLearn:      opt.NoLearn,
	})
	if err != nil {
		return nil, err
	}
	rep := &EquivalenceReport{}
	for _, oc := range res.Outputs {
		rep.Outputs = append(rep.Outputs, OutputEquivalence{
			Name:    oc.Name,
			Verdict: oc.Result.Verdict.String(),
			Stage:   oc.Result.Stage,
			Cex:     oc.Result.Cex,
		})
	}
	rep.OnlyInA = append(rep.OnlyInA, res.OnlyInA...)
	rep.OnlyInB = append(rep.OnlyInB, res.OnlyInB...)
	sort.Strings(rep.OnlyInA)
	sort.Strings(rep.OnlyInB)
	return rep, nil
}
