package gatewords

import (
	"gatewords/internal/cone"
	"gatewords/internal/netlist"
)

// Thin indirections so bench_test.go reads cleanly.

func coneInterner() *cone.Interner { return cone.NewInterner() }

func coneBuilder(nl *netlist.Netlist, it *cone.Interner) *cone.Builder {
	return cone.NewBuilder(nl, it, cone.DefaultDepth)
}
