package gatewords

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"gatewords/internal/group"
	"gatewords/internal/guard"
)

// TestFaultIsolationB14a is the acceptance-level isolation check on the b14
// analog, through the public facade: inject a panic into one specific
// group's pipeline and require the remaining groups' words to be
// byte-identical to the clean sequential run, with exactly one entry in
// Report.Failures — in both the sequential and the parallel path (the
// latter exercised under `make faults`, which runs this file with -race).
func TestFaultIsolationB14a(t *testing.T) {
	if testing.Short() {
		t.Skip("b14a generation is slow; skipped with -short")
	}
	defer guard.Reset()
	d, err := GenerateBenchmark("b14a")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Words) == 0 {
		t.Fatal("clean b14a run found no words")
	}
	// Attribute each clean word to its adjacency group (a word's bits never
	// cross groups) and target the first group that contributes a word.
	groups := group.Adjacent(d.nl, group.Options{})
	groupOf := make(map[string]int)
	for gi, nets := range groups {
		for _, n := range nets {
			groupOf[d.nl.NetName(n)] = gi
		}
	}
	target := groupOf[clean.Words[0].Bits[0]]
	var expected [][]string
	for _, w := range clean.Words {
		if groupOf[w.Bits[0]] != target {
			expected = append(expected, w.Bits)
		}
	}
	if len(expected) == len(clean.Words) {
		t.Fatalf("target group %d contributes no words; bad target choice", target)
	}
	for _, workers := range []int{1, 4} {
		guard.Reset()
		guard.Plant("match", target)
		rep, err := Identify(d, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rep.Failures) != 1 {
			t.Fatalf("workers=%d: Report.Failures = %v, want exactly one", workers, rep.Failures)
		}
		if f := rep.Failures[0]; f.Group != target || f.Stage != "match" || f.Stack == "" {
			t.Fatalf("workers=%d: failure %+v, want group %d stage match with a stack", workers, f, target)
		}
		var surviving [][]string
		for _, w := range rep.Words {
			surviving = append(surviving, w.Bits)
		}
		if !reflect.DeepEqual(surviving, expected) {
			t.Fatalf("workers=%d: surviving words differ from the clean run minus group %d:\ngot  %d words\nwant %d words",
				workers, target, len(surviving), len(expected))
		}
	}
}

// TestFaultFacadeSurfacesFailures checks the public API end of the chain:
// a recovered group panic reaches Report.Failures with the same fields the
// core recorded, and the words facade still returns the surviving words.
func TestFaultFacadeSurfacesFailures(t *testing.T) {
	defer guard.Reset()
	d, err := ParseVerilogFile("testdata/counter_style.v")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	guard.Plant("match", guard.AnyGroup)
	rep, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("Report.Failures = %v, want exactly one", rep.Failures)
	}
	f := rep.Failures[0]
	if f.Stage != "match" || f.Message == "" || f.Stack == "" {
		t.Fatalf("facade failure lost fields: %+v", f)
	}
	if len(rep.Words) >= len(clean.Words) && len(clean.Words) > 0 {
		// counter_style has a single group, so its failure drops all words.
		t.Errorf("faulted run kept %d words, clean %d", len(rep.Words), len(clean.Words))
	}
}

// TestLenientMalformedGateDoesNotPanicIdentify is the end-to-end lenient
// regression: a leniently parsed netlist may carry a bad-arity gate, and
// when an assignment trial's constant propagation reaches it, the reduce
// layer must fail that trial with an error instead of panicking out of
// logic.Eval. The pipeline keeps going and still reports words.
func TestLenientMalformedGateDoesNotPanicIdentify(t *testing.T) {
	src, err := os.ReadFile("testdata/counter_style.v")
	if err != nil {
		t.Fatal(err)
	}
	// Hang a one-input NAND (illegal arity; lenient parse keeps it) off the
	// control signal k1, inside the fanout every trial propagates through.
	broken := strings.Replace(string(src), "endmodule",
		"  wire zbad;\n  nand UBAD (zbad, k1);\nendmodule", 1)
	d, err := ParseVerilogLenient("broken_counter.v", broken)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 0 {
		// The malformed gate must surface as a failed trial, not a recovered
		// panic: panics would mean the TryEval routing regressed.
		t.Fatalf("malformed gate escalated to a group failure: %v", rep.Failures)
	}
	if len(rep.Words) == 0 {
		t.Fatal("lenient netlist with one malformed gate lost all words")
	}
}
