package gatewords

import (
	"io"
	"time"

	"gatewords/internal/report"
)

// WriteJSON serializes an identification report as machine-readable JSON.
// ev may be nil (no golden reference available); includeAll keeps 1-bit
// words; runtime records the identification wall time.
func WriteJSON(w io.Writer, d *Design, rep *Report, ev *Evaluation, includeAll bool, runtime time.Duration) error {
	st := d.Stats()
	doc := &report.Document{
		Tool:      "gatewords",
		Module:    d.Name(),
		Technique: rep.Technique,
		Stats: report.Stats{
			Nets: st.Nets, Gates: st.Gates, DFFs: st.DFFs, PIs: st.PIs, POs: st.POs,
		},
		ControlSignalsUsed:  rep.ControlSignalsUsed,
		ControlSignalsFound: rep.ControlSignalsFound,
		Interrupted:         rep.Interrupted,
		DegradedGroups:      rep.DegradedGroups,
	}
	for _, f := range rep.Failures {
		doc.Failures = append(doc.Failures, report.GroupFailure{
			Group: f.Group, Stage: f.Stage, Message: f.Message,
		})
	}
	for _, dg := range rep.Degradations {
		doc.Degradations = append(doc.Degradations, report.Degradation{
			Group: dg.Group, Subgroup: dg.Subgroup, Reason: dg.Reason, Detail: dg.Detail,
		})
	}
	doc.SetRuntime(runtime)
	words := rep.Words
	if !includeAll {
		words = rep.MultiBitWords()
	}
	for _, w := range words {
		jw := report.Word{
			Bits:           w.Bits,
			Verified:       w.Verified,
			ControlSignals: w.ControlSignals,
		}
		if len(w.Assignment) > 0 {
			jw.Assignment = make(map[string]int, len(w.Assignment))
			for n, v := range w.Assignment {
				bit := 0
				if v {
					bit = 1
				}
				jw.Assignment[n] = bit
			}
		}
		doc.Words = append(doc.Words, jw)
	}
	if ev != nil {
		doc.Evaluation = &report.Evaluation{
			ReferenceWords:    ev.ReferenceWords,
			FullyFound:        ev.FullyFound,
			PartiallyFound:    ev.PartiallyFound,
			NotFound:          ev.NotFound,
			FullyFoundPct:     ev.FullyFoundPct,
			NotFoundPct:       ev.NotFoundPct,
			FragmentationRate: ev.FragmentationRate,
			PerWord:           ev.PerWord,
		}
	}
	return doc.Write(w)
}
