// Reconstruct demonstrates the end goal the paper's introduction sets out:
// from a flattened sea of gates back to word-level structure. A small
// datapath (accumulator with a muxed adder/xor) is synthesized to gates and
// flattened; the pipeline then:
//
//  1. identifies words (the registers' D-input groups),
//  2. propagates them to operand words, recovering the primary-input buses,
//  3. classifies the operators connecting the words,
//
// printing a reconstructed HDL-like description of the design.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"gatewords"
)

// The "unknown third-party netlist": a flattened accumulator core. In a
// real flow this file arrives from a vendor; here it is inlined.
const vendorNetlist = `
module acc_core (a, b, op, en,
                 \acc_reg[0] , \acc_reg[1] , \acc_reg[2] , \acc_reg[3] );
  input [3:0] a;
  input [3:0] b;
  input op, en;
  output \acc_reg[0] , \acc_reg[1] , \acc_reg[2] , \acc_reg[3] ;
  wire x0, x1, x2, x3;           // a ^ b
  wire c1, c2, c3;               // ripple carries
  wire g0, g1, g2;               // a & b
  wire s0, s1, s2, s3;           // a + b
  wire m0, m1, m2, m3;           // op ? (a^b) : (a+b)
  wire d0, d1, d2, d3;           // en ? mux : acc
  XOR2 ux0 (x0, a[0], b[0]);
  XOR2 ux1 (x1, a[1], b[1]);
  XOR2 ux2 (x2, a[2], b[2]);
  XOR2 ux3 (x3, a[3], b[3]);
  AND2 ug0 (g0, a[0], b[0]);
  AND2 ug1 (g1, a[1], b[1]);
  AND2 ug2 (g2, a[2], b[2]);
  BUF  uc1 (c1, g0);
  wire t1, t2;
  AND2 ut1 (t1, x1, c1);
  OR2  uo1 (c2, g1, t1);
  AND2 ut2 (t2, x2, c2);
  OR2  uo2 (c3, g2, t2);
  BUF  us0 (s0, x0);
  XOR2 us1 (s1, x1, c1);
  XOR2 us2 (s2, x2, c2);
  XOR2 us3 (s3, x3, c3);
  MUX2 um0 (m0, op, s0, x0);
  MUX2 um1 (m1, op, s1, x1);
  MUX2 um2 (m2, op, s2, x2);
  MUX2 um3 (m3, op, s3, x3);
  MUX2 ud0 (d0, en, \acc_reg[0] , m0);
  MUX2 ud1 (d1, en, \acc_reg[1] , m1);
  MUX2 ud2 (d2, en, \acc_reg[2] , m2);
  MUX2 ud3 (d3, en, \acc_reg[3] , m3);
  DFF ff0 (\acc_reg[0] , d0);
  DFF ff1 (\acc_reg[1] , d1);
  DFF ff2 (\acc_reg[2] , d2);
  DFF ff3 (\acc_reg[3] , d3);
endmodule
`

func main() {
	d, err := gatewords.ParseVerilogString("acc_core.v", vendorNetlist)
	if err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("flattened netlist: %d gates, %d flip-flops, %d nets\n\n", st.Gates, st.DFFs, st.Nets)

	// Stage 1: word identification.
	rep, err := gatewords.Identify(d, gatewords.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("identified words:")
	for _, w := range rep.MultiBitWords() {
		fmt.Printf("  %v\n", w.Bits)
	}

	// Stage 2: word propagation recovers operand words and input buses.
	prop := gatewords.Propagate(d, rep, gatewords.PropagateOptions{})
	var words [][]string
	fmt.Println("\npropagated words:")
	for _, pw := range prop {
		words = append(words, pw.Bits)
		if pw.Direction != "seed" {
			fmt.Printf("  %-8s round %d: %v\n", pw.Direction, pw.Round, pw.Bits)
		}
	}

	// Stage 3: keep only maximal words (propagation also surfaces
	// sub-words), then classify the operators connecting them.
	words = maximalWords(words)
	ops := gatewords.DiscoverOperators(d, words)
	fmt.Println("\nreconstructed word-level structure:")
	lines := make([]string, 0, len(ops))
	for _, op := range ops {
		lines = append(lines, "  "+op.HDL)
	}
	sort.Strings(lines)
	fmt.Println(strings.Join(lines, "\n"))

	// Bonus: emit the word-level dataflow graph for visualization.
	fmt.Println("\nword-level dataflow (Graphviz):")
	var dot strings.Builder
	if err := gatewords.WriteWordGraphDOT(&dot, d, words); err != nil {
		log.Fatal(err)
	}
	fmt.Print(dot.String())
}

// maximalWords drops words whose bit set is contained in another word's.
func maximalWords(words [][]string) [][]string {
	var out [][]string
	for i, w := range words {
		sub := false
		for j, v := range words {
			if i == j || len(w) > len(v) {
				continue
			}
			if len(w) == len(v) && i < j {
				continue // keep the first of equal sets
			}
			set := map[string]bool{}
			for _, n := range v {
				set[n] = true
			}
			all := true
			for _, n := range w {
				if !set[n] {
					all = false
					break
				}
			}
			if all {
				sub = true
				break
			}
		}
		if !sub {
			out = append(out, w)
		}
	}
	return out
}
