// Sweep explores the technique's two main knobs on a generated benchmark:
// the fanin-cone depth (the paper argues structural similarity survives only
// 2–4 levels of logic) and the simultaneous-assignment budget (the paper
// uses 1 then 2; 3 is its future-work extension). The output is a matrix of
// fully-found percentages plus the cohesion-rule ablation.
package main

import (
	"flag"
	"fmt"
	"log"

	"gatewords"
)

func main() {
	benchName := flag.String("bench", "b18", "benchmark to sweep")
	flag.Parse()

	d, err := gatewords.GenerateBenchmark(*benchName)
	if err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("benchmark %s: %d gates, %d FFs, %d reference words\n\n",
		d.Name(), st.Gates+st.DFFs, st.DFFs, len(d.ReferenceWords()))

	fmt.Println("fully-found %% by cone depth x assignment budget:")
	fmt.Printf("%8s", "")
	for _, ma := range []int{1, 2, 3} {
		fmt.Printf("  maxassign=%d", ma)
	}
	fmt.Println()
	for _, depth := range []int{2, 3, 4, 5} {
		fmt.Printf("depth=%-2d", depth)
		for _, ma := range []int{1, 2, 3} {
			rep, err := gatewords.Identify(d, gatewords.Options{Depth: depth, MaxAssign: ma})
			if err != nil {
				log.Fatal(err)
			}
			ev := gatewords.Evaluate(d, rep)
			fmt.Printf("  %10.1f%%", ev.FullyFoundPct)
		}
		fmt.Println()
	}

	fmt.Println("\ncohesive partial-group emission (Theta rule) ablation at depth 4:")
	for _, off := range []bool{false, true} {
		rep, err := gatewords.Identify(d, gatewords.Options{DisablePartialGroups: off})
		if err != nil {
			log.Fatal(err)
		}
		ev := gatewords.Evaluate(d, rep)
		label := "on "
		if off {
			label = "off"
		}
		fmt.Printf("  theta-rule %s: full %.1f%%  frag %.2f  notfound %.1f%%\n",
			label, ev.FullyFoundPct, ev.FragmentationRate, ev.NotFoundPct)
	}

	fmt.Println("\nbaseline for reference:")
	rep, err := gatewords.IdentifyBaseline(d, 0)
	if err != nil {
		log.Fatal(err)
	}
	ev := gatewords.Evaluate(d, rep)
	fmt.Printf("  shape-hashing: full %.1f%%  frag %.2f  notfound %.1f%%\n",
		ev.FullyFoundPct, ev.FragmentationRate, ev.NotFoundPct)
}
