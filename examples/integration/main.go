// Integration demonstrates the paper's §2.1 claim that the technique
// composes with other reverse-engineering tools: after the control-signal
// pipeline discovers a successful assignment, the circuit is reduced under
// that assignment and the *simplified* netlist is handed to the plain
// shape-hashing baseline — which now fully finds words it previously
// fragmented, because the dissimilar subtrees are gone.
package main

import (
	"fmt"
	"log"

	"gatewords"
)

func main() {
	d, err := gatewords.GenerateBenchmark("b08")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Baseline on the original circuit.
	baseRep, err := gatewords.IdentifyBaseline(d, 0)
	if err != nil {
		log.Fatal(err)
	}
	before := gatewords.Evaluate(d, baseRep)
	fmt.Printf("baseline on original circuit:  %d/%d fully found (%.1f%%)\n",
		before.FullyFound, before.ReferenceWords, before.FullyFoundPct)

	// 2. Run the control-signal pipeline to harvest successful assignments.
	rep, err := gatewords.Identify(d, gatewords.Options{})
	if err != nil {
		log.Fatal(err)
	}
	assignment := map[string]bool{}
	for _, w := range rep.Words {
		for net, v := range w.Assignment {
			assignment[net] = v
		}
	}
	if len(assignment) == 0 {
		fmt.Println("no control-signal assignments found; nothing to reduce")
		return
	}
	fmt.Printf("harvested control assignment:  %v\n", assignment)

	// 3. Reduce the circuit under the combined assignment and re-run the
	// baseline on the simplified netlist.
	reduced, err := gatewords.Reduce(d, assignment)
	if err != nil {
		log.Fatal(err)
	}
	so, sr := d.Stats(), reduced.Stats()
	fmt.Printf("reduction: %d -> %d gates, %d -> %d nets\n",
		so.Gates, sr.Gates, so.Nets, sr.Nets)

	redRep, err := gatewords.IdentifyBaseline(reduced, 0)
	if err != nil {
		log.Fatal(err)
	}
	// Score against the ORIGINAL design's reference words: the reduced
	// netlist keeps net names, so the evaluation carries over.
	after := gatewords.Evaluate(reduced, redRep)
	fmt.Printf("baseline on reduced circuit:   %d/%d fully found (%.1f%%)\n",
		after.FullyFound, after.ReferenceWords, after.FullyFoundPct)

	if after.FullyFound > before.FullyFound {
		fmt.Printf("\nthe reduced circuit let the baseline recover %d additional word(s)\n",
			after.FullyFound-before.FullyFound)
	}
}
