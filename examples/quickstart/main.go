// Quickstart walks the paper's own running example (Figure 1): a 3-bit
// word in an arbiter circuit whose bits share two similar fanin subtrees
// but diverge in a third. Shape hashing cannot group all three bits; the
// control-signal technique discovers the two decode nets feeding the
// dissimilar subtrees, assigns the controlling value 0, simplifies the
// circuit, and verifies the word.
package main

import (
	"fmt"
	"log"
	"strings"

	"gatewords"
)

func main() {
	d, err := gatewords.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("Figure-1 circuit: %d nets, %d gates, %d flip-flops\n\n", st.Nets, st.Gates, st.DFFs)

	fmt.Println("Golden reference words (from register names):")
	for _, r := range d.ReferenceWords() {
		fmt.Printf("  %-8s %d bits: %s\n", r.Name, len(r.Bits), strings.Join(r.Bits, " "))
	}

	// The baseline requires fully matching cones: it groups only the two
	// bits whose dissimilar subtrees happen to share a shape.
	baseRep, err := gatewords.IdentifyBaseline(d, 0)
	if err != nil {
		log.Fatal(err)
	}
	baseEv := gatewords.Evaluate(d, baseRep)
	fmt.Printf("\nshape-hashing baseline: %d/%d words fully found, fragmentation %.2f\n",
		baseEv.FullyFound, baseEv.ReferenceWords, baseEv.FragmentationRate)

	// The control-signal technique recovers the full word.
	rep, err := gatewords.Identify(d, gatewords.Options{Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	ev := gatewords.Evaluate(d, rep)
	fmt.Printf("control-signal technique: %d/%d words fully found, fragmentation %.2f\n\n",
		ev.FullyFound, ev.ReferenceWords, ev.FragmentationRate)

	for _, w := range rep.MultiBitWords() {
		if len(w.ControlSignals) == 0 {
			continue
		}
		fmt.Printf("word %s verified via control signal(s):\n", strings.Join(w.Bits, " "))
		for _, c := range w.ControlSignals {
			v := 0
			if w.Assignment[c] {
				v = 1
			}
			fmt.Printf("  %s = %d (controlling value of the NAND gates it feeds)\n", c, v)
		}
	}

	fmt.Println("\npipeline trace:")
	for _, line := range rep.Trace {
		fmt.Println("  ", line)
	}
}
