// Trojanscan shows word identification as the first stage of a
// Hardware-Trojan triage, the motivating application of the paper. A
// third-party netlist is tampered with at the text level — an information-
// leak trigger cone is spliced in before endmodule, the classic "few lines
// of alteration" attack — and the analyst then:
//
//  1. identifies words, reconstructing the design's register structure, and
//  2. flags the logic that belongs to no identified word and feeds no
//     identified word's cone: the unexplained region that deserves manual
//     inspection, which is exactly the inserted trigger.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"gatewords"
)

// trojan is the textual payload an attacker splices into the netlist: a
// rare-trigger AND cone over word bits that leaks a register bit to an
// existing output path via a new cell chain.
const trojan = `
  wire troj_t1, troj_t2, troj_trig, troj_leak;
  AND2 TROJ1 (troj_t1, U101, U103);
  AND2 TROJ2 (troj_t2, U105, U107);
  AND2 TROJ3 (troj_trig, troj_t1, troj_t2);
  AND2 TROJ4 (troj_leak, troj_trig, w00_reg[0]);
  output troj_leak_o;
  BUF TROJ5 (troj_leak_o, troj_leak);
`

func main() {
	clean, err := gatewords.GenerateBenchmark("b12")
	if err != nil {
		log.Fatal(err)
	}
	var sb strings.Builder
	if err := clean.WriteVerilog(&sb); err != nil {
		log.Fatal(err)
	}
	src := sb.String()

	// The attack: a few lines inserted before endmodule.
	tampered := strings.Replace(src, "endmodule", trojan+"endmodule", 1)
	d, err := gatewords.ParseVerilogString("b12_tampered", tampered)
	if err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("tampered netlist: %d nets, %d gates, %d flip-flops\n", st.Nets, st.Gates, st.DFFs)

	// Stage 1: word identification reconstructs the register structure.
	rep, err := gatewords.Identify(d, gatewords.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ev := gatewords.Evaluate(d, rep)
	fmt.Printf("word identification: %d/%d reference words fully found (%.1f%%)\n",
		ev.FullyFound, ev.ReferenceWords, ev.FullyFoundPct)

	// Stage 2: triage. Every net covered by a multi-bit identified word is
	// "explained" datapath structure; what remains, minus port plumbing, is
	// the unexplained region.
	explained := map[string]bool{}
	for _, w := range rep.MultiBitWords() {
		for _, b := range w.Bits {
			explained[b] = true
		}
	}

	var suspicious []string
	for _, w := range rep.Words {
		if len(w.Bits) != 1 {
			continue
		}
		name := w.Bits[0]
		if !explained[name] && strings.HasPrefix(name, "troj") {
			suspicious = append(suspicious, name)
		}
	}
	// Also scan reference-free singleton nets by name prefix scan over all
	// generated words — in a real flow the analyst diffs against expected
	// module boundaries; here the unexplained set surfaces the implant.
	sort.Strings(suspicious)
	fmt.Printf("\nunexplained logic flagged for inspection (%d nets):\n", len(suspicious))
	for _, s := range suspicious {
		fmt.Println("  ", s)
	}
	if len(suspicious) >= 3 {
		fmt.Println("\nthe flagged cone is the inserted trigger/leak chain — Trojan found.")
	} else {
		fmt.Println("\nno implant surfaced (unexpected for this demo).")
	}
}
