package gatewords

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"gatewords/internal/aig"
	"gatewords/internal/bench"
	"gatewords/internal/core"
	"gatewords/internal/eqcheck"
	"gatewords/internal/logic"
	"gatewords/internal/synth"
)

// benchSplitmix64 is a local copy of the deterministic pattern generator, so
// the sweep's control assignments are reproducible without math/rand.
type benchSplitmix64 struct{ s uint64 }

func (r *benchSplitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

type eqcheckBenchRow struct {
	Bench        string  `json:"bench"`
	Words        int     `json:"words"`
	ConesProved  int     `json:"cones_proved"`
	ConesRefuted int     `json:"cones_refuted"`
	ConesUnknown int     `json:"cones_unknown"`
	VerifyTotal  int     `json:"verify_total"`
	IdentifyMS   float64 `json:"identify_ms"`
	// The SAT-engine sweep: every output mitered against its resynthesized
	// form, each miter proved under SweepQuery/SweepCones distinct control
	// assignments as assumption solves on a per-cone warm solver.
	SweepCones  int     `json:"sweep_cones"`
	SweepQuery  int     `json:"sweep_queries"`
	SweepMS     float64 `json:"sweep_ms"`
	DpllSweepMS float64 `json:"dpll_sweep_ms"`
	// ConesPerSec is warm-CDCL sweep throughput (queries per second);
	// DpllConesPerSec runs the identical queries through the legacy engine,
	// which re-encodes per query. Speedup is their ratio.
	ConesPerSec     float64 `json:"cones_per_sec"`
	DpllConesPerSec float64 `json:"dpll_cones_per_sec"`
	Speedup         float64 `json:"speedup"`
	LearnedClauses  int     `json:"learned_clauses"`
	Restarts        int     `json:"restarts"`
	AssumpSolves    int     `json:"assumption_solves"`
	ModelsRejected  int     `json:"models_rejected"`
}

type eqcheckBenchReport struct {
	Note    string            `json:"note"`
	Benches []eqcheckBenchRow `json:"benches"`
}

// eqcheckBenchNames returns the bench subset: BENCH_EQCHECK_BENCHES as a
// comma-separated list, or the committed default set.
func eqcheckBenchNames() []string {
	if env := os.Getenv("BENCH_EQCHECK_BENCHES"); env != "" {
		var names []string
		for _, n := range strings.Split(env, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		return names
	}
	return []string{"b08", "b13", "b14", "b14a", "b15"}
}

// benchMiters miters the generated netlist against a second synthesis of the
// same word-level RTL with a different recipe (NAND-mapped muxes, fanin cap
// 2 instead of 3): the two mappings compute identical observables through
// different gate structure — re-associated reduction trees in particular —
// so the miters genuinely reach the SAT stage instead of folding away under
// structural hashing. Outputs are matched by name into one shared AIG, and
// miters whose support exceeds maxSupport are dropped so the no-learning
// DPLL baseline can still decide every query. Returns at most limit
// deduplicated miter literals.
func benchMiters(t *testing.T, gen *bench.Generated, g *aig.AIG, limit, maxSupport int) []aig.Lit {
	t.Helper()
	alt, err := gen.Resynthesize(synth.Options{MuxStyle: synth.MuxNand, MaxFanin: 2})
	if err != nil {
		t.Fatalf("%s: resynthesize: %v", gen.Profile.Name, err)
	}
	eff := map[string]logic.Value{"$const0": logic.Zero, "$const1": logic.One}
	fa, err := aig.AddFrame(g, gen.NL, eff)
	if err != nil {
		t.Fatalf("%s: lowering base: %v", gen.Profile.Name, err)
	}
	fb, err := aig.AddFrame(g, alt, eff)
	if err != nil {
		t.Fatalf("%s: lowering variant: %v", gen.Profile.Name, err)
	}
	seen := make(map[aig.Lit]bool)
	var miters []aig.Lit
	for _, name := range fa.OutputNames {
		lb, ok := fb.Outputs[name]
		if !ok {
			continue
		}
		m := g.Xor(fa.Outputs[name], lb)
		if m == aig.False || seen[m] {
			continue
		}
		if len(g.Support(m)) > maxSupport {
			continue
		}
		seen[m] = true
		miters = append(miters, m)
		if len(miters) >= limit {
			break
		}
	}
	return miters
}

// sweepFreeInputs is how many support inputs each sweep query leaves
// unconstrained: 2^16 residual assignments fit comfortably inside the DPLL
// baseline's first conflict budget yet force real search on every query.
const sweepFreeInputs = 16

// benchAssumps returns the k-th deterministic control assignment for miter
// mi: all but sweepFreeInputs of the miter's support inputs pinned to
// pseudo-random values. Pinning inputs of an UNSAT miter keeps it UNSAT, so
// every sweep query has a known answer — and the fixed residual search space
// keeps every query decidable for the no-learn DPLL baseline within its
// retry ladder while still demanding real search per query.
func benchAssumps(g *aig.AIG, m aig.Lit, mi, k int) []aig.Lit {
	support := g.Support(m)
	n := len(support) - sweepFreeInputs
	if n < 0 {
		n = 0
	}
	rng := benchSplitmix64{s: 0xb14_dac15<<32 ^ uint64(mi)<<16 ^ uint64(k)}
	assumps := make([]aig.Lit, 0, n)
	for j := 0; j < n; j++ {
		l := g.InputLit(support[j])
		if rng.next()&1 == 0 {
			l = l.Not()
		}
		assumps = append(assumps, l)
	}
	return assumps
}

// runSweep proves every miter under queriesPerCone distinct control
// assignments, one warm solver per cone, asserting every verdict Unsat: the
// incremental engine encodes the cone once and answers the rest as cheap
// assumption solves, while the no-learn baseline re-encodes and re-searches
// every query. It returns the wall time and the summed solver stats.
func runSweep(t *testing.T, bench string, g *aig.AIG, miters []aig.Lit, opt eqcheck.Options, queriesPerCone int) (time.Duration, eqcheck.Stats) {
	t.Helper()
	// Assumption vectors are precomputed so the timed region measures the
	// engines, not the support walks that build the query set.
	assumps := make([][][]aig.Lit, len(miters))
	for mi, m := range miters {
		assumps[mi] = make([][]aig.Lit, queriesPerCone)
		for k := 0; k < queriesPerCone; k++ {
			assumps[mi][k] = benchAssumps(g, m, mi, k)
		}
	}
	var sum eqcheck.Stats
	start := time.Now()
	for mi, m := range miters {
		solver := eqcheck.NewSolver(g, opt)
		for k := 0; k < queriesPerCone; k++ {
			r := solver.SolveUnder(m, assumps[mi][k])
			if r.Status != eqcheck.Unsat {
				t.Fatalf("%s: miter %d query %d = %v, want unsat (reduction unsound or budget too small)",
					bench, mi, k, r.Status)
			}
			sum.Conflicts += r.Stats.Conflicts
			sum.LearnedClauses += r.Stats.LearnedClauses
			sum.Restarts += r.Stats.Restarts
			sum.AssumptionSolves += r.Stats.AssumptionSolves
			sum.ModelsRejected += r.Stats.ModelsRejected
		}
	}
	return time.Since(start), sum
}

// TestEmitEqcheckBench is the bench-eqcheck harness (see `make
// bench-eqcheck`): it runs the identification pipeline with reduction
// verification on a slice of the benchmark suite, then benchmarks the SAT
// engine head to head — the incremental CDCL solver re-proving each dirty
// cone under a sweep of control assignments as warm assumption solves,
// against the legacy DPLL engine re-encoding every query from scratch — and
// writes the per-bench figures to the JSON file named by BENCH_EQCHECK_OUT.
// Without that variable it is skipped, so the regular test run stays fast.
// BENCH_EQCHECK_BENCHES selects a comma-separated bench subset.
func TestEmitEqcheckBench(t *testing.T) {
	out := os.Getenv("BENCH_EQCHECK_OUT")
	if out == "" {
		t.Skip("set BENCH_EQCHECK_OUT to emit BENCH_eqcheck.json")
	}
	const (
		miterCap       = 256
		maxSupport     = 24 // drop the handful of very wide cones
		queriesPerCone = 17 // 17 control assignments proved per cone
	)
	report := eqcheckBenchReport{
		Note: "Identify with Options.VerifyReduction (strash -> 64-lane sim -> incremental CDCL), then a SAT-engine sweep: each bench mitered output-by-output against a resynthesis of its RTL (NAND muxes, fanin cap 2), every miter proved under 17 control assignments — warm CDCL assumption solves (cones_per_sec) vs the legacy no-learn DPLL re-encoding per query (dpll_cones_per_sec)",
	}
	for _, name := range eqcheckBenchNames() {
		prof, ok := bench.ProfileByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		gen, err := prof.Generate()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		start := time.Now()
		res := core.Identify(gen.NL, core.Options{VerifyReduction: true})
		identify := time.Since(start)
		if res.Stats.ConesRefuted != 0 {
			t.Fatalf("%s: %d cones refuted — reduction unsound", name, res.Stats.ConesRefuted)
		}
		if res.Stats.ConesUnknown != 0 {
			t.Fatalf("%s: %d cones unknown — engine lost proofs the baseline had", name, res.Stats.ConesUnknown)
		}

		g := aig.New()
		miters := benchMiters(t, gen, g, miterCap, maxSupport)

		// SimRounds -1 measures the SAT engines themselves: no simulation
		// short-circuit on either side. The queries are identical in both
		// sweeps; only the engine differs.
		warmOpt := eqcheck.Options{SimRounds: -1, RetryUnknown: 2}
		sweepDur, sweepStats := runSweep(t, name, g, miters, warmOpt, queriesPerCone)
		dpllOpt := eqcheck.Options{SimRounds: -1, RetryUnknown: 2, NoLearn: true}
		dpllDur, _ := runSweep(t, name, g, miters, dpllOpt, queriesPerCone)

		queries := len(miters) * queriesPerCone
		r := eqcheckBenchRow{
			Bench:          name,
			Words:          len(res.Words),
			ConesProved:    res.Stats.ConesProved,
			ConesRefuted:   res.Stats.ConesRefuted,
			ConesUnknown:   res.Stats.ConesUnknown,
			VerifyTotal:    res.Stats.ConesProved + res.Stats.ConesRefuted + res.Stats.ConesUnknown,
			IdentifyMS:     float64(identify.Microseconds()) / 1000,
			SweepCones:     len(miters),
			SweepQuery:     queries,
			SweepMS:        float64(sweepDur.Microseconds()) / 1000,
			DpllSweepMS:    float64(dpllDur.Microseconds()) / 1000,
			LearnedClauses: sweepStats.LearnedClauses,
			Restarts:       sweepStats.Restarts,
			AssumpSolves:   sweepStats.AssumptionSolves,
			ModelsRejected: sweepStats.ModelsRejected,
		}
		if secs := sweepDur.Seconds(); secs > 0 && queries > 0 {
			r.ConesPerSec = float64(queries) / secs
		}
		if secs := dpllDur.Seconds(); secs > 0 && queries > 0 {
			r.DpllConesPerSec = float64(queries) / secs
		}
		if r.DpllConesPerSec > 0 {
			r.Speedup = r.ConesPerSec / r.DpllConesPerSec
		}
		report.Benches = append(report.Benches, r)
		t.Logf("%s: %d cones verified in %.1fms; sweep %d queries: cdcl %.1fms vs dpll %.1fms (%.1fx)",
			name, r.VerifyTotal, r.IdentifyMS, queries, r.SweepMS, r.DpllSweepMS, r.Speedup)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestBenchEqcheckJSONWellFormed guards the committed BENCH_eqcheck.json:
// schema intact, every bench sound (no refuted or undecided cones), a
// non-empty sweep everywhere, and the incremental engine at least 10x the
// legacy DPLL on the large benches — the figure this engine upgrade is
// pinned to.
func TestBenchEqcheckJSONWellFormed(t *testing.T) {
	raw, err := os.ReadFile("BENCH_eqcheck.json")
	if err != nil {
		t.Fatal(err)
	}
	var report eqcheckBenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Benches) == 0 {
		t.Fatal("no benches in BENCH_eqcheck.json")
	}
	large := map[string]bool{"b14": false, "b15": false}
	for _, r := range report.Benches {
		if r.ConesRefuted != 0 || r.ConesUnknown != 0 {
			t.Errorf("%s: refuted=%d unknown=%d, want 0/0", r.Bench, r.ConesRefuted, r.ConesUnknown)
		}
		if r.VerifyTotal == 0 || r.ConesProved != r.VerifyTotal {
			t.Errorf("%s: proved=%d of total=%d, want all proved and non-zero", r.Bench, r.ConesProved, r.VerifyTotal)
		}
		if r.SweepCones == 0 || r.SweepQuery == 0 || r.ConesPerSec <= 0 || r.DpllConesPerSec <= 0 {
			t.Errorf("%s: empty or untimed sweep: %+v", r.Bench, r)
		}
		if r.ModelsRejected != 0 {
			t.Errorf("%s: models_rejected=%d — solver bug recorded in the baseline", r.Bench, r.ModelsRejected)
		}
		if _, ok := large[r.Bench]; ok {
			large[r.Bench] = true
			if r.Speedup < 10 {
				t.Errorf("%s: speedup %.2fx, want >= 10x over the DPLL baseline", r.Bench, r.Speedup)
			}
			if r.ConesPerSec < 10*r.DpllConesPerSec {
				t.Errorf("%s: cones_per_sec %.0f < 10x dpll %.0f", r.Bench, r.ConesPerSec, r.DpllConesPerSec)
			}
		}
	}
	for name, present := range large {
		if !present {
			t.Errorf("bench %s missing from BENCH_eqcheck.json", name)
		}
	}
}
