package gatewords

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// TestEmitEqcheckBench is the bench-eqcheck harness (see `make
// bench-eqcheck`): it runs the identification pipeline with reduction
// verification on a slice of the benchmark suite and writes per-bench
// equivalence-checker throughput to the JSON file named by
// BENCH_EQCHECK_OUT. Without that variable it is skipped, so the regular
// test run stays fast.
func TestEmitEqcheckBench(t *testing.T) {
	out := os.Getenv("BENCH_EQCHECK_OUT")
	if out == "" {
		t.Skip("set BENCH_EQCHECK_OUT to emit BENCH_eqcheck.json")
	}
	type row struct {
		Bench        string  `json:"bench"`
		Words        int     `json:"words"`
		ConesProved  int     `json:"cones_proved"`
		ConesRefuted int     `json:"cones_refuted"`
		ConesUnknown int     `json:"cones_unknown"`
		VerifyTotal  int     `json:"verify_total"`
		IdentifyMS   float64 `json:"identify_ms"`
		ConesPerSec  float64 `json:"cones_per_sec"`
	}
	report := struct {
		Note    string `json:"note"`
		Benches []row  `json:"benches"`
	}{
		Note: "Identify with Options.VerifyReduction: every emitted word's rewritten bit cones proved against the original under the control assignment (strash -> 64-lane sim -> DPLL SAT)",
	}
	for _, name := range []string{"b08", "b13", "b14", "b14a"} {
		d, err := GenerateBenchmark(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		start := time.Now()
		rep, err := Identify(d, Options{VerifyReduction: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		elapsed := time.Since(start)
		rv := rep.ReductionVerification
		if rv == nil {
			t.Fatalf("%s: no verification report", name)
		}
		if rv.ConesRefuted != 0 {
			t.Fatalf("%s: %d cones refuted — reduction unsound", name, rv.ConesRefuted)
		}
		total := rv.ConesProved + rv.ConesRefuted + rv.ConesUnknown
		r := row{
			Bench:        name,
			Words:        len(rep.Words),
			ConesProved:  rv.ConesProved,
			ConesRefuted: rv.ConesRefuted,
			ConesUnknown: rv.ConesUnknown,
			VerifyTotal:  total,
			IdentifyMS:   float64(elapsed.Microseconds()) / 1000,
		}
		if secs := elapsed.Seconds(); secs > 0 && total > 0 {
			r.ConesPerSec = float64(total) / secs
		}
		report.Benches = append(report.Benches, r)
		t.Logf("%s: %d cones verified in %.1fms", name, total, r.IdentifyMS)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
