// Hand-written Synopsys-flavored netlist: a 4-bit loadable register with a
// synchronous three-way select (the Figure-1 phenomenon) plus a 3-bit
// uniform register, using drive-strength cell names and _N_ flattened
// register naming. Used by the repository's golden-file integration test.
module counter_style ( d0, d1, d2, d3, e0, e1, e2, e3, f0, f1, f2, f3,
                       p1, p2, p3, p4, t1, t2, m1,
                       g0, g1, g2, h0, h1, h2 );
  input d0, d1, d2, d3;
  input e0, e1, e2, e3;
  input f0, f1, f2, f3;
  input p1, p2, p3, p4, t1, t2, m1;
  input g0, g1, g2, h0, h1, h2;
  wire sel1, sel2, dec, k1;
  wire x0, x1, x2, x3;
  wire y0, y1, y2, y3;
  wire z0, z1, z2, z3, zi2, zi3;
  wire n10, n11, n12, n13;
  wire u0, u1, u2;
  wire n20, n21, n22;
  wire load_reg_0_, load_reg_1_, load_reg_2_, load_reg_3_;
  wire sum_reg_0_, sum_reg_1_, sum_reg_2_;

  // Shared selector decode (similar subtrees).
  NAND2X1 U1 (.Y(sel1), .A(t1), .B(t2));
  NAND2X1 U2 (.Y(sel2), .A(t1), .B(m1));

  // Control decode feeding only the dissimilar subtrees: k1 is the
  // relevant control signal, dec its dominated upstream net.
  NAND2X2 U3 (.Y(dec), .A(p1), .B(p2));
  NAND2X1 U4 (.Y(k1), .A(dec), .B(p3));

  // Similar subtrees.
  NAND2X1 U10 (.Y(x0), .A(d0), .B(sel1));
  NAND2X1 U11 (.Y(x1), .A(d1), .B(sel1));
  NAND2X1 U12 (.Y(x2), .A(d2), .B(sel1));
  NAND2X1 U13 (.Y(x3), .A(d3), .B(sel1));
  NAND2X1 U14 (.Y(y0), .A(e0), .B(sel2));
  NAND2X1 U15 (.Y(y1), .A(e1), .B(sel2));
  NAND2X1 U16 (.Y(y2), .A(e2), .B(sel2));
  NAND2X1 U17 (.Y(y3), .A(e3), .B(sel2));

  // Dissimilar subtrees, all killable by k1 = 0.
  NAND2X1 U20 (.Y(z0), .A(f0), .B(k1));
  NAND2X1 U21 (.Y(z1), .A(f1), .B(k1));
  NAND2X1 U22 (.Y(zi2), .A(f2), .B(p4));
  NAND2X1 U23 (.Y(z2), .A(zi2), .B(k1));
  NAND3X1 U24 (.Y(zi3), .A(f3), .B(p4), .C(m1));
  NAND2X1 U25 (.Y(z3), .A(zi3), .B(k1));

  // Word roots on adjacent lines.
  NAND3X1 U30 (.Y(n10), .A(x0), .B(y0), .C(z0));
  NAND3X1 U31 (.Y(n11), .A(x1), .B(y1), .C(z1));
  NAND3X1 U32 (.Y(n12), .A(x2), .B(y2), .C(z2));
  NAND3X1 U33 (.Y(n13), .A(x3), .B(y3), .C(z3));

  DFF U40 (.Q(load_reg_0_), .D(n10), .CK(p1));
  DFF U41 (.Q(load_reg_1_), .D(n11), .CK(p1));
  DFF U42 (.Q(load_reg_2_), .D(n12), .CK(p1));
  DFF U43 (.Q(load_reg_3_), .D(n13), .CK(p1));

  // Uniform word (both techniques find it).
  NOR2X1 U50 (.Y(u0), .A(g0), .B(sel1));
  NOR2X1 U51 (.Y(u1), .A(g1), .B(sel1));
  NOR2X1 U52 (.Y(u2), .A(g2), .B(sel1));
  NOR2X1 U60 (.Y(n20), .A(u0), .B(h0));
  NOR2X1 U61 (.Y(n21), .A(u1), .B(h1));
  NOR2X1 U62 (.Y(n22), .A(u2), .B(h2));
  DFF U70 (.Q(sum_reg_0_), .D(n20), .CK(p1));
  DFF U71 (.Q(sum_reg_1_), .D(n21), .CK(p1));
  DFF U72 (.Q(sum_reg_2_), .D(n22), .CK(p1));
endmodule
