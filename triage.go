package gatewords

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"gatewords/internal/cone"
	"gatewords/internal/netlist"
	"gatewords/internal/obs"
	"gatewords/internal/scoap"
)

// TriageOptions configures Triage. The zero value runs identification with
// default Options, scores with the default SCOAP sequential cost, and keeps
// the top DefaultTriageTop suspects.
type TriageOptions struct {
	// Identify configures the word-identification run whose emitted words
	// define the covered (explained) region. Its Observer field is
	// overridden by TriageOptions.Observer when that is non-nil.
	Identify Options
	// SeqCost is the SCOAP depth cost of crossing a flip-flop boundary
	// (default 1).
	SeqCost int
	// TopN caps the ranked suspect list (0 = DefaultTriageTop, negative =
	// unlimited).
	TopN int
	// Semantic also runs the NL4xx semantic lint rules (AIG + SAT proofs)
	// when gathering diagnostic evidence. Off by default: SAT effort on a
	// large netlist dwarfs the rest of triage.
	Semantic bool
	// Observer, when non-nil, collects stage wall times (scoap, triage, and
	// the identification stages) and the scoap_iterations,
	// scoap_widened_sccs, and triage_suspects counters.
	Observer *Observer
}

// DefaultTriageTop is the suspect-list cap when TriageOptions.TopN is zero.
const DefaultTriageTop = 25

// Suspect is one ranked gate outside the identified-word region. Score is
// the combined rank key in [0,1]; Scoap, Rarity, and DiagPoints are its
// components (see DESIGN.md §12 for the formula).
type Suspect struct {
	// Gate is the instance name; Kind its cell type; Output its output net.
	Gate   string `json:"gate"`
	Kind   string `json:"kind"`
	Output string `json:"output"`
	// Score is the combined suspicion score in [0,1].
	Score float64 `json:"score"`
	// Scoap is the testability component in [0,1]: percentile of the SCOAP
	// score among the design's gates, boosted for controllable-but-
	// unobservable outputs (the classic trigger profile).
	Scoap float64 `json:"scoap"`
	// Rarity is 1/count of the output cone's shape hash: 1 for a cone shape
	// occurring once in the design, small for common datapath shapes, 0 for
	// gates without an analyzable cone (flip-flops).
	Rarity float64 `json:"rarity"`
	// DiagPoints accumulates lint evidence attached to the gate or its
	// output net (2 per warning, 1 per info); Rules lists the rule IDs.
	DiagPoints int      `json:"diag_points"`
	Rules      []string `json:"rules,omitempty"`
	// Testability is the raw SCOAP score CC0+CC1+CO; -1 renders ∞.
	Testability int64 `json:"testability"`
	// Severity buckets the score: "high" (≥ 0.8), "medium" (≥ 0.5), "low".
	Severity string `json:"severity"`
}

// TriageReport is the output of Triage: every gate not covered by an emitted
// word, scored and ranked. The JSON rendering is deterministic.
type TriageReport struct {
	Module string `json:"module"`
	// Gates counts all gates; Covered those explained by identified words
	// (a word bit's driving gate or inside a bit's depth-limited cone).
	Gates   int `json:"gates"`
	Covered int `json:"covered"`
	// Words counts emitted multi-bit words.
	Words int `json:"words"`
	// Suspects are ranked by descending Score (ties by gate ID).
	Suspects []Suspect `json:"suspects"`
	// ScoapIterations and ScoapWidenedSCCs summarize the fixed point.
	ScoapIterations  int64 `json:"scoap_iterations"`
	ScoapWidenedSCCs int   `json:"scoap_widened_sccs"`
}

// TopSeverity returns the severity of the highest-ranked suspect ("" when
// there are none) — the CLI's exit-code key.
func (r *TriageReport) TopSeverity() string {
	if len(r.Suspects) == 0 {
		return ""
	}
	return r.Suspects[0].Severity
}

// WriteJSON emits the report as deterministic indented JSON.
func (r *TriageReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the ranked suspect table.
func (r *TriageReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %d gates, %d covered by %d identified words, %d suspect(s)\n",
		r.Module, r.Gates, r.Covered, r.Words, len(r.Suspects)); err != nil {
		return err
	}
	for i, s := range r.Suspects {
		test := "inf"
		if s.Testability >= 0 {
			test = fmt.Sprintf("%d", s.Testability)
		}
		if _, err := fmt.Fprintf(w, "%3d. %-6s %.4f  %-24s %-6s out=%s scoap=%.4f rarity=%.4f diag=%d test=%s\n",
			i+1, s.Severity, s.Score, s.Gate, s.Kind, s.Output, s.Scoap, s.Rarity, s.DiagPoints, test); err != nil {
			return err
		}
	}
	return nil
}

// Triage runs word identification and then ranks every gate the emitted
// words do not explain as a Hardware-Trojan suspect: the combination of a
// SCOAP testability outlier score, lint diagnostics (NL5xx always, NL4xx
// under Semantic), and cone shape-hash rarity. The ranking is deterministic
// — byte-identical across runs and worker counts.
func Triage(d *Design, opt TriageOptions) (*TriageReport, error) {
	if opt.Observer != nil {
		opt.Identify.Observer = opt.Observer
	}
	idRep, err := Identify(d, opt.Identify)
	if err != nil {
		return nil, err
	}

	runRec := opt.Observer.newRunRecorder()
	sp := runRec.Start(obs.StageScoap)
	sr := scoap.Compute(d.nl, scoap.Config{SeqCost: opt.SeqCost})
	sp.End()
	runRec.Add(obs.CtrScoapIterations, sr.Iterations)
	runRec.Add(obs.CtrScoapWidenedSCCs, int64(sr.WidenedSCCs))

	sp = runRec.Start(obs.StageTriage)
	rep := rankSuspects(d, idRep, sr, opt)
	sp.End()
	runRec.Add(obs.CtrTriageSuspects, int64(len(rep.Suspects)))
	opt.Observer.absorb(runRec)

	rep.ScoapIterations = sr.Iterations
	rep.ScoapWidenedSCCs = sr.WidenedSCCs
	return rep, nil
}

// Score weights and severity thresholds of the triage formula (§12).
const (
	triageScoapWeight  = 0.6
	triageRarityWeight = 0.25
	triageDiagWeight   = 0.15
	triageDiagCap      = 4 // diag points saturate here
	triageZCap         = 4 // finite-testability z-scores saturate here
	triageHigh         = 0.8
	triageMedium       = 0.5
)

func rankSuspects(d *Design, idRep *Report, sr *scoap.Result, opt TriageOptions) *TriageReport {
	nl := d.nl
	rep := &TriageReport{Module: nl.Name, Gates: nl.GateCount()}

	// Covered region: each word bit's driving gate plus its depth-limited
	// fanin cone (the same window identification matched over).
	depth := opt.Identify.Depth
	if depth < 1 {
		depth = cone.DefaultDepth
	}
	covered := make([]bool, nl.GateCount())
	seenAt := make([]int, nl.GateCount()) // deepest remaining-level budget seen
	var markCone func(n netlist.NetID, levels int)
	markCone = func(n netlist.NetID, levels int) {
		g := nl.Net(n).Driver
		if g == netlist.NoGate || levels == 0 {
			return
		}
		covered[g] = true
		if seenAt[g] >= levels { // already expanded at least this deep (and breaks cycles)
			return
		}
		seenAt[g] = levels
		if !nl.Gate(g).Kind.IsCombinational() {
			return
		}
		for _, in := range nl.Gate(g).Inputs {
			markCone(in, levels-1)
		}
	}
	for _, w := range idRep.MultiBitWords() {
		rep.Words++
		for _, bit := range w.Bits {
			if id, ok := nl.NetByName(bit); ok {
				markCone(id, depth)
			}
		}
	}
	for _, c := range covered {
		if c {
			rep.Covered++
		}
	}

	// Cone shape-hash frequency over every analyzable gate output.
	builder := cone.NewBuilder(nl, cone.NewInterner(), depth)
	keyOf := make([]cone.KeyID, nl.GateCount())
	haveKey := make([]bool, nl.GateCount())
	keyCount := make(map[cone.KeyID]int)
	for gi := 0; gi < nl.GateCount(); gi++ {
		if bc := builder.Bit(nl.Gate(netlist.GateID(gi)).Output); bc != nil {
			keyOf[gi] = bc.FullKey
			haveKey[gi] = true
			keyCount[bc.FullKey]++
		}
	}

	// Lint evidence, attributed to named gates and to the drivers of named
	// nets. NL5xx always; NL4xx only under Semantic (SAT effort).
	only := []string{"NL5"}
	if opt.Semantic {
		only = append(only, "NL4")
	}
	lint := LintWith(d, LintConfig{Only: only, Semantic: opt.Semantic})
	diagPoints := make([]int, nl.GateCount())
	diagRules := make([][]string, nl.GateCount())
	addDiag := func(gi netlist.GateID, rule string, pts int) {
		if gi == netlist.NoGate {
			return
		}
		for _, r := range diagRules[gi] {
			if r == rule {
				return // one charge per rule per gate
			}
		}
		diagPoints[gi] += pts
		diagRules[gi] = append(diagRules[gi], rule)
	}
	for _, diag := range lint.Diagnostics {
		pts := 1
		if diag.Severity == "warn" {
			pts = 2
		}
		for _, gname := range diag.Gates {
			for gi := 0; gi < nl.GateCount(); gi++ {
				if nl.Gate(netlist.GateID(gi)).Name == gname {
					addDiag(netlist.GateID(gi), diag.Rule, pts)
					break
				}
			}
		}
		for _, nname := range diag.Nets {
			if id, ok := nl.NetByName(nname); ok {
				addDiag(nl.Net(id).Driver, diag.Rule, pts)
			}
		}
	}

	// Percentile bases: the finite testability and finite controllability
	// profiles over all gate outputs.
	var finiteT, finiteCtrl []uint64
	ctrlOf := func(n netlist.NetID) scoap.Cost {
		cc := sr.Controllability(n)
		c := uint64(cc.C0) + uint64(cc.C1)
		if c >= uint64(scoap.Inf) {
			return scoap.Inf
		}
		return scoap.Cost(c)
	}
	for gi := 0; gi < nl.GateCount(); gi++ {
		out := nl.Gate(netlist.GateID(gi)).Output
		if t := sr.Testability(out); t != scoap.Inf {
			finiteT = append(finiteT, uint64(t))
		}
		if c := ctrlOf(out); c != scoap.Inf {
			finiteCtrl = append(finiteCtrl, uint64(c))
		}
	}
	sort.Slice(finiteCtrl, func(i, j int) bool { return finiteCtrl[i] < finiteCtrl[j] })
	percentile := func(sorted []uint64, v uint64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		le := sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
		return float64(le) / float64(len(sorted))
	}
	var tMean, tSigma float64
	if len(finiteT) > 0 {
		var sum, sumSq float64
		for _, v := range finiteT {
			sum += float64(v)
			sumSq += float64(v) * float64(v)
		}
		tMean = sum / float64(len(finiteT))
		tSigma = math.Sqrt(sumSq/float64(len(finiteT)) - tMean*tMean)
	}

	// The scoap component: a finite score contributes only as an outlier —
	// its z-score against the design profile, saturating at triageZCap — so
	// ordinary datapath gates score near zero even in tiny designs. A
	// controllable but unobservable output — the classic trigger profile —
	// ranks above every finite score; an uncontrollable (always-X) output is
	// suspicious but inert, pinned mid-scale.
	scoapComponent := func(n netlist.NetID) float64 {
		ctrl := ctrlOf(n)
		if ctrl == scoap.Inf {
			return 0.5
		}
		if t := sr.Testability(n); t != scoap.Inf {
			if tSigma == 0 {
				return 0
			}
			z := (float64(t) - tMean) / tSigma
			if z < 0 {
				z = 0
			}
			if z > triageZCap {
				z = triageZCap
			}
			return 0.85 * z / triageZCap
		}
		return 0.7 + 0.3*percentile(finiteCtrl, uint64(ctrl))
	}

	var suspects []Suspect
	for gi := 0; gi < nl.GateCount(); gi++ {
		if covered[gi] {
			continue
		}
		g := nl.Gate(netlist.GateID(gi))
		sc := scoapComponent(g.Output)
		rarity := 0.0
		if haveKey[gi] {
			rarity = 1.0 / float64(keyCount[keyOf[gi]])
		}
		diag := diagPoints[gi]
		dcomp := float64(diag)
		if dcomp > triageDiagCap {
			dcomp = triageDiagCap
		}
		score := round4(triageScoapWeight*sc + triageRarityWeight*rarity + triageDiagWeight*dcomp/triageDiagCap)
		sev := "low"
		switch {
		case score >= triageHigh:
			sev = "high"
		case score >= triageMedium:
			sev = "medium"
		}
		test := int64(-1)
		if t := sr.Testability(g.Output); t != scoap.Inf {
			test = int64(t)
		}
		rules := diagRules[gi]
		sort.Strings(rules)
		suspects = append(suspects, Suspect{
			Gate:        g.Name,
			Kind:        g.Kind.String(),
			Output:      nl.NetName(g.Output),
			Score:       score,
			Scoap:       round4(sc),
			Rarity:      round4(rarity),
			DiagPoints:  diag,
			Rules:       rules,
			Testability: test,
			Severity:    sev,
		})
	}
	sort.SliceStable(suspects, func(i, j int) bool { return suspects[i].Score > suspects[j].Score })
	top := opt.TopN
	if top == 0 {
		top = DefaultTriageTop
	}
	if top > 0 && len(suspects) > top {
		suspects = suspects[:top]
	}
	rep.Suspects = suspects
	return rep
}

func round4(f float64) float64 {
	return float64(int64(f*10000+0.5)) / 10000
}
