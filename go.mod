module gatewords

go 1.22
