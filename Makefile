GO ?= go

.PHONY: build test check bench race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the data-race-sensitive pipeline tests (parallel group workers)
# under the race detector.
race:
	$(GO) test -race ./internal/core/...

# check is the full pre-commit gate: vet, formatting, tests, race pass.
check:
	$(GO) vet ./...
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) test ./...
	$(GO) test -race ./internal/core/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$
