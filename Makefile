GO ?= go

.PHONY: build test check gatevet vet-fix faults serve-smoke chaos chaos-long bench bench-eqcheck bench-eqcheck-smoke bench-pipeline bench-pipeline-smoke bench-scoap bench-scoap-smoke race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the whole module under the race detector (the parallel group
# workers in internal/core are the most race-sensitive code, but lint and
# propagation share netlist storage too).
race:
	$(GO) test -race ./...

# gatevet runs the repo's contract analyzers (internal/anlz/passes) over the
# whole module: determinism (mapdet, norand), cancellation (ctxpoll), fault
# isolation (guardgo), the closed obs schema (obskeys), and leaf-lock
# discipline (lockbal). Exit 1 means findings; fix them or add a justified
# //anlz:ignore.
gatevet:
	$(GO) run ./cmd/gatevet .

# vet-fix is the triage loop for gatevet findings: deterministic JSON on
# stdout (file/line/analyzer/message per finding), for piping into an editor
# or review tooling. Exit codes match gatevet (0 clean / 1 findings / 2
# analysis error).
vet-fix:
	$(GO) run ./cmd/gatevet -json .

# check is the full pre-commit gate: vet, formatting, the contract
# analyzers, the race-detector test pass (which subsumes the plain test
# pass — every test runs exactly once, instrumented), the fault-injection
# matrix, the daemon smoke, and the bench emitter smokes. gatevet runs
# before the test passes: contract findings are cheaper to surface than a
# full race run.
check:
	$(GO) vet ./...
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(MAKE) gatevet
	$(GO) test -race ./...
	$(MAKE) faults
	$(MAKE) serve-smoke
	$(MAKE) chaos
	$(MAKE) bench-scoap-smoke
	$(MAKE) bench-eqcheck-smoke

# faults runs the fault-injection matrix under the race detector: the guard
# package's own tests, every stage-level injection point (TestFaultMatrix
# fires each of match/ctrlsig/trial/verify in both the sequential and the
# parallel path), the budget-degradation contract, the CLI's fail-fast and
# summary exits, and the b14-analog isolation test (surviving groups'
# words byte-identical to a clean run).
faults:
	$(GO) test -race ./internal/guard/
	$(GO) test -race -run '^TestFault' ./internal/core/ ./cmd/wordid/ .

# serve-smoke boots the wordidd daemon end to end under the race detector:
# listen on an ephemeral port, submit a benchmark job over HTTP, poll it to
# completion, resubmit for a cache hit, check /metrics balances, then drain
# via SIGTERM and require exit 0.
serve-smoke:
	$(GO) test -race -count=1 -run '^TestServeSmoke$$' -v ./cmd/wordidd/

# chaos is the bounded (~60s) live chaos soak: the wordidd daemon is built
# with the race detector and driven through overload bursts, load shedding,
# slowloris/oversize clients, a SIGKILL mid-load with a journal-replay
# restart, and a poison input tripping and recovering the quarantine
# breaker. Asserts no accepted job is ever lost, stuck, or served different
# bytes after a crash. chaos-long is the full soak (more kill/restart
# cycles, bigger bursts) for pre-release runs.
chaos:
	WORDIDD_CHAOS=1 $(GO) test -count=1 -run '^TestChaos$$' -v -timeout 300s ./cmd/wordidd/

chaos-long:
	WORDIDD_CHAOS=long $(GO) test -count=1 -run '^TestChaos$$' -v -timeout 900s ./cmd/wordidd/

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# bench-eqcheck runs the equivalence-checker throughput harness over the
# generated benchmark suite and writes BENCH_eqcheck.json (per-bench cone
# counts, stage resolution split, solver stats, wall time).
bench-eqcheck:
	BENCH_EQCHECK_OUT=$(CURDIR)/BENCH_eqcheck.json $(GO) test -run TestEmitEqcheckBench -v .

# bench-eqcheck-smoke exercises the same harness on one small analog and a
# throwaway output file — the CI guard that the emitter (identify, miter
# resynthesis, CDCL-vs-DPLL sweep) keeps working without paying for the
# b14/b15 rows.
bench-eqcheck-smoke:
	BENCH_EQCHECK_OUT=$$(mktemp) BENCH_EQCHECK_BENCHES=b08 $(GO) test -run TestEmitEqcheckBench -v .

# bench-pipeline regenerates the committed per-stage performance baseline
# BENCH_pipeline.json: core.Identify over every Table-1 analog with an
# Observer attached and reduction verification on, recording the stage split
# (group/match/ctrlsig/trial/verify), work counters, and peak gauges.
bench-pipeline:
	BENCH_PIPELINE_OUT=$(CURDIR)/BENCH_pipeline.json $(GO) test -run TestEmitPipelineBench -v .

# bench-pipeline-smoke exercises the same harness on two small analogs and a
# throwaway output file — the CI guard that the emitter keeps working without
# paying for the b17/b18 rows.
bench-pipeline-smoke:
	BENCH_PIPELINE_OUT=$$(mktemp) BENCH_PIPELINE_BENCHES=b03a,b08a $(GO) test -run TestEmitPipelineBench -v .

# bench-scoap regenerates the committed SCOAP-engine throughput baseline
# BENCH_scoap.json: scoap.Compute (forward controllability + backward
# observability to their fixed points) over the b14/b15 analogs, recording
# gates/sec, solver iterations, and widened-SCC counts.
bench-scoap:
	BENCH_SCOAP_OUT=$(CURDIR)/BENCH_scoap.json $(GO) test -run TestEmitScoapBench -v .

# bench-scoap-smoke exercises the same harness on one small analog and a
# throwaway output file — the CI guard that the emitter keeps working without
# paying for a full regeneration.
bench-scoap-smoke:
	BENCH_SCOAP_OUT=$$(mktemp) BENCH_SCOAP_BENCHES=b03a $(GO) test -run TestEmitScoapBench -v .
