// Package gatewords identifies words — groups of wires that belong to the
// same multi-bit register or bus — in a flattened gate-level netlist, the
// first step of netlist reverse engineering and Hardware-Trojan triage. It
// implements the DAC 2015 technique of Tashjian & Davoodi, "On Using Control
// Signals for Word-Level Identification in A Gate-Level Netlist":
// partially-matching fanin-cone structures are reconciled by discovering
// relevant control signals inside their dissimilar subtrees, assigning them
// controlling values, and constant-propagating the circuit until the cones
// become fully similar. A shape-hashing baseline (WordRev-style) is included
// for comparison, along with the benchmark generators and harness that
// regenerate the paper's Table 1.
//
// Typical use:
//
//	d, err := gatewords.ParseVerilogFile("design.v")
//	rep, err := gatewords.Identify(d, gatewords.Options{})
//	for _, w := range rep.Words { fmt.Println(w.Bits, w.ControlSignals) }
//
// The facade exposes only strings (net names); the internal graph,
// hash-key, and reduction machinery live under internal/.
package gatewords

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"gatewords/internal/bench"
	"gatewords/internal/core"
	"gatewords/internal/functional"
	"gatewords/internal/guard"
	"gatewords/internal/logic"
	"gatewords/internal/metrics"
	"gatewords/internal/netlist"
	"gatewords/internal/obs"
	"gatewords/internal/reduce"
	"gatewords/internal/refwords"
	"gatewords/internal/shapehash"
	"gatewords/internal/verilog"
)

// Design is a loaded gate-level netlist.
type Design struct {
	nl *netlist.Netlist
}

// ParseVerilog parses a flattened structural-Verilog module from r; name is
// used in error messages.
func ParseVerilog(name string, r io.Reader) (*Design, error) {
	nl, err := verilog.ParseReader(name, r)
	if err != nil {
		return nil, err
	}
	return &Design{nl: nl}, nil
}

// ParseVerilogFile parses the module in the named file.
func ParseVerilogFile(path string) (*Design, error) {
	nl, err := verilog.ParseFile(path)
	if err != nil {
		return nil, err
	}
	return &Design{nl: nl}, nil
}

// ParseVerilogString parses a module held in a string.
func ParseVerilogString(name, src string) (*Design, error) {
	nl, err := verilog.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return &Design{nl: nl}, nil
}

// ParseVerilogHierarchy parses a multi-module source and flattens it: the
// top module (auto-detected as the one no other module instantiates, unless
// top is non-empty) has every sub-module instance inlined recursively with
// "<instance>/" name prefixing. This is the front door for third-party
// netlists that still carry hierarchy.
func ParseVerilogHierarchy(name, src, top string) (*Design, error) {
	lib, err := verilog.ParseHierarchy(nil, name, src)
	if err != nil {
		return nil, err
	}
	if top == "" {
		top, err = lib.Top()
		if err != nil {
			return nil, err
		}
	}
	nl, err := lib.Elaborate(top)
	if err != nil {
		return nil, err
	}
	return &Design{nl: nl}, nil
}

// WriteVerilog emits the design as structural Verilog.
func (d *Design) WriteVerilog(w io.Writer) error { return verilog.Write(w, d.nl) }

// WriteVerilogFile writes the design to a file.
func (d *Design) WriteVerilogFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := verilog.Write(f, d.nl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteDOT renders the design as a Graphviz digraph.
func (d *Design) WriteDOT(w io.Writer) error { return d.nl.WriteDOT(w) }

// Name returns the module name.
func (d *Design) Name() string { return d.nl.Name }

// Fingerprint returns a canonical content hash of the design as 32 hex
// digits: equal for two designs exactly when they hold the same nets and
// gates, regardless of declaration order; gate instance names are ignored.
// It is the content-addressing key of the wordidd result cache — repeated
// submissions of one design, including re-emissions with shuffled
// declarations, collapse onto one entry.
func (d *Design) Fingerprint() string { return d.nl.Fingerprint() }

// Stats summarizes the design.
type Stats struct {
	Nets  int
	Gates int // combinational gates
	DFFs  int
	PIs   int
	POs   int
}

// Stats returns design statistics.
func (d *Design) Stats() Stats {
	s := d.nl.ComputeStats()
	return Stats{Nets: s.Nets, Gates: s.Gates, DFFs: s.DFFs, PIs: s.PIs, POs: s.POs}
}

// ReferenceWord is a golden word recovered from preserved register names on
// flip-flop outputs (the evaluation methodology of the paper's §3).
type ReferenceWord struct {
	Name string
	Bits []string // D-input net names, LSB first
}

// ReferenceWords extracts the golden reference words (registers of at least
// two bits whose output nets carry a name and bit index).
func (d *Design) ReferenceWords() []ReferenceWord {
	refs := refwords.Extract(d.nl, refwords.Options{})
	out := make([]ReferenceWord, len(refs))
	for i, r := range refs {
		rw := ReferenceWord{Name: r.Name, Bits: make([]string, len(r.Bits))}
		for j, b := range r.Bits {
			rw.Bits[j] = d.nl.NetName(b)
		}
		out[i] = rw
	}
	return out
}

// Options configures Identify. The zero value reproduces the paper's
// settings: cone depth 4, at most two simultaneous control assignments, and
// cohesive partial-group emission.
type Options struct {
	// Depth is the fanin-cone analysis depth in logic levels (default 4).
	Depth int
	// MaxAssign bounds simultaneous control-signal assignments (default 2;
	// 3 enables the paper's future-work extension).
	MaxAssign int
	// Theta is the cohesion threshold for emitting partially matching
	// subgroups as unverified words (default 0.5).
	Theta float64
	// DisablePartialGroups turns the cohesion rule off (ablation).
	DisablePartialGroups bool
	// DFFInputsOnly restricts candidate bits to flip-flop D inputs.
	DFFInputsOnly bool
	// Trace records the pipeline's per-subgroup decisions in Report.Trace.
	Trace bool
	// Workers processes adjacency groups concurrently (0/1 sequential,
	// negative = GOMAXPROCS); the result is identical to a sequential run.
	Workers int
	// Lint gates the pipeline on the static-analysis pass (internal/netlint):
	// LintLenient refuses error-severity diagnostics, LintStrict also refuses
	// warnings. The default LintOff preserves historical behavior.
	Lint LintMode
	// VerifyReduction proves, with the AIG + SAT equivalence checker, that
	// every control-signal reduction backing an emitted word rewrote each
	// bit's cone soundly. Outcomes appear in Report.ReductionVerification.
	VerifyReduction bool
	// Context, when non-nil, bounds the run: cancellation or deadline expiry
	// is honored cooperatively at group, subgroup, and trial granularity.
	// An interrupted run still returns a Report — the words completed so far,
	// never a truncated word — with Report.Interrupted set.
	Context context.Context
	// Observer, when non-nil, collects per-stage wall times, work counters,
	// and peak gauges across the run (and across runs, if reused). Leaving
	// it nil costs nothing on the identification hot path.
	Observer *Observer
	// Budgets bounds per-group pipeline work; a subgroup that exceeds a
	// budget degrades to the cheap full-structural match and is itemized in
	// Report.Degradations instead of stalling or aborting the run. The zero
	// value is unlimited.
	Budgets Budgets
	// FailFast stops the run at the first group whose pipeline panicked
	// (recovered into Report.Failures) instead of isolating the failure and
	// continuing. Words from groups completed before the failure are kept.
	FailFast bool
}

// Budgets caps per-group pipeline work. Each limit guards one blow-up mode
// of a hostile or degenerate input; zero fields are unlimited. Exceeding a
// limit never aborts the run: the affected subgroup keeps its full-structural
// word classes (the shape-hashing baseline's answer) and the event is
// recorded in Report.Degradations.
type Budgets struct {
	// MaxConeGates caps one subgroup's fanin-cone scope in nets.
	MaxConeGates int
	// MaxSubgroupPairs caps one subgroup's matching cross product
	// (bits × dissimilar subtrees).
	MaxSubgroupPairs int
	// MaxTrialsPerGroup caps control-assignment trials across one adjacency
	// group.
	MaxTrialsPerGroup int
}

func (o Options) toCore() core.Options {
	return core.Options{
		Depth:           o.Depth,
		MaxAssign:       o.MaxAssign,
		Theta:           o.Theta,
		NoPartialGroups: o.DisablePartialGroups,
		DFFInputsOnly:   o.DFFInputsOnly,
		CollectTrace:    o.Trace,
		Workers:         o.Workers,
		VerifyReduction: o.VerifyReduction,
		Context:         o.Context,
		// Observer is deliberately absent: Identify hands core a private
		// per-run recorder and folds it into Options.Observer once, under
		// the Observer's lock, so one Observer can be shared by concurrent
		// Identify calls (see newRunRecorder / absorb).
		Budgets: guard.Budgets{
			MaxConeGates:      o.Budgets.MaxConeGates,
			MaxSubgroupPairs:  o.Budgets.MaxSubgroupPairs,
			MaxTrialsPerGroup: o.Budgets.MaxTrialsPerGroup,
		},
		FailFast: o.FailFast,
	}
}

// Observer accumulates pipeline observability: wall time per stage
// (grouping, matching, control-signal discovery, the trial/reduce loop,
// verification), work counters (trials, reductions, propagation visits, SAT
// effort), and peak gauges. One Observer may be shared across Identify calls
// — sequential or concurrent — to aggregate them: each run records into a
// private recorder and folds it in under the Observer's lock when the run
// finishes, so concurrent runs never alias one recorder and a reader never
// sees a half-merged run. Parallel runs merge per-worker recorders
// deterministically before that fold.
type Observer struct {
	mu     sync.Mutex
	rec    *obs.Recorder
	labels bool
}

// NewObserver returns an empty Observer.
func NewObserver() *Observer { return &Observer{rec: obs.New()} }

// EnableProfileLabels makes the observed pipeline label each stage region
// with a stage=<name> pprof goroutine label, so CPU-profile samples split by
// stage (`go tool pprof -tagfocus stage=trial`). Enable it only while a CPU
// profile is being taken — each labeled region allocates.
func (o *Observer) EnableProfileLabels() {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.labels = true
	o.rec.EnableProfileLabels()
}

// newRunRecorder hands a run its private recorder (inheriting the
// profile-labels setting); nil Observer means no observation.
func (o *Observer) newRunRecorder() *obs.Recorder {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	r := obs.New()
	if o.labels {
		r.EnableProfileLabels()
	}
	return r
}

// absorb folds one finished run's private recorder into the Observer.
func (o *Observer) absorb(r *obs.Recorder) {
	if o == nil || r == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.rec.Merge(r)
}

// AddCounter accumulates n into counter c under the Observer's lock. The
// pipeline records counters through private per-run recorders, but the
// serving layer (internal/service) also attributes service-level events —
// shed jobs, quarantine trips, journal replays — to the same closed counter
// schema, so one /metrics document carries both. Safe on a nil Observer.
func (o *Observer) AddCounter(c obs.Counter, n int64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.rec.Add(c, n)
}

// snapshot returns a private copy of the current state (nil on a nil
// Observer, which every obs.Recorder method accepts).
func (o *Observer) snapshot() *obs.Recorder {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rec.Clone()
}

// Merge folds other's observations into o (stage times and counters add,
// gauges keep the peak). Both Observers may be in concurrent use; merging an
// Observer into itself, or a nil on either side, is a no-op. This is how a
// server aggregates per-job Observers into one served metrics view.
func (o *Observer) Merge(other *Observer) {
	if o == nil || other == nil || o == other {
		return
	}
	o.absorb(other.snapshot())
}

// Snapshot returns an independent copy of the Observer's current state, safe
// to render while the original keeps accumulating concurrent runs.
func (o *Observer) Snapshot() *Observer {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return &Observer{rec: o.rec.Clone(), labels: o.labels}
}

// WriteText renders the collected breakdown in aligned human-readable form.
func (o *Observer) WriteText(w io.Writer) error { return o.snapshot().WriteText(w) }

// MarshalJSON renders the breakdown as deterministic JSON (stages, counters,
// and gauges as arrays in a fixed order).
func (o *Observer) MarshalJSON() ([]byte, error) { return o.snapshot().MarshalJSON() }

// StageLine renders the per-stage time split on one line
// ("group=0.1ms match=2.3ms ...").
func (o *Observer) StageLine() string { return o.snapshot().StageLine() }

// Word is one identified word.
type Word struct {
	Bits []string
	// Verified means the bits' cones were fully similar, directly or on the
	// reduced circuit under Assignment.
	Verified bool
	// ControlSignals are the nets whose assignment produced this word.
	ControlSignals []string
	// Assignment is the successful control-value assignment (net -> value).
	Assignment map[string]bool
}

// Report is the output of Identify or IdentifyBaseline.
type Report struct {
	Technique string // "control-signals" or "shape-hashing"
	Words     []Word
	// ControlSignalsUsed are the distinct control signals whose assignments
	// produced emitted words (the paper's "#Control Signals" column).
	ControlSignalsUsed []string
	// ControlSignalsFound are all relevant control signals identified.
	ControlSignalsFound []string
	// ReductionVerification summarizes cone-equivalence proofs when
	// Options.VerifyReduction is set; nil otherwise.
	ReductionVerification *ReductionVerification
	// Interrupted reports that Options.Context was cancelled (or timed out)
	// before identification finished; the report holds the partial output.
	Interrupted bool
	// Failures records every adjacency group whose pipeline panicked. The
	// panic was recovered at the group boundary and the group contributed no
	// words; every other group's words are exactly what a clean run returns.
	// Empty on a healthy run.
	Failures []GroupFailure
	// Degradations itemizes every subgroup that hit an Options.Budgets limit
	// and fell back to the full-structural match.
	Degradations []Degradation
	// DegradedGroups counts adjacency groups with at least one degradation.
	DegradedGroups int
	Trace          []string
}

// GroupFailure is one recovered group-pipeline panic.
type GroupFailure struct {
	// Group is the adjacency-group index (grouping order).
	Group int
	// Stage is the pipeline stage that panicked ("match", "ctrlsig",
	// "trial", "verify", or "init").
	Stage string
	// Message is the rendered panic value.
	Message string
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

// String renders the failure on one line (without the stack).
func (f GroupFailure) String() string {
	return fmt.Sprintf("group %d failed at stage %q: %s", f.Group, f.Stage, f.Message)
}

// Degradation is one budget-triggered fallback to the structural match.
type Degradation struct {
	// Group is the adjacency-group index; Subgroup names the subgroup's
	// first bit net.
	Group    int
	Subgroup string
	// Reason is the exceeded budget ("max-cone-gates", "max-subgroup-pairs",
	// or "max-trials-per-group"); Detail quantifies the violation.
	Reason string
	Detail string
}

// String renders the degradation on one line.
func (d Degradation) String() string {
	return fmt.Sprintf("group %d subgroup %s degraded (%s): %s", d.Group, d.Subgroup, d.Reason, d.Detail)
}

// ReductionVerification reports the soundness proof of the reductions behind
// a report's words: every rewritten bit cone is checked equivalent to the
// original under the chosen control assignment.
type ReductionVerification struct {
	ConesProved  int
	ConesRefuted int // non-zero means a reduction rewrite is unsound
	ConesUnknown int // SAT budget exhausted; reported, not proved
	// Failures itemizes refuted and undecided cones.
	Failures []ReductionCheck
}

// ReductionCheck is one refuted or undecided cone.
type ReductionCheck struct {
	Bit        string          // net name of the cone root
	Assignment string          // formatted control assignment
	Verdict    string          // "not-equivalent" or "unknown"
	Stage      string          // deciding pipeline stage
	Cex        map[string]bool // counterexample for refutations
}

// Sound reports whether no cone was refuted.
func (v *ReductionVerification) Sound() bool { return v != nil && v.ConesRefuted == 0 }

// MultiBitWords returns only words of two or more bits.
func (r *Report) MultiBitWords() []Word {
	var out []Word
	for _, w := range r.Words {
		if len(w.Bits) >= 2 {
			out = append(out, w)
		}
	}
	return out
}

// Identify runs the control-signal word-identification pipeline. When
// Options.Lint is set, the design must first pass the static-analysis gate.
func Identify(d *Design, opt Options) (*Report, error) {
	if err := lintGate(d, opt.Lint); err != nil {
		return nil, err
	}
	copt := opt.toCore()
	// The run records into a recorder of its own; Options.Observer receives
	// the whole run in one locked fold below, which is what makes sharing an
	// Observer across concurrent Identify calls safe.
	runRec := opt.Observer.newRunRecorder()
	copt.Observer = runRec
	res := core.Identify(d.nl, copt)
	opt.Observer.absorb(runRec)
	rep := &Report{Technique: "control-signals", Trace: res.Trace, Interrupted: res.Stats.Interrupted}
	for _, w := range res.Words {
		rep.Words = append(rep.Words, d.coreWord(w))
	}
	rep.ControlSignalsUsed = d.netNames(res.UsedControlSignals)
	rep.ControlSignalsFound = d.netNames(res.FoundControlSignals)
	rep.DegradedGroups = res.Stats.DegradedGroups
	for _, f := range res.Failures {
		rep.Failures = append(rep.Failures, GroupFailure{
			Group: f.Group, Stage: f.Stage, Message: f.Message, Stack: f.Stack,
		})
	}
	for _, dg := range res.Degradations {
		rep.Degradations = append(rep.Degradations, Degradation{
			Group: dg.Group, Subgroup: dg.Subgroup, Reason: dg.Reason, Detail: dg.Detail,
		})
	}
	if opt.VerifyReduction {
		rv := &ReductionVerification{
			ConesProved:  res.Stats.ConesProved,
			ConesRefuted: res.Stats.ConesRefuted,
			ConesUnknown: res.Stats.ConesUnknown,
		}
		for _, c := range res.ReductionChecks {
			rv.Failures = append(rv.Failures, ReductionCheck{
				Bit:        c.Name,
				Assignment: c.Assign,
				Verdict:    c.Verdict,
				Stage:      c.Stage,
				Cex:        c.Cex,
			})
		}
		rep.ReductionVerification = rv
	}
	return rep, nil
}

// IdentifyBaseline runs the shape-hashing baseline ("Base" in the paper's
// Table 1). depth <= 0 selects the default cone depth.
func IdentifyBaseline(d *Design, depth int) (*Report, error) {
	res := shapehash.Identify(d.nl, depth)
	rep := &Report{Technique: "shape-hashing"}
	for _, bits := range res.Words {
		rep.Words = append(rep.Words, Word{Bits: d.netNames(bits), Verified: true})
	}
	return rep, nil
}

// IdentifyFunctional runs functional word identification: bits are grouped
// when their depth-limited cones compute the same canonical function
// (NPN-lite truth-table matching), catching bits that are functionally
// equal through different gate decompositions. maxSupport caps the cone
// support (default 8 inputs); depth <= 0 selects the default cone depth.
// This is the complementary functional stage the paper's related work
// describes; it composes with Reduce the same way the baseline does.
func IdentifyFunctional(d *Design, depth, maxSupport int) (*Report, error) {
	res := functional.Identify(d.nl, functional.Options{Depth: depth, MaxSupport: maxSupport})
	rep := &Report{Technique: "functional"}
	for _, bits := range res.Words {
		rep.Words = append(rep.Words, Word{Bits: d.netNames(bits), Verified: true})
	}
	return rep, nil
}

func (d *Design) coreWord(w core.Word) Word {
	out := Word{
		Bits:           d.netNames(w.Bits),
		Verified:       w.Verified,
		ControlSignals: d.netNames(w.Controls),
	}
	if len(w.Assignment) > 0 {
		out.Assignment = make(map[string]bool, len(w.Assignment))
		for n, v := range w.Assignment {
			out.Assignment[d.nl.NetName(n)] = v == logic.One
		}
	}
	return out
}

func (d *Design) netNames(ids []netlist.NetID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = d.nl.NetName(id)
	}
	return out
}

// Evaluation scores a report against the design's reference words using the
// paper's three metrics.
type Evaluation struct {
	ReferenceWords    int
	FullyFound        int
	PartiallyFound    int
	NotFound          int
	FullyFoundPct     float64
	NotFoundPct       float64
	FragmentationRate float64
	// PerWord maps each reference word name to its outcome:
	// "fully-found", "partially-found", or "not-found".
	PerWord map[string]string
}

// Evaluate scores rep against d's golden reference words.
func Evaluate(d *Design, rep *Report) Evaluation {
	refs := refwords.Extract(d.nl, refwords.Options{})
	gen := make([][]netlist.NetID, 0, len(rep.Words))
	for _, w := range rep.Words {
		ids := make([]netlist.NetID, 0, len(w.Bits))
		for _, name := range w.Bits {
			if id, ok := d.nl.NetByName(name); ok {
				ids = append(ids, id)
			}
		}
		gen = append(gen, ids)
	}
	m := metrics.Evaluate(refs, gen)
	ev := Evaluation{
		ReferenceWords:    m.RefWords,
		FullyFound:        m.FullyFound,
		PartiallyFound:    m.PartiallyFound,
		NotFound:          m.NotFound,
		FullyFoundPct:     m.FullyFoundPct(),
		NotFoundPct:       m.NotFoundPct(),
		FragmentationRate: m.FragmentationRate,
		PerWord:           make(map[string]string, len(m.Words)),
	}
	for _, wr := range m.Words {
		ev.PerWord[wr.Ref.Name] = wr.Outcome.String()
	}
	return ev
}

// Reduce returns a new Design: the circuit simplified under the given
// control-signal assignment (net name -> value), with constants propagated
// forward and backward and dead logic removed. This is the integration path
// of the paper's §2.1 — the reduced circuit can be fed to any other
// word-identification or reverse-engineering tool.
func Reduce(d *Design, assignment map[string]bool) (*Design, error) {
	assign := make(map[netlist.NetID]logic.Value, len(assignment))
	for name, v := range assignment {
		id, ok := d.nl.NetByName(name)
		if !ok {
			return nil, fmt.Errorf("gatewords: no net named %q", name)
		}
		assign[id] = logic.FromBool(v)
	}
	red, err := reduce.Apply(d.nl, assign)
	if err != nil {
		return nil, err
	}
	m, err := reduce.Materialize(red)
	if err != nil {
		return nil, err
	}
	return &Design{nl: m.NL}, nil
}

// GenerateBenchmark builds one of the ITC99-analog benchmarks ("b03",
// "b08", "b18", ... or the full profile names "b03a"...).
func GenerateBenchmark(name string) (*Design, error) {
	p, ok := bench.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("gatewords: unknown benchmark %q", name)
	}
	gen, err := p.Generate()
	if err != nil {
		return nil, err
	}
	return &Design{nl: gen.NL}, nil
}

// BenchmarkNames lists the available generated benchmarks.
func BenchmarkNames() []string {
	names := make([]string, len(bench.Profiles))
	for i, p := range bench.Profiles {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// Figure1 builds the paper's Figure-1 circuit: the 3-bit word of benchmark
// b03 whose dissimilar subtrees are resolved by control signals U201/U221.
func Figure1() (*Design, error) {
	nl, _, err := bench.Figure1Circuit()
	if err != nil {
		return nil, err
	}
	return &Design{nl: nl}, nil
}
