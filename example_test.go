package gatewords_test

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"gatewords"
)

// A tiny flattened netlist: one 2-bit register whose bits share a
// structure, named so the golden reference extractor can verify results.
const exampleSrc = `
module demo (a0, a1, b0, b1, s, \w_reg[0] , \w_reg[1] );
  input a0, a1, b0, b1, s;
  output \w_reg[0] , \w_reg[1] ;
  wire x0, x1, y0, y1, d0, d1;
  NAND2 g1 (x0, a0, s);
  NAND2 g2 (y0, b0, s);
  NAND2 g3 (x1, a1, s);
  NAND2 g4 (y1, b1, s);
  NAND2 r0 (d0, x0, y0);
  NAND2 r1 (d1, x1, y1);
  DFF ff0 (\w_reg[0] , d0);
  DFF ff1 (\w_reg[1] , d1);
endmodule
`

// ExampleIdentify parses a netlist and identifies its words.
func ExampleIdentify() {
	d, err := gatewords.ParseVerilogString("demo.v", exampleSrc)
	if err != nil {
		log.Fatal(err)
	}
	// DFFInputsOnly restricts candidates to register inputs; without it the
	// matcher also reports internal gate columns as (junk) words.
	rep, err := gatewords.Identify(d, gatewords.Options{DFFInputsOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range rep.MultiBitWords() {
		fmt.Println(strings.Join(w.Bits, " "))
	}
	// Output:
	// d0 d1
}

// ExampleEvaluate scores identification against the golden words recovered
// from register names.
func ExampleEvaluate() {
	d, _ := gatewords.ParseVerilogString("demo.v", exampleSrc)
	rep, _ := gatewords.Identify(d, gatewords.Options{})
	ev := gatewords.Evaluate(d, rep)
	fmt.Printf("fully found %d/%d\n", ev.FullyFound, ev.ReferenceWords)
	// Output:
	// fully found 1/1
}

// ExampleDesign_ReferenceWords shows the §3 golden-reference methodology:
// register names preserved on flip-flop outputs yield verified words over
// the D-input nets.
func ExampleDesign_ReferenceWords() {
	d, _ := gatewords.ParseVerilogString("demo.v", exampleSrc)
	for _, r := range d.ReferenceWords() {
		fmt.Printf("%s: %s\n", r.Name, strings.Join(r.Bits, " "))
	}
	// Output:
	// w_reg: d0 d1
}

// ExamplePropagate derives operand words from identified seeds.
func ExamplePropagate() {
	d, _ := gatewords.ParseVerilogString("demo.v", exampleSrc)
	rep, _ := gatewords.Identify(d, gatewords.Options{DFFInputsOnly: true})
	var derived []string
	for _, w := range gatewords.Propagate(d, rep, gatewords.PropagateOptions{}) {
		if w.Direction == "backward" {
			derived = append(derived, strings.Join(w.Bits, " "))
		}
	}
	sort.Strings(derived)
	for _, line := range derived {
		fmt.Println(line)
	}
	// Output:
	// a0 a1
	// b0 b1
	// x0 x1
	// y0 y1
}

// ExampleDiscoverOperators classifies the gate columns driving words.
func ExampleDiscoverOperators() {
	d, _ := gatewords.ParseVerilogString("demo.v", exampleSrc)
	ops := gatewords.DiscoverOperators(d, [][]string{{"d0", "d1"}})
	for _, op := range ops {
		fmt.Println(op.Kind, op.Op)
	}
	// Output:
	// bitwise NAND
}
