package gatewords

import "testing"

// TestVerifyReductionOnB14 is the acceptance gate for the semantic analysis
// layer: on the b14/b14a benchmarks, every control-signal reduction that
// backs an emitted word must have each rewritten bit cone PROVED equivalent
// to the original cone under the assigned control values. Zero refutations
// allowed; Unknown is tolerated only as explicit SAT-budget exhaustion.
func TestVerifyReductionOnB14(t *testing.T) {
	if testing.Short() {
		t.Skip("b14 generation in -short mode")
	}
	for _, name := range []string{"b14", "b14a"} {
		t.Run(name, func(t *testing.T) {
			d, err := GenerateBenchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Identify(d, Options{VerifyReduction: true})
			if err != nil {
				t.Fatal(err)
			}
			rv := rep.ReductionVerification
			if rv == nil {
				t.Fatal("VerifyReduction set but no verification report")
			}
			if rv.ConesRefuted != 0 {
				t.Fatalf("%d rewritten cones REFUTED — reduction unsound: %+v",
					rv.ConesRefuted, rv.Failures)
			}
			if !rv.Sound() {
				t.Fatal("Sound() false with zero refutations")
			}
			if len(rep.ControlSignalsUsed) > 0 && rv.ConesProved == 0 {
				t.Fatalf("control signals used (%v) but no cones proved",
					rep.ControlSignalsUsed)
			}
			for _, f := range rv.Failures {
				if f.Verdict == "unknown" && f.Stage != "sat" {
					t.Errorf("cone %s undecided outside the SAT budget (stage %s)", f.Bit, f.Stage)
				}
			}
			t.Logf("%s: proved=%d refuted=%d unknown=%d words=%d",
				name, rv.ConesProved, rv.ConesRefuted, rv.ConesUnknown, len(rep.Words))
		})
	}
}

// TestVerifyReductionParallelMerge checks the verification stats survive the
// parallel group-merge path unchanged.
func TestVerifyReductionParallelMerge(t *testing.T) {
	d, err := GenerateBenchmark("b08")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Identify(d, Options{VerifyReduction: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Identify(d, Options{VerifyReduction: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sv, pv := seq.ReductionVerification, par.ReductionVerification
	if sv == nil || pv == nil {
		t.Fatal("missing verification report")
	}
	if sv.ConesProved != pv.ConesProved || sv.ConesRefuted != pv.ConesRefuted || sv.ConesUnknown != pv.ConesUnknown {
		t.Fatalf("parallel merge diverged: seq=%+v par=%+v", sv, pv)
	}
}
