package gatewords

import (
	"strings"
	"testing"
	"time"

	"gatewords/internal/report"
)

func TestWriteJSON(t *testing.T) {
	d, err := ParseVerilogString("dp.v", datapathModule)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(d, rep)
	var sb strings.Builder
	if err := WriteJSON(&sb, d, rep, &ev, false, 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	doc, err := report.Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("emitted JSON unreadable: %v", err)
	}
	if doc.Module != "dp" || doc.Technique != "control-signals" {
		t.Errorf("header: %+v", doc)
	}
	if doc.Stats.DFFs != 3 {
		t.Errorf("stats: %+v", doc.Stats)
	}
	if doc.Evaluation == nil || doc.Evaluation.ReferenceWords != 1 {
		t.Errorf("evaluation: %+v", doc.Evaluation)
	}
	if doc.Runtime != 0.25 {
		t.Errorf("runtime: %f", doc.Runtime)
	}
	for _, w := range doc.Words {
		if len(w.Bits) < 2 {
			t.Error("includeAll=false leaked a singleton")
		}
	}

	// Without evaluation, the block is omitted.
	sb.Reset()
	if err := WriteJSON(&sb, d, rep, nil, true, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "evaluation") {
		t.Error("nil evaluation serialized")
	}
}

func TestWriteWordGraphDOT(t *testing.T) {
	d, err := ParseVerilogString("dp.v", datapathModule)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Identify(d, Options{DFFInputsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	var words [][]string
	for _, w := range Propagate(d, rep, PropagateOptions{}) {
		words = append(words, w.Bits)
	}
	var sb strings.Builder
	if err := WriteWordGraphDOT(&sb, d, words); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"digraph", "a[2:0]", "mux", "->"} {
		if !strings.Contains(out, frag) {
			t.Errorf("word graph missing %q:\n%s", frag, out)
		}
	}
}

func TestIdentifyFunctionalFacade(t *testing.T) {
	d, err := ParseVerilogString("dp.v", datapathModule)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := IdentifyFunctional(d, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Technique != "functional" {
		t.Errorf("technique %q", rep.Technique)
	}
	ev := Evaluate(d, rep)
	if ev.FullyFound != 1 {
		t.Errorf("functional matcher on uniform word: %+v", ev)
	}
}
