// Benchmarks regenerating the paper's experiments.
//
// Table 1 (the paper's only results table) gets one benchmark pair per
// ITC99-analog row: BenchmarkTable1_<name>/Base measures shape hashing,
// /Ours measures the control-signal technique, both end-to-end on the
// generated circuit. BenchmarkFigure1 exercises the paper's running
// example. The Ablation benchmarks measure the design choices DESIGN.md
// calls out: assignment budget (the paper's §2.5 singles-then-pairs and its
// future-work triples), fanin-cone depth (§2.1 argues 2–4 levels), the
// cohesive partial-group rule, and backwardless reduction is covered by the
// reduce micro-benchmarks.
//
// Run with: go test -bench=. -benchmem
package gatewords

import (
	"fmt"
	"strings"
	"testing"

	"gatewords/internal/bench"
	"gatewords/internal/core"
	"gatewords/internal/metrics"
	"gatewords/internal/reduce"
	"gatewords/internal/shapehash"
	"gatewords/internal/verilog"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

var benchCache = map[string]*bench.Generated{}

func generatedBench(b *testing.B, name string) *bench.Generated {
	b.Helper()
	if g, ok := benchCache[name]; ok {
		return g
	}
	p, ok := bench.ProfileByName(name)
	if !ok {
		b.Fatalf("no profile %s", name)
	}
	g, err := p.Generate()
	if err != nil {
		b.Fatal(err)
	}
	benchCache[name] = g
	return g
}

// benchmarkRow measures one Table-1 cell and reports the paper's metrics as
// custom benchmark outputs so `go test -bench` regenerates the table.
func benchmarkRow(b *testing.B, name string, ours bool) {
	gen := generatedBench(b, name)
	var rep metrics.Report
	var ctrl int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ours {
			res := core.Identify(gen.NL, core.Options{})
			rep = metrics.Evaluate(gen.Refs, res.GeneratedWords())
			ctrl = len(res.UsedControlSignals)
		} else {
			res := shapehash.Identify(gen.NL, 0)
			rep = metrics.Evaluate(gen.Refs, res.Words)
		}
	}
	b.ReportMetric(rep.FullyFoundPct(), "full%")
	b.ReportMetric(rep.FragmentationRate, "frag")
	b.ReportMetric(rep.NotFoundPct(), "notfound%")
	if ours {
		b.ReportMetric(float64(ctrl), "ctrlsigs")
	}
}

func benchmarkTable1(b *testing.B, name string) {
	b.Run("Base", func(b *testing.B) { benchmarkRow(b, name, false) })
	b.Run("Ours", func(b *testing.B) { benchmarkRow(b, name, true) })
}

func BenchmarkTable1_b03(b *testing.B) { benchmarkTable1(b, "b03a") }
func BenchmarkTable1_b04(b *testing.B) { benchmarkTable1(b, "b04a") }
func BenchmarkTable1_b05(b *testing.B) { benchmarkTable1(b, "b05a") }
func BenchmarkTable1_b07(b *testing.B) { benchmarkTable1(b, "b07a") }
func BenchmarkTable1_b08(b *testing.B) { benchmarkTable1(b, "b08a") }
func BenchmarkTable1_b11(b *testing.B) { benchmarkTable1(b, "b11a") }
func BenchmarkTable1_b12(b *testing.B) { benchmarkTable1(b, "b12a") }
func BenchmarkTable1_b13(b *testing.B) { benchmarkTable1(b, "b13a") }
func BenchmarkTable1_b14(b *testing.B) { benchmarkTable1(b, "b14a") }
func BenchmarkTable1_b15(b *testing.B) { benchmarkTable1(b, "b15a") }
func BenchmarkTable1_b17(b *testing.B) { benchmarkTable1(b, "b17a") }
func BenchmarkTable1_b18(b *testing.B) { benchmarkTable1(b, "b18a") }

// BenchmarkFigure1 runs the paper's running example end-to-end (word
// recovered via the U201/U221-style control signals).
func BenchmarkFigure1(b *testing.B) {
	nl, _, err := bench.Figure1Circuit()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Identify(nl, core.Options{})
		if len(res.UsedControlSignals) == 0 {
			b.Fatal("figure-1 control signals not used")
		}
	}
}

// BenchmarkAblationMaxAssign sweeps the simultaneous-assignment budget on
// b12 (which contains both single- and pair-recoverable words); the paper's
// future-work extension is budget 3. The cohesive partial-group rule is
// disabled here so the metric isolates what *reduction alone* recovers —
// with it on, cohesion masks the budget (the grouping, though unverified,
// already covers the words).
func BenchmarkAblationMaxAssign(b *testing.B) {
	gen := generatedBench(b, "b12a")
	for _, ma := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("assign%d", ma), func(b *testing.B) {
			var rep metrics.Report
			for i := 0; i < b.N; i++ {
				res := core.Identify(gen.NL, core.Options{MaxAssign: ma, NoPartialGroups: true})
				rep = metrics.Evaluate(gen.Refs, res.GeneratedWords())
			}
			b.ReportMetric(rep.FullyFoundPct(), "full%")
		})
	}
}

// BenchmarkAblationConeDepth sweeps the fanin-cone depth on b15; the paper
// argues similarity survives only 2–4 levels of logic.
func BenchmarkAblationConeDepth(b *testing.B) {
	gen := generatedBench(b, "b15a")
	for _, depth := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			var rep metrics.Report
			for i := 0; i < b.N; i++ {
				res := core.Identify(gen.NL, core.Options{Depth: depth})
				rep = metrics.Evaluate(gen.Refs, res.GeneratedWords())
			}
			b.ReportMetric(rep.FullyFoundPct(), "full%")
		})
	}
}

// BenchmarkAblationPartialGroups toggles the cohesive partial-group rule on
// b04, whose improvement comes entirely from it (zero control signals).
func BenchmarkAblationPartialGroups(b *testing.B) {
	gen := generatedBench(b, "b04a")
	for _, off := range []bool{false, true} {
		name := "on"
		if off {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var rep metrics.Report
			for i := 0; i < b.N; i++ {
				res := core.Identify(gen.NL, core.Options{NoPartialGroups: off})
				rep = metrics.Evaluate(gen.Refs, res.GeneratedWords())
			}
			b.ReportMetric(rep.FullyFoundPct(), "full%")
		})
	}
}

// BenchmarkParseVerilog measures the frontend on a mid-size benchmark.
func BenchmarkParseVerilog(b *testing.B) {
	gen := generatedBench(b, "b15a")
	text, err := verilog.WriteString(gen.NL)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := verilog.Parse("b15a.v", text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConeHashing measures hash-key construction over every candidate
// net of the two largest profiles. Allocation counts here track the key
// engine directly: hash-consed tuple interning vs. the former per-node
// string building.
func BenchmarkConeHashing(b *testing.B) {
	for _, name := range []string{"b14a", "b15a"} {
		b.Run(name, func(b *testing.B) {
			gen := generatedBench(b, name)
			nl := gen.NL
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it := coneInterner()
				builder := coneBuilder(nl, it)
				n := 0
				for id := 0; id < nl.NetCount(); id++ {
					if bc := builder.Bit(netlist.NetID(id)); bc != nil {
						n++
					}
				}
				if n == 0 {
					b.Fatal("no cones")
				}
			}
		})
	}
}

// BenchmarkReduceApply measures one constant-propagation pass on b15 from a
// decode net.
func BenchmarkReduceApply(b *testing.B) {
	gen := generatedBench(b, "b15a")
	nl := gen.NL
	// Use the first decode wire's net (dec wires synthesize to U-names, so
	// pick any NAND-driven internal net with fanout > 2).
	var pin netlist.NetID = netlist.NoNet
	for id := 0; id < nl.NetCount(); id++ {
		n := nl.Net(netlist.NetID(id))
		if n.Driver != netlist.NoGate && len(n.Fanout) > 2 && nl.Gate(n.Driver).Kind == logic.Nand {
			pin = netlist.NetID(id)
			break
		}
	}
	if pin == netlist.NoNet {
		b.Fatal("no suitable pin")
	}
	assign := map[netlist.NetID]logic.Value{pin: logic.Zero}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reduce.Apply(nl, assign); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures benchmark synthesis itself (RTL -> gates).
func BenchmarkGenerate(b *testing.B) {
	p, _ := bench.ProfileByName("b12a")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndFacade measures the public API path: parse + identify +
// evaluate on b08's Verilog.
func BenchmarkEndToEndFacade(b *testing.B) {
	gen := generatedBench(b, "b08a")
	text, err := verilog.WriteString(gen.NL)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := ParseVerilog("b08a.v", strings.NewReader(text))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := Identify(d, Options{})
		if err != nil {
			b.Fatal(err)
		}
		ev := Evaluate(d, rep)
		if ev.FullyFound == 0 {
			b.Fatal("nothing found")
		}
	}
}

// BenchmarkParallelIdentify compares sequential and parallel group
// processing on the largest benchmark.
func BenchmarkParallelIdentify(b *testing.B) {
	gen := generatedBench(b, "b18a")
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Identify(gen.NL, core.Options{Workers: workers})
			}
		})
	}
}
