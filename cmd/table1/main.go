// Command table1 regenerates Table 1 of DAC'15 "On Using Control Signals
// for Word-Level Identification in A Gate-Level Netlist": it generates the
// ITC99-analog benchmarks, runs both the shape-hashing baseline and the
// control-signal technique, and prints full-found / fragmentation /
// not-found metrics per benchmark with the paper's numbers alongside.
//
// Usage:
//
//	table1 [-paper=false] [-v] [-depth N] [-maxassign N] [bench ...]
//
// With no benchmark arguments every profile (b03a..b18a) runs. -v appends a
// per-stage wall-time breakdown of the control-signal pipeline (grouping →
// matching → ctrl-sig discovery → trial loop → verification) per benchmark.
package main

import (
	"flag"
	"fmt"
	"os"

	"gatewords/internal/bench"
	"gatewords/internal/core"
)

func main() {
	withPaper := flag.Bool("paper", true, "print the paper's Table 1 numbers alongside measured rows")
	depth := flag.Int("depth", 0, "fanin-cone depth (default 4)")
	maxAssign := flag.Int("maxassign", 0, "max simultaneous control assignments (default 2)")
	noPartial := flag.Bool("nopartial", false, "disable cohesive partial-group emission (ablation)")
	verbose := flag.Bool("v", false, "append the per-stage wall-time breakdown of the Ours pipeline per benchmark")
	flag.Parse()

	opt := core.Options{Depth: *depth, MaxAssign: *maxAssign, NoPartialGroups: *noPartial}

	profiles := bench.Profiles
	if args := flag.Args(); len(args) > 0 {
		profiles = nil
		for _, name := range args {
			p, ok := bench.ProfileByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "table1: unknown benchmark %q\n", name)
				os.Exit(2)
			}
			profiles = append(profiles, p)
		}
	}
	rows, err := bench.RunAll(profiles, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "table1: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(bench.FormatTable(rows, *withPaper))
	if *verbose {
		fmt.Println("\nper-stage breakdown (Ours):")
		for _, r := range rows {
			fmt.Printf("%-6s %s\n", r.Name, r.Obs.StageLine())
		}
	}
}
