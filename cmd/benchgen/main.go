// Command benchgen emits the generated ITC99-analog benchmark suite as
// structural Verilog files, one per benchmark, so the circuits can be
// inspected or fed to external tools.
//
// Usage:
//
//	benchgen [-out DIR] [bench ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gatewords"
)

func main() {
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = gatewords.BenchmarkNames()
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	for _, name := range names {
		d, err := gatewords.GenerateBenchmark(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, d.Name()+".v")
		if err := d.WriteVerilogFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		st := d.Stats()
		fmt.Printf("%-24s %7d nets %7d gates %5d FFs\n", path, st.Nets, st.Gates+st.DFFs, st.DFFs)
	}
}
