// Command netstat prints statistics for a gate-level Verilog netlist and a
// census of the golden reference words recoverable from its register names.
//
// Usage:
//
//	netstat [-dot out.dot] design.v
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gatewords"
)

func main() {
	dot := flag.String("dot", "", "also write a Graphviz rendering to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: netstat [-dot out.dot] design.v")
		os.Exit(2)
	}
	d, err := gatewords.ParseVerilogFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "netstat: %v\n", err)
		os.Exit(1)
	}
	st := d.Stats()
	fmt.Printf("module %s\n", d.Name())
	fmt.Printf("  nets:       %d\n", st.Nets)
	fmt.Printf("  gates:      %d\n", st.Gates)
	fmt.Printf("  flip-flops: %d\n", st.DFFs)
	fmt.Printf("  inputs:     %d\n", st.PIs)
	fmt.Printf("  outputs:    %d\n", st.POs)

	refs := d.ReferenceWords()
	bits := 0
	for _, r := range refs {
		bits += len(r.Bits)
	}
	fmt.Printf("  reference words: %d", len(refs))
	if len(refs) > 0 {
		fmt.Printf(" (avg %.2f bits)", float64(bits)/float64(len(refs)))
	}
	fmt.Println()
	for _, r := range refs {
		fmt.Printf("    %-20s %2d bits: %s\n", r.Name, len(r.Bits), strings.Join(r.Bits, " "))
	}

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netstat: %v\n", err)
			os.Exit(1)
		}
		if err := d.WriteDOT(f); err != nil {
			fmt.Fprintf(os.Stderr, "netstat: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *dot)
	}
}
