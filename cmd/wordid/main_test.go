package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"gatewords/internal/guard"
)

const fixture = "../../testdata/counter_style.v"

func runWordid(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestTraceWarnsWhenIgnored pins the fix for -trace being silently ignored:
// the flag only drives the control-signal pipeline, so combining it with
// -base or -func must say so instead of quietly dropping it.
func TestTraceWarnsWhenIgnored(t *testing.T) {
	for _, technique := range []string{"-base", "-func"} {
		code, _, stderr := runWordid(t, technique, "-trace", fixture)
		if code != 0 {
			t.Fatalf("%s -trace: exit %d\n%s", technique, code, stderr)
		}
		if !strings.Contains(stderr, "-trace") || !strings.Contains(stderr, "no effect") {
			t.Errorf("%s -trace: missing ignored-flag warning, stderr:\n%s", technique, stderr)
		}
	}
	// The default technique must stay warning-free.
	if code, _, stderr := runWordid(t, "-trace", fixture); code != 0 || strings.Contains(stderr, "no effect") {
		t.Errorf("default -trace: exit %d, stderr:\n%s", code, stderr)
	}
	// -timeout and -statsjson are ignored the same way and warn the same way.
	code, _, stderr := runWordid(t, "-base", "-timeout", "1s", "-statsjson", filepath.Join(t.TempDir(), "s.json"), fixture)
	if code != 0 || !strings.Contains(stderr, "-timeout") || !strings.Contains(stderr, "-statsjson") {
		t.Errorf("-base -timeout -statsjson: exit %d, stderr:\n%s", code, stderr)
	}
}

// TestGraphWriteSucceeds covers the happy path of -graph: file written,
// success exit, and DOT content present.
func TestGraphWriteSucceeds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "words.dot")
	code, stdout, stderr := runWordid(t, "-graph", path, fixture)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "wrote "+path) {
		t.Errorf("stdout missing write confirmation:\n%s", stdout)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("digraph")) {
		t.Errorf("graph file is not DOT:\n%s", data)
	}
}

// TestGraphWriteFailureIsAnError pins the fix for the ignored f.Close()
// error: a write failure on the DOT file (here: /dev/full, where buffered
// data dies at close/write time) must fail the run instead of printing
// "wrote" over a truncated file.
func TestGraphWriteFailureIsAnError(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("/dev/full is a Linux fixture")
	}
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	code, stdout, stderr := runWordid(t, "-graph", "/dev/full", fixture)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if strings.Contains(stdout, "wrote") {
		t.Errorf("claimed success on a failed write:\n%s", stdout)
	}
	if !strings.Contains(stderr, "wordid:") {
		t.Errorf("missing error report:\n%s", stderr)
	}
}

// TestStatsJSON drives -statsjson end to end: the file must be valid JSON
// holding the per-stage breakdown with the trial stage populated.
func TestStatsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.json")
	code, _, stderr := runWordid(t, "-statsjson", path, fixture)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Stages []struct {
			Stage string  `json:"stage"`
			MS    float64 `json:"ms"`
			Spans int64   `json:"spans"`
		} `json:"stages"`
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid stats JSON: %v\n%s", err, data)
	}
	if len(doc.Stages) == 0 {
		t.Fatalf("no stages in stats JSON:\n%s", data)
	}
	byName := map[string]int64{}
	for _, s := range doc.Stages {
		byName[s.Stage] = s.Spans
	}
	if byName["group"] != 1 {
		t.Errorf("group stage spans = %d, want 1", byName["group"])
	}
	if byName["trial"] == 0 {
		t.Error("trial stage recorded no spans on a design with control-signal trials")
	}
	trials := int64(-1)
	for _, c := range doc.Counters {
		if c.Name == "trials" {
			trials = c.Value
		}
	}
	if trials <= 0 {
		t.Errorf("trials counter = %d, want > 0", trials)
	}
}

// TestTimeoutFlagAccepted checks the plumbing of -timeout on a design small
// enough to finish instantly: the run completes, is not marked interrupted,
// and exits 0. (Deadline expiry semantics are pinned at the library level on
// the b18 analog, where the run is long enough to interrupt determinately.)
func TestTimeoutFlagAccepted(t *testing.T) {
	code, stdout, stderr := runWordid(t, "-timeout", "1m", "-json", fixture)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr)
	}
	if strings.Contains(stderr, "interrupted") {
		t.Errorf("1m timeout must not interrupt a trivial design:\n%s", stderr)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if doc["interrupted"] != nil {
		t.Errorf("interrupted = %v in JSON, want omitted", doc["interrupted"])
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	code, _, stderr := runWordid(t, "-cpuprofile", cpu, "-memprofile", mem, fixture)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr)
	}
	// The CPU profile is finalized by the deferred StopCPUProfile inside
	// run(), so both files must exist and be non-empty by now.
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

// TestFaultSummaryExitZero pins the isolation contract at the CLI: with
// -fail-fast off, a group failure yields a one-line partial-result summary
// on stderr and exit 0, and the failure lands in the -statsjson file.
func TestFaultSummaryExitZero(t *testing.T) {
	guard.Reset()
	defer guard.Reset()
	guard.Plant("match", guard.AnyGroup)
	path := filepath.Join(t.TempDir(), "stats.json")
	code, _, stderr := runWordid(t, "-statsjson", path, fixture)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (isolation, not abort)\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "partial result: 1 group failure(s)") {
		t.Errorf("missing partial-result summary, stderr:\n%s", stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Failures []struct {
			Group   int    `json:"group"`
			Stage   string `json:"stage"`
			Message string `json:"message"`
		} `json:"failures"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid stats JSON: %v\n%s", err, data)
	}
	if len(doc.Failures) != 1 || doc.Failures[0].Stage != "match" {
		t.Errorf("stats JSON failures = %+v, want one at stage match", doc.Failures)
	}
}

// TestFaultFailFastExitTwo pins -fail-fast: the same injected failure now
// aborts the run with exit 2 and names the failure on stderr.
func TestFaultFailFastExitTwo(t *testing.T) {
	guard.Reset()
	defer guard.Reset()
	guard.Plant("match", guard.AnyGroup)
	code, _, stderr := runWordid(t, "-fail-fast", fixture)
	if code != 2 {
		t.Fatalf("exit %d, want 2\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "aborted by -fail-fast") || !strings.Contains(stderr, `stage "match"`) {
		t.Errorf("missing fail-fast abort line, stderr:\n%s", stderr)
	}
}

// TestBudgetFlagDegradationSummary drives -max-cone-gates to an absurd low:
// the fixture's dissimilar subgroup degrades to the structural match, the
// run still exits 0, the degradation summary lands on stderr, and the JSON
// report itemizes it.
func TestBudgetFlagDegradationSummary(t *testing.T) {
	code, stdout, stderr := runWordid(t, "-max-cone-gates", "1", "-json", fixture)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr)
	}
	var doc struct {
		Degradations []struct {
			Reason string `json:"reason"`
		} `json:"degradations"`
		DegradedGroups int `json:"degraded_groups"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(doc.Degradations) == 0 {
		t.Fatalf("no degradations with -max-cone-gates 1:\n%s", stdout)
	}
	if !strings.Contains(stderr, "budget degradation") {
		t.Errorf("missing degradation summary on stderr:\n%s", stderr)
	}
	if doc.DegradedGroups == 0 {
		t.Errorf("degraded_groups = 0 with %d degradations", len(doc.Degradations))
	}
	for _, d := range doc.Degradations {
		if d.Reason != "max-cone-gates" {
			t.Errorf("degradation reason = %q", d.Reason)
		}
	}
}
