// Command wordid identifies words in a flattened gate-level Verilog
// netlist using the DAC'15 control-signal technique (default) or the
// shape-hashing baseline, and optionally scores the result against the
// golden reference words recovered from register names.
//
// Usage:
//
//	wordid [flags] design.v
//
// Flags:
//
//	-base          run the shape-hashing baseline instead
//	-depth N       fanin-cone depth (default 4)
//	-maxassign N   max simultaneous control assignments (default 2)
//	-eval          score against reference words from register names
//	-all           print 1-bit words too
//	-trace         print the pipeline's decision trace
//	-timeout D     deadline-bound the run; expiry yields a partial result
//	-statsjson F   write the per-stage observability breakdown to F
//	-cpuprofile F  write a CPU profile (stage-labeled samples) to F
//	-memprofile F  write a heap profile to F at exit
//	-fail-fast     exit 2 at the first group failure instead of isolating it
//	-max-cone-gates N       degrade subgroups with cone scopes over N nets
//	-max-subgroup-pairs N   degrade subgroups with bits×subtrees over N
//	-max-trials-per-group N cap control-assignment trials per group
//
// A group whose pipeline panics is isolated: its words are dropped, every
// other group's words are reported as in a clean run, and a one-line summary
// lands on stderr (exit 0 unless -fail-fast). Budget flags degrade oversized
// subgroups to the structural match instead of stalling.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"gatewords"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wordid", flag.ContinueOnError)
	fs.SetOutput(stderr)
	base := fs.Bool("base", false, "run the shape-hashing baseline")
	fn := fs.Bool("func", false, "run the functional (truth-table) matcher")
	depth := fs.Int("depth", 0, "fanin-cone depth (default 4)")
	maxAssign := fs.Int("maxassign", 0, "max simultaneous control assignments (default 2)")
	eval := fs.Bool("eval", false, "evaluate against golden reference words")
	all := fs.Bool("all", false, "print single-bit words too")
	trace := fs.Bool("trace", false, "print the decision trace")
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON report instead of text")
	graph := fs.String("graph", "", "write the word-level dataflow graph (after propagation) to this DOT file")
	timeout := fs.Duration("timeout", 0, "bound the identification wall time; on expiry a partial result is reported with interrupted set")
	statsJSON := fs.String("statsjson", "", "write the per-stage timing/counter breakdown as JSON to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file (samples carry per-stage pprof labels)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	failFast := fs.Bool("fail-fast", false, "exit 2 at the first group failure instead of isolating it and continuing")
	maxConeGates := fs.Int("max-cone-gates", 0, "degrade subgroups whose fanin-cone scope exceeds this many nets (0 = unlimited)")
	maxSubgroupPairs := fs.Int("max-subgroup-pairs", 0, "degrade subgroups whose bits x dissimilar-subtrees product exceeds this (0 = unlimited)")
	maxTrialsPerGroup := fs.Int("max-trials-per-group", 0, "cap control-assignment trials per adjacency group (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: wordid [flags] design.v")
		fs.PrintDefaults()
		return 2
	}
	// The observability and pipeline-control flags only act on the default
	// control-signal technique; silently accepting them alongside -base or
	// -func would report a run that never happened.
	if *base || *fn {
		for _, ignored := range []struct {
			set  bool
			name string
		}{
			{*trace, "-trace"},
			{*timeout != 0, "-timeout"},
			{*statsJSON != "", "-statsjson"},
			{*failFast, "-fail-fast"},
			{*maxConeGates != 0, "-max-cone-gates"},
			{*maxSubgroupPairs != 0, "-max-subgroup-pairs"},
			{*maxTrialsPerGroup != 0, "-max-trials-per-group"},
		} {
			if ignored.set {
				fmt.Fprintf(stderr, "wordid: warning: %s has no effect with -base/-func; ignoring\n", ignored.name)
			}
		}
	}
	d, err := gatewords.ParseVerilogFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "wordid: %v\n", err)
		return 1
	}
	if !*jsonOut {
		st := d.Stats()
		fmt.Fprintf(stdout, "%s: %d nets, %d gates, %d flip-flops, %d PIs, %d POs\n",
			d.Name(), st.Nets, st.Gates, st.DFFs, st.PIs, st.POs)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "wordid: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "wordid: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "wordid: closing %s: %v\n", *cpuProfile, err)
			}
		}()
	}

	var observer *gatewords.Observer
	if *statsJSON != "" || (*cpuProfile != "" && !*base && !*fn) {
		observer = gatewords.NewObserver()
		if *cpuProfile != "" {
			// Stage labels cost an allocation per region; pay it only while
			// the profile that consumes them is actually being taken.
			observer.EnableProfileLabels()
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	var rep *gatewords.Report
	switch {
	case *base:
		rep, err = gatewords.IdentifyBaseline(d, *depth)
	case *fn:
		rep, err = gatewords.IdentifyFunctional(d, *depth, 0)
	default:
		rep, err = gatewords.Identify(d, gatewords.Options{
			Depth:     *depth,
			MaxAssign: *maxAssign,
			Trace:     *trace,
			Context:   ctx,
			Observer:  observer,
			Budgets: gatewords.Budgets{
				MaxConeGates:      *maxConeGates,
				MaxSubgroupPairs:  *maxSubgroupPairs,
				MaxTrialsPerGroup: *maxTrialsPerGroup,
			},
			FailFast: *failFast,
		})
	}
	if err != nil {
		fmt.Fprintf(stderr, "wordid: %v\n", err)
		return 1
	}
	elapsed := time.Since(start)
	if rep.Interrupted {
		fmt.Fprintf(stderr, "wordid: interrupted after %s (-timeout %s): reporting the partial result\n",
			elapsed.Round(time.Millisecond), *timeout)
	}
	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, observer, rep); err != nil {
			fmt.Fprintf(stderr, "wordid: %v\n", err)
			return 1
		}
	}
	if *failFast && len(rep.Failures) > 0 {
		// The stats file above is still written: a failed run's observability
		// is exactly when it matters.
		fmt.Fprintf(stderr, "wordid: aborted by -fail-fast: %s\n", rep.Failures[0])
		return 2
	}
	if len(rep.Failures) > 0 || len(rep.Degradations) > 0 {
		fmt.Fprintf(stderr, "wordid: partial result: %d group failure(s), %d budget degradation(s) in %d group(s); all other groups are complete\n",
			len(rep.Failures), len(rep.Degradations), rep.DegradedGroups)
	}
	if *memProfile != "" {
		defer func() {
			if err := writeHeapProfile(*memProfile); err != nil {
				fmt.Fprintf(stderr, "wordid: %v\n", err)
			}
		}()
	}
	if *jsonOut {
		var evp *gatewords.Evaluation
		if *eval {
			ev := gatewords.Evaluate(d, rep)
			evp = &ev
		}
		if err := gatewords.WriteJSON(stdout, d, rep, evp, *all, elapsed); err != nil {
			fmt.Fprintf(stderr, "wordid: %v\n", err)
			return 1
		}
		return 0
	}
	if *trace && !*base && !*fn {
		for _, line := range rep.Trace {
			fmt.Fprintln(stdout, "#", line)
		}
	}

	words := rep.Words
	if !*all {
		words = rep.MultiBitWords()
	}
	fmt.Fprintf(stdout, "technique %s: %d words\n", rep.Technique, len(words))
	for _, w := range words {
		mark := " "
		if w.Verified {
			mark = "*"
		}
		line := fmt.Sprintf("%s %2d bits: %s", mark, len(w.Bits), strings.Join(w.Bits, " "))
		if len(w.ControlSignals) > 0 {
			var assigns []string
			for _, c := range w.ControlSignals {
				v := 0
				if w.Assignment[c] {
					v = 1
				}
				assigns = append(assigns, fmt.Sprintf("%s=%d", c, v))
			}
			line += "  [controls: " + strings.Join(assigns, ", ") + "]"
		}
		fmt.Fprintln(stdout, line)
	}
	if len(rep.ControlSignalsUsed) > 0 {
		fmt.Fprintf(stdout, "control signals used: %s\n", strings.Join(rep.ControlSignalsUsed, ", "))
	}

	if *eval {
		ev := gatewords.Evaluate(d, rep)
		fmt.Fprintf(stdout, "reference words: %d  fully found: %d (%.1f%%)  partially found: %d (frag %.2f)  not found: %d (%.1f%%)\n",
			ev.ReferenceWords, ev.FullyFound, ev.FullyFoundPct,
			ev.PartiallyFound, ev.FragmentationRate, ev.NotFound, ev.NotFoundPct)
	}

	if *graph != "" {
		if err := writeGraph(*graph, d, rep); err != nil {
			fmt.Fprintf(stderr, "wordid: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *graph)
	}
	return 0
}

// writeGraph renders the propagated word-level dataflow graph to a DOT file.
// The Close error is checked: on a full disk the final flush is where the
// write failure surfaces, and ignoring it would leave a silently truncated
// graph behind a success exit code.
func writeGraph(path string, d *gatewords.Design, rep *gatewords.Report) error {
	var graphWords [][]string
	for _, pw := range gatewords.Propagate(d, rep, gatewords.PropagateOptions{}) {
		graphWords = append(graphWords, pw.Bits)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gatewords.WriteWordGraphDOT(f, d, graphWords); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", path, err)
	}
	return nil
}

// writeStatsJSON merges the observer breakdown with the run's failure and
// degradation records so one file answers both "where did the time go" and
// "what went wrong". The merge goes through a generic map because the
// observer already defines its own MarshalJSON layout.
func writeStatsJSON(path string, observer *gatewords.Observer, rep *gatewords.Report) error {
	data, err := json.Marshal(observer)
	if err != nil {
		return err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if rep != nil && len(rep.Failures) > 0 {
		var failures []map[string]any
		for _, f := range rep.Failures {
			failures = append(failures, map[string]any{
				"group": f.Group, "stage": f.Stage, "message": f.Message,
			})
		}
		doc["failures"] = failures
	}
	if rep != nil && len(rep.Degradations) > 0 {
		var degs []map[string]any
		for _, dg := range rep.Degradations {
			degs = append(degs, map[string]any{
				"group": dg.Group, "subgroup": dg.Subgroup,
				"reason": dg.Reason, "detail": dg.Detail,
			})
		}
		doc["degradations"] = degs
		doc["degraded_groups"] = rep.DegradedGroups
	}
	data, err = json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialize a settled heap before the snapshot
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
