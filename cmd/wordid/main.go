// Command wordid identifies words in a flattened gate-level Verilog
// netlist using the DAC'15 control-signal technique (default) or the
// shape-hashing baseline, and optionally scores the result against the
// golden reference words recovered from register names.
//
// Usage:
//
//	wordid [flags] design.v
//
// Flags:
//
//	-base          run the shape-hashing baseline instead
//	-depth N       fanin-cone depth (default 4)
//	-maxassign N   max simultaneous control assignments (default 2)
//	-eval          score against reference words from register names
//	-all           print 1-bit words too
//	-trace         print the pipeline's decision trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gatewords"
)

func main() {
	base := flag.Bool("base", false, "run the shape-hashing baseline")
	fn := flag.Bool("func", false, "run the functional (truth-table) matcher")
	depth := flag.Int("depth", 0, "fanin-cone depth (default 4)")
	maxAssign := flag.Int("maxassign", 0, "max simultaneous control assignments (default 2)")
	eval := flag.Bool("eval", false, "evaluate against golden reference words")
	all := flag.Bool("all", false, "print single-bit words too")
	trace := flag.Bool("trace", false, "print the decision trace")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report instead of text")
	graph := flag.String("graph", "", "write the word-level dataflow graph (after propagation) to this DOT file")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wordid [flags] design.v")
		flag.PrintDefaults()
		os.Exit(2)
	}
	d, err := gatewords.ParseVerilogFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "wordid: %v\n", err)
		os.Exit(1)
	}
	if !*jsonOut {
		st := d.Stats()
		fmt.Printf("%s: %d nets, %d gates, %d flip-flops, %d PIs, %d POs\n",
			d.Name(), st.Nets, st.Gates, st.DFFs, st.PIs, st.POs)
	}
	start := time.Now()

	var rep *gatewords.Report
	switch {
	case *base:
		rep, err = gatewords.IdentifyBaseline(d, *depth)
	case *fn:
		rep, err = gatewords.IdentifyFunctional(d, *depth, 0)
	default:
		rep, err = gatewords.Identify(d, gatewords.Options{
			Depth:     *depth,
			MaxAssign: *maxAssign,
			Trace:     *trace,
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wordid: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	if *jsonOut {
		var evp *gatewords.Evaluation
		if *eval {
			ev := gatewords.Evaluate(d, rep)
			evp = &ev
		}
		if err := gatewords.WriteJSON(os.Stdout, d, rep, evp, *all, elapsed); err != nil {
			fmt.Fprintf(os.Stderr, "wordid: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *trace {
		for _, line := range rep.Trace {
			fmt.Println("#", line)
		}
	}

	words := rep.Words
	if !*all {
		words = rep.MultiBitWords()
	}
	fmt.Printf("technique %s: %d words\n", rep.Technique, len(words))
	for _, w := range words {
		mark := " "
		if w.Verified {
			mark = "*"
		}
		line := fmt.Sprintf("%s %2d bits: %s", mark, len(w.Bits), strings.Join(w.Bits, " "))
		if len(w.ControlSignals) > 0 {
			var assigns []string
			for _, c := range w.ControlSignals {
				v := 0
				if w.Assignment[c] {
					v = 1
				}
				assigns = append(assigns, fmt.Sprintf("%s=%d", c, v))
			}
			line += "  [controls: " + strings.Join(assigns, ", ") + "]"
		}
		fmt.Println(line)
	}
	if len(rep.ControlSignalsUsed) > 0 {
		fmt.Printf("control signals used: %s\n", strings.Join(rep.ControlSignalsUsed, ", "))
	}

	if *eval {
		ev := gatewords.Evaluate(d, rep)
		fmt.Printf("reference words: %d  fully found: %d (%.1f%%)  partially found: %d (frag %.2f)  not found: %d (%.1f%%)\n",
			ev.ReferenceWords, ev.FullyFound, ev.FullyFoundPct,
			ev.PartiallyFound, ev.FragmentationRate, ev.NotFound, ev.NotFoundPct)
	}

	if *graph != "" {
		var graphWords [][]string
		for _, pw := range gatewords.Propagate(d, rep, gatewords.PropagateOptions{}) {
			graphWords = append(graphWords, pw.Bits)
		}
		f, err := os.Create(*graph)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wordid: %v\n", err)
			os.Exit(1)
		}
		if err := gatewords.WriteWordGraphDOT(f, d, graphWords); err != nil {
			fmt.Fprintf(os.Stderr, "wordid: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *graph)
	}
}
