package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const andModule = `
module ma (a, b, y);
  input a, b;
  output y;
  and g1 (y, a, b);
endmodule
`

// nandNotModule computes the same function as andModule with different
// structure (NOT of NAND).
const nandNotModule = `
module mb (a, b, y);
  input a, b;
  output y;
  wire n;
  nand g1 (n, a, b);
  not g2 (y, n);
endmodule
`

const orModule = `
module mc (a, b, y);
  input a, b;
  output y;
  or g1 (y, a, b);
endmodule
`

// xorLeft / xorRight reassociate a 3-input parity: structurally distinct
// AIGs, so only simulation or SAT can decide them.
const xorLeft = `
module xl (a, b, c, y);
  input a, b, c;
  output y;
  wire t;
  xor g1 (t, a, b);
  xor g2 (y, t, c);
endmodule
`

const xorRight = `
module xr (a, b, c, y);
  input a, b, c;
  output y;
  wire t;
  xor g1 (t, b, c);
  xor g2 (y, a, t);
endmodule
`

// gatedModule is y = a & s: equivalent to a plain buffer only under s=1.
const gatedModule = `
module mg (a, s, y);
  input a, s;
  output y;
  and g1 (y, a, s);
endmodule
`

const bufModule = `
module mh (a, s, y);
  input a, s;
  output y;
  buf g1 (y, a);
endmodule
`

func writeFile(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runGateeq(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(""), &out, &errb)
	return code, out.String(), errb.String()
}

func TestEquivalentDesigns(t *testing.T) {
	a := writeFile(t, "a.v", andModule)
	b := writeFile(t, "b.v", nandNotModule)
	code, out, _ := runGateeq(t, a, b)
	if code != 0 {
		t.Fatalf("exit %d for equivalent designs\n%s", code, out)
	}
	if !strings.Contains(out, "equivalent") {
		t.Errorf("missing verdict line:\n%s", out)
	}
}

func TestNotEquivalentDesigns(t *testing.T) {
	a := writeFile(t, "a.v", andModule)
	c := writeFile(t, "c.v", orModule)
	code, out, _ := runGateeq(t, a, c)
	if code != 1 {
		t.Fatalf("exit %d for non-equivalent designs, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "NOT EQUIVALENT") || !strings.Contains(out, "cex:") {
		t.Errorf("refutation must carry a counterexample:\n%s", out)
	}
}

func TestUnknownOnExhaustedBudget(t *testing.T) {
	l := writeFile(t, "l.v", xorLeft)
	r := writeFile(t, "r.v", xorRight)
	// Equivalent, but with simulation and SAT both disabled nothing can
	// prove it: the aggregate verdict must be unknown, exit 2.
	code, out, _ := runGateeq(t, "-sim", "-1", "-sat-budget", "-1", l, r)
	if code != 2 {
		t.Fatalf("exit %d with all engines disabled, want 2\n%s", code, out)
	}
	// With the default budgets the same pair proves.
	code, out, _ = runGateeq(t, l, r)
	if code != 0 {
		t.Fatalf("exit %d for reassociated XOR, want 0\n%s", code, out)
	}
}

func TestPinnedEquivalence(t *testing.T) {
	g := writeFile(t, "g.v", gatedModule)
	h := writeFile(t, "h.v", bufModule)
	if code, out, _ := runGateeq(t, g, h); code != 1 {
		t.Fatalf("unpinned gated design should differ, exit %d\n%s", code, out)
	}
	if code, out, _ := runGateeq(t, "-pin", "s=1", g, h); code != 0 {
		t.Fatalf("under s=1 the designs coincide, exit %d\n%s", code, out)
	}
}

func TestJSONOutput(t *testing.T) {
	a := writeFile(t, "a.v", andModule)
	c := writeFile(t, "c.v", orModule)
	code, out, _ := runGateeq(t, "-json", a, c)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var rep struct {
		A       string `json:"a"`
		B       string `json:"b"`
		Verdict string `json:"verdict"`
		Outputs []struct {
			Name    string          `json:"name"`
			Verdict string          `json:"verdict"`
			Cex     map[string]bool `json:"cex"`
		} `json:"outputs"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if rep.Verdict != "not-equivalent" || len(rep.Outputs) != 1 || rep.Outputs[0].Name != "y" {
		t.Errorf("unexpected report: %+v", rep)
	}
	if len(rep.Outputs[0].Cex) == 0 {
		t.Error("JSON refutation missing counterexample")
	}
}

func TestStdinDesign(t *testing.T) {
	a := writeFile(t, "a.v", andModule)
	var out, errb bytes.Buffer
	code := run([]string{a, "-"}, strings.NewReader(nandNotModule), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d reading second design from stdin\n%s%s", code, out.String(), errb.String())
	}
}

func TestUsageErrors(t *testing.T) {
	a := writeFile(t, "a.v", andModule)
	cases := [][]string{
		{a},                        // one design
		{a, "/nonexistent.v"},      // unreadable file
		{"-pin", "s=2", a, a},      // bad pin value
		{"-pin", "nosuch=1", a, a}, // pin matches no net
		{"-", "-"},                 // stdin twice
	}
	for _, args := range cases {
		if code, _, _ := runGateeq(t, args...); code != 3 {
			t.Errorf("args %v: exit %d, want 3", args, code)
		}
	}
}
