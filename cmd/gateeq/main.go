// Command gateeq checks two gate-level Verilog netlists for combinational
// equivalence, observable by observable: primary outputs are matched by net
// name and flip-flop next-state functions by instance name (reported as
// "ff:<name>"), over a shared input space of primary inputs and flip-flop
// states. Each pair runs through the staged prover: structural hashing in a
// shared AIG, 64-lane random simulation (which yields a concrete
// counterexample on refutation), then a SAT proof by an incremental CDCL
// solver shared across all outputs (-no-learn falls back to the legacy DPLL
// engine; -restarts tunes the CDCL Luby restart interval).
//
// Usage:
//
//	gateeq [-json] [-pin name=0,name=1] [-sat-budget N] [-no-learn] a.v b.v
//
// One of the two files may be "-" for stdin. -pin forces nets to constants
// in both designs before comparison (the Reduce tie-offs "$const0" and
// "$const1" are always pinned). The exit code is the aggregate verdict:
// 0 equivalent, 1 not equivalent, 2 unknown (budget exhausted), 3 usage or
// input error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gatewords"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gateeq", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the per-output verdicts as JSON")
	pinFlag := fs.String("pin", "", "comma-separated name=0/name=1 constants applied to both designs")
	budget := fs.Int("sat-budget", 0, "conflict cap per SAT query (0 = default, negative disables SAT)")
	simRounds := fs.Int("sim", 0, "64-lane random simulation rounds before SAT (0 = default, negative skips)")
	restarts := fs.Int("restarts", 0, "CDCL Luby restart base interval in conflicts (0 = default, negative disables restarts)")
	noLearn := fs.Bool("no-learn", false, "use the legacy non-learning DPLL engine instead of incremental CDCL")
	quiet := fs.Bool("q", false, "suppress the summary line on stderr")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: gateeq [-json] [-pin name=0,name=1] [-sat-budget N] a.v b.v")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 3
	}

	pins, err := parsePins(*pinFlag)
	if err != nil {
		fmt.Fprintf(stderr, "gateeq: %v\n", err)
		return 3
	}

	var designs [2]*gatewords.Design
	stdinUsed := false
	for i, arg := range []string{fs.Arg(0), fs.Arg(1)} {
		d, usedStdin, err := loadDesign(arg, stdin, stdinUsed)
		if err != nil {
			fmt.Fprintf(stderr, "gateeq: %v\n", err)
			return 3
		}
		stdinUsed = stdinUsed || usedStdin
		designs[i] = d
	}

	rep, err := gatewords.CheckEquivalence(designs[0], designs[1], pins, gatewords.EquivalenceOptions{
		MaxConflicts: *budget,
		SimRounds:    *simRounds,
		Restarts:     *restarts,
		NoLearn:      *noLearn,
	})
	if err != nil {
		fmt.Fprintf(stderr, "gateeq: %v\n", err)
		return 3
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			A       string `json:"a"`
			B       string `json:"b"`
			Verdict string `json:"verdict"`
			*gatewords.EquivalenceReport
		}{designs[0].Name(), designs[1].Name(), rep.Verdict(), rep}); err != nil {
			fmt.Fprintf(stderr, "gateeq: %v\n", err)
			return 3
		}
	} else {
		writeText(stdout, rep)
	}
	if !*quiet {
		fmt.Fprintf(stderr, "gateeq: %s vs %s: %s (%d output(s) compared)\n",
			designs[0].Name(), designs[1].Name(), rep.Verdict(), len(rep.Outputs))
	}

	switch rep.Verdict() {
	case "not-equivalent":
		return 1
	case "unknown":
		return 2
	}
	return 0
}

func writeText(w io.Writer, rep *gatewords.EquivalenceReport) {
	for _, o := range rep.Outputs {
		switch o.Verdict {
		case "not-equivalent":
			fmt.Fprintf(w, "%-24s NOT EQUIVALENT  cex: %s\n", o.Name, formatCex(o.Cex))
		case "unknown":
			fmt.Fprintf(w, "%-24s unknown         (%s budget exhausted)\n", o.Name, o.Stage)
		default:
			fmt.Fprintf(w, "%-24s equivalent      (%s)\n", o.Name, o.Stage)
		}
	}
	for _, n := range rep.OnlyInA {
		fmt.Fprintf(w, "%-24s only in first design — not compared\n", n)
	}
	for _, n := range rep.OnlyInB {
		fmt.Fprintf(w, "%-24s only in second design — not compared\n", n)
	}
}

// formatCex renders a counterexample deterministically, inputs sorted.
func formatCex(cex map[string]bool) string {
	names := make([]string, 0, len(cex))
	for n := range cex {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		v := 0
		if cex[n] {
			v = 1
		}
		parts[i] = fmt.Sprintf("%s=%d", n, v)
	}
	if len(parts) == 0 {
		return "(any input)"
	}
	return strings.Join(parts, " ")
}

// parsePins parses "a=0,b=1" into a pin map.
func parsePins(s string) (map[string]bool, error) {
	if s == "" {
		return nil, nil
	}
	pins := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -pin entry %q (want name=0 or name=1)", part)
		}
		switch val {
		case "0":
			pins[name] = false
		case "1":
			pins[name] = true
		default:
			return nil, fmt.Errorf("bad -pin value %q for %q (want 0 or 1)", val, name)
		}
	}
	return pins, nil
}

// loadDesign reads a design from a file or (once) from stdin.
func loadDesign(arg string, stdin io.Reader, stdinUsed bool) (*gatewords.Design, bool, error) {
	if arg == "-" {
		if stdinUsed {
			return nil, false, fmt.Errorf("stdin (\"-\") may be used for only one design")
		}
		data, err := io.ReadAll(stdin)
		if err != nil {
			return nil, false, fmt.Errorf("reading stdin: %w", err)
		}
		d, err := gatewords.ParseVerilogString("<stdin>", string(data))
		return d, true, err
	}
	d, err := gatewords.ParseVerilogFile(arg)
	return d, false, err
}
