// Command gatevet runs the repo's contract analyzers (internal/anlz/passes)
// over the module: mapdet (no map-order leaks into output), ctxpoll (work
// loops poll for cancellation), guardgo (goroutines carry recover
// boundaries), obskeys (the obs enum schema stays closed), norand (injected
// randomness and clocks only), and lockbal (facade mutexes are leaf locks).
//
// Usage:
//
//	gatevet [-json] [-only names] [-disable names] [dir]
//	gatevet -list
//
// dir defaults to "."; the loader walks up to the enclosing go.mod and
// analyzes every non-test package of that module, entirely offline (module
// and standard-library sources are type-checked from disk). Findings are
// suppressible in place with `//anlz:ignore <analyzer> <reason>`.
//
// The exit code follows gatelint's convention, collapsed to three states:
// 0 for a clean tree, 1 when findings are reported, 2 when the analysis
// itself fails (no module, unparseable or untypecheckable source, unknown
// analyzer names in -only/-disable).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gatewords/internal/anlz"
	"gatewords/internal/anlz/passes"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the -json document: deterministic field order, findings sorted
// by position.
type report struct {
	Dir      string            `json:"dir"`
	Module   string            `json:"module"`
	Count    int               `json:"count"`
	Findings []anlz.Diagnostic `json:"findings"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gatevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as deterministic JSON")
	listOut := fs.Bool("list", false, "print the analyzer registry and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run exclusively")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	quiet := fs.Bool("q", false, "suppress the summary line on stderr")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: gatevet [-json] [-only names] [-disable names] [dir]")
		fmt.Fprintln(stderr, "       gatevet -list")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listOut {
		for _, a := range passes.All() {
			fmt.Fprintf(stdout, "%-8s %s\n         contract: %s\n", a.Name, a.Doc, a.Contract)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only, *disable)
	if err != nil {
		fmt.Fprintf(stderr, "gatevet: %v\n", err)
		return 2
	}

	dir := "."
	if fs.NArg() > 0 {
		dir = fs.Arg(0)
	}
	if fs.NArg() > 1 {
		fs.Usage()
		return 2
	}

	loader, err := anlz.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(stderr, "gatevet: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(stderr, "gatevet: %v\n", err)
		return 2
	}
	badTypes := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "gatevet: %s: %v\n", pkg.Path, terr)
			badTypes = true
		}
	}
	if badTypes {
		return 2
	}

	diags, err := anlz.Run(loader, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "gatevet: %v\n", err)
		return 2
	}

	if *jsonOut {
		rep := report{Dir: dir, Module: loader.ModulePath(), Count: len(diags), Findings: diags}
		if rep.Findings == nil {
			rep.Findings = []anlz.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "gatevet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if !*quiet {
		fmt.Fprintf(stderr, "gatevet: %d packages, %d findings\n", len(pkgs), len(diags))
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers applies -only / -disable to the registry, rejecting
// unknown names so typos fail loudly.
func selectAnalyzers(only, disable string) ([]*anlz.Analyzer, error) {
	byName := make(map[string]*anlz.Analyzer)
	for _, a := range passes.All() {
		byName[a.Name] = a
	}
	parse := func(list string) (map[string]bool, error) {
		out := make(map[string]bool)
		if list == "" {
			return out, nil
		}
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (see gatevet -list)", name)
			}
			out[name] = true
		}
		return out, nil
	}
	onlySet, err := parse(only)
	if err != nil {
		return nil, err
	}
	disableSet, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []*anlz.Analyzer
	for _, a := range passes.All() {
		if len(onlySet) > 0 && !onlySet[a.Name] {
			continue
		}
		if disableSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}
