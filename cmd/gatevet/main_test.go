package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestModuleIsGatevetClean is the whole-tree regression pin: the repository
// itself must satisfy every contract analyzer. A failure here means a change
// introduced a contract violation (or a new analyzer disagrees with the
// tree) — fix the code or add a justified //anlz:ignore, never delete this
// test.
func TestModuleIsGatevetClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-q", "../.."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("gatevet exit %d on the module tree:\n%s%s", code, stdout.String(), stderr.String())
	}
}

// writeViolatingModule lays out a one-package module whose root package (the
// import path norand covers) draws from the global math/rand source.
func writeViolatingModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module gatewords\n\ngo 1.22\n",
		"bad.go": `package gatewords

import "math/rand"

func Draw() int {
	return rand.Intn(10)
}
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestSeededViolationExits1(t *testing.T) {
	dir := writeViolatingModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-q", dir}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "norand") || !strings.Contains(stdout.String(), "rand.Intn") {
		t.Errorf("finding not reported:\n%s", stdout.String())
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeViolatingModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-q", "-json", dir}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if rep.Count != 1 || len(rep.Findings) != 1 {
		t.Fatalf("count/findings = %d/%d, want 1/1", rep.Count, len(rep.Findings))
	}
	f := rep.Findings[0]
	if f.Analyzer != "norand" || f.File == "" || f.Line == 0 {
		t.Errorf("finding fields incomplete: %+v", f)
	}
	if rep.Module != "gatewords" {
		t.Errorf("module = %q", rep.Module)
	}
}

func TestDisableSilences(t *testing.T) {
	dir := writeViolatingModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-q", "-disable", "norand", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d with norand disabled, want 0:\n%s", code, stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-q", "-only", "mapdet", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d with -only mapdet, want 0:\n%s", code, stdout.String())
	}
}

func TestNoModuleExits2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-q", t.TempDir()}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d for a module-less dir, want 2", code)
	}
	if !strings.Contains(stderr.String(), "go.mod") {
		t.Errorf("error does not mention go.mod: %s", stderr.String())
	}
}

func TestUnknownAnalyzerExits2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "bogus", "."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for unknown analyzer, want 2", code)
	}
	if !strings.Contains(stderr.String(), "bogus") {
		t.Errorf("error does not name the bad analyzer: %s", stderr.String())
	}
}

func TestListNamesEveryAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, name := range []string{"ctxpoll", "guardgo", "lockbal", "mapdet", "norand", "obskeys"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestTypeErrorExits2(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module gatewords\n\ngo 1.22\n",
		"bad.go": "package gatewords\n\nfunc Broken() int { return undefinedIdent }\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-q", dir}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for an untypecheckable module, want 2; stderr: %s", code, stderr.String())
	}
}
