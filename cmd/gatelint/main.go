// Command gatelint statically analyzes a gate-level Verilog netlist and
// reports every structural defect and suspicious construct in one run:
// multi-driven nets, bad arities, combinational cycles (with the member
// gates named), floating nets, dead logic, X sources, constant-foldable and
// duplicated gates, and anomalously high-fanout candidate control signals.
//
// Usage:
//
//	gatelint [-json] [-only rules] [-disable rules] [design.v | -]
//	gatelint -rules
//
// With no file argument (or "-") the netlist is read from stdin. The exit
// code reflects the maximum severity found: 0 for a clean or info-only run,
// 1 when warnings are present, 2 on errors, 3 when the input cannot be
// parsed at all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gatewords"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as deterministic JSON")
	rulesOut := flag.Bool("rules", false, "print the rule registry and exit")
	only := flag.String("only", "", "comma-separated rule IDs or names to run exclusively")
	disable := flag.String("disable", "", "comma-separated rule IDs or names to skip")
	quiet := flag.Bool("q", false, "suppress the summary line on stderr")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gatelint [-json] [-only rules] [-disable rules] [design.v | -]")
		fmt.Fprintln(os.Stderr, "       gatelint -rules")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rulesOut {
		for _, r := range gatewords.LintRules() {
			fmt.Printf("%-6s %-18s %-5s %s\n", r.ID, r.Name, r.Severity, r.Doc)
		}
		return
	}
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(3)
	}

	name, src, err := readInput(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "gatelint: %v\n", err)
		os.Exit(3)
	}
	d, err := gatewords.ParseVerilogLenient(name, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gatelint: %v\n", err)
		os.Exit(3)
	}

	rep := gatewords.LintWith(d, gatewords.LintConfig{
		Only:    splitList(*only),
		Disable: splitList(*disable),
	})
	if *jsonOut {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gatelint: %v\n", err)
		os.Exit(3)
	}
	if !*quiet && *jsonOut {
		fmt.Fprintf(os.Stderr, "gatelint: %s: %d error(s), %d warning(s), %d info(s)\n",
			rep.Module, rep.Errors, rep.Warnings, rep.Infos)
	}
	switch rep.MaxSeverity() {
	case "error":
		os.Exit(2)
	case "warn":
		os.Exit(1)
	}
}

// readInput loads the netlist source from the named file, or from stdin for
// "" / "-".
func readInput(arg string) (name, src string, err error) {
	if arg == "" || arg == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", "", fmt.Errorf("reading stdin: %w", err)
		}
		return "<stdin>", string(data), nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return "", "", err
	}
	return arg, string(data), nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
