// Command gatelint statically analyzes a gate-level Verilog netlist and
// reports every structural defect and suspicious construct in one run:
// multi-driven nets, bad arities, combinational cycles (with the member
// gates named), floating nets, dead logic, X sources, constant-foldable and
// duplicated gates, and anomalously high-fanout candidate control signals.
// With -semantic it additionally runs the NL4xx rules, which lower the
// design into an AIG and use SAT to prove constant outputs, semantically
// duplicated drivers, and dead mux branches. The NL5xx testability rules
// run a SCOAP dataflow analysis and flag low-testability clusters, adjacency
// outliers, and always-X nets.
//
// -only and -disable accept rule IDs ("NL500"), names ("always-x"), or
// family prefixes ("NL5" selects every NL5xx rule).
//
// Usage:
//
//	gatelint [-json] [-semantic] [-only rules] [-disable rules] [design.v | -]
//	gatelint -rules
//
// With no file argument (or "-") the netlist is read from stdin. The exit
// code reflects the maximum severity found: 0 for a clean or info-only run,
// 1 when warnings are present, 2 on errors, 3 when the input cannot be
// parsed or the flags are invalid (e.g. an unknown rule in -only/-disable).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gatewords"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gatelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as deterministic JSON")
	rulesOut := fs.Bool("rules", false, "print the rule registry and exit")
	only := fs.String("only", "", "comma-separated rule IDs, names, or family prefixes (NL5) to run exclusively")
	disable := fs.String("disable", "", "comma-separated rule IDs, names, or family prefixes (NL5) to skip")
	semantic := fs.Bool("semantic", false, "also run the NL4xx semantic rules (AIG + SAT proofs)")
	budget := fs.Int("sat-budget", 0, "conflict cap per semantic SAT query (0 = default, negative disables SAT)")
	quiet := fs.Bool("q", false, "suppress the summary line on stderr")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: gatelint [-json] [-semantic] [-only rules] [-disable rules] [design.v | -]")
		fmt.Fprintln(stderr, "       gatelint -rules")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 3
	}

	if *rulesOut {
		for _, r := range gatewords.LintRules() {
			tag := ""
			if r.Semantic {
				tag = " (semantic)"
			}
			fmt.Fprintf(stdout, "%-6s %-18s %-5s %s%s\n", r.ID, r.Name, r.Severity, r.Doc, tag)
		}
		return 0
	}
	if fs.NArg() > 1 {
		fs.Usage()
		return 3
	}

	cfg := gatewords.LintConfig{
		Only:           splitList(*only),
		Disable:        splitList(*disable),
		Semantic:       *semantic,
		SemanticBudget: *budget,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(stderr, "gatelint: %v\n", err)
		return 3
	}

	name, src, err := readInput(fs.Arg(0), stdin)
	if err != nil {
		fmt.Fprintf(stderr, "gatelint: %v\n", err)
		return 3
	}
	d, err := gatewords.ParseVerilogLenient(name, src)
	if err != nil {
		fmt.Fprintf(stderr, "gatelint: %v\n", err)
		return 3
	}

	rep := gatewords.LintWith(d, cfg)
	if *jsonOut {
		err = rep.WriteJSON(stdout)
	} else {
		err = rep.WriteText(stdout)
	}
	if err != nil {
		fmt.Fprintf(stderr, "gatelint: %v\n", err)
		return 3
	}
	if !*quiet && *jsonOut {
		fmt.Fprintf(stderr, "gatelint: %s: %d error(s), %d warning(s), %d info(s)\n",
			rep.Module, rep.Errors, rep.Warnings, rep.Infos)
	}
	switch rep.MaxSeverity() {
	case "error":
		return 2
	case "warn":
		return 1
	}
	return 0
}

// readInput loads the netlist source from the named file, or from stdin for
// "" / "-".
func readInput(arg string, stdin io.Reader) (name, src string, err error) {
	if arg == "" || arg == "-" {
		data, err := io.ReadAll(stdin)
		if err != nil {
			return "", "", fmt.Errorf("reading stdin: %w", err)
		}
		return "<stdin>", string(data), nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return "", "", err
	}
	return arg, string(data), nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
