package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// semModule hides two semantically provable defects behind clean structure:
// z = (a&b) & ~(a|b) is provably 0, and the mux it selects therefore has a
// dead branch. No structural rule can see either.
const semModule = `
module semtest (a, b, m);
  input a, b;
  output m;
  wire y1, y2, z;
  and gy1 (y1, a, b);
  nor gy2 (y2, a, b);
  and gz (z, y1, y2);
  MUX2 gm (.O(m), .S0(z), .D0(a), .D1(b));
endmodule
`

const brokenModule = `
module broken (a, b, y);
  input a, b;
  output y;
  not g1 (y, a);
  not g2 (y, b);
endmodule
`

func writeFile(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runGatelint(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestUnknownRuleRejected(t *testing.T) {
	for _, flagName := range []string{"-only", "-disable"} {
		code, _, stderr := runGatelint(t, semModule, flagName, "NL999")
		if code != 3 {
			t.Errorf("%s NL999: exit %d, want 3", flagName, code)
		}
		if !strings.Contains(stderr, "NL999") || !strings.Contains(stderr, "NL001") {
			t.Errorf("%s error must name the bad entry and list valid IDs:\n%s", flagName, stderr)
		}
	}
	// Valid names (not just IDs) must keep working.
	if code, _, stderr := runGatelint(t, semModule, "-only", "multi-driver"); code != 0 {
		t.Errorf("-only multi-driver: exit %d\n%s", code, stderr)
	}
	// The rejection message must mention family prefixes as a valid form.
	if code, _, stderr := runGatelint(t, semModule, "-only", "NL9"); code != 3 || !strings.Contains(stderr, "family prefix") {
		t.Errorf("-only NL9: exit %d, error must mention family prefixes:\n%s", code, stderr)
	}
}

// TestFamilyPrefixFlags: -only/-disable accept family prefixes end to end.
func TestFamilyPrefixFlags(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		want     []string // substrings that must appear on stdout
		wantNot  []string // substrings that must not
	}{
		{
			name:     "only NL4 runs the semantic family without -semantic",
			args:     []string{"-only", "NL4"},
			wantCode: 1, // NL400/NL402 warns
			want:     []string{"NL400", "NL402"},
			wantNot:  []string{"NL2"},
		},
		{
			name:     "only NL2 restricts to the structural-warning family",
			args:     []string{"-only", "NL2"},
			wantCode: 0,
			wantNot:  []string{"NL400"},
		},
		{
			name:     "disable NL4 under -semantic silences the family",
			args:     []string{"-semantic", "-disable", "NL4"},
			wantCode: 0,
			wantNot:  []string{"NL400", "NL402"},
		},
		{
			name:     "prefix and exact ID mix",
			args:     []string{"-only", "NL4,NL003"},
			wantCode: 1,
			want:     []string{"NL400"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, stderr := runGatelint(t, semModule, tc.args...)
			if code != tc.wantCode {
				t.Errorf("exit %d, want %d\nstdout:\n%s\nstderr:\n%s", code, tc.wantCode, out, stderr)
			}
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Errorf("stdout missing %q:\n%s", w, out)
				}
			}
			for _, w := range tc.wantNot {
				if strings.Contains(out, w) {
					t.Errorf("stdout unexpectedly contains %q:\n%s", w, out)
				}
			}
		})
	}
}

func TestSemanticFlag(t *testing.T) {
	path := writeFile(t, "sem.v", semModule)
	code, out, _ := runGatelint(t, "", path)
	if strings.Contains(out, "NL400") || strings.Contains(out, "NL402") {
		t.Errorf("semantic rules ran without -semantic:\n%s", out)
	}
	if code != 0 {
		t.Errorf("structurally clean design, exit %d:\n%s", code, out)
	}
	code, out, _ = runGatelint(t, "", "-semantic", path)
	if !strings.Contains(out, "NL400") {
		t.Errorf("-semantic missed the provably-constant gate:\n%s", out)
	}
	if !strings.Contains(out, "NL402") {
		t.Errorf("-semantic missed the dead mux branch:\n%s", out)
	}
	if code != 1 {
		t.Errorf("semantic warnings should exit 1, got %d", code)
	}
}

func TestRulesListingTagsSemantic(t *testing.T) {
	code, out, _ := runGatelint(t, "", "-rules")
	if code != 0 {
		t.Fatalf("-rules exit %d", code)
	}
	if !strings.Contains(out, "NL400") || !strings.Contains(out, "(semantic)") {
		t.Errorf("-rules must list the NL4xx family with a semantic tag:\n%s", out)
	}
}

func TestBrokenModuleExitCode(t *testing.T) {
	code, out, _ := runGatelint(t, brokenModule)
	if code != 2 {
		t.Errorf("multi-driven net should exit 2, got %d\n%s", code, out)
	}
}
