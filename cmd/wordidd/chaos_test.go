package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestChaos is the live chaos harness behind `make chaos`: it builds the
// daemon with the race detector, then drives it through the failure modes
// the service is supposed to survive — overload bursts, load shedding,
// slow and abusive HTTP clients, SIGKILL mid-load with a journal replay on
// restart, and a poison input tripping and recovering the quarantine
// breaker — asserting after each phase that no accepted job is ever lost,
// stuck, or served different bytes than before the crash.
//
// Gated behind WORDIDD_CHAOS=1 (bounded, ~60s) or WORDIDD_CHAOS=long (the
// full soak: more kill/restart cycles and bigger bursts).
func TestChaos(t *testing.T) {
	mode := os.Getenv("WORDIDD_CHAOS")
	if mode == "" {
		t.Skip("set WORDIDD_CHAOS=1 (or =long) to run the chaos harness")
	}
	killCycles, burst := 1, 8
	if mode == "long" {
		killCycles, burst = 4, 24
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "wordidd")
	build := exec.Command("go", "build", "-race", "-o", bin, "gatewords/cmd/wordidd")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building race-enabled daemon: %v", err)
	}
	journalPath := filepath.Join(dir, "jobs.wal")

	// --- life 1: overload, shedding, abusive clients, then SIGKILL --------

	d := startDaemon(t, bin,
		"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "8",
		"-shed-gates", "2000", "-max-body", "4096", "-journal", journalPath)

	// Overload burst: concurrent submissions with duplicate keys. Every
	// accepted job must reach a terminal state; refusals must carry
	// Retry-After and must not disturb the accepted ones.
	fast := []string{"b03a", "b04a", "b05a", "b07a", "b08a"}
	var mu sync.Mutex
	var acceptedIDs []string
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			doc, code, hdr := submitJSON(t, d.base, fmt.Sprintf(`{"bench":%q}`, fast[i%len(fast)]))
			switch code {
			case http.StatusAccepted, http.StatusOK:
				mu.Lock()
				acceptedIDs = append(acceptedIDs, doc["id"].(string))
				mu.Unlock()
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				if hdr.Get("Retry-After") == "" {
					t.Errorf("refusal %d missing Retry-After", code)
				}
			default:
				t.Errorf("burst submission: unexpected status %d: %v", code, doc)
			}
		}(i)
	}
	wg.Wait()
	if len(acceptedIDs) == 0 {
		t.Fatal("burst: nothing accepted")
	}
	doneReports := map[string]string{}
	for _, id := range acceptedIDs {
		final := awaitDone(t, d.base, id)
		if final["status"] != "done" {
			t.Fatalf("accepted burst job %s ended %v (%v)", id, final["status"], final["error"])
		}
		rep, _ := json.Marshal(final["report"])
		doneReports[id] = string(rep)
	}

	// Deadline shedding: with a warm latency EWMA, an absurd deadline is
	// refused up front instead of queued to die.
	if _, code, hdr := submitJSON(t, d.base, `{"bench":"b07a","options":{"timeout_ms":1,"depth":9}}`); code != http.StatusTooManyRequests {
		t.Errorf("infeasible deadline: status %d, want 429", code)
	} else if hdr.Get("Retry-After") == "" {
		t.Error("deadline 429 missing Retry-After")
	}

	// Abusive client: an oversized body gets a structured 413.
	bigBody := `{"verilog":"` + strings.Repeat("x", 8192) + `"}`
	if _, code, _ := submitJSON(t, d.base, bigBody); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", code)
	}
	// Slowloris: a connection that trickles headers is cut off by the
	// header-read timeout instead of holding a slot forever.
	slowlorisCutOff(t, d.base)

	for cycle := 0; cycle < killCycles; cycle++ {
		// Load up a slow job plus queued fast ones, then SIGKILL mid-run.
		slow, code, _ := submitJSON(t, d.base, `{"bench":"b14a","options":{"depth":9,"max_assign":9}}`)
		if code != http.StatusAccepted {
			t.Fatalf("cycle %d: slow submit status %d", cycle, code)
		}
		slowID := slow["id"].(string)
		queued1, _, _ := submitJSON(t, d.base, `{"bench":"b04a","options":{"depth":7}}`)
		queued2, _, _ := submitJSON(t, d.base, `{"bench":"b05a","options":{"depth":7}}`)
		awaitState(t, d.base, slowID, "running")
		d.kill(t)

		// --- restart with -resume: the journal replay contract ------------

		d = startDaemon(t, bin,
			"-addr", "127.0.0.1:0", "-workers", "2", "-queue", "16",
			"-journal", journalPath, "-resume")
		if !strings.Contains(d.out.String(), "journal replayed") {
			t.Fatalf("cycle %d: restart did not announce a replay:\n%s", cycle, d.out.String())
		}
		// Done jobs: byte-identical reports.
		for id, want := range doneReports {
			final := awaitDone(t, d.base, id)
			if final["status"] != "done" {
				t.Fatalf("cycle %d: done job %s degraded to %v after replay", cycle, id, final["status"])
			}
			rep, _ := json.Marshal(final["report"])
			if string(rep) != want {
				t.Fatalf("cycle %d: job %s served different bytes after the crash", cycle, id)
			}
		}
		// The mid-run job: failed honestly as interrupted, never stuck.
		final := awaitDone(t, d.base, slowID)
		if final["status"] != "failed" || !strings.Contains(fmt.Sprint(final["error"]), "interrupted") {
			t.Fatalf("cycle %d: mid-run job after kill: %v (%v)", cycle, final["status"], final["error"])
		}
		// Queued jobs: resumed and completed (they may also have finished
		// before the kill; done either way).
		for _, doc := range []map[string]any{queued1, queued2} {
			id, _ := doc["id"].(string)
			if id == "" {
				continue // refused during the pre-kill load spike: nothing to resume
			}
			f := awaitDone(t, d.base, id)
			if f["status"] != "done" {
				t.Fatalf("cycle %d: queued job %s not resumed: %v (%v)", cycle, id, f["status"], f["error"])
			}
			rep, _ := json.Marshal(f["report"])
			doneReports[id] = string(rep)
		}
		assertNothingStuck(t, d.base)
	}
	d.kill(t)

	// --- life N+1: poison input trips and recovers the quarantine ---------

	// The poison submission uses non-default options so its cache key misses
	// the journal-replayed results and every submission really executes
	// (the fault is keyed on the module, the breaker on the fingerprint).
	const poison = `{"bench":"b05a","options":{"depth":5}}`
	d = startDaemon(t, bin,
		"-addr", "127.0.0.1:0", "-workers", "1", "-journal", journalPath,
		"-quarantine", "2", "-quarantine-ttl", "1s", "-faults", "job:b05a*3")
	for i := 0; i < 2; i++ {
		doc, code, _ := submitJSON(t, d.base, poison)
		if code != http.StatusAccepted {
			t.Fatalf("poison submit %d: status %d", i, code)
		}
		f := awaitDone(t, d.base, doc["id"].(string))
		if f["status"] != "failed" {
			t.Fatalf("poison job %d ended %v", i, f["status"])
		}
	}
	qdoc, code, _ := submitJSON(t, d.base, poison)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined submit: status %d, want 422 (%v)", code, qdoc)
	}
	if qdoc["fingerprint"] == "" || qdoc["failures"].(float64) != 2 {
		t.Fatalf("422 doc: %v", qdoc)
	}
	// Healthy inputs flow right past the quarantined one (this one is a
	// replayed cache hit: 200, served without an execution).
	hdoc, code, _ := submitJSON(t, d.base, `{"bench":"b03a"}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("healthy submit while quarantined: status %d", code)
	}
	awaitDone(t, d.base, hdoc["id"].(string))

	// After the TTL the probe is admitted; one armed fault remains, so the
	// first probe re-trips and the second (after another TTL) recovers.
	recovered := false
	for probe := 0; probe < 4 && !recovered; probe++ {
		time.Sleep(1200 * time.Millisecond)
		doc, code, _ := submitJSON(t, d.base, poison)
		if code != http.StatusAccepted {
			continue // still quarantined; next lap
		}
		f := awaitDone(t, d.base, doc["id"].(string))
		recovered = f["status"] == "done"
	}
	if !recovered {
		t.Fatal("breaker never recovered after the fault budget was spent")
	}
	assertNothingStuck(t, d.base)

	// Graceful exit: SIGTERM drains and reports it.
	d.term(t)
}

// daemon is one life of the wordidd subprocess under chaos.
type daemon struct {
	cmd  *exec.Cmd
	base string
	out  *lockedBuffer
	done chan error
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{out: &lockedBuffer{}, done: make(chan error, 1)}
	d.cmd = exec.Command(bin, args...)
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	d.cmd.Stderr = os.Stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			d.out.Write(append(sc.Bytes(), '\n')) //nolint:errcheck // test buffer
		}
		d.done <- d.cmd.Wait()
	}()
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill() //nolint:errcheck // best-effort cleanup
			<-d.done
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		if m := listenLine.FindStringSubmatch(d.out.String()); m != nil {
			d.base = m[1]
			return d
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address:\n%s", d.out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill SIGKILLs the daemon — the crash the journal exists for.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-d.done
}

// term SIGTERMs the daemon and requires a clean drain.
func (d *daemon) term(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-d.done:
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if !d.cmd.ProcessState.Success() {
		t.Fatalf("daemon exited %v", d.cmd.ProcessState)
	}
	if !strings.Contains(d.out.String(), "drained") {
		t.Errorf("shutdown did not report a drain:\n%s", d.out.String())
	}
}

func submitJSON(t *testing.T, base, body string) (map[string]any, int, http.Header) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var doc map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("response %d is not JSON: %s", resp.StatusCode, raw)
		}
	}
	return doc, resp.StatusCode, resp.Header
}

func pollJob(t *testing.T, base, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll %s: status %d: %v", id, resp.StatusCode, doc)
	}
	return doc
}

// awaitDone polls until the job is terminal ("done" or "failed").
func awaitDone(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		doc := pollJob(t, base, id)
		if st := doc["status"]; st == "done" || st == "failed" {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %v", id, doc["status"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// awaitState polls until the job reaches the wanted state (or is already
// past it, for fast machines where the "slow" job finishes first).
func awaitState(t *testing.T, base, id, want string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		doc := pollJob(t, base, id)
		st, _ := doc["status"].(string)
		if st == want || st == "done" || st == "failed" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %q (at %q)", id, want, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertNothingStuck requires every job in the listing to be terminal once
// the backlog settles: the "no stuck jobs" chaos invariant.
func assertNothingStuck(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Jobs []struct {
				ID     string `json:"id"`
				Status string `json:"status"`
			} `json:"jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		pending := 0
		for _, j := range doc.Jobs {
			if j.Status != "done" && j.Status != "failed" {
				pending++
			}
		}
		if pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d jobs stuck non-terminal: %+v", pending, doc.Jobs)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// slowlorisCutOff opens a raw connection, trickles an incomplete request,
// and requires the server to cut it off (ReadHeaderTimeout) instead of
// letting it hold a connection slot indefinitely.
func slowlorisCutOff(t *testing.T, base string) {
	t.Helper()
	addr := strings.TrimPrefix(base, "http://")
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /v1/jobs HTTP/1.1\r\nHost: x\r\nX-Slow:")); err != nil {
		t.Fatal(err)
	}
	// The daemon arms a 5s ReadHeaderTimeout; allow slack for a loaded CI
	// box, but far less than forever.
	conn.SetReadDeadline(time.Now().Add(20 * time.Second)) //nolint:errcheck // deadline on a live conn
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		// A byte back means the server answered the malformed request —
		// also fine, as long as the connection then dies.
		_, err = conn.Read(buf)
		if err == nil {
			t.Error("slowloris connection still alive after response")
		}
	} else if !errRemoteClosed(err) {
		t.Errorf("slowloris connection not cut off: %v", err)
	}
}

func errRemoteClosed(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false // our own deadline fired: the server never cut us off
	}
	// EOF, ECONNRESET and friends all mean the server dropped us — the goal.
	return true
}
