package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// lockedBuffer lets the test read stdout while run() is still writing it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[0-9.]+:[0-9]+)`)

// TestServeSmoke is the end-to-end daemon exercise behind `make serve-smoke`:
// boot wordidd on an ephemeral port, submit a benchmark job over HTTP, poll
// it to completion, check /metrics, resubmit for a cache hit, then shut the
// daemon down with SIGTERM and require a clean exit.
func TestServeSmoke(t *testing.T) {
	stdout := &lockedBuffer{}
	stderr := &lockedBuffer{}
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, stdout, stderr)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address\nstdout: %s\nstderr: %s", stdout, stderr)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	submit := func(body string) (map[string]any, int) {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("submit response: %v", err)
		}
		return doc, resp.StatusCode
	}

	doc, code := submit(`{"bench": "b08a", "options": {"evaluate": true}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", code, doc)
	}
	id, _ := doc["id"].(string)
	if id == "" {
		t.Fatalf("submit response carries no id: %v", doc)
	}

	var final map[string]any
	deadline = time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &final); err != nil {
			t.Fatal(err)
		}
		if st := final["status"]; st == "done" || st == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final["status"] != "done" {
		t.Fatalf("job failed: %v", final["error"])
	}
	report, ok := final["report"].(map[string]any)
	if !ok {
		t.Fatalf("done job carries no report: %v", final)
	}
	if report["module"] != "b08a" {
		t.Errorf("report module = %v, want b08a", report["module"])
	}

	// A byte-identical resubmission must be served from the cache.
	dup, code := submit(`{"bench": "b08a", "options": {"evaluate": true}}`)
	if code != http.StatusOK || dup["cached"] != true {
		t.Fatalf("duplicate submit: status %d, cached=%v", code, dup["cached"])
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var metrics struct {
		Server struct {
			JobsDone     int64 `json:"jobs_done"`
			PipelineRuns int64 `json:"pipeline_runs"`
			CacheHits    int64 `json:"cache_hits"`
		} `json:"server"`
		Pipeline json.RawMessage `json:"pipeline"`
	}
	if err := json.Unmarshal(metricsBody, &metrics); err != nil {
		t.Fatalf("metrics: %v\n%s", err, metricsBody)
	}
	if metrics.Server.JobsDone != 2 || metrics.Server.PipelineRuns != 1 || metrics.Server.CacheHits != 1 {
		t.Errorf("metrics done/runs/hits = %d/%d/%d, want 2/1/1\n%s",
			metrics.Server.JobsDone, metrics.Server.PipelineRuns, metrics.Server.CacheHits, metricsBody)
	}
	if len(metrics.Pipeline) == 0 || string(metrics.Pipeline) == "null" {
		t.Error("metrics carries no pipeline section")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case rc := <-exit:
		if rc != 0 {
			t.Fatalf("daemon exited %d\nstderr: %s", rc, stderr)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM\nstdout: %s", stdout)
	}
	if out := stdout.String(); !strings.Contains(out, "drained") {
		t.Errorf("shutdown did not report a drain:\n%s", out)
	}
}

// TestFlagErrors pins the CLI contract for bad invocations.
func TestFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if rc := run([]string{"-nope"}, &out, &out); rc != 2 {
		t.Errorf("unknown flag: exit %d, want 2", rc)
	}
	if rc := run([]string{"stray-arg"}, &out, &out); rc != 2 {
		t.Errorf("positional arg: exit %d, want 2", rc)
	}
	if rc := run([]string{"-addr", "256.0.0.1:99999"}, &out, &out); rc != 1 {
		t.Errorf("bad listen address: exit %d, want 1", rc)
	}
}
