// Command wordidd serves the word-identification pipeline as an HTTP/JSON
// daemon: clients POST a gate-level Verilog netlist (or the name of a
// generated benchmark profile) and poll for the finished report, while the
// daemon runs jobs on a bounded worker pool with per-job deadlines and a
// content-addressed result cache.
//
// Usage:
//
//	wordidd [flags]
//
// Flags:
//
//	-addr HOST:PORT     listen address (default 127.0.0.1:8080; port 0 picks one)
//	-workers N          concurrent identification jobs (default GOMAXPROCS)
//	-queue N            queued jobs beyond the running ones (default 64)
//	-cache N            cached reports, LRU (default 256; 0 disables)
//	-default-timeout D  per-job deadline when the request sets none (default 0 = none)
//	-max-timeout D      ceiling clamped onto every per-job deadline (default 0 = none)
//	-max-body N         submission body size cap in bytes (default 32 MiB)
//	-shed-gates N       refuse designs above N gates while the queue is half full (0 = off)
//	-quarantine N       consecutive failures that quarantine an input (default 3; -1 = off)
//	-quarantine-ttl D   quarantine duration before a half-open probe (default 1m)
//	-journal PATH       append job lifecycle to a checksummed WAL, replayed on start
//	-resume             re-enqueue journal-queued jobs on start instead of failing them
//	-faults SPEC        arm deterministic fault injection (guard.PlantSpec; testing only)
//
// API:
//
//	POST /v1/jobs          submit {"verilog": ...} or {"bench": "b08a"}; 202, or 200 on cache hit
//	GET  /v1/jobs          list jobs in submission order
//	GET  /v1/jobs/{id}     poll; the report rides along once status is "done"
//	GET  /metrics          server counters + merged per-stage pipeline observability
//	GET  /healthz          200 while serving, 503 {"state":"draining"} during shutdown
//
// Overloaded submissions are refused with 429 plus a Retry-After estimate
// (deadline-infeasible or shed-heavy jobs) or 503 (queue full); quarantined
// inputs are refused with a structured 422 describing the prior failures.
// SIGINT/SIGTERM drain in-flight jobs before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gatewords/internal/guard"
	"gatewords/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wordidd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent identification jobs (default GOMAXPROCS)")
	queue := fs.Int("queue", 0, "queued jobs beyond the running ones (default 64)")
	cache := fs.Int("cache", 0, "cached reports, LRU (default 256)")
	defaultTimeout := fs.Duration("default-timeout", 0, "per-job deadline when the request sets none (0 = none)")
	maxTimeout := fs.Duration("max-timeout", 0, "ceiling clamped onto every per-job deadline (0 = none)")
	maxBody := fs.Int64("max-body", 0, "submission body size cap in bytes (default 32 MiB)")
	shedGates := fs.Int("shed-gates", 0, "refuse designs above N gates while the queue is half full (0 = off)")
	quarantine := fs.Int("quarantine", 0, "consecutive failures that quarantine an input (default 3; negative disables)")
	quarantineTTL := fs.Duration("quarantine-ttl", 0, "quarantine duration before a half-open probe (default 1m)")
	journalPath := fs.String("journal", "", "append job lifecycle to a checksummed WAL at this path, replayed on start")
	resume := fs.Bool("resume", false, "re-enqueue journal-queued jobs on start instead of failing them")
	faults := fs.String("faults", "", "arm deterministic fault injection, e.g. \"job:b06a*3\" (testing only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: wordidd [flags]")
		fs.PrintDefaults()
		return 2
	}
	if *faults != "" {
		if err := guard.PlantSpec(*faults); err != nil {
			fmt.Fprintf(stderr, "wordidd: %v\n", err)
			return 2
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "wordidd: %v\n", err)
		return 1
	}

	svc, err := service.New(service.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheEntries:       *cache,
		DefaultTimeout:     *defaultTimeout,
		MaxTimeout:         *maxTimeout,
		MaxRequestBytes:    *maxBody,
		ShedGates:          *shedGates,
		QuarantineFailures: *quarantine,
		QuarantineTTL:      *quarantineTTL,
		JournalPath:        *journalPath,
		Resume:             *resume,
	})
	if err != nil {
		ln.Close()
		fmt.Fprintf(stderr, "wordidd: %v\n", err)
		return 1
	}
	if rec := svc.Recovery(); rec.Journaled {
		fmt.Fprintf(stdout, "wordidd: journal replayed: %d restored, %d resumed, %d interrupted, %d torn\n",
			rec.Restored, rec.Resumed, rec.Interrupted, rec.TornRecords)
	}

	// The slow-client timeouts are deliberately tight on the read side — a
	// submission is one JSON document, not a stream — while writes get room
	// for large report payloads. Idle keep-alives are bounded so a
	// connection-hoarding client cannot exhaust the listener.
	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(stdout, "wordidd: listening on http://%s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Serve never returns nil; anything here is a real listener failure.
		svc.Close()
		fmt.Fprintf(stderr, "wordidd: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting for drain

	// Drain in three steps: flip /healthz to draining and refuse new
	// submissions first, then finish the backlog (polls still served, so
	// clients can collect results), then stop the listener.
	fmt.Fprintln(stdout, "wordidd: shutting down")
	svc.StartDraining()
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "wordidd: shutdown: %v\n", err)
	}
	<-serveErr // Serve has returned http.ErrServerClosed by now
	fmt.Fprintln(stdout, "wordidd: drained")
	return 0
}
