// Command gatetriage ranks Hardware-Trojan suspects in a gate-level Verilog
// netlist. It first runs word identification (the DAC'15 control-signal
// technique), treating every gate inside an identified word's cone as
// explained datapath structure; each remaining gate is then scored by
// combining its SCOAP testability outlier rank (trigger logic is designed to
// be near-impossible to activate), lint diagnostics (the NL5xx testability
// family, plus NL4xx under -semantic), and the rarity of its fanin-cone
// shape hash. The output is a deterministic ranked suspect list.
//
// Usage:
//
//	gatetriage [-json] [-top n] [-workers n] [-semantic] [-seq-cost n] [-stats] [design.v | -]
//
// With no file argument (or "-") the netlist is read from stdin. The exit
// code reflects the top suspect's severity: 0 for none/low, 1 for medium,
// 2 for high, 3 when the input cannot be parsed or the flags are invalid.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gatewords"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gatetriage", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the ranked suspects as deterministic JSON")
	top := fs.Int("top", gatewords.DefaultTriageTop, "number of suspects to keep (negative = all)")
	workers := fs.Int("workers", 0, "identification worker count (0/1 sequential, negative = GOMAXPROCS)")
	semantic := fs.Bool("semantic", false, "also gather NL4xx semantic lint evidence (AIG + SAT proofs)")
	seqCost := fs.Int("seq-cost", 0, "SCOAP cost of crossing a flip-flop boundary (0 = default 1)")
	stats := fs.Bool("stats", false, "print the pipeline stage/counter breakdown on stderr")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: gatetriage [-json] [-top n] [-workers n] [-semantic] [-seq-cost n] [-stats] [design.v | -]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if fs.NArg() > 1 {
		fs.Usage()
		return 3
	}

	name, src, err := readInput(fs.Arg(0), stdin)
	if err != nil {
		fmt.Fprintf(stderr, "gatetriage: %v\n", err)
		return 3
	}
	d, err := gatewords.ParseVerilogLenient(name, src)
	if err != nil {
		fmt.Fprintf(stderr, "gatetriage: %v\n", err)
		return 3
	}

	var observer *gatewords.Observer
	if *stats {
		observer = gatewords.NewObserver()
	}
	rep, err := gatewords.Triage(d, gatewords.TriageOptions{
		Identify: gatewords.Options{Workers: *workers},
		SeqCost:  *seqCost,
		TopN:     *top,
		Semantic: *semantic,
		Observer: observer,
	})
	if err != nil {
		fmt.Fprintf(stderr, "gatetriage: %v\n", err)
		return 3
	}

	if *jsonOut {
		err = rep.WriteJSON(stdout)
	} else {
		err = rep.WriteText(stdout)
	}
	if err != nil {
		fmt.Fprintf(stderr, "gatetriage: %v\n", err)
		return 3
	}
	if *stats {
		if err := observer.WriteText(stderr); err != nil {
			fmt.Fprintf(stderr, "gatetriage: %v\n", err)
			return 3
		}
	}
	switch rep.TopSeverity() {
	case "high":
		return 2
	case "medium":
		return 1
	}
	return 0
}

// readInput loads the netlist source from the named file, or from stdin for
// "" / "-".
func readInput(arg string, stdin io.Reader) (name, src string, err error) {
	if arg == "" || arg == "-" {
		data, err := io.ReadAll(stdin)
		if err != nil {
			return "", "", fmt.Errorf("reading stdin: %w", err)
		}
		return "<stdin>", string(data), nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return "", "", err
	}
	return arg, string(data), nil
}
