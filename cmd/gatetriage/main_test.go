package main

import (
	"bytes"
	"strings"
	"testing"
)

// tinyModule is a clean little design: every suspect scores low.
const tinyModule = `
module tiny (a, b, q);
  input a, b;
  output q;
  wire y;
  and g1 (y, a, b);
  DFF r1 (.D(y), .Q(q), .CK(a));
endmodule
`

func runGatetriage(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodeBySeverity(t *testing.T) {
	code, out, stderr := runGatetriage(t, tinyModule)
	if code != 0 {
		t.Errorf("clean design: exit %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	if !strings.Contains(out, "tiny:") {
		t.Errorf("text output missing module summary:\n%s", out)
	}
}

func TestJSONDeterministic(t *testing.T) {
	_, out1, _ := runGatetriage(t, tinyModule, "-json")
	_, out2, _ := runGatetriage(t, tinyModule, "-json")
	if out1 != out2 {
		t.Errorf("two -json runs differ:\n%s----\n%s", out1, out2)
	}
	if !strings.Contains(out1, `"suspects"`) || !strings.Contains(out1, `"module"`) {
		t.Errorf("JSON output missing expected fields:\n%s", out1)
	}
}

func TestTopFlag(t *testing.T) {
	code, out, _ := runGatetriage(t, tinyModule, "-top", "1")
	if code != 0 {
		t.Errorf("exit %d", code)
	}
	if n := strings.Count(out, "\n"); n > 2 {
		t.Errorf("-top 1 printed %d lines:\n%s", n, out)
	}
}

func TestParseErrorExit3(t *testing.T) {
	if code, _, _ := runGatetriage(t, "not verilog {{{"); code != 3 {
		t.Errorf("unparsable input: exit %d, want 3", code)
	}
	if code, _, _ := runGatetriage(t, "", "/does/not/exist.v"); code != 3 {
		t.Errorf("missing file: exit %d, want 3", code)
	}
	if code, _, _ := runGatetriage(t, tinyModule, "a.v", "b.v"); code != 3 {
		t.Errorf("two positional args: exit %d, want 3", code)
	}
}

func TestStatsFlag(t *testing.T) {
	code, _, stderr := runGatetriage(t, tinyModule, "-stats")
	if code != 0 {
		t.Errorf("exit %d", code)
	}
	if !strings.Contains(stderr, "scoap") || !strings.Contains(stderr, "triage_suspects") {
		t.Errorf("-stats breakdown missing scoap stage or triage counter:\n%s", stderr)
	}
}
