package gatewords

import (
	"strings"
	"testing"
)

const datapathModule = `
module dp (a, b, s, \r_reg[0] , \r_reg[1] , \r_reg[2] );
  input [2:0] a;
  input [2:0] b;
  input s;
  output \r_reg[0] , \r_reg[1] , \r_reg[2] ;
  wire x0, x1, x2, d0, d1, d2;
  XOR2 ux0 (x0, a[0], b[0]);
  XOR2 ux1 (x1, a[1], b[1]);
  XOR2 ux2 (x2, a[2], b[2]);
  MUX2 ud0 (d0, s, \r_reg[0] , x0);
  MUX2 ud1 (d1, s, \r_reg[1] , x1);
  MUX2 ud2 (d2, s, \r_reg[2] , x2);
  DFF ff0 (\r_reg[0] , d0);
  DFF ff1 (\r_reg[1] , d1);
  DFF ff2 (\r_reg[2] , d2);
endmodule
`

func TestPropagateFacade(t *testing.T) {
	d, err := ParseVerilogString("dp.v", datapathModule)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	words := Propagate(d, rep, PropagateOptions{})
	var haveSeed, haveBus bool
	for _, w := range words {
		if w.Direction == "seed" {
			haveSeed = true
		}
		if w.Direction == "backward" && strings.HasPrefix(w.Bits[0], "a[") && len(w.Bits) == 3 {
			haveBus = true
		}
	}
	if !haveSeed {
		t.Error("no seed words in propagation output")
	}
	if !haveBus {
		t.Errorf("input bus a not recovered: %+v", words)
	}
}

func TestDiscoverOperatorsFacade(t *testing.T) {
	d, err := ParseVerilogString("dp.v", datapathModule)
	if err != nil {
		t.Fatal(err)
	}
	ops := DiscoverOperators(d, [][]string{
		{"x0", "x1", "x2"},
		{"d0", "d1", "d2"},
	})
	if len(ops) != 2 {
		t.Fatalf("operators: %+v", ops)
	}
	if ops[0].Kind != "bitwise" || ops[0].Op != "XOR" {
		t.Errorf("xor column: %+v", ops[0])
	}
	if ops[1].Kind != "mux" || ops[1].Select != "s" {
		t.Errorf("mux column: %+v", ops[1])
	}
	if !strings.Contains(ops[1].HDL, "s ?") {
		t.Errorf("HDL: %q", ops[1].HDL)
	}
	if got := ops[1].Inputs[1]; got[0] != "x0" {
		t.Errorf("mux sel=1 operand: %v", got)
	}
}

// TestFullReversePipeline chains identify -> propagate -> operators on the
// same design, the examples/reconstruct flow.
func TestFullReversePipeline(t *testing.T) {
	d, err := ParseVerilogString("dp.v", datapathModule)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var words [][]string
	for _, w := range Propagate(d, rep, PropagateOptions{}) {
		words = append(words, w.Bits)
	}
	ops := DiscoverOperators(d, words)
	kinds := map[string]bool{}
	for _, op := range ops {
		kinds[op.Kind] = true
	}
	if !kinds["mux"] || !kinds["bitwise"] {
		t.Errorf("pipeline recovered kinds %v, want mux and bitwise", kinds)
	}
}

// brokenModule carries a multi-driven net (y), a floating wire and a
// combinational cycle — the lint acceptance triad.
const brokenModule = `
module broken (a, b, y);
  input a, b;
  output y;
  wire dangle, cx, cy;
  not g1 (y, a);
  not g2 (y, b);
  not gd (dangle, a);
  not ring1 (cx, cy);
  not ring2 (cy, cx);
endmodule
`

func TestLintFacadeReportsAllDefects(t *testing.T) {
	d, err := ParseVerilogLenient("broken.v", brokenModule)
	if err != nil {
		t.Fatal(err)
	}
	rep := Lint(d)
	if rep.MaxSeverity() != "error" {
		t.Fatalf("max severity = %q", rep.MaxSeverity())
	}
	seen := map[string]bool{}
	for _, diag := range rep.Diagnostics {
		seen[diag.Name] = true
		if diag.Name == "comb-cycle" && len(diag.Gates) == 0 {
			t.Error("cycle diagnostic names no gates")
		}
	}
	for _, want := range []string{"multi-driver", "comb-cycle", "floating-net"} {
		if !seen[want] {
			t.Errorf("missing %s; diagnostics: %+v", want, rep.Diagnostics)
		}
	}
	if rep.Errors == 0 || rep.Warnings == 0 {
		t.Errorf("counts: %+v", rep)
	}

	// Deterministic JSON across runs.
	var b1, b2 strings.Builder
	if err := rep.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseVerilogLenient("broken.v", brokenModule)
	if err != nil {
		t.Fatal(err)
	}
	if err := Lint(d2).WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("lint JSON not byte-identical across runs")
	}
}

func TestLintWithRuleSelection(t *testing.T) {
	d, err := ParseVerilogLenient("broken.v", brokenModule)
	if err != nil {
		t.Fatal(err)
	}
	rep := LintWith(d, LintConfig{Only: []string{"multi-driver"}})
	if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Rule != "NL003" {
		t.Fatalf("Only selection: %+v", rep.Diagnostics)
	}
	rep = LintWith(d, LintConfig{Disable: []string{"NL003"}})
	for _, diag := range rep.Diagnostics {
		if diag.Rule == "NL003" {
			t.Error("disabled rule still fired")
		}
	}
}

func TestLintRulesRegistry(t *testing.T) {
	rs := LintRules()
	if len(rs) == 0 {
		t.Fatal("empty registry")
	}
	byID := map[string]LintRule{}
	for _, r := range rs {
		byID[r.ID] = r
	}
	if byID["NL003"].Name != "multi-driver" || byID["NL003"].Severity != "error" {
		t.Errorf("NL003 = %+v", byID["NL003"])
	}
	if byID["NL300"].Severity != "info" {
		t.Errorf("NL300 = %+v", byID["NL300"])
	}
}

// TestOptionsLintGate: the pre-pipeline gate refuses broken designs, stays
// off by default, and distinguishes lenient from strict.
func TestOptionsLintGate(t *testing.T) {
	d, err := ParseVerilogLenient("broken.v", brokenModule)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Identify(d, Options{Lint: LintLenient}); err == nil {
		t.Error("lenient gate accepted a broken design")
	} else if !strings.Contains(err.Error(), "lint gate") || !strings.Contains(err.Error(), "NL003") {
		t.Errorf("gate error lacks diagnostics: %v", err)
	}

	// A clean design with a warning (floating wire): lenient passes, strict
	// refuses.
	warnOnly := `
module w (a, y);
  input a;
  output y;
  wire dangle;
  not g1 (y, a);
  not gd (dangle, a);
endmodule
`
	dw, err := ParseVerilogString("w.v", warnOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Identify(dw, Options{Lint: LintLenient}); err != nil {
		t.Errorf("lenient gate refused warnings-only design: %v", err)
	}
	if _, err := Identify(dw, Options{Lint: LintStrict}); err == nil {
		t.Error("strict gate accepted a design with warnings")
	}
	if _, err := Identify(dw, Options{}); err != nil {
		t.Errorf("default (LintOff) changed behavior: %v", err)
	}
}
