package gatewords

import (
	"strings"
	"testing"
)

const datapathModule = `
module dp (a, b, s, \r_reg[0] , \r_reg[1] , \r_reg[2] );
  input [2:0] a;
  input [2:0] b;
  input s;
  output \r_reg[0] , \r_reg[1] , \r_reg[2] ;
  wire x0, x1, x2, d0, d1, d2;
  XOR2 ux0 (x0, a[0], b[0]);
  XOR2 ux1 (x1, a[1], b[1]);
  XOR2 ux2 (x2, a[2], b[2]);
  MUX2 ud0 (d0, s, \r_reg[0] , x0);
  MUX2 ud1 (d1, s, \r_reg[1] , x1);
  MUX2 ud2 (d2, s, \r_reg[2] , x2);
  DFF ff0 (\r_reg[0] , d0);
  DFF ff1 (\r_reg[1] , d1);
  DFF ff2 (\r_reg[2] , d2);
endmodule
`

func TestPropagateFacade(t *testing.T) {
	d, err := ParseVerilogString("dp.v", datapathModule)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	words := Propagate(d, rep, PropagateOptions{})
	var haveSeed, haveBus bool
	for _, w := range words {
		if w.Direction == "seed" {
			haveSeed = true
		}
		if w.Direction == "backward" && strings.HasPrefix(w.Bits[0], "a[") && len(w.Bits) == 3 {
			haveBus = true
		}
	}
	if !haveSeed {
		t.Error("no seed words in propagation output")
	}
	if !haveBus {
		t.Errorf("input bus a not recovered: %+v", words)
	}
}

func TestDiscoverOperatorsFacade(t *testing.T) {
	d, err := ParseVerilogString("dp.v", datapathModule)
	if err != nil {
		t.Fatal(err)
	}
	ops := DiscoverOperators(d, [][]string{
		{"x0", "x1", "x2"},
		{"d0", "d1", "d2"},
	})
	if len(ops) != 2 {
		t.Fatalf("operators: %+v", ops)
	}
	if ops[0].Kind != "bitwise" || ops[0].Op != "XOR" {
		t.Errorf("xor column: %+v", ops[0])
	}
	if ops[1].Kind != "mux" || ops[1].Select != "s" {
		t.Errorf("mux column: %+v", ops[1])
	}
	if !strings.Contains(ops[1].HDL, "s ?") {
		t.Errorf("HDL: %q", ops[1].HDL)
	}
	if got := ops[1].Inputs[1]; got[0] != "x0" {
		t.Errorf("mux sel=1 operand: %v", got)
	}
}

// TestFullReversePipeline chains identify -> propagate -> operators on the
// same design, the examples/reconstruct flow.
func TestFullReversePipeline(t *testing.T) {
	d, err := ParseVerilogString("dp.v", datapathModule)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Identify(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var words [][]string
	for _, w := range Propagate(d, rep, PropagateOptions{}) {
		words = append(words, w.Bits)
	}
	ops := DiscoverOperators(d, words)
	kinds := map[string]bool{}
	for _, op := range ops {
		kinds[op.Kind] = true
	}
	if !kinds["mux"] || !kinds["bitwise"] {
		t.Errorf("pipeline recovered kinds %v, want mux and bitwise", kinds)
	}
}
