package gatewords

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"gatewords/internal/bench"
	"gatewords/internal/core"
	"gatewords/internal/netlist"
	"gatewords/internal/obs"
)

// pipelineBenchFile is the committed per-stage performance baseline emitted
// by `make bench-pipeline` and schema-checked by
// TestBenchPipelineJSONWellFormed on every test run.
const pipelineBenchFile = "BENCH_pipeline.json"

type pipelineBenchRow struct {
	Bench        string        `json:"bench"`
	Gates        int           `json:"gates"`
	Nets         int           `json:"nets"`
	Words        int           `json:"words"`
	ReducedWords int           `json:"reduced_words"`
	ConesProved  int           `json:"cones_proved"`
	IdentifyMS   float64       `json:"identify_ms"`
	Obs          *obs.Recorder `json:"obs"`
}

type pipelineBenchDoc struct {
	Note    string             `json:"note"`
	Benches []pipelineBenchRow `json:"benches"`
}

// TestEmitPipelineBench is the bench-pipeline harness (see `make
// bench-pipeline`): it runs the full identification pipeline, with an
// Observer attached and reduction verification on, over every Table-1 analog
// and writes the per-benchmark stage split (plus work counters and peak
// gauges) to the JSON file named by BENCH_PIPELINE_OUT. Without that
// variable it is skipped, so the regular test run stays fast.
// BENCH_PIPELINE_BENCHES, when set, restricts the run to a comma-separated
// subset — the CI smoke uses it to keep the workflow fast.
func TestEmitPipelineBench(t *testing.T) {
	out := os.Getenv("BENCH_PIPELINE_OUT")
	if out == "" {
		t.Skip("set BENCH_PIPELINE_OUT to emit " + pipelineBenchFile)
	}
	only := map[string]bool{}
	if subset := os.Getenv("BENCH_PIPELINE_BENCHES"); subset != "" {
		for _, name := range strings.Split(subset, ",") {
			only[strings.TrimSpace(name)] = true
		}
	}
	doc := pipelineBenchDoc{
		Note: "core.Identify per-stage wall time (group/match/ctrlsig/trial/verify), work counters, and peak gauges per Table-1 analog; Observer attached, VerifyReduction on",
	}
	for _, p := range bench.Profiles {
		if len(only) > 0 && !only[p.Name] {
			continue
		}
		gen, err := p.Generate()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		rec := obs.New()
		start := time.Now()
		res := core.Identify(gen.NL, core.Options{Observer: rec, VerifyReduction: true})
		elapsed := time.Since(start)
		if res.Stats.Interrupted {
			t.Fatalf("%s: interrupted without a context", p.Name)
		}
		if res.Stats.ConesRefuted != 0 {
			t.Fatalf("%s: %d cones refuted — reduction unsound", p.Name, res.Stats.ConesRefuted)
		}
		stats := gen.NL.ComputeStats()
		doc.Benches = append(doc.Benches, pipelineBenchRow{
			Bench:        p.Name,
			Gates:        stats.Gates + stats.DFFs,
			Nets:         gen.NL.NetCount(),
			Words:        len(res.Words),
			ReducedWords: res.Stats.ReducedWords,
			ConesProved:  res.Stats.ConesProved,
			IdentifyMS:   float64(elapsed.Microseconds()) / 1000,
			Obs:          rec,
		})
		t.Logf("%s: %.1fms  %s", p.Name, float64(elapsed.Microseconds())/1000, rec.StageLine())
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestBenchPipelineJSONWellFormed guards the committed baseline: the file
// must parse, cover every Table-1 analog in profile order, and carry the full
// stage/counter/gauge vectors for each. Timings are machine-dependent and are
// only checked for sanity (non-negative, with the trial stage of at least one
// bench non-trivial).
func TestBenchPipelineJSONWellFormed(t *testing.T) {
	data, err := os.ReadFile(pipelineBenchFile)
	if err != nil {
		t.Fatalf("missing committed baseline (run `make bench-pipeline`): %v", err)
	}
	// The obs.Recorder snapshot is render-only, so parse its raw document
	// here rather than through the type.
	var doc struct {
		Note    string `json:"note"`
		Benches []struct {
			Bench      string  `json:"bench"`
			Gates      int     `json:"gates"`
			Nets       int     `json:"nets"`
			Words      int     `json:"words"`
			IdentifyMS float64 `json:"identify_ms"`
			Obs        struct {
				Stages []struct {
					Stage string  `json:"stage"`
					MS    float64 `json:"ms"`
					Spans int64   `json:"spans"`
				} `json:"stages"`
				Counters []struct {
					Name  string `json:"name"`
					Value int64  `json:"value"`
				} `json:"counters"`
				Gauges []struct {
					Name string `json:"name"`
					Peak int64  `json:"peak"`
				} `json:"gauges"`
			} `json:"obs"`
		} `json:"benches"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("%s: %v", pipelineBenchFile, err)
	}
	if len(doc.Benches) != len(bench.Profiles) {
		t.Fatalf("%d benches, want %d (all Table-1 analogs)", len(doc.Benches), len(bench.Profiles))
	}
	sawTrialTime := false
	for i, row := range doc.Benches {
		if want := bench.Profiles[i].Name; row.Bench != want {
			t.Errorf("bench[%d] = %q, want %q (profile order)", i, row.Bench, want)
		}
		if row.Gates <= 0 || row.Nets <= 0 || row.Words <= 0 {
			t.Errorf("%s: degenerate size row: %+v", row.Bench, row)
		}
		if row.IdentifyMS < 0 {
			t.Errorf("%s: negative identify_ms", row.Bench)
		}
		if len(row.Obs.Stages) != int(obs.NumStages) {
			t.Fatalf("%s: %d stages, want %d", row.Bench, len(row.Obs.Stages), obs.NumStages)
		}
		for s, st := range row.Obs.Stages {
			if want := obs.Stage(s).String(); st.Stage != want {
				t.Errorf("%s: stage[%d] = %q, want %q (enum order)", row.Bench, s, st.Stage, want)
			}
			if st.MS < 0 || st.Spans < 0 {
				t.Errorf("%s/%s: negative stage row: %+v", row.Bench, st.Stage, st)
			}
			if st.Stage == obs.StageTrial.String() && st.MS > 0 {
				sawTrialTime = true
			}
		}
		if len(row.Obs.Counters) != int(obs.NumCounters) {
			t.Fatalf("%s: %d counters, want %d", row.Bench, len(row.Obs.Counters), obs.NumCounters)
		}
		for c, ct := range row.Obs.Counters {
			if want := obs.Counter(c).String(); ct.Name != want {
				t.Errorf("%s: counter[%d] = %q, want %q", row.Bench, c, ct.Name, want)
			}
		}
		if len(row.Obs.Gauges) != int(obs.NumGauges) {
			t.Fatalf("%s: %d gauges, want %d", row.Bench, len(row.Obs.Gauges), obs.NumGauges)
		}
		for g, gg := range row.Obs.Gauges {
			if want := obs.Gauge(g).String(); gg.Name != want {
				t.Errorf("%s: gauge[%d] = %q, want %q", row.Bench, g, gg.Name, want)
			}
		}
	}
	if !sawTrialTime {
		t.Error("no bench recorded trial-stage time: the baseline was emitted against a broken pipeline")
	}
}

// b14aCache generates the b14 analog once for the observer-overhead
// benchmarks: generation dominates a single Identify and must stay out of
// the measured loop.
var b14aCache struct {
	once sync.Once
	gen  *bench.Generated
	err  error
}

func b14aNetlist(tb testing.TB) *bench.Generated {
	b14aCache.once.Do(func() {
		p, ok := bench.ProfileByName("b14a")
		if !ok {
			panic("b14a profile missing")
		}
		b14aCache.gen, b14aCache.err = p.Generate()
	})
	if b14aCache.err != nil {
		tb.Fatalf("generate b14a: %v", b14aCache.err)
	}
	return b14aCache.gen
}

// BenchmarkObserverOff pins the nil-recorder contract of internal/obs: the
// pipeline with Observer == nil is the baseline that BenchmarkObserverOn is
// compared against (acceptance: within ~2% on this bench).
func BenchmarkObserverOff(b *testing.B) {
	gen := b14aNetlist(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Identify(gen.NL, core.Options{})
	}
}

// BenchmarkObserverOn measures the same pipeline with a live recorder (a
// fresh one per iteration, as real callers hold one per run).
func BenchmarkObserverOn(b *testing.B) {
	gen := b14aNetlist(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Identify(gen.NL, core.Options{Observer: obs.New()})
	}
}

// TestIdentifyDeadline pins the cancellation semantics on the b18 analog,
// the one benchmark long enough to interrupt determinately: an expired
// deadline returns promptly with Stats.Interrupted set, and the partial
// word list is a strict prefix of the uninterrupted sequential run — every
// emitted word is complete, never a half-resolved subgroup.
func TestIdentifyDeadline(t *testing.T) {
	p, ok := bench.ProfileByName("b18a")
	if !ok {
		t.Fatal("b18a profile missing")
	}
	gen, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}

	fullStart := time.Now()
	full := core.Identify(gen.NL, core.Options{})
	fullElapsed := time.Since(fullStart)
	if full.Stats.Interrupted {
		t.Fatal("uninterrupted run marked interrupted")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	partStart := time.Now()
	part := core.Identify(gen.NL, core.Options{Context: ctx})
	partElapsed := time.Since(partStart)

	if !part.Stats.Interrupted {
		t.Fatalf("deadline run not interrupted (took %s, full run %s)", partElapsed, fullElapsed)
	}
	// "Promptly": the cancellation check fires per group, subgroup, and
	// trial, so expiry surfaces within one trial of work — far inside half
	// the full runtime even on a loaded machine.
	if partElapsed >= fullElapsed/2 {
		t.Errorf("interrupted run took %s, want well under half the full run (%s)", partElapsed, fullElapsed)
	}
	if len(part.Words) >= len(full.Words) {
		t.Fatalf("partial run emitted %d words, full run %d — nothing was cut short",
			len(part.Words), len(full.Words))
	}
	for i, w := range part.Words {
		fw := full.Words[i]
		if !equalNetSlices(w.Bits, fw.Bits) || w.Verified != fw.Verified {
			t.Fatalf("word %d diverges from the full run: %+v vs %+v", i, w, fw)
		}
	}
}

func equalNetSlices(a, b []netlist.NetID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
