package gatewords

import (
	"errors"
	"fmt"
	"io"

	"gatewords/internal/modid"
	"gatewords/internal/netlint"
	"gatewords/internal/netlist"
	"gatewords/internal/propagate"
	"gatewords/internal/verilog"
	"gatewords/internal/wordgraph"
)

// ParseVerilogLenient parses a flattened structural-Verilog module while
// tolerating structural violations — multiply-driven nets, wrong gate
// arities, undriven wires — so that Lint can report every defect in one run.
// Syntax errors still fail. The resulting Design is for diagnosis: run it
// through Lint (or Identify with Options.Lint set) before trusting the
// pipeline's output on it.
func ParseVerilogLenient(name, src string) (*Design, error) {
	nl, err := verilog.ParseLenient(name, src)
	if err != nil {
		return nil, err
	}
	return &Design{nl: nl}, nil
}

// LintMode selects the pre-pipeline static-analysis gate of Identify.
type LintMode int

// Lint gate modes. The zero value keeps linting off, preserving the
// historical Identify behavior.
const (
	// LintOff runs no pre-pipeline linting.
	LintOff LintMode = iota
	// LintLenient refuses the netlist only on error-severity diagnostics
	// (broken structure the pipeline cannot process safely).
	LintLenient
	// LintStrict additionally refuses on warnings (floating nets, dead
	// logic, X sources).
	LintStrict
)

// LintDiagnostic is one static-analysis finding.
type LintDiagnostic struct {
	// Rule is the stable rule ID ("NL003"); Name its short handle
	// ("multi-driver"); Family the rule family prefix ("NL0xx").
	Rule   string
	Name   string
	Family string
	// Severity is "error", "warn" or "info".
	Severity string
	// Message is self-contained; Gates and Nets carry the involved element
	// names (for a combinational cycle, Gates lists the members).
	Message string
	Gates   []string
	Nets    []string
}

// LintReport is the outcome of a Lint run. Diagnostics are deterministic:
// sorted, with byte-identical JSON across runs on the same design.
type LintReport struct {
	Module      string
	Diagnostics []LintDiagnostic
	Errors      int
	Warnings    int
	Infos       int

	res *netlint.Result
}

// MaxSeverity returns "error", "warn", "info", or "" for a clean run.
func (r *LintReport) MaxSeverity() string {
	sev, any := r.res.Max()
	if !any {
		return ""
	}
	return sev.String()
}

// WriteText emits one line per diagnostic plus a summary.
func (r *LintReport) WriteText(w io.Writer) error { return r.res.WriteText(w) }

// WriteJSON emits the report as deterministic indented JSON.
func (r *LintReport) WriteJSON(w io.Writer) error { return r.res.WriteJSON(w) }

// LintConfig selects which rules run. The zero value runs every structural
// rule; the semantic NL4xx family additionally requires Semantic.
type LintConfig struct {
	// Only, when non-empty, runs just the listed rules (by ID or name).
	Only []string
	// Disable skips the listed rules (by ID or name).
	Disable []string
	// Semantic enables the NL4xx rules, which prove facts about the design
	// (constant outputs, equivalent drivers, dead mux branches) with an AIG
	// and SAT. Off by default so lint stays fast.
	Semantic bool
	// SemanticBudget caps each semantic SAT query in solver conflicts
	// (0 = default; negative disables SAT).
	SemanticBudget int
}

// Validate reports the entries of Only and Disable that match no registered
// rule ID, name, or family prefix — almost always a typo the caller should
// surface instead of silently linting with a different rule set.
func (c LintConfig) Validate() error {
	var bad []string
	for _, s := range append(append([]string(nil), c.Only...), c.Disable...) {
		if !netlint.KnownSelector(s) {
			bad = append(bad, s)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	ids := make([]string, 0, len(netlint.Rules()))
	for _, r := range netlint.Rules() {
		ids = append(ids, r.ID)
	}
	return fmt.Errorf("gatewords: unknown lint rule(s) %q; valid IDs: %v, or a family prefix like \"NL5\" (see -rules for names)", bad, ids)
}

// Lint runs the full static-analysis rule set over the design and returns
// every finding — it never stops at the first. See LintRules for the rule
// inventory.
func Lint(d *Design) *LintReport { return LintWith(d, LintConfig{}) }

// LintWith is Lint with rule selection.
func LintWith(d *Design, cfg LintConfig) *LintReport {
	res := netlint.Run(d.nl, netlint.Config{
		Only:           cfg.Only,
		Disable:        cfg.Disable,
		Semantic:       cfg.Semantic,
		SemanticBudget: cfg.SemanticBudget,
	})
	rep := &LintReport{
		Module:   res.Module,
		Errors:   res.Errors,
		Warnings: res.Warnings,
		Infos:    res.Infos,
		res:      res,
	}
	for _, diag := range res.Diagnostics {
		rep.Diagnostics = append(rep.Diagnostics, LintDiagnostic{
			Rule:     diag.Rule,
			Name:     diag.Name,
			Family:   diag.Family,
			Severity: diag.Severity,
			Message:  diag.Message,
			Gates:    diag.Gates,
			Nets:     diag.Nets,
		})
	}
	return rep
}

// LintRule describes one registered rule for tooling (gatelint -rules).
type LintRule struct {
	ID       string
	Name     string
	Severity string
	Doc      string
	// Semantic marks rules that need LintConfig.Semantic to run.
	Semantic bool
}

// LintRules returns the rule registry in ID order.
func LintRules() []LintRule {
	rs := netlint.Rules()
	out := make([]LintRule, len(rs))
	for i, r := range rs {
		out[i] = LintRule{ID: r.ID, Name: r.Name, Severity: r.Severity.String(), Doc: r.Doc, Semantic: r.Semantic}
	}
	return out
}

// lintGate enforces Options.Lint before the pipeline runs: it returns a
// joined error carrying every gating diagnostic, or nil when the design is
// acceptable under the mode.
func lintGate(d *Design, mode LintMode) error {
	if mode == LintOff {
		return nil
	}
	floor := netlint.Error
	if mode == LintStrict {
		floor = netlint.Warn
	}
	res := netlint.Run(d.nl, netlint.Config{})
	var errs []error
	for _, diag := range res.Diagnostics {
		if sev, ok := netlint.SeverityFromString(diag.Severity); ok && sev >= floor {
			errs = append(errs, fmt.Errorf("%s %s: %s", diag.Rule, diag.Name, diag.Message))
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("gatewords: lint gate rejected %s (%d error(s), %d warning(s)): %w",
		d.Name(), res.Errors, res.Warnings, errors.Join(errs...))
}

// PropagatedWord is a word derived by word propagation, with provenance.
type PropagatedWord struct {
	Bits []string
	// Direction is "seed", "forward", or "backward".
	Direction string
	// Round is the propagation round that produced it (0 for seeds).
	Round int
}

// PropagateOptions bounds word propagation.
type PropagateOptions struct {
	// MaxRounds caps fixpoint iterations (default 4).
	MaxRounds int
}

// Propagate expands a report's multi-bit words through the netlist
// (WordRev-style word propagation, the downstream stage the paper's
// evaluation feeds): words travel forward through parallel gate columns and
// backward to their operand words, recovering buses — including primary
// input buses — that the structural matcher alone cannot see.
func Propagate(d *Design, rep *Report, opt PropagateOptions) []PropagatedWord {
	var seeds [][]netlist.NetID
	for _, w := range rep.Words {
		if len(w.Bits) < 2 {
			continue
		}
		seeds = append(seeds, d.netIDs(w.Bits))
	}
	res := propagate.Expand(d.nl, seeds, propagate.Options{MaxRounds: opt.MaxRounds})
	out := make([]PropagatedWord, 0, len(res.Words))
	for _, w := range res.Words {
		out = append(out, PropagatedWord{
			Bits:      d.netNames(w.Bits),
			Direction: w.Dir.String(),
			Round:     w.Round,
		})
	}
	return out
}

// Operator is a recovered word-level operator instance.
type Operator struct {
	// Kind is "mux", "bitwise", "inv", "pass", "adder", or "incr".
	Kind string
	// Op is the per-bit gate for bitwise operators ("XOR", "NAND", ...).
	Op string
	// Output and Inputs are LSB-aligned net-name words.
	Output []string
	Inputs [][]string
	// Select is the mux select net.
	Select string
	// HDL is a reconstructed description, e.g. "{d0..d3} = s ? {b0..b3} : {a0..a3}".
	HDL string
}

// DiscoverOperators classifies the operators driving the given words
// (identified and/or propagated), reconstructing word-level structure from
// the sea of gates — the module-identification step the paper's
// introduction motivates.
func DiscoverOperators(d *Design, words [][]string) []Operator {
	ids := make([][]netlist.NetID, 0, len(words))
	for _, w := range words {
		ids = append(ids, d.netIDs(w))
	}
	mods := modid.Discover(d.nl, ids)
	out := make([]Operator, 0, len(mods))
	for _, m := range mods {
		op := Operator{
			Kind:   m.Kind.String(),
			Output: d.netNames(m.Output),
			HDL:    m.Describe(d.nl),
		}
		if m.Kind == modid.Bitwise {
			op.Op = m.Op.String()
		}
		if m.Select != netlist.NoNet {
			op.Select = d.nl.NetName(m.Select)
		}
		for _, in := range m.Inputs {
			op.Inputs = append(op.Inputs, d.netNames(in))
		}
		out = append(out, op)
	}
	return out
}

// netIDs resolves names, skipping unknowns.
func (d *Design) netIDs(names []string) []netlist.NetID {
	ids := make([]netlist.NetID, 0, len(names))
	for _, n := range names {
		if id, ok := d.nl.NetByName(n); ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// WriteWordGraphDOT renders the recovered word-level dataflow of the given
// words as a Graphviz digraph: nodes are maximal words (input buses, state
// words, internal words) and edges are the operators and register transfers
// connecting them — a one-look design overview reconstructed from the sea
// of gates.
func WriteWordGraphDOT(w io.Writer, d *Design, words [][]string) error {
	ids := make([][]netlist.NetID, 0, len(words))
	for _, word := range words {
		ids = append(ids, d.netIDs(word))
	}
	g := wordgraph.Build(d.nl, ids)
	return g.WriteDOT(w, d.Name())
}
