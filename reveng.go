package gatewords

import (
	"io"

	"gatewords/internal/modid"
	"gatewords/internal/netlist"
	"gatewords/internal/propagate"
	"gatewords/internal/wordgraph"
)

// PropagatedWord is a word derived by word propagation, with provenance.
type PropagatedWord struct {
	Bits []string
	// Direction is "seed", "forward", or "backward".
	Direction string
	// Round is the propagation round that produced it (0 for seeds).
	Round int
}

// PropagateOptions bounds word propagation.
type PropagateOptions struct {
	// MaxRounds caps fixpoint iterations (default 4).
	MaxRounds int
}

// Propagate expands a report's multi-bit words through the netlist
// (WordRev-style word propagation, the downstream stage the paper's
// evaluation feeds): words travel forward through parallel gate columns and
// backward to their operand words, recovering buses — including primary
// input buses — that the structural matcher alone cannot see.
func Propagate(d *Design, rep *Report, opt PropagateOptions) []PropagatedWord {
	var seeds [][]netlist.NetID
	for _, w := range rep.Words {
		if len(w.Bits) < 2 {
			continue
		}
		seeds = append(seeds, d.netIDs(w.Bits))
	}
	res := propagate.Expand(d.nl, seeds, propagate.Options{MaxRounds: opt.MaxRounds})
	out := make([]PropagatedWord, 0, len(res.Words))
	for _, w := range res.Words {
		out = append(out, PropagatedWord{
			Bits:      d.netNames(w.Bits),
			Direction: w.Dir.String(),
			Round:     w.Round,
		})
	}
	return out
}

// Operator is a recovered word-level operator instance.
type Operator struct {
	// Kind is "mux", "bitwise", "inv", "pass", "adder", or "incr".
	Kind string
	// Op is the per-bit gate for bitwise operators ("XOR", "NAND", ...).
	Op string
	// Output and Inputs are LSB-aligned net-name words.
	Output []string
	Inputs [][]string
	// Select is the mux select net.
	Select string
	// HDL is a reconstructed description, e.g. "{d0..d3} = s ? {b0..b3} : {a0..a3}".
	HDL string
}

// DiscoverOperators classifies the operators driving the given words
// (identified and/or propagated), reconstructing word-level structure from
// the sea of gates — the module-identification step the paper's
// introduction motivates.
func DiscoverOperators(d *Design, words [][]string) []Operator {
	ids := make([][]netlist.NetID, 0, len(words))
	for _, w := range words {
		ids = append(ids, d.netIDs(w))
	}
	mods := modid.Discover(d.nl, ids)
	out := make([]Operator, 0, len(mods))
	for _, m := range mods {
		op := Operator{
			Kind:   m.Kind.String(),
			Output: d.netNames(m.Output),
			HDL:    m.Describe(d.nl),
		}
		if m.Kind == modid.Bitwise {
			op.Op = m.Op.String()
		}
		if m.Select != netlist.NoNet {
			op.Select = d.nl.NetName(m.Select)
		}
		for _, in := range m.Inputs {
			op.Inputs = append(op.Inputs, d.netNames(in))
		}
		out = append(out, op)
	}
	return out
}

// netIDs resolves names, skipping unknowns.
func (d *Design) netIDs(names []string) []netlist.NetID {
	ids := make([]netlist.NetID, 0, len(names))
	for _, n := range names {
		if id, ok := d.nl.NetByName(n); ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// WriteWordGraphDOT renders the recovered word-level dataflow of the given
// words as a Graphviz digraph: nodes are maximal words (input buses, state
// words, internal words) and edges are the operators and register transfers
// connecting them — a one-look design overview reconstructed from the sea
// of gates.
func WriteWordGraphDOT(w io.Writer, d *Design, words [][]string) error {
	ids := make([][]netlist.NetID, 0, len(words))
	for _, word := range words {
		ids = append(ids, d.netIDs(word))
	}
	g := wordgraph.Build(d.nl, ids)
	return g.WriteDOT(w, d.Name())
}
