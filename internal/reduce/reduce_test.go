package reduce

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// mux4 builds the classic four-NAND mux: y = NAND(NAND(a,ns), NAND(b,s)),
// ns = NOT(s).
func mux4(t *testing.T) (*netlist.Netlist, map[string]netlist.NetID) {
	t.Helper()
	nl := netlist.New("mux")
	ids := map[string]netlist.NetID{}
	for _, n := range []string{"a", "b", "s"} {
		ids[n] = nl.MustNet(n)
		nl.MarkPI(ids[n])
	}
	for _, n := range []string{"ns", "t1", "t2", "y"} {
		ids[n] = nl.MustNet(n)
	}
	nl.MustGate("ginv", logic.Not, ids["ns"], ids["s"])
	nl.MustGate("gt1", logic.Nand, ids["t1"], ids["a"], ids["ns"])
	nl.MustGate("gt2", logic.Nand, ids["t2"], ids["b"], ids["s"])
	nl.MustGate("gy", logic.Nand, ids["y"], ids["t1"], ids["t2"])
	nl.MarkPO(ids["y"])
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl, ids
}

func TestApplyForwardPropagation(t *testing.T) {
	nl, ids := mux4(t)
	r, err := Apply(nl, map[netlist.NetID]logic.Value{ids["s"]: logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	// s=0: ns=1, t2=1; y = NAND(t1, 1) -> effectively NOT(t1) where
	// t1 = NAND(a, 1) -> NOT(a). So y's effective cone is NOT over NOT.
	if v := r.Value(ids["ns"]); v != logic.One {
		t.Errorf("ns = %s", v)
	}
	if v := r.Value(ids["t2"]); v != logic.One {
		t.Errorf("t2 = %s", v)
	}
	if r.Value(ids["y"]).Known() {
		t.Error("y must stay live (depends on a)")
	}
	if k := r.GateKind(nl.Net(ids["y"]).Driver); k != logic.Not {
		t.Errorf("reduced y root = %s, want NOT", k)
	}
	if k := r.GateKind(nl.Net(ids["t1"]).Driver); k != logic.Not {
		t.Errorf("reduced t1 = %s, want NOT", k)
	}
	if r.AssignedCount() < 3 {
		t.Errorf("assigned %d nets", r.AssignedCount())
	}
	if r.RemovedGateCount() != 2 { // ginv and gt2 have constant outputs
		t.Errorf("removed %d gates", r.RemovedGateCount())
	}
}

func TestApplyBackwardImplication(t *testing.T) {
	// Pinning an AND output to 1 forces both inputs to 1.
	nl := netlist.New("t")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	nl.MarkPI(a)
	nl.MarkPI(b)
	y := nl.MustNet("y")
	nl.MustGate("g", logic.And, y, a, b)
	r, err := Apply(nl, map[netlist.NetID]logic.Value{y: logic.One})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value(a) != logic.One || r.Value(b) != logic.One {
		t.Errorf("backward: a=%s b=%s", r.Value(a), r.Value(b))
	}
}

func TestApplyBackwardThenForwardRipple(t *testing.T) {
	// y = NAND(x, x); pin y=0 -> x=1 -> z = NOT(x) = 0.
	nl := netlist.New("t")
	x := nl.MustNet("x")
	nl.MarkPI(x)
	y := nl.MustNet("y")
	z := nl.MustNet("z")
	nl.MustGate("g1", logic.Nand, y, x, x)
	nl.MustGate("g2", logic.Not, z, x)
	r, err := Apply(nl, map[netlist.NetID]logic.Value{y: logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value(x) != logic.One || r.Value(z) != logic.Zero {
		t.Errorf("x=%s z=%s", r.Value(x), r.Value(z))
	}
}

func TestApplyConflict(t *testing.T) {
	// y = AND(a, b) with a pinned 0 and y pinned 1 is contradictory.
	nl := netlist.New("t")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	nl.MarkPI(a)
	nl.MarkPI(b)
	y := nl.MustNet("y")
	nl.MustGate("g", logic.And, y, a, b)
	_, err := Apply(nl, map[netlist.NetID]logic.Value{a: logic.Zero, y: logic.One})
	if !errors.Is(err, ErrConflict) {
		t.Errorf("err = %v, want ErrConflict", err)
	}
}

func TestApplyRejectsX(t *testing.T) {
	nl := netlist.New("t")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	if _, err := Apply(nl, map[netlist.NetID]logic.Value{a: logic.X}); err == nil {
		t.Error("X assignment accepted")
	}
}

func TestConstantsDoNotCrossDFF(t *testing.T) {
	nl := netlist.New("t")
	d := nl.MustNet("d")
	nl.MarkPI(d)
	q := nl.MustNet("q")
	nl.MustGate("ff", logic.DFF, q, d)
	y := nl.MustNet("y")
	nl.MustGate("g", logic.Not, y, q)
	r, err := Apply(nl, map[netlist.NetID]logic.Value{d: logic.One})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value(q).Known() || r.Value(y).Known() {
		t.Error("constant leaked through the flip-flop")
	}
}

func TestViewOnConstNets(t *testing.T) {
	nl, ids := mux4(t)
	r, err := Apply(nl, map[netlist.NetID]logic.Value{ids["s"]: logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	if r.DriverOf(ids["t2"]) != netlist.NoGate {
		t.Error("constant net must have no driver in the reduced view")
	}
	if v, ok := r.NetConst(ids["t2"]); !ok || v != logic.One {
		t.Error("NetConst wrong")
	}
	if _, ok := r.NetConst(ids["y"]); ok {
		t.Error("live net reported constant")
	}
	ins := r.GateInputs(nl.Net(ids["y"]).Driver, nil)
	if len(ins) != 1 || ins[0] != ids["t1"] {
		t.Errorf("reduced y inputs: %v", ins)
	}
}

func TestSimplifyGateTable(t *testing.T) {
	nl := netlist.New("t")
	n := make([]netlist.NetID, 6)
	for i := range n {
		n[i] = nl.MustNet(string(rune('a' + i)))
		nl.MarkPI(n[i])
	}
	mk := func(vals ...logic.Value) func(netlist.NetID) logic.Value {
		return func(id netlist.NetID) logic.Value {
			return vals[int(id)]
		}
	}
	cases := []struct {
		name     string
		kind     logic.Kind
		ins      []netlist.NetID
		vals     []logic.Value
		wantKind logic.Kind
		wantIns  int
		wantOut  logic.Value
	}{
		{"and drop 1", logic.And, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.X, logic.One, logic.X}, logic.And, 2, logic.X},
		{"and to buf", logic.And, []netlist.NetID{n[0], n[1]}, []logic.Value{logic.X, logic.One}, logic.Buf, 1, logic.X},
		{"and const", logic.And, []netlist.NetID{n[0], n[1]}, []logic.Value{logic.Zero, logic.X}, logic.And, 0, logic.Zero},
		{"nand to not", logic.Nand, []netlist.NetID{n[0], n[1]}, []logic.Value{logic.One, logic.X}, logic.Not, 1, logic.X},
		{"or to buf", logic.Or, []netlist.NetID{n[0], n[1]}, []logic.Value{logic.Zero, logic.X}, logic.Buf, 1, logic.X},
		{"nor to not", logic.Nor, []netlist.NetID{n[0], n[1]}, []logic.Value{logic.X, logic.Zero}, logic.Not, 1, logic.X},
		{"xor drops 0", logic.Xor, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.Zero, logic.X, logic.X}, logic.Xor, 2, logic.X},
		{"xor flips on 1", logic.Xor, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.One, logic.X, logic.X}, logic.Xnor, 2, logic.X},
		{"xor to buf", logic.Xor, []netlist.NetID{n[0], n[1]}, []logic.Value{logic.Zero, logic.X}, logic.Buf, 1, logic.X},
		{"xor to not", logic.Xor, []netlist.NetID{n[0], n[1]}, []logic.Value{logic.One, logic.X}, logic.Not, 1, logic.X},
		{"xnor to buf", logic.Xnor, []netlist.NetID{n[0], n[1]}, []logic.Value{logic.One, logic.X}, logic.Buf, 1, logic.X},
		{"mux sel0", logic.Mux2, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.Zero, logic.X, logic.X}, logic.Buf, 1, logic.X},
		{"mux sel1", logic.Mux2, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.One, logic.X, logic.X}, logic.Buf, 1, logic.X},
		{"mux data 01 to buf(sel)", logic.Mux2, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.X, logic.Zero, logic.One}, logic.Buf, 1, logic.X},
		{"mux data 10 to not(sel)", logic.Mux2, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.X, logic.One, logic.Zero}, logic.Not, 1, logic.X},
		{"mux one data known keeps pins", logic.Mux2, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.X, logic.One, logic.X}, logic.Mux2, 3, logic.X},
		{"aoi c0 to nand", logic.Aoi21, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.X, logic.X, logic.Zero}, logic.Nand, 2, logic.X},
		{"aoi c1 const", logic.Aoi21, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.X, logic.X, logic.One}, logic.Aoi21, 0, logic.Zero},
		{"aoi a1 to nor", logic.Aoi21, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.One, logic.X, logic.X}, logic.Nor, 2, logic.X},
		{"aoi a0 to not", logic.Aoi21, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.Zero, logic.X, logic.X}, logic.Not, 1, logic.X},
		{"oai c1 to nor", logic.Oai21, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.X, logic.X, logic.One}, logic.Nor, 2, logic.X},
		{"oai c0 const", logic.Oai21, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.X, logic.X, logic.Zero}, logic.Oai21, 0, logic.One},
		{"oai a0 to nand", logic.Oai21, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.Zero, logic.X, logic.X}, logic.Nand, 2, logic.X},
		{"oai b1 to not", logic.Oai21, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.X, logic.One, logic.X}, logic.Not, 1, logic.X},
		{"cascade aoi c0 a1", logic.Aoi21, []netlist.NetID{n[0], n[1], n[2]}, []logic.Value{logic.One, logic.X, logic.Zero}, logic.Not, 1, logic.X},
		{"untouched", logic.Nand, []netlist.NetID{n[0], n[1]}, []logic.Value{logic.X, logic.X}, logic.Nand, 2, logic.X},
		{"dff passthrough", logic.DFF, []netlist.NetID{n[0]}, []logic.Value{logic.One}, logic.DFF, 1, logic.X},
	}
	for _, c := range cases {
		kind, ins, out := SimplifyGate(c.kind, c.ins, mk(c.vals...))
		if out != c.wantOut {
			t.Errorf("%s: out=%s want %s", c.name, out, c.wantOut)
			continue
		}
		if c.wantOut.Known() {
			continue
		}
		if kind != c.wantKind || len(ins) != c.wantIns {
			t.Errorf("%s: got %s/%d pins, want %s/%d", c.name, kind, len(ins), c.wantKind, c.wantIns)
		}
	}
}

func TestMaterializeMux(t *testing.T) {
	nl, ids := mux4(t)
	r, err := Apply(nl, map[netlist.NetID]logic.Value{ids["s"]: logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Materialize(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.NL.Validate(); err != nil {
		t.Fatalf("materialized invalid: %v", err)
	}
	// Constant nets gone; s (assigned) gone; y survives as NOT chain.
	if _, ok := m.NL.NetByName("s"); ok {
		t.Error("assigned net survived")
	}
	if _, ok := m.NL.NetByName("t2"); ok {
		t.Error("constant net survived")
	}
	y, ok := m.NL.NetByName("y")
	if !ok {
		t.Fatal("output lost")
	}
	if m.NL.Gate(m.NL.Net(y).Driver).Kind != logic.Not {
		t.Error("y driver not rewritten to NOT")
	}
	if !m.NL.Net(y).IsPO {
		t.Error("PO marking lost")
	}
}

func TestMaterializeTieOffs(t *testing.T) {
	// Mux with unknown select and one known data pin keeps the pin as a
	// tie-off constant input.
	nl := netlist.New("t")
	s := nl.MustNet("s")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	y := nl.MustNet("y")
	nl.MarkPI(s)
	nl.MarkPI(a)
	nl.MarkPI(b)
	nl.MarkPO(y)
	nl.MustGate("mx", logic.Mux2, y, s, a, b)
	r, err := Apply(nl, map[netlist.NetID]logic.Value{a: logic.One})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Materialize(r)
	if err != nil {
		t.Fatal(err)
	}
	if m.Const1 == netlist.NoNet {
		t.Fatal("tie-off net not created")
	}
	yid, _ := m.NL.NetByName("y")
	g := m.NL.Gate(m.NL.Net(yid).Driver)
	if g.Kind != logic.Mux2 || g.Inputs[1] != m.Const1 {
		t.Errorf("materialized mux: %s %v", g.Kind, g.Inputs)
	}
}

// evalAll computes every net's value for one full PI assignment by
// evaluating gates in topological order.
func evalAll(t *testing.T, nl *netlist.Netlist, piVals map[netlist.NetID]logic.Value) []logic.Value {
	t.Helper()
	order, err := nl.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]logic.Value, nl.NetCount())
	for id, v := range piVals {
		vals[id] = v
	}
	for _, gid := range order {
		g := nl.Gate(gid)
		in := make([]logic.Value, len(g.Inputs))
		for i, id := range g.Inputs {
			in[i] = vals[id]
		}
		vals[g.Output] = logic.Eval(g.Kind, in)
	}
	return vals
}

// TestApplySoundOnRandomCircuits brute-forces small random combinational
// circuits: for every internal net and pin value, enumerate all PI vectors.
// If any vector realizes the pin, Apply must succeed and every value it
// infers must hold in every vector consistent with the pin. (Apply may miss
// unsatisfiable pins — it is unit propagation, not SAT — but it must never
// be wrong.)
func TestApplySoundOnRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nl := randomComb(rng)
		pis := nl.PIs()
		var vectors [][]logic.Value
		for mask := 0; mask < 1<<len(pis); mask++ {
			piVals := map[netlist.NetID]logic.Value{}
			for i, pi := range pis {
				piVals[pi] = logic.FromBool(mask>>i&1 == 1)
			}
			vectors = append(vectors, evalAll(t, nl, piVals))
		}
		for gi := 0; gi < nl.GateCount(); gi++ {
			pin := nl.Gate(netlist.GateID(gi)).Output
			for _, v := range []logic.Value{logic.Zero, logic.One} {
				var consistent [][]logic.Value
				for _, vec := range vectors {
					if vec[pin] == v {
						consistent = append(consistent, vec)
					}
				}
				r, err := Apply(nl, map[netlist.NetID]logic.Value{pin: v})
				if len(consistent) > 0 && err != nil {
					t.Fatalf("seed %d: net %s=%s reachable but Apply conflicts: %v",
						seed, nl.NetName(pin), v, err)
				}
				if err != nil {
					continue
				}
				for id := 0; id < nl.NetCount(); id++ {
					iv := r.Value(netlist.NetID(id))
					if !iv.Known() {
						continue
					}
					for _, vec := range consistent {
						if vec[id] != iv {
							t.Fatalf("seed %d: pin %s=%s inferred %s=%s but a consistent vector has %s",
								seed, nl.NetName(pin), v, nl.NetName(netlist.NetID(id)), iv, vec[id])
						}
					}
				}
			}
		}
	}
}

func randomComb(rng *rand.Rand) *netlist.Netlist {
	nl := netlist.New("rnd")
	var nets []netlist.NetID
	for i := 0; i < 4; i++ {
		id := nl.MustNet("pi" + string(rune('0'+i)))
		nl.MarkPI(id)
		nets = append(nets, id)
	}
	kinds := []logic.Kind{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Not, logic.Buf, logic.Mux2, logic.Aoi21, logic.Oai21, logic.Xor, logic.Xnor}
	for i := 0; i < 15; i++ {
		k := kinds[rng.Intn(len(kinds))]
		arity := 2
		if n, fixed := k.FixedArity(); fixed {
			arity = n
		}
		ins := make([]netlist.NetID, arity)
		perm := rng.Perm(len(nets))
		for j := range ins {
			// Distinct nets per pin to keep both output values reachable.
			ins[j] = nets[perm[j%len(perm)]]
		}
		out := nl.MustNet("n" + string(rune('a'+i)))
		nl.MustGate("g"+string(rune('a'+i)), k, out, ins...)
		nets = append(nets, out)
	}
	return nl
}

// chainWithDFF builds a linear chain a -> i0 -> i1 -> ... with a DFF splice:
// a drives NOT i0, i0 drives NOT i1, i1 drives DFF q, q drives NOT i2,
// i2 drives NOT i3.
func chainWithDFF(t *testing.T) (*netlist.Netlist, map[string]netlist.NetID) {
	t.Helper()
	nl := netlist.New("chain")
	ids := map[string]netlist.NetID{}
	net := func(n string) netlist.NetID {
		ids[n] = nl.MustNet(n)
		return ids[n]
	}
	a := net("a")
	nl.MarkPI(a)
	nl.MustGate("g0", logic.Not, net("i0"), a)
	nl.MustGate("g1", logic.Not, net("i1"), ids["i0"])
	nl.MustGate("gq", logic.DFF, net("q"), ids["i1"])
	nl.MustGate("g2", logic.Not, net("i2"), ids["q"])
	nl.MustGate("g3", logic.Not, net("i3"), ids["i2"])
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl, ids
}

func TestDirtyDistances(t *testing.T) {
	nl, ids := chainWithDFF(t)
	red, err := Apply(nl, map[netlist.NetID]logic.Value{ids["a"]: logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	dist := red.DirtyDistances(10)
	// a=0 propagates forward through the two inverters; all three are
	// changed nets at distance 0. The DFF blocks both value propagation and
	// the dirty walk, so q/i2/i3 must be absent.
	for _, n := range []string{"a", "i0", "i1"} {
		if d, ok := dist[ids[n]]; !ok || d != 0 {
			t.Errorf("dist[%s] = %d, %v; want 0, true", n, d, ok)
		}
	}
	for _, n := range []string{"q", "i2", "i3"} {
		if d, ok := dist[ids[n]]; ok {
			t.Errorf("dist[%s] = %d; want absent (behind DFF)", n, d)
		}
	}
}

func TestDirtyDistancesFanoutLevels(t *testing.T) {
	// Assign only a leaf that implies nothing forward (XOR keeps outputs
	// unknown when only one input is known), so the BFS levels are visible:
	// x is changed (0), each XOR output downstream is one level further.
	nl := netlist.New("lvl")
	ids := map[string]netlist.NetID{}
	net := func(n string) netlist.NetID {
		ids[n] = nl.MustNet(n)
		return ids[n]
	}
	x := net("x")
	nl.MarkPI(x)
	for _, n := range []string{"p0", "p1", "p2", "p3"} {
		id := net(n)
		nl.MarkPI(id)
	}
	nl.MustGate("g0", logic.Xor, net("l1"), x, ids["p0"])
	nl.MustGate("g1", logic.Xor, net("l2"), ids["l1"], ids["p1"])
	nl.MustGate("g2", logic.Xor, net("l3"), ids["l2"], ids["p2"])
	nl.MustGate("g3", logic.Xor, net("l4"), ids["l3"], ids["p3"])
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	red, err := Apply(nl, map[netlist.NetID]logic.Value{x: logic.One})
	if err != nil {
		t.Fatal(err)
	}
	dist := red.DirtyDistances(2)
	want := map[string]int{"x": 0, "l1": 1, "l2": 2}
	for n, d := range want {
		if got, ok := dist[ids[n]]; !ok || got != d {
			t.Errorf("dist[%s] = %d, %v; want %d, true", n, got, ok, d)
		}
	}
	// The bound must cut the walk: l3 and l4 lie beyond maxDist=2.
	for _, n := range []string{"l3", "l4"} {
		if d, ok := dist[ids[n]]; ok {
			t.Errorf("dist[%s] = %d; want absent (beyond maxDist)", n, d)
		}
	}
}

func TestDirtyDistancesInScope(t *testing.T) {
	// Same chain as TestDirtyDistancesFanoutLevels, but the scope excludes
	// l2: the walk must not pass through or report out-of-scope nets.
	nl := netlist.New("scope")
	ids := map[string]netlist.NetID{}
	net := func(n string) netlist.NetID {
		ids[n] = nl.MustNet(n)
		return ids[n]
	}
	x := net("x")
	nl.MarkPI(x)
	for _, n := range []string{"p0", "p1", "p2"} {
		nl.MarkPI(net(n))
	}
	nl.MustGate("g0", logic.Xor, net("l1"), x, ids["p0"])
	nl.MustGate("g1", logic.Xor, net("l2"), ids["l1"], ids["p1"])
	nl.MustGate("g2", logic.Xor, net("l3"), ids["l2"], ids["p2"])
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	red, err := Apply(nl, map[netlist.NetID]logic.Value{x: logic.One})
	if err != nil {
		t.Fatal(err)
	}
	scope := map[netlist.NetID]bool{ids["x"]: true, ids["l1"]: true, ids["l3"]: true}
	dist := red.DirtyDistancesIn(scope, 5)
	if d, ok := dist[ids["x"]]; !ok || d != 0 {
		t.Errorf("dist[x] = %d, %v; want 0", d, ok)
	}
	if d, ok := dist[ids["l1"]]; !ok || d != 1 {
		t.Errorf("dist[l1] = %d, %v; want 1", d, ok)
	}
	for _, n := range []string{"l2", "l3"} {
		if d, ok := dist[ids[n]]; ok {
			t.Errorf("dist[%s] = %d; want absent (l2 out of scope cuts the walk)", n, d)
		}
	}
	// With a fanin-closed scope the distances match the global walk.
	full := map[netlist.NetID]bool{}
	for n := range ids {
		full[ids[n]] = true
	}
	got := red.DirtyDistancesIn(full, 5)
	want := red.DirtyDistances(5)
	if len(got) != len(want) {
		t.Fatalf("full-scope dist %v != global %v", got, want)
	}
	for n, d := range want {
		if got[n] != d {
			t.Errorf("dist[%s] = %d, global %d", nl.NetName(n), got[n], d)
		}
	}
}

// TestApplyMalformedGateIsAnError pins the lenient-netlist hardening: a
// bad-arity gate (legal in a leniently parsed netlist) reached by
// propagation must surface as a wrapped ErrMalformedGate, not a panic from
// logic.Eval.
func TestApplyMalformedGateIsAnError(t *testing.T) {
	nl := netlist.New("lenient")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	y := nl.MustNet("y")
	// AddGateLenient admits the NAND/1 that MustGate would reject.
	nl.AddGateLenient("g1", logic.Nand, y, a)
	_, err := Apply(nl, map[netlist.NetID]logic.Value{a: logic.Zero})
	if err == nil {
		t.Fatal("Apply evaluated a NAND/1 without error")
	}
	if !errors.Is(err, ErrMalformedGate) {
		t.Fatalf("err = %v, want ErrMalformedGate", err)
	}
	for _, frag := range []string{"g1", "NAND", "1 inputs"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}

// TestTrySimplifyGateBadArity pins the non-panicking simplify entry point:
// bad arities error, well-formed gates match SimplifyGate exactly.
func TestTrySimplifyGateBadArity(t *testing.T) {
	ins := []netlist.NetID{1}
	if _, _, _, err := TrySimplifyGate(logic.Nand, ins, nil); !errors.Is(err, ErrMalformedGate) {
		t.Fatalf("TrySimplifyGate(NAND/1) err = %v, want ErrMalformedGate", err)
	}
	val := func(n netlist.NetID) logic.Value {
		if n == 1 {
			return logic.Zero
		}
		return logic.X
	}
	ins2 := []netlist.NetID{1, 2}
	k, rem, out, err := TrySimplifyGate(logic.And, ins2, val)
	if err != nil {
		t.Fatal(err)
	}
	wk, wrem, wout := SimplifyGate(logic.And, ins2, val)
	if k != wk || out != wout || len(rem) != len(wrem) {
		t.Fatalf("TrySimplifyGate = (%v %v %v), SimplifyGate = (%v %v %v)", k, rem, out, wk, wrem, wout)
	}
}
