// Package reduce implements circuit reduction under control-signal value
// assignments (DAC'15 §2.5): assigned values are propagated forward and
// backward throughout the netlist until fixpoint; nets with inferred
// constants and gates with determined outputs are removed; gates left with a
// single live input collapse to buffers or inverters.
//
// A Reduction is an overlay implementing netlist.View — the underlying
// netlist is never mutated, so many candidate assignments can be explored
// cheaply. Materialize builds a real simplified netlist when one is needed
// (for example to hand the reduced circuit to another word-identification
// tool, the integration path of §2.1).
package reduce

import (
	"fmt"
	"sort"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/obs"
)

// Reduction is the result of propagating an assignment through a netlist.
// It implements netlist.View over the simplified circuit.
type Reduction struct {
	nl       *netlist.Netlist
	vals     map[netlist.NetID]logic.Value // per-net inferred constant (absent = live)
	conflict bool
	// ConflictGate names the gate where a contradiction surfaced, for
	// diagnostics; empty when the assignment is feasible.
	ConflictGate string

	effKind map[netlist.GateID]logic.Kind
	effIns  map[netlist.GateID][]netlist.NetID

	// malformed records the first lenient-netlist gate the propagation could
	// not evaluate (invalid arity for its kind); it preempts the generic
	// conflict error.
	malformed error
}

// ErrConflict is returned by Apply when an assignment is infeasible: the
// implied values contradict each other somewhere in the netlist.
var ErrConflict = fmt.Errorf("reduce: assignment is contradictory")

// ErrMalformedGate is returned (wrapped) by Apply and TrySimplifyGate when
// propagation reaches a gate whose arity is invalid for its kind — legal on
// leniently parsed netlists (verilog.ParseLenient), fatal to evaluate.
var ErrMalformedGate = fmt.Errorf("reduce: malformed gate")

// Apply propagates assign through nl and returns the resulting overlay.
// Propagation runs forward (gate inputs determine outputs) and backward
// (known outputs imply inputs, unit-propagation style) to fixpoint. Values
// never cross flip-flops: a constant D input says nothing about the stored
// state in general, and word identification is a combinational analysis.
func Apply(nl *netlist.Netlist, assign map[netlist.NetID]logic.Value) (*Reduction, error) {
	return ApplyObserved(nl, assign, nil)
}

// ApplyObserved is Apply with observability: the propagation's gate-visit
// count and peak worklist depth report into rec (see internal/obs). A nil
// rec records nothing and costs two local integer updates per visit.
func ApplyObserved(nl *netlist.Netlist, assign map[netlist.NetID]logic.Value, rec *obs.Recorder) (*Reduction, error) {
	r := &Reduction{
		nl:      nl,
		vals:    make(map[netlist.NetID]logic.Value, 2*len(assign)+16),
		effKind: make(map[netlist.GateID]logic.Kind),
		effIns:  make(map[netlist.GateID][]netlist.NetID),
	}
	queue := make([]netlist.NetID, 0, len(assign))
	for n, v := range assign {
		if !v.Known() {
			return nil, fmt.Errorf("reduce: assignment of X to net %q", nl.NetName(n))
		}
		if r.vals[n].Known() && r.vals[n] != v {
			return nil, ErrConflict
		}
		if !r.vals[n].Known() {
			r.vals[n] = v
			queue = append(queue, n)
		}
	}
	// The fixpoint is confluent, but the peak-queue-depth gauge reported
	// below is not: canonicalize the map-ordered seeds so observability
	// output is as deterministic as the result.
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	inbuf := make([]logic.Value, 0, 8)
	visits, maxQueue := int64(0), int64(len(queue))
	for len(queue) > 0 {
		if q := int64(len(queue)); q > maxQueue {
			maxQueue = q
		}
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		// Forward: every fanout gate may now have a determined output, and
		// a newly known output may backward-imply sibling inputs.
		net := nl.Net(n)
		for _, g := range net.Fanout {
			visits++
			queue = r.visitGate(g, queue, &inbuf)
			if r.conflict {
				rec.Add(obs.CtrReduceGateVisits, visits)
				rec.Max(obs.GaugeReduceQueue, maxQueue)
				return nil, r.propagationError()
			}
		}
		// Backward: the driver of n now has a known output.
		if net.Driver != netlist.NoGate {
			visits++
			queue = r.visitGate(net.Driver, queue, &inbuf)
			if r.conflict {
				rec.Add(obs.CtrReduceGateVisits, visits)
				rec.Max(obs.GaugeReduceQueue, maxQueue)
				return nil, r.propagationError()
			}
		}
	}
	rec.Add(obs.CtrReduceGateVisits, visits)
	rec.Max(obs.GaugeReduceQueue, maxQueue)
	return r, nil
}

// propagationError renders the reason propagation aborted: the malformed
// gate if one was hit, else the assignment conflict.
func (r *Reduction) propagationError() error {
	if r.malformed != nil {
		return r.malformed
	}
	return fmt.Errorf("%w (at gate %q)", ErrConflict, r.ConflictGate)
}

// visitGate re-evaluates one gate against current knowledge, performing both
// forward evaluation and backward implication, and enqueues any nets whose
// values become known.
func (r *Reduction) visitGate(g netlist.GateID, queue []netlist.NetID, inbuf *[]logic.Value) []netlist.NetID {
	gate := r.nl.Gate(g)
	if gate.Kind == logic.DFF {
		return queue // constants do not cross sequential elements
	}
	in := (*inbuf)[:0]
	for _, id := range gate.Inputs {
		in = append(in, r.vals[id])
	}
	*inbuf = in

	// Forward. A leniently parsed netlist can contain a gate whose arity is
	// invalid for its kind; surface it as an explicit error instead of
	// letting logic.Eval panic. The early return also shields the backward
	// implication below, which indexes pins by fixed arity.
	out, evalErr := logic.TryEval(gate.Kind, in)
	if evalErr != nil {
		r.conflict = true
		r.ConflictGate = gate.Name
		r.malformed = fmt.Errorf("%w %q: %v", ErrMalformedGate, gate.Name, evalErr)
		return queue
	}
	cur := r.vals[gate.Output]
	if out.Known() {
		if cur.Known() && cur != out {
			r.conflict = true
			r.ConflictGate = gate.Name
			return queue
		}
		if !cur.Known() {
			r.vals[gate.Output] = out
			queue = append(queue, gate.Output)
			cur = out
		}
	}

	// Backward.
	if cur.Known() {
		newly, bad := logic.ImplyInputs(gate.Kind, cur, in)
		if bad {
			r.conflict = true
			r.ConflictGate = gate.Name
			return queue
		}
		if newly > 0 {
			for i, id := range gate.Inputs {
				if in[i].Known() && !r.vals[id].Known() {
					r.vals[id] = in[i]
					queue = append(queue, id)
				}
			}
		}
	}
	return queue
}

// Value returns the inferred constant for a net (X if the net is live).
func (r *Reduction) Value(n netlist.NetID) logic.Value { return r.vals[n] }

// DirtyDistances returns, for every net lying within maxDist fanin levels
// of a net the reduction changed, the minimum number of driver (fanin)
// steps from that net down to a changed net; changed nets themselves map to
// 0. A structural subtree (net, depth) renders identically on the original
// and reduced circuits exactly when no changed net is within depth levels
// of its root, so cone.Overlay uses this map to decide which subtree keys
// can be reused from the unreduced builder's memo.
//
// The walk is a level-order BFS downstream over fanout edges, bounded to
// maxDist levels; it stops at sequential cells, whose outputs are structural
// leaves regardless of their inputs (and whose values the propagation never
// crosses either).
func (r *Reduction) DirtyDistances(maxDist int) map[netlist.NetID]int {
	dist := make(map[netlist.NetID]int, 2*len(r.vals))
	frontier := make([]netlist.NetID, 0, len(r.vals))
	//anlz:ignore mapdet level-order BFS: dist assigns each net its level, so the returned map is order-independent
	for n := range r.vals {
		dist[n] = 0
		frontier = append(frontier, n)
	}
	var next []netlist.NetID
	for d := 1; d <= maxDist && len(frontier) > 0; d++ {
		next = next[:0]
		for _, n := range frontier {
			for _, g := range r.nl.Net(n).Fanout {
				gate := r.nl.Gate(g)
				if !gate.Kind.IsCombinational() {
					continue
				}
				if _, seen := dist[gate.Output]; seen {
					continue
				}
				dist[gate.Output] = d
				next = append(next, gate.Output)
			}
		}
		frontier, next = next, frontier
	}
	return dist
}

// DirtyDistancesIn is DirtyDistances restricted to a scope (typically the
// union of a subgroup's fanin-cone nets): seeds are the changed nets inside
// scope, and the walk never leaves it. Cost is O(|scope|) regardless of how
// far the reduction propagated — the property that makes per-trial
// incremental re-keying cheaper than re-deriving a subgroup's keys from
// scratch even when an assignment constant-folds a large region.
//
// The restriction is sound for cone.Overlay whenever scope is fanin-closed
// over the keyed subtrees (every net within cone depth of a keyed root is in
// scope): any fanin path from a keyed net to a changed net then lies wholly
// inside scope, so the restricted walk assigns the same distances the global
// walk would.
func (r *Reduction) DirtyDistancesIn(scope map[netlist.NetID]bool, maxDist int) map[netlist.NetID]int {
	dist := make(map[netlist.NetID]int)
	frontier := make([]netlist.NetID, 0, 16)
	//anlz:ignore mapdet level-order BFS: dist assigns each net its level, so the returned map is order-independent
	for n := range scope {
		if r.vals[n].Known() {
			dist[n] = 0
			frontier = append(frontier, n)
		}
	}
	var next []netlist.NetID
	for d := 1; d <= maxDist && len(frontier) > 0; d++ {
		next = next[:0]
		for _, n := range frontier {
			for _, g := range r.nl.Net(n).Fanout {
				gate := r.nl.Gate(g)
				if !gate.Kind.IsCombinational() || !scope[gate.Output] {
					continue
				}
				if _, seen := dist[gate.Output]; seen {
					continue
				}
				dist[gate.Output] = d
				next = append(next, gate.Output)
			}
		}
		frontier, next = next, frontier
	}
	return dist
}

// AssignedCount returns the number of nets with inferred constants.
func (r *Reduction) AssignedCount() int {
	c := 0
	for _, v := range r.vals {
		if v.Known() {
			c++
		}
	}
	return c
}

// RemovedGateCount returns the number of combinational gates whose output
// became constant (and which therefore disappear from the reduced circuit).
func (r *Reduction) RemovedGateCount() int {
	c := 0
	for gi := 0; gi < r.nl.GateCount(); gi++ {
		g := r.nl.Gate(netlist.GateID(gi))
		if g.Kind != logic.DFF && r.vals[g.Output].Known() {
			c++
		}
	}
	return c
}

// --- netlist.View implementation -------------------------------------------

// NetConst implements netlist.View.
func (r *Reduction) NetConst(n netlist.NetID) (logic.Value, bool) {
	v := r.vals[n]
	return v, v.Known()
}

// DriverOf implements netlist.View: constant nets and outputs of removed
// gates have no driver in the reduced circuit.
func (r *Reduction) DriverOf(n netlist.NetID) netlist.GateID {
	if r.vals[n].Known() {
		return netlist.NoGate
	}
	return r.nl.Net(n).Driver
}

// GateKind implements netlist.View, reporting the rewritten kind (e.g. a
// NAND reduced to a single live input reports NOT).
func (r *Reduction) GateKind(g netlist.GateID) logic.Kind {
	if k, ok := r.effKind[g]; ok {
		return k
	}
	k, ins := r.effective(g)
	r.effKind[g] = k
	r.effIns[g] = ins
	return k
}

// GateInputs implements netlist.View, returning only the live input pins of
// the rewritten gate.
func (r *Reduction) GateInputs(g netlist.GateID, buf []netlist.NetID) []netlist.NetID {
	if ins, ok := r.effIns[g]; ok {
		return append(buf, ins...)
	}
	k, ins := r.effective(g)
	r.effKind[g] = k
	r.effIns[g] = ins
	return append(buf, ins...)
}

func (r *Reduction) effective(g netlist.GateID) (logic.Kind, []netlist.NetID) {
	gate := r.nl.Gate(g)
	kind, ins, _, err := TrySimplifyGate(gate.Kind, gate.Inputs, func(n netlist.NetID) logic.Value {
		return r.vals[n]
	})
	if err != nil {
		// View methods cannot fail; a malformed gate (lenient netlist)
		// passes through unrewritten and renders as its original structure.
		return gate.Kind, append([]netlist.NetID(nil), gate.Inputs...)
	}
	return kind, ins
}

var _ netlist.View = (*Reduction)(nil)
