package reduce

import (
	"context"
	"testing"

	"gatewords/internal/eqcheck"
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// buildVerifyNetlist: x = c & a; y = x | b; z = y ^ a.
func buildVerifyNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("verify")
	c, a, b := nl.MustNet("c"), nl.MustNet("a"), nl.MustNet("b")
	for _, n := range []netlist.NetID{c, a, b} {
		nl.MarkPI(n)
	}
	x, y, z := nl.MustNet("x"), nl.MustNet("y"), nl.MustNet("z")
	nl.MustGate("g1", logic.And, x, c, a)
	nl.MustGate("g2", logic.Or, y, x, b)
	nl.MustGate("g3", logic.Xor, z, y, a)
	nl.MarkPO(z)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestVerifyConesProvesReduction(t *testing.T) {
	nl := buildVerifyNetlist(t)
	c := mustID(t, nl, "c")
	red, err := Apply(nl, map[netlist.NetID]logic.Value{c: logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	roots := red.DirtyRoots()
	if len(roots) == 0 {
		t.Fatal("no dirty roots for c=0")
	}
	res := red.VerifyCones(roots, 8, eqcheck.Options{})
	if !res.Sound() || res.Unknown != 0 {
		t.Fatalf("reduction not proved: %+v", res)
	}
	if res.Proved != len(roots) {
		t.Fatalf("proved %d of %d cones", res.Proved, len(roots))
	}
}

// TestVerifyConesBackwardImplication seeds an OUTPUT constant so the inferred
// values flow backward into cone-internal nets; verification must substitute
// them on both sides or it would refute a perfectly sound reduction.
func TestVerifyConesBackwardImplication(t *testing.T) {
	nl := netlist.New("bwd")
	u, v, tt := nl.MustNet("u"), nl.MustNet("v"), nl.MustNet("t")
	for _, n := range []netlist.NetID{u, v, tt} {
		nl.MarkPI(n)
	}
	q, s := nl.MustNet("q"), nl.MustNet("s")
	nl.MustGate("gq", logic.And, q, u, v)
	nl.MustGate("gs", logic.Xor, s, u, tt)
	nl.MarkPO(q)
	nl.MarkPO(s)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	// q=1 backward-implies u=1 and v=1; gs is then rewritten to NOT t.
	red, err := Apply(nl, map[netlist.NetID]logic.Value{q: logic.One})
	if err != nil {
		t.Fatal(err)
	}
	if got := red.Value(u); got != logic.One {
		t.Fatalf("u not backward-implied: %v", got)
	}
	roots := red.DirtyRoots()
	if len(roots) != 1 || roots[0] != s {
		t.Fatalf("dirty roots = %v, want [s]", roots)
	}
	res := red.VerifyCones(roots, 8, eqcheck.Options{})
	if !res.Sound() || res.Proved != 1 {
		t.Fatalf("backward-implied reduction not proved: %+v", res.Checks)
	}
}

// TestVerifyConesRefutesBrokenRewrite corrupts one overlay rewrite and checks
// that verification catches it with a concrete counterexample — the
// acceptance gate for the whole semantic layer.
func TestVerifyConesRefutesBrokenRewrite(t *testing.T) {
	nl := buildVerifyNetlist(t)
	c, b, y := mustID(t, nl, "c"), mustID(t, nl, "b"), mustID(t, nl, "y")
	red, err := Apply(nl, map[netlist.NetID]logic.Value{c: logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	// Legitimate rewrite: g2 (y = x|b with x=0) becomes BUF b. Break it by
	// forcing the overlay to claim NOT b instead.
	g2 := nl.Net(y).Driver
	red.effKind[g2] = logic.Not
	red.effIns[g2] = []netlist.NetID{b}

	res := red.VerifyCones([]netlist.NetID{y}, 8, eqcheck.Options{})
	if res.Refuted != 1 {
		t.Fatalf("broken rewrite not refuted: %+v", res.Checks)
	}
	check := res.Checks[0]
	if check.Cex == nil {
		t.Fatal("refutation carries no counterexample")
	}
	// The counterexample assigns b; under it, b != NOT b trivially, but make
	// sure it names the real frontier variable.
	if _, ok := check.Cex["b"]; !ok {
		t.Fatalf("counterexample %v does not mention b", check.Cex)
	}
	if res.Sound() {
		t.Fatal("Sound() true despite refutation")
	}
}

// TestVerifyConesDepthCut verifies that a depth-limited cut (frontier inside
// the logic) still proves the reduction: both sides are compared over the
// identical frontier variables.
func TestVerifyConesDepthCut(t *testing.T) {
	nl := buildVerifyNetlist(t)
	c, z := mustID(t, nl, "c"), mustID(t, nl, "z")
	red, err := Apply(nl, map[netlist.NetID]logic.Value{c: logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	res := red.VerifyCones([]netlist.NetID{z}, 1, eqcheck.Options{})
	if res.Proved != 1 {
		t.Fatalf("depth-1 cone not proved: %+v", res.Checks)
	}
}

func mustID(t *testing.T, nl *netlist.Netlist, name string) netlist.NetID {
	t.Helper()
	id, ok := nl.NetByName(name)
	if !ok {
		t.Fatalf("no net %q", name)
	}
	return id
}

// TestVerifyConesCancelled pins the deadline contract: with the options'
// context already cancelled, every root is still reported — as
// Unknown/"cancelled" — so a bounded sweep yields a complete, deterministic
// check list rather than a silently truncated one.
func TestVerifyConesCancelled(t *testing.T) {
	nl := buildVerifyNetlist(t)
	c := mustID(t, nl, "c")
	red, err := Apply(nl, map[netlist.NetID]logic.Value{c: logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	roots := red.DirtyRoots()
	if len(roots) == 0 {
		t.Fatal("no dirty roots for c=0")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := red.VerifyCones(roots, 8, eqcheck.Options{Context: ctx})
	if len(res.Checks) != len(roots) {
		t.Fatalf("got %d checks for %d roots", len(res.Checks), len(roots))
	}
	if res.Unknown != len(roots) || res.Proved != 0 || res.Refuted != 0 {
		t.Fatalf("cancelled sweep counts = %+v, want all Unknown", res)
	}
	for _, chk := range res.Checks {
		if chk.Verdict != eqcheck.Unknown || chk.Stage != "cancelled" {
			t.Errorf("root %s: verdict %v stage %q, want Unknown/cancelled", chk.Name, chk.Verdict, chk.Stage)
		}
	}
	// An un-cancelled context changes nothing.
	live := red.VerifyCones(roots, 8, eqcheck.Options{Context: context.Background()})
	if !live.Sound() || live.Unknown != 0 {
		t.Fatalf("live context sweep not proved: %+v", live)
	}
}
