package reduce

import (
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// TestSimplifyGateExhaustiveSoundness proves SimplifyGate's rewrite contract
// by brute force: for every combinational kind, every valid arity up to
// four, and every {0,1,X} vector of per-net constant knowledge, the rewritten
// gate must agree with the original under every boolean completion of the
// unknown nets.
//
// Three contract clauses are checked per case:
//   - a returned known constant equals logic.Eval of the original gate on
//     every completion;
//   - otherwise, evaluating the effective (kind, inputs) on the completion
//     equals the original gate's output, and that output is never forced by
//     the constants alone (else the constant clause should have fired);
//   - the effective inputs reference only original input nets, and none of
//     them is a net the constants already know — except for a surviving
//     MUX2, which by documented contract keeps all three pins when only a
//     data pin is known (an overlay cannot synthesize the inverters the
//     AND/OR residue would need).
func TestSimplifyGateExhaustiveSoundness(t *testing.T) {
	kinds := []logic.Kind{
		logic.Buf, logic.Not, logic.And, logic.Or, logic.Nand, logic.Nor,
		logic.Xor, logic.Xnor, logic.Mux2, logic.Aoi21, logic.Oai21,
	}
	domain := []logic.Value{logic.Zero, logic.One, logic.X}
	cases := 0
	for _, k := range kinds {
		for n := 1; n <= 4; n++ {
			if !k.ValidArity(n) {
				continue
			}
			// Net i+1 is pin i (0 is reserved; distinct nets per pin).
			ins := make([]netlist.NetID, n)
			for i := range ins {
				ins[i] = netlist.NetID(i + 1)
			}
			vals := make([]logic.Value, n)
			var walk func(i int)
			walk = func(i int) {
				if i == n {
					cases++
					checkSimplify(t, k, ins, vals)
					return
				}
				for _, v := range domain {
					vals[i] = v
					walk(i + 1)
				}
			}
			walk(0)
		}
	}
	if cases == 0 {
		t.Fatal("no cases enumerated")
	}
	t.Logf("%d (kind, arity, constant-vector) cases verified", cases)
}

func checkSimplify(t *testing.T, k logic.Kind, ins []netlist.NetID, vals []logic.Value) {
	t.Helper()
	known := make(map[netlist.NetID]logic.Value)
	for i, id := range ins {
		if vals[i].Known() {
			known[id] = vals[i]
		}
	}
	val := func(id netlist.NetID) logic.Value {
		if v, ok := known[id]; ok {
			return v
		}
		return logic.X
	}
	kk, effIns, constOut := SimplifyGate(k, ins, val)

	if constOut.Known() && len(effIns) != 0 {
		t.Fatalf("%v %v: constant %v with surviving pins %v", k, vals, constOut, effIns)
	}
	inSet := make(map[netlist.NetID]bool, len(ins))
	for _, id := range ins {
		inSet[id] = true
	}
	for _, id := range effIns {
		if !inSet[id] {
			t.Fatalf("%v %v: effective input %d is not an original pin", k, vals, id)
		}
		if _, ok := known[id]; ok && kk != logic.Mux2 {
			t.Fatalf("%v %v: effective inputs %v retain known net %d", k, vals, effIns, id)
		}
	}

	// Enumerate every completion of the unknown nets.
	var free []netlist.NetID
	for _, id := range ins {
		if _, ok := known[id]; !ok {
			free = append(free, id)
		}
	}
	for mask := 0; mask < 1<<len(free); mask++ {
		assign := make(map[netlist.NetID]logic.Value, len(known)+len(free))
		for id, v := range known {
			assign[id] = v
		}
		for j, id := range free {
			if mask>>j&1 == 1 {
				assign[id] = logic.One
			} else {
				assign[id] = logic.Zero
			}
		}
		full := make([]logic.Value, len(ins))
		for i, id := range ins {
			full[i] = assign[id]
		}
		want := logic.Eval(k, full)
		if constOut.Known() {
			if want != constOut {
				t.Fatalf("%v %v: simplified to constant %v but completion %v evaluates to %v",
					k, vals, constOut, full, want)
			}
			continue
		}
		effVals := make([]logic.Value, len(effIns))
		for i, id := range effIns {
			effVals[i] = assign[id]
		}
		got := logic.Eval(kk, effVals)
		if got != want {
			t.Fatalf("%v %v -> %v over %v: completion %v gives %v, original gives %v",
				k, vals, kk, effIns, full, got, want)
		}
	}
}

// TestSimplifyGateDFFUntouched: sequential gates pass through unchanged —
// reduction rewrites are strictly combinational.
func TestSimplifyGateDFFUntouched(t *testing.T) {
	val := func(netlist.NetID) logic.Value { return logic.One }
	kk, ins, out := SimplifyGate(logic.DFF, []netlist.NetID{7}, val)
	if kk != logic.DFF || len(ins) != 1 || ins[0] != 7 || out.Known() {
		t.Fatalf("DFF rewritten: kind=%v ins=%v out=%v", kk, ins, out)
	}
}
