package reduce

import (
	"fmt"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// TrySimplifyGate is the non-panicking form of SimplifyGate for leniently
// parsed netlists: a combinational gate whose pin count is invalid for its
// kind — which logic.Eval inside SimplifyGate would panic on — is reported
// as an ErrMalformedGate error instead. The rewrite cascade only ever
// constructs valid arities, so the upfront check covers the recursion.
func TrySimplifyGate(k logic.Kind, ins []netlist.NetID, val func(netlist.NetID) logic.Value) (logic.Kind, []netlist.NetID, logic.Value, error) {
	if k != logic.DFF && !k.ValidArity(len(ins)) {
		return k, nil, logic.X, fmt.Errorf("%w: %s gate with %d inputs", ErrMalformedGate, k, len(ins))
	}
	kk, eff, out := SimplifyGate(k, ins, val)
	return kk, eff, out, nil
}

// SimplifyGate computes the rewritten form of one gate given per-net
// constant knowledge. It returns the effective kind, the effective input
// pins, and — when the known inputs determine the output — the constant
// output value (logic.X otherwise, in which case the kind/pins describe the
// surviving gate).
//
// Rewrites follow §2.5: known non-controlling inputs of AND/OR/NAND/NOR are
// dropped; a gate left with a single input becomes a buffer or inverter;
// known inputs of parity gates flip XOR<->XNOR; a mux with a known select
// becomes a buffer; AOI21/OAI21 decay into their NAND/NOR/NOT residues. A
// MUX2 with an unknown select and exactly one known data pin keeps all three
// pins (the constant pin renders as a leaf in structural keys); rewriting it
// to AND/OR residues would require synthesizing new inverters, which an
// overlay cannot do.
func SimplifyGate(k logic.Kind, ins []netlist.NetID, val func(netlist.NetID) logic.Value) (logic.Kind, []netlist.NetID, logic.Value) {
	if k == logic.DFF {
		return logic.DFF, append([]netlist.NetID(nil), ins...), logic.X
	}
	vals := make([]logic.Value, len(ins))
	anyKnown := false
	for i, id := range ins {
		vals[i] = val(id)
		if vals[i].Known() {
			anyKnown = true
		}
	}
	out := logic.Eval(k, vals)
	if out.Known() {
		return k, nil, out
	}
	if !anyKnown {
		return k, append([]netlist.NetID(nil), ins...), logic.X
	}

	switch k {
	case logic.Buf, logic.Not:
		// Input unknown (otherwise the output would be known).
		return k, append([]netlist.NetID(nil), ins...), logic.X

	case logic.And, logic.Or, logic.Nand, logic.Nor:
		live := liveInputs(ins, vals)
		if len(live) == 1 {
			switch k {
			case logic.And, logic.Or:
				return logic.Buf, live, logic.X
			default:
				return logic.Not, live, logic.X
			}
		}
		return k, live, logic.X

	case logic.Xor, logic.Xnor:
		live := liveInputs(ins, vals)
		kk := k
		for _, v := range vals {
			if v == logic.One {
				if kk == logic.Xor {
					kk = logic.Xnor
				} else {
					kk = logic.Xor
				}
			}
		}
		if len(live) == 1 {
			if kk == logic.Xor {
				return logic.Buf, live, logic.X
			}
			return logic.Not, live, logic.X
		}
		return kk, live, logic.X

	case logic.Mux2:
		sel, a, b := ins[0], ins[1], ins[2]
		vs, va, vb := vals[0], vals[1], vals[2]
		switch vs {
		case logic.Zero:
			return resimplify(logic.Buf, []netlist.NetID{a}, val)
		case logic.One:
			return resimplify(logic.Buf, []netlist.NetID{b}, val)
		}
		if va.Known() && vb.Known() {
			// va != vb, otherwise the output would be known.
			if va == logic.Zero {
				return logic.Buf, []netlist.NetID{sel}, logic.X
			}
			return logic.Not, []netlist.NetID{sel}, logic.X
		}
		return logic.Mux2, append([]netlist.NetID(nil), ins...), logic.X

	case logic.Aoi21: // !((a&b) | c)
		a, b, c := ins[0], ins[1], ins[2]
		va, vb, vc := vals[0], vals[1], vals[2]
		switch {
		case vc == logic.Zero:
			return resimplify(logic.Nand, []netlist.NetID{a, b}, val)
		case va == logic.One:
			return resimplify(logic.Nor, []netlist.NetID{b, c}, val)
		case vb == logic.One:
			return resimplify(logic.Nor, []netlist.NetID{a, c}, val)
		case va == logic.Zero || vb == logic.Zero:
			return resimplify(logic.Not, []netlist.NetID{c}, val)
		}
		return logic.Aoi21, append([]netlist.NetID(nil), ins...), logic.X

	case logic.Oai21: // !((a|b) & c)
		a, b, c := ins[0], ins[1], ins[2]
		va, vb, vc := vals[0], vals[1], vals[2]
		switch {
		case vc == logic.One:
			return resimplify(logic.Nor, []netlist.NetID{a, b}, val)
		case va == logic.Zero:
			return resimplify(logic.Nand, []netlist.NetID{b, c}, val)
		case vb == logic.Zero:
			return resimplify(logic.Nand, []netlist.NetID{a, c}, val)
		case va == logic.One || vb == logic.One:
			return resimplify(logic.Not, []netlist.NetID{c}, val)
		}
		return logic.Oai21, append([]netlist.NetID(nil), ins...), logic.X
	}
	return k, append([]netlist.NetID(nil), ins...), logic.X
}

// resimplify re-runs SimplifyGate on a rewritten gate so cascaded knowledge
// (e.g. AOI21 with c=0 and a=1) fully collapses.
func resimplify(k logic.Kind, ins []netlist.NetID, val func(netlist.NetID) logic.Value) (logic.Kind, []netlist.NetID, logic.Value) {
	return SimplifyGate(k, ins, val)
}

func liveInputs(ins []netlist.NetID, vals []logic.Value) []netlist.NetID {
	live := make([]netlist.NetID, 0, len(ins))
	for i, id := range ins {
		if !vals[i].Known() {
			live = append(live, id)
		}
	}
	return live
}
