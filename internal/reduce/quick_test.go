package reduce

import (
	"math/rand"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// TestApplyIdempotent: re-applying the values a reduction inferred yields
// the same reduction (propagation reaches a fixpoint).
func TestApplyIdempotent(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nl := randomComb(rng)
		pi := nl.PIs()[rng.Intn(4)]
		r1, err := Apply(nl, map[netlist.NetID]logic.Value{pi: logic.One})
		if err != nil {
			continue
		}
		// Feed every inferred value back in as the assignment.
		full := map[netlist.NetID]logic.Value{}
		for id := 0; id < nl.NetCount(); id++ {
			if v := r1.Value(netlist.NetID(id)); v.Known() {
				full[netlist.NetID(id)] = v
			}
		}
		r2, err := Apply(nl, full)
		if err != nil {
			t.Fatalf("seed %d: fixpoint re-application conflicts: %v", seed, err)
		}
		for id := 0; id < nl.NetCount(); id++ {
			if r1.Value(netlist.NetID(id)) != r2.Value(netlist.NetID(id)) {
				t.Fatalf("seed %d: not a fixpoint at %s", seed, nl.NetName(netlist.NetID(id)))
			}
		}
	}
}

// TestApplyMonotone: adding a second compatible assignment never loses
// inferred values.
func TestApplyMonotone(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nl := randomComb(rng)
		pis := nl.PIs()
		a, b := pis[0], pis[1]
		r1, err := Apply(nl, map[netlist.NetID]logic.Value{a: logic.One})
		if err != nil {
			continue
		}
		r2, err := Apply(nl, map[netlist.NetID]logic.Value{a: logic.One, b: logic.Zero})
		if err != nil {
			continue // the extra pin may genuinely conflict
		}
		for id := 0; id < nl.NetCount(); id++ {
			v1 := r1.Value(netlist.NetID(id))
			if v1.Known() && r2.Value(netlist.NetID(id)) != v1 {
				t.Fatalf("seed %d: value lost or flipped at %s", seed, nl.NetName(netlist.NetID(id)))
			}
		}
	}
}
