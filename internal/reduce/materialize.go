package reduce

import (
	"fmt"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// Materialized is a real, stand-alone simplified netlist built from a
// Reduction overlay. It is what gets handed to other reverse-engineering
// tools (the integration path of §2.1) or written back out as Verilog.
type Materialized struct {
	NL *netlist.Netlist
	// Const0 and Const1 are tie-off nets (marked as primary inputs) created
	// on demand for constant pins that survive structurally, such as the
	// known data pin of a mux with an unknown select. NoNet when unused.
	Const0 netlist.NetID
	Const1 netlist.NetID
	// NetMap maps original net IDs to their IDs in NL (absent if removed).
	NetMap map[netlist.NetID]netlist.NetID
}

// Materialize builds the simplified netlist described by the overlay:
// constant nets and dead gates are gone, surviving gates appear in original
// file order with their rewritten kinds and live pins.
func Materialize(r *Reduction) (*Materialized, error) {
	src := r.nl
	m := &Materialized{
		NL:     netlist.New(src.Name + "_reduced"),
		Const0: netlist.NoNet,
		Const1: netlist.NoNet,
		NetMap: make(map[netlist.NetID]netlist.NetID),
	}
	// Nets first, preserving ID order so gate emission can look them up.
	for ni := 0; ni < src.NetCount(); ni++ {
		id := netlist.NetID(ni)
		if r.vals[id].Known() {
			continue
		}
		n := src.Net(id)
		nid, err := m.NL.AddNet(n.Name)
		if err != nil {
			return nil, err
		}
		if n.IsPI {
			m.NL.MarkPI(nid)
		}
		if n.IsPO {
			m.NL.MarkPO(nid)
		}
		m.NetMap[id] = nid
	}
	tie := func(v logic.Value) netlist.NetID {
		switch v {
		case logic.Zero:
			if m.Const0 == netlist.NoNet {
				m.Const0 = m.NL.MustNet("$const0")
				m.NL.MarkPI(m.Const0)
			}
			return m.Const0
		default:
			if m.Const1 == netlist.NoNet {
				m.Const1 = m.NL.MustNet("$const1")
				m.NL.MarkPI(m.Const1)
			}
			return m.Const1
		}
	}
	for gi := 0; gi < src.GateCount(); gi++ {
		id := netlist.GateID(gi)
		g := src.Gate(id)
		if g.Kind != logic.DFF && r.vals[g.Output].Known() {
			continue // dead gate
		}
		kind, pins, constOut, err := TrySimplifyGate(g.Kind, g.Inputs, func(n netlist.NetID) logic.Value {
			return r.vals[n]
		})
		if err != nil {
			return nil, fmt.Errorf("reduce: materializing gate %q: %w", g.Name, err)
		}
		if constOut.Known() {
			continue // defensive; covered by the vals check above
		}
		newPins := make([]netlist.NetID, len(pins))
		for i, p := range pins {
			if v := r.vals[p]; v.Known() {
				newPins[i] = tie(v)
				continue
			}
			mapped, ok := m.NetMap[p]
			if !ok {
				return nil, fmt.Errorf("reduce: live pin %q of gate %q lost during materialization", src.NetName(p), g.Name)
			}
			newPins[i] = mapped
		}
		out, ok := m.NetMap[g.Output]
		if !ok {
			return nil, fmt.Errorf("reduce: live output %q of gate %q lost during materialization", src.NetName(g.Output), g.Name)
		}
		if _, err := m.NL.AddGate(g.Name, kind, out, newPins...); err != nil {
			return nil, err
		}
	}
	if err := m.NL.Validate(); err != nil {
		return nil, fmt.Errorf("reduce: materialized netlist invalid: %w", err)
	}
	return m, nil
}
