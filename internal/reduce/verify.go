package reduce

// verify.go proves reductions sound: every cone the overlay rewrites is
// checked equivalent to the original cone under the inferred constants, using
// the AIG + SAT equivalence checker. This is the semantic backstop for
// SimplifyGate — an unsound rewrite rule would silently corrupt every
// downstream word match, and here it is caught with a concrete
// counterexample instead.

import (
	"gatewords/internal/aig"
	"gatewords/internal/eqcheck"
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// constView exposes the ORIGINAL gate structure under the reduction's
// inferred constants: DriverOf/GateKind/GateInputs come from the base
// netlist, NetConst from the reduction. Mitering it against the Reduction
// overlay (rewritten structure, same constants) isolates exactly what
// verification must prove — that the structural rewrites preserve the cone
// function given the constant environment. The constants themselves must be
// substituted on both sides: backward implication infers values for nets
// inside and on the frontier of cones, and the rewritten side already assumed
// them.
type constView struct {
	nl *netlist.Netlist
	r  *Reduction
}

func (v constView) DriverOf(n netlist.NetID) netlist.GateID {
	if v.r.vals[n].Known() {
		return netlist.NoGate
	}
	return v.nl.Net(n).Driver
}

func (v constView) GateKind(g netlist.GateID) logic.Kind { return v.nl.Gate(g).Kind }

func (v constView) GateInputs(g netlist.GateID, buf []netlist.NetID) []netlist.NetID {
	return append(buf, v.nl.Gate(g).Inputs...)
}

func (v constView) NetConst(n netlist.NetID) (logic.Value, bool) { return v.r.NetConst(n) }

var _ netlist.View = constView{}

// ConeCheck is the verification outcome for one cone root.
type ConeCheck struct {
	Root netlist.NetID
	Name string // net name of the root
	eqcheck.Result
}

// VerifyResult aggregates the per-cone outcomes of VerifyCones.
type VerifyResult struct {
	Checks  []ConeCheck
	Proved  int // cones proved equivalent
	Refuted int // cones with a counterexample — a soundness bug
	Unknown int // cones the budget could not decide
}

// Sound reports whether no cone was refuted (Unknown cones do not count
// against soundness; they are reported, not proved).
func (r *VerifyResult) Sound() bool { return r.Refuted == 0 }

// VerifyCones proves, for each root, that the depth-limited fanin cone under
// the reduction overlay (rewritten gates, dropped pins) computes the same
// function as the original cone under the same inferred constants.
//
// Both sides are lowered into one shared AIG over the cut computed on the
// original-structure side. That cut is valid for the overlay too: SimplifyGate
// only ever drops pins or re-tags kinds, so every net the rewritten cone
// references is reachable in the original cone, and the shared frontier
// variables line up by construction. A root whose value the reduction
// inferred constant is checked as the constant against the original cone.
func (r *Reduction) VerifyCones(roots []netlist.NetID, depth int, opt eqcheck.Options) *VerifyResult {
	g := aig.New()
	cl := aig.NewConeLowerer(g, r.nl.NetName)
	orig := constView{nl: r.nl, r: r}
	// One warm solver serves every root: rewritten cones overlap heavily with
	// their originals (and with each other through shared logic), so the CDCL
	// engine encodes the shared structure once and carries learned clauses and
	// branching activities from cone to cone, asserting each miter as an
	// assumption instead of rebuilding CNF per root.
	solver := eqcheck.NewSolver(g, opt)
	res := &VerifyResult{}
	for _, root := range roots {
		check := ConeCheck{Root: root, Name: r.nl.NetName(root)}
		if opt.Cancelled() {
			// Deadline-bounded sweeps stay a strict prefix: every root past
			// the cancellation point is reported Unknown/"cancelled", never
			// silently dropped.
			check.Result = eqcheck.CancelledResult()
			res.Unknown++
			res.Checks = append(res.Checks, check)
			continue
		}
		internal := aig.ConeInternal(orig, root, depth)
		la, errA := cl.LowerCut(orig, root, internal)
		lb, errB := cl.LowerCut(r, root, internal)
		if errA != nil || errB != nil {
			// Lowering failure (cycle, bad gate): report Unknown rather than
			// abort the whole verification sweep.
			check.Result = eqcheck.Result{Verdict: eqcheck.Unknown, Stage: "lower"}
		} else {
			check.Result = solver.CheckLits(la, lb)
		}
		switch check.Result.Verdict {
		case eqcheck.Equivalent:
			res.Proved++
		case eqcheck.NotEquivalent:
			res.Refuted++
		default:
			res.Unknown++
		}
		res.Checks = append(res.Checks, check)
	}
	return res
}

// DirtyRoots returns deterministic verification roots for this reduction: the
// output nets of every gate the overlay rewrites — gates with at least one
// constant-valued input whose output stayed live. These are exactly the
// places SimplifyGate's rewrite rules fire, so proving these cones proves the
// overlay sound. Roots are returned in net-ID order.
func (r *Reduction) DirtyRoots() []netlist.NetID {
	var roots []netlist.NetID
	for gi := 0; gi < r.nl.GateCount(); gi++ {
		g := netlist.GateID(gi)
		gate := r.nl.Gate(g)
		if gate.Kind == logic.DFF || r.vals[gate.Output].Known() {
			continue
		}
		touched := false
		for _, in := range gate.Inputs {
			if r.vals[in].Known() {
				touched = true
				break
			}
		}
		if touched {
			roots = append(roots, gate.Output)
		}
	}
	return roots
}
