package sim

import (
	"math/rand"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/reduce"
)

// counter builds a 3-bit incrementer: q <= q + 1.
func counter(t *testing.T) (*netlist.Netlist, []netlist.NetID) {
	t.Helper()
	nl := netlist.New("ctr")
	q := make([]netlist.NetID, 3)
	d := make([]netlist.NetID, 3)
	for i := range q {
		q[i] = nl.MustNet("q" + string(rune('0'+i)))
	}
	c1 := nl.MustNet("c1")
	c2 := nl.MustNet("c2")
	d[0] = nl.MustNet("d0")
	d[1] = nl.MustNet("d1")
	d[2] = nl.MustNet("d2")
	nl.MustGate("g0", logic.Not, d[0], q[0])
	nl.MustGate("gc1", logic.Buf, c1, q[0])
	nl.MustGate("g1", logic.Xor, d[1], q[1], c1)
	nl.MustGate("gc2", logic.And, c2, q[1], c1)
	nl.MustGate("g2", logic.Xor, d[2], q[2], c2)
	for i := range q {
		nl.MustGate("ff"+string(rune('0'+i)), logic.DFF, q[i], d[i])
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl, q
}

func TestSequentialCounter(t *testing.T) {
	nl, q := counter(t)
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	if s.StateCount() != 3 {
		t.Fatalf("states %d", s.StateCount())
	}
	for i := 0; i < 3; i++ {
		s.SetState(i, logic.Zero)
	}
	s.Settle()
	for step := 1; step <= 10; step++ {
		s.Step()
		want := step % 8
		got := 0
		for i := 0; i < 3; i++ {
			if s.Value(q[i]) == logic.One {
				got |= 1 << i
			} else if s.Value(q[i]) != logic.Zero {
				t.Fatalf("step %d: bit %d is X", step, i)
			}
		}
		if got != want {
			t.Fatalf("step %d: counter = %d, want %d", step, got, want)
		}
	}
}

func TestXPropagation(t *testing.T) {
	nl := netlist.New("t")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	nl.MarkPI(a)
	nl.MarkPI(b)
	y := nl.MustNet("y")
	nl.MustGate("g", logic.And, y, a, b)
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	s.Settle()
	if s.Value(y) != logic.X {
		t.Errorf("unknown inputs: y = %s", s.Value(y))
	}
	if err := s.SetInput(a, logic.Zero); err != nil {
		t.Fatal(err)
	}
	s.Settle()
	if s.Value(y) != logic.Zero {
		t.Errorf("controlling 0: y = %s", s.Value(y))
	}
}

func TestSetInputRejectsNonPI(t *testing.T) {
	nl := netlist.New("t")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	y := nl.MustNet("y")
	nl.MustGate("g", logic.Not, y, a)
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetInput(y, logic.One); err == nil {
		t.Error("driving an internal net accepted")
	}
}

func TestNewRejectsCycles(t *testing.T) {
	nl := netlist.New("t")
	x := nl.MustNet("x")
	y := nl.MustNet("y")
	nl.MustGate("g1", logic.Not, y, x)
	nl.MustGate("g2", logic.Not, x, y)
	if _, err := New(nl); err == nil {
		t.Error("combinational cycle accepted")
	}
}

func TestReset(t *testing.T) {
	nl, q := counter(t)
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.SetState(i, logic.One)
	}
	s.Settle()
	s.Reset()
	s.Settle()
	if s.Value(q[0]) != logic.X {
		t.Error("Reset must restore X")
	}
}

// TestSimMatchesEval cross-checks the simulator against direct topological
// evaluation on random circuits and vectors.
func TestSimMatchesEval(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nl := randomComb(rng)
		s, err := New(nl)
		if err != nil {
			t.Fatal(err)
		}
		order, err := nl.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		for vec := 0; vec < 8; vec++ {
			want := make([]logic.Value, nl.NetCount())
			for _, pi := range nl.PIs() {
				v := logic.FromBool(rng.Intn(2) == 1)
				want[pi] = v
				if err := s.SetInput(pi, v); err != nil {
					t.Fatal(err)
				}
			}
			for _, gid := range order {
				g := nl.Gate(gid)
				in := make([]logic.Value, len(g.Inputs))
				for i, id := range g.Inputs {
					in[i] = want[id]
				}
				want[g.Output] = logic.Eval(g.Kind, in)
			}
			s.Settle()
			for id := 0; id < nl.NetCount(); id++ {
				if got := s.Value(netlist.NetID(id)); got != want[id] {
					t.Fatalf("seed %d vec %d: net %s = %s, want %s",
						seed, vec, nl.NetName(netlist.NetID(id)), got, want[id])
				}
			}
		}
	}
}

func randomComb(rng *rand.Rand) *netlist.Netlist {
	nl := netlist.New("rnd")
	var nets []netlist.NetID
	for i := 0; i < 4; i++ {
		id := nl.MustNet("pi" + string(rune('0'+i)))
		nl.MarkPI(id)
		nets = append(nets, id)
	}
	kinds := logic.CombinationalKinds()
	for i := 0; i < 15; i++ {
		k := kinds[rng.Intn(len(kinds))]
		arity := 2
		if n, fixed := k.FixedArity(); fixed {
			arity = n
		}
		ins := make([]netlist.NetID, arity)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		out := nl.MustNet("n" + string(rune('a'+i)))
		nl.MustGate("g"+string(rune('a'+i)), k, out, ins...)
		nets = append(nets, out)
	}
	nl.MarkPO(nets[len(nets)-1])
	return nl
}

// TestCompareDetectsMismatch wires Compare against a deliberately broken
// candidate.
func TestCompareDetectsMismatch(t *testing.T) {
	mk := func(kind logic.Kind) *netlist.Netlist {
		nl := netlist.New("m")
		a := nl.MustNet("a")
		b := nl.MustNet("b")
		nl.MarkPI(a)
		nl.MarkPI(b)
		y := nl.MustNet("y")
		nl.MarkPO(y)
		nl.MustGate("g", kind, y, a, b)
		return nl
	}
	if err := Compare(mk(logic.And), mk(logic.And), nil, nil, 16, 1); err != nil {
		t.Errorf("identical designs mismatch: %v", err)
	}
	err := Compare(mk(logic.And), mk(logic.Or), nil, nil, 64, 1)
	if err == nil {
		t.Fatal("AND vs OR not detected")
	}
	if _, ok := err.(*Mismatch); !ok {
		t.Errorf("error type %T", err)
	}
}

// TestCompareReductionEquivalence: materialized reductions must be
// functionally equivalent to the original with the assignment pinned — the
// §2.5 guarantee that simplification preserves the surviving logic.
func TestCompareReductionEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nl := randomComb(rng)
		pis := nl.PIs()
		pin := pis[rng.Intn(len(pis))]
		val := logic.FromBool(rng.Intn(2) == 1)
		red, err := reduce.Apply(nl, map[netlist.NetID]logic.Value{pin: val})
		if err != nil {
			continue // conflicting pin: nothing to compare
		}
		m, err := reduce.Materialize(red)
		if err != nil {
			t.Fatalf("seed %d: materialize: %v", seed, err)
		}
		pinned := map[string]logic.Value{nl.NetName(pin): val}
		if m.Const0 != netlist.NoNet {
			pinned["$const0"] = logic.Zero
		}
		if m.Const1 != netlist.NoNet {
			pinned["$const1"] = logic.One
		}
		// Observe every surviving net, not just the POs.
		var observe []string
		for id := 0; id < nl.NetCount(); id++ {
			name := nl.NetName(netlist.NetID(id))
			if _, ok := m.NL.NetByName(name); ok {
				observe = append(observe, name)
			}
		}
		if err := Compare(nl, m.NL, pinned, observe, 32, seed); err != nil {
			t.Fatalf("seed %d: reduced circuit diverges: %v", seed, err)
		}
	}
}
