package sim

import (
	"fmt"
	"math/rand"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// Mismatch describes one counterexample found by Compare.
type Mismatch struct {
	Net    string
	Want   logic.Value
	Got    logic.Value
	Vector map[string]logic.Value
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("sim: net %q: reference %s, candidate %s", m.Net, m.Want, m.Got)
}

// Compare simulates two netlists on random input vectors and checks that
// every observed net name they share agrees whenever the reference value is
// known (0/1). pinned forces named inputs of BOTH designs to fixed values —
// this is how reduction equivalence is checked: the reference design runs
// with the control assignment pinned, the reduced design has those nets
// gone, and the surviving shared observables must match. observe lists the
// net names to compare; when empty, the shared primary outputs are used.
//
// Inputs absent from a design are skipped there; the candidate may have
// extra inputs (e.g. $const0/$const1 ties), which the caller pins. Compare
// is purely combinational: vectors are applied and settled, flip-flops stay
// at X unless driven through pinned state.
func Compare(ref, cand *netlist.Netlist, pinned map[string]logic.Value, observe []string, vectors int, seed int64) error {
	sref, err := New(ref)
	if err != nil {
		return fmt.Errorf("sim: reference: %w", err)
	}
	scand, err := New(cand)
	if err != nil {
		return fmt.Errorf("sim: candidate: %w", err)
	}
	if len(observe) == 0 {
		for _, po := range ref.POs() {
			name := ref.NetName(po)
			if _, ok := cand.NetByName(name); ok {
				observe = append(observe, name)
			}
		}
	}
	if len(observe) == 0 {
		return fmt.Errorf("sim: no shared observable nets")
	}

	// Free inputs: reference PIs not pinned.
	var free []string
	for _, pi := range ref.PIs() {
		name := ref.NetName(pi)
		if _, isPinned := pinned[name]; !isPinned {
			free = append(free, name)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	apply := func(s *Simulator, nl *netlist.Netlist, name string, v logic.Value) {
		if id, ok := nl.NetByName(name); ok && nl.Net(id).IsPI {
			// Errors cannot occur: the net is a PI by construction.
			_ = s.SetInput(id, v)
		}
	}
	for vec := 0; vec < vectors; vec++ {
		vector := make(map[string]logic.Value, len(free)+len(pinned))
		for name, v := range pinned {
			vector[name] = v
			apply(sref, ref, name, v)
			apply(scand, cand, name, v)
		}
		for _, name := range free {
			v := logic.FromBool(rng.Intn(2) == 1)
			vector[name] = v
			apply(sref, ref, name, v)
			apply(scand, cand, name, v)
		}
		sref.Settle()
		scand.Settle()
		for _, name := range observe {
			rid, ok := ref.NetByName(name)
			if !ok {
				continue
			}
			want := sref.Value(rid)
			if !want.Known() {
				continue
			}
			cid, ok := cand.NetByName(name)
			if !ok {
				return &Mismatch{Net: name, Want: want, Got: logic.X, Vector: vector}
			}
			got := scand.Value(cid)
			if got != want {
				return &Mismatch{Net: name, Want: want, Got: got, Vector: vector}
			}
		}
	}
	return nil
}
