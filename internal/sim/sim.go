// Package sim is a levelized event-driven three-valued logic simulator for
// the gatewords netlist model. It exists to validate the structural
// machinery: circuit reduction must preserve the function of the surviving
// logic under the chosen control-signal assignment, and the synthetic
// benchmark generator's netlists must implement their RTL intent. It is
// also a realistic substrate in its own right (X-pessimistic evaluation,
// sequential stepping).
package sim

import (
	"fmt"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// Simulator evaluates one netlist. Create with New, drive primary inputs
// with SetInput, call Settle to propagate, Step to clock the flip-flops.
type Simulator struct {
	nl    *netlist.Netlist
	vals  []logic.Value
	level []int32 // per-gate topological level (DFFs level 0, unused)
	dirty []bool  // per-gate pending re-evaluation
	queue buckets
	dffs  []netlist.GateID
	state []logic.Value // per-DFF stored value, parallel to dffs
	inbuf []logic.Value
}

// New builds a simulator; it fails if the combinational logic is cyclic.
func New(nl *netlist.Netlist) (*Simulator, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		nl:    nl,
		vals:  make([]logic.Value, nl.NetCount()),
		level: make([]int32, nl.GateCount()),
		dirty: make([]bool, nl.GateCount()),
		dffs:  nl.DFFs(),
	}
	s.state = make([]logic.Value, len(s.dffs))
	maxLevel := int32(0)
	for _, g := range order {
		lvl := int32(0)
		for _, in := range nl.Gate(g).Inputs {
			d := nl.Net(in).Driver
			if d != netlist.NoGate && nl.Gate(d).Kind != logic.DFF {
				if s.level[d]+1 > lvl {
					lvl = s.level[d] + 1
				}
			}
		}
		s.level[g] = lvl
		if lvl > maxLevel {
			maxLevel = lvl
		}
	}
	s.queue.init(int(maxLevel) + 1)
	s.Reset()
	return s, nil
}

// Reset sets every net and every flip-flop to X and schedules a full
// evaluation.
func (s *Simulator) Reset() {
	for i := range s.vals {
		s.vals[i] = logic.X
	}
	for i := range s.state {
		s.state[i] = logic.X
	}
	for gi := 0; gi < s.nl.GateCount(); gi++ {
		g := netlist.GateID(gi)
		if s.nl.Gate(g).Kind != logic.DFF {
			s.schedule(g)
		}
	}
}

// SetInput drives a primary input net. It returns an error for nets that
// are not primary inputs.
func (s *Simulator) SetInput(n netlist.NetID, v logic.Value) error {
	net := s.nl.Net(n)
	if !net.IsPI {
		return fmt.Errorf("sim: net %q is not a primary input", net.Name)
	}
	s.setNet(n, v)
	return nil
}

// SetState forces the stored value of the i'th flip-flop (in file order).
func (s *Simulator) SetState(i int, v logic.Value) {
	s.state[i] = v
	g := s.nl.Gate(s.dffs[i])
	s.setNet(g.Output, v)
}

// StateCount returns the number of flip-flops.
func (s *Simulator) StateCount() int { return len(s.dffs) }

// Value returns the current value of a net.
func (s *Simulator) Value(n netlist.NetID) logic.Value { return s.vals[n] }

// Settle propagates pending changes through the combinational logic.
func (s *Simulator) Settle() {
	for {
		g, ok := s.queue.pop()
		if !ok {
			return
		}
		s.dirty[g] = false
		gate := s.nl.Gate(g)
		s.inbuf = s.inbuf[:0]
		for _, in := range gate.Inputs {
			s.inbuf = append(s.inbuf, s.vals[in])
		}
		s.setNetFromGate(gate.Output, logic.Eval(gate.Kind, s.inbuf))
	}
}

// Step latches every flip-flop's D input into its state (after settling the
// combinational logic), then propagates the new outputs: one clock edge.
func (s *Simulator) Step() {
	s.Settle()
	next := make([]logic.Value, len(s.dffs))
	for i, g := range s.dffs {
		next[i] = s.vals[s.nl.Gate(g).Inputs[0]]
	}
	for i, g := range s.dffs {
		s.state[i] = next[i]
		s.setNet(s.nl.Gate(g).Output, next[i])
	}
	s.Settle()
}

func (s *Simulator) setNet(n netlist.NetID, v logic.Value) {
	if s.vals[n] == v {
		return
	}
	s.vals[n] = v
	for _, f := range s.nl.Net(n).Fanout {
		if s.nl.Gate(f).Kind == logic.DFF {
			continue // captured only on Step
		}
		s.schedule(f)
	}
}

func (s *Simulator) setNetFromGate(n netlist.NetID, v logic.Value) { s.setNet(n, v) }

func (s *Simulator) schedule(g netlist.GateID) {
	if s.dirty[g] {
		return
	}
	s.dirty[g] = true
	s.queue.push(int(s.level[g]), g)
}

// buckets is a monotone level-ordered work queue: gates are processed in
// topological level order so each settles once per wave.
type buckets struct {
	lists [][]netlist.GateID
	cur   int
	n     int
}

func (b *buckets) init(levels int) {
	b.lists = make([][]netlist.GateID, levels)
	b.cur = 0
	b.n = 0
}

func (b *buckets) push(level int, g netlist.GateID) {
	b.lists[level] = append(b.lists[level], g)
	if level < b.cur {
		b.cur = level
	}
	b.n++
}

func (b *buckets) pop() (netlist.GateID, bool) {
	if b.n == 0 {
		b.cur = 0
		return netlist.NoGate, false
	}
	for b.cur < len(b.lists) {
		l := b.lists[b.cur]
		if len(l) == 0 {
			b.cur++
			continue
		}
		g := l[len(l)-1]
		b.lists[b.cur] = l[:len(l)-1]
		b.n--
		return g, true
	}
	b.cur = 0
	return netlist.NoGate, false
}
