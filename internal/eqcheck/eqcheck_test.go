package eqcheck_test

import (
	"context"
	"math/rand"
	"testing"

	"gatewords/internal/aig"
	"gatewords/internal/bench"
	"gatewords/internal/eqcheck"
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/obs"
	"gatewords/internal/sim"
)

func TestCheckLitsStrashIdentity(t *testing.T) {
	g := aig.New()
	a, b := g.Input("a"), g.Input("b")
	x := g.And(a, g.Or(b, a.Not()))
	y := g.And(g.Or(b, a.Not()), a)
	r := eqcheck.CheckLits(g, x, y, eqcheck.Options{})
	if r.Verdict != eqcheck.Equivalent || r.Stage != "strash" {
		t.Fatalf("verdict=%v stage=%s, want equivalent/strash", r.Verdict, r.Stage)
	}
}

// TestCheckLitsSATProof uses two structurally different majority
// implementations: simulation cannot prove equivalence, so the verdict must
// come from an UNSAT miter.
func TestCheckLitsSATProof(t *testing.T) {
	g := aig.New()
	a, b, c := g.Input("a"), g.Input("b"), g.Input("c")
	maj1 := g.Or(g.Or(g.And(a, b), g.And(a, c)), g.And(b, c))
	maj2 := g.Or(g.And(a, g.Or(b, c)), g.And(b, c))
	r := eqcheck.CheckLits(g, maj1, maj2, eqcheck.Options{})
	if r.Verdict != eqcheck.Equivalent {
		t.Fatalf("majority forms not proved equivalent: %+v", r)
	}
	if r.Stage != "sat" && r.Stage != "strash" {
		t.Fatalf("unexpected deciding stage %q", r.Stage)
	}
}

func TestCheckLitsRefutedBySim(t *testing.T) {
	g := aig.New()
	a, b := g.Input("a"), g.Input("b")
	r := eqcheck.CheckLits(g, g.And(a, b), g.Or(a, b), eqcheck.Options{})
	if r.Verdict != eqcheck.NotEquivalent || r.Stage != "sim" {
		t.Fatalf("verdict=%v stage=%s, want not-equivalent/sim", r.Verdict, r.Stage)
	}
	checkCexDistinguishes(t, g, g.And(a, b), g.Or(a, b), r.Cex)
}

func TestCheckLitsRefutedBySAT(t *testing.T) {
	g := aig.New()
	a, b := g.Input("a"), g.Input("b")
	x, y := g.And(a, b), g.Or(a, b)
	r := eqcheck.CheckLits(g, x, y, eqcheck.Options{SimRounds: -1})
	if r.Verdict != eqcheck.NotEquivalent || r.Stage != "sat" {
		t.Fatalf("verdict=%v stage=%s, want not-equivalent/sat", r.Verdict, r.Stage)
	}
	checkCexDistinguishes(t, g, x, y, r.Cex)
}

// checkCexDistinguishes asserts the counterexample makes x and y differ.
func checkCexDistinguishes(t *testing.T, g *aig.AIG, x, y aig.Lit, cex map[string]bool) {
	t.Helper()
	if cex == nil {
		t.Fatal("NotEquivalent without counterexample")
	}
	assign := make([]bool, g.NumInputs())
	for name, v := range cex {
		l, ok := g.InputByName(name)
		if !ok {
			t.Fatalf("cex names unknown input %q", name)
		}
		assign[inputIndexOf(t, g, l)] = v
	}
	if g.EvalBool(assign, x) == g.EvalBool(assign, y) {
		t.Fatalf("counterexample %v does not distinguish the sides", cex)
	}
}

func inputIndexOf(t *testing.T, g *aig.AIG, l aig.Lit) int {
	t.Helper()
	for i := 0; i < g.NumInputs(); i++ {
		if g.InputLit(i) == l {
			return i
		}
	}
	t.Fatalf("no input index for %v", l)
	return -1
}

// TestCheckLitsUnknownOnBudget miters two association orders of a wide XOR:
// equivalent (so simulation never refutes) but hard for a DPLL without
// learning, so a tiny conflict budget must yield Unknown.
func TestCheckLitsUnknownOnBudget(t *testing.T) {
	g := aig.New()
	const n = 10
	ins := make([]aig.Lit, n)
	for i := range ins {
		ins[i] = g.Input(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	left := g.XorN(ins)
	right := aig.False
	for i := n - 1; i >= 0; i-- {
		right = g.Xor(ins[i], right)
	}
	r := eqcheck.CheckLits(g, left, right, eqcheck.Options{SimRounds: 2, MaxConflicts: 5})
	if r.Verdict != eqcheck.Unknown || r.Stage != "sat" {
		t.Fatalf("verdict=%v stage=%s, want unknown/sat", r.Verdict, r.Stage)
	}
	// With the default budget the same miter is proved.
	r = eqcheck.CheckLits(g, left, right, eqcheck.Options{SimRounds: 2})
	if r.Verdict != eqcheck.Equivalent {
		t.Fatalf("default budget failed to prove XOR reassociation: %+v", r)
	}
}

func TestSolve(t *testing.T) {
	g := aig.New()
	a, b := g.Input("a"), g.Input("b")
	if r := eqcheck.Solve(g, aig.False, eqcheck.Options{}); r.Status != eqcheck.Unsat {
		t.Fatalf("False: %+v", r)
	}
	if r := eqcheck.Solve(g, aig.True, eqcheck.Options{}); r.Status != eqcheck.Sat {
		t.Fatalf("True: %+v", r)
	}
	// a & !a is unsatisfiable only via folding; a & b is satisfiable.
	if r := eqcheck.Solve(g, g.And(a, a.Not()), eqcheck.Options{}); r.Status != eqcheck.Unsat {
		t.Fatalf("a&!a: %+v", r)
	}
	r := eqcheck.Solve(g, g.And(a, b.Not()), eqcheck.Options{})
	if r.Status != eqcheck.Sat {
		t.Fatalf("a&!b: %+v", r)
	}
	if !r.Model["a"] || r.Model["b"] {
		t.Fatalf("model %v does not satisfy a&!b", r.Model)
	}
	// Same query with simulation disabled must agree via SAT.
	r = eqcheck.Solve(g, g.And(a, b.Not()), eqcheck.Options{SimRounds: -1})
	if r.Status != eqcheck.Sat || r.Stage != "sat" {
		t.Fatalf("a&!b via sat: %+v", r)
	}
	if !r.Model["a"] || r.Model["b"] {
		t.Fatalf("sat model %v does not satisfy a&!b", r.Model)
	}
}

// buildAdder2 returns a 2-bit adder netlist (sum outputs s0, s1) built from
// the given gate vocabulary variant, so two variants are structurally
// different but functionally equal.
func buildAdder2(t *testing.T, name string, viaMux bool) *netlist.Netlist {
	t.Helper()
	nl := netlist.New(name)
	a0, a1 := nl.MustNet("a0"), nl.MustNet("a1")
	b0, b1 := nl.MustNet("b0"), nl.MustNet("b1")
	for _, n := range []netlist.NetID{a0, a1, b0, b1} {
		nl.MarkPI(n)
	}
	s0, s1 := nl.MustNet("s0"), nl.MustNet("s1")
	c0 := nl.MustNet("c0")
	nl.MustGate("gc0", logic.And, c0, a0, b0)
	if viaMux {
		// s = sel ? !b : b with sel=a is XOR via a mux.
		nb0, nb1 := nl.MustNet("nb0"), nl.MustNet("nb1")
		x1 := nl.MustNet("x1")
		nl.MustGate("gn0", logic.Not, nb0, b0)
		nl.MustGate("gn1", logic.Not, nb1, b1)
		nl.MustGate("gs0", logic.Mux2, s0, a0, b0, nb0)
		nl.MustGate("gx1", logic.Mux2, x1, a1, b1, nb1)
		nx1 := nl.MustNet("nx1")
		nl.MustGate("gnx1", logic.Not, nx1, x1)
		nl.MustGate("gs1", logic.Mux2, s1, c0, x1, nx1)
	} else {
		x1 := nl.MustNet("x1")
		nl.MustGate("gs0", logic.Xor, s0, a0, b0)
		nl.MustGate("gx1", logic.Xor, x1, a1, b1)
		nl.MustGate("gs1", logic.Xor, s1, x1, c0)
	}
	nl.MarkPO(s0)
	nl.MarkPO(s1)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestCheckNetlistsEquivalent(t *testing.T) {
	na := buildAdder2(t, "adder_xor", false)
	nb := buildAdder2(t, "adder_mux", true)
	res, err := eqcheck.CheckNetlists(na, nb, nil, eqcheck.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Verdict(); v != eqcheck.Equivalent {
		t.Fatalf("adder variants: verdict %v: %+v", v, res.Outputs)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("matched %d outputs, want 2", len(res.Outputs))
	}
}

func TestCheckNetlistsRefuted(t *testing.T) {
	na := buildAdder2(t, "adder_xor", false)
	nb := buildAdder2(t, "adder_mux", true)
	// Break nb: swap s1's data pins, flipping the carry mux.
	gi, ok := func() (netlist.GateID, bool) {
		for i := 0; i < nb.GateCount(); i++ {
			if nb.Gate(netlist.GateID(i)).Name == "gs1" {
				return netlist.GateID(i), true
			}
		}
		return 0, false
	}()
	if !ok {
		t.Fatal("no gs1 gate")
	}
	g := nb.Gate(gi)
	g.Inputs[1], g.Inputs[2] = g.Inputs[2], g.Inputs[1]
	res, err := eqcheck.CheckNetlists(na, nb, nil, eqcheck.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var bad *eqcheck.OutputCheck
	for i := range res.Outputs {
		if res.Outputs[i].Name == "s1" {
			bad = &res.Outputs[i]
		}
	}
	if bad == nil || bad.Result.Verdict != eqcheck.NotEquivalent {
		t.Fatalf("broken s1 not refuted: %+v", res.Outputs)
	}
	if bad.Cex == nil {
		t.Fatal("refutation without counterexample")
	}
	// Replay the counterexample on both three-valued simulators: the flagged
	// output must differ.
	va := simulate(t, na, bad.Cex)
	vb := simulate(t, nb, bad.Cex)
	if va["s1"] == vb["s1"] {
		t.Fatalf("cex %v does not distinguish s1 (a=%v b=%v)", bad.Cex, va["s1"], vb["s1"])
	}
}

func TestCheckNetlistsPinned(t *testing.T) {
	na := buildAdder2(t, "adder_xor", false)
	nb := buildAdder2(t, "adder_mux", true)
	// Under a1=0, b1=0 the netlists stay equivalent; pinning is applied to
	// both sides.
	pin := map[string]logic.Value{"a1": logic.Zero, "b1": logic.Zero}
	res, err := eqcheck.CheckNetlists(na, nb, pin, eqcheck.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Verdict(); v != eqcheck.Equivalent {
		t.Fatalf("pinned adders: %v", v)
	}
}

// TestCheckNetlistsConstTieoff checks the reduce.Materialize convention:
// "$const0"/"$const1" tie-off inputs are pinned automatically.
func TestCheckNetlistsConstTieoff(t *testing.T) {
	na := netlist.New("tied")
	a := na.MustNet("a")
	one := na.MustNet("$const1")
	na.MarkPI(a)
	na.MarkPI(one)
	y := na.MustNet("y")
	na.MustGate("g", logic.And, y, a, one)
	na.MarkPO(y)

	nb := netlist.New("plain")
	ab := nb.MustNet("a")
	nb.MarkPI(ab)
	yb := nb.MustNet("y")
	nb.MustGate("g", logic.Buf, yb, ab)
	nb.MarkPO(yb)

	res, err := eqcheck.CheckNetlists(na, nb, nil, eqcheck.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Verdict(); v != eqcheck.Equivalent {
		t.Fatalf("tie-off not honored: %v: %+v", v, res.Outputs)
	}
}

func TestCheckNetlistsNoSharedObservables(t *testing.T) {
	na := buildAdder2(t, "a", false)
	nb := netlist.New("other")
	x := nb.MustNet("x")
	nb.MarkPI(x)
	z := nb.MustNet("z")
	nb.MustGate("g", logic.Buf, z, x)
	nb.MarkPO(z)
	if _, err := eqcheck.CheckNetlists(na, nb, nil, eqcheck.Options{}); err == nil {
		t.Fatal("expected error for disjoint observables")
	}
}

// simulate drives nl's frame inputs (primary inputs and flip-flop states)
// from assign, settles, and returns the values of all primary outputs and
// flip-flop D inputs by observable name. Unlisted inputs default to 0 — the
// same completion eqcheck uses for inputs outside a counterexample's support.
func simulate(t *testing.T, nl *netlist.Netlist, assign map[string]bool) map[string]logic.Value {
	t.Helper()
	s, err := sim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	val := func(name string) logic.Value {
		if assign[name] {
			return logic.One
		}
		return logic.Zero
	}
	for _, pi := range nl.PIs() {
		if err := s.SetInput(pi, val(nl.NetName(pi))); err != nil {
			t.Fatal(err)
		}
	}
	for i, gid := range nl.DFFs() {
		s.SetState(i, val(nl.NetName(nl.Gate(gid).Output)))
	}
	s.Settle()
	out := make(map[string]logic.Value)
	for _, po := range nl.POs() {
		out[nl.NetName(po)] = s.Value(po)
	}
	for _, gid := range nl.DFFs() {
		out[aig.FFPrefix+nl.Gate(gid).Name] = s.Value(nl.Gate(gid).Inputs[0])
	}
	return out
}

// TestSim64AgainstReferenceSimulator cross-checks eqcheck's 64-bit-parallel
// AIG simulation against the three-valued reference simulator on a bench
// generator circuit: under fully known inputs and states, every primary
// output and every next-state bit must agree exactly.
func TestSim64AgainstReferenceSimulator(t *testing.T) {
	prof, ok := bench.ProfileByName("b03")
	if !ok {
		t.Fatal("no b03 profile")
	}
	gen, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	nl := gen.NL

	g := aig.New()
	f, err := aig.AddFrame(g, nl, nil)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	words := make([]uint64, g.NumInputs())
	for i := range words {
		words[i] = rng.Uint64()
	}
	vals := g.Sim64(words, nil)

	wordOf := func(name string) (uint64, bool) {
		l, ok := g.InputByName(name)
		if !ok {
			return 0, false
		}
		return words[inputIndexOf(t, g, l)], true
	}

	for _, lane := range []uint{0, 1, 31, 63} {
		s, err := sim.New(nl)
		if err != nil {
			t.Fatal(err)
		}
		for _, pi := range nl.PIs() {
			w, ok := wordOf(nl.NetName(pi))
			if !ok {
				t.Fatalf("PI %q missing from frame inputs", nl.NetName(pi))
			}
			if err := s.SetInput(pi, logic.FromBool(w>>lane&1 == 1)); err != nil {
				t.Fatal(err)
			}
		}
		for i, gid := range nl.DFFs() {
			w, ok := wordOf(nl.NetName(nl.Gate(gid).Output))
			if !ok {
				t.Fatalf("state %q missing from frame inputs", nl.NetName(nl.Gate(gid).Output))
			}
			s.SetState(i, logic.FromBool(w>>lane&1 == 1))
		}
		s.Settle()
		checked := 0
		for _, name := range f.OutputNames {
			var ref logic.Value
			if id, ok := nl.NetByName(name); ok && nl.Net(id).IsPO {
				ref = s.Value(id)
			} else {
				continue
			}
			if !ref.Known() {
				t.Fatalf("reference simulator returned X for %q under known inputs", name)
			}
			got := aig.Word(vals, f.Outputs[name])>>lane&1 == 1
			if got != (ref == logic.One) {
				t.Fatalf("lane %d output %q: aig=%v sim=%v", lane, name, got, ref)
			}
			checked++
		}
		for _, gid := range nl.DFFs() {
			gate := nl.Gate(gid)
			ref := s.Value(gate.Inputs[0])
			if !ref.Known() {
				t.Fatalf("reference simulator returned X for next state of %q", gate.Name)
			}
			got := aig.Word(vals, f.Outputs[aig.FFPrefix+gate.Name])>>lane&1 == 1
			if got != (ref == logic.One) {
				t.Fatalf("lane %d next-state %q: aig=%v sim=%v", lane, gate.Name, got, ref)
			}
			checked++
		}
		if checked == 0 {
			t.Fatal("cross-check compared nothing")
		}
	}
}

// wideXorMiter rebuilds the reassociated-XOR miter of
// TestCheckLitsUnknownOnBudget: equivalent sides (simulation can never
// refute) that a tiny conflict budget cannot prove.
func wideXorMiter() (*aig.AIG, aig.Lit, aig.Lit) {
	g := aig.New()
	const n = 10
	ins := make([]aig.Lit, n)
	for i := range ins {
		ins[i] = g.Input(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	left := g.XorN(ins)
	right := aig.False
	for i := n - 1; i >= 0; i-- {
		right = g.Xor(ins[i], right)
	}
	return g, left, right
}

// TestRetryLadderEscalatesUnknown pins the escalating-retry ladder: a
// conflict budget too small to prove the wide-XOR miter stays Unknown with
// the ladder off, and is escalated to a decided Equivalent with it on — with
// the retries counted in both the result stats and the observer.
func TestRetryLadderEscalatesUnknown(t *testing.T) {
	g, left, right := wideXorMiter()
	base := eqcheck.Options{SimRounds: 2, MaxConflicts: 5}

	r := eqcheck.CheckLits(g, left, right, base)
	if r.Verdict != eqcheck.Unknown || r.Stats.Retries != 0 {
		t.Fatalf("ladder off: verdict=%v retries=%d, want unknown/0", r.Verdict, r.Stats.Retries)
	}

	rec := obs.New()
	opt := base
	opt.RetryUnknown = 20
	opt.Observer = rec
	r = eqcheck.CheckLits(g, left, right, opt)
	if r.Verdict != eqcheck.Equivalent || r.Stage != "sat" {
		t.Fatalf("ladder on: verdict=%v stage=%s, want equivalent/sat", r.Verdict, r.Stage)
	}
	if r.Stats.Retries < 1 {
		t.Fatalf("ladder on: Retries = %d, want >= 1", r.Stats.Retries)
	}
	if got := rec.Count(obs.CtrSATRetries); got != int64(r.Stats.Retries) {
		t.Errorf("sat_retries counter = %d, want %d", got, r.Stats.Retries)
	}

	// A cap at the starting budget forbids any escalation: the ladder stops
	// immediately and the verdict stays Unknown with zero retries.
	opt = base
	opt.RetryUnknown = 20
	opt.RetryConflictCap = base.MaxConflicts
	r = eqcheck.CheckLits(g, left, right, opt)
	if r.Verdict != eqcheck.Unknown || r.Stats.Retries != 0 {
		t.Fatalf("capped ladder: verdict=%v retries=%d, want unknown/0", r.Verdict, r.Stats.Retries)
	}
}

// TestCheckNetlistsCancelled pins the deadline contract at the multi-output
// driver: a cancelled context resolves every remaining output to
// Unknown/"cancelled" while keeping the output list complete and ordered.
func TestCheckNetlistsCancelled(t *testing.T) {
	na := buildAdder2(t, "adder_xor", false)
	nb := buildAdder2(t, "adder_mux", true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := eqcheck.CheckNetlists(na, nb, nil, eqcheck.Options{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("got %d outputs, want the full list", len(res.Outputs))
	}
	for _, out := range res.Outputs {
		if out.Verdict != eqcheck.Unknown || out.Stage != "cancelled" {
			t.Errorf("output %s: verdict %v stage %q, want Unknown/cancelled", out.Name, out.Verdict, out.Stage)
		}
	}
}

// TestOptionsCancelled covers the poll helper itself.
func TestOptionsCancelled(t *testing.T) {
	if (eqcheck.Options{}).Cancelled() {
		t.Error("zero Options reports cancelled")
	}
	if (eqcheck.Options{Context: context.Background()}).Cancelled() {
		t.Error("live context reports cancelled")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !(eqcheck.Options{Context: ctx}).Cancelled() {
		t.Error("cancelled context not reported")
	}
	if r := eqcheck.CancelledResult(); r.Verdict != eqcheck.Unknown || r.Stage != "cancelled" {
		t.Errorf("CancelledResult = %+v", r)
	}
}
