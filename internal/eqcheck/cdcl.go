package eqcheck

// cdcl.go implements a conflict-driven clause-learning SAT solver, the
// default engine behind the staged equivalence pipeline. It keeps the
// two-watched-literal propagation scheme of dpll.go and adds the four
// classic CDCL ingredients:
//
//   - first-UIP conflict analysis with non-chronological backjumping: every
//     conflict is resolved back to the first unique implication point and the
//     learned clause asserts its negation at the earliest level where it
//     becomes unit, instead of flipping the most recent decision;
//   - VSIDS-style branching: variables touched by conflict analysis gain
//     activity, activities decay geometrically, and decisions pick the most
//     active unassigned variable (index-ordered on ties, so the search is
//     deterministic), with phase saving across backjumps and restarts;
//   - Luby restarts: the search restarts after luby(k)·base conflicts,
//     keeping the clause database and activities, which un-sticks unlucky
//     early decision prefixes without losing learned work;
//   - learned-clause reduction: when the learnt database outgrows its cap
//     the lower-activity half is deleted (binary and locked clauses are
//     kept), bounding memory on long incremental sessions.
//
// The solver is incremental: clauses can be added between solves (at
// decision level 0), and solveUnder proves a query under a vector of
// assumption literals without touching the clause database — assumptions are
// pushed as pseudo-decisions below all real decisions and re-pushed after
// every restart or backjump past them, exactly the MiniSat discipline. A
// retry with a raised conflict budget is therefore a warm re-search: the
// clause database, activities, and saved phases all carry over.

import "sort"

const (
	varActDecay    = 0.95  // per-conflict variable-activity decay (varInc /= decay)
	claActDecay    = 0.999 // per-conflict clause-activity decay
	varActRescale  = 1e100 // rescale threshold for variable activities
	claActRescale  = 1e20  // rescale threshold for clause activities
	initMaxLearnts = 1000  // initial learnt-database cap (grows by half per reduction)
)

// cdclStats are the monotone engine counters; callers snapshot before and
// after a solve and report the delta.
type cdclStats struct {
	decisions    int
	propagations int
	conflicts    int
	learned      int
	restarts     int
}

// cdcl is one incremental CDCL solver instance.
type cdcl struct {
	nVars int

	// Clause storage. Problem and learnt clauses share one arena so reason
	// references are plain indices; deleted learnt clauses become nil holes
	// (indices must stay stable for the reason links of locked clauses).
	clauses  []clause
	learnt   []bool
	claAct   []float64
	nLearnts int // live learnt clauses
	nBinary  int // problem clauses of length >= 2
	nUnits   int // top-level problem units

	watches  [][]int32
	assign   []int8  // per variable: 0 unknown, +1 true, -1 false
	varLevel []int32 // decision level of the assignment
	reason   []int32 // implying clause index, or -1 for decisions/units
	trail    []intLit
	trailLim []int // trail length at each decision-level start
	qhead    int
	unsat    bool // proved unsat at level 0 (permanent)

	// VSIDS activity order: a binary heap of variables, most active first,
	// index-ascending on equal activity for determinism.
	varAct  []float64
	varInc  float64
	claInc  float64
	heap    []int32
	heapPos []int32
	phase   []int8 // saved polarity from the last unassignment (0 = false-first)

	seen []bool // conflict-analysis scratch

	lubyBase   int // restart unit in conflicts; <= 0 disables restarts
	maxLearnts int

	model []int8 // assignment snapshot of the last statusSat

	stats cdclStats
}

func newCDCL(lubyBase int) *cdcl {
	return &cdcl{
		varInc:     1,
		claInc:     1,
		lubyBase:   lubyBase,
		maxLearnts: initMaxLearnts,
	}
}

// newVar grows the solver by one fresh variable and returns its index.
func (s *cdcl) newVar() int {
	v := s.nVars
	s.nVars++
	s.watches = append(s.watches, nil, nil)
	s.assign = append(s.assign, 0)
	s.varLevel = append(s.varLevel, 0)
	s.reason = append(s.reason, -1)
	s.varAct = append(s.varAct, 0)
	s.heapPos = append(s.heapPos, -1)
	s.phase = append(s.phase, 0)
	s.seen = append(s.seen, false)
	s.heapInsert(int32(v))
	return v
}

func (s *cdcl) value(l intLit) int8 {
	v := s.assign[litVar(l)]
	if l&1 == 1 {
		return -v
	}
	return v
}

func (s *cdcl) decisionLevel() int { return len(s.trailLim) }

// addClause installs one problem clause. It must be called at decision level
// 0 (between solves); literals already decided at level 0 simplify away.
func (s *cdcl) addClause(lits ...intLit) {
	if s.unsat {
		return
	}
	c := make(clause, 0, len(lits))
	for _, l := range lits {
		if s.assign[litVar(l)] != 0 && s.varLevel[litVar(l)] == 0 {
			if s.value(l) == 1 {
				return // satisfied at the top level
			}
			continue // falsified at the top level: drop the literal
		}
		dup, taut := false, false
		for _, e := range c {
			if e == l {
				dup = true
				break
			}
			if e == litNot(l) {
				taut = true
				break
			}
		}
		if taut {
			return
		}
		if !dup {
			c = append(c, l)
		}
	}
	switch len(c) {
	case 0:
		s.unsat = true
		return
	case 1:
		s.nUnits++
		if !s.enqueue(c[0], -1) {
			s.unsat = true
		}
		return
	}
	ci := int32(len(s.clauses))
	s.clauses = append(s.clauses, c)
	s.learnt = append(s.learnt, false)
	s.claAct = append(s.claAct, 0)
	s.watches[c[0]] = append(s.watches[c[0]], ci)
	s.watches[c[1]] = append(s.watches[c[1]], ci)
	s.nBinary++
}

// numClauses reports the live problem-clause count (units included), the
// figure behind Stats.Clauses.
func (s *cdcl) numClauses() int { return s.nBinary + s.nUnits }

// enqueue assigns literal l true at the current decision level with the
// given reason clause; it returns false when l is already false.
func (s *cdcl) enqueue(l intLit, from int32) bool {
	switch s.value(l) {
	case 1:
		return true
	case -1:
		return false
	}
	v := litVar(l)
	if l&1 == 1 {
		s.assign[v] = -1
	} else {
		s.assign[v] = 1
	}
	s.varLevel[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate runs two-watched-literal unit propagation to fixpoint and
// returns the conflicting clause index, or -1.
func (s *cdcl) propagate() int32 {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.stats.propagations++
		falseLit := litNot(l)
		ws := s.watches[falseLit]
		j := 0
		for i := 0; i < len(ws); i++ {
			ci := ws[i]
			c := s.clauses[ci]
			// Normalize: the false watch sits at c[1]. A clause in reason
			// position keeps its implied literal at c[0]: that literal is
			// true while the clause is a reason, so this swap cannot fire
			// on it.
			if c[0] == falseLit {
				c[0], c[1] = c[1], c[0]
			}
			if s.value(c[0]) == 1 {
				ws[j] = ci
				j++
				continue
			}
			moved := false
			for k := 2; k < len(c); k++ {
				if s.value(c[k]) != -1 {
					c[1], c[k] = c[k], c[1]
					s.watches[c[1]] = append(s.watches[c[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit (or conflicting) on c[0].
			ws[j] = ci
			j++
			if !s.enqueue(c[0], ci) {
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[falseLit] = ws[:j]
				return ci
			}
		}
		s.watches[falseLit] = ws[:j]
	}
	return -1
}

// cancelUntil backtracks to decision level lvl, saving phases and returning
// unassigned variables to the activity heap.
func (s *cdcl) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	lim := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= lim; i-- {
		v := litVar(s.trail[i])
		s.phase[v] = s.assign[v]
		s.assign[v] = 0
		s.reason[v] = -1
		s.heapInsert(int32(v))
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = lim
}

// analyze performs first-UIP conflict analysis from the conflicting clause.
// It returns the learned clause — asserting literal first, a literal of the
// backjump level second — and the backjump level itself.
func (s *cdcl) analyze(confl int32) ([]intLit, int) {
	learnt := make([]intLit, 1, 8)
	pathC := 0
	p := intLit(-1)
	idx := len(s.trail) - 1
	cur := int32(s.decisionLevel())
	for {
		c := s.clauses[confl]
		if s.learnt[confl] {
			s.bumpClause(confl)
		}
		start := 0
		if p != -1 {
			start = 1 // c is p's reason: c[0] is p itself
		}
		for _, q := range c[start:] {
			v := litVar(q)
			if s.seen[v] || s.varLevel[v] == 0 {
				continue
			}
			s.bumpVar(int32(v))
			s.seen[v] = true
			if s.varLevel[v] >= cur {
				pathC++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk the trail backwards to the next marked literal of the
		// current level.
		for !s.seen[litVar(s.trail[idx])] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := litVar(p)
		s.seen[v] = false
		pathC--
		if pathC <= 0 {
			break // p is the first UIP
		}
		confl = s.reason[v]
	}
	learnt[0] = litNot(p)
	bt := 0
	if len(learnt) > 1 {
		// Second watch: the deepest remaining literal, whose level is the
		// backjump target (the learned clause becomes unit exactly there).
		mi := 1
		for i := 2; i < len(learnt); i++ {
			if s.varLevel[litVar(learnt[i])] > s.varLevel[litVar(learnt[mi])] {
				mi = i
			}
		}
		learnt[1], learnt[mi] = learnt[mi], learnt[1]
		bt = int(s.varLevel[litVar(learnt[1])])
	}
	for _, q := range learnt[1:] {
		s.seen[litVar(q)] = false
	}
	return learnt, bt
}

// record installs a freshly learned clause (after cancelUntil to its
// backjump level) and enqueues its asserting literal.
func (s *cdcl) record(c []intLit) {
	s.stats.learned++
	if len(c) == 1 {
		if !s.enqueue(c[0], -1) {
			s.unsat = true
		}
		return
	}
	ci := int32(len(s.clauses))
	s.clauses = append(s.clauses, c)
	s.learnt = append(s.learnt, true)
	s.claAct = append(s.claAct, s.claInc)
	s.watches[c[0]] = append(s.watches[c[0]], ci)
	s.watches[c[1]] = append(s.watches[c[1]], ci)
	s.nLearnts++
	s.enqueue(c[0], ci)
}

func (s *cdcl) bumpVar(v int32) {
	s.varAct[v] += s.varInc
	if s.varAct[v] > varActRescale {
		for i := range s.varAct {
			s.varAct[i] *= 1 / varActRescale
		}
		s.varInc *= 1 / varActRescale
	}
	if s.heapPos[v] >= 0 {
		s.heapUp(int(s.heapPos[v]))
	}
}

func (s *cdcl) bumpClause(ci int32) {
	s.claAct[ci] += s.claInc
	if s.claAct[ci] > claActRescale {
		for i := range s.claAct {
			if s.learnt[i] {
				s.claAct[i] *= 1 / claActRescale
			}
		}
		s.claInc *= 1 / claActRescale
	}
}

func (s *cdcl) decayActivities() {
	s.varInc *= 1 / varActDecay
	s.claInc *= 1 / claActDecay
}

// locked reports whether clause ci is the reason of its first literal's
// assignment (deleting it would orphan the implication graph).
func (s *cdcl) locked(ci int32) bool {
	c := s.clauses[ci]
	return s.value(c[0]) == 1 && s.reason[litVar(c[0])] == ci
}

// reduceDB deletes the lower-activity half of the deletable learnt clauses.
// Binary and locked clauses are exempt. Deletion nils the arena slot so
// reason indices stay stable; watches are detached eagerly.
func (s *cdcl) reduceDB() {
	var cand []int32
	for ci := range s.clauses {
		if s.learnt[ci] && s.clauses[ci] != nil && len(s.clauses[ci]) > 2 && !s.locked(int32(ci)) {
			cand = append(cand, int32(ci))
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		a, b := cand[i], cand[j]
		if s.claAct[a] != s.claAct[b] {
			return s.claAct[a] < s.claAct[b]
		}
		return a < b
	})
	for _, ci := range cand[:len(cand)/2] {
		c := s.clauses[ci]
		s.removeWatch(c[0], ci)
		s.removeWatch(c[1], ci)
		s.clauses[ci] = nil
		s.nLearnts--
	}
}

func (s *cdcl) removeWatch(l intLit, ci int32) {
	ws := s.watches[l]
	for i, w := range ws {
		if w == ci {
			s.watches[l] = append(ws[:i], ws[i+1:]...)
			return
		}
	}
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int) int {
	for k := 1; ; k++ {
		if i == 1<<k-1 {
			return 1 << (k - 1)
		}
		if i < 1<<k-1 {
			return luby(i - (1<<(k-1) - 1))
		}
	}
}

// pickBranchVar pops the most active unassigned variable, or -1 when every
// variable is assigned (a model).
func (s *cdcl) pickBranchVar() int32 {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[v] == 0 {
			return v
		}
	}
	return -1
}

// solveUnder searches for a model with every assumption literal true,
// resolving at most maxConflicts conflicts (inclusive: the conflict that
// would exceed the budget returns statusUnknown unresolved; a negative
// budget is unlimited). statusUnsat means no model exists under the
// assumptions — globally unsat only when s.unsat is also set. The solver
// always returns at decision level 0, warm for the next query; a satisfying
// assignment is snapshotted into s.model before the exit backtrack.
func (s *cdcl) solveUnder(assumps []intLit, maxConflicts int) solveStatus {
	if s.unsat {
		return statusUnsat
	}
	s.cancelUntil(0)
	conflicts := 0
	restartNum := 0
	restartLim := 0
	if s.lubyBase > 0 {
		restartLim = s.lubyBase * luby(1)
	}
	restartConfl := 0
	for {
		if confl := s.propagate(); confl >= 0 {
			if s.decisionLevel() == 0 {
				s.unsat = true
				return statusUnsat
			}
			if maxConflicts >= 0 && conflicts >= maxConflicts {
				s.cancelUntil(0)
				return statusUnknown
			}
			conflicts++
			restartConfl++
			s.stats.conflicts++
			c, bt := s.analyze(confl)
			s.cancelUntil(bt)
			s.record(c)
			if s.unsat {
				return statusUnsat
			}
			s.decayActivities()
			continue
		}
		if restartLim > 0 && restartConfl >= restartLim {
			restartNum++
			s.stats.restarts++
			restartConfl = 0
			restartLim = s.lubyBase * luby(restartNum+1)
			s.cancelUntil(0)
			if s.nLearnts >= s.maxLearnts {
				s.reduceDB()
				s.maxLearnts += s.maxLearnts / 2
			}
			continue
		}
		// Extend the trail: re-push assumptions first (they occupy the
		// lowest decision levels and are restored here after any restart
		// or backjump past them), then branch.
		next := intLit(-1)
		for s.decisionLevel() < len(assumps) {
			p := assumps[s.decisionLevel()]
			switch s.value(p) {
			case 1:
				// Already implied: dummy level keeps assumption index i at
				// decision level i+1.
				s.trailLim = append(s.trailLim, len(s.trail))
			case -1:
				s.cancelUntil(0)
				return statusUnsat // conflicts with the assumptions
			default:
				next = p
			}
			if next != -1 {
				break
			}
		}
		if next == -1 {
			v := s.pickBranchVar()
			if v < 0 {
				s.captureModel()
				s.cancelUntil(0)
				return statusSat
			}
			s.stats.decisions++
			if s.phase[v] == 1 {
				next = posLit(int(v))
			} else {
				next = negLit(int(v))
			}
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(next, -1)
	}
}

func (s *cdcl) captureModel() {
	if cap(s.model) < s.nVars {
		s.model = make([]int8, s.nVars)
	}
	s.model = s.model[:s.nVars]
	copy(s.model, s.assign)
}

// modelValue reports variable v's value in the last captured model
// (unassigned variables read false).
func (s *cdcl) modelValue(v int) bool { return v < len(s.model) && s.model[v] == 1 }

// Activity heap: most active variable first, index-ascending on ties.

func (s *cdcl) heapLess(a, b int32) bool {
	if s.varAct[a] != s.varAct[b] {
		return s.varAct[a] > s.varAct[b]
	}
	return a < b
}

func (s *cdcl) heapInsert(v int32) {
	if s.heapPos[v] >= 0 {
		return
	}
	s.heapPos[v] = int32(len(s.heap))
	s.heap = append(s.heap, v)
	s.heapUp(len(s.heap) - 1)
}

func (s *cdcl) heapPop() int32 {
	v := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heapPos[s.heap[0]] = 0
	s.heap = s.heap[:last]
	s.heapPos[v] = -1
	if last > 0 {
		s.heapDown(0)
	}
	return v
}

func (s *cdcl) heapUp(i int) {
	v := s.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !s.heapLess(v, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.heapPos[s.heap[i]] = int32(i)
		i = p
	}
	s.heap[i] = v
	s.heapPos[v] = int32(i)
}

func (s *cdcl) heapDown(i int) {
	v := s.heap[i]
	for {
		c := 2*i + 1
		if c >= len(s.heap) {
			break
		}
		if c+1 < len(s.heap) && s.heapLess(s.heap[c+1], s.heap[c]) {
			c++
		}
		if !s.heapLess(s.heap[c], v) {
			break
		}
		s.heap[i] = s.heap[c]
		s.heapPos[s.heap[i]] = int32(i)
		i = c
	}
	s.heap[i] = v
	s.heapPos[v] = int32(i)
}
