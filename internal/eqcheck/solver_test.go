package eqcheck_test

// solver_test.go pins the warm-Solver contracts added with the incremental
// CDCL engine: encode-once across the retry ladder, the inclusive conflict
// budget as seen through Options, assumption solves agreeing with fresh
// solvers, cancellation between ladder attempts, and the new observability
// counters.

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"gatewords/internal/aig"
	"gatewords/internal/eqcheck"
	"gatewords/internal/obs"
)

// TestEncodeOnceAcrossRetries is the regression test for the retry-ladder
// waste bug: escalating the conflict budget used to rebuild the Tseitin
// encoding per attempt. Now the ladder re-searches the same instance — the
// query must report escalations but exactly one encoding pass, on both
// engines.
func TestEncodeOnceAcrossRetries(t *testing.T) {
	for _, tc := range []struct {
		name    string
		noLearn bool
	}{{"cdcl", false}, {"dpll", true}} {
		t.Run(tc.name, func(t *testing.T) {
			g, left, right := wideXorMiter()
			opt := eqcheck.Options{SimRounds: 2, MaxConflicts: 5, RetryUnknown: 20, NoLearn: tc.noLearn}
			r := eqcheck.CheckLits(g, left, right, opt)
			if r.Verdict != eqcheck.Equivalent {
				t.Fatalf("ladder did not finish the proof: %+v", r)
			}
			if r.Stats.Retries < 1 {
				t.Fatalf("Retries = %d, want >= 1 (budget 5 must not suffice)", r.Stats.Retries)
			}
			if r.Stats.Encodings != 1 {
				t.Fatalf("Encodings = %d across %d retries, want exactly 1", r.Stats.Encodings, r.Stats.Retries)
			}
		})
	}
}

// TestBudgetInclusiveThroughOptions checks the exported face of the
// off-by-one fix: an undecided query consumed its budget exactly — not
// budget+1 conflicts as before.
func TestBudgetInclusiveThroughOptions(t *testing.T) {
	for _, tc := range []struct {
		name    string
		noLearn bool
	}{{"cdcl", false}, {"dpll", true}} {
		t.Run(tc.name, func(t *testing.T) {
			g, left, right := wideXorMiter()
			opt := eqcheck.Options{SimRounds: 2, MaxConflicts: 5, NoLearn: tc.noLearn}
			r := eqcheck.CheckLits(g, left, right, opt)
			if r.Verdict != eqcheck.Unknown {
				t.Fatalf("budget 5 decided the wide-XOR miter: %+v", r)
			}
			if r.Stats.Conflicts != 5 {
				t.Fatalf("Conflicts = %d under budget 5, want exactly 5", r.Stats.Conflicts)
			}
		})
	}
}

// TestSolveUnderMatchesFreshSolvers sweeps one cone under every control
// assignment on a single warm solver and checks each verdict against a fresh
// solver given the same assumptions: incremental state must never change an
// answer.
func TestSolveUnderMatchesFreshSolvers(t *testing.T) {
	g := aig.New()
	a, b := g.Input("a"), g.Input("b")
	s0, s1 := g.Input("s0"), g.Input("s1")
	andAB, orAB := g.And(a, b), g.Or(a, b)
	f := g.Or(g.And(s0, andAB), g.And(s0.Not(), orAB))
	h := g.Or(g.And(s1, orAB), g.And(s1.Not(), andAB))
	goal := g.Xor(f, h)

	opt := eqcheck.Options{SimRounds: -1}
	warm := eqcheck.NewSolver(g, opt)
	vecs := [][]aig.Lit{
		{s0, s1},             // and vs or: differ
		{s0, s1.Not()},       // and vs and: identical
		{s0.Not(), s1},       // or vs or: identical
		{s0.Not(), s1.Not()}, // or vs and: differ
		nil,                  // free controls: satisfiable
	}
	for i, as := range vecs {
		rw := warm.SolveUnder(goal, as)
		rf := eqcheck.NewSolver(g, opt).SolveUnder(goal, as)
		if rw.Status != rf.Status {
			t.Fatalf("vector %d: warm=%v fresh=%v", i, rw.Status, rf.Status)
		}
		wantEnc := 0
		if i == 0 {
			wantEnc = 1 // the union cone is encoded on the first query only
		}
		if rw.Stats.Encodings != wantEnc {
			t.Errorf("vector %d: warm Encodings = %d, want %d", i, rw.Stats.Encodings, wantEnc)
		}
		if rw.Stats.AssumptionSolves != 1 {
			t.Errorf("vector %d: AssumptionSolves = %d, want 1", i, rw.Stats.AssumptionSolves)
		}
		if rw.Status != eqcheck.Sat {
			continue
		}
		// A model must satisfy the goal AND every assumption.
		assign := make([]bool, g.NumInputs())
		for name, v := range rw.Model {
			l, ok := g.InputByName(name)
			if !ok {
				t.Fatalf("model names unknown input %q", name)
			}
			assign[inputIndexOf(t, g, l)] = v
		}
		if !g.EvalBool(assign, goal) {
			t.Errorf("vector %d: model %v does not satisfy the goal", i, rw.Model)
		}
		for _, al := range as {
			if !g.EvalBool(assign, al) {
				t.Errorf("vector %d: model %v violates an assumption", i, rw.Model)
			}
		}
	}
}

// TestCheckLitsUnderControl proves equivalence under one control assignment
// and refutes it under the opposite one, on the same warm solver; the
// counterexample must respect the assumption it was found under.
func TestCheckLitsUnderControl(t *testing.T) {
	g := aig.New()
	a, b, s0 := g.Input("a"), g.Input("b"), g.Input("s0")
	andAB, orAB := g.And(a, b), g.Or(a, b)
	f := g.Or(g.And(s0, andAB), g.And(s0.Not(), orAB))

	solver := eqcheck.NewSolver(g, eqcheck.Options{SimRounds: -1})
	if r := solver.CheckLitsUnder(f, andAB, []aig.Lit{s0}); r.Verdict != eqcheck.Equivalent {
		t.Fatalf("f|s0 vs a∧b: %+v", r)
	}
	r := solver.CheckLitsUnder(f, andAB, []aig.Lit{s0.Not()})
	if r.Verdict != eqcheck.NotEquivalent {
		t.Fatalf("f|¬s0 vs a∧b not refuted: %+v", r)
	}
	assign := make([]bool, g.NumInputs())
	for name, v := range r.Cex {
		l, ok := g.InputByName(name)
		if !ok {
			t.Fatalf("cex names unknown input %q", name)
		}
		assign[inputIndexOf(t, g, l)] = v
	}
	if !g.EvalBool(assign, s0.Not()) {
		t.Fatalf("cex %v violates the assumption ¬s0 it was found under", r.Cex)
	}
	if g.EvalBool(assign, f) == g.EvalBool(assign, andAB) {
		t.Fatalf("cex %v does not distinguish the sides", r.Cex)
	}
}

// TestCancelledBetweenRetries pins the in-query cancellation point: a
// cancelled context stops the retry ladder before the first escalation, with
// the dedicated "cancelled" stage and no retries charged.
func TestCancelledBetweenRetries(t *testing.T) {
	for _, tc := range []struct {
		name    string
		noLearn bool
	}{{"cdcl", false}, {"dpll", true}} {
		t.Run(tc.name, func(t *testing.T) {
			g, left, right := wideXorMiter()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			opt := eqcheck.Options{SimRounds: 2, MaxConflicts: 5, RetryUnknown: 20, Context: ctx, NoLearn: tc.noLearn}
			r := eqcheck.CheckLits(g, left, right, opt)
			if r.Verdict != eqcheck.Unknown || r.Stage != "cancelled" {
				t.Fatalf("verdict=%v stage=%q, want unknown/cancelled", r.Verdict, r.Stage)
			}
			if r.Stats.Retries != 0 {
				t.Fatalf("Retries = %d after cancellation, want 0", r.Stats.Retries)
			}
		})
	}
}

// TestWarmSolverSecondQueryFree re-proves an already-encoded miter: the warm
// solver must answer from its existing clause database without a second
// encoding pass.
func TestWarmSolverSecondQueryFree(t *testing.T) {
	g := aig.New()
	a, b, c := g.Input("a"), g.Input("b"), g.Input("c")
	maj1 := g.Or(g.Or(g.And(a, b), g.And(a, c)), g.And(b, c))
	maj2 := g.Or(g.And(a, g.Or(b, c)), g.And(b, c))
	solver := eqcheck.NewSolver(g, eqcheck.Options{SimRounds: -1})

	r1 := solver.CheckLits(maj1, maj2)
	if r1.Verdict != eqcheck.Equivalent || r1.Stage != "sat" {
		t.Fatalf("first proof: %+v", r1)
	}
	if r1.Stats.Encodings != 1 {
		t.Fatalf("first proof Encodings = %d, want 1", r1.Stats.Encodings)
	}
	r2 := solver.CheckLits(maj1, maj2)
	if r2.Verdict != eqcheck.Equivalent {
		t.Fatalf("second proof: %+v", r2)
	}
	if r2.Stats.Encodings != 0 {
		t.Fatalf("second proof Encodings = %d, want 0 (cone already encoded)", r2.Stats.Encodings)
	}
}

// TestObserverCountsNewCounters checks the four counters added for the CDCL
// engine flow through the observer and match the per-query stats.
func TestObserverCountsNewCounters(t *testing.T) {
	g, left, right := wideXorMiter()
	rec := obs.New()
	opt := eqcheck.Options{SimRounds: 2, MaxConflicts: 5, RetryUnknown: 20, Observer: rec}
	r := eqcheck.CheckLits(g, left, right, opt)
	if r.Verdict != eqcheck.Equivalent {
		t.Fatalf("ladder did not finish the proof: %+v", r)
	}
	if r.Stats.LearnedClauses == 0 {
		t.Error("CDCL proof learned no clauses")
	}
	if r.Stats.AssumptionSolves != r.Stats.Retries+1 {
		t.Errorf("AssumptionSolves = %d, want retries+1 = %d", r.Stats.AssumptionSolves, r.Stats.Retries+1)
	}
	for _, c := range []struct {
		ctr  obs.Counter
		want int
	}{
		{obs.CtrSATLearned, r.Stats.LearnedClauses},
		{obs.CtrSATRestarts, r.Stats.Restarts},
		{obs.CtrSATAssumpSolves, r.Stats.AssumptionSolves},
		{obs.CtrSATModelsRejected, 0},
	} {
		if got := rec.Count(c.ctr); got != int64(c.want) {
			t.Errorf("counter %v = %d, want %d", c.ctr, got, c.want)
		}
	}
}

// TestStatsJSONFieldNames guards the report schema: the new Stats fields
// must keep their snake_case wire names.
func TestStatsJSONFieldNames(t *testing.T) {
	raw, err := json.Marshal(eqcheck.Stats{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"encodings", "learned_clauses", "restarts", "assumption_solves", "models_rejected",
	} {
		if !strings.Contains(string(raw), `"`+key+`"`) {
			t.Errorf("Stats JSON missing field %q: %s", key, raw)
		}
	}
}
