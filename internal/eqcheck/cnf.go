package eqcheck

// cnf.go: Tseitin encoding of an AIG cone into the DPLL solver. Only the
// transitive fanin cone of the query literal is encoded — the surrounding
// shared AIG (which may hold many unrelated cones) costs nothing.

import "gatewords/internal/aig"

// tseitin encodes the fanin cone of root into a fresh solver and asserts root
// true. It returns the solver and the AIG-node → CNF-variable mapping (used
// to read input values back out of a model). Each AND node v = a ∧ b becomes
// the three clauses (¬v∨a), (¬v∨b), (v∨¬a∨¬b); the constant node, when
// reachable, gets a unit clause forcing it false; input nodes stay free.
func tseitin(g *aig.AIG, root aig.Lit, maxConflicts int) (*dpll, map[int]int) {
	cone := g.ConeNodes(root)
	varOf := make(map[int]int, len(cone))
	for i, n := range cone {
		varOf[n] = i
	}
	s := newDPLL(len(cone), maxConflicts)
	cnfLit := func(l aig.Lit) intLit {
		v := varOf[l.Node()]
		if l.Negated() {
			return negLit(v)
		}
		return posLit(v)
	}
	for _, n := range cone {
		if f0, f1, ok := g.IsAnd(n); ok {
			v := posLit(varOf[n])
			a, b := cnfLit(f0), cnfLit(f1)
			s.addClause(litNot(v), a)
			s.addClause(litNot(v), b)
			s.addClause(v, litNot(a), litNot(b))
		} else if n == 0 {
			s.addClause(negLit(varOf[n]))
		}
	}
	s.addClause(cnfLit(root))
	return s, varOf
}
