package eqcheck

// cnf.go: Tseitin encoding of AIG cones into the SAT engines. Only the
// transitive fanin cone of the query literals is encoded — the surrounding
// shared AIG (which may hold many unrelated cones) costs nothing. Each AND
// node v = a ∧ b becomes the three clauses (¬v∨a), (¬v∨b), (v∨¬a∨¬b); the
// constant node, when reachable, gets a unit clause forcing it false; input
// nodes stay free.
//
// Two encoders share the clause shape:
//
//   - encoder feeds the incremental CDCL solver: cones are encoded on
//     demand and never twice, so a warm Solver that has proved one root pays
//     only the structural delta for the next, and queries are asserted as
//     assumptions instead of unit clauses (the clause database stays valid
//     across queries).
//   - tseitinAll builds a fresh DPLL instance per query for the -no-learn
//     escape hatch, asserting every goal literal as a unit clause. The
//     encoding is budget-independent, so retry-ladder escalations reuse it
//     via dpll.reset instead of re-encoding.

import "gatewords/internal/aig"

// encoder incrementally Tseitin-encodes AIG cones into a CDCL solver.
type encoder struct {
	g     *aig.AIG
	s     *cdcl
	varOf map[int]int // AIG node -> CNF variable
}

func newEncoder(g *aig.AIG, s *cdcl) *encoder {
	return &encoder{g: g, s: s, varOf: make(map[int]int)}
}

// lit maps an AIG literal over an encoded node to its CNF literal.
func (e *encoder) lit(l aig.Lit) intLit {
	v := e.varOf[l.Node()]
	if l.Negated() {
		return negLit(v)
	}
	return posLit(v)
}

// ensure encodes the fanin cones of the given literals, skipping every node
// already encoded. A node's presence in varOf implies its whole fanin cone
// is present (nodes are only ever introduced by a cone walk that includes
// their ancestors), so re-proving a cone already seen is free. It reports
// whether any new node was encoded.
func (e *encoder) ensure(roots ...aig.Lit) bool {
	missing := roots[:0:0]
	for _, r := range roots {
		if _, ok := e.varOf[r.Node()]; !ok {
			missing = append(missing, r)
		}
	}
	if len(missing) == 0 {
		return false
	}
	cone := e.g.ConeNodes(missing...)
	fresh := make([]int, 0, len(cone))
	for _, n := range cone {
		if _, ok := e.varOf[n]; !ok {
			e.varOf[n] = e.s.newVar()
			fresh = append(fresh, n)
		}
	}
	for _, n := range fresh {
		if f0, f1, ok := e.g.IsAnd(n); ok {
			v := posLit(e.varOf[n])
			a, b := e.lit(f0), e.lit(f1)
			e.s.addClause(litNot(v), a)
			e.s.addClause(litNot(v), b)
			e.s.addClause(v, litNot(a), litNot(b))
		} else if n == 0 {
			e.s.addClause(negLit(e.varOf[n]))
		}
	}
	return len(fresh) > 0
}

// tseitinAll encodes the union of the goals' fanin cones into a fresh DPLL
// solver and asserts every goal literal true (a query "goal[0] under
// assumptions goal[1:]" is one conjunction here — the legacy engine has no
// assumption interface). It returns the solver and the AIG-node →
// CNF-variable mapping used to read input values back out of a model.
func tseitinAll(g *aig.AIG, goals []aig.Lit, maxConflicts int) (*dpll, map[int]int) {
	cone := g.ConeNodes(goals...)
	varOf := make(map[int]int, len(cone))
	for i, n := range cone {
		varOf[n] = i
	}
	s := newDPLL(len(cone), maxConflicts)
	cnfLit := func(l aig.Lit) intLit {
		v := varOf[l.Node()]
		if l.Negated() {
			return negLit(v)
		}
		return posLit(v)
	}
	for _, n := range cone {
		if f0, f1, ok := g.IsAnd(n); ok {
			v := posLit(varOf[n])
			a, b := cnfLit(f0), cnfLit(f1)
			s.addClause(litNot(v), a)
			s.addClause(litNot(v), b)
			s.addClause(v, litNot(a), litNot(b))
		} else if n == 0 {
			s.addClause(negLit(varOf[n]))
		}
	}
	for _, l := range goals {
		s.addClause(cnfLit(l))
	}
	return s, varOf
}
