package eqcheck

// cdcl_test.go unit-tests the CDCL engine directly at the CNF level — the
// equivalence-pipeline tests in eqcheck_test.go cover it end to end — plus
// the matching budget contract of the legacy DPLL engine. Pigeonhole
// instances (PHP(n+1,n), classically UNSAT and hopeless for pure search at
// moderate n) exercise learning, restarts, and database reduction.

import (
	"testing"

	"gatewords/internal/aig"
)

// pigeonholeClauses returns the CNF of "pigeons pigeons fit into holes
// holes": every pigeon is placed, no two share a hole. Variable p*holes+h
// means pigeon p sits in hole h; the instance is UNSAT iff pigeons > holes.
func pigeonholeClauses(pigeons, holes int) (nVars int, cls [][]intLit) {
	v := func(p, h int) int { return p*holes + h }
	for p := 0; p < pigeons; p++ {
		c := make([]intLit, holes)
		for h := 0; h < holes; h++ {
			c[h] = posLit(v(p, h))
		}
		cls = append(cls, c)
	}
	for h := 0; h < holes; h++ {
		for p := 0; p < pigeons; p++ {
			for q := p + 1; q < pigeons; q++ {
				cls = append(cls, []intLit{negLit(v(p, h)), negLit(v(q, h))})
			}
		}
	}
	return pigeons * holes, cls
}

func cdclFor(nVars int, cls [][]intLit, lubyBase int) *cdcl {
	s := newCDCL(lubyBase)
	for i := 0; i < nVars; i++ {
		s.newVar()
	}
	for _, c := range cls {
		s.addClause(c...)
	}
	return s
}

func dpllFor(nVars int, cls [][]intLit, maxConflicts int) *dpll {
	s := newDPLL(nVars, maxConflicts)
	for _, c := range cls {
		s.addClause(c...)
	}
	return s
}

func TestCDCLBasicSatUnsat(t *testing.T) {
	s := newCDCL(DefaultRestartBase)
	a, b := s.newVar(), s.newVar()
	s.addClause(posLit(a), posLit(b))
	s.addClause(negLit(a), posLit(b))
	if st := s.solveUnder(nil, -1); st != statusSat {
		t.Fatalf("solve = %v, want sat", st)
	}
	if !s.modelValue(b) {
		t.Fatal("model violates (a∨b)∧(¬a∨b): b must be true")
	}
	// The same warm solver under the contradicting assumption, then again
	// without it: assumption unsatisfiability must not poison the instance.
	if st := s.solveUnder([]intLit{negLit(b)}, -1); st != statusUnsat {
		t.Fatalf("solve under ¬b = %v, want unsat", st)
	}
	if s.unsat {
		t.Fatal("assumption conflict marked the instance globally unsat")
	}
	if st := s.solveUnder(nil, -1); st != statusSat {
		t.Fatal("warm solver no longer sat after an unsat assumption solve")
	}
}

func TestCDCLAssumptionsIncremental(t *testing.T) {
	// Implication chain x0→x1→…→x5 on one warm solver.
	const n = 6
	s := newCDCL(DefaultRestartBase)
	x := make([]int, n)
	for i := range x {
		x[i] = s.newVar()
	}
	for i := 0; i+1 < n; i++ {
		s.addClause(negLit(x[i]), posLit(x[i+1]))
	}
	if st := s.solveUnder([]intLit{posLit(x[0]), negLit(x[n-1])}, -1); st != statusUnsat {
		t.Fatal("x0 ∧ ¬x5 not refuted through the chain")
	}
	if st := s.solveUnder([]intLit{posLit(x[0])}, -1); st != statusSat {
		t.Fatal("x0 alone not satisfiable")
	}
	for i := range x {
		if !s.modelValue(x[i]) {
			t.Fatalf("x%d false in a model under x0: chain not propagated", i)
		}
	}
	if st := s.solveUnder([]intLit{negLit(x[0])}, -1); st != statusSat {
		t.Fatal("¬x0 not satisfiable")
	}
	if s.modelValue(x[0]) {
		t.Fatal("model contradicts the assumption ¬x0")
	}
}

func TestCDCLPigeonholeUnsat(t *testing.T) {
	nVars, cls := pigeonholeClauses(6, 5)
	s := cdclFor(nVars, cls, 8) // small restart base: force restarts
	if st := s.solveUnder(nil, -1); st != statusUnsat {
		t.Fatalf("PHP(6,5) = %v, want unsat", st)
	}
	if s.stats.learned == 0 {
		t.Error("UNSAT proof of PHP(6,5) learned no clauses")
	}
	if s.stats.restarts == 0 {
		t.Error("no restart fired despite base 8 on a pigeonhole instance")
	}
}

// TestCDCLReduceDBSoundness forces learned-clause reduction at nearly every
// restart (cap 1, restart base 1) and checks the proof still lands: deleting
// low-activity learnt clauses must never delete soundness.
func TestCDCLReduceDBSoundness(t *testing.T) {
	nVars, cls := pigeonholeClauses(6, 5)
	s := cdclFor(nVars, cls, 1)
	s.maxLearnts = 1
	if st := s.solveUnder(nil, -1); st != statusUnsat {
		t.Fatalf("PHP(6,5) under aggressive reduceDB = %v, want unsat", st)
	}
}

// TestCDCLBudgetInclusive pins the off-by-one fix: a budget of N resolves at
// most N conflicts — exactly N when the instance needs more — and a budget of
// 0 performs no search at all. The exhausted solver then escalates warm.
func TestCDCLBudgetInclusive(t *testing.T) {
	nVars, cls := pigeonholeClauses(8, 7)
	s := cdclFor(nVars, cls, DefaultRestartBase)

	if st := s.solveUnder(nil, 0); st != statusUnknown {
		t.Fatalf("budget 0 = %v, want unknown", st)
	}
	if s.stats.conflicts != 0 {
		t.Fatalf("budget 0 resolved %d conflicts, want 0", s.stats.conflicts)
	}

	if st := s.solveUnder(nil, 10); st != statusUnknown {
		t.Fatalf("budget 10 = %v, want unknown", st)
	}
	if s.stats.conflicts != 10 {
		t.Fatalf("budget 10 resolved %d conflicts, want exactly 10", s.stats.conflicts)
	}

	// Unlimited retry on the same warm solver: the 10 conflicts above stay
	// learned, and the proof completes.
	if st := s.solveUnder(nil, -1); st != statusUnsat {
		t.Fatal("warm escalation failed to prove PHP(8,7)")
	}
}

// TestDPLLBudgetInclusive is the same budget contract on the legacy engine.
func TestDPLLBudgetInclusive(t *testing.T) {
	nVars, cls := pigeonholeClauses(6, 5)

	s := dpllFor(nVars, cls, 0)
	if st := s.solve(); st != statusUnknown {
		t.Fatalf("budget 0 = %v, want unknown", st)
	}
	if s.stats.Conflicts != 0 {
		t.Fatalf("budget 0 resolved %d conflicts, want 0", s.stats.Conflicts)
	}

	s = dpllFor(nVars, cls, 10)
	if st := s.solve(); st != statusUnknown {
		t.Fatalf("budget 10 = %v, want unknown", st)
	}
	if s.stats.Conflicts != 10 {
		t.Fatalf("budget 10 resolved %d conflicts, want exactly 10", s.stats.Conflicts)
	}

	// reset is the retry-ladder primitive: same clause database, new budget.
	s.reset(-1)
	if st := s.solve(); st != statusUnsat {
		t.Fatal("reset + unlimited budget failed to prove PHP(6,5)")
	}
}

// TestCDCLAgreesWithDPLL cross-checks the engines on every pigeonhole shape
// around the SAT/UNSAT boundary.
func TestCDCLAgreesWithDPLL(t *testing.T) {
	for holes := 1; holes <= 4; holes++ {
		for pigeons := holes; pigeons <= holes+1; pigeons++ {
			nVars, cls := pigeonholeClauses(pigeons, holes)
			c := cdclFor(nVars, cls, 4)
			d := dpllFor(nVars, cls, -1)
			got, want := c.solveUnder(nil, -1), d.solve()
			if got != want {
				t.Errorf("PHP(%d,%d): cdcl=%v dpll=%v", pigeons, holes, got, want)
			}
		}
	}
}

func TestLubySequence(t *testing.T) {
	want := []int{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(i + 1); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

// TestModelVerificationRejectsCorruptModel drives the re-simulation guard
// directly: a model corrupted after the solve must be rejected rather than
// surface as a counterexample (the caller then counts Stats.ModelsRejected
// and degrades to Unknown).
func TestModelVerificationRejectsCorruptModel(t *testing.T) {
	g := aig.New()
	a, b := g.Input("a"), g.Input("b")
	goal := g.And(a, b)
	s := NewSolver(g, Options{SimRounds: -1})
	if res := s.Solve(goal); res.Status != Sat {
		t.Fatalf("a∧b not sat: %+v", res)
	}
	if _, ok := s.modelFromCDCL([]aig.Lit{goal}); !ok {
		t.Fatal("genuine model rejected")
	}
	for i := range s.sat.model {
		s.sat.model[i] = -1 // force every CNF variable false: a∧b now fails
	}
	if _, ok := s.modelFromCDCL([]aig.Lit{goal}); ok {
		t.Fatal("corrupted model passed re-simulation")
	}
}
