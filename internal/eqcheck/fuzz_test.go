package eqcheck_test

import (
	"bytes"
	"testing"

	"gatewords/internal/eqcheck"
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// byteSource deals bytes from the fuzz input, repeating 0 when exhausted.
type byteSource struct {
	data []byte
	pos  int
}

func (b *byteSource) next() byte {
	if b.pos >= len(b.data) {
		return 0
	}
	v := b.data[b.pos]
	b.pos++
	return v
}

func (b *byteSource) pick(n int) int {
	if n <= 0 {
		return 0
	}
	return int(b.next()) % n
}

var fuzzKinds = []logic.Kind{
	logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor,
	logic.Not, logic.Buf, logic.Mux2, logic.Aoi21, logic.Oai21,
}

// fuzzNetlist builds a small acyclic netlist from the byte stream: gate
// inputs are drawn only from already-driven nets, DFFs included.
func fuzzNetlist(src *byteSource) *netlist.Netlist {
	nl := netlist.New("fuzz")
	var pool []netlist.NetID
	nPIs := 2 + src.pick(4)
	for i := 0; i < nPIs; i++ {
		id := nl.MustNet("i" + string(rune('0'+i)))
		nl.MarkPI(id)
		pool = append(pool, id)
	}
	nGates := 1 + src.pick(14)
	for i := 0; i < nGates; i++ {
		out := nl.MustNet("n" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		name := "g" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if src.pick(8) == 0 {
			nl.MustGate(name, logic.DFF, out, pool[src.pick(len(pool))])
		} else {
			k := fuzzKinds[src.pick(len(fuzzKinds))]
			arity := 2
			if n, fixed := k.FixedArity(); fixed {
				arity = n
			} else {
				arity = 2 + src.pick(3)
			}
			ins := make([]netlist.NetID, arity)
			for j := range ins {
				ins[j] = pool[src.pick(len(pool))]
			}
			nl.MustGate(name, k, out, ins...)
		}
		pool = append(pool, out)
	}
	// Observe the last few driven nets.
	nPOs := 1 + src.pick(3)
	for i := 0; i < nPOs && i < len(pool); i++ {
		nl.MarkPO(pool[len(pool)-1-i])
	}
	return nl
}

// mutate applies one semantics-preserving-or-not edit to a random gate:
// either swaps two inputs or flips the kind to its dual. Both keep the
// netlist structurally valid and acyclic.
func mutate(nl *netlist.Netlist, src *byteSource) bool {
	if nl.GateCount() == 0 {
		return false
	}
	g := nl.Gate(netlist.GateID(src.pick(nl.GateCount())))
	if g.Kind == logic.DFF {
		return false
	}
	if src.pick(2) == 0 && len(g.Inputs) >= 2 {
		i, j := src.pick(len(g.Inputs)), src.pick(len(g.Inputs))
		if i == j {
			j = (j + 1) % len(g.Inputs)
		}
		g.Inputs[i], g.Inputs[j] = g.Inputs[j], g.Inputs[i]
		return true
	}
	duals := map[logic.Kind]logic.Kind{
		logic.And: logic.Nand, logic.Nand: logic.And,
		logic.Or: logic.Nor, logic.Nor: logic.Or,
		logic.Xor: logic.Xnor, logic.Xnor: logic.Xor,
		logic.Not: logic.Buf, logic.Buf: logic.Not,
	}
	if d, ok := duals[g.Kind]; ok {
		g.Kind = d
		return true
	}
	return false
}

// FuzzEqcheck feeds random netlist pairs (a generated netlist against a
// possibly-mutated clone) through CheckNetlists and checks the checker's own
// contract: no panics, verdicts stable across a repeated run, an unmutated
// clone always proved equivalent, every refutation's counterexample
// replayable on the reference simulator, and the default CDCL engine agreeing
// with the independent legacy DPLL engine on every decided verdict.
func FuzzEqcheck(f *testing.F) {
	f.Add([]byte{3, 7, 1, 4, 1, 5, 9, 2, 6})
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{0xa5, 0x3c}, 12))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := &byteSource{data: data}
		na := fuzzNetlist(src)
		nb := na.Clone()
		mutated := src.pick(2) == 1 && mutate(nb, src)
		opt := eqcheck.Options{SimRounds: 4, MaxConflicts: 2000}
		res1, err := eqcheck.CheckNetlists(na, nb, nil, opt)
		if err != nil {
			t.Fatalf("CheckNetlists: %v", err)
		}
		res2, err := eqcheck.CheckNetlists(na, nb, nil, opt)
		if err != nil {
			t.Fatalf("CheckNetlists rerun: %v", err)
		}
		if len(res1.Outputs) != len(res2.Outputs) {
			t.Fatalf("output count changed across runs: %d vs %d", len(res1.Outputs), len(res2.Outputs))
		}
		for i := range res1.Outputs {
			if res1.Outputs[i].Result.Verdict != res2.Outputs[i].Result.Verdict {
				t.Fatalf("verdict for %q unstable: %v vs %v", res1.Outputs[i].Name,
					res1.Outputs[i].Result.Verdict, res2.Outputs[i].Result.Verdict)
			}
		}
		if !mutated && res1.Verdict() != eqcheck.Equivalent {
			t.Fatalf("identical clone not proved equivalent: %+v", res1.Outputs)
		}
		// Cross-check the engines: the non-learning DPLL is an independent
		// implementation, so any decided disagreement is a solver bug. An
		// Unknown on either side is legitimate (the engines spend the budget
		// differently) and exempt.
		optDPLL := opt
		optDPLL.NoLearn = true
		res3, err := eqcheck.CheckNetlists(na, nb, nil, optDPLL)
		if err != nil {
			t.Fatalf("CheckNetlists (no-learn): %v", err)
		}
		for i := range res1.Outputs {
			v1, v3 := res1.Outputs[i].Result.Verdict, res3.Outputs[i].Result.Verdict
			if v1 != v3 && v1 != eqcheck.Unknown && v3 != eqcheck.Unknown {
				t.Fatalf("engines disagree on %q: cdcl=%v dpll=%v",
					res1.Outputs[i].Name, v1, v3)
			}
		}
		for _, oc := range res1.Outputs {
			if oc.Result.Verdict != eqcheck.NotEquivalent {
				continue
			}
			if oc.Cex == nil {
				t.Fatalf("refutation of %q without counterexample", oc.Name)
			}
			va := simulate(t, na, oc.Cex)
			vb := simulate(t, nb, oc.Cex)
			if va[oc.Name] == vb[oc.Name] {
				t.Fatalf("cex for %q does not replay: both sides %v under %v",
					oc.Name, va[oc.Name], oc.Cex)
			}
		}
	})
}
