// Package eqcheck implements combinational equivalence checking over the
// shared And-Inverter Graph of internal/aig. Two functions lowered into one
// AIG are compared by mitering them (XOR) and running a staged pipeline, each
// stage strictly cheaper than the next:
//
//  1. structural hashing — if the two literals are identical the AIG already
//     proved them equal during construction;
//  2. 64-bit-parallel random simulation — each round evaluates 64 input
//     patterns at once; any mismatching lane is extracted as a concrete
//     counterexample assignment;
//  3. Tseitin CNF + a small DPLL SAT solver — UNSAT of the miter proves
//     equivalence, SAT yields a counterexample, and a conflict budget turns
//     divergence into an explicit Unknown.
//
// The same pipeline answers plain satisfiability queries (Solve), which is
// what the NL4xx semantic lint rules are built on.
package eqcheck

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"gatewords/internal/aig"
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/obs"
)

// Verdict is the outcome of an equivalence check.
type Verdict uint8

const (
	// Equivalent: the two functions are proved equal on all inputs.
	Equivalent Verdict = iota
	// NotEquivalent: a concrete counterexample assignment distinguishes them.
	NotEquivalent
	// Unknown: the budget was exhausted before a proof or refutation.
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case Equivalent:
		return "equivalent"
	case NotEquivalent:
		return "not-equivalent"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("Verdict(%d)", uint8(v))
}

// Defaults for zero-valued Options fields.
const (
	DefaultSimRounds    = 32
	DefaultMaxConflicts = 20000
	defaultSeed         = 0x51ab_c0de_2015_dac1
	// DefaultRetryConflictCap bounds the escalating-retry ladder: 8× the
	// default conflict budget, reached after three doublings.
	DefaultRetryConflictCap = 8 * DefaultMaxConflicts
)

// Options tunes the staged pipeline. The zero value uses the defaults;
// negative SimRounds or MaxConflicts disable that stage entirely.
type Options struct {
	// SimRounds is the number of 64-pattern random-simulation rounds run
	// before falling back to SAT. 0 means DefaultSimRounds; negative skips
	// simulation.
	SimRounds int
	// Seed seeds the deterministic pattern generator. 0 selects a fixed
	// default, so results are reproducible unless a seed is given.
	Seed uint64
	// MaxConflicts bounds the DPLL search; exceeding it yields Unknown.
	// 0 means DefaultMaxConflicts; negative skips the SAT stage.
	MaxConflicts int
	// RetryUnknown is the depth of the escalating-retry ladder: a SAT stage
	// that exhausts its conflict budget (Unknown) is rerun up to RetryUnknown
	// more times with the budget doubled each attempt, capped at
	// RetryConflictCap. 0 disables retries; retries never fire on decided
	// (Sat/Unsat) verdicts, so enabling the ladder only spends effort where
	// the answer was otherwise lost.
	RetryUnknown int
	// RetryConflictCap caps the escalated conflict budget (0 means
	// DefaultRetryConflictCap). Once the cap is reached, a remaining Unknown
	// is final.
	RetryConflictCap int
	// Observer, when non-nil, accumulates each query's work — simulation
	// rounds and the SAT budget actually consumed (decisions, propagations,
	// conflicts) — into the recorder (see internal/obs). Nil costs nothing.
	Observer *obs.Recorder
	// Context, when non-nil, is polled between queries by the multi-query
	// drivers (CheckNetlists, reduce.VerifyCones): once it is cancelled, the
	// remaining queries resolve to Unknown with Stage "cancelled" instead of
	// running, so a deadline yields a strict prefix of decided results. A
	// single in-flight query is not interrupted.
	Context context.Context
}

// cancelled reports whether the options' context has been cancelled.
func (o Options) cancelled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

// Cancelled is the exported form of the poll, for drivers outside the
// package (reduce.VerifyCones) that loop over per-unit queries.
func (o Options) Cancelled() bool { return o.cancelled() }

// CancelledResult is the verdict recorded for a query skipped after
// cancellation.
func CancelledResult() Result { return Result{Verdict: Unknown, Stage: "cancelled"} }

func (o Options) simRounds() int {
	switch {
	case o.SimRounds < 0:
		return 0
	case o.SimRounds == 0:
		return DefaultSimRounds
	}
	return o.SimRounds
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return defaultSeed
	}
	return o.Seed
}

func (o Options) satEnabled() bool { return o.MaxConflicts >= 0 }

func (o Options) maxConflicts() int {
	if o.MaxConflicts == 0 {
		return DefaultMaxConflicts
	}
	return o.MaxConflicts
}

func (o Options) retryCap() int {
	if o.RetryConflictCap <= 0 {
		return DefaultRetryConflictCap
	}
	return o.RetryConflictCap
}

// Stats reports the work each stage performed. Decisions, Propagations, and
// Conflicts accumulate across retry-ladder attempts; Retries counts the
// escalations taken (0 on a first-attempt decision).
type Stats struct {
	SimRounds    int `json:"sim_rounds"`
	Vars         int `json:"vars"`
	Clauses      int `json:"clauses"`
	Decisions    int `json:"decisions"`
	Propagations int `json:"propagations"`
	Conflicts    int `json:"conflicts"`
	Retries      int `json:"retries"`
}

// Result is the outcome of one literal-pair (or one output-pair) check.
type Result struct {
	Verdict Verdict
	// Stage names the pipeline stage that decided: "strash", "sim" or "sat".
	// For Unknown it names the stage whose budget ran out.
	Stage string
	// Cex, set when NotEquivalent, assigns the miter's support inputs (by
	// AIG input name) so the two functions differ.
	Cex   map[string]bool
	Stats Stats
}

// SolveStatus is the outcome of a satisfiability query.
type SolveStatus uint8

const (
	// Sat: a model was found.
	Sat SolveStatus = iota
	// Unsat: the literal is proved constant-false.
	Unsat
	// SolveUnknown: budget exhausted.
	SolveUnknown
)

func (s SolveStatus) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	case SolveUnknown:
		return "unknown"
	}
	return fmt.Sprintf("SolveStatus(%d)", uint8(s))
}

// SolveResult is the outcome of Solve.
type SolveResult struct {
	Status SolveStatus
	// Model, set when Sat, assigns the literal's support inputs by name.
	Model map[string]bool
	Stage string
	Stats Stats
}

// splitmix64 is the deterministic pattern generator for the simulation stage.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Solve decides satisfiability of literal l in g: it looks for an input
// assignment making l true. It runs the same staged pipeline as the
// equivalence check (constant fold → random simulation, which can only answer
// Sat → SAT solver). Each query's stage work reports into opt.Observer.
func Solve(g *aig.AIG, l aig.Lit, opt Options) SolveResult {
	sr := solveStaged(g, l, opt)
	if rec := opt.Observer; rec != nil {
		rec.Add(obs.CtrEqChecks, 1)
		rec.Add(obs.CtrSimRounds, int64(sr.Stats.SimRounds))
		rec.Add(obs.CtrSATDecisions, int64(sr.Stats.Decisions))
		rec.Add(obs.CtrSATPropagations, int64(sr.Stats.Propagations))
		rec.Add(obs.CtrSATConflicts, int64(sr.Stats.Conflicts))
		rec.Add(obs.CtrSATRetries, int64(sr.Stats.Retries))
	}
	return sr
}

func solveStaged(g *aig.AIG, l aig.Lit, opt Options) SolveResult {
	switch l {
	case aig.False:
		return SolveResult{Status: Unsat, Stage: "strash"}
	case aig.True:
		return SolveResult{Status: Sat, Model: map[string]bool{}, Stage: "strash"}
	}
	var st Stats

	// Stage 2: 64-bit-parallel random simulation.
	if rounds := opt.simRounds(); rounds > 0 {
		rng := splitmix64{s: opt.seed()}
		words := make([]uint64, g.NumInputs())
		var vals []uint64
		for r := 0; r < rounds; r++ {
			for i := range words {
				words[i] = rng.next()
			}
			if r == 0 && len(words) > 0 {
				// Make the first round's lanes 0 and 63 the all-zero and
				// all-one assignments: cheap catches for constant-ish cones
				// and deterministic counterexamples on trivial miters.
				for i := range words {
					words[i] = words[i]&^uint64(1) | 1<<63
				}
			}
			vals = g.Sim64(words, vals)
			st.SimRounds = r + 1
			if w := aig.Word(vals, l); w != 0 {
				lane := uint(bits.TrailingZeros64(w))
				return SolveResult{
					Status: Sat,
					Model:  modelFromWords(g, l, words, lane),
					Stage:  "sim",
					Stats:  st,
				}
			}
		}
	}

	if !opt.satEnabled() {
		return SolveResult{Status: SolveUnknown, Stage: "sim", Stats: st}
	}

	// Stage 3: Tseitin CNF + DPLL, with the escalating-retry ladder: an
	// Unknown verdict (conflict budget exhausted) reruns the solve with the
	// budget doubled, up to RetryUnknown attempts or the RetryConflictCap,
	// whichever comes first. The solver is deterministic, so a rerun with a
	// larger budget strictly extends the exhausted search.
	budget := opt.maxConflicts()
	for attempt := 0; ; attempt++ {
		s, varOf := tseitin(g, l, budget)
		st.Vars = s.nVars
		st.Clauses = len(s.clauses) + len(s.units)
		status := s.solve()
		st.Decisions += s.stats.Decisions
		st.Propagations += s.stats.Propagations
		st.Conflicts += s.stats.Conflicts
		switch status {
		case statusUnsat:
			return SolveResult{Status: Unsat, Stage: "sat", Stats: st}
		case statusUnknown:
			next := budget * 2
			if hi := opt.retryCap(); next > hi {
				next = hi
			}
			if attempt >= opt.RetryUnknown || next <= budget {
				return SolveResult{Status: SolveUnknown, Stage: "sat", Stats: st}
			}
			st.Retries++
			budget = next
			continue
		}
		model, ok := modelFromSolver(g, l, s, varOf)
		if !ok {
			// The solver's model failed re-simulation: a solver bug. Degrade to
			// Unknown rather than report a bogus counterexample.
			return SolveResult{Status: SolveUnknown, Stage: "sat", Stats: st}
		}
		return SolveResult{Status: Sat, Model: model, Stage: "sat", Stats: st}
	}
}

// modelFromWords extracts the assignment of lane from the simulated words,
// restricted to l's support.
func modelFromWords(g *aig.AIG, l aig.Lit, words []uint64, lane uint) map[string]bool {
	model := make(map[string]bool)
	for _, i := range g.Support(l) {
		model[g.InputName(i)] = words[i]>>lane&1 == 1
	}
	return model
}

// modelFromSolver reads the input assignment out of a SAT model and verifies
// it against the AIG by simulation.
func modelFromSolver(g *aig.AIG, l aig.Lit, s *dpll, varOf map[int]int) (map[string]bool, bool) {
	model := make(map[string]bool)
	assign := make([]bool, g.NumInputs())
	for _, i := range g.Support(l) {
		n := g.InputLit(i).Node()
		v, ok := varOf[n]
		if !ok {
			continue // outside the encoded cone: value is irrelevant
		}
		b := s.modelValue(v)
		model[g.InputName(i)] = b
		assign[i] = b
	}
	if !g.EvalBool(assign, l) {
		return nil, false
	}
	return model, true
}

// CheckLits decides whether literals a and b of the shared AIG g compute the
// same function of the inputs. It may grow g (the miter XOR is built in
// place, reusing existing structure via hashing).
func CheckLits(g *aig.AIG, a, b aig.Lit, opt Options) Result {
	if a == b {
		return Result{Verdict: Equivalent, Stage: "strash"}
	}
	m := g.Xor(a, b)
	if m == aig.False {
		// The XOR folded away: equal by construction.
		return Result{Verdict: Equivalent, Stage: "strash"}
	}
	sr := Solve(g, m, opt)
	switch sr.Status {
	case Unsat:
		return Result{Verdict: Equivalent, Stage: sr.Stage, Stats: sr.Stats}
	case Sat:
		// The model covers the miter's support, which folding can shrink
		// below the sides' own supports (extreme case: a vs !a folds to a
		// constant-true miter with empty support). Complete the
		// counterexample over both sides with the same default the model
		// semantics uses for absent inputs: false.
		cex := sr.Model
		for _, side := range [2]aig.Lit{a, b} {
			for _, i := range g.Support(side) {
				if _, ok := cex[g.InputName(i)]; !ok {
					cex[g.InputName(i)] = false
				}
			}
		}
		return Result{Verdict: NotEquivalent, Stage: sr.Stage, Cex: cex, Stats: sr.Stats}
	}
	return Result{Verdict: Unknown, Stage: sr.Stage, Stats: sr.Stats}
}

// OutputCheck is the per-observable outcome of a netlist-level check.
type OutputCheck struct {
	// Name is the shared observable: a primary-output net name, or
	// aig.FFPrefix + gate name for a next-state function.
	Name string
	Result
}

// NetlistResult is the outcome of CheckNetlists.
type NetlistResult struct {
	// Outputs holds one check per shared observable, in A's declaration
	// order.
	Outputs []OutputCheck
	// OnlyInA / OnlyInB list observables present on one side only; they are
	// reported, not checked.
	OnlyInA, OnlyInB []string
}

// Verdict aggregates: NotEquivalent dominates, then Unknown, then Equivalent.
func (r *NetlistResult) Verdict() Verdict {
	v := Equivalent
	for _, oc := range r.Outputs {
		switch oc.Result.Verdict {
		case NotEquivalent:
			return NotEquivalent
		case Unknown:
			v = Unknown
		}
	}
	return v
}

// CheckNetlists compares two netlists observable-by-observable: primary
// outputs are matched by net name and next-state functions by flip-flop gate
// name, over a shared input space keyed by net name (primary inputs and
// flip-flop outputs). pin forces named nets to constants on both sides before
// lowering — the cofactor under a control assignment. The tie-off inputs
// created by reduce.Materialize ("$const0", "$const1") are always pinned to
// their values.
func CheckNetlists(na, nb *netlist.Netlist, pin map[string]logic.Value, opt Options) (*NetlistResult, error) {
	eff := make(map[string]logic.Value, len(pin)+2)
	eff["$const0"] = logic.Zero
	eff["$const1"] = logic.One
	for k, v := range pin {
		eff[k] = v
	}
	g := aig.New()
	fa, err := aig.AddFrame(g, na, eff)
	if err != nil {
		return nil, fmt.Errorf("eqcheck: lowering %s: %w", na.Name, err)
	}
	fb, err := aig.AddFrame(g, nb, eff)
	if err != nil {
		return nil, fmt.Errorf("eqcheck: lowering %s: %w", nb.Name, err)
	}
	res := &NetlistResult{}
	for _, name := range fa.OutputNames {
		lb, ok := fb.Outputs[name]
		if !ok {
			res.OnlyInA = append(res.OnlyInA, name)
			continue
		}
		// Deadline-bounded runs keep the output list complete and in order:
		// outputs past the cancellation point are Unknown/"cancelled", so a
		// partial result is a strict prefix of the full one.
		if opt.cancelled() {
			res.Outputs = append(res.Outputs, OutputCheck{Name: name, Result: CancelledResult()})
			continue
		}
		r := CheckLits(g, fa.Outputs[name], lb, opt)
		res.Outputs = append(res.Outputs, OutputCheck{Name: name, Result: r})
	}
	for _, name := range fb.OutputNames {
		if _, ok := fa.Outputs[name]; !ok {
			res.OnlyInB = append(res.OnlyInB, name)
		}
	}
	if len(res.Outputs) == 0 {
		return nil, errors.New("eqcheck: netlists share no observables (no matching output names or flip-flop names)")
	}
	return res, nil
}
