// Package eqcheck implements combinational equivalence checking over the
// shared And-Inverter Graph of internal/aig. Two functions lowered into one
// AIG are compared by mitering them (XOR) and running a staged pipeline, each
// stage strictly cheaper than the next:
//
//  1. structural hashing — if the two literals are identical the AIG already
//     proved them equal during construction;
//  2. 64-bit-parallel random simulation — each round evaluates 64 input
//     patterns at once; any mismatching lane is extracted as a concrete
//     counterexample assignment;
//  3. Tseitin CNF + an incremental CDCL SAT solver (clause learning, VSIDS
//     branching, Luby restarts; see cdcl.go) — UNSAT of the miter proves
//     equivalence, SAT yields a counterexample, and an inclusive conflict
//     budget turns divergence into an explicit Unknown. A budget-exhausted
//     query escalates through a retry ladder interleaved with fresh-seeded
//     simulation chunks (a deterministic sim/SAT portfolio), and each retry
//     is a warm re-search on the same solver with the budget doubled.
//
// The Solver type keeps the SAT engine warm across queries: cones are
// Tseitin-encoded once, queries are asserted as assumptions instead of unit
// clauses (Solver.SolveUnder), and learned clauses plus branching activities
// carry over — which is what makes re-proving many near-identical cones
// (reduce.VerifyCones) and re-proving one cone under many control
// assignments cheap. The package-level functions run the same pipeline on a
// transient solver. Options.NoLearn selects the legacy DPLL engine instead.
package eqcheck

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"gatewords/internal/aig"
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/obs"
)

// Verdict is the outcome of an equivalence check.
type Verdict uint8

const (
	// Equivalent: the two functions are proved equal on all inputs.
	Equivalent Verdict = iota
	// NotEquivalent: a concrete counterexample assignment distinguishes them.
	NotEquivalent
	// Unknown: the budget was exhausted before a proof or refutation.
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case Equivalent:
		return "equivalent"
	case NotEquivalent:
		return "not-equivalent"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("Verdict(%d)", uint8(v))
}

// Defaults for zero-valued Options fields.
const (
	DefaultSimRounds    = 32
	DefaultMaxConflicts = 20000
	defaultSeed         = 0x51ab_c0de_2015_dac1
	// DefaultRetryConflictCap bounds the escalating-retry ladder: 8× the
	// default conflict budget, reached after three doublings.
	DefaultRetryConflictCap = 8 * DefaultMaxConflicts
	// DefaultRestartBase is the CDCL Luby restart unit: the k-th restart
	// fires after luby(k)·base conflicts.
	DefaultRestartBase = 128
)

// Options tunes the staged pipeline. The zero value uses the defaults;
// negative SimRounds or MaxConflicts disable that stage entirely.
type Options struct {
	// SimRounds is the number of 64-pattern random-simulation rounds run
	// before falling back to SAT. 0 means DefaultSimRounds; negative skips
	// simulation.
	SimRounds int
	// Seed seeds the deterministic pattern generator. 0 selects a fixed
	// default, so results are reproducible unless a seed is given.
	Seed uint64
	// MaxConflicts bounds the SAT search in solver conflicts; exhausting it
	// yields Unknown. The bound is inclusive: at most MaxConflicts conflicts
	// are resolved, and the conflict that would exceed the budget aborts the
	// search unresolved (a budget of 0 at the engine level performs no
	// search at all). 0 here means DefaultMaxConflicts; negative skips the
	// SAT stage.
	MaxConflicts int
	// RetryUnknown is the depth of the escalating-retry ladder: a SAT stage
	// that exhausts its conflict budget (Unknown) is rerun up to RetryUnknown
	// more times with the budget doubled each attempt, capped at
	// RetryConflictCap. On the default CDCL engine a retry is a warm
	// re-search — the clause database, learned clauses, and branching
	// activities carry over, so escalation costs only the additional search.
	// Each escalation is preceded by a fresh-seeded simulation chunk (the
	// deterministic sim/SAT portfolio), which can short-circuit a refutation
	// the SAT search is struggling toward. 0 disables retries; retries never
	// fire on decided (Sat/Unsat) verdicts, so enabling the ladder only
	// spends effort where the answer was otherwise lost.
	RetryUnknown int
	// RetryConflictCap caps the escalated conflict budget (0 means
	// DefaultRetryConflictCap). Once the cap is reached, a remaining Unknown
	// is final.
	RetryConflictCap int
	// Restarts is the Luby restart base interval of the CDCL engine, in
	// conflicts. 0 means DefaultRestartBase; negative disables restarts.
	Restarts int
	// NoLearn selects the legacy DPLL engine (no clause learning, no
	// assumption interface — every query re-encodes its cone from scratch,
	// though retry-ladder escalations still reuse the encoding). It is the
	// escape hatch behind `gateeq -no-learn`, and the independent oracle the
	// fuzzer cross-checks the CDCL engine against. Verdicts are engine-
	// independent; only the work to reach them differs.
	NoLearn bool
	// Observer, when non-nil, accumulates each query's work — simulation
	// rounds and the SAT budget actually consumed (decisions, propagations,
	// conflicts, learned clauses, restarts, assumption solves) — into the
	// recorder (see internal/obs). Nil costs nothing.
	Observer *obs.Recorder
	// Context, when non-nil, is polled between queries by the multi-query
	// drivers (CheckNetlists, reduce.VerifyCones) and between assumption
	// solves inside the retry ladder: once it is cancelled, the remaining
	// work resolves to Unknown with Stage "cancelled" instead of running, so
	// a deadline yields a strict prefix of decided results. A single
	// in-flight SAT search is not interrupted.
	Context context.Context
}

// cancelled reports whether the options' context has been cancelled.
func (o Options) cancelled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

// Cancelled is the exported form of the poll, for drivers outside the
// package (reduce.VerifyCones) that loop over per-unit queries.
func (o Options) Cancelled() bool { return o.cancelled() }

// CancelledResult is the verdict recorded for a query skipped after
// cancellation.
func CancelledResult() Result { return Result{Verdict: Unknown, Stage: "cancelled"} }

func (o Options) simRounds() int {
	switch {
	case o.SimRounds < 0:
		return 0
	case o.SimRounds == 0:
		return DefaultSimRounds
	}
	return o.SimRounds
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return defaultSeed
	}
	return o.Seed
}

func (o Options) satEnabled() bool { return o.MaxConflicts >= 0 }

func (o Options) maxConflicts() int {
	if o.MaxConflicts == 0 {
		return DefaultMaxConflicts
	}
	return o.MaxConflicts
}

func (o Options) retryCap() int {
	if o.RetryConflictCap <= 0 {
		return DefaultRetryConflictCap
	}
	return o.RetryConflictCap
}

func (o Options) restartBase() int {
	switch {
	case o.Restarts < 0:
		return 0
	case o.Restarts == 0:
		return DefaultRestartBase
	}
	return o.Restarts
}

// Stats reports the work each stage performed. Decisions, Propagations, and
// Conflicts accumulate across retry-ladder attempts; Retries counts the
// escalations taken (0 on a first-attempt decision).
type Stats struct {
	SimRounds    int `json:"sim_rounds"`
	Vars         int `json:"vars"`
	Clauses      int `json:"clauses"`
	Decisions    int `json:"decisions"`
	Propagations int `json:"propagations"`
	Conflicts    int `json:"conflicts"`
	Retries      int `json:"retries"`
	// Encodings counts Tseitin encoding passes that built CNF for this
	// query. It is at most 1 per query: the encoding is budget-independent,
	// so retry-ladder escalations never re-encode, and a warm Solver that
	// has already encoded the cone reports 0.
	Encodings int `json:"encodings"`
	// LearnedClauses counts clauses the CDCL engine learned from conflicts
	// during this query (0 on the DPLL engine).
	LearnedClauses int `json:"learned_clauses"`
	// Restarts counts CDCL Luby restarts taken during this query.
	Restarts int `json:"restarts"`
	// AssumptionSolves counts incremental assumption solves issued to the
	// warm CDCL engine for this query (one per retry-ladder attempt).
	AssumptionSolves int `json:"assumption_solves"`
	// ModelsRejected counts SAT models that failed re-simulation against
	// the AIG. Every rejection is a solver bug surfaced as an explicit
	// Unknown instead of a bogus counterexample — on a healthy build this
	// is always 0, and the sat_models_rejected obs counter makes a non-zero
	// value visible in /metrics and -statsjson.
	ModelsRejected int `json:"models_rejected"`
}

// reportSolve accumulates one query's stats into the observer.
func reportSolve(rec *obs.Recorder, st Stats) {
	if rec == nil {
		return
	}
	rec.Add(obs.CtrEqChecks, 1)
	rec.Add(obs.CtrSimRounds, int64(st.SimRounds))
	rec.Add(obs.CtrSATDecisions, int64(st.Decisions))
	rec.Add(obs.CtrSATPropagations, int64(st.Propagations))
	rec.Add(obs.CtrSATConflicts, int64(st.Conflicts))
	rec.Add(obs.CtrSATRetries, int64(st.Retries))
	rec.Add(obs.CtrSATLearned, int64(st.LearnedClauses))
	rec.Add(obs.CtrSATRestarts, int64(st.Restarts))
	rec.Add(obs.CtrSATAssumpSolves, int64(st.AssumptionSolves))
	rec.Add(obs.CtrSATModelsRejected, int64(st.ModelsRejected))
}

// Result is the outcome of one literal-pair (or one output-pair) check.
type Result struct {
	Verdict Verdict
	// Stage names the pipeline stage that decided: "strash", "sim" or "sat".
	// For Unknown it names the stage whose budget ran out ("cancelled" for
	// queries skipped after Options.Context fired).
	Stage string
	// Cex, set when NotEquivalent, assigns the miter's support inputs (by
	// AIG input name) so the two functions differ.
	Cex   map[string]bool
	Stats Stats
}

// SolveStatus is the outcome of a satisfiability query.
type SolveStatus uint8

const (
	// Sat: a model was found.
	Sat SolveStatus = iota
	// Unsat: the literal is proved constant-false.
	Unsat
	// SolveUnknown: budget exhausted.
	SolveUnknown
)

func (s SolveStatus) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	case SolveUnknown:
		return "unknown"
	}
	return fmt.Sprintf("SolveStatus(%d)", uint8(s))
}

// SolveResult is the outcome of Solve.
type SolveResult struct {
	Status SolveStatus
	// Model, set when Sat, assigns the query's support inputs by name.
	Model map[string]bool
	Stage string
	Stats Stats
}

// splitmix64 is the deterministic pattern generator for the simulation stage.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Solver runs the staged pipeline over one shared AIG, keeping the SAT
// engine warm between queries: cones are Tseitin-encoded exactly once, each
// query is asserted as an assumption instead of a unit clause, and learned
// clauses plus branching activities persist — so proving N related cones, or
// one cone under N control assignments, costs one encoding and N cheap
// assumption solves. The AIG may keep growing between queries (CheckLits
// builds miters in place); the encoder picks up new structure on demand.
//
// A Solver is not goroutine-safe: give each worker its own (the shared AIG
// must then not be mutated concurrently either). The package-level Solve /
// CheckLits / CheckNetlists wrappers construct transient Solvers.
type Solver struct {
	g   *aig.AIG
	opt Options

	sat *cdcl    // lazily created on the first SAT-stage query
	enc *encoder // incremental Tseitin encoder into sat

	words, vals []uint64 // simulation scratch
}

// NewSolver returns a warm solver over g. The options are fixed for the
// solver's lifetime.
func NewSolver(g *aig.AIG, opt Options) *Solver {
	return &Solver{g: g, opt: opt}
}

// Solve decides satisfiability of literal l: it looks for an input
// assignment making l true.
func (s *Solver) Solve(l aig.Lit) SolveResult { return s.SolveUnder(l, nil) }

// SolveUnder decides satisfiability of l with every assumption literal held
// true. On the default engine the assumptions are passed to the CDCL solver
// as solver assumptions — nothing is re-encoded between calls that share
// cones, so sweeping one cone under many control assignments is the cheap
// path this solver is built for. Unsat means no model exists under these
// assumptions. Each query's stage work reports into Options.Observer.
func (s *Solver) SolveUnder(l aig.Lit, assumps []aig.Lit) SolveResult {
	sr := s.solveUnder(l, assumps)
	reportSolve(s.opt.Observer, sr.Stats)
	return sr
}

func (s *Solver) solveUnder(l aig.Lit, assumps []aig.Lit) SolveResult {
	// Stage 1: structural constants. A false goal refutes the query
	// outright; true goals drop out.
	goals := make([]aig.Lit, 0, 1+len(assumps))
	for i := -1; i < len(assumps); i++ {
		gl := l
		if i >= 0 {
			gl = assumps[i]
		}
		switch gl {
		case aig.False:
			return SolveResult{Status: Unsat, Stage: "strash"}
		case aig.True:
			continue
		}
		goals = append(goals, gl)
	}
	if len(goals) == 0 {
		return SolveResult{Status: Sat, Model: map[string]bool{}, Stage: "strash"}
	}

	var st Stats

	// Stage 2: 64-bit-parallel random simulation.
	if rounds := s.opt.simRounds(); rounds > 0 {
		if res, hit := s.simulate(goals, s.opt.seed(), rounds, &st); hit {
			return res
		}
	}

	if !s.opt.satEnabled() {
		return SolveResult{Status: SolveUnknown, Stage: "sim", Stats: st}
	}

	// Stage 3: SAT, through the escalating-retry ladder (see Options).
	if s.opt.NoLearn {
		return s.solveDPLL(goals, st)
	}
	return s.solveCDCL(goals, st)
}

// simulate runs rounds of 64-lane random simulation looking for a lane where
// every goal literal is true, extracting that lane as a model on a hit.
func (s *Solver) simulate(goals []aig.Lit, seed uint64, rounds int, st *Stats) (SolveResult, bool) {
	rng := splitmix64{s: seed}
	n := s.g.NumInputs()
	if cap(s.words) < n {
		s.words = make([]uint64, n)
	}
	words := s.words[:n]
	for r := 0; r < rounds; r++ {
		for i := range words {
			words[i] = rng.next()
		}
		if r == 0 && len(words) > 0 {
			// Make the first round's lanes 0 and 63 the all-zero and
			// all-one assignments: cheap catches for constant-ish cones
			// and deterministic counterexamples on trivial miters.
			for i := range words {
				words[i] = words[i]&^uint64(1) | 1<<63
			}
		}
		s.vals = s.g.Sim64(words, s.vals)
		st.SimRounds++
		w := ^uint64(0)
		for _, gl := range goals {
			w &= aig.Word(s.vals, gl)
		}
		if w != 0 {
			lane := uint(bits.TrailingZeros64(w))
			return SolveResult{
				Status: Sat,
				Model:  modelFromWords(s.g, goals, words, lane),
				Stage:  "sim",
				Stats:  *st,
			}, true
		}
	}
	return SolveResult{}, false
}

// solveCDCL runs the SAT ladder on the warm incremental engine: the goal
// cones are encoded (once, ever), the goals become solver assumptions, and a
// retry is another assumption solve with a doubled budget on the same clause
// database.
func (s *Solver) solveCDCL(goals []aig.Lit, st Stats) SolveResult {
	if s.sat == nil {
		s.sat = newCDCL(s.opt.restartBase())
		s.enc = newEncoder(s.g, s.sat)
	}
	if s.enc.ensure(goals...) {
		st.Encodings++
	}
	assumps := make([]intLit, len(goals))
	for i, gl := range goals {
		assumps[i] = s.enc.lit(gl)
	}
	budget := s.opt.maxConflicts()
	for attempt := 0; ; attempt++ {
		before := s.sat.stats
		st.AssumptionSolves++
		status := s.sat.solveUnder(assumps, budget)
		st.Decisions += s.sat.stats.decisions - before.decisions
		st.Propagations += s.sat.stats.propagations - before.propagations
		st.Conflicts += s.sat.stats.conflicts - before.conflicts
		st.LearnedClauses += s.sat.stats.learned - before.learned
		st.Restarts += s.sat.stats.restarts - before.restarts
		st.Vars = s.sat.nVars
		st.Clauses = s.sat.numClauses()
		switch status {
		case statusUnsat:
			return SolveResult{Status: Unsat, Stage: "sat", Stats: st}
		case statusUnknown:
			next, ok := s.nextBudget(budget, attempt)
			if !ok {
				return SolveResult{Status: SolveUnknown, Stage: "sat", Stats: st}
			}
			if s.opt.cancelled() {
				return SolveResult{Status: SolveUnknown, Stage: "cancelled", Stats: st}
			}
			st.Retries++
			budget = next
			if res, hit := s.portfolioSim(goals, attempt, &st); hit {
				return res
			}
			continue
		}
		model, ok := s.modelFromCDCL(goals)
		if !ok {
			// The solver's model failed re-simulation: a solver bug.
			// Degrade to Unknown rather than report a bogus counterexample,
			// and surface the event in Stats and the obs schema.
			st.ModelsRejected++
			return SolveResult{Status: SolveUnknown, Stage: "sat", Stats: st}
		}
		return SolveResult{Status: Sat, Model: model, Stage: "sat", Stats: st}
	}
}

// nextBudget computes the escalated conflict budget for the retry ladder, or
// reports that the ladder is exhausted.
func (s *Solver) nextBudget(budget, attempt int) (int, bool) {
	next := budget * 2
	if hi := s.opt.retryCap(); next > hi {
		next = hi
	}
	if attempt >= s.opt.RetryUnknown || next <= budget {
		return 0, false
	}
	return next, true
}

// portfolioSim is the simulation half of the deterministic sim/SAT
// portfolio: before each SAT escalation, a fresh-seeded chunk of random
// simulation gets a chance to refute the query outright. The schedule is
// fixed by attempt counts, never wall time, so results are byte-identical
// across machines and worker counts.
func (s *Solver) portfolioSim(goals []aig.Lit, attempt int, st *Stats) (SolveResult, bool) {
	rounds := s.opt.simRounds()
	if rounds == 0 {
		return SolveResult{}, false
	}
	chunkSeed := s.opt.seed() + uint64(attempt+1)*0xa0761d6478bd642f
	return s.simulate(goals, chunkSeed, rounds, st)
}

// solveDPLL runs the SAT ladder on the legacy engine: the goal cones are
// encoded into a fresh DPLL instance (goals asserted as unit clauses), and a
// retry resets the same instance with a doubled budget — the encoding is
// never rebuilt.
func (s *Solver) solveDPLL(goals []aig.Lit, st Stats) SolveResult {
	budget := s.opt.maxConflicts()
	d, varOf := tseitinAll(s.g, goals, budget)
	st.Encodings++
	st.Vars = d.nVars
	st.Clauses = len(d.clauses) + len(d.units)
	for attempt := 0; ; attempt++ {
		status := d.solve()
		st.Decisions += d.stats.Decisions
		st.Propagations += d.stats.Propagations
		st.Conflicts += d.stats.Conflicts
		switch status {
		case statusUnsat:
			return SolveResult{Status: Unsat, Stage: "sat", Stats: st}
		case statusUnknown:
			next, ok := s.nextBudget(budget, attempt)
			if !ok {
				return SolveResult{Status: SolveUnknown, Stage: "sat", Stats: st}
			}
			if s.opt.cancelled() {
				return SolveResult{Status: SolveUnknown, Stage: "cancelled", Stats: st}
			}
			st.Retries++
			budget = next
			if res, hit := s.portfolioSim(goals, attempt, &st); hit {
				return res
			}
			d.reset(budget)
			continue
		}
		model, ok := s.modelFromDPLL(d, varOf, goals)
		if !ok {
			st.ModelsRejected++
			return SolveResult{Status: SolveUnknown, Stage: "sat", Stats: st}
		}
		return SolveResult{Status: Sat, Model: model, Stage: "sat", Stats: st}
	}
}

// modelFromWords extracts the assignment of lane from the simulated words,
// restricted to the goals' support.
func modelFromWords(g *aig.AIG, goals []aig.Lit, words []uint64, lane uint) map[string]bool {
	model := make(map[string]bool)
	for _, gl := range goals {
		for _, i := range g.Support(gl) {
			model[g.InputName(i)] = words[i]>>lane&1 == 1
		}
	}
	return model
}

// modelFromCDCL reads the input assignment out of the CDCL model and
// verifies every goal against the AIG by simulation.
func (s *Solver) modelFromCDCL(goals []aig.Lit) (map[string]bool, bool) {
	model := make(map[string]bool)
	assign := make([]bool, s.g.NumInputs())
	for _, gl := range goals {
		for _, i := range s.g.Support(gl) {
			n := s.g.InputLit(i).Node()
			v, ok := s.enc.varOf[n]
			if !ok {
				continue // outside the encoded cone: value is irrelevant
			}
			b := s.sat.modelValue(v)
			model[s.g.InputName(i)] = b
			assign[i] = b
		}
	}
	for _, gl := range goals {
		if !s.g.EvalBool(assign, gl) {
			return nil, false
		}
	}
	return model, true
}

// modelFromDPLL is modelFromCDCL for the legacy engine.
func (s *Solver) modelFromDPLL(d *dpll, varOf map[int]int, goals []aig.Lit) (map[string]bool, bool) {
	model := make(map[string]bool)
	assign := make([]bool, s.g.NumInputs())
	for _, gl := range goals {
		for _, i := range s.g.Support(gl) {
			n := s.g.InputLit(i).Node()
			v, ok := varOf[n]
			if !ok {
				continue
			}
			b := d.modelValue(v)
			model[s.g.InputName(i)] = b
			assign[i] = b
		}
	}
	for _, gl := range goals {
		if !s.g.EvalBool(assign, gl) {
			return nil, false
		}
	}
	return model, true
}

// CheckLits decides whether literals a and b compute the same function of
// the inputs. It may grow the AIG (the miter XOR is built in place, reusing
// existing structure via hashing).
func (s *Solver) CheckLits(a, b aig.Lit) Result { return s.CheckLitsUnder(a, b, nil) }

// CheckLitsUnder decides whether a and b compute the same function on every
// input assignment satisfying the assumption literals — equivalence under a
// control assignment, with the assumptions passed to the warm solver instead
// of baked into a new encoding.
func (s *Solver) CheckLitsUnder(a, b aig.Lit, assumps []aig.Lit) Result {
	if a == b {
		return Result{Verdict: Equivalent, Stage: "strash"}
	}
	m := s.g.Xor(a, b)
	if m == aig.False {
		// The XOR folded away: equal by construction.
		return Result{Verdict: Equivalent, Stage: "strash"}
	}
	sr := s.SolveUnder(m, assumps)
	switch sr.Status {
	case Unsat:
		return Result{Verdict: Equivalent, Stage: sr.Stage, Stats: sr.Stats}
	case Sat:
		// The model covers the miter's support, which folding can shrink
		// below the sides' own supports (extreme case: a vs !a folds to a
		// constant-true miter with empty support). Complete the
		// counterexample over both sides with the same default the model
		// semantics uses for absent inputs: false.
		cex := sr.Model
		for _, side := range [2]aig.Lit{a, b} {
			for _, i := range s.g.Support(side) {
				if _, ok := cex[s.g.InputName(i)]; !ok {
					cex[s.g.InputName(i)] = false
				}
			}
		}
		return Result{Verdict: NotEquivalent, Stage: sr.Stage, Cex: cex, Stats: sr.Stats}
	}
	return Result{Verdict: Unknown, Stage: sr.Stage, Stats: sr.Stats}
}

// Solve decides satisfiability of literal l in g on a transient solver; use
// a Solver directly to keep the engine warm across queries.
func Solve(g *aig.AIG, l aig.Lit, opt Options) SolveResult {
	return NewSolver(g, opt).Solve(l)
}

// CheckLits decides whether literals a and b of the shared AIG g compute the
// same function of the inputs, on a transient solver. It may grow g (the
// miter XOR is built in place, reusing existing structure via hashing).
func CheckLits(g *aig.AIG, a, b aig.Lit, opt Options) Result {
	return NewSolver(g, opt).CheckLits(a, b)
}

// OutputCheck is the per-observable outcome of a netlist-level check.
type OutputCheck struct {
	// Name is the shared observable: a primary-output net name, or
	// aig.FFPrefix + gate name for a next-state function.
	Name string
	Result
}

// NetlistResult is the outcome of CheckNetlists.
type NetlistResult struct {
	// Outputs holds one check per shared observable, in A's declaration
	// order.
	Outputs []OutputCheck
	// OnlyInA / OnlyInB list observables present on one side only; they are
	// reported, not checked.
	OnlyInA, OnlyInB []string
}

// Verdict aggregates: NotEquivalent dominates, then Unknown, then Equivalent.
func (r *NetlistResult) Verdict() Verdict {
	v := Equivalent
	for _, oc := range r.Outputs {
		switch oc.Result.Verdict {
		case NotEquivalent:
			return NotEquivalent
		case Unknown:
			v = Unknown
		}
	}
	return v
}

// CheckNetlists compares two netlists observable-by-observable: primary
// outputs are matched by net name and next-state functions by flip-flop gate
// name, over a shared input space keyed by net name (primary inputs and
// flip-flop outputs). pin forces named nets to constants on both sides before
// lowering — the cofactor under a control assignment. The tie-off inputs
// created by reduce.Materialize ("$const0", "$const1") are always pinned to
// their values. All outputs share one warm solver, so structure common to
// several output cones is encoded and learned from once.
func CheckNetlists(na, nb *netlist.Netlist, pin map[string]logic.Value, opt Options) (*NetlistResult, error) {
	eff := make(map[string]logic.Value, len(pin)+2)
	eff["$const0"] = logic.Zero
	eff["$const1"] = logic.One
	for k, v := range pin {
		eff[k] = v
	}
	g := aig.New()
	fa, err := aig.AddFrame(g, na, eff)
	if err != nil {
		return nil, fmt.Errorf("eqcheck: lowering %s: %w", na.Name, err)
	}
	fb, err := aig.AddFrame(g, nb, eff)
	if err != nil {
		return nil, fmt.Errorf("eqcheck: lowering %s: %w", nb.Name, err)
	}
	solver := NewSolver(g, opt)
	res := &NetlistResult{}
	for _, name := range fa.OutputNames {
		lb, ok := fb.Outputs[name]
		if !ok {
			res.OnlyInA = append(res.OnlyInA, name)
			continue
		}
		// Deadline-bounded runs keep the output list complete and in order:
		// outputs past the cancellation point are Unknown/"cancelled", so a
		// partial result is a strict prefix of the full one.
		if opt.cancelled() {
			res.Outputs = append(res.Outputs, OutputCheck{Name: name, Result: CancelledResult()})
			continue
		}
		r := solver.CheckLits(fa.Outputs[name], lb)
		res.Outputs = append(res.Outputs, OutputCheck{Name: name, Result: r})
	}
	for _, name := range fb.OutputNames {
		if _, ok := fa.Outputs[name]; !ok {
			res.OnlyInB = append(res.OnlyInB, name)
		}
	}
	if len(res.Outputs) == 0 {
		return nil, errors.New("eqcheck: netlists share no observables (no matching output names or flip-flop names)")
	}
	return res, nil
}
