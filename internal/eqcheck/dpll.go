package eqcheck

// dpll.go implements a small DPLL SAT solver: two-watched-literal unit
// propagation, chronological backtracking over an explicit decision stack, a
// static most-occurrences branching order with false-first phase, and a
// conflict budget that turns "too hard" into an explicit Unknown instead of
// an open-ended search. No clause learning.
//
// This is the legacy engine, retained behind Options.NoLearn (`gateeq
// -no-learn`) as an escape hatch and as an independent oracle for
// cross-checking the CDCL engine (see fuzz_test.go). The default engine is
// the incremental CDCL solver in cdcl.go.

// intLit is a CNF literal: variable index shifted left with the negation bit
// in the LSB (the same convention as aig.Lit, over CNF variables).
type intLit = int32

func posLit(v int) intLit    { return intLit(v << 1) }
func negLit(v int) intLit    { return intLit(v<<1 | 1) }
func litVar(l intLit) int    { return int(l >> 1) }
func litNot(l intLit) intLit { return l ^ 1 }

type clause []intLit

// dpll is one solver instance over a fixed clause set.
type dpll struct {
	nVars   int
	clauses []clause
	watches [][]int32 // per literal: indices of clauses watching it
	assign  []int8    // per variable: 0 unknown, +1 true, -1 false
	trail   []intLit
	qhead   int
	units   []intLit // top-level units collected by addClause
	unsat   bool     // top-level contradiction during construction

	order []int32 // static branching order (most occurrences first)
	occ   []int32 // per-variable occurrence counts

	decisions []decision

	// budget and counters
	maxConflicts int
	stats        Stats
}

type decision struct {
	trailLen int
	lit      intLit
	flipped  bool
}

type solveStatus uint8

const (
	statusSat solveStatus = iota
	statusUnsat
	statusUnknown
)

func newDPLL(nVars, maxConflicts int) *dpll {
	return &dpll{
		nVars:        nVars,
		watches:      make([][]int32, 2*nVars),
		assign:       make([]int8, nVars),
		occ:          make([]int32, nVars),
		maxConflicts: maxConflicts,
	}
}

// addClause installs one clause. Duplicate literals are removed and
// tautologies dropped; empty clauses flag top-level unsatisfiability and
// unit clauses are queued for the initial propagation.
func (s *dpll) addClause(lits ...intLit) {
	c := make(clause, 0, len(lits))
	for _, l := range lits {
		dup, taut := false, false
		for _, e := range c {
			if e == l {
				dup = true
				break
			}
			if e == litNot(l) {
				taut = true
				break
			}
		}
		if taut {
			return
		}
		if !dup {
			c = append(c, l)
		}
	}
	switch len(c) {
	case 0:
		s.unsat = true
		return
	case 1:
		s.units = append(s.units, c[0])
		s.occ[litVar(c[0])]++
		return
	}
	ci := int32(len(s.clauses))
	s.clauses = append(s.clauses, c)
	s.watches[c[0]] = append(s.watches[c[0]], ci)
	s.watches[c[1]] = append(s.watches[c[1]], ci)
	for _, l := range c {
		s.occ[litVar(l)]++
	}
}

func (s *dpll) value(l intLit) int8 {
	v := s.assign[litVar(l)]
	if l&1 == 1 {
		return -v
	}
	return v
}

// enqueue assigns literal l true; it returns false when l is already false.
func (s *dpll) enqueue(l intLit) bool {
	switch s.value(l) {
	case 1:
		return true
	case -1:
		return false
	}
	if l&1 == 1 {
		s.assign[litVar(l)] = -1
	} else {
		s.assign[litVar(l)] = 1
	}
	s.trail = append(s.trail, l)
	return true
}

// propagate runs two-watched-literal unit propagation to fixpoint; it
// returns false on conflict.
func (s *dpll) propagate() bool {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		falseLit := litNot(l)
		ws := s.watches[falseLit]
		j := 0
		for i := 0; i < len(ws); i++ {
			ci := ws[i]
			c := s.clauses[ci]
			// Normalize: the false watch sits at c[1].
			if c[0] == falseLit {
				c[0], c[1] = c[1], c[0]
			}
			if s.value(c[0]) == 1 {
				ws[j] = ci
				j++
				continue
			}
			// Look for a non-false replacement watch.
			moved := false
			for k := 2; k < len(c); k++ {
				if s.value(c[k]) != -1 {
					c[1], c[k] = c[k], c[1]
					s.watches[c[1]] = append(s.watches[c[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit (or conflicting) on c[0].
			ws[j] = ci
			j++
			if !s.enqueue(c[0]) {
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[falseLit] = ws[:j]
				return false
			}
		}
		s.watches[falseLit] = ws[:j]
	}
	return true
}

func (s *dpll) backtrackTo(trailLen int) {
	for len(s.trail) > trailLen {
		l := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.assign[litVar(l)] = 0
	}
	s.qhead = len(s.trail)
}

// solve runs the search. The model, when SAT, is read from s.assign
// (unassigned variables are false).
func (s *dpll) solve() solveStatus {
	if s.unsat {
		return statusUnsat
	}
	for _, u := range s.units {
		if !s.enqueue(u) {
			return statusUnsat
		}
	}
	if !s.propagate() {
		return statusUnsat
	}
	s.buildOrder()
	for {
		v := s.pickVar()
		if v < 0 {
			return statusSat
		}
		s.stats.Decisions++
		s.decisions = append(s.decisions, decision{trailLen: len(s.trail), lit: negLit(v)})
		s.enqueue(negLit(v))
		for !s.propagate() {
			// The budget is inclusive: at most maxConflicts conflicts are
			// resolved, and the one that would exceed it returns Unknown
			// unresolved (so a budget of 0 performs no search at all).
			if s.maxConflicts >= 0 && s.stats.Conflicts >= s.maxConflicts {
				return statusUnknown
			}
			s.stats.Conflicts++
			// Chronological backtracking: flip the deepest unflipped
			// decision, popping fully explored ones.
			flipped := false
			for len(s.decisions) > 0 {
				d := &s.decisions[len(s.decisions)-1]
				s.backtrackTo(d.trailLen)
				if !d.flipped {
					d.flipped = true
					d.lit = litNot(d.lit)
					s.enqueue(d.lit)
					flipped = true
					break
				}
				s.decisions = s.decisions[:len(s.decisions)-1]
			}
			if !flipped {
				return statusUnsat
			}
		}
	}
}

// buildOrder sorts variables by descending occurrence count (stable on the
// index for determinism).
func (s *dpll) buildOrder() {
	s.order = make([]int32, s.nVars)
	for i := range s.order {
		s.order[i] = int32(i)
	}
	// Insertion sort keeps this dependency-free and deterministic; variable
	// counts here are cone-sized.
	for i := 1; i < len(s.order); i++ {
		for j := i; j > 0 && s.occ[s.order[j]] > s.occ[s.order[j-1]]; j-- {
			s.order[j], s.order[j-1] = s.order[j-1], s.order[j]
		}
	}
}

func (s *dpll) pickVar() int {
	for _, v := range s.order {
		if s.assign[v] == 0 {
			return int(v)
		}
	}
	return -1
}

// modelValue reports the value of variable v in a SAT model.
func (s *dpll) modelValue(v int) bool { return s.assign[v] == 1 }

// reset returns the solver to its pre-search state under a fresh conflict
// budget, keeping the clause database and watch lists intact: the encoding
// is budget-independent, so a retry-ladder escalation re-searches without
// re-encoding (solve re-enqueues the top-level units itself).
func (s *dpll) reset(maxConflicts int) {
	s.backtrackTo(0)
	s.decisions = s.decisions[:0]
	s.maxConflicts = maxConflicts
	s.stats = Stats{}
}
