package netlist

import (
	"strings"
	"testing"

	"gatewords/internal/logic"
)

// small builds a tiny valid netlist: y = NAND(a, b), q = DFF(y).
func small(t *testing.T) (*Netlist, NetID, NetID, NetID, NetID) {
	t.Helper()
	nl := New("small")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	y := nl.MustNet("y")
	q := nl.MustNet("q")
	nl.MarkPI(a)
	nl.MarkPI(b)
	nl.MarkPO(q)
	nl.MustGate("g1", logic.Nand, y, a, b)
	nl.MustGate("ff", logic.DFF, q, y)
	if err := nl.Validate(); err != nil {
		t.Fatalf("small netlist invalid: %v", err)
	}
	return nl, a, b, y, q
}

func TestAddNetErrors(t *testing.T) {
	nl := New("t")
	if _, err := nl.AddNet(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := nl.AddNet("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddNet("a"); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestEnsureNet(t *testing.T) {
	nl := New("t")
	a := nl.EnsureNet("a")
	if again := nl.EnsureNet("a"); again != a {
		t.Error("EnsureNet created a duplicate")
	}
	if nl.NetCount() != 1 {
		t.Errorf("NetCount = %d", nl.NetCount())
	}
}

func TestAddGateErrors(t *testing.T) {
	nl := New("t")
	a := nl.MustNet("a")
	y := nl.MustNet("y")
	nl.MarkPI(a)
	if _, err := nl.AddGate("g", logic.Invalid, y, a); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := nl.AddGate("g", logic.Nand, y, a); err == nil {
		t.Error("NAND with 1 input accepted")
	}
	if _, err := nl.AddGate("g", logic.Not, NetID(99), a); err == nil {
		t.Error("bad output net accepted")
	}
	if _, err := nl.AddGate("g", logic.Not, y, NetID(99)); err == nil {
		t.Error("bad input net accepted")
	}
	if _, err := nl.AddGate("g", logic.Not, y, a); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddGate("g2", logic.Not, y, a); err == nil {
		t.Error("double-driven net accepted")
	}
}

func TestAccessors(t *testing.T) {
	nl, a, b, y, q := small(t)
	if nl.NetCount() != 4 || nl.GateCount() != 2 {
		t.Fatalf("counts: %d nets %d gates", nl.NetCount(), nl.GateCount())
	}
	if id, ok := nl.NetByName("y"); !ok || id != y {
		t.Error("NetByName(y) wrong")
	}
	if nl.NetName(NoNet) != "<none>" {
		t.Error("NetName(NoNet)")
	}
	if got := nl.PIs(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("PIs = %v", got)
	}
	if got := nl.POs(); len(got) != 1 || got[0] != q {
		t.Errorf("POs = %v", got)
	}
	if got := nl.DFFs(); len(got) != 1 || nl.Gate(got[0]).Name != "ff" {
		t.Errorf("DFFs = %v", got)
	}
	if nl.Net(y).Driver == NoGate || nl.Gate(nl.Net(y).Driver).Name != "g1" {
		t.Error("driver index wrong")
	}
}

func TestValidateCatchesUndriven(t *testing.T) {
	nl := New("t")
	nl.MustNet("floating")
	if err := nl.Validate(); err == nil || !strings.Contains(err.Error(), "undriven") {
		t.Errorf("undriven net not caught: %v", err)
	}
}

func TestValidateCatchesDrivenPI(t *testing.T) {
	nl := New("t")
	a := nl.MustNet("a")
	y := nl.MustNet("y")
	nl.MarkPI(a)
	nl.MustGate("g", logic.Not, y, a)
	nl.MarkPI(y) // now y is both driven and a PI
	if err := nl.Validate(); err == nil {
		t.Error("driven PI not caught")
	}
}

func TestValidateCatchesDuplicateGateNames(t *testing.T) {
	nl := New("t")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	y1 := nl.MustNet("y1")
	y2 := nl.MustNet("y2")
	nl.MustGate("g", logic.Not, y1, a)
	nl.MustGate("g", logic.Not, y2, a)
	if err := nl.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate gate name") {
		t.Errorf("duplicate gate name not caught: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	nl, a, _, y, _ := small(t)
	cp := nl.Clone()
	if err := cp.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	// Mutating the clone must not affect the original.
	z := cp.MustNet("z")
	cp.MustGate("g2", logic.Not, z, a)
	if nl.NetCount() == cp.NetCount() || nl.GateCount() == cp.GateCount() {
		t.Error("clone shares storage with original")
	}
	cp.Net(y).Fanout = append(cp.Net(y).Fanout, GateID(0))
	if len(nl.Net(y).Fanout) == len(cp.Net(y).Fanout) {
		t.Error("fanout slices shared")
	}
	if _, ok := nl.NetByName("z"); ok {
		t.Error("byName map shared")
	}
}

func TestComputeStats(t *testing.T) {
	nl, _, _, _, _ := small(t)
	s := nl.ComputeStats()
	if s.Nets != 4 || s.Gates != 1 || s.DFFs != 1 || s.PIs != 2 || s.POs != 1 {
		t.Errorf("stats: %+v", s)
	}
	if s.ByKind[logic.Nand] != 1 || s.MaxFanin != 2 {
		t.Errorf("stats detail: %+v", s)
	}
}

func TestTopoOrder(t *testing.T) {
	nl := New("t")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	n1 := nl.MustNet("n1")
	n2 := nl.MustNet("n2")
	n3 := nl.MustNet("n3")
	// Deliberately add in reverse dependency order.
	g3 := nl.MustGate("g3", logic.Not, n3, n2)
	_ = g3
	nl.MustGate("g2", logic.Not, n2, n1)
	nl.MustGate("g1", logic.Not, n1, a)
	order, err := nl.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, g := range order {
		pos[nl.Gate(g).Name] = i
	}
	if !(pos["g1"] < pos["g2"] && pos["g2"] < pos["g3"]) {
		t.Errorf("topo order wrong: %v", pos)
	}
}

func TestTopoOrderDuplicatePins(t *testing.T) {
	// Regression: a gate reading one net on several pins used to be
	// decremented once per fanout entry *times* once per pin — double
	// counting that could schedule it before its other inputs' drivers.
	nl := New("t")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	n1 := nl.MustNet("n1")
	n2 := nl.MustNet("n2")
	n3 := nl.MustNet("n3")
	// g2 reads n2 twice and n1 once; g1 (driver of n1) is added last so a
	// premature schedule of g2 would order it first.
	nl.MustGate("gbuf", logic.Not, n2, a)
	nl.MustGate("g2", logic.Xor, n3, n2, n2, n1)
	nl.MustGate("g1", logic.Not, n1, a)
	order, err := nl.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, g := range order {
		pos[nl.Gate(g).Name] = i
	}
	if !(pos["g1"] < pos["g2"] && pos["gbuf"] < pos["g2"]) {
		t.Errorf("duplicate-pin gate ordered before its drivers: %v", pos)
	}
}

func TestTopoOrderThroughDFF(t *testing.T) {
	// A cycle through a DFF is legal sequential logic, not a combinational
	// cycle.
	nl := New("t")
	q := nl.MustNet("q")
	d := nl.MustNet("d")
	nl.MustGate("inv", logic.Not, d, q)
	nl.MustGate("ff", logic.DFF, q, d)
	if _, err := nl.TopoOrder(); err != nil {
		t.Errorf("DFF-closed loop rejected: %v", err)
	}
}

func TestTopoOrderDetectsCombinationalCycle(t *testing.T) {
	nl := New("t")
	x := nl.MustNet("x")
	y := nl.MustNet("y")
	nl.MustGate("g1", logic.Not, y, x)
	nl.MustGate("g2", logic.Not, x, y)
	if _, err := nl.TopoOrder(); err == nil {
		t.Error("combinational cycle not detected")
	}
}

func TestSortedNetNames(t *testing.T) {
	nl, _, _, _, _ := small(t)
	names := nl.SortedNetNames()
	want := []string{"a", "b", "q", "y"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("sorted names = %v", names)
		}
	}
}

func TestBaseViewImplementation(t *testing.T) {
	nl, a, _, y, q := small(t)
	if nl.DriverOf(a) != NoGate {
		t.Error("PI has a driver")
	}
	g := nl.DriverOf(y)
	if g == NoGate || nl.GateKind(g) != logic.Nand {
		t.Error("driver lookup wrong")
	}
	ins := nl.GateInputs(g, nil)
	if len(ins) != 2 {
		t.Errorf("GateInputs = %v", ins)
	}
	if _, isConst := nl.NetConst(q); isConst {
		t.Error("base view must report no constants")
	}
}

func TestWriteDOT(t *testing.T) {
	nl, _, _, _, _ := small(t)
	var sb strings.Builder
	if err := nl.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"digraph", "NAND", "DFF", "->"} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, out)
		}
	}
}
