package netlist

import (
	"strings"
	"testing"

	"gatewords/internal/logic"
)

// TestValidateReportsAllViolations pins the collecting behavior: a netlist
// with several independent defects surfaces every one of them in a single
// Validate error instead of stopping at the first.
func TestValidateReportsAllViolations(t *testing.T) {
	nl := New("t")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	nl.MustNet("floating") // undriven, not a PI
	y1 := nl.MustNet("y1")
	y2 := nl.MustNet("y2")
	nl.MustGate("dup", logic.Not, y1, a)
	nl.MustGate("dup", logic.Not, y2, a)            // duplicate gate name
	nl.AddGateLenient("second", logic.Not, y1, a)   // multi-driver on y1
	nl.AddGateLenient("starved", logic.Nand, y2, a) // wrong arity (also multi-driver)

	err := nl.Validate()
	if err == nil {
		t.Fatal("invalid netlist accepted")
	}
	msg := err.Error()
	for _, frag := range []string{
		"undriven",
		"duplicate gate name",
		`net "y1" driven by both "dup" and "second"`,
		"NAND with 1 inputs",
	} {
		if !strings.Contains(msg, frag) {
			t.Errorf("joined error missing %q:\n%v", frag, err)
		}
	}
}

func TestStructuralViolationsOrderAndIdentity(t *testing.T) {
	nl := New("t")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	f := nl.MustNet("floating")
	y := nl.MustNet("y")
	nl.MustGate("g1", logic.Not, y, a)
	g2 := nl.AddGateLenient("g2", logic.Not, y, a)

	vs := nl.StructuralViolations()
	if len(vs) != 2 {
		t.Fatalf("violations = %+v", vs)
	}
	if vs[0].Code != CodeUndriven || vs[0].Net != f || vs[0].Gate != NoGate {
		t.Errorf("first violation: %+v", vs[0])
	}
	if vs[1].Code != CodeMultiDriver || vs[1].Net != y || vs[1].Gate != g2 {
		t.Errorf("second violation: %+v", vs[1])
	}
}

func TestAddGateLenientKeepsFirstDriver(t *testing.T) {
	nl := New("t")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	y := nl.MustNet("y")
	g1 := nl.MustGate("g1", logic.Not, y, a)
	g2 := nl.AddGateLenient("g2", logic.Buf, y, a)
	if nl.Net(y).Driver != g1 {
		t.Errorf("first driver displaced: %v", nl.Net(y).Driver)
	}
	if nl.GateCount() != 2 {
		t.Errorf("lenient gate not recorded: %d gates", nl.GateCount())
	}
	extras := nl.ExtraDrivers()
	if len(extras) != 1 || extras[0].Net != y || extras[0].Gate != g2 {
		t.Errorf("extra drivers = %+v", extras)
	}
	// Fanout of the input still includes the lenient gate.
	if fan := nl.Net(a).Fanout; len(fan) != 2 {
		t.Errorf("fanout = %v", fan)
	}
}

func TestCloneCopiesExtraDrivers(t *testing.T) {
	nl := New("t")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	y := nl.MustNet("y")
	nl.MustGate("g1", logic.Not, y, a)
	nl.AddGateLenient("g2", logic.Not, y, a)
	cp := nl.Clone()
	if len(cp.ExtraDrivers()) != 1 {
		t.Fatalf("clone lost extra drivers: %+v", cp.ExtraDrivers())
	}
	nl.AddGateLenient("g3", logic.Not, y, a)
	if len(cp.ExtraDrivers()) != 1 {
		t.Error("clone shares extraDrivers storage with original")
	}
}
