package netlist

import (
	"testing"

	"gatewords/internal/logic"
)

// buildFP assembles a tiny two-gate circuit, with the declaration order of
// nets and gates controlled by reorder, so tests can pin exactly what the
// fingerprint may and may not depend on.
func buildFP(t *testing.T, reorder bool) *Netlist {
	t.Helper()
	nl := New("fp")
	declareNets := []string{"a", "b", "x", "y"}
	if reorder {
		declareNets = []string{"y", "b", "x", "a"}
	}
	for _, n := range declareNets {
		nl.MustNet(n)
	}
	a, _ := nl.NetByName("a")
	b, _ := nl.NetByName("b")
	x, _ := nl.NetByName("x")
	y, _ := nl.NetByName("y")
	nl.MarkPI(a)
	nl.MarkPI(b)
	nl.MarkPO(y)
	if reorder {
		// Gate declaration order reversed; same gates, same pin order.
		nl.MustGate("g2", logic.Not, y, x)
		nl.MustGate("g1", logic.And, x, a, b)
	} else {
		nl.MustGate("g1", logic.And, x, a, b)
		nl.MustGate("g2", logic.Not, y, x)
	}
	return nl
}

func TestFingerprintCanonicalUnderReordering(t *testing.T) {
	f1 := buildFP(t, false).Fingerprint()
	f2 := buildFP(t, true).Fingerprint()
	if f1 != f2 {
		t.Errorf("fingerprint depends on declaration order: %s vs %s", f1, f2)
	}
	if len(f1) != 32 {
		t.Errorf("fingerprint %q: want 32 hex digits", f1)
	}
}

func TestFingerprintIgnoresGateNames(t *testing.T) {
	nl := buildFP(t, false)
	renamed := New("fp")
	for _, n := range []string{"a", "b", "x", "y"} {
		renamed.MustNet(n)
	}
	a, _ := renamed.NetByName("a")
	b, _ := renamed.NetByName("b")
	x, _ := renamed.NetByName("x")
	y, _ := renamed.NetByName("y")
	renamed.MarkPI(a)
	renamed.MarkPI(b)
	renamed.MarkPO(y)
	renamed.MustGate("other1", logic.And, x, a, b)
	renamed.MustGate("other2", logic.Not, y, x)
	if nl.Fingerprint() != renamed.Fingerprint() {
		t.Error("fingerprint depends on gate instance names")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := buildFP(t, false)
	cases := map[string]func(t *testing.T) *Netlist{
		// Different gate kind.
		"kind": func(t *testing.T) *Netlist {
			nl := New("fp")
			for _, n := range []string{"a", "b", "x", "y"} {
				nl.MustNet(n)
			}
			a, _ := nl.NetByName("a")
			b, _ := nl.NetByName("b")
			x, _ := nl.NetByName("x")
			y, _ := nl.NetByName("y")
			nl.MarkPI(a)
			nl.MarkPI(b)
			nl.MarkPO(y)
			nl.MustGate("g1", logic.Or, x, a, b)
			nl.MustGate("g2", logic.Not, y, x)
			return nl
		},
		// Different PI/PO marking.
		"ports": func(t *testing.T) *Netlist {
			nl := buildFP(t, false)
			x, _ := nl.NetByName("x")
			nl.MarkPO(x)
			return nl
		},
		// Different module name.
		"module": func(t *testing.T) *Netlist {
			nl := buildFP(t, false)
			nl.Name = "fp2"
			return nl
		},
		// Different net name.
		"netname": func(t *testing.T) *Netlist {
			nl := New("fp")
			for _, n := range []string{"a", "c", "x", "y"} {
				nl.MustNet(n)
			}
			a, _ := nl.NetByName("a")
			c, _ := nl.NetByName("c")
			x, _ := nl.NetByName("x")
			y, _ := nl.NetByName("y")
			nl.MarkPI(a)
			nl.MarkPI(c)
			nl.MarkPO(y)
			nl.MustGate("g1", logic.And, x, a, c)
			nl.MustGate("g2", logic.Not, y, x)
			return nl
		},
	}
	for name, build := range cases {
		if got := build(t).Fingerprint(); got == base.Fingerprint() {
			t.Errorf("%s: variant collides with base fingerprint %s", name, got)
		}
	}
}

// TestFingerprintPinOrderSignificant pins that input pin order is part of
// the identity: MUX2's [sel, a, b] is not the same circuit as [a, sel, b].
func TestFingerprintPinOrderSignificant(t *testing.T) {
	build := func(swap bool) *Netlist {
		nl := New("fp")
		for _, n := range []string{"s", "a", "b", "y"} {
			id := nl.MustNet(n)
			if n != "y" {
				nl.MarkPI(id)
			}
		}
		s, _ := nl.NetByName("s")
		a, _ := nl.NetByName("a")
		b, _ := nl.NetByName("b")
		y, _ := nl.NetByName("y")
		nl.MarkPO(y)
		if swap {
			nl.MustGate("m", logic.Mux2, y, a, s, b)
		} else {
			nl.MustGate("m", logic.Mux2, y, s, a, b)
		}
		return nl
	}
	if build(false).Fingerprint() == build(true).Fingerprint() {
		t.Error("fingerprint ignores input pin order")
	}
}

// TestFingerprintPinOrderSymmetricGate pins that input pin order is part of
// the identity even for commutative gate kinds: the fingerprint is a
// structural cache key, not a functional one, so And(a, b) and And(b, a)
// must hash differently rather than collapsing onto one cache entry.
func TestFingerprintPinOrderSymmetricGate(t *testing.T) {
	build := func(swap bool) *Netlist {
		nl := New("fp")
		for _, n := range []string{"a", "b", "y"} {
			id := nl.MustNet(n)
			if n != "y" {
				nl.MarkPI(id)
			}
		}
		a, _ := nl.NetByName("a")
		b, _ := nl.NetByName("b")
		y, _ := nl.NetByName("y")
		nl.MarkPO(y)
		if swap {
			nl.MustGate("g", logic.And, y, b, a)
		} else {
			nl.MustGate("g", logic.And, y, a, b)
		}
		return nl
	}
	if build(false).Fingerprint() == build(true).Fingerprint() {
		t.Error("fingerprint ignores pin order on a commutative gate")
	}
}

// TestFingerprintNameBoundaries is the concatenation attack on the gate
// record hash: both variants declare the same net set and their gate input
// names concatenate to the same byte stream ("ab"+"c" vs "a"+"bc"), so only
// the per-name length folding in fnvString keeps the records apart.
func TestFingerprintNameBoundaries(t *testing.T) {
	build := func(in1, in2 string) *Netlist {
		nl := New("fp")
		for _, n := range []string{"a", "b", "c", "ab", "bc", "y"} {
			id := nl.MustNet(n)
			if n != "y" {
				nl.MarkPI(id)
			}
		}
		i1, _ := nl.NetByName(in1)
		i2, _ := nl.NetByName(in2)
		y, _ := nl.NetByName("y")
		nl.MarkPO(y)
		nl.MustGate("g", logic.And, y, i1, i2)
		return nl
	}
	if build("ab", "c").Fingerprint() == build("a", "bc").Fingerprint() {
		t.Error("fingerprint blind to pin name boundaries: [ab c] collides with [a bc]")
	}
}

// TestFingerprintDriverSwap pins that which gate drives which net is part of
// the identity: two same-kind gates with their outputs exchanged describe a
// different circuit even though the net set and the multiset of input lists
// are unchanged.
func TestFingerprintDriverSwap(t *testing.T) {
	build := func(swap bool) *Netlist {
		nl := New("fp")
		for _, n := range []string{"a", "b", "x", "y"} {
			id := nl.MustNet(n)
			if n == "a" || n == "b" {
				nl.MarkPI(id)
			}
		}
		a, _ := nl.NetByName("a")
		b, _ := nl.NetByName("b")
		x, _ := nl.NetByName("x")
		y, _ := nl.NetByName("y")
		nl.MarkPO(x)
		nl.MarkPO(y)
		if swap {
			nl.MustGate("g1", logic.And, y, a, b)
			nl.MustGate("g2", logic.Or, x, a, b)
		} else {
			nl.MustGate("g1", logic.And, x, a, b)
			nl.MustGate("g2", logic.Or, y, a, b)
		}
		return nl
	}
	if build(false).Fingerprint() == build(true).Fingerprint() {
		t.Error("fingerprint ignores which gate drives which net")
	}
}

func TestFingerprintStable(t *testing.T) {
	nl := buildFP(t, false)
	if nl.Fingerprint() != nl.Fingerprint() {
		t.Error("fingerprint not stable across calls")
	}
	if nl.Fingerprint() != nl.Clone().Fingerprint() {
		t.Error("fingerprint differs on a clone")
	}
}
