package netlist

import (
	"fmt"
	"io"

	"gatewords/internal/logic"
)

// WriteDOT renders the netlist as a Graphviz digraph for debugging and
// documentation figures. Gates are boxes labelled with kind and instance
// name; primary inputs are ellipses; flip-flops are double boxes.
func (nl *Netlist) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", nl.Name); err != nil {
		return err
	}
	for ni := range nl.nets {
		n := &nl.nets[ni]
		if n.IsPI {
			if _, err := fmt.Fprintf(w, "  n%d [label=%q shape=ellipse];\n", ni, n.Name); err != nil {
				return err
			}
		}
	}
	for gi := range nl.gates {
		g := &nl.gates[gi]
		shape := "box"
		if g.Kind == logic.DFF {
			shape = "box3d"
		}
		if _, err := fmt.Fprintf(w, "  g%d [label=\"%s\\n%s\" shape=%s];\n", gi, g.Kind, g.Name, shape); err != nil {
			return err
		}
		for _, in := range g.Inputs {
			src := nl.nets[in].Driver
			if src == NoGate {
				if _, err := fmt.Fprintf(w, "  n%d -> g%d [label=%q];\n", in, gi, nl.nets[in].Name); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(w, "  g%d -> g%d [label=%q];\n", src, gi, nl.nets[in].Name); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
