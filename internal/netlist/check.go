package netlist

import (
	"errors"
	"fmt"

	"gatewords/internal/logic"
)

// Violation codes produced by StructuralViolations. They are the shared
// vocabulary between Validate (which joins them into one error) and the
// error-severity rules of internal/netlint (which map each code to a stable
// rule ID).
const (
	CodeArity        = "arity"         // gate input count invalid for its kind
	CodeBadOutput    = "bad-output"    // gate output is not a valid net ID
	CodeBadInput     = "bad-input"     // gate input is not a valid net ID
	CodeDriverIndex  = "driver-index"  // driver/output cross-index mismatch
	CodeDupGateName  = "dup-gate-name" // two gates share a non-empty name
	CodeUndriven     = "undriven"      // undriven net that is not a primary input
	CodeDrivenPI     = "driven-pi"     // net both driven and marked primary input
	CodeBadFanout    = "bad-fanout"    // fanout entry is not a valid gate ID
	CodeFanoutReader = "fanout-reader" // fanout gate does not read the net
	CodeMultiDriver  = "multi-driver"  // more than one gate drives a net
	CodeInvalidKind  = "invalid-kind"  // gate kind is not a real cell
)

// Violation is one structural defect, with enough identity for a diagnostic
// engine to attach gate and net names. Gate is NoGate for net-scoped
// violations; Net is NoNet for gate-scoped ones. Msg is the human-readable
// description without the "netlist <name>:" prefix.
type Violation struct {
	Code string
	Gate GateID
	Net  NetID
	Msg  string
}

// ExtraDriver records a driver that lost the race for a net: the lenient
// construction path (AddGateLenient) keeps the first driver authoritative
// and appends later ones here so a linter can report the multi-drive.
type ExtraDriver struct {
	Net  NetID
	Gate GateID
}

// AddGateLenient is AddGate for diagnostic front ends: instead of rejecting
// a structurally invalid gate (bad arity, multiply-driven output) it records
// the gate anyway so that StructuralViolations can report every defect in
// one pass. The first driver of a net stays authoritative; later drivers are
// recorded as ExtraDrivers. Out-of-range net IDs are kept on the gate but
// not cross-indexed. The returned gate is real: it appears in GateCount and
// file order.
func (nl *Netlist) AddGateLenient(name string, kind logic.Kind, output NetID, inputs ...NetID) GateID {
	id := GateID(len(nl.gates))
	g := Gate{Name: name, Kind: kind, Inputs: append([]NetID(nil), inputs...), Output: output}
	nl.gates = append(nl.gates, g)
	if nl.validNet(output) {
		if nl.nets[output].Driver == NoGate {
			nl.nets[output].Driver = id
		} else {
			nl.extraDrivers = append(nl.extraDrivers, ExtraDriver{Net: output, Gate: id})
		}
	}
	for _, in := range inputs {
		if nl.validNet(in) {
			nl.nets[in].Fanout = append(nl.nets[in].Fanout, id)
		}
	}
	return id
}

// ExtraDrivers returns the multi-driver records accumulated by lenient
// construction, in insertion order. The slice is shared; callers must not
// mutate it.
func (nl *Netlist) ExtraDrivers() []ExtraDriver { return nl.extraDrivers }

// StructuralViolations checks every structural invariant of the netlist —
// pin arities, driver/fanout cross-index consistency, duplicate gate names,
// multiply-driven nets (via ExtraDrivers), undriven non-PI nets — and
// returns all violations instead of stopping at the first. The order is
// deterministic: gate-scoped checks in gate order, then net-scoped checks in
// net order, then multi-driver records in insertion order.
func (nl *Netlist) StructuralViolations() []Violation {
	var out []Violation
	add := func(code string, gate GateID, net NetID, format string, args ...any) {
		out = append(out, Violation{Code: code, Gate: gate, Net: net, Msg: fmt.Sprintf(format, args...)})
	}

	// extra[net] guards the gate-side driver-index check: a gate recorded as
	// an extra driver is reported once, as a multi-driver, not also as an
	// index mismatch.
	extra := make(map[ExtraDriver]bool, len(nl.extraDrivers))
	for _, e := range nl.extraDrivers {
		extra[e] = true
	}

	seenGateName := make(map[string]GateID, len(nl.gates))
	for gi := range nl.gates {
		g := &nl.gates[gi]
		if g.Name != "" {
			if prev, dup := seenGateName[g.Name]; dup {
				add(CodeDupGateName, GateID(gi), NoNet, "duplicate gate name %q (gates %d and %d)", g.Name, prev, gi)
			} else {
				seenGateName[g.Name] = GateID(gi)
			}
		}
		if !g.Kind.IsCombinational() && !g.Kind.IsSequential() {
			add(CodeInvalidKind, GateID(gi), NoNet, "gate %q has invalid kind %s", g.Name, g.Kind)
		} else if !g.Kind.ValidArity(len(g.Inputs)) {
			add(CodeArity, GateID(gi), NoNet, "gate %q: %s with %d inputs", g.Name, g.Kind, len(g.Inputs))
		}
		if !nl.validNet(g.Output) {
			add(CodeBadOutput, GateID(gi), NoNet, "gate %q: invalid output net", g.Name)
		} else if nl.nets[g.Output].Driver != GateID(gi) && !extra[ExtraDriver{Net: g.Output, Gate: GateID(gi)}] {
			add(CodeDriverIndex, GateID(gi), g.Output, "gate %q: output net %q driver index mismatch", g.Name, nl.nets[g.Output].Name)
		}
		for _, in := range g.Inputs {
			if !nl.validNet(in) {
				add(CodeBadInput, GateID(gi), NoNet, "gate %q: invalid input net", g.Name)
			}
		}
	}
	for ni := range nl.nets {
		n := &nl.nets[ni]
		if n.Driver == NoGate && !n.IsPI {
			add(CodeUndriven, NoGate, NetID(ni), "net %q is undriven and not a primary input", n.Name)
		}
		if n.Driver != NoGate {
			if n.IsPI {
				add(CodeDrivenPI, NoGate, NetID(ni), "net %q is both driven and a primary input", n.Name)
			}
			if !nl.validGate(n.Driver) || nl.gates[n.Driver].Output != NetID(ni) {
				add(CodeDriverIndex, NoGate, NetID(ni), "net %q: driver index mismatch", n.Name)
			}
		}
		for _, f := range n.Fanout {
			if !nl.validGate(f) {
				add(CodeBadFanout, NoGate, NetID(ni), "net %q: invalid fanout gate", n.Name)
				continue
			}
			found := false
			for _, in := range nl.gates[f].Inputs {
				if in == NetID(ni) {
					found = true
					break
				}
			}
			if !found {
				add(CodeFanoutReader, NoGate, NetID(ni), "net %q: fanout gate %q does not read it", n.Name, nl.gates[f].Name)
			}
		}
	}
	for _, e := range nl.extraDrivers {
		first := "<unknown>"
		if nl.validNet(e.Net) && nl.validGate(nl.nets[e.Net].Driver) {
			first = nl.gates[nl.nets[e.Net].Driver].Name
		}
		add(CodeMultiDriver, e.Gate, e.Net, "net %q driven by both %q and %q", nl.NetName(e.Net), first, nl.gates[e.Gate].Name)
	}
	return out
}

// joinViolations turns a violation list into one error carrying every
// message, or nil when the list is empty.
func (nl *Netlist) joinViolations(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	errs := make([]error, len(vs))
	for i, v := range vs {
		errs[i] = fmt.Errorf("netlist %s: %s", nl.Name, v.Msg)
	}
	return errors.Join(errs...)
}
