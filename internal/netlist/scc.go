package netlist

import (
	"sort"

	"gatewords/internal/logic"
)

// CombinationalSCCs returns the combinational cycles of the netlist: the
// strongly connected components of the combinational gate graph that are
// nontrivial (two or more gates, or a single gate reading its own output).
// Edges run from a gate to the combinational readers of its output net; DFFs
// break cycles, as in TopoOrder. Each component is sorted by gate ID and the
// components are sorted by their smallest member, so the result is
// deterministic. A well-formed netlist returns nil.
//
// The traversal is iterative Tarjan, so deeply chained netlists do not
// overflow the goroutine stack.
func (nl *Netlist) CombinationalSCCs() [][]GateID {
	n := len(nl.gates)
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		next  int32
		stack []GateID // Tarjan's component stack
		sccs  [][]GateID
	)

	// frame tracks one gate's DFS position: gi is the gate, pin/out iterate
	// its successor edges (readers of its output net).
	type frame struct {
		gi   GateID
		succ []GateID
		next int
	}
	successors := func(gi GateID) []GateID {
		out := nl.gates[gi].Output
		if !nl.validNet(out) {
			return nil
		}
		fan := nl.nets[out].Fanout
		succ := make([]GateID, 0, len(fan))
		for _, f := range fan {
			if nl.validGate(f) && nl.gates[f].Kind != logic.DFF {
				succ = append(succ, f)
			}
		}
		return succ
	}

	var dfs []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited || nl.gates[root].Kind == logic.DFF {
			continue
		}
		dfs = append(dfs[:0], frame{gi: GateID(root), succ: successors(GateID(root))})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, GateID(root))
		onStack[root] = true

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			if f.next < len(f.succ) {
				w := f.succ[f.next]
				f.next++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{gi: w, succ: successors(w)})
				} else if onStack[w] && index[w] < low[f.gi] {
					low[f.gi] = index[w]
				}
				continue
			}
			// All successors done: close the node, maybe pop a component.
			gi := f.gi
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				parent := &dfs[len(dfs)-1]
				if low[gi] < low[parent.gi] {
					low[parent.gi] = low[gi]
				}
			}
			if low[gi] != index[gi] {
				continue
			}
			var comp []GateID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == gi {
					break
				}
			}
			if len(comp) == 1 && !nl.selfLoop(comp[0]) {
				continue
			}
			sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
			sccs = append(sccs, comp)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

// selfLoop reports whether the gate reads its own output.
func (nl *Netlist) selfLoop(gi GateID) bool {
	out := nl.gates[gi].Output
	for _, in := range nl.gates[gi].Inputs {
		if in == out {
			return true
		}
	}
	return false
}
