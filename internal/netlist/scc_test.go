package netlist

import (
	"strings"
	"testing"

	"gatewords/internal/logic"
)

func sccNames(nl *Netlist, sccs [][]GateID) [][]string {
	out := make([][]string, len(sccs))
	for i, comp := range sccs {
		for _, g := range comp {
			out[i] = append(out[i], nl.Gate(g).Name)
		}
	}
	return out
}

func TestCombinationalSCCsAcyclic(t *testing.T) {
	nl, _, _, _, _ := small(t)
	if sccs := nl.CombinationalSCCs(); len(sccs) != 0 {
		t.Errorf("acyclic netlist has SCCs: %v", sccNames(nl, sccs))
	}
}

func TestCombinationalSCCsTwoGateCycle(t *testing.T) {
	nl := New("t")
	x := nl.MustNet("x")
	y := nl.MustNet("y")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	nl.MustGate("g1", logic.Nand, y, x, a)
	nl.MustGate("g2", logic.Not, x, y)
	// A side gate outside the cycle must not be swept in.
	z := nl.MustNet("z")
	nl.MustGate("g3", logic.Not, z, y)
	sccs := nl.CombinationalSCCs()
	if len(sccs) != 1 || len(sccs[0]) != 2 {
		t.Fatalf("SCCs = %v", sccNames(nl, sccs))
	}
	names := sccNames(nl, sccs)[0]
	if names[0] != "g1" || names[1] != "g2" {
		t.Errorf("cycle members = %v", names)
	}
}

func TestCombinationalSCCsSelfLoop(t *testing.T) {
	nl := New("t")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	y := nl.MustNet("y")
	nl.MustGate("loop", logic.Nand, y, y, a)
	sccs := nl.CombinationalSCCs()
	if len(sccs) != 1 || len(sccs[0]) != 1 || nl.Gate(sccs[0][0]).Name != "loop" {
		t.Fatalf("SCCs = %v", sccNames(nl, sccs))
	}
}

func TestCombinationalSCCsDFFBreaksCycle(t *testing.T) {
	nl := New("t")
	q := nl.MustNet("q")
	d := nl.MustNet("d")
	nl.MustGate("inv", logic.Not, d, q)
	nl.MustGate("ff", logic.DFF, q, d)
	if sccs := nl.CombinationalSCCs(); len(sccs) != 0 {
		t.Errorf("DFF-closed loop reported as combinational: %v", sccNames(nl, sccs))
	}
}

func TestCombinationalSCCsTwoDisjointCycles(t *testing.T) {
	nl := New("t")
	mk := func(prefix string) {
		x := nl.MustNet(prefix + "x")
		y := nl.MustNet(prefix + "y")
		nl.MustGate(prefix+"a", logic.Not, y, x)
		nl.MustGate(prefix+"b", logic.Not, x, y)
	}
	mk("p")
	mk("q")
	sccs := nl.CombinationalSCCs()
	if len(sccs) != 2 {
		t.Fatalf("SCCs = %v", sccNames(nl, sccs))
	}
	if got := sccNames(nl, sccs); got[0][0] != "pa" || got[1][0] != "qa" {
		t.Errorf("components out of order: %v", got)
	}
}

func TestTopoOrderCycleErrorNamesGates(t *testing.T) {
	nl := New("t")
	x := nl.MustNet("x")
	y := nl.MustNet("y")
	nl.MustGate("ring1", logic.Not, y, x)
	nl.MustGate("ring2", logic.Not, x, y)
	_, err := nl.TopoOrder()
	if err == nil {
		t.Fatal("combinational cycle not detected")
	}
	msg := err.Error()
	if !strings.Contains(msg, "ring1") || !strings.Contains(msg, "ring2") {
		t.Errorf("cycle error does not name the member gates: %v", err)
	}
}
