package netlist

import "gatewords/internal/logic"

// View is a read-only functional view of a (possibly simplified) netlist.
// The base netlist implements View directly; the circuit reducer implements
// it as an overlay in which constant-valued nets disappear, dead gates have
// no driver, and gates with dropped inputs report a rewritten kind (e.g. a
// 2-input NAND whose second input became non-controlling reports NOT).
//
// All structural analyses (fanin cones, hash keys, subtree matching) are
// written against View so they apply unchanged to reduced circuits.
type View interface {
	// DriverOf returns the gate driving net n, or NoGate if the net is a
	// primary input, is undriven, or has been simplified away.
	DriverOf(n NetID) GateID
	// GateKind returns the effective kind of gate g under this view.
	GateKind(g GateID) logic.Kind
	// GateInputs appends the surviving input nets of gate g to buf and
	// returns the extended slice. Pin order is preserved.
	GateInputs(g GateID, buf []NetID) []NetID
	// NetConst returns the constant value of net n under this view, if the
	// view has inferred one.
	NetConst(n NetID) (logic.Value, bool)
}

// DriverOf implements View on the unreduced netlist.
func (nl *Netlist) DriverOf(n NetID) GateID { return nl.nets[n].Driver }

// GateKind implements View on the unreduced netlist.
func (nl *Netlist) GateKind(g GateID) logic.Kind { return nl.gates[g].Kind }

// GateInputs implements View on the unreduced netlist.
func (nl *Netlist) GateInputs(g GateID, buf []NetID) []NetID {
	return append(buf, nl.gates[g].Inputs...)
}

// NetConst implements View on the unreduced netlist; no net is constant.
func (nl *Netlist) NetConst(NetID) (logic.Value, bool) { return logic.X, false }

var _ View = (*Netlist)(nil)
