package netlist

import (
	"fmt"
	"sort"
)

// Fingerprint returns a canonical content hash of the netlist, rendered as
// 32 hex digits. Two netlists have the same fingerprint exactly when they
// contain the same nets (name, PI/PO marking) and the same gates (kind,
// output net, input nets in pin order) — regardless of the order nets and
// gates were declared in. Gate instance names are excluded: they carry no
// circuit semantics, only diagnostics.
//
// The hash is the content-addressed cache key of the identification service
// (internal/service): repeated submissions of one design — including the
// same design re-emitted with shuffled declarations — collapse onto one
// cache entry. Note the deliberate asymmetry with the pipeline itself, whose
// §2.2 adjacency grouping reads declaration order: the cache treats
// reordered declarations of one circuit as the same design and serves the
// first run's report.
//
// Construction follows the cone.Interner hashing idiom: fnv-1a over small
// canonical tuples, made declaration-order-independent by hashing each net
// and gate record separately, sorting the record hashes, and folding the
// sorted sequence. Two independent folds with different seeds give 128 bits,
// so accidental collisions are not a practical concern for cache keying.
func (nl *Netlist) Fingerprint() string {
	recs := make([]uint64, 0, len(nl.gates)+len(nl.nets))
	for i := range nl.gates {
		g := &nl.gates[i]
		h := uint64(fnvOffset64)
		h = (h ^ 'g') * fnvPrime64
		h = (h ^ uint64(g.Kind)) * fnvPrime64
		h = fnvString(h, nl.nets[g.Output].Name)
		for _, in := range g.Inputs {
			h = fnvString(h, nl.nets[in].Name)
		}
		h = (h ^ uint64(len(g.Inputs))) * fnvPrime64
		recs = append(recs, h)
	}
	for i := range nl.nets {
		n := &nl.nets[i]
		h := uint64(fnvOffset64)
		h = (h ^ 'n') * fnvPrime64
		h = fnvString(h, n.Name)
		var flags uint64
		if n.IsPI {
			flags |= 1
		}
		if n.IsPO {
			flags |= 2
		}
		h = (h ^ flags) * fnvPrime64
		recs = append(recs, h)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i] < recs[j] })
	return fmt.Sprintf("%016x%016x", nl.foldRecords(recs, fnvOffset64),
		nl.foldRecords(recs, fingerprintSeed2))
}

const (
	fnvOffset64      = 14695981039346656037
	fnvPrime64       = 1099511628211
	fingerprintSeed2 = 0x9e3779b97f4a7c15 // golden-ratio seed for the second fold
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return (h ^ uint64(len(s))) * fnvPrime64
}

func (nl *Netlist) foldRecords(recs []uint64, seed uint64) uint64 {
	h := fnvString(seed, nl.Name)
	for _, r := range recs {
		h = (h ^ r) * fnvPrime64
	}
	return (h ^ uint64(len(recs))) * fnvPrime64
}
