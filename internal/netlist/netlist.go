// Package netlist provides the in-memory representation of a flattened
// gate-level netlist: named nets, gates with ordered input pins, primary
// ports, and flip-flops. It preserves the gate declaration order of the
// source file, which the word-identification front end depends on (the
// adjacency grouping of DAC'15 §2.2 works on netlist-file line order).
//
// The package also defines View, a read-only functional view of a netlist
// that higher layers (fanin-cone hashing, circuit reduction) share, so that
// a constant-propagated "reduced circuit" can be analyzed without mutating
// or cloning the underlying netlist.
package netlist

import (
	"fmt"
	"sort"
	"strings"

	"gatewords/internal/logic"
)

// NetID indexes a net within a Netlist.
type NetID int32

// GateID indexes a gate within a Netlist.
type GateID int32

// Sentinel IDs for "no net" / "no gate".
const (
	NoNet  NetID  = -1
	NoGate GateID = -1
)

// Net is a single wire. A net has at most one driver; nets without a driver
// are primary inputs (or floating, which Validate rejects unless marked PI).
type Net struct {
	Name   string
	Driver GateID // NoGate if undriven
	Fanout []GateID
	IsPI   bool
	IsPO   bool
}

// Gate is a cell instance. Inputs are ordered pins; for logic.Mux2 the order
// is [sel, a, b], for logic.Aoi21/Oai21 it is [a, b, c], for logic.DFF it is
// [d]. Clock and reset pins are abstracted away: word identification is a
// purely structural analysis of the data path.
type Gate struct {
	Name   string
	Kind   logic.Kind
	Inputs []NetID
	Output NetID
}

// Netlist is a flattened gate-level design.
type Netlist struct {
	Name   string
	nets   []Net
	gates  []Gate
	byName map[string]NetID
	// extraDrivers records multi-driver conflicts accepted by the lenient
	// construction path (AddGateLenient) for later diagnosis.
	extraDrivers []ExtraDriver
}

// New returns an empty netlist with the given design name.
func New(name string) *Netlist {
	return &Netlist{Name: name, byName: make(map[string]NetID)}
}

// AddNet creates a new net with a unique name and returns its ID.
func (nl *Netlist) AddNet(name string) (NetID, error) {
	if name == "" {
		return NoNet, fmt.Errorf("netlist %s: empty net name", nl.Name)
	}
	if _, dup := nl.byName[name]; dup {
		return NoNet, fmt.Errorf("netlist %s: duplicate net %q", nl.Name, name)
	}
	id := NetID(len(nl.nets))
	nl.nets = append(nl.nets, Net{Name: name, Driver: NoGate})
	nl.byName[name] = id
	return id, nil
}

// MustNet is AddNet for construction code where duplicate names are a
// programming error.
func (nl *Netlist) MustNet(name string) NetID {
	id, err := nl.AddNet(name)
	if err != nil {
		panic(err)
	}
	return id
}

// EnsureNet returns the existing net named name, creating it if necessary.
func (nl *Netlist) EnsureNet(name string) NetID {
	if id, ok := nl.byName[name]; ok {
		return id
	}
	return nl.MustNet(name)
}

// AddGate appends a gate driving output from inputs. Gate order is
// preserved; it is the "file order" that the word-identification adjacency
// pass relies on.
func (nl *Netlist) AddGate(name string, kind logic.Kind, output NetID, inputs ...NetID) (GateID, error) {
	if !kind.IsCombinational() && !kind.IsSequential() {
		return NoGate, fmt.Errorf("netlist %s: gate %q has invalid kind %s", nl.Name, name, kind)
	}
	if !kind.ValidArity(len(inputs)) {
		return NoGate, fmt.Errorf("netlist %s: gate %q: %s with %d inputs", nl.Name, name, kind, len(inputs))
	}
	if !nl.validNet(output) {
		return NoGate, fmt.Errorf("netlist %s: gate %q: bad output net %d", nl.Name, name, output)
	}
	if nl.nets[output].Driver != NoGate {
		return NoGate, fmt.Errorf("netlist %s: gate %q: net %q already driven", nl.Name, name, nl.nets[output].Name)
	}
	for _, in := range inputs {
		if !nl.validNet(in) {
			return NoGate, fmt.Errorf("netlist %s: gate %q: bad input net %d", nl.Name, name, in)
		}
	}
	id := GateID(len(nl.gates))
	g := Gate{Name: name, Kind: kind, Inputs: append([]NetID(nil), inputs...), Output: output}
	nl.gates = append(nl.gates, g)
	nl.nets[output].Driver = id
	for _, in := range inputs {
		nl.nets[in].Fanout = append(nl.nets[in].Fanout, id)
	}
	return id, nil
}

// MustGate is AddGate that panics on error, for construction code.
func (nl *Netlist) MustGate(name string, kind logic.Kind, output NetID, inputs ...NetID) GateID {
	id, err := nl.AddGate(name, kind, output, inputs...)
	if err != nil {
		panic(err)
	}
	return id
}

func (nl *Netlist) validNet(id NetID) bool { return id >= 0 && int(id) < len(nl.nets) }

func (nl *Netlist) validGate(id GateID) bool { return id >= 0 && int(id) < len(nl.gates) }

// MarkPI marks a net as a primary input.
func (nl *Netlist) MarkPI(id NetID) { nl.nets[id].IsPI = true }

// MarkPO marks a net as a primary output.
func (nl *Netlist) MarkPO(id NetID) { nl.nets[id].IsPO = true }

// NetCount returns the number of nets.
func (nl *Netlist) NetCount() int { return len(nl.nets) }

// GateCount returns the number of gates (including DFFs).
func (nl *Netlist) GateCount() int { return len(nl.gates) }

// Net returns the net with the given ID. The pointer stays valid until the
// next AddNet call.
func (nl *Netlist) Net(id NetID) *Net { return &nl.nets[id] }

// Gate returns the gate with the given ID. The pointer stays valid until the
// next AddGate call.
func (nl *Netlist) Gate(id GateID) *Gate { return &nl.gates[id] }

// NetByName returns the ID of the named net.
func (nl *Netlist) NetByName(name string) (NetID, bool) {
	id, ok := nl.byName[name]
	return id, ok
}

// NetName returns the name of a net, or "<none>" for NoNet.
func (nl *Netlist) NetName(id NetID) string {
	if !nl.validNet(id) {
		return "<none>"
	}
	return nl.nets[id].Name
}

// PIs returns the primary input nets in ID order.
func (nl *Netlist) PIs() []NetID {
	var out []NetID
	for i := range nl.nets {
		if nl.nets[i].IsPI {
			out = append(out, NetID(i))
		}
	}
	return out
}

// POs returns the primary output nets in ID order.
func (nl *Netlist) POs() []NetID {
	var out []NetID
	for i := range nl.nets {
		if nl.nets[i].IsPO {
			out = append(out, NetID(i))
		}
	}
	return out
}

// DFFs returns the IDs of all flip-flop gates in file order.
func (nl *Netlist) DFFs() []GateID {
	var out []GateID
	for i := range nl.gates {
		if nl.gates[i].Kind == logic.DFF {
			out = append(out, GateID(i))
		}
	}
	return out
}

// Validate checks structural invariants: pin arities, driver/fanout index
// consistency, no multiply-driven nets, and that every undriven net is a
// primary input or a constant tie-off candidate (we require PI). It is a
// thin wrapper over StructuralViolations — the same checks internal/netlint
// exposes as error-severity rules — and reports every violation at once,
// joined into a single error.
func (nl *Netlist) Validate() error {
	return nl.joinViolations(nl.StructuralViolations())
}

// Clone returns a deep copy of the netlist.
func (nl *Netlist) Clone() *Netlist {
	out := &Netlist{
		Name:         nl.Name,
		nets:         make([]Net, len(nl.nets)),
		gates:        make([]Gate, len(nl.gates)),
		byName:       make(map[string]NetID, len(nl.byName)),
		extraDrivers: append([]ExtraDriver(nil), nl.extraDrivers...),
	}
	for i, n := range nl.nets {
		n.Fanout = append([]GateID(nil), n.Fanout...)
		out.nets[i] = n
		out.byName[n.Name] = NetID(i)
	}
	for i, g := range nl.gates {
		g.Inputs = append([]NetID(nil), g.Inputs...)
		out.gates[i] = g
	}
	return out
}

// Stats summarizes a netlist for reporting.
type Stats struct {
	Nets     int
	Gates    int // combinational gates only
	DFFs     int
	PIs      int
	POs      int
	ByKind   map[logic.Kind]int
	MaxFanin int
}

// ComputeStats gathers Stats for the netlist.
func (nl *Netlist) ComputeStats() Stats {
	s := Stats{Nets: len(nl.nets), ByKind: make(map[logic.Kind]int)}
	for i := range nl.gates {
		g := &nl.gates[i]
		s.ByKind[g.Kind]++
		if g.Kind == logic.DFF {
			s.DFFs++
		} else {
			s.Gates++
		}
		if len(g.Inputs) > s.MaxFanin {
			s.MaxFanin = len(g.Inputs)
		}
	}
	for i := range nl.nets {
		if nl.nets[i].IsPI {
			s.PIs++
		}
		if nl.nets[i].IsPO {
			s.POs++
		}
	}
	return s
}

// TopoOrder returns the combinational gates in topological order (inputs
// before outputs), treating DFF outputs and primary inputs as sources. It
// returns an error if the combinational logic contains a cycle.
func (nl *Netlist) TopoOrder() ([]GateID, error) {
	indeg := make([]int, len(nl.gates))
	ready := make([]GateID, 0, len(nl.gates))
	for gi := range nl.gates {
		g := &nl.gates[gi]
		if g.Kind == logic.DFF {
			continue
		}
		deg := 0
		for _, in := range g.Inputs {
			d := nl.nets[in].Driver
			if d != NoGate && nl.gates[d].Kind != logic.DFF {
				deg++
			}
		}
		indeg[gi] = deg
		if deg == 0 {
			ready = append(ready, GateID(gi))
		}
	}
	order := make([]GateID, 0, len(nl.gates))
	for len(ready) > 0 {
		g := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, g)
		// Fanout holds one entry per reading pin, so a gate reading this
		// net on several pins is decremented once per pin — exactly
		// matching how indeg counted it above.
		for _, f := range nl.nets[nl.gates[g].Output].Fanout {
			if nl.gates[f].Kind == logic.DFF {
				continue
			}
			indeg[f]--
			if indeg[f] == 0 {
				ready = append(ready, f)
			}
		}
	}
	want := 0
	for gi := range nl.gates {
		if nl.gates[gi].Kind != logic.DFF {
			want++
		}
	}
	if len(order) != want {
		return nil, fmt.Errorf("netlist %s: combinational cycle detected (%d of %d gates ordered; cycle through %s)",
			nl.Name, len(order), want, nl.describeFirstCycle())
	}
	return order, nil
}

// describeFirstCycle names the member gates of the first combinational
// cycle (smallest gate ID), for TopoOrder's error message. At most five
// names are listed.
func (nl *Netlist) describeFirstCycle() string {
	sccs := nl.CombinationalSCCs()
	if len(sccs) == 0 {
		return "<unknown>"
	}
	cyc := sccs[0]
	const maxNamed = 5
	names := make([]string, 0, maxNamed)
	for _, g := range cyc {
		if len(names) == maxNamed {
			break
		}
		names = append(names, fmt.Sprintf("%q", nl.gates[g].Name))
	}
	s := strings.Join(names, ", ")
	if len(cyc) > maxNamed {
		s += fmt.Sprintf(", +%d more", len(cyc)-maxNamed)
	}
	return s
}

// SortedNetNames returns all net names sorted; intended for deterministic
// test output and debugging.
func (nl *Netlist) SortedNetNames() []string {
	names := make([]string, len(nl.nets))
	for i := range nl.nets {
		names[i] = nl.nets[i].Name
	}
	sort.Strings(names)
	return names
}
