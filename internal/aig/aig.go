// Package aig implements an And-Inverter Graph: the canonical two-input
// normal form for combinational logic, with structural hashing and constant
// folding applied at construction. It is the semantic core of the
// equivalence-checking layer (internal/eqcheck): two cones lowered into one
// shared AIG that end on the same literal are proved equal by construction,
// and the 64-bit-parallel simulator plus the Tseitin encoding both read the
// graph directly.
//
// Representation: node 0 is the constant-false node; every other node is
// either a free input variable or a two-input AND. A Lit is a node index
// shifted left one bit with the low bit carrying negation, so inversion is
// free (lit ^ 1) and the graph never stores NOT nodes. Nodes are appended in
// topological order by construction — a node's fanins always have smaller
// indices — which lets simulation and CNF export run as single forward
// passes.
package aig

import "fmt"

// Lit is a literal: an AIG node index with a negation bit in the LSB.
type Lit uint32

// The two constant literals (both refer to node 0).
const (
	False Lit = 0 // constant-false literal
	True  Lit = 1 // constant-true literal (node 0, negated)
)

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Node returns the node index the literal refers to.
func (l Lit) Node() int { return int(l >> 1) }

// Negated reports whether the literal is complemented.
func (l Lit) Negated() bool { return l&1 == 1 }

// String renders a literal as "n12" / "!n12" / "0" / "1".
func (l Lit) String() string {
	switch l {
	case False:
		return "0"
	case True:
		return "1"
	}
	if l.Negated() {
		return fmt.Sprintf("!n%d", l.Node())
	}
	return fmt.Sprintf("n%d", l.Node())
}

// node is one AIG node. AND nodes store their two fanin literals; input
// nodes and the constant node store the sentinel in fan0 and the input index
// (or -1 for the constant) in fan1.
type node struct {
	fan0, fan1 Lit
}

// noFanin marks non-AND nodes (constant, inputs) in node.fan0.
const noFanin Lit = ^Lit(0)

// AIG is a growing And-Inverter Graph with structural hashing.
type AIG struct {
	nodes  []node
	strash map[[2]Lit]Lit

	inputNode []int32  // node index of each input, by input index
	inputName []string // name of each input, by input index
	byName    map[string]int
	numAnds   int
}

// New returns an empty AIG holding only the constant node.
func New() *AIG {
	g := &AIG{
		strash: make(map[[2]Lit]Lit),
		byName: make(map[string]int),
	}
	g.nodes = append(g.nodes, node{fan0: noFanin, fan1: noFanin})
	return g
}

// NumNodes returns the total node count (constant + inputs + ANDs).
func (g *AIG) NumNodes() int { return len(g.nodes) }

// NumAnds returns the number of AND nodes.
func (g *AIG) NumAnds() int { return g.numAnds }

// NumInputs returns the number of free input variables.
func (g *AIG) NumInputs() int { return len(g.inputNode) }

// InputName returns the name of input i.
func (g *AIG) InputName(i int) string { return g.inputName[i] }

// InputLit returns the positive literal of input i.
func (g *AIG) InputLit(i int) Lit { return Lit(g.inputNode[i]) << 1 }

// InputByName returns the positive literal of the named input, if it exists.
func (g *AIG) InputByName(name string) (Lit, bool) {
	i, ok := g.byName[name]
	if !ok {
		return False, false
	}
	return g.InputLit(i), true
}

// Input returns the literal of the free variable called name, creating the
// input node on first use. Inputs are deduplicated by name, which is what
// lets two netlists (or two cones) lowered into one AIG share their input
// space.
func (g *AIG) Input(name string) Lit {
	if i, ok := g.byName[name]; ok {
		return g.InputLit(i)
	}
	idx := len(g.nodes)
	g.nodes = append(g.nodes, node{fan0: noFanin, fan1: Lit(len(g.inputNode))})
	g.byName[name] = len(g.inputNode)
	g.inputNode = append(g.inputNode, int32(idx))
	g.inputName = append(g.inputName, name)
	return Lit(idx) << 1
}

// inputIndex returns the input index of node n, or -1 for AND/constant nodes.
func (g *AIG) inputIndex(n int) int {
	nd := g.nodes[n]
	if nd.fan0 != noFanin || nd.fan1 == noFanin {
		return -1
	}
	return int(nd.fan1)
}

// IsAnd reports whether node n is an AND node and returns its fanins.
func (g *AIG) IsAnd(n int) (fan0, fan1 Lit, ok bool) {
	nd := g.nodes[n]
	if nd.fan0 == noFanin {
		return 0, 0, false
	}
	return nd.fan0, nd.fan1, true
}

// And returns the literal of a AND b, applying the one-level folding rules
// (constants, idempotence, complementation) and structural hashing.
func (g *AIG) And(a, b Lit) Lit {
	// Constant and trivial folds.
	if a == False || b == False || a == b.Not() {
		return False
	}
	if a == True || a == b {
		return b
	}
	if b == True {
		return a
	}
	// Canonical operand order for hashing.
	if a > b {
		a, b = b, a
	}
	key := [2]Lit{a, b}
	if l, ok := g.strash[key]; ok {
		return l
	}
	idx := len(g.nodes)
	g.nodes = append(g.nodes, node{fan0: a, fan1: b})
	g.numAnds++
	l := Lit(idx) << 1
	g.strash[key] = l
	return l
}

// Or returns a OR b.
func (g *AIG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a XOR b.
func (g *AIG) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Mux returns sel ? b : a (matching the netlist MUX2 pin convention
// [sel, a, b]). Equal data pins fold to the data value — the structural
// counterpart of logic.Eval's MUX2 X-optimism rule.
func (g *AIG) Mux(sel, a, b Lit) Lit {
	if a == b {
		return a
	}
	return g.Or(g.And(sel, b), g.And(sel.Not(), a))
}

// AndN folds AND over ins (True for the empty list).
func (g *AIG) AndN(ins []Lit) Lit {
	out := True
	for _, l := range ins {
		out = g.And(out, l)
	}
	return out
}

// OrN folds OR over ins (False for the empty list).
func (g *AIG) OrN(ins []Lit) Lit {
	out := False
	for _, l := range ins {
		out = g.Or(out, l)
	}
	return out
}

// XorN folds XOR over ins (odd parity; False for the empty list).
func (g *AIG) XorN(ins []Lit) Lit {
	out := False
	for _, l := range ins {
		out = g.Xor(out, l)
	}
	return out
}

// Support returns the input indices the cone of l depends on, ascending.
func (g *AIG) Support(l Lit) []int {
	seen := make([]bool, len(g.nodes))
	var out []int
	var walk func(n int)
	walk = func(n int) {
		if seen[n] {
			return
		}
		seen[n] = true
		if f0, f1, ok := g.IsAnd(n); ok {
			walk(f0.Node())
			walk(f1.Node())
			return
		}
		if i := g.inputIndex(n); i >= 0 {
			out = append(out, i)
		}
	}
	walk(l.Node())
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// ConeNodes returns the node indices in the transitive fanin cone of each
// root (inputs and constant included), in ascending index order.
func (g *AIG) ConeNodes(roots ...Lit) []int {
	seen := make([]bool, len(g.nodes))
	var stack []int
	for _, r := range roots {
		if !seen[r.Node()] {
			seen[r.Node()] = true
			stack = append(stack, r.Node())
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f0, f1, ok := g.IsAnd(n); ok {
			if !seen[f0.Node()] {
				seen[f0.Node()] = true
				stack = append(stack, f0.Node())
			}
			if !seen[f1.Node()] {
				seen[f1.Node()] = true
				stack = append(stack, f1.Node())
			}
		}
	}
	var out []int
	for n, s := range seen {
		if s {
			out = append(out, n)
		}
	}
	return out
}

// Sim64 evaluates every node under 64 parallel input patterns: inputWords[i]
// carries the 64 values of input i, one per bit lane. The returned slice is
// indexed by node; read literals with Word. buf, when non-nil, is reused.
func (g *AIG) Sim64(inputWords []uint64, buf []uint64) []uint64 {
	vals := buf
	if cap(vals) < len(g.nodes) {
		vals = make([]uint64, len(g.nodes))
	}
	vals = vals[:len(g.nodes)]
	vals[0] = 0
	for n := 1; n < len(g.nodes); n++ {
		nd := g.nodes[n]
		if nd.fan0 == noFanin {
			vals[n] = inputWords[nd.fan1]
			continue
		}
		vals[n] = litWord(vals, nd.fan0) & litWord(vals, nd.fan1)
	}
	return vals
}

func litWord(vals []uint64, l Lit) uint64 {
	w := vals[l.Node()]
	if l.Negated() {
		return ^w
	}
	return w
}

// Word reads the 64 parallel values of a literal from a Sim64 result.
func Word(vals []uint64, l Lit) uint64 { return litWord(vals, l) }

// EvalBool evaluates literal l under a single assignment of the inputs
// (indexed by input index; missing entries read false).
func (g *AIG) EvalBool(assign []bool, l Lit) bool {
	words := make([]uint64, g.NumInputs())
	for i := range words {
		if i < len(assign) && assign[i] {
			words[i] = ^uint64(0)
		}
	}
	vals := g.Sim64(words, nil)
	return Word(vals, l)&1 == 1
}
