package aig

import (
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

func TestFoldingRules(t *testing.T) {
	g := New()
	a, b := g.Input("a"), g.Input("b")
	cases := []struct {
		name string
		got  Lit
		want Lit
	}{
		{"and-false", g.And(a, False), False},
		{"and-true", g.And(a, True), a},
		{"and-idempotent", g.And(a, a), a},
		{"and-complement", g.And(a, a.Not()), False},
		{"or-true", g.Or(a, True), True},
		{"or-false", g.Or(a, False), a},
		{"xor-self", g.Xor(a, a), False},
		{"xor-complement", g.Xor(a, a.Not()), True},
		{"mux-same", g.Mux(b, a, a), a},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestStructuralHashing(t *testing.T) {
	g := New()
	a, b, c := g.Input("a"), g.Input("b"), g.Input("c")
	x1 := g.And(g.And(a, b), c)
	x2 := g.And(g.And(a, b), c)
	if x1 != x2 {
		t.Fatalf("identical structure not hashed: %v vs %v", x1, x2)
	}
	y1 := g.And(a, b)
	y2 := g.And(b, a)
	if y1 != y2 {
		t.Fatalf("commuted AND not hashed: %v vs %v", y1, y2)
	}
	if g.NumAnds() != 2 {
		t.Fatalf("NumAnds = %d, want 2", g.NumAnds())
	}
}

func TestInputDedup(t *testing.T) {
	g := New()
	if g.Input("x") != g.Input("x") {
		t.Fatal("same-name inputs not deduplicated")
	}
	if g.NumInputs() != 1 {
		t.Fatalf("NumInputs = %d, want 1", g.NumInputs())
	}
}

// TestLowerGateMatchesEval checks, for every combinational kind and every
// admissible arity up to 4, that the AIG lowering computes exactly what
// logic.Eval computes on fully known inputs — i.e. the AIG's two-valued
// semantics is the completion of the three-valued one.
func TestLowerGateMatchesEval(t *testing.T) {
	for _, k := range logic.CombinationalKinds() {
		arities := []int{2, 3, 4}
		if n, fixed := k.FixedArity(); fixed {
			arities = []int{n}
		}
		for _, n := range arities {
			if !k.ValidArity(n) {
				continue
			}
			g := New()
			ins := make([]Lit, n)
			for i := range ins {
				ins[i] = g.Input(string(rune('a' + i)))
			}
			out, err := g.LowerGate(k, ins)
			if err != nil {
				t.Fatalf("%s/%d: %v", k, n, err)
			}
			for mask := 0; mask < 1<<n; mask++ {
				vals := make([]logic.Value, n)
				assign := make([]bool, n)
				for i := 0; i < n; i++ {
					bit := mask>>i&1 == 1
					assign[i] = bit
					vals[i] = logic.FromBool(bit)
				}
				want := logic.Eval(k, vals) == logic.One
				got := g.EvalBool(assign, out)
				if got != want {
					t.Errorf("%s/%d mask %b: aig=%v eval=%v", k, n, mask, got, want)
				}
			}
		}
	}
}

func TestLowerGateRejectsBadArity(t *testing.T) {
	g := New()
	if _, err := g.LowerGate(logic.Mux2, []Lit{g.Input("a")}); err == nil {
		t.Fatal("Mux2 with 1 input accepted")
	}
	if _, err := g.LowerGate(logic.DFF, []Lit{g.Input("a")}); err == nil {
		t.Fatal("DFF lowering accepted")
	}
}

func TestSim64(t *testing.T) {
	g := New()
	a, b := g.Input("a"), g.Input("b")
	x := g.Xor(a, b)
	// Lane i carries pattern (a,b) = (i&1, i>>1&1) for i in 0..3.
	words := []uint64{0b0101, 0b0011}
	vals := g.Sim64(words, nil)
	if got := Word(vals, x) & 0xf; got != 0b0110 {
		t.Fatalf("xor word = %04b, want 0110", got)
	}
	if got := Word(vals, x.Not()) & 0xf; got != 0b1001 {
		t.Fatalf("!xor word = %04b, want 1001", got)
	}
}

func TestSupport(t *testing.T) {
	g := New()
	a, b := g.Input("a"), g.Input("b")
	g.Input("c") // unused
	x := g.And(a, g.Or(b, a))
	sup := g.Support(x)
	if len(sup) != 2 || g.InputName(sup[0]) != "a" || g.InputName(sup[1]) != "b" {
		t.Fatalf("support = %v", sup)
	}
	if s := g.Support(True); len(s) != 0 {
		t.Fatalf("support of constant = %v", s)
	}
}

// buildFrameNetlist is a small mixed netlist: one PO cone, one flip-flop.
func buildFrameNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("frame")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	nl.MarkPI(a)
	nl.MarkPI(b)
	q := nl.MustNet("q")
	x := nl.MustNet("x")
	y := nl.MustNet("y")
	nl.MustGate("g1", logic.And, x, a, q)
	nl.MustGate("g2", logic.Xor, y, x, b)
	nl.MustGate("ff", logic.DFF, q, y)
	nl.MarkPO(y)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestAddFrame(t *testing.T) {
	nl := buildFrameNetlist(t)
	g := New()
	f, err := AddFrame(g, nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Inputs: a, b, q (FF output). Outputs: y (PO) and ff:ff (next state).
	for _, in := range []string{"a", "b", "q"} {
		if _, ok := f.Inputs[in]; !ok {
			t.Errorf("missing frame input %q", in)
		}
	}
	if _, ok := f.Outputs["y"]; !ok {
		t.Error("missing PO observable y")
	}
	if _, ok := f.Outputs[FFPrefix+"ff"]; !ok {
		t.Error("missing next-state observable ff:ff")
	}
	// y = (a&q) ^ b; check one assignment: a=1 q=1 b=0 -> 1.
	words := map[string]uint64{"a": ^uint64(0), "q": ^uint64(0), "b": 0}
	in := make([]uint64, g.NumInputs())
	for i := 0; i < g.NumInputs(); i++ {
		in[i] = words[g.InputName(i)]
	}
	vals := g.Sim64(in, nil)
	if Word(vals, f.Outputs["y"])&1 != 1 {
		t.Error("y != 1 under a=1 q=1 b=0")
	}
	// Next state equals y in this netlist.
	if f.Outputs["y"] != f.Outputs[FFPrefix+"ff"] {
		t.Error("next-state literal should strash-equal y")
	}
}

func TestAddFramePinInternalNet(t *testing.T) {
	nl := buildFrameNetlist(t)
	g := New()
	f, err := AddFrame(g, nl, map[string]logic.Value{"x": logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	// With x pinned to 0, y = 0 ^ b = b.
	if f.Outputs["y"] != f.Inputs["b"] {
		t.Fatalf("pinned frame: y = %v, want input b %v", f.Outputs["y"], f.Inputs["b"])
	}
}

func TestConeLowering(t *testing.T) {
	nl := buildFrameNetlist(t)
	cl := NewConeLowerer(New(), nl.NetName)
	y, _ := nl.NetByName("y")
	// Depth 1: only g2 expanded; x and b are cut variables.
	l1, internal, err := cl.LowerCone(nl, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(internal) != 1 || !internal[y] {
		t.Fatalf("depth-1 internal set = %v", internal)
	}
	want := cl.G.Xor(cl.VarFor(mustNet(t, nl, "x")), cl.VarFor(mustNet(t, nl, "b")))
	if l1 != want {
		t.Fatalf("depth-1 cone lit %v, want %v", l1, want)
	}
	// Depth 3: x expands to a&q; q is a DFF boundary, stays free.
	l3, internal3, err := cl.LowerCone(nl, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !internal3[mustNet(t, nl, "x")] {
		t.Fatal("depth-3 should expand x")
	}
	wx := cl.G.And(cl.VarFor(mustNet(t, nl, "a")), cl.VarFor(mustNet(t, nl, "q")))
	if l3 != cl.G.Xor(wx, cl.VarFor(mustNet(t, nl, "b"))) {
		t.Fatalf("depth-3 cone lit mismatch: %v", l3)
	}
}

func mustNet(t *testing.T, nl *netlist.Netlist, name string) netlist.NetID {
	t.Helper()
	id, ok := nl.NetByName(name)
	if !ok {
		t.Fatalf("no net %q", name)
	}
	return id
}
