package aig

import (
	"fmt"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// LowerGate lowers one combinational gate of the netlist cell vocabulary
// onto AIG literals. It returns an error for sequential or invalid kinds and
// for arities the kind does not admit (mirroring logic.Eval's panics, but
// recoverable: the equivalence checker must degrade to Unknown, not crash,
// on malformed views).
func (g *AIG) LowerGate(k logic.Kind, in []Lit) (Lit, error) {
	if !k.ValidArity(len(in)) {
		return False, fmt.Errorf("aig: %s gate with %d inputs", k, len(in))
	}
	switch k {
	case logic.Buf:
		return in[0], nil
	case logic.Not:
		return in[0].Not(), nil
	case logic.And:
		return g.AndN(in), nil
	case logic.Nand:
		return g.AndN(in).Not(), nil
	case logic.Or:
		return g.OrN(in), nil
	case logic.Nor:
		return g.OrN(in).Not(), nil
	case logic.Xor:
		return g.XorN(in), nil
	case logic.Xnor:
		return g.XorN(in).Not(), nil
	case logic.Mux2:
		return g.Mux(in[0], in[1], in[2]), nil
	case logic.Aoi21:
		return g.Or(g.And(in[0], in[1]), in[2]).Not(), nil
	case logic.Oai21:
		return g.And(g.Or(in[0], in[1]), in[2]).Not(), nil
	}
	return False, fmt.Errorf("aig: cannot lower non-combinational kind %s", k)
}

// constLit converts a known logic value to its constant literal.
func constLit(v logic.Value) Lit {
	if v == logic.One {
		return True
	}
	return False
}

// Frame is one netlist's combinational frame lowered into a (possibly
// shared) AIG: flip-flops are cut, so the frame's inputs are the primary
// inputs plus the flip-flop outputs (current state), and its outputs are the
// primary outputs plus the flip-flop D inputs (next state). Input variables
// are keyed by net name; lowering two netlists into one AIG therefore
// identifies their like-named inputs, which is what makes name-matched miter
// construction trivial.
type Frame struct {
	G *AIG
	// Inputs maps frame-input net names to their literals (pinned nets are
	// absent: they lowered to constants).
	Inputs map[string]Lit
	// Outputs maps observable names to literals: primary outputs under their
	// net name, next-state functions under "ff:" + the flip-flop gate name.
	Outputs map[string]Lit
	// OutputNames lists Outputs' keys in deterministic order (POs in net-ID
	// order, then flip-flops in file order).
	OutputNames []string

	netLits []Lit
	netHave []bool
}

// NetLit returns the literal computing net id's value in the frame, when the
// lowering produced one (every driven or input net has one; ok is false for
// nets that exist only as declarations).
func (f *Frame) NetLit(id netlist.NetID) (Lit, bool) {
	if int(id) >= len(f.netLits) || !f.netHave[id] {
		return False, false
	}
	return f.netLits[id], true
}

// FFPrefix distinguishes next-state observables from primary outputs in
// Frame.Outputs keys.
const FFPrefix = "ff:"

// AddFrame lowers nl's combinational frame into g. pin forces named nets to
// constants: a pinned frame-input simply becomes a constant, while a pinned
// internal net is cut — its driver cone is ignored and every reader sees the
// constant (the cofactor semantics used to compare a design against a
// reduced version under a control assignment). It fails on combinationally
// cyclic netlists and on gates the AIG cannot express.
func AddFrame(g *AIG, nl *netlist.Netlist, pin map[string]logic.Value) (*Frame, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	lits := make([]Lit, nl.NetCount())
	have := make([]bool, nl.NetCount())

	pinned := func(id netlist.NetID) (Lit, bool) {
		if len(pin) == 0 {
			return False, false
		}
		v, ok := pin[nl.NetName(id)]
		if !ok || !v.Known() {
			return False, false
		}
		return constLit(v), true
	}

	// Frame inputs: PIs and flip-flop outputs.
	for ni := 0; ni < nl.NetCount(); ni++ {
		id := netlist.NetID(ni)
		n := nl.Net(id)
		isFF := n.Driver != netlist.NoGate && nl.Gate(n.Driver).Kind == logic.DFF
		if !n.IsPI && !isFF {
			continue
		}
		if l, ok := pinned(id); ok {
			lits[id], have[id] = l, true
			continue
		}
		lits[id], have[id] = g.Input(n.Name), true
	}

	// Combinational gates in topological order. A gate whose output is
	// pinned is cut: readers already see the constant.
	for _, gi := range order {
		gate := nl.Gate(gi)
		if l, ok := pinned(gate.Output); ok {
			lits[gate.Output], have[gate.Output] = l, true
			continue
		}
		ins := make([]Lit, len(gate.Inputs))
		for i, in := range gate.Inputs {
			if !have[in] {
				// Undriven non-PI net (an X source): model it as a free
				// variable so lowering stays total on lenient netlists.
				lits[in], have[in] = g.Input(nl.NetName(in)), true
			}
			ins[i] = lits[in]
		}
		l, err := g.LowerGate(gate.Kind, ins)
		if err != nil {
			return nil, fmt.Errorf("aig: netlist %s gate %q: %w", nl.Name, gate.Name, err)
		}
		if have[gate.Output] {
			return nil, fmt.Errorf("aig: netlist %s: net %q multiply lowered", nl.Name, nl.NetName(gate.Output))
		}
		lits[gate.Output], have[gate.Output] = l, true
	}

	f := &Frame{G: g, Inputs: make(map[string]Lit), Outputs: make(map[string]Lit)}
	for ni := 0; ni < nl.NetCount(); ni++ {
		id := netlist.NetID(ni)
		n := nl.Net(id)
		isFF := n.Driver != netlist.NoGate && nl.Gate(n.Driver).Kind == logic.DFF
		if (n.IsPI || isFF) && have[id] {
			if _, isPinned := pinned(id); !isPinned {
				f.Inputs[n.Name] = lits[id]
			}
		}
		if n.IsPO {
			if !have[id] {
				lits[id], have[id] = g.Input(n.Name), true
			}
			f.Outputs[n.Name] = lits[id]
			f.OutputNames = append(f.OutputNames, n.Name)
		}
	}
	for _, gi := range nl.DFFs() {
		gate := nl.Gate(gi)
		d := gate.Inputs[0]
		if !have[d] {
			lits[d], have[d] = g.Input(nl.NetName(d)), true
		}
		key := FFPrefix + gate.Name
		f.Outputs[key] = lits[d]
		f.OutputNames = append(f.OutputNames, key)
	}
	f.netLits, f.netHave = lits, have
	return f, nil
}

// ConeInternal computes the internal-net set of the depth-limited fanin cone
// of root under view: a net is internal when its minimum fanin distance from
// root is below depth and it has a combinational driver and no constant
// value under the view. Everything else the cone touches — the depth
// frontier, primary inputs, flip-flop outputs — is a cut point, lowered as a
// free variable.
//
// The min-distance (BFS) rule gives every net a single role, which is what
// makes the cut semantically meaningful: the cone function is the
// composition of the internal gates over the cut variables.
func ConeInternal(view netlist.View, root netlist.NetID, depth int) map[netlist.NetID]bool {
	internal := make(map[netlist.NetID]bool)
	type item struct {
		net  netlist.NetID
		dist int
	}
	queue := []item{{root, 0}}
	seen := map[netlist.NetID]bool{root: true}
	var buf []netlist.NetID
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.dist >= depth {
			continue
		}
		if _, isConst := view.NetConst(it.net); isConst {
			continue
		}
		d := view.DriverOf(it.net)
		if d == netlist.NoGate || !view.GateKind(d).IsCombinational() {
			continue
		}
		internal[it.net] = true
		buf = view.GateInputs(d, buf[:0])
		for _, in := range buf {
			if !seen[in] {
				seen[in] = true
				queue = append(queue, item{in, it.dist + 1})
			}
		}
	}
	return internal
}

// ConeLowerer lowers fanin cones from netlist.Views into one shared AIG,
// keying the cut variables by net so that several lowerings — an original
// cone and its rewritten overlay — share their input space and can be
// mitered directly.
type ConeLowerer struct {
	G    *AIG
	name func(netlist.NetID) string
	vars map[netlist.NetID]Lit
}

// NewConeLowerer returns a lowerer over g. name renders a net as the
// variable name used for its cut literal (typically netlist.NetName).
func NewConeLowerer(g *AIG, name func(netlist.NetID) string) *ConeLowerer {
	return &ConeLowerer{G: g, name: name, vars: make(map[netlist.NetID]Lit)}
}

// VarFor returns the shared cut variable of a net.
func (cl *ConeLowerer) VarFor(n netlist.NetID) Lit {
	if l, ok := cl.vars[n]; ok {
		return l
	}
	l := cl.G.Input(cl.name(n))
	cl.vars[n] = l
	return l
}

// maxLowerNets bounds one cone lowering; exceeding it signals a runaway
// (cyclic or adversarial) view rather than a real depth-limited cone.
const maxLowerNets = 1 << 20

// LowerCut lowers the cone of root under view, expanding exactly the nets in
// internal (see ConeInternal) and cutting everything else to shared free
// variables; nets the view knows constant fold to constant literals. Passing
// one view's ConeInternal set to a second view's LowerCut compares the two
// views over the same frontier, which is the soundness condition for cone
// equivalence checking: a rewritten view's gates only ever reference nets of
// the original cone, so the shared cut covers both.
func (cl *ConeLowerer) LowerCut(view netlist.View, root netlist.NetID, internal map[netlist.NetID]bool) (Lit, error) {
	memo := make(map[netlist.NetID]Lit, len(internal))
	var active map[netlist.NetID]bool // cycle guard for broken views
	var buf []netlist.NetID
	var lower func(n netlist.NetID) (Lit, error)
	lower = func(n netlist.NetID) (Lit, error) {
		if l, ok := memo[n]; ok {
			return l, nil
		}
		if v, isConst := view.NetConst(n); isConst {
			l := constLit(v)
			memo[n] = l
			return l, nil
		}
		if !internal[n] {
			l := cl.VarFor(n)
			memo[n] = l
			return l, nil
		}
		d := view.DriverOf(n)
		if d == netlist.NoGate || !view.GateKind(d).IsCombinational() {
			l := cl.VarFor(n)
			memo[n] = l
			return l, nil
		}
		if active == nil {
			active = make(map[netlist.NetID]bool)
		}
		if active[n] {
			return False, fmt.Errorf("aig: combinational cycle through net %q during cone lowering", cl.name(n))
		}
		if len(memo) > maxLowerNets {
			return False, fmt.Errorf("aig: cone lowering exceeded %d nets", maxLowerNets)
		}
		active[n] = true
		buf = view.GateInputs(d, buf[:0])
		ins := make([]Lit, len(buf))
		pins := append([]netlist.NetID(nil), buf...)
		for i, in := range pins {
			l, err := lower(in)
			if err != nil {
				return False, err
			}
			ins[i] = l
		}
		active[n] = false
		l, err := cl.G.LowerGate(view.GateKind(d), ins)
		if err != nil {
			return False, err
		}
		memo[n] = l
		return l, nil
	}
	return lower(root)
}

// LowerCone lowers the depth-limited cone of root under view (cut computed
// by ConeInternal) and returns both the literal and the internal set, so a
// second view can be lowered over the identical frontier.
func (cl *ConeLowerer) LowerCone(view netlist.View, root netlist.NetID, depth int) (Lit, map[netlist.NetID]bool, error) {
	internal := ConeInternal(view, root, depth)
	l, err := cl.LowerCut(view, root, internal)
	return l, internal, err
}
