package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// SubmitRequest is the POST /v1/jobs body: exactly one of Verilog (inline
// structural Verilog; set Top for hierarchical sources) or Bench (a named
// internal/bench profile, see gatewords.BenchmarkNames).
type SubmitRequest struct {
	Verilog string     `json:"verilog,omitempty"`
	Top     string     `json:"top,omitempty"`
	Bench   string     `json:"bench,omitempty"`
	Options JobOptions `json:"options"`
}

// JobStatus is the wire form of a job, served by the submit and poll
// endpoints. Report is attached once the job is done.
type JobStatus struct {
	ID            string          `json:"id"`
	Status        string          `json:"status"`
	Module        string          `json:"module"`
	Key           string          `json:"key"`
	Cached        bool            `json:"cached,omitempty"`
	CoalescedWith string          `json:"coalesced_with,omitempty"`
	Interrupted   bool            `json:"interrupted,omitempty"`
	Error         string          `json:"error,omitempty"`
	Report        json.RawMessage `json:"report,omitempty"`
}

// statusLocked renders a job under the server mutex.
func statusLocked(j *Job, includeReport bool) JobStatus {
	st := JobStatus{
		ID:            j.ID,
		Status:        j.State,
		Module:        j.Module,
		Key:           j.Key,
		Cached:        j.Cached,
		CoalescedWith: j.CoalescedWith,
		Interrupted:   j.Interrupted,
		Error:         j.Err,
	}
	if includeReport && j.State == StateDone {
		st.Report = j.Report
	}
	return st
}

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs          submit a netlist; 202 (accepted) or 200 (cache hit)
//	GET  /v1/jobs          list jobs in submission order (no reports)
//	GET  /v1/jobs/{id}     poll one job; report attached when done
//	GET  /metrics          server counters + merged pipeline observability
//	GET  /healthz          liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleHealthz is the liveness/readiness probe: 200 while serving, 503 with
// {"state":"draining"} from the moment shutdown begins until the process
// exits, so load balancers stop routing new work while in-flight jobs drain.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"state": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "state": "ready"})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
				"error":       fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
				"limit_bytes": tooBig.Limit,
			})
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	src := Source{Bench: req.Bench, Verilog: req.Verilog, Top: req.Top}
	d, err := parseSource(src)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, err := s.SubmitSource(d, req.Options, src)
	if err != nil {
		var se *submitError
		if errors.As(err, &se) {
			if se.retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(se.retryAfter))
			}
			if se.doc != nil {
				writeJSON(w, se.status, se.doc)
			} else {
				writeError(w, se.status, "%s", se.msg)
			}
		} else {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	s.mu.Lock()
	st := statusLocked(job, true)
	s.mu.Unlock()
	code := http.StatusAccepted
	if st.Cached {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	s.mu.Lock()
	st := statusLocked(job, true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, statusLocked(s.jobs[id], false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": list})
}

// MetricsDoc is the GET /metrics payload. Pipeline is the deterministic
// obs-recorder rendering (arrays in enum order), merged over every
// completed job's per-run Observer.
type MetricsDoc struct {
	Server   Counters        `json:"server"`
	Pipeline json.RawMessage `json:"pipeline"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	counters, observer := s.Metrics()
	pipeline, err := observer.MarshalJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "rendering metrics: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, MetricsDoc{Server: counters, Pipeline: pipeline})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
