package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gatewords"
	"gatewords/internal/guard"
	"gatewords/internal/report"
)

// mustNew starts a server, failing the test on construction errors.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newTestServer starts a server + HTTP front end and registers cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := mustNew(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, req SubmitRequest) (JobStatus, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return st, resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// awaitJob polls the HTTP API until the job is terminal.
func awaitJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getJob(t, ts, id)
		if st.Status == StateDone || st.Status == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, st.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getMetrics(t *testing.T, ts *httptest.Server) (MetricsDoc, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var doc MetricsDoc
	if err := json.Unmarshal(raw.Bytes(), &doc); err != nil {
		t.Fatalf("metrics did not parse: %v\n%s", err, raw.Bytes())
	}
	return doc, raw.Bytes()
}

// benchVerilog renders a generated benchmark as Verilog text, so tests can
// exercise the inline-Verilog submission path with a real netlist.
func benchVerilog(t *testing.T, name string) string {
	t.Helper()
	d, err := gatewords.GenerateBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// reorderGateLines reverses the order of the gate-instantiation lines,
// leaving declarations in place: the same circuit, re-declared in a
// different file order.
func reorderGateLines(t *testing.T, src string) string {
	t.Helper()
	lines := strings.Split(src, "\n")
	var gateIdx []int
	for i, l := range lines {
		trimmed := strings.TrimSpace(l)
		if trimmed == "" || strings.HasPrefix(trimmed, "module") ||
			strings.HasPrefix(trimmed, "input") || strings.HasPrefix(trimmed, "output") ||
			strings.HasPrefix(trimmed, "wire") || strings.HasPrefix(trimmed, "endmodule") {
			continue
		}
		if strings.Contains(trimmed, "(") {
			gateIdx = append(gateIdx, i)
		}
	}
	if len(gateIdx) < 2 {
		t.Fatalf("no gate lines found to reorder")
	}
	for i, j := 0, len(gateIdx)-1; i < j; i, j = i+1, j-1 {
		lines[gateIdx[i]], lines[gateIdx[j]] = lines[gateIdx[j]], lines[gateIdx[i]]
	}
	return strings.Join(lines, "\n")
}

func TestSubmitBenchAndPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st, code := postJob(t, ts, SubmitRequest{Bench: "b03a", Options: JobOptions{Evaluate: true}})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", code)
	}
	if st.ID == "" || st.Cached {
		t.Fatalf("submit response: %+v", st)
	}
	final := awaitJob(t, ts, st.ID)
	if final.Status != StateDone || final.Error != "" {
		t.Fatalf("job ended %q (error %q)", final.Status, final.Error)
	}
	doc, err := report.Read(bytes.NewReader(final.Report))
	if err != nil {
		t.Fatalf("report did not parse: %v", err)
	}
	if doc.Module != "b03a" || doc.Technique != "control-signals" {
		t.Errorf("report module/technique: %q/%q", doc.Module, doc.Technique)
	}
	if doc.Evaluation == nil || doc.Evaluation.ReferenceWords == 0 {
		t.Errorf("evaluation missing from report: %+v", doc.Evaluation)
	}
	if len(doc.Words) == 0 {
		t.Error("no words in report")
	}
}

// TestCacheHit pins the content-addressed cache contract: the same netlist
// submitted twice runs the pipeline once, the duplicate is served from the
// cache with byte-identical report JSON, and the hit/miss counters say so.
func TestCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	src := benchVerilog(t, "b03a")

	first, code := postJob(t, ts, SubmitRequest{Verilog: src})
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	firstDone := awaitJob(t, ts, first.ID)

	second, code := postJob(t, ts, SubmitRequest{Verilog: src})
	if code != http.StatusOK {
		t.Fatalf("duplicate submit: status %d, want 200 (cache hit)", code)
	}
	if !second.Cached || second.Status != StateDone {
		t.Fatalf("duplicate not served from cache: %+v", second)
	}
	if !bytes.Equal(firstDone.Report, second.Report) {
		t.Error("cached report bytes differ from the original run")
	}
	if first.Key != second.Key {
		t.Errorf("keys differ for identical submissions: %s vs %s", first.Key, second.Key)
	}

	m, _ := getMetrics(t, ts)
	if m.Server.PipelineRuns != 1 {
		t.Errorf("pipeline_runs = %d, want 1", m.Server.PipelineRuns)
	}
	if m.Server.CacheHits != 1 || m.Server.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", m.Server.CacheHits, m.Server.CacheMisses)
	}
	if m.Server.CacheEntries != 1 {
		t.Errorf("cache_entries = %d, want 1", m.Server.CacheEntries)
	}
}

// TestCacheCanonicalUnderReordering pins that the cache key survives
// gate-declaration reordering: the same circuit re-emitted in a different
// file order hits the first submission's cache entry.
func TestCacheCanonicalUnderReordering(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	src := benchVerilog(t, "b03a")
	reordered := reorderGateLines(t, src)
	if src == reordered {
		t.Fatal("reordering produced identical source")
	}

	first, _ := postJob(t, ts, SubmitRequest{Verilog: src})
	awaitJob(t, ts, first.ID)
	second, code := postJob(t, ts, SubmitRequest{Verilog: reordered})
	if code != http.StatusOK || !second.Cached {
		t.Fatalf("reordered duplicate missed the cache: status %d, %+v", code, second)
	}
	if first.Key != second.Key {
		t.Errorf("reordered keys differ: %s vs %s", first.Key, second.Key)
	}
}

// TestDifferentOptionsMissCache pins that the key covers options: the same
// netlist under different pipeline options is a distinct cache entry.
func TestDifferentOptionsMissCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	src := benchVerilog(t, "b03a")
	first, _ := postJob(t, ts, SubmitRequest{Verilog: src})
	awaitJob(t, ts, first.ID)
	second, code := postJob(t, ts, SubmitRequest{Verilog: src, Options: JobOptions{Depth: 3}})
	if code != http.StatusAccepted || second.Cached {
		t.Fatalf("different options served from cache: status %d, %+v", code, second)
	}
	awaitJob(t, ts, second.ID)
	// Workers, by contrast, does not change the output and is excluded.
	third, code := postJob(t, ts, SubmitRequest{Verilog: src, Options: JobOptions{Workers: 4}})
	if code != http.StatusOK || !third.Cached {
		t.Fatalf("workers-only variant missed the cache: status %d, %+v", code, third)
	}
}

// TestCoalescing pins in-flight dedupe: a duplicate of a job that is still
// queued attaches to it and shares its single pipeline execution.
func TestCoalescing(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	s.testJobGate = make(chan struct{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	src := benchVerilog(t, "b03a")
	blocker, _ := postJob(t, ts, SubmitRequest{Bench: "b08a"})
	primary, _ := postJob(t, ts, SubmitRequest{Verilog: src})
	dup, code := postJob(t, ts, SubmitRequest{Verilog: src})
	if code != http.StatusAccepted {
		t.Fatalf("duplicate submit: status %d", code)
	}
	if dup.CoalescedWith != primary.ID {
		t.Fatalf("duplicate did not coalesce with %s: %+v", primary.ID, dup)
	}
	s.testJobGate <- struct{}{} // release the blocker
	s.testJobGate <- struct{}{} // release the primary
	pDone := awaitJob(t, ts, primary.ID)
	dDone := awaitJob(t, ts, dup.ID)
	awaitJob(t, ts, blocker.ID)
	if !bytes.Equal(pDone.Report, dDone.Report) {
		t.Error("coalesced job's report differs from its primary's")
	}

	m, _ := getMetrics(t, ts)
	if m.Server.PipelineRuns != 2 {
		t.Errorf("pipeline_runs = %d, want 2 (blocker + primary)", m.Server.PipelineRuns)
	}
	if m.Server.JobsCoalesced != 1 || m.Server.JobsDone != 3 {
		t.Errorf("coalesced/done = %d/%d, want 1/3", m.Server.JobsCoalesced, m.Server.JobsDone)
	}
	s.Close()
}

// TestQueueFullRejected pins bounded admission: with the one worker held
// and the queue full, the next submission is refused with 503.
func TestQueueFullRejected(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueDepth: 1})
	s.testJobGate = make(chan struct{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	first, _ := postJob(t, ts, SubmitRequest{Bench: "b03a"})
	// Wait for the worker to take the first job off the queue (it then
	// blocks on the test gate), so the queue slot below is deterministic.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the first job")
		}
		time.Sleep(time.Millisecond)
	}
	second, _ := postJob(t, ts, SubmitRequest{Bench: "b08a"}) // fills the queue
	_, code := postJob(t, ts, SubmitRequest{Bench: "b04a"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit: status %d, want 503", code)
	}
	s.testJobGate <- struct{}{}
	s.testJobGate <- struct{}{}
	awaitJob(t, ts, first.ID)
	awaitJob(t, ts, second.ID)
	m, _ := getMetrics(t, ts)
	if m.Server.JobsRejected != 1 {
		t.Errorf("jobs_rejected = %d, want 1", m.Server.JobsRejected)
	}
	s.Close()
}

// TestMetricsMergedAndDeterministic pins the /metrics contract: the
// pipeline section reflects completed jobs' merged recorders, and repeated
// reads with no intervening work are byte-identical.
func TestMetricsMergedAndDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st, _ := postJob(t, ts, SubmitRequest{Bench: "b08a"})
	awaitJob(t, ts, st.ID)

	doc, raw1 := getMetrics(t, ts)
	_, raw2 := getMetrics(t, ts)
	if !bytes.Equal(raw1, raw2) {
		t.Errorf("metrics not byte-stable across reads:\n%s\n%s", raw1, raw2)
	}
	var pipeline struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(doc.Pipeline, &pipeline); err != nil {
		t.Fatalf("pipeline section did not parse: %v", err)
	}
	byName := map[string]int64{}
	for _, c := range pipeline.Counters {
		byName[c.Name] = c.Value
	}
	// b08a is the control-signal showcase row: a healthy run records trials
	// and reductions, which prove the per-job recorder reached /metrics.
	if byName["trials"] == 0 || byName["reductions"] == 0 {
		t.Errorf("merged pipeline counters missing work: %v", byName)
	}
}

// TestJobTimeoutInterrupted pins per-job deadlines: an aggressive timeout
// yields a done job whose report is marked interrupted, and interrupted
// results are not cached.
func TestJobTimeoutInterrupted(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	st, _ := postJob(t, ts, SubmitRequest{Bench: "b14a", Options: JobOptions{TimeoutMS: 1}})
	final := awaitJob(t, ts, st.ID)
	if final.Status != StateDone {
		t.Fatalf("job ended %q (error %q)", final.Status, final.Error)
	}
	if !final.Interrupted {
		t.Skip("machine fast enough to finish b14a in 1ms; nothing to assert")
	}
	doc, err := report.Read(bytes.NewReader(final.Report))
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Interrupted {
		t.Error("report does not carry the interrupted flag")
	}
	s.mu.Lock()
	entries := s.cache.len()
	s.mu.Unlock()
	if entries != 0 {
		t.Errorf("interrupted result was cached (%d entries)", entries)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty", `{}`, 400},
		{"both", `{"verilog":"module m(); endmodule","bench":"b03a"}`, 400},
		{"unknown-bench", `{"bench":"nope"}`, 400},
		{"bad-verilog", `{"verilog":"not verilog"}`, 400},
		{"bad-lint", `{"bench":"b03a","options":{"lint":"pedantic"}}`, 400},
		{"unknown-field", `{"bench":"b03a","nonsense":1}`, 400},
		{"top-with-bench", `{"bench":"b03a","top":"m"}`, 400},
		{"not-json", `hello`, 400},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
}

// TestConcurrentSubmissions is the end-to-end acceptance scenario: many
// concurrent submissions with duplicate keys on a bounded pool all
// complete; duplicates share executions; /metrics balances.
func TestConcurrentSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	src := benchVerilog(t, "b03a")
	submissions := []SubmitRequest{
		{Bench: "b03a"}, {Bench: "b08a"}, {Bench: "b07a"},
		{Verilog: src}, {Verilog: src}, {Verilog: src},
		{Bench: "b08a"}, {Bench: "b03a"}, {Bench: "b08a", Options: JobOptions{VerifyReduction: true}},
		{Bench: "b04a"}, {Bench: "b05a"}, {Verilog: src},
	}
	// The inline Verilog is a round-trip of generated b03a, so it shares a
	// key with the bench submissions of b03a — fingerprinting sees through
	// the different submission routes.
	const distinctKeys = 6 // b03a (bench + verilog), b08a, b07a, b08a+verify, b04a, b05a

	type outcome struct {
		st   JobStatus
		code int
	}
	results := make(chan outcome, len(submissions))
	for _, req := range submissions {
		req := req
		go func() {
			st, code := postJob(t, ts, req)
			results <- outcome{st, code}
		}()
	}
	byKey := map[string][]JobStatus{}
	for range submissions {
		o := <-results
		if o.code != http.StatusAccepted && o.code != http.StatusOK {
			t.Fatalf("submission rejected with %d", o.code)
		}
		final := awaitJob(t, ts, o.st.ID)
		if final.Status != StateDone {
			t.Fatalf("job %s ended %q: %s", final.ID, final.Status, final.Error)
		}
		byKey[final.Key] = append(byKey[final.Key], final)
	}
	if len(byKey) != distinctKeys {
		t.Errorf("distinct keys = %d, want %d", len(byKey), distinctKeys)
	}
	for key, sts := range byKey {
		for _, st := range sts[1:] {
			if !bytes.Equal(st.Report, sts[0].Report) {
				t.Errorf("key %s: duplicate reports differ", key)
			}
		}
	}

	m, _ := getMetrics(t, ts)
	if m.Server.JobsDone != int64(len(submissions)) || m.Server.JobsFailed != 0 {
		t.Errorf("done/failed = %d/%d, want %d/0", m.Server.JobsDone, m.Server.JobsFailed, len(submissions))
	}
	if m.Server.JobsQueued != 0 || m.Server.JobsRunning != 0 {
		t.Errorf("queued/running = %d/%d, want 0/0", m.Server.JobsQueued, m.Server.JobsRunning)
	}
	if m.Server.PipelineRuns != distinctKeys {
		t.Errorf("pipeline_runs = %d, want %d (duplicates must share executions)",
			m.Server.PipelineRuns, distinctKeys)
	}
	if got := m.Server.CacheHits + m.Server.JobsCoalesced; got != int64(len(submissions)-distinctKeys) {
		t.Errorf("hits+coalesced = %d, want %d", got, len(submissions)-distinctKeys)
	}
}

// TestListJobs pins the listing endpoint: submission order, no report
// payloads.
func TestListJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	a, _ := postJob(t, ts, SubmitRequest{Bench: "b03a"})
	b, _ := postJob(t, ts, SubmitRequest{Bench: "b08a"})
	awaitJob(t, ts, a.ID)
	awaitJob(t, ts, b.ID)
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Jobs) != 2 || doc.Jobs[0].ID != a.ID || doc.Jobs[1].ID != b.ID {
		t.Fatalf("listing: %+v", doc.Jobs)
	}
	for _, j := range doc.Jobs {
		if len(j.Report) != 0 {
			t.Errorf("listing leaked a report for %s", j.ID)
		}
	}
}

// TestCacheLRUEviction pins the eviction policy at the unit level.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", "job-a", []byte("A"))
	c.put("b", "job-b", []byte("B"))
	if _, _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", "job-c", []byte("C"))
	if _, _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if origin, v, ok := c.get("a"); !ok || string(v) != "A" || origin != "job-a" {
		t.Error("a lost")
	}
	if origin, v, ok := c.get("c"); !ok || string(v) != "C" || origin != "job-c" {
		t.Error("c lost")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	disabled := newResultCache(-1)
	disabled.put("x", "job-x", []byte("X"))
	if _, _, ok := disabled.get("x"); ok || disabled.len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}

// TestSubmitAfterClose pins shutdown admission: a closed server refuses
// new jobs with 503.
func TestSubmitAfterClose(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	s.Close()
	_, code := postJob(t, ts, SubmitRequest{Bench: "b03a"})
	if code != http.StatusServiceUnavailable {
		t.Errorf("submit after close: status %d, want 503", code)
	}
}

// TestSubmitDirect exercises the library-level Submit entry point, which
// cmd/wordidd shares with the HTTP layer.
func TestSubmitDirect(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Close()
	d, err := gatewords.GenerateBenchmark("b03a")
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit(d, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done
	s.mu.Lock()
	state, rep := job.State, job.Report
	s.mu.Unlock()
	if state != StateDone || len(rep) == 0 {
		t.Fatalf("job state %q, %d report bytes", state, len(rep))
	}
	if _, err := s.Submit(d, JobOptions{Lint: "bogus"}); err == nil {
		t.Error("bogus lint mode accepted")
	}
}

// TestRunJobGuardedRecoversWorkerPanic drives a panic through runJob's
// bookkeeping — outside executeJob's own pipeline boundary — by handing the
// worker a job with a nil Done channel (close(nil) panics in finishLocked).
// The per-job rescue must fail the job's coalesced waiters, repair the
// counters, and leave the server serving.
func TestRunJobGuardedRecoversWorkerPanic(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Close()

	waiter := &Job{ID: "job-w", Key: "poison", State: StateQueued, Done: make(chan struct{})}
	job := &Job{ID: "job-p", Key: "poison", State: StateQueued} // Done nil: poisoned
	job.waiters = []*Job{waiter}
	s.mu.Lock()
	s.inflight["poison"] = job
	s.counters.JobsQueued++
	s.mu.Unlock()

	s.runJobGuarded(job)

	select {
	case <-waiter.Done:
	default:
		t.Fatal("waiter's Done channel never closed after the worker panic")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counters.WorkerPanics != 1 {
		t.Errorf("worker_panics = %d, want 1", s.counters.WorkerPanics)
	}
	if s.counters.JobsRunning != 0 || s.counters.JobsQueued != 0 {
		t.Errorf("running/queued = %d/%d, want 0/0", s.counters.JobsRunning, s.counters.JobsQueued)
	}
	if _, ok := s.inflight["poison"]; ok {
		t.Error("poisoned job still inflight")
	}
	if waiter.State != StateFailed || !strings.Contains(waiter.Err, "worker panicked") {
		t.Errorf("waiter state %q err %q, want failed/worker panicked", waiter.State, waiter.Err)
	}
}

// TestFailJobAfterPanic covers the repair helper in isolation: counters for
// each pre-panic state, inflight cleanup, and terminal-state idempotence.
func TestFailJobAfterPanic(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Close()

	running := &Job{ID: "job-r", Key: "kr", State: StateRunning, Done: make(chan struct{})}
	done := &Job{ID: "job-d", Key: "kr", State: StateDone, Done: make(chan struct{})}
	close(done.Done)
	running.waiters = []*Job{done}
	s.mu.Lock()
	s.inflight["kr"] = running
	s.counters.JobsRunning++
	s.mu.Unlock()

	s.failJobAfterPanic(running, guard.NewGroupFailure(guard.AnyGroup, "job", "boom"))

	s.mu.Lock()
	defer s.mu.Unlock()
	if running.State != StateFailed || !strings.Contains(running.Err, "boom") {
		t.Errorf("job state %q err %q", running.State, running.Err)
	}
	select {
	case <-running.Done:
	default:
		t.Error("failed job's Done not closed")
	}
	if done.State != StateDone {
		t.Errorf("already-terminal waiter rewritten to %q", done.State)
	}
	if s.counters.JobsRunning != 0 || s.counters.JobsFailed != 1 || s.counters.WorkerPanics != 1 {
		t.Errorf("running/failed/panics = %d/%d/%d, want 0/1/1",
			s.counters.JobsRunning, s.counters.JobsFailed, s.counters.WorkerPanics)
	}
}
