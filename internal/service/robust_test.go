package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gatewords"
	"gatewords/internal/guard"
	"gatewords/internal/service/journal"
)

// TestBreakerStateMachine walks the quarantine breaker through its whole
// lifecycle with an injected clock: counting, tripping, TTL refusal,
// half-open probing, probe failure re-tripping, and success closing.
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(2, time.Minute)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	if b.refuse("fp") != nil {
		t.Fatal("fresh fingerprint refused")
	}
	if b.strike("fp", "boom1") {
		t.Fatal("first strike tripped a threshold-2 breaker")
	}
	if b.refuse("fp") != nil {
		t.Fatal("counting (not yet tripped) fingerprint refused")
	}
	if !b.strike("fp", "boom2") {
		t.Fatal("second strike did not trip")
	}
	qs := b.refuse("fp")
	if qs == nil {
		t.Fatal("tripped fingerprint admitted")
	}
	if qs.Failures != 2 || qs.LastError != "boom2" || qs.RetryAfterMS != 60_000 {
		t.Fatalf("422 doc: %+v", qs)
	}
	now = now.Add(30 * time.Second)
	if qs = b.refuse("fp"); qs == nil || qs.RetryAfterMS != 30_000 {
		t.Fatalf("mid-TTL doc: %+v", qs)
	}

	now = now.Add(31 * time.Second) // TTL elapsed: half-open
	if b.refuse("fp") != nil {
		t.Fatal("half-open fingerprint refused its probe")
	}
	b.beginProbe("fp")
	if qs = b.refuse("fp"); qs == nil || qs.RetryAfterMS != 0 {
		t.Fatalf("probe-in-flight duplicate not refused: %+v", qs)
	}
	if !b.strike("fp", "probe failed") {
		t.Fatal("failed probe did not re-trip")
	}
	if qs = b.refuse("fp"); qs == nil || qs.RetryAfterMS != 60_000 || qs.Failures != 3 {
		t.Fatalf("re-tripped doc: %+v", qs)
	}

	now = now.Add(61 * time.Second)
	b.beginProbe("fp")
	b.succeed("fp")
	if b.refuse("fp") != nil || len(b.entries) != 0 {
		t.Fatal("successful probe did not close the breaker")
	}

	// A nil breaker (quarantine disabled) is inert everywhere.
	var off *breaker
	if off.refuse("fp") != nil || off.strike("fp", "x") {
		t.Fatal("nil breaker acted")
	}
	off.beginProbe("fp")
	off.succeed("fp")
}

// TestQuarantineEndToEnd drives a poison input through the live server: two
// injected panics trip the breaker, the next submission gets the structured
// 422, and after the TTL the half-open probe runs clean and closes it.
func TestQuarantineEndToEnd(t *testing.T) {
	guard.Reset()
	t.Cleanup(guard.Reset)
	_, ts := newTestServer(t, Config{
		Workers:            1,
		QuarantineFailures: 2,
		QuarantineTTL:      50 * time.Millisecond,
	})
	guard.PlantN("job:b03a", guard.AnyGroup, 2)

	for i := 0; i < 2; i++ {
		st, code := postJob(t, ts, SubmitRequest{Bench: "b03a"})
		if code != http.StatusAccepted {
			t.Fatalf("poisoned submit %d: status %d", i, code)
		}
		final := awaitJob(t, ts, st.ID)
		if final.Status != StateFailed || !strings.Contains(final.Error, "injected fault") {
			t.Fatalf("poisoned job %d ended %q (%s)", i, final.Status, final.Error)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"b03a"}`))
	if err != nil {
		t.Fatal(err)
	}
	var qs QuarantineStatus
	if err := json.NewDecoder(resp.Body).Decode(&qs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined submit: status %d, want 422", resp.StatusCode)
	}
	if qs.Failures != 2 || qs.Fingerprint == "" || !strings.Contains(qs.LastError, "injected fault") {
		t.Fatalf("422 doc: %+v", qs)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("quarantine 422 missing Retry-After")
	}

	time.Sleep(60 * time.Millisecond) // past the TTL: half-open
	st, code := postJob(t, ts, SubmitRequest{Bench: "b03a"})
	if code != http.StatusAccepted {
		t.Fatalf("probe submit: status %d", code)
	}
	final := awaitJob(t, ts, st.ID)
	if final.Status != StateDone {
		t.Fatalf("probe ended %q (%s); the fault budget was spent", final.Status, final.Error)
	}
	// Breaker closed: the next submission is a plain cache hit.
	if _, code = postJob(t, ts, SubmitRequest{Bench: "b03a"}); code != http.StatusOK {
		t.Fatalf("post-recovery submit: status %d, want 200", code)
	}

	m, _ := getMetrics(t, ts)
	if m.Server.QuarantineTrips != 1 || m.Server.QuarantineRejections != 1 {
		t.Errorf("trips/rejections = %d/%d, want 1/1",
			m.Server.QuarantineTrips, m.Server.QuarantineRejections)
	}
}

// TestDeadlineAdmission pins deadline-aware queueing: once the latency EWMA
// says a job's deadline cannot be met, the submission is refused with 429
// and a Retry-After estimate, while deadline-free jobs still flow.
func TestDeadlineAdmission(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.mu.Lock()
	s.adm.ewmaMS = 60_000 // pretend jobs take a minute
	s.mu.Unlock()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"b03a","options":{"timeout_ms":10}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("infeasible-deadline submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	st, code := postJob(t, ts, SubmitRequest{Bench: "b03a"})
	if code != http.StatusAccepted {
		t.Fatalf("deadline-free submit: status %d", code)
	}
	awaitJob(t, ts, st.ID)

	m, _ := getMetrics(t, ts)
	if m.Server.JobsShed != 1 {
		t.Errorf("jobs_shed = %d, want 1", m.Server.JobsShed)
	}
	if m.Server.JobLatencyEWMAMS <= 0 {
		t.Errorf("job_latency_ewma_ms = %v, want > 0 after an execution", m.Server.JobLatencyEWMAMS)
	}
}

func gatesOf(t *testing.T, name string) int {
	t.Helper()
	d, err := gatewords.GenerateBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	return d.Stats().Gates
}

// TestHeavyJobShedding pins cost-based shedding: with the queue half full,
// a design above ShedGates is refused while lighter ones are admitted, and
// the shed never corrupts the jobs already accepted.
func TestHeavyJobShedding(t *testing.T) {
	light, heavy := gatesOf(t, "b04a"), gatesOf(t, "b14a")
	if g := gatesOf(t, "b05a"); g > light {
		light = g // threshold must admit every "light" bench used below
	}
	if heavy <= light {
		t.Fatalf("bench sizes inverted: light=%d b14a=%d", light, heavy)
	}
	s := mustNew(t, Config{Workers: 1, QueueDepth: 2, ShedGates: light})
	s.testJobGate = make(chan struct{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	blocker, _ := postJob(t, ts, SubmitRequest{Bench: "b03a"})
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the blocker")
		}
		time.Sleep(time.Millisecond)
	}
	queued, code := postJob(t, ts, SubmitRequest{Bench: "b04a"}) // backlog now half full
	if code != http.StatusAccepted {
		t.Fatalf("light submit: status %d", code)
	}
	_, code = postJob(t, ts, SubmitRequest{Bench: "b14a"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("heavy submit under load: status %d, want 429", code)
	}
	// Light jobs keep flowing until the queue itself fills.
	light2, code := postJob(t, ts, SubmitRequest{Bench: "b05a"})
	if code != http.StatusAccepted {
		t.Fatalf("light submit under load: status %d", code)
	}

	s.testJobGate <- struct{}{}
	s.testJobGate <- struct{}{}
	s.testJobGate <- struct{}{}
	for _, st := range []JobStatus{blocker, queued, light2} {
		if final := awaitJob(t, ts, st.ID); final.Status != StateDone {
			t.Fatalf("accepted job %s corrupted by the shed: %q (%s)", st.ID, final.Status, final.Error)
		}
	}
	m, _ := getMetrics(t, ts)
	if m.Server.JobsShed != 1 {
		t.Errorf("jobs_shed = %d, want 1", m.Server.JobsShed)
	}
	s.Close()
}

// TestDraining pins the shutdown-visibility contract: after StartDraining,
// /healthz reports 503 {"state":"draining"} and submissions are refused,
// while polls for existing jobs keep being served.
func TestDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	st, _ := postJob(t, ts, SubmitRequest{Bench: "b03a"})
	awaitJob(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}

	s.StartDraining()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || health["state"] != "draining" {
		t.Fatalf("healthz during drain: %d %v", resp.StatusCode, health)
	}
	if _, code := postJob(t, ts, SubmitRequest{Bench: "b04a"}); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: status %d, want 503", code)
	}
	if got := getJob(t, ts, st.ID); got.Status != StateDone {
		t.Fatalf("poll during drain lost the job: %+v", got)
	}
}

// TestBodyTooLarge pins the oversized-submission contract: a structured 413
// naming the limit, not a connection reset or a generic 400.
func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxRequestBytes: 256})
	big := `{"verilog":"` + strings.Repeat("x", 1024) + `"}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Error      string `json:"error"`
		LimitBytes int64  `json:"limit_bytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge || doc.LimitBytes != 256 {
		t.Fatalf("oversized submit: status %d doc %+v", resp.StatusCode, doc)
	}
}

// appendRecord journals one record, failing the test on error.
func appendRecord(t *testing.T, j *journal.Journal, job, event string, data any) {
	t.Helper()
	rec := journal.Record{Job: job, Event: event}
	if data != nil {
		enc, err := json.Marshal(data)
		if err != nil {
			t.Fatal(err)
		}
		rec.Data = enc
	}
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
}

// TestJournalReplay hand-writes a crashed daemon's journal and pins every
// replay outcome: running jobs fail honestly, done jobs serve byte-identical
// reports (inline and via primary reference), queued jobs resume under
// -resume and complete, the cache re-seeds, and the ID sequence continues.
func TestJournalReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	d, err := gatewords.GenerateBenchmark("b03a")
	if err != nil {
		t.Fatal(err)
	}
	liveKey := cacheKey(d.Fingerprint(), JobOptions{})
	fakeReport := json.RawMessage(`{"module":"fake","words":[]}`)

	j, _, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// job-1: crashed mid-run. job-2: done with inline bytes. job-3: cache hit
	// referencing job-2's bytes. job-4: still queued, with a resumable source.
	appendRecord(t, j, "job-000001", "accepted", acceptedData{Key: "k1", Fingerprint: "fp1", Module: "m1"})
	appendRecord(t, j, "job-000001", "running", nil)
	appendRecord(t, j, "job-000002", "accepted", acceptedData{Key: "k2", Fingerprint: "fp2", Module: "fake"})
	appendRecord(t, j, "job-000002", "done", doneData{Report: fakeReport})
	appendRecord(t, j, "job-000003", "accepted", acceptedData{Key: "k2", Fingerprint: "fp2", Module: "fake", Cached: true})
	appendRecord(t, j, "job-000003", "done", doneData{Primary: "job-000002"})
	appendRecord(t, j, "job-000004", "accepted", acceptedData{
		Key: liveKey, Fingerprint: d.Fingerprint(), Module: "b03a", Bench: "b03a",
	})
	j.Close()

	s, ts := newTestServer(t, Config{Workers: 1, JournalPath: path, Resume: true})
	rec := s.Recovery()
	if !rec.Journaled || rec.Restored != 2 || rec.Resumed != 1 || rec.Interrupted != 1 || rec.TornRecords != 0 {
		t.Fatalf("recovery report: %+v", rec)
	}

	interrupted := getJob(t, ts, "job-000001")
	if interrupted.Status != StateFailed || !strings.Contains(interrupted.Error, "interrupted") {
		t.Fatalf("mid-run job not failed honestly: %+v", interrupted)
	}
	// Byte-identity is a property of the stored report (the HTTP encoder
	// re-indents nested JSON uniformly, so served duplicates stay equal).
	for _, id := range []string{"job-000002", "job-000003"} {
		job, ok := s.Lookup(id)
		if !ok {
			t.Fatalf("%s missing after replay", id)
		}
		s.mu.Lock()
		state, report := job.State, job.Report
		s.mu.Unlock()
		if state != StateDone || !bytes.Equal(report, fakeReport) {
			t.Fatalf("%s not byte-identical after replay: %q %q", id, state, report)
		}
	}
	if a, b := getJob(t, ts, "job-000002"), getJob(t, ts, "job-000003"); !bytes.Equal(a.Report, b.Report) {
		t.Fatal("primary-referenced replay served different bytes than its primary")
	}
	resumed := awaitJob(t, ts, "job-000004")
	if resumed.Status != StateDone || len(resumed.Report) == 0 {
		t.Fatalf("resumed job: %+v", resumed)
	}

	// The resumed job's completion re-seeded the cache under the live key.
	hit, code := postJob(t, ts, SubmitRequest{Bench: "b03a"})
	if code != http.StatusOK || !hit.Cached {
		t.Fatalf("post-resume duplicate missed the cache: status %d %+v", code, hit)
	}
	if !strings.HasPrefix(hit.ID, "job-00000") || hit.ID <= "job-000004" {
		t.Fatalf("ID sequence did not continue past the journal: %s", hit.ID)
	}
	m, _ := getMetrics(t, ts)
	if m.Server.JournalReplays != 3 {
		t.Errorf("journal_replays = %d, want 3", m.Server.JournalReplays)
	}
}

// TestJournalSurvivesRestartChain pins the crash-restart-crash-restart
// sequence the chaos harness automates: a second replay must serve exactly
// what the first daemon served, byte for byte, including records the first
// replay itself appended.
func TestJournalSurvivesRestartChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")

	s1, ts1 := newTestServer(t, Config{Workers: 1, JournalPath: path})
	st, _ := postJob(t, ts1, SubmitRequest{Bench: "b03a"})
	first := awaitJob(t, ts1, st.ID)
	if first.Status != StateDone {
		t.Fatalf("first life: %+v", first)
	}
	ts1.Close()
	s1.Close()

	s2, ts2 := newTestServer(t, Config{Workers: 1, JournalPath: path})
	if rec := s2.Recovery(); rec.Restored != 1 {
		t.Fatalf("second life recovery: %+v", rec)
	}
	replayed := getJob(t, ts2, st.ID)
	if replayed.Status != StateDone || !bytes.Equal(replayed.Report, first.Report) {
		t.Fatal("second life does not serve the first life's bytes")
	}
	ts2.Close()
	s2.Close()

	s3, _ := newTestServer(t, Config{Workers: 1, JournalPath: path})
	if rec := s3.Recovery(); rec.Restored != 1 || rec.Interrupted != 0 || rec.TornRecords != 0 {
		t.Fatalf("third life recovery: %+v", rec)
	}
}

// TestJournalQueuedWithoutResume pins the no-resume default: a journal-queued
// job is failed honestly, not silently dropped and not re-run.
func TestJournalQueuedWithoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, _, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	appendRecord(t, j, "job-000001", "accepted", acceptedData{Key: "k", Module: "b03a", Bench: "b03a"})
	j.Close()

	s, ts := newTestServer(t, Config{Workers: 1, JournalPath: path})
	if rec := s.Recovery(); rec.Interrupted != 1 || rec.Resumed != 0 {
		t.Fatalf("recovery: %+v", rec)
	}
	st := getJob(t, ts, "job-000001")
	if st.Status != StateFailed || !strings.Contains(st.Error, "interrupted") {
		t.Fatalf("queued job without -resume: %+v", st)
	}
}
