// Package service turns word identification into a long-running daemon: an
// HTTP/JSON job server over the gatewords facade, composing the pieces the
// pipeline already provides — per-job context deadlines (Options.Context),
// per-group failure domains and resource budgets (internal/guard), and
// per-run observability (internal/obs) — behind a bounded worker pool.
//
// The serving model is jobs, not requests: POST /v1/jobs accepts a netlist
// (inline Verilog or a named internal/bench profile) plus per-job options
// and returns a job ID immediately; GET /v1/jobs/{id} polls the job until
// the full report document is attached. Identification cost is unbounded in
// the input, so holding an HTTP connection open for it would be the wrong
// contract under heavy traffic.
//
// Repeat submissions are the common case a service sees, so results are
// content-addressed: the cache key is the design's canonical fingerprint
// (declaration-order-independent, see netlist.Fingerprint) combined with
// the normalized job options. A duplicate of a completed job is served from
// the cache in O(1) with byte-identical report JSON; a duplicate of a job
// still queued or running coalesces onto it and shares its one pipeline
// execution. GET /metrics serves the server counters plus the merged
// observability recorders of every completed job.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gatewords"
	"gatewords/internal/guard"
	"gatewords/internal/obs"
	"gatewords/internal/service/journal"
)

// Config sizes the server. The zero value is serviceable: GOMAXPROCS
// workers, a 64-job queue, a 256-entry result cache, no default deadline.
type Config struct {
	// Workers is the job worker-pool size (<= 0 selects GOMAXPROCS). It
	// bounds concurrent pipeline executions; queued jobs wait.
	Workers int
	// QueueDepth bounds jobs accepted but not yet running (<= 0 selects 64).
	// A submission that finds the queue full is rejected with 503 rather
	// than admitted into an unbounded backlog.
	QueueDepth int
	// CacheEntries caps the content-addressed result cache (0 selects 256,
	// negative disables caching).
	CacheEntries int
	// DefaultTimeout applies to jobs that set no timeout of their own
	// (0 = none): the per-job context deadline, honored cooperatively by
	// the pipeline, which reports a partial result with interrupted set.
	DefaultTimeout time.Duration
	// MaxTimeout caps per-job timeouts (0 = uncapped): a job asking for
	// more is clamped, and a job asking for nothing gets MaxTimeout when
	// no DefaultTimeout applies.
	MaxTimeout time.Duration
	// MaxRequestBytes bounds a submission body (<= 0 selects 32 MiB).
	MaxRequestBytes int64
	// ShedGates is the cost-based load-shedding threshold: once the queue is
	// at least half full, fresh submissions whose designs exceed this many
	// gates are refused with 429 (0 disables shedding).
	ShedGates int
	// QuarantineFailures trips the poison-input breaker: that many
	// consecutive failed executions (panic or expired deadline) of one
	// fingerprint quarantine it (0 selects 3, negative disables quarantine).
	QuarantineFailures int
	// QuarantineTTL is how long a tripped fingerprint stays refused before
	// the breaker goes half-open and admits one probe (<= 0 selects 1m).
	QuarantineTTL time.Duration
	// JournalPath, when set, appends every job lifecycle transition to a
	// checksummed write-ahead log at that path and replays it at startup, so
	// a crashed daemon comes back serving its terminal jobs byte-identically
	// and reporting interrupted ones honestly.
	JournalPath string
	// Resume re-enqueues journal-queued jobs at startup instead of marking
	// them interrupted. Only meaningful with JournalPath.
	Resume bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 32 << 20
	}
	if c.QuarantineFailures == 0 {
		c.QuarantineFailures = 3
	}
	if c.QuarantineTTL <= 0 {
		c.QuarantineTTL = time.Minute
	}
	return c
}

// Job states, as served in status documents.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobOptions is the wire form of per-job pipeline options. Field names
// mirror gatewords.Options; zero values select the paper defaults there.
// Workers sets the job's intra-run group parallelism and is excluded from
// the cache key (parallel and sequential runs produce identical output, an
// invariant the pipeline pins under test).
type JobOptions struct {
	Depth                int     `json:"depth,omitempty"`
	MaxAssign            int     `json:"max_assign,omitempty"`
	Theta                float64 `json:"theta,omitempty"`
	DisablePartialGroups bool    `json:"disable_partial_groups,omitempty"`
	DFFInputsOnly        bool    `json:"dff_inputs_only,omitempty"`
	Workers              int     `json:"workers,omitempty"`
	// Lint is "", "off", "lenient", or "strict" (gatewords.LintMode).
	Lint            string `json:"lint,omitempty"`
	VerifyReduction bool   `json:"verify_reduction,omitempty"`
	// TimeoutMS bounds the job's wall time; expiry yields a partial report
	// with interrupted set (which is never cached). Normalized at submission
	// against Config.DefaultTimeout / MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IncludeAll keeps 1-bit words in the report; Evaluate scores against
	// the design's golden reference words.
	IncludeAll bool `json:"include_all,omitempty"`
	Evaluate   bool `json:"evaluate,omitempty"`
	FailFast   bool `json:"fail_fast,omitempty"`
	// Budgets (see gatewords.Budgets); 0 = unlimited.
	MaxConeGates      int `json:"max_cone_gates,omitempty"`
	MaxSubgroupPairs  int `json:"max_subgroup_pairs,omitempty"`
	MaxTrialsPerGroup int `json:"max_trials_per_group,omitempty"`
}

func (o JobOptions) lintMode() (gatewords.LintMode, error) {
	switch o.Lint {
	case "", "off":
		return gatewords.LintOff, nil
	case "lenient":
		return gatewords.LintLenient, nil
	case "strict":
		return gatewords.LintStrict, nil
	}
	return gatewords.LintOff, fmt.Errorf("unknown lint mode %q (want off, lenient, or strict)", o.Lint)
}

// facadeOptions maps the wire options onto gatewords.Options for one run.
func (o JobOptions) facadeOptions(ctx context.Context, observer *gatewords.Observer) (gatewords.Options, error) {
	lint, err := o.lintMode()
	if err != nil {
		return gatewords.Options{}, err
	}
	return gatewords.Options{
		Depth:                o.Depth,
		MaxAssign:            o.MaxAssign,
		Theta:                o.Theta,
		DisablePartialGroups: o.DisablePartialGroups,
		DFFInputsOnly:        o.DFFInputsOnly,
		Workers:              o.Workers,
		Lint:                 lint,
		VerifyReduction:      o.VerifyReduction,
		Context:              ctx,
		Observer:             observer,
		Budgets: gatewords.Budgets{
			MaxConeGates:      o.MaxConeGates,
			MaxSubgroupPairs:  o.MaxSubgroupPairs,
			MaxTrialsPerGroup: o.MaxTrialsPerGroup,
		},
		FailFast: o.FailFast,
	}, nil
}

// cacheKey combines the design fingerprint with every option that can
// change the report. Workers is zeroed (no output effect); TimeoutMS has
// already been normalized to the effective deadline. The options tuple is
// hashed through its canonical JSON encoding (struct field order is fixed),
// following the same content-addressing idiom as the fingerprint itself.
func cacheKey(fingerprint string, o JobOptions) string {
	o.Workers = 0
	enc, _ := json.Marshal(o) // struct of scalars; cannot fail
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range enc {
		h = (h ^ uint64(b)) * prime64
	}
	return fmt.Sprintf("%s-%016x", fingerprint, h)
}

// Job is one identification submission. All mutable fields are guarded by
// the Server's mutex; Done is closed exactly once when the job reaches a
// terminal state.
type Job struct {
	ID  string
	Key string
	// Fingerprint is the design's canonical netlist fingerprint — the
	// quarantine breaker's key.
	Fingerprint string
	// Module is the design's module name (the bench profile name for bench
	// submissions).
	Module string
	State  string
	// Cached marks a job served from the result cache without execution.
	Cached bool
	// CoalescedWith names the in-flight job this duplicate submission
	// attached to ("" for primaries).
	CoalescedWith string
	// Interrupted mirrors the report's interrupted flag (deadline expiry).
	Interrupted bool
	// Err is the failure message for StateFailed jobs.
	Err string
	// Report is the serialized report.Document for StateDone jobs.
	Report []byte
	// Done is closed when the job reaches done or failed.
	Done chan struct{}

	opts    JobOptions
	timeout time.Duration
	design  *gatewords.Design // released once the job is terminal
	waiters []*Job            // coalesced duplicates completed alongside
}

// Counters are the server-level metrics, served under "server" in /metrics.
// Queued and Running are current levels; the rest accumulate monotonically.
type Counters struct {
	// JobsAccepted counts every admitted submission, including cache hits
	// and coalesced duplicates; JobsRejected counts queue-full refusals.
	JobsAccepted int64 `json:"jobs_accepted"`
	JobsRejected int64 `json:"jobs_rejected"`
	JobsQueued   int64 `json:"jobs_queued"`
	JobsRunning  int64 `json:"jobs_running"`
	JobsDone     int64 `json:"jobs_done"`
	JobsFailed   int64 `json:"jobs_failed"`
	// JobsCoalesced counts duplicates that attached to an in-flight job and
	// shared its single execution.
	JobsCoalesced int64 `json:"jobs_coalesced"`
	// PipelineRuns counts actual identification executions — the number the
	// cache and coalescing exist to keep below JobsAccepted.
	PipelineRuns int64 `json:"pipeline_runs"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int64 `json:"cache_entries"`
	// WorkerPanics counts panics recovered by the worker-pool boundaries —
	// escapes from runJob's bookkeeping, which executeJob's own pipeline
	// boundary does not cover. Each one failed a job but kept its worker.
	WorkerPanics int64 `json:"worker_panics"`
	// JobsShed counts submissions refused by admission control: deadlines
	// that could not be met given the backlog, and heavy jobs refused under
	// load (both 429; JobsRejected stays the queue-full 503 count).
	JobsShed int64 `json:"jobs_shed"`
	// QuarantineTrips counts breaker trips (including half-open probes that
	// failed and re-tripped); QuarantineRejections counts submissions
	// refused with 422 while their fingerprint was quarantined.
	QuarantineTrips        int64 `json:"quarantine_trips"`
	QuarantineRejections   int64 `json:"quarantine_rejections"`
	QuarantineFingerprints int64 `json:"quarantine_fingerprints"`
	// JournalReplays counts jobs restored or resumed from the journal at
	// startup; JournalTornRecords counts corrupt tail records discarded;
	// JournalErrors counts append failures (jobs proceed regardless).
	JournalReplays     int64 `json:"journal_replays"`
	JournalTornRecords int64 `json:"journal_torn_records"`
	JournalErrors      int64 `json:"journal_errors"`
	// JobLatencyEWMAMS is the admission controller's moving average of
	// per-job pipeline latency in milliseconds — the gauge behind
	// deadline-aware queueing and Retry-After estimates.
	JobLatencyEWMAMS float64 `json:"job_latency_ewma_ms"`
}

// Server is the identification daemon: job store, worker pool, result
// cache, and merged observability, behind the HTTP handler from Handler.
type Server struct {
	cfg   Config
	queue chan *Job
	wg    sync.WaitGroup

	// observer aggregates every completed job's per-run Observer; it has
	// its own internal lock, so /metrics snapshots it without holding mu
	// against running jobs.
	observer *gatewords.Observer

	// journal is the durable lifecycle log (nil without Config.JournalPath).
	// It has its own leaf lock; appends from under mu are plain file I/O.
	journal  *journal.Journal
	recovery RecoveryReport

	mu       sync.Mutex
	closed   bool
	draining bool
	seq      int64
	jobs     map[string]*Job
	order    []string        // submission order, for listing
	inflight map[string]*Job // key -> primary queued/running job
	cache    *resultCache
	breaker  *breaker  // nil when quarantine is disabled
	adm      admission // overload-control state
	counters Counters

	// testJobGate, when non-nil, makes every worker receive one value
	// before starting a job — test-only, to pin queue states without races.
	testJobGate chan struct{}
}

// New starts a server and its worker pool, replaying the journal first when
// Config.JournalPath is set. Stop it with Close.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *Job, cfg.QueueDepth),
		observer: gatewords.NewObserver(),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		cache:    newResultCache(cfg.CacheEntries),
	}
	if cfg.QuarantineFailures > 0 {
		s.breaker = newBreaker(cfg.QuarantineFailures, cfg.QuarantineTTL)
	}
	if cfg.JournalPath != "" {
		j, records, torn, err := journal.Open(cfg.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("opening journal: %w", err)
		}
		s.journal = j
		// Replay before the workers start: resumed jobs land in the queue
		// with no worker racing the rebuild of the store.
		s.replayJournal(records, torn)
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer guard.Rescue("worker", func(*guard.GroupFailure) {
				// Backstop for a panic outside any job (the per-job boundary
				// in runJobGuarded handles everything job-scoped). The
				// worker dies, the process and its siblings do not.
				s.mu.Lock()
				s.counters.WorkerPanics++
				s.mu.Unlock()
			})
			for job := range s.queue {
				s.runJobGuarded(job)
			}
		}()
	}
	return s, nil
}

// StartDraining moves the server into drain: /healthz reports draining and
// new submissions are refused with 503, while polls keep being served so
// clients can collect results until Close finishes the backlog.
func (s *Server) StartDraining() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether StartDraining has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close stops admissions, drains the queued jobs through the pool, and
// waits for in-flight jobs to finish. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue) // all sends hold mu and check closed first
	s.mu.Unlock()
	s.wg.Wait()
	if s.journal != nil {
		s.journal.Close() //nolint:errcheck // every record is already appended
	}
}

// effectiveTimeout normalizes a job's requested deadline against the
// server's default and cap.
func (s *Server) effectiveTimeout(requested time.Duration) time.Duration {
	t := requested
	if t <= 0 {
		t = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (t <= 0 || t > s.cfg.MaxTimeout) {
		t = s.cfg.MaxTimeout
	}
	return t
}

// submitError is a client-visible admission failure with an HTTP status.
// retryAfter > 0 becomes a Retry-After header; a non-nil doc replaces the
// default {"error": msg} body (the quarantine 422 document).
type submitError struct {
	status     int
	msg        string
	retryAfter int
	doc        any
}

func (e *submitError) Error() string { return e.msg }

// Submit admits one parsed design as a job. Equivalent to SubmitSource with
// no re-parseable source: with a journal configured, such a job cannot be
// resumed after a crash, only reported as interrupted.
func (s *Server) Submit(d *gatewords.Design, opts JobOptions) (*Job, error) {
	return s.SubmitSource(d, opts, Source{})
}

// SubmitSource admits one parsed design as a job, journaling src alongside
// the accepted record so Config.Resume can re-enqueue it after a crash. The
// design must not be mutated by the caller afterwards. The returned job is
// already terminal for cache hits (State done, Cached set).
//
// Admission runs in one critical section, in deliberate order: cache hits
// and coalescing first (they consume no worker, so overload must not refuse
// them), then the quarantine breaker (a poison input is refused before it
// can occupy a queue slot), then admission control (deadline feasibility and
// cost shedding), then the bounded queue itself.
func (s *Server) SubmitSource(d *gatewords.Design, opts JobOptions, src Source) (*Job, error) {
	if _, err := opts.lintMode(); err != nil {
		return nil, &submitError{status: 400, msg: err.Error()}
	}
	timeout := s.effectiveTimeout(time.Duration(opts.TimeoutMS) * time.Millisecond)
	opts.TimeoutMS = timeout.Milliseconds()
	fp := d.Fingerprint()
	key := cacheKey(fp, opts)
	gates := d.Stats().Gates

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, &submitError{status: 503, msg: "server is shutting down"}
	}
	if s.draining {
		return nil, &submitError{status: 503, msg: "server is draining", retryAfter: 1}
	}
	s.seq++
	job := &Job{
		ID:          fmt.Sprintf("job-%06d", s.seq),
		Key:         key,
		Fingerprint: fp,
		Module:      d.Name(),
		Done:        make(chan struct{}),
		opts:        opts,
		timeout:     timeout,
	}
	accepted := acceptedData{
		Key:         key,
		Fingerprint: fp,
		Module:      job.Module,
		Opts:        opts,
		Bench:       src.Bench,
		Verilog:     src.Verilog,
		Top:         src.Top,
	}

	if origin, report, ok := s.cache.get(key); ok {
		job.State = StateDone
		job.Cached = true
		job.Report = report
		close(job.Done)
		s.counters.CacheHits++
		s.registerLocked(job)
		s.counters.JobsDone++
		accepted.Cached = true
		s.journalAppendLocked(job.ID, "accepted", accepted)
		// The report bytes already live in the origin job's done record;
		// reference them instead of re-journaling them per hit.
		s.journalAppendLocked(job.ID, "done", doneData{Primary: origin})
		return job, nil
	}
	if primary, ok := s.inflight[key]; ok {
		job.State = StateQueued
		job.CoalescedWith = primary.ID
		primary.waiters = append(primary.waiters, job)
		s.counters.JobsCoalesced++
		s.registerLocked(job)
		accepted.Coalesced = primary.ID
		s.journalAppendLocked(job.ID, "accepted", accepted)
		return job, nil
	}
	if qs := s.breaker.refuse(fp); qs != nil {
		s.seq--
		s.counters.QuarantineRejections++
		return nil, &submitError{
			status:     422,
			msg:        qs.Error,
			retryAfter: int((qs.RetryAfterMS + 999) / 1000),
			doc:        qs,
		}
	}
	if se := s.admitLocked(job, gates); se != nil {
		s.seq--
		s.counters.JobsShed++
		s.observer.AddCounter(obs.CtrJobsShed, 1)
		return nil, se
	}
	// First sighting of this key: a real execution. Admission and the
	// enqueue are one critical section, so the queue can never hold a job
	// the store does not know.
	job.State = StateQueued
	job.design = d
	select {
	case s.queue <- job:
	default:
		s.seq-- // the job was never admitted
		s.counters.JobsRejected++
		return nil, &submitError{
			status:     503,
			msg:        fmt.Sprintf("job queue full (%d pending)", cap(s.queue)),
			retryAfter: s.adm.retryAfterSeconds(len(s.queue), s.cfg.Workers),
		}
	}
	// Committed: if this fingerprint was half-open, this job is its probe.
	s.breaker.beginProbe(fp)
	s.counters.CacheMisses++
	s.counters.JobsQueued++
	s.inflight[key] = job
	s.registerLocked(job)
	s.journalAppendLocked(job.ID, "accepted", accepted)
	return job, nil
}

func (s *Server) registerLocked(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.counters.JobsAccepted++
}

// Lookup returns the job with the given ID.
func (s *Server) Lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runJob executes one primary job on a worker: per-job deadline, private
// Observer, one gatewords.Identify, serialized report. Completion moves the
// job — and every duplicate coalesced onto it — to a terminal state, feeds
// the cache, and folds the job's observations into the served aggregate.
// runJobGuarded is the worker's per-job recover boundary: a panic escaping
// runJob — bookkeeping outside executeJob's own pipeline boundary — fails
// the job and its coalesced waiters instead of killing the worker and
// leaving them waiting on a Done channel that never closes.
func (s *Server) runJobGuarded(job *Job) {
	defer guard.Rescue("job", func(f *guard.GroupFailure) {
		s.failJobAfterPanic(job, f)
	})
	s.runJob(job)
}

// failJobAfterPanic moves a job (and its waiters) to StateFailed after a
// recovered panic, repairing the counters the interrupted runJob left
// mid-update. Jobs already terminal are left untouched.
func (s *Server) failJobAfterPanic(job *Job, f *guard.GroupFailure) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters.WorkerPanics++
	if s.inflight[job.Key] == job {
		delete(s.inflight, job.Key)
	}
	switch job.State {
	case StateRunning:
		s.counters.JobsRunning--
	case StateQueued:
		s.counters.JobsQueued--
	}
	msg := fmt.Sprintf("worker panicked at stage %q: %s", f.Stage, f.Message)
	if s.breaker.strike(job.Fingerprint, msg) {
		s.counters.QuarantineTrips++
		s.observer.AddCounter(obs.CtrQuarantineTrips, 1)
	}
	terminalize := func(j *Job) {
		if j.State == StateDone || j.State == StateFailed {
			return
		}
		j.State = StateFailed
		j.Err = msg
		s.counters.JobsFailed++
		j.design = nil
		s.journalAppendLocked(j.ID, "failed", failedData{Error: msg})
		close(j.Done)
	}
	terminalize(job)
	for _, w := range job.waiters {
		terminalize(w)
	}
	job.waiters = nil
}

func (s *Server) runJob(job *Job) {
	if gate := s.testJobGate; gate != nil {
		<-gate
	}
	func() {
		// Deferred unlock so a panic between Lock and Unlock cannot leak mu
		// into failJobAfterPanic's own critical section.
		s.mu.Lock()
		defer s.mu.Unlock()
		job.State = StateRunning
		s.counters.JobsQueued--
		s.counters.JobsRunning++
		s.counters.PipelineRuns++
	}()
	s.journalAppend(job.ID, "running", nil)

	observer := gatewords.NewObserver()
	start := time.Now()
	report, interrupted, err := executeJob(job, observer)
	elapsed := time.Since(start)

	// The per-job recorder merges whether the job succeeded or failed — a
	// failing job's observability is exactly when /metrics matters.
	s.observer.Merge(observer)

	s.mu.Lock()
	defer s.mu.Unlock()
	// Every execution outcome feeds the latency EWMA: failed and
	// deadline-expired runs occupied a worker just the same.
	s.adm.observe(elapsed)
	s.counters.JobsRunning--
	delete(s.inflight, job.Key)
	if err != nil || interrupted {
		// A panic or an expired deadline is a quarantine strike against the
		// input; enough consecutive ones trip its breaker.
		msg := "deadline expired"
		if err != nil {
			msg = err.Error()
		}
		if s.breaker.strike(job.Fingerprint, msg) {
			s.counters.QuarantineTrips++
			s.observer.AddCounter(obs.CtrQuarantineTrips, 1)
		}
	} else {
		s.breaker.succeed(job.Fingerprint)
	}
	if err == nil && !interrupted {
		// Interrupted (deadline-truncated) reports are wall-clock artifacts,
		// not properties of the design; they are served but never cached.
		s.cache.put(job.Key, job.ID, report)
	}
	// Journal the terminal transitions before finishLocked closes the Done
	// channels: a client that has seen a result must find it after a crash.
	if err != nil {
		s.journalAppendLocked(job.ID, "failed", failedData{Error: err.Error()})
	} else {
		s.journalAppendLocked(job.ID, "done", doneData{Report: report, Interrupted: interrupted})
	}
	for _, w := range job.waiters {
		if err != nil {
			s.journalAppendLocked(w.ID, "failed", failedData{Error: err.Error()})
		} else {
			s.journalAppendLocked(w.ID, "done", doneData{Primary: job.ID, Interrupted: interrupted})
		}
	}
	s.finishLocked(job, report, interrupted, err)
	for _, w := range job.waiters {
		s.finishLocked(w, report, interrupted, err)
	}
	job.waiters = nil
}

// executeJob is the panic boundary around one pipeline run: the pipeline
// already isolates per-group panics, and anything escaping it becomes a
// failed job rather than a dead worker.
func executeJob(job *Job, observer *gatewords.Observer) (report []byte, interrupted bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("identification panicked: %v", v)
		}
	}()
	ctx := context.Background()
	if job.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, job.timeout)
		defer cancel()
	}
	fo, err := job.opts.facadeOptions(ctx, observer)
	if err != nil {
		return nil, false, err
	}
	// Per-input fault injection point for the chaos harness: a plant keyed
	// "job:<module>" models a poison input that panics on execution.
	guard.Inject("job:"+job.Module, guard.AnyGroup)
	start := time.Now()
	rep, err := gatewords.Identify(job.design, fo)
	if err != nil {
		return nil, false, err
	}
	var evp *gatewords.Evaluation
	if job.opts.Evaluate {
		ev := gatewords.Evaluate(job.design, rep)
		evp = &ev
	}
	var buf bytes.Buffer
	if err := gatewords.WriteJSON(&buf, job.design, rep, evp, job.opts.IncludeAll, time.Since(start)); err != nil {
		return nil, false, err
	}
	return buf.Bytes(), rep.Interrupted, nil
}

func (s *Server) finishLocked(job *Job, report []byte, interrupted bool, err error) {
	if err != nil {
		job.State = StateFailed
		job.Err = err.Error()
		s.counters.JobsFailed++
	} else {
		job.State = StateDone
		job.Report = report
		job.Interrupted = interrupted
		s.counters.JobsDone++
	}
	job.design = nil // the serialized report is the result; free the netlist
	close(job.Done)
}

// Metrics returns a consistent snapshot of the server counters and the
// merged pipeline observability of completed jobs.
func (s *Server) Metrics() (Counters, *gatewords.Observer) {
	s.mu.Lock()
	c := s.counters
	c.CacheEntries = int64(s.cache.len())
	c.JobLatencyEWMAMS = s.adm.latencyMS()
	if s.breaker != nil {
		c.QuarantineFingerprints = int64(len(s.breaker.entries))
	}
	s.mu.Unlock()
	return c, s.observer.Snapshot()
}
