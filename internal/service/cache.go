package service

import "container/list"

// resultCache is a small LRU over serialized report documents, keyed by the
// canonical job key (design fingerprint × normalized options). It is not
// internally locked: the Server owns it and every access happens under the
// Server's mutex, which also keeps the hit/miss counters coherent with the
// lookups they describe.
type resultCache struct {
	cap     int
	byKey   map[string]*list.Element
	recency *list.List // front = most recently used
}

type cacheEntry struct {
	key    string
	origin string // ID of the job whose execution produced the report
	report []byte
}

// newResultCache returns a cache holding at most capacity reports;
// capacity <= 0 disables caching (every lookup misses, every store drops).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		byKey:   make(map[string]*list.Element),
		recency: list.New(),
	}
}

func (c *resultCache) get(key string) (origin string, report []byte, ok bool) {
	el, ok := c.byKey[key]
	if !ok {
		return "", nil, false
	}
	c.recency.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.origin, e.report, true
}

func (c *resultCache) put(key, origin string, report []byte) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		e.origin = origin
		e.report = report
		c.recency.MoveToFront(el)
		return
	}
	c.byKey[key] = c.recency.PushFront(&cacheEntry{key: key, origin: origin, report: report})
	for c.recency.Len() > c.cap {
		oldest := c.recency.Back()
		c.recency.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int { return c.recency.Len() }
