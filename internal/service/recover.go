package service

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"gatewords"
	"gatewords/internal/obs"
	"gatewords/internal/service/journal"
)

// The durable job journal records one entry per lifecycle transition:
//
//	accepted  (Submit)   key, fingerprint, module, normalized options, the
//	                     re-parseable submission source, and how the job was
//	                     satisfied (fresh primary / cache hit / coalesced)
//	running   (worker)   the job left the queue
//	done      (worker)   the serialized report — inline for primaries, a
//	                     primary reference for cache hits and coalesced
//	                     duplicates (their bytes are the primary's bytes,
//	                     which is exactly the invariant replay preserves)
//	failed    (worker)   the failure message
//
// Replay at startup (New with Config.JournalPath) folds the records into
// per-job outcomes: terminal jobs are restored verbatim — done jobs serve
// byte-identical reports, completed primaries re-seed the result cache —
// and non-terminal jobs are either re-enqueued (Config.Resume, queued jobs
// with a journaled source) or honestly marked failed as interrupted. Torn
// tails were already discarded and counted by journal.Open.

type acceptedData struct {
	Key         string     `json:"key"`
	Fingerprint string     `json:"fingerprint,omitempty"`
	Module      string     `json:"module,omitempty"`
	Opts        JobOptions `json:"opts"`
	Coalesced   string     `json:"coalesced_with,omitempty"`
	Cached      bool       `json:"cached,omitempty"`
	CacheFrom   string     `json:"cache_from,omitempty"` // job whose report the cache served
	Bench       string     `json:"bench,omitempty"`
	Verilog     string     `json:"verilog,omitempty"`
	Top         string     `json:"top,omitempty"`
}

type doneData struct {
	Report      json.RawMessage `json:"report,omitempty"`
	Primary     string          `json:"primary,omitempty"` // job carrying the bytes
	Interrupted bool            `json:"interrupted,omitempty"`
}

type failedData struct {
	Error string `json:"error"`
}

// journalAppend writes one record, counting (never failing on) append
// errors: a full disk costs durability, not availability.
func (s *Server) journalAppend(jobID, event string, data any) {
	if s.journal == nil {
		return
	}
	var raw json.RawMessage
	if data != nil {
		enc, err := json.Marshal(data)
		if err != nil {
			s.noteJournalError()
			return
		}
		raw = enc
	}
	if err := s.journal.Append(journal.Record{Job: jobID, Event: event, Data: raw}); err != nil {
		s.noteJournalError()
	}
}

func (s *Server) noteJournalError() {
	s.mu.Lock()
	s.counters.JournalErrors++
	s.mu.Unlock()
}

// journalAppendLocked is journalAppend for call sites already holding the
// server mutex (admission-time records, replay-time repairs). The append is
// plain file I/O under the journal's own leaf lock.
func (s *Server) journalAppendLocked(jobID, event string, data any) {
	if s.journal == nil {
		return
	}
	var raw json.RawMessage
	if data != nil {
		enc, err := json.Marshal(data)
		if err != nil {
			s.counters.JournalErrors++
			return
		}
		raw = enc
	}
	if err := s.journal.Append(journal.Record{Job: jobID, Event: event, Data: raw}); err != nil {
		s.counters.JournalErrors++
	}
}

// RecoveryReport summarizes one startup replay, for operator logs and the
// chaos harness.
type RecoveryReport struct {
	// Journaled reports whether a journal is configured at all.
	Journaled bool
	// Restored counts terminal jobs served straight from the journal.
	Restored int
	// Resumed counts journal-queued jobs re-enqueued for execution.
	Resumed int
	// Interrupted counts in-flight jobs marked failed as interrupted.
	Interrupted int
	// TornRecords counts discarded torn/corrupt journal tails.
	TornRecords int
}

// Recovery returns the startup replay summary (zero if no journal).
func (s *Server) Recovery() RecoveryReport { return s.recovery }

// replJob is one job's folded journal history.
type replJob struct {
	id      string
	acc     acceptedData
	state   string // queued | running | done | failed
	done    *doneData
	failMsg string
}

// replayJournal rebuilds the job store from the journal's records. Called
// from New before the workers start, with the store empty; it takes the
// mutex anyway so the helpers it shares with the serving path stay honest.
func (s *Server) replayJournal(records []journal.Record, torn int) {
	s.mu.Lock()
	defer s.mu.Unlock()

	byID := make(map[string]*replJob)
	var order []*replJob
	var maxSeq int64
	for _, rec := range records {
		if n := jobSeq(rec.Job); n > maxSeq {
			maxSeq = n
		}
		switch rec.Event {
		case "accepted":
			if byID[rec.Job] != nil {
				continue // duplicate accepted: first wins
			}
			j := &replJob{id: rec.Job, state: StateQueued}
			// A CRC-valid record with an undecodable payload is a version
			// skew, not a tear; the job is kept and will fail honestly below
			// for lack of a source.
			_ = json.Unmarshal(rec.Data, &j.acc)
			byID[rec.Job] = j
			order = append(order, j)
		case "running":
			if j := byID[rec.Job]; j != nil && j.state == StateQueued {
				j.state = StateRunning
			}
		case "done":
			if j := byID[rec.Job]; j != nil && j.state != StateDone && j.state != StateFailed {
				var d doneData
				if err := json.Unmarshal(rec.Data, &d); err == nil {
					j.state = StateDone
					j.done = &d
				}
			}
		case "failed":
			if j := byID[rec.Job]; j != nil && j.state != StateDone && j.state != StateFailed {
				var d failedData
				_ = json.Unmarshal(rec.Data, &d)
				j.state = StateFailed
				j.failMsg = d.Error
			}
		}
	}
	if maxSeq > s.seq {
		s.seq = maxSeq
	}

	rep := RecoveryReport{Journaled: true, TornRecords: torn}
	for _, j := range order {
		switch j.state {
		case StateDone:
			report, ok := resolveReport(byID, j)
			if !ok {
				s.restoreFailedLocked(j, "journal incomplete: report bytes lost with the primary's record")
				rep.Interrupted++
				continue
			}
			job := &Job{
				ID:            j.id,
				Key:           j.acc.Key,
				Fingerprint:   j.acc.Fingerprint,
				Module:        j.acc.Module,
				State:         StateDone,
				Cached:        j.acc.Cached,
				CoalescedWith: j.acc.Coalesced,
				Interrupted:   j.done.Interrupted,
				Report:        report,
				Done:          closedChan(),
				opts:          j.acc.Opts,
			}
			s.registerLocked(job)
			s.counters.JobsDone++
			// Re-seed the cache from primaries (inline bytes, key intact) so
			// the restarted daemon answers repeats in O(1) again.
			if len(j.done.Report) > 0 && !j.done.Interrupted && j.acc.Key != "" {
				s.cache.put(j.acc.Key, job.ID, report)
			}
			rep.Restored++
		case StateFailed:
			s.restoreFailedLocked(j, j.failMsg)
			rep.Restored++
		case StateRunning:
			s.restoreFailedLocked(j, "interrupted: daemon restarted mid-run")
			s.journalAppendLocked(j.id, "failed", failedData{Error: "interrupted: daemon restarted mid-run"})
			rep.Interrupted++
		case StateQueued:
			if s.cfg.Resume && s.resumeLocked(j) {
				rep.Resumed++
				continue
			}
			msg := "interrupted: daemon restarted while queued"
			if s.cfg.Resume {
				msg = "interrupted: daemon restarted while queued and the job could not be re-enqueued"
			}
			s.restoreFailedLocked(j, msg)
			s.journalAppendLocked(j.id, "failed", failedData{Error: msg})
			rep.Interrupted++
		}
	}
	s.recovery = rep
	replays := int64(rep.Restored + rep.Resumed)
	s.counters.JournalReplays = replays
	s.counters.JournalTornRecords = int64(torn)
	s.observer.AddCounter(obs.CtrJournalReplays, replays)
	s.observer.AddCounter(obs.CtrJournalTornRecords, int64(torn))
}

// resolveReport finds a done job's report bytes: inline for primaries, via
// the referenced primary for cache hits and coalesced duplicates.
func resolveReport(byID map[string]*replJob, j *replJob) ([]byte, bool) {
	if len(j.done.Report) > 0 {
		return j.done.Report, true
	}
	p := byID[j.done.Primary]
	if p == nil || p.done == nil || len(p.done.Report) == 0 {
		return nil, false
	}
	return p.done.Report, true
}

// restoreFailedLocked registers one journal job in terminal failed state.
func (s *Server) restoreFailedLocked(j *replJob, msg string) {
	job := &Job{
		ID:            j.id,
		Key:           j.acc.Key,
		Fingerprint:   j.acc.Fingerprint,
		Module:        j.acc.Module,
		State:         StateFailed,
		CoalescedWith: j.acc.Coalesced,
		Err:           msg,
		Done:          closedChan(),
		opts:          j.acc.Opts,
	}
	s.registerLocked(job)
	s.counters.JobsFailed++
}

// resumeLocked re-enqueues one journal-queued job from its journaled
// source. Duplicate keys coalesce exactly as live submissions do.
func (s *Server) resumeLocked(j *replJob) bool {
	src := Source{Bench: j.acc.Bench, Verilog: j.acc.Verilog, Top: j.acc.Top}
	if src == (Source{}) {
		return false
	}
	d, err := parseSource(src)
	if err != nil {
		return false
	}
	job := &Job{
		ID:          j.id,
		Key:         j.acc.Key,
		Fingerprint: j.acc.Fingerprint,
		Module:      j.acc.Module,
		State:       StateQueued,
		Done:        make(chan struct{}),
		opts:        j.acc.Opts,
		timeout:     timeoutFromOpts(j.acc.Opts),
	}
	if primary, ok := s.inflight[job.Key]; ok {
		job.CoalescedWith = primary.ID
		primary.waiters = append(primary.waiters, job)
		s.counters.JobsCoalesced++
		s.registerLocked(job)
		return true
	}
	job.design = d
	select {
	case s.queue <- job:
	default:
		return false // resumed backlog exceeds this configuration's queue
	}
	s.counters.JobsQueued++
	s.inflight[job.Key] = job
	s.registerLocked(job)
	return true
}

// jobSeq parses the numeric suffix of "job-000042" ids (0 if foreign).
func jobSeq(id string) int64 {
	const prefix = "job-"
	if !strings.HasPrefix(id, prefix) {
		return 0
	}
	n, err := strconv.ParseInt(id[len(prefix):], 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// Source is the re-parseable text behind a submission, journaled alongside
// the accepted record so -resume can re-enqueue a queued job after a crash.
// Exactly one of Bench or Verilog is set (Top optionally qualifies Verilog).
type Source struct {
	Bench   string
	Verilog string
	Top     string
}

// parseSource loads a journaled submission source the same way the HTTP
// layer parses a live one.
func parseSource(src Source) (*gatewords.Design, error) {
	switch {
	case src.Verilog != "" && src.Bench != "":
		return nil, fmt.Errorf("submit exactly one of verilog or bench, not both")
	case src.Verilog != "":
		if src.Top != "" {
			return gatewords.ParseVerilogHierarchy("request.v", src.Verilog, src.Top)
		}
		return gatewords.ParseVerilogString("request.v", src.Verilog)
	case src.Bench != "":
		if src.Top != "" {
			return nil, fmt.Errorf("top applies only to verilog submissions")
		}
		return gatewords.GenerateBenchmark(src.Bench)
	default:
		return nil, fmt.Errorf("submit one of verilog or bench")
	}
}

func timeoutFromOpts(o JobOptions) time.Duration {
	return time.Duration(o.TimeoutMS) * time.Millisecond
}
