// Package journal is the durable job journal behind wordidd's crash
// recovery: an append-only, checksummed write-ahead log of job lifecycle
// records. The daemon appends one record per state transition (accepted,
// running, done-with-report-bytes, failed) and replays the log on startup,
// so a restarted daemon can serve every journal-completed job's report
// byte-identical to the pre-crash response and report in-flight jobs as
// interrupted instead of losing them.
//
// The framing is deliberately dumb: every record is
//
//	[4-byte little-endian payload length][4-byte IEEE CRC32 of payload][payload]
//
// with the payload being the record's JSON encoding. A crash can tear at
// most the final append, and every tear is detectable: a short header, a
// short payload, an implausible length, or a checksum mismatch all stop the
// replay at the last fully valid record. Torn tails are counted, reported,
// and truncated away on open — never silently replayed, never fatal. The
// journal makes no fsync calls: the durability target is process death
// (SIGKILL, panic, OOM), where the page cache survives, not power loss.
package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// MaxRecordBytes bounds one record's payload. Anything larger in a header is
// treated as a torn record rather than an allocation request: a corrupt
// length field must not make replay attempt a multi-gigabyte read.
const MaxRecordBytes = 1 << 28 // 256 MiB

const headerBytes = 8 // 4-byte length + 4-byte CRC32

// Record is one journaled lifecycle event. Job and Event identify the
// transition; Data carries the event's payload (report bytes, error text,
// submission source) as raw JSON the caller defines — the journal itself
// does not interpret it.
type Record struct {
	Job   string          `json:"job"`
	Event string          `json:"event"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// Journal is an open, append-positioned journal file. Append is
// goroutine-safe; records are framed in one Write call each, so concurrent
// appenders interleave whole records, never bytes.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	closed bool
}

// Open opens (creating if absent) the journal at path, replays its records,
// truncates any torn tail so subsequent appends start on a record boundary,
// and returns the journal positioned for append, the replayed records, and
// the number of torn tails discarded (0 or 1: a tear ends the replay).
func Open(path string) (*Journal, []Record, int, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	records, valid, torn, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("journal %s: %w", path, err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("journal %s: truncating torn tail: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("journal %s: %w", path, err)
	}
	return &Journal{f: f}, records, torn, nil
}

// Replay reads every valid record from r, stopping at the first torn or
// corrupt one. It returns the valid prefix and the number of torn tails
// encountered (0 or 1). Only a real read error is an error: corruption is a
// counted, expected outcome of a crash, not a failure.
func Replay(r io.Reader) ([]Record, int, error) {
	records, _, torn, err := replay(r)
	return records, torn, err
}

// replay also returns the byte offset just past the last valid record, for
// Open's truncation.
func replay(r io.Reader) (records []Record, valid int64, torn int, err error) {
	br := newByteCounter(r)
	var header [headerBytes]byte
	for {
		valid = br.n
		if _, err := io.ReadFull(br, header[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return records, valid, torn, nil // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return records, valid, torn + 1, nil // torn header
			}
			return records, valid, torn, err
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > MaxRecordBytes {
			return records, valid, torn + 1, nil // implausible length: corrupt
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return records, valid, torn + 1, nil // torn payload
			}
			return records, valid, torn, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return records, valid, torn + 1, nil // bit rot or torn overwrite
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A checksummed payload that is not a record was written by
			// something that is not this journal; stop rather than guess.
			return records, valid, torn + 1, nil
		}
		records = append(records, rec)
	}
}

// Append journals one record: marshal, frame, and write it in a single
// write call. An error leaves the journal usable; the caller decides whether
// lost durability is fatal (the daemon keeps serving and counts it).
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding record: %w", err)
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("journal: record of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	buf := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerBytes:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Sync flushes the journal to stable storage (crash-beyond-process-death
// durability, for callers that want it).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	return j.f.Sync()
}

// Close closes the journal file. Safe to call more than once.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// AppendTo is the test-and-tooling helper for building journals without an
// open Journal: it frames rec onto w exactly as Append would.
func AppendTo(w io.Writer, rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	var header [headerBytes]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// Encode renders rec in framed form, for tests that corrupt specific bytes.
func Encode(rec Record) []byte {
	var buf bytes.Buffer
	if err := AppendTo(&buf, rec); err != nil {
		panic(err) // Record marshals to JSON by construction
	}
	return buf.Bytes()
}

// byteCounter tracks how many bytes have been consumed, giving replay the
// offset of the last valid record boundary.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}
