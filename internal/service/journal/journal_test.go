package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func rec(job, event, data string) Record {
	r := Record{Job: job, Event: event}
	if data != "" {
		r.Data = json.RawMessage(data)
	}
	return r
}

// TestRoundTrip pins the basic contract: append N records, reopen, get the
// same N back, torn count zero, and appends after reopen extend the log.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, records, torn, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 || torn != 0 {
		t.Fatalf("fresh journal replayed %d records, %d torn", len(records), torn)
	}
	want := []Record{
		rec("job-000001", "accepted", `{"key":"k1"}`),
		rec("job-000001", "running", ""),
		rec("job-000001", "done", `{"report":"eyJtIjoxfQ=="}`),
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	j2, records, torn, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if torn != 0 || !reflect.DeepEqual(records, want) {
		t.Fatalf("replay: torn=%d records=%+v, want %+v", torn, records, want)
	}
	if err := j2.Append(rec("job-000002", "accepted", "")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, records, _, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 || records[3].Job != "job-000002" {
		t.Fatalf("append after reopen lost records: %+v", records)
	}
}

// TestReplayCorruption is the corruption table: every way a crash or bit
// flip can damage the log must stop replay at the last valid record, count
// exactly one torn tail, and never panic.
func TestReplayCorruption(t *testing.T) {
	good := []Record{
		rec("job-000001", "accepted", `{"key":"a"}`),
		rec("job-000001", "done", `{"report":"aGk="}`),
		rec("job-000002", "accepted", `{"key":"b"}`),
	}
	var clean bytes.Buffer
	for _, r := range good {
		if err := AppendTo(&clean, r); err != nil {
			t.Fatal(err)
		}
	}
	last := Encode(good[2])

	cases := []struct {
		name      string
		corrupt   func() []byte
		wantValid int // records surviving replay
		wantTorn  int
	}{
		{"clean", func() []byte { return clean.Bytes() }, 3, 0},
		{"empty", func() []byte { return nil }, 0, 0},
		{"truncated-mid-payload", func() []byte {
			b := bytes.Clone(clean.Bytes())
			return b[:len(b)-len(last)+headerBytes+3] // 3 bytes into the last payload
		}, 2, 1},
		{"truncated-mid-header", func() []byte {
			b := bytes.Clone(clean.Bytes())
			return b[:len(b)-len(last)+5] // 5 of 8 header bytes
		}, 2, 1},
		{"bit-flipped-checksum", func() []byte {
			b := bytes.Clone(clean.Bytes())
			b[len(b)-len(last)+4] ^= 0x01 // first CRC byte of the last record
			return b
		}, 2, 1},
		{"bit-flipped-payload", func() []byte {
			b := bytes.Clone(clean.Bytes())
			b[len(b)-1] ^= 0x80
			return b
		}, 2, 1},
		{"zero-length-record", func() []byte {
			b := bytes.Clone(clean.Bytes())
			return append(b, make([]byte, headerBytes)...)
		}, 3, 1},
		{"implausible-length", func() []byte {
			b := bytes.Clone(clean.Bytes())
			return append(b, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
		}, 3, 1},
		{"mid-log-corruption-discards-suffix", func() []byte {
			// A flipped byte in the FIRST record: replay must stop there and
			// not resynchronize onto the later (intact) records.
			b := bytes.Clone(clean.Bytes())
			b[headerBytes+2] ^= 0x04
			return b
		}, 0, 1},
		{"checksummed-non-record", func() []byte {
			// A correctly framed, correctly checksummed payload that is not a
			// Record object: written by something that is not this journal.
			payload := []byte(`[1,2,3]`)
			hdr := make([]byte, headerBytes)
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
			b := bytes.Clone(clean.Bytes())
			return append(append(b, hdr...), payload...)
		}, 3, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			records, torn, err := Replay(bytes.NewReader(tc.corrupt()))
			if err != nil {
				t.Fatalf("replay errored: %v", err)
			}
			if len(records) != tc.wantValid || torn != tc.wantTorn {
				t.Fatalf("replay: %d records, %d torn; want %d, %d",
					len(records), torn, tc.wantValid, tc.wantTorn)
			}
			for i, r := range records {
				if !reflect.DeepEqual(r, good[i]) {
					t.Errorf("record %d = %+v, want %+v", i, r, good[i])
				}
			}
		})
	}
}

// TestOpenTruncatesTornTail pins that Open repairs the file: after opening a
// torn journal, the tail is gone from disk and appends produce a log whose
// replay carries the old valid prefix plus the new records, torn-free.
func TestOpenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	var buf bytes.Buffer
	if err := AppendTo(&buf, rec("job-000001", "done", `{"report":"eA=="}`)); err != nil {
		t.Fatal(err)
	}
	torn := Encode(rec("job-000002", "accepted", ""))
	buf.Write(torn[:len(torn)-2]) // crash mid-append
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	j, records, tornCount, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || tornCount != 1 {
		t.Fatalf("open: %d records, %d torn; want 1, 1", len(records), tornCount)
	}
	if err := j.Append(rec("job-000003", "accepted", "")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, records, tornCount, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if tornCount != 0 || len(records) != 2 ||
		records[0].Job != "job-000001" || records[1].Job != "job-000003" {
		t.Fatalf("repaired journal replay: torn=%d %+v", tornCount, records)
	}
}

// TestConcurrentAppend pins that concurrent appenders interleave whole
// records: replay sees every record intact, in some order.
func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r := rec(fmt.Sprintf("job-%d-%d", w, i), "running", "")
				if err := j.Append(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()
	_, records, torn, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 || len(records) != writers*per {
		t.Fatalf("replay: %d records, %d torn; want %d, 0", len(records), torn, writers*per)
	}
	seen := map[string]bool{}
	for _, r := range records {
		if seen[r.Job] {
			t.Fatalf("duplicate record %q", r.Job)
		}
		seen[r.Job] = true
	}
}

// TestAppendAfterClose pins the closed-journal contract.
func TestAppendAfterClose(t *testing.T) {
	j, _, _, err := Open(filepath.Join(t.TempDir(), "j.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(rec("a", "b", "")); err == nil {
		t.Error("append after close succeeded")
	}
	if err := j.Sync(); err == nil {
		t.Error("sync after close succeeded")
	}
}

// FuzzJournalReplay throws arbitrary bytes at Replay: it must never panic,
// and whenever the input is a valid framed prefix the records must round
// trip. The seed corpus covers clean logs and every corruption class.
func FuzzJournalReplay(f *testing.F) {
	var clean bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := AppendTo(&clean, rec(fmt.Sprintf("job-%06d", i), "accepted", `{"key":"k"}`)); err != nil {
			f.Fatal(err)
		}
	}
	f.Add([]byte{})
	f.Add(clean.Bytes())
	f.Add(clean.Bytes()[:clean.Len()-3])
	flipped := bytes.Clone(clean.Bytes())
	flipped[5] ^= 0xff
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		records, torn, err := Replay(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("in-memory replay cannot error: %v", err)
		}
		if torn > 1 {
			t.Fatalf("torn = %d; a replay stops at the first tear", torn)
		}
		// Round-trip property: re-framing the replayed records must replay
		// identically (framing is canonical for what it accepted).
		var again bytes.Buffer
		for _, r := range records {
			if err := AppendTo(&again, r); err != nil {
				t.Fatalf("re-framing replayed record: %v", err)
			}
		}
		records2, torn2, _ := Replay(bytes.NewReader(again.Bytes()))
		if torn2 != 0 || len(records2) != len(records) {
			t.Fatalf("round trip: %d records %d torn, want %d 0", len(records2), torn2, len(records))
		}
	})
}
