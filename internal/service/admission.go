package service

import (
	"fmt"
	"time"
)

// admission is the server's overload-control state: an exponentially
// weighted moving average of per-job pipeline latency, observed on every
// execution (success, failure, or deadline expiry — all of them occupied a
// worker). The EWMA feeds three decisions, all made at submission time under
// the server mutex:
//
//   - deadline-aware queueing: a job whose own deadline cannot be met given
//     the current backlog (queue depth × EWMA ÷ workers, plus its own
//     estimated run) is refused with 429 immediately, instead of occupying a
//     queue slot only to time out after waiting;
//   - cost-based load shedding: once the queue is at least half full, jobs
//     whose gate count exceeds Config.ShedGates are refused with 429 —
//     under pressure the cheap majority is worth more than one heavy tail;
//   - Retry-After accuracy: 429/503 responses carry the estimated queue
//     drain time, so well-behaved clients back off for exactly as long as
//     the backlog warrants.
//
// The zero value means "no observation yet": deadline admission is skipped
// (there is nothing to estimate from) and Retry-After falls back to 1s.
type admission struct {
	ewmaMS float64
}

// ewmaAlpha weights the newest observation: ~20% new, ~80% history, so a
// burst of atypical jobs bends the estimate without whipsawing it.
const ewmaAlpha = 0.2

func (a *admission) observe(d time.Duration) {
	ms := float64(d.Microseconds()) / 1000
	if a.ewmaMS == 0 {
		a.ewmaMS = ms
		return
	}
	a.ewmaMS = ewmaAlpha*ms + (1-ewmaAlpha)*a.ewmaMS
}

// latencyMS returns the current estimate (0 until the first observation).
func (a *admission) latencyMS() float64 { return a.ewmaMS }

// retryAfterSeconds estimates how long the current backlog takes to drain:
// the Retry-After value for refused submissions. At least 1, at most 3600.
func (a *admission) retryAfterSeconds(backlog, workers int) int {
	if workers < 1 {
		workers = 1
	}
	ms := a.ewmaMS * float64(backlog) / float64(workers)
	secs := int((ms + 999) / 1000)
	if secs < 1 {
		return 1
	}
	if secs > 3600 {
		return 3600
	}
	return secs
}

// admitLocked decides whether a fresh primary job may join the queue, given
// the current backlog. Caller holds the server mutex. A nil return admits.
func (s *Server) admitLocked(job *Job, gates int) *submitError {
	backlog := len(s.queue)
	// Deadline feasibility: estimated wait for a slot plus the job's own
	// estimated run must fit inside its deadline. Skipped until the EWMA has
	// an observation — refusing on no evidence would be load shedding by
	// superstition.
	if ewma := s.adm.latencyMS(); ewma > 0 && job.timeout > 0 {
		estStartMS := ewma * float64(backlog) / float64(s.cfg.Workers)
		deadlineMS := float64(job.timeout.Milliseconds())
		if estStartMS+ewma > deadlineMS {
			return &submitError{
				status: 429,
				msg: fmt.Sprintf(
					"deadline %dms cannot be met: ~%.0fms queue wait + ~%.0fms estimated run (%d queued, EWMA over %d workers)",
					int64(deadlineMS), estStartMS, ewma, backlog, s.cfg.Workers),
				retryAfter: s.adm.retryAfterSeconds(backlog, s.cfg.Workers),
			}
		}
	}
	// Cost-based shedding: heavy jobs are refused once the queue is at
	// least half full. Light jobs keep flowing until the queue itself fills.
	if s.cfg.ShedGates > 0 && gates > s.cfg.ShedGates && 2*backlog >= s.cfg.QueueDepth {
		return &submitError{
			status: 429,
			msg: fmt.Sprintf("shedding heavy job (%d gates > %d) under load (%d/%d queued)",
				gates, s.cfg.ShedGates, backlog, s.cfg.QueueDepth),
			retryAfter: s.adm.retryAfterSeconds(backlog, s.cfg.Workers),
		}
	}
	return nil
}
