package service

import "time"

// breaker is the poison-input quarantine: a circuit breaker keyed on the
// design's canonical fingerprint (netlist.Fingerprint), so a netlist that
// keeps killing workers — panicking pipelines, deadline-burning SAT tails,
// trojan-trigger-shaped pathologies — is refused with a structured 422
// carrying its prior failure instead of re-burning a worker on every
// resubmission.
//
// Per-fingerprint state machine:
//
//	counting --(strikes == threshold)--> open --(TTL elapses)--> half-open
//	   ^                                  ^                          |
//	   |                                  +----- probe fails --------+
//	   +------------- any success (probe or counting run) deletes the entry
//
// Strikes are consecutive executions of the fingerprint that panicked or
// expired their deadline; any clean completion resets by deleting the entry.
// While open, every submission is refused. After QuarantineTTL the breaker
// goes half-open: exactly one probe submission is admitted (and executed);
// its success closes the breaker, its failure re-trips a fresh TTL.
// Duplicate submissions while the probe is in flight stay refused.
//
// The breaker is not internally locked: the Server owns it and every access
// happens under the Server's mutex, like the result cache.
type breaker struct {
	threshold int
	ttl       time.Duration
	now       func() time.Time // injectable for TTL tests
	entries   map[string]*breakerEntry
	order     []string // insertion order, for bounded eviction
}

type breakerEntry struct {
	strikes  int    // consecutive failures so far
	failures int    // lifetime failures, served in the 422 document
	lastErr  string // most recent failure, served in the 422 document
	open     bool
	probing  bool // half-open: the one allowed probe is in flight
	tripped  time.Time
}

// breakerMaxEntries caps the tracked-fingerprint set: strikes are only
// interesting for inputs a client keeps resubmitting, so evicting the
// oldest entry under pressure loses at worst a stale count.
const breakerMaxEntries = 4096

func newBreaker(threshold int, ttl time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		ttl:       ttl,
		now:       time.Now,
		entries:   make(map[string]*breakerEntry),
	}
}

// QuarantineStatus is the structured 422 payload for a quarantined
// fingerprint: what failed before, how often, and when a retry could be
// admitted as the half-open probe.
type QuarantineStatus struct {
	Error        string `json:"error"`
	Fingerprint  string `json:"fingerprint"`
	Failures     int    `json:"failures"`
	LastError    string `json:"last_error"`
	RetryAfterMS int64  `json:"retry_after_ms"`
}

// refuse reports whether a submission of fp must be quarantined, returning
// the 422 document if so. It does not mutate state: the caller commits the
// half-open probe with beginProbe only once the job is actually admitted
// (a submission shed for other reasons must not consume the probe).
func (b *breaker) refuse(fp string) *QuarantineStatus {
	if b == nil {
		return nil
	}
	e := b.entries[fp]
	if e == nil || !e.open {
		return nil
	}
	remaining := e.tripped.Add(b.ttl).Sub(b.now())
	if remaining <= 0 && !e.probing {
		return nil // TTL elapsed: the next admitted job is the probe
	}
	if remaining < 0 {
		remaining = 0 // probe already in flight; retry once it resolves
	}
	return &QuarantineStatus{
		Error:        "input quarantined after repeated failures: " + e.lastErr,
		Fingerprint:  fp,
		Failures:     e.failures,
		LastError:    e.lastErr,
		RetryAfterMS: remaining.Milliseconds(),
	}
}

// beginProbe marks fp's half-open probe as in flight, if fp is open with an
// elapsed TTL. Called once the probe submission is committed to the queue.
func (b *breaker) beginProbe(fp string) {
	if b == nil {
		return
	}
	if e := b.entries[fp]; e != nil && e.open && !e.probing && !b.now().Before(e.tripped.Add(b.ttl)) {
		e.probing = true
	}
}

// strike records one failed execution (panic or expired deadline) of fp and
// reports whether this strike tripped (or re-tripped) the breaker.
func (b *breaker) strike(fp, msg string) bool {
	if b == nil || fp == "" {
		return false
	}
	e := b.entries[fp]
	if e == nil {
		e = &breakerEntry{}
		b.entries[fp] = e
		b.order = append(b.order, fp)
		b.evict()
	}
	e.failures++
	e.lastErr = msg
	if e.open {
		// Only the half-open probe reaches execution while open; its failure
		// re-trips a fresh TTL.
		e.probing = false
		e.tripped = b.now()
		return true
	}
	e.strikes++
	if e.strikes >= b.threshold {
		e.open = true
		e.tripped = b.now()
		return true
	}
	return false
}

// succeed records one clean completion of fp, closing its breaker entirely.
func (b *breaker) succeed(fp string) {
	if b == nil || fp == "" {
		return
	}
	if _, ok := b.entries[fp]; !ok {
		return
	}
	delete(b.entries, fp)
	// order keeps the stale key; evict skips keys no longer in the map.
}

func (b *breaker) evict() {
	for len(b.entries) > breakerMaxEntries && len(b.order) > 0 {
		oldest := b.order[0]
		b.order = b.order[1:]
		delete(b.entries, oldest)
	}
	// Compact order lazily once stale keys dominate, so succeed() churn
	// cannot grow it without bound.
	if len(b.order) > 2*breakerMaxEntries {
		live := b.order[:0]
		for _, k := range b.order {
			if _, ok := b.entries[k]; ok {
				live = append(live, k)
			}
		}
		b.order = live
	}
}
