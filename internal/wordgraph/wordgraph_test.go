package wordgraph

import (
	"strings"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/rtl"
	"gatewords/internal/synth"
)

// dpWords synthesizes r = sel ? (a ^ b) : r and returns the netlist plus
// the word set: D word, xor word, a/b buses, q word.
func dpWords(t *testing.T) (*netlist.Netlist, [][]netlist.NetID) {
	t.Helper()
	d := &rtl.Design{
		Name:   "dp",
		Inputs: []rtl.Signal{{Name: "a", Width: 3}, {Name: "b", Width: 3}, {Name: "sel", Width: 1}},
		Regs: []*rtl.Reg{{Name: "r", Width: 3, Next: rtl.Mux{
			Sel: rtl.Ref{Name: "sel"},
			A:   rtl.Ref{Name: "r"},
			B:   rtl.Bin{Kind: logic.Xor, A: rtl.Ref{Name: "a"}, B: rtl.Ref{Name: "b"}},
		}}},
	}
	res, err := synth.Synthesize(d, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl := res.NL
	byName := func(names ...string) []netlist.NetID {
		var out []netlist.NetID
		for _, n := range names {
			id, ok := nl.NetByName(n)
			if !ok {
				t.Fatalf("net %s missing", n)
			}
			out = append(out, id)
		}
		return out
	}
	// The xor nets are the mux's sel=1 operands.
	dword := res.RegRoots["r"]
	muxGate := nl.Gate(nl.Net(dword[0]).Driver)
	if muxGate.Kind != logic.Mux2 {
		t.Fatalf("root kind %s", muxGate.Kind)
	}
	var xorWord []netlist.NetID
	for _, bit := range dword {
		xorWord = append(xorWord, nl.Gate(nl.Net(bit).Driver).Inputs[2])
	}
	words := [][]netlist.NetID{
		dword,
		xorWord,
		byName("a[0]", "a[1]", "a[2]"),
		byName("b[0]", "b[1]", "b[2]"),
		byName("r_reg[0]", "r_reg[1]", "r_reg[2]"),
	}
	return nl, words
}

func TestBuildGraph(t *testing.T) {
	nl, words := dpWords(t)
	g := Build(nl, words)
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes: %d", len(g.Nodes))
	}
	find := func(label string) *Node {
		for i := range g.Nodes {
			if g.Nodes[i].Label == label {
				return &g.Nodes[i]
			}
		}
		return nil
	}
	a := find("a[2:0]")
	if a == nil || a.Kind != "input" {
		t.Fatalf("input bus node: %+v", a)
	}
	q := find("r_reg[2:0]")
	if q == nil || q.Kind != "state" {
		t.Fatalf("state node: %+v", q)
	}
	kinds := map[string]int{}
	for _, e := range g.Edges {
		kinds[e.Label]++
	}
	if kinds["xor"] != 2 { // two operand edges into the xor word
		t.Errorf("xor edges: %+v", kinds)
	}
	if kinds["mux"] != 2 {
		t.Errorf("mux edges: %+v", kinds)
	}
	if kinds["reg"] != 1 {
		t.Errorf("reg edges: %+v", kinds)
	}
}

func TestWriteDOT(t *testing.T) {
	nl, words := dpWords(t)
	g := Build(nl, words)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "dp"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"digraph", "a[2:0]", "reg", "->"} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, out)
		}
	}
}

func TestMaximal(t *testing.T) {
	words := [][]netlist.NetID{
		{1, 2, 3, 4},
		{1, 2},       // sub-word
		{5, 6},       // independent
		{2, 3, 4, 1}, // duplicate (different order)
	}
	out := Maximal(words)
	if len(out) != 2 {
		t.Fatalf("maximal: %v", out)
	}
}

func TestWordLabelStyles(t *testing.T) {
	nl := netlist.New("t")
	var bus, odd []netlist.NetID
	for i := 0; i < 3; i++ {
		id := nl.MustNet("d[" + string(rune('0'+i)) + "]")
		nl.MarkPI(id)
		bus = append(bus, id)
	}
	x := nl.MustNet("x")
	nl.MarkPI(x)
	y := nl.MustNet("zz")
	nl.MarkPI(y)
	odd = append(odd, x, y)
	if got := WordLabel(nl, bus); got != "d[2:0]" {
		t.Errorf("bus label %q", got)
	}
	if got := WordLabel(nl, odd); got != "x..zz" {
		t.Errorf("odd label %q", got)
	}
	if got := WordLabel(nl, nil); got != "{}" {
		t.Errorf("empty label %q", got)
	}
	// Synopsys underscore style.
	var us []netlist.NetID
	for i := 0; i < 2; i++ {
		id := nl.MustNet("s_" + string(rune('0'+i)) + "_")
		nl.MarkPI(id)
		us = append(us, id)
	}
	if got := WordLabel(nl, us); got != "s[1:0]" {
		t.Errorf("underscore label %q", got)
	}
}

func TestDFFOutputForAmbiguity(t *testing.T) {
	nl := netlist.New("t")
	d := nl.MustNet("d")
	nl.MarkPI(d)
	q1 := nl.MustNet("q1")
	q2 := nl.MustNet("q2")
	nl.MustGate("ff1", logic.DFF, q1, d)
	nl.MustGate("ff2", logic.DFF, q2, d)
	if got := dffOutputFor(nl, d); got != netlist.NoNet {
		t.Error("ambiguous DFF fanout must yield NoNet")
	}
}
