// Package wordgraph assembles the recovered word-level view of a design
// into a dataflow graph: nodes are words (buses, register inputs, register
// outputs), edges are the operators connecting them (from internal/modid)
// plus register transfers (a word of D pins clocking into a word of Q
// outputs). The graph renders as Graphviz DOT — the "reconstruct an HDL
// description of the design" outcome the paper's introduction motivates.
package wordgraph

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"gatewords/internal/logic"
	"gatewords/internal/modid"
	"gatewords/internal/netlist"
)

// Node is one word in the graph.
type Node struct {
	ID    int
	Bits  []netlist.NetID
	Label string
	// Kind is "input" (all bits are primary inputs), "state" (all bits are
	// flip-flop outputs), or "word".
	Kind string
}

// Edge is one recovered relation between words.
type Edge struct {
	From int // operand / D-word node
	To   int // result / Q-word node
	// Label describes the relation: an operator kind ("mux", "adder",
	// "xor", ...), or "reg" for a register transfer.
	Label string
	// Operand numbers multi-input operators (0, 1, ...); -1 for reg edges
	// and single-operand edges.
	Operand int
}

// Graph is the recovered word-level dataflow.
type Graph struct {
	Nodes []Node
	Edges []Edge
}

// Build constructs the graph over the given words (identified and/or
// propagated). Sub-words fully contained in another word are dropped;
// operator edges come from modid; register-transfer edges connect a word of
// D-input nets to the word formed by the corresponding flip-flop outputs,
// when that word is present too.
func Build(nl *netlist.Netlist, words [][]netlist.NetID) *Graph {
	words = Maximal(words)
	g := &Graph{}
	nodeOf := map[string]int{}
	keyOf := func(bits []netlist.NetID) string {
		ids := append([]netlist.NetID(nil), bits...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		var sb strings.Builder
		for _, id := range ids {
			fmt.Fprintf(&sb, "%d,", id)
		}
		return sb.String()
	}
	addNode := func(bits []netlist.NetID) int {
		k := keyOf(bits)
		if id, ok := nodeOf[k]; ok {
			return id
		}
		id := len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{
			ID:    id,
			Bits:  append([]netlist.NetID(nil), bits...),
			Label: WordLabel(nl, bits),
			Kind:  classifyNode(nl, bits),
		})
		nodeOf[k] = id
		return id
	}
	for _, w := range words {
		addNode(w)
	}

	// Operator edges.
	for _, m := range modid.Discover(nl, words) {
		to := addNode(m.Output)
		label := m.Kind.String()
		if m.Kind == modid.Bitwise {
			label = strings.ToLower(m.Op.String())
		}
		for oi, in := range m.Inputs {
			operand := oi
			if len(m.Inputs) == 1 {
				operand = -1
			}
			g.Edges = append(g.Edges, Edge{From: addNode(in), To: to, Label: label, Operand: operand})
		}
	}

	// Register-transfer edges: a word whose bits all feed DFF D pins maps
	// to the word of those DFFs' outputs.
	for _, w := range words {
		qBits := make([]netlist.NetID, 0, len(w))
		ok := true
		for _, b := range w {
			q := dffOutputFor(nl, b)
			if q == netlist.NoNet {
				ok = false
				break
			}
			qBits = append(qBits, q)
		}
		if !ok {
			continue
		}
		g.Edges = append(g.Edges, Edge{From: addNode(w), To: addNode(qBits), Label: "reg", Operand: -1})
	}
	return g
}

// dffOutputFor returns the output of the unique DFF whose D pin reads net,
// or NoNet.
func dffOutputFor(nl *netlist.Netlist, net netlist.NetID) netlist.NetID {
	out := netlist.NoNet
	for _, f := range nl.Net(net).Fanout {
		g := nl.Gate(f)
		if g.Kind != logic.DFF {
			continue
		}
		if out != netlist.NoNet {
			return netlist.NoNet // ambiguous
		}
		out = g.Output
	}
	return out
}

func classifyNode(nl *netlist.Netlist, bits []netlist.NetID) string {
	allPI, allState := true, true
	for _, b := range bits {
		n := nl.Net(b)
		if !n.IsPI {
			allPI = false
		}
		if n.Driver == netlist.NoGate || nl.Gate(n.Driver).Kind != logic.DFF {
			allState = false
		}
	}
	switch {
	case allPI:
		return "input"
	case allState:
		return "state"
	}
	return "word"
}

// WordLabel renders a compact bus-style label: "a[3:0]" when the bit names
// share a base with indices, else "first..last".
func WordLabel(nl *netlist.Netlist, bits []netlist.NetID) string {
	if len(bits) == 0 {
		return "{}"
	}
	base, lo, okLo := splitIndexed(nl.NetName(bits[0]))
	hiBase, hi, okHi := splitIndexed(nl.NetName(bits[len(bits)-1]))
	if okLo && okHi && base == hiBase {
		uniform := true
		for i, b := range bits {
			bb, idx, ok := splitIndexed(nl.NetName(b))
			if !ok || bb != base || idx != lo+i {
				uniform = false
				break
			}
		}
		if uniform {
			return fmt.Sprintf("%s[%d:%d]", base, hi, lo)
		}
	}
	return nl.NetName(bits[0]) + ".." + nl.NetName(bits[len(bits)-1])
}

// splitIndexed parses "name[3]" / "name_3_".
func splitIndexed(name string) (string, int, bool) {
	if n := len(name); n >= 3 && name[n-1] == ']' {
		if open := strings.LastIndexByte(name, '['); open > 0 {
			idx := 0
			if _, err := fmt.Sscanf(name[open+1:n-1], "%d", &idx); err == nil {
				return name[:open], idx, true
			}
		}
	}
	if n := len(name); n >= 3 && name[n-1] == '_' {
		body := name[:n-1]
		if us := strings.LastIndexByte(body, '_'); us > 0 {
			idx := 0
			if _, err := fmt.Sscanf(body[us+1:], "%d", &idx); err == nil {
				return name[:us], idx, true
			}
		}
	}
	return "", 0, false
}

// Maximal drops words whose bit set is contained in another word's.
func Maximal(words [][]netlist.NetID) [][]netlist.NetID {
	var out [][]netlist.NetID
	for i, w := range words {
		sub := false
		for j, v := range words {
			if i == j || len(w) > len(v) {
				continue
			}
			if len(w) == len(v) && i < j {
				continue
			}
			set := map[netlist.NetID]bool{}
			for _, n := range v {
				set[n] = true
			}
			all := true
			for _, n := range w {
				if !set[n] {
					all = false
					break
				}
			}
			if all {
				sub = true
				break
			}
		}
		if !sub {
			out = append(out, w)
		}
	}
	return out
}

// WriteDOT renders the graph.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", name); err != nil {
		return err
	}
	for _, n := range g.Nodes {
		shape := "box"
		switch n.Kind {
		case "input":
			shape = "ellipse"
		case "state":
			shape = "box3d"
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q shape=%s];\n", n.ID, n.Label, shape); err != nil {
			return err
		}
	}
	for _, e := range g.Edges {
		label := e.Label
		if e.Operand >= 0 {
			label = fmt.Sprintf("%s.%d", e.Label, e.Operand)
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=%q];\n", e.From, e.To, label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
