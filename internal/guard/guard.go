// Package guard provides the identification pipeline's fault-isolation
// primitives. The pipeline runs once per adjacency group, and a single
// pathological group — a huge dissimilar-subtree cross product, a malformed
// cone from a leniently parsed netlist, an exploding SAT instance — must
// never take down the whole run. Three mechanisms enforce that:
//
//   - Panic boundaries: internal/core wraps every group's pipeline run in a
//     recover boundary and converts panics into structured GroupFailure
//     records (group index, stage, message, stack) merged into the result,
//     so the remaining groups' words are returned intact.
//
//   - Resource budgets: Budgets caps the per-subgroup cone scope, the
//     bit×subtree matching cross product, and the per-group assignment-trial
//     count. A subgroup that exceeds a budget degrades to the cheap
//     full-structural match — the shape-hashing baseline's behavior — and
//     the degradation is itemized as a Degradation record instead of
//     aborting or stalling the run.
//
//   - Deterministic fault injection: Plant arms a one-shot panic at a named
//     pipeline stage (optionally a specific group) that Inject fires on the
//     hot path, so every recovery path is exercised by tests without flaky
//     timing. With nothing armed, Inject costs a single atomic load.
package guard

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// GroupFailure records one recovered panic: the adjacency group whose
// pipeline panicked, the stage it was in, the rendered panic value, and the
// goroutine stack captured at recovery. A failed group contributes no words
// to the run's result — its partial output is discarded wholesale so a
// half-resolved subgroup can never leak into the report.
type GroupFailure struct {
	// Group is the adjacency-group index, in grouping order (the same order
	// results merge in, so it is identical between sequential and parallel
	// runs).
	Group int
	// Stage names the pipeline stage that panicked: "match", "ctrlsig",
	// "trial", "verify", or "init" for failures before the first stage.
	Stage string
	// Message is the rendered panic value.
	Message string
	// Stack is the goroutine stack captured at the recovery point.
	Stack string
}

// String renders the failure on one line (without the stack).
func (f GroupFailure) String() string {
	return fmt.Sprintf("group %d failed at stage %q: %s", f.Group, f.Stage, f.Message)
}

// NewGroupFailure builds the failure record for a recovered panic value v,
// capturing the current goroutine's stack. Call it from inside the deferred
// recover so the stack still shows the panic site.
func NewGroupFailure(group int, stage string, v any) *GroupFailure {
	buf := make([]byte, 16<<10)
	n := runtime.Stack(buf, false)
	return &GroupFailure{
		Group:   group,
		Stage:   stage,
		Message: fmt.Sprint(v),
		Stack:   string(buf[:n]),
	}
}

// Rescue is the standing recover boundary for pool goroutines. It must be
// deferred directly — defer guard.Rescue("pool", onPanic) — so its recover
// call executes in the deferred frame. A recovered panic becomes a
// GroupFailure attributed to AnyGroup (a panic that escaped the per-group
// boundary has no reliable group index) and is handed to onPanic; a nil
// onPanic merely contains the crash. With no panic in flight it is a no-op,
// so it is safe as an unconditional first defer.
func Rescue(stage string, onPanic func(*GroupFailure)) {
	if r := recover(); r != nil {
		f := NewGroupFailure(AnyGroup, stage, r)
		if onPanic != nil {
			onPanic(f)
		}
	}
}

// Budgets bounds per-group pipeline work. Each limit guards one way a
// hostile or degenerate input blows up the per-group cost; exceeding a limit
// degrades the affected subgroup to the cheap full-structural match (see
// Degradation) rather than aborting the run. The zero value means unlimited
// everywhere, preserving historical behavior.
type Budgets struct {
	// MaxConeGates caps the size of one subgroup's fanin-cone scope: the
	// union of the bits' depth-limited cone nets, which bounds every
	// per-trial dirty walk and re-keying pass. A subgroup whose scope
	// exceeds it skips control-signal discovery and assignment trials.
	MaxConeGates int
	// MaxSubgroupPairs caps the matching cross product of one subgroup:
	// bits × dissimilar subtrees. It is the cheap upper bound on the work
	// control-signal discovery does intersecting subtree net sets.
	MaxSubgroupPairs int
	// MaxTrialsPerGroup caps assignment trials (reduce.Apply invocations)
	// across one whole adjacency group, on top of the per-subgroup
	// Options.MaxTrials cap. When the group budget runs out mid-subgroup,
	// the enumeration stops and the best evidence so far is kept; later
	// subgroups in the group skip trials entirely.
	MaxTrialsPerGroup int
}

// Unlimited reports whether every budget is unset.
func (b Budgets) Unlimited() bool {
	return b.MaxConeGates <= 0 && b.MaxSubgroupPairs <= 0 && b.MaxTrialsPerGroup <= 0
}

// Degradation reasons, one per Budgets field.
const (
	ReasonConeGates     = "max-cone-gates"
	ReasonSubgroupPairs = "max-subgroup-pairs"
	ReasonTrials        = "max-trials-per-group"
)

// Degradation records one budget-triggered degradation: the subgroup kept
// only its full-structural word classes (or, for ReasonTrials, the evidence
// accumulated before the budget ran out) instead of the full control-signal
// analysis.
type Degradation struct {
	// Group is the adjacency-group index, in grouping order.
	Group int
	// Subgroup names the subgroup's first bit net, for human triage.
	Subgroup string
	// Reason is one of the Reason* constants.
	Reason string
	// Detail quantifies the violation, e.g. "scope 5132 nets > budget 4096".
	Detail string
}

// String renders the degradation on one line.
func (d Degradation) String() string {
	return fmt.Sprintf("group %d subgroup %s degraded (%s): %s", d.Group, d.Subgroup, d.Reason, d.Detail)
}

// --- deterministic fault injection ----------------------------------------
//
// Tests arm faults with Plant; the pipeline calls Inject at every stage
// boundary. Each armed fault fires exactly once, panicking with an
// InjectedPanic, so recovery paths are exercised deterministically. The
// registry is global because injection points sit deep inside worker
// goroutines that have no test-controlled configuration path; Plant is a
// test-only API and must be cleaned up with Reset.

// AnyGroup matches every group index when passed to Plant.
const AnyGroup = -1

// InjectedPanic is the value Inject panics with. Stage and Group identify
// the firing injection point (Group is the concrete group index observed at
// the fire site, even for plants armed with AnyGroup).
type InjectedPanic struct {
	Stage string
	Group int
}

// String renders the injected panic value (used as GroupFailure.Message).
func (p InjectedPanic) String() string {
	return fmt.Sprintf("guard: injected fault at stage %q (group %d)", p.Stage, p.Group)
}

type plantKey struct {
	stage string
	group int
}

var (
	// armed counts outstanding shots; Inject's fast path is a single
	// atomic load of it, so production runs (zero plants) pay nothing else.
	armed    atomic.Int32
	plantsMu sync.Mutex
	plants   = make(map[plantKey]int) // key -> remaining shots
)

// Plant arms a one-shot fault at the named stage. group restricts the fault
// to one adjacency group; AnyGroup fires on the first group to reach the
// stage. Test-only: pair every Plant with a deferred Reset.
func Plant(stage string, group int) {
	PlantN(stage, group, 1)
}

// PlantN arms an n-shot fault: the first n Inject calls matching the stage
// and group each panic, the n+1st passes. Re-planting an armed key replaces
// its remaining count rather than accumulating, so arming is idempotent.
// n <= 0 disarms the key. The chaos harness uses multi-shot plants to model
// poison inputs that fail repeatedly and then recover (a breaker's half-open
// probe succeeding after the fault budget is spent).
func PlantN(stage string, group, n int) {
	plantsMu.Lock()
	defer plantsMu.Unlock()
	k := plantKey{stage: stage, group: group}
	armed.Add(int32(n - plants[k]))
	if n <= 0 {
		delete(plants, k)
		return
	}
	plants[k] = n
}

// PlantSpec arms faults from a comma-separated spec, the form the wordidd
// chaos harness passes through a CLI flag into the daemon process:
//
//	spec    = entry { "," entry }
//	entry   = stage [ "@" group ] [ "*" count ]
//
// stage is any injection-point name (pipeline stages like "trial", or the
// service's per-job points like "job:b05a"); group defaults to AnyGroup
// ("*" is also accepted explicitly); count defaults to 1. Example:
//
//	"job:b05a*3,trial@2"
//
// arms three panics for every job whose module is b05a plus one panic in
// adjacency group 2's trial stage.
func PlantSpec(spec string) error {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		stage, count := entry, 1
		// A trailing "*<digits>" is the count; a bare "@*" is the group
		// wildcard, so the count suffix must actually parse as a number.
		if i := strings.LastIndexByte(stage, '*'); i >= 0 && stage[i+1:] != "" {
			if n, err := strconv.Atoi(stage[i+1:]); err == nil {
				if n < 1 {
					return fmt.Errorf("guard: bad fault count in %q", entry)
				}
				stage, count = stage[:i], n
			}
		}
		group := AnyGroup
		if i := strings.LastIndexByte(stage, '@'); i >= 0 {
			g := stage[i+1:]
			if g != "*" {
				n, err := strconv.Atoi(g)
				if err != nil {
					return fmt.Errorf("guard: bad group in %q", entry)
				}
				group = n
			}
			stage = stage[:i]
		}
		if stage == "" || strings.ContainsAny(stage, "*@") {
			return fmt.Errorf("guard: bad stage in %q", entry)
		}
		PlantN(stage, group, count)
	}
	return nil
}

// Reset disarms every planted fault (test cleanup).
func Reset() {
	plantsMu.Lock()
	defer plantsMu.Unlock()
	for k := range plants {
		delete(plants, k)
	}
	armed.Store(0)
}

// Planted returns the number of armed shots across all planted faults.
func Planted() int { return int(armed.Load()) }

// Inject fires a matching armed fault: it panics with an InjectedPanic if
// Plant armed this stage for this group (or for AnyGroup). The fault
// disarms before the panic, so each plant fires exactly once even when the
// stage runs again during recovery testing. With nothing armed the cost is
// one atomic load.
func Inject(stage string, group int) {
	if armed.Load() == 0 {
		return
	}
	if fire(stage, group) {
		panic(InjectedPanic{Stage: stage, Group: group})
	}
}

func fire(stage string, group int) bool {
	plantsMu.Lock()
	defer plantsMu.Unlock()
	for _, k := range [2]plantKey{{stage, group}, {stage, AnyGroup}} {
		if n := plants[k]; n > 0 {
			if n == 1 {
				delete(plants, k)
			} else {
				plants[k] = n - 1
			}
			armed.Add(-1)
			return true
		}
	}
	return false
}
