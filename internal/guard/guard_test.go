package guard

import (
	"strings"
	"testing"
)

func TestInjectDisarmedIsFree(t *testing.T) {
	Reset()
	// With nothing planted, Inject must be a no-op for any stage/group.
	Inject("match", 0)
	Inject("verify", AnyGroup)
	if n := Planted(); n != 0 {
		t.Fatalf("Planted() = %d after no-op Injects, want 0", n)
	}
}

func TestInjectFiresOnceForExactKey(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Plant("trial", 3)
	// Wrong stage and wrong group must not trip the plant.
	Inject("match", 3)
	Inject("trial", 2)
	if Planted() != 1 {
		t.Fatal("plant consumed by a non-matching Inject")
	}
	func() {
		defer func() {
			v := recover()
			ip, ok := v.(InjectedPanic)
			if !ok {
				t.Fatalf("recovered %T (%v), want InjectedPanic", v, v)
			}
			if ip.Stage != "trial" || ip.Group != 3 {
				t.Fatalf("InjectedPanic = %+v, want stage trial group 3", ip)
			}
			if !strings.Contains(ip.String(), `"trial"`) || !strings.Contains(ip.String(), "group 3") {
				t.Fatalf("InjectedPanic.String() = %q", ip.String())
			}
		}()
		Inject("trial", 3)
		t.Fatal("Inject with a matching plant did not panic")
	}()
	// One-shot: the plant is consumed.
	if Planted() != 0 {
		t.Fatalf("Planted() = %d after firing, want 0", Planted())
	}
	Inject("trial", 3)
}

func TestInjectAnyGroupWildcard(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Plant("ctrlsig", AnyGroup)
	defer func() {
		if v := recover(); v == nil {
			t.Fatal("AnyGroup plant did not fire for a concrete group")
		}
	}()
	Inject("ctrlsig", 7)
}

func TestResetClearsPlants(t *testing.T) {
	Reset()
	Plant("match", 0)
	Plant("verify", AnyGroup)
	if Planted() != 2 {
		t.Fatalf("Planted() = %d, want 2", Planted())
	}
	Reset()
	if Planted() != 0 {
		t.Fatalf("Planted() = %d after Reset, want 0", Planted())
	}
	Inject("match", 0) // must not panic
}

func TestNewGroupFailureCapturesPanicValue(t *testing.T) {
	f := func() (gf *GroupFailure) {
		defer func() {
			gf = NewGroupFailure(5, "match", recover())
		}()
		panic("index out of range")
	}()
	if f.Group != 5 || f.Stage != "match" {
		t.Fatalf("GroupFailure = %+v", f)
	}
	if f.Message != "index out of range" {
		t.Fatalf("Message = %q", f.Message)
	}
	if !strings.Contains(f.Stack, "guard_test.go") {
		t.Errorf("stack does not reference the panicking frame:\n%s", f.Stack)
	}
	want := `group 5 failed at stage "match": index out of range`
	if f.String() != want {
		t.Errorf("String() = %q, want %q", f.String(), want)
	}
}

func TestBudgetsUnlimited(t *testing.T) {
	if !(Budgets{}).Unlimited() {
		t.Fatal("zero Budgets not Unlimited")
	}
	for _, b := range []Budgets{
		{MaxConeGates: 1},
		{MaxSubgroupPairs: 1},
		{MaxTrialsPerGroup: 1},
	} {
		if b.Unlimited() {
			t.Fatalf("Budgets %+v reported Unlimited", b)
		}
	}
}

func TestDegradationString(t *testing.T) {
	d := Degradation{Group: 2, Subgroup: "acc0", Reason: ReasonConeGates, Detail: "cone scope 900 nets > budget 100"}
	s := d.String()
	for _, frag := range []string{"group 2", "acc0", ReasonConeGates, "900"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Degradation.String() = %q missing %q", s, frag)
		}
	}
}

func TestRescueConvertsPanicToGroupFailure(t *testing.T) {
	var got *GroupFailure
	func() {
		defer Rescue("pool", func(f *GroupFailure) { got = f })
		panic("worker exploded")
	}()
	if got == nil {
		t.Fatal("Rescue did not invoke the handler")
	}
	if got.Group != AnyGroup {
		t.Errorf("Group = %d, want AnyGroup", got.Group)
	}
	if got.Stage != "pool" {
		t.Errorf("Stage = %q, want pool", got.Stage)
	}
	if got.Message != "worker exploded" {
		t.Errorf("Message = %q", got.Message)
	}
	if !strings.Contains(got.Stack, "guard_test") {
		t.Errorf("stack does not show the panic site:\n%s", got.Stack)
	}
}

func TestRescueNoPanicIsNoop(t *testing.T) {
	called := false
	func() {
		defer Rescue("pool", func(*GroupFailure) { called = true })
	}()
	if called {
		t.Error("handler invoked without a panic")
	}
}

func TestRescueNilHandlerContains(t *testing.T) {
	// Must not re-panic or crash: the nil handler merely contains.
	func() {
		defer Rescue("pool", nil)
		panic("contained")
	}()
}

// mustPanic asserts fn panics with an InjectedPanic.
func mustPanic(t *testing.T, stage string, group int) {
	t.Helper()
	defer func() {
		if v := recover(); v == nil {
			t.Fatalf("Inject(%q, %d) did not fire", stage, group)
		}
	}()
	Inject(stage, group)
}

func TestPlantNFiresExactly(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	PlantN("job:b06a", AnyGroup, 3)
	if Planted() != 3 {
		t.Fatalf("Planted() = %d, want 3 shots", Planted())
	}
	for i := 0; i < 3; i++ {
		mustPanic(t, "job:b06a", AnyGroup)
	}
	// The fourth call passes: the fault budget is spent.
	Inject("job:b06a", AnyGroup)
	if Planted() != 0 {
		t.Fatalf("Planted() = %d after firing all shots, want 0", Planted())
	}
}

func TestPlantNReplacesAndDisarms(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	PlantN("trial", 1, 5)
	PlantN("trial", 1, 2) // replace, not accumulate
	if Planted() != 2 {
		t.Fatalf("Planted() = %d after re-plant, want 2", Planted())
	}
	PlantN("trial", 1, 0) // disarm
	if Planted() != 0 {
		t.Fatalf("Planted() = %d after disarm, want 0", Planted())
	}
	Inject("trial", 1)
}

func TestPlantSpec(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := PlantSpec("job:b06a*3, trial@2, match@*"); err != nil {
		t.Fatal(err)
	}
	if Planted() != 5 {
		t.Fatalf("Planted() = %d, want 5 shots", Planted())
	}
	mustPanic(t, "job:b06a", AnyGroup)
	mustPanic(t, "trial", 2)
	mustPanic(t, "match", 7) // AnyGroup wildcard
	Inject("trial", 3)       // group 3 not armed
	if Planted() != 2 {
		t.Fatalf("Planted() = %d, want 2 remaining b06a shots", Planted())
	}
}

func TestPlantSpecErrors(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	for _, spec := range []string{"trial*x", "trial*0", "trial@x", "@3", "*2"} {
		if err := PlantSpec(spec); err == nil {
			t.Errorf("PlantSpec(%q) accepted", spec)
		}
	}
	if err := PlantSpec(""); err != nil { // empty spec is a no-op
		t.Errorf("empty spec rejected: %v", err)
	}
	Reset()
	if Planted() != 0 {
		t.Fatalf("Planted() = %d after Reset", Planted())
	}
}
