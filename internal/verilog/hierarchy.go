package verilog

import (
	"fmt"
	"sort"

	"gatewords/internal/netlist"
)

// Library is a set of modules parsed from one or more source files, before
// elaboration. Third-party netlists often arrive with a module hierarchy;
// word identification operates on a flat netlist (the paper's threat model
// explicitly assumes hierarchy has been flattened away), so Library provides
// the flattener: Elaborate(top) recursively inlines sub-module instances,
// prefixing inner names with "<instance>/".
type Library struct {
	srcs  map[string]string   // module name -> source slice
	ports map[string][]string // module name -> header port order
	flat  map[string]*netlist.Netlist
	order []string // definition order, for Modules()
	file  string
}

// ParseHierarchy splits src into its module definitions. Sources may be
// accumulated across several calls on the same Library (pass the previous
// result as lib; pass nil to start fresh).
func ParseHierarchy(lib *Library, file, src string) (*Library, error) {
	if lib == nil {
		lib = &Library{
			srcs:  map[string]string{},
			ports: map[string][]string{},
			flat:  map[string]*netlist.Netlist{},
		}
	}
	lib.file = file
	lx := newLexer(file, src)
	type span struct {
		name       string
		start, end int
		ports      []string
	}
	var spans []span
	var cur *span
	prevEnd := 0
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		if tok.kind == tokEOF {
			break
		}
		switch {
		case tok.kind == tokIdent && tok.text == "module" && cur == nil:
			spans = append(spans, span{start: prevEnd})
			cur = &spans[len(spans)-1]
			// Module name follows.
			nameTok, err := lx.next()
			if err != nil {
				return nil, err
			}
			if nameTok.kind != tokIdent {
				return nil, &SyntaxError{File: file, Line: nameTok.line, Col: nameTok.col, Msg: "expected module name"}
			}
			cur.name = nameTok.text
			// Collect header port names up to ';'.
			depth := 0
			for {
				t, err := lx.next()
				if err != nil {
					return nil, err
				}
				if t.kind == tokEOF {
					return nil, &SyntaxError{File: file, Line: t.line, Col: t.col, Msg: "unexpected EOF in module header"}
				}
				if t.kind == tokLParen {
					depth++
					continue
				}
				if t.kind == tokRParen {
					depth--
					continue
				}
				if t.kind == tokSemi && depth == 0 {
					break
				}
				if t.kind == tokIdent && depth == 1 {
					switch t.text {
					case "input", "output", "inout", "wire", "reg":
						continue
					}
					cur.ports = append(cur.ports, t.text)
				}
			}
		case tok.kind == tokIdent && tok.text == "endmodule" && cur != nil:
			cur.end = lx.pos
			lib.srcs[cur.name] = src[cur.start:cur.end]
			lib.ports[cur.name] = cur.ports
			lib.order = append(lib.order, cur.name)
			prevEnd = lx.pos
			cur = nil
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("%s: module %q has no endmodule", file, cur.name)
	}
	if len(lib.srcs) == 0 {
		return nil, fmt.Errorf("%s: no modules found", file)
	}
	return lib, nil
}

// Modules lists the module names in definition order.
func (lib *Library) Modules() []string {
	return append([]string(nil), lib.order...)
}

// Top guesses the top module: the one never instantiated by another. If
// several qualify the lexicographically first is returned. Instantiation is
// detected at the token level (an identifier naming another module,
// followed by an instance name and '('), so comments cannot confuse it.
func (lib *Library) Top() (string, error) {
	instantiated := map[string]bool{}
	for name, src := range lib.srcs {
		lx := newLexer(lib.file, src)
		var prev2, prev1 token
		for {
			tok, err := lx.next()
			if err != nil || tok.kind == tokEOF {
				break
			}
			if tok.kind == tokLParen && prev2.kind == tokIdent && prev1.kind == tokIdent {
				if _, isMod := lib.srcs[prev2.text]; isMod && prev2.text != name {
					instantiated[prev2.text] = true
				}
			}
			prev2, prev1 = prev1, tok
		}
	}
	var tops []string
	for name := range lib.srcs {
		if !instantiated[name] {
			tops = append(tops, name)
		}
	}
	if len(tops) == 0 {
		return "", fmt.Errorf("verilog: no top module (instantiation cycle?)")
	}
	sort.Strings(tops)
	return tops[0], nil
}

// Elaborate flattens the named module: every instance of another library
// module is inlined recursively, inner nets and gates renamed to
// "<instance>/<name>". The result validates and contains only library
// cells.
func (lib *Library) Elaborate(top string) (*netlist.Netlist, error) {
	return lib.elaborate(top, map[string]bool{})
}

func (lib *Library) elaborate(name string, inProgress map[string]bool) (*netlist.Netlist, error) {
	if nl, ok := lib.flat[name]; ok {
		return nl, nil
	}
	src, ok := lib.srcs[name]
	if !ok {
		return nil, fmt.Errorf("verilog: no module %q in library", name)
	}
	if inProgress[name] {
		return nil, fmt.Errorf("verilog: instantiation cycle through module %q", name)
	}
	inProgress[name] = true
	defer delete(inProgress, name)

	p := &parser{lx: newLexer(lib.file, src)}
	p.resolveModule = func(cell string) (*netlist.Netlist, []string, bool) {
		if _, isMod := lib.srcs[cell]; !isMod {
			return nil, nil, false
		}
		sub, err := lib.elaborate(cell, inProgress)
		if err != nil {
			p.resolveErr = err
			return nil, nil, false
		}
		return sub, lib.ports[cell], true
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	nl, err := p.parseModule()
	if err != nil {
		if p.resolveErr != nil {
			return nil, p.resolveErr
		}
		return nil, err
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("%s: module %s: %w", lib.file, name, err)
	}
	lib.flat[name] = nl
	return nl, nil
}

// splice inlines an elaborated sub-module into the parent netlist.
// bindings maps the child's port net names to parent nets; all other child
// nets are created as "<inst>/<name>".
func (p *parser) splice(sub *netlist.Netlist, inst string, bindings map[string]netlist.NetID) error {
	mapped := make(map[netlist.NetID]netlist.NetID, sub.NetCount())
	for ni := 0; ni < sub.NetCount(); ni++ {
		id := netlist.NetID(ni)
		cname := sub.NetName(id)
		if parent, ok := bindings[cname]; ok {
			mapped[id] = parent
			continue
		}
		mapped[id] = p.nl.EnsureNet(inst + "/" + cname)
	}
	for gi := 0; gi < sub.GateCount(); gi++ {
		g := sub.Gate(netlist.GateID(gi))
		ins := make([]netlist.NetID, len(g.Inputs))
		for i, in := range g.Inputs {
			ins[i] = mapped[in]
		}
		if _, err := p.nl.AddGate(inst+"/"+g.Name, g.Kind, mapped[g.Output], ins...); err != nil {
			return fmt.Errorf("instance %s: %v", inst, err)
		}
	}
	return nil
}
