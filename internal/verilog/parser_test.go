package verilog

import (
	"strings"
	"testing"

	"gatewords/internal/logic"
)

func TestParseClassicModule(t *testing.T) {
	src := `
// classic header with separate declarations
module top (a, b, clk, y);
  input a, b;
  input clk;
  output y;
  wire n1;
  NAND2 U1 (n1, a, b);
  DFF r (y, n1);
endmodule
`
	nl, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "top" {
		t.Errorf("name %q", nl.Name)
	}
	if len(nl.PIs()) != 3 || len(nl.POs()) != 1 {
		t.Errorf("ports: %d PIs %d POs", len(nl.PIs()), len(nl.POs()))
	}
	if nl.GateCount() != 2 {
		t.Errorf("gates %d", nl.GateCount())
	}
	id, _ := nl.NetByName("n1")
	g := nl.Gate(nl.Net(id).Driver)
	if g.Kind != logic.Nand || len(g.Inputs) != 2 {
		t.Errorf("U1 parsed as %s/%d", g.Kind, len(g.Inputs))
	}
}

func TestParseANSIHeader(t *testing.T) {
	src := `
module m (input a, input [1:0] b, output y);
  NAND3 g (y, a, b[0], b[1]);
endmodule
`
	nl, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.PIs()) != 3 {
		t.Errorf("PIs = %d, want 3 (a, b[0], b[1])", len(nl.PIs()))
	}
	if _, ok := nl.NetByName("b[1]"); !ok {
		t.Error("bus bit b[1] missing")
	}
}

func TestParseVectorWire(t *testing.T) {
	src := `
module m (a, y);
  input a;
  output y;
  wire [2:0] v;
  NOT i0 (v[0], a);
  NOT i1 (v[1], v[0]);
  NOT i2 (v[2], v[1]);
  BUF b (y, v[2]);
endmodule
`
	nl, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"v[0]", "v[1]", "v[2]"} {
		if _, ok := nl.NetByName(n); !ok {
			t.Errorf("net %s missing", n)
		}
	}
}

func TestParseNamedConnections(t *testing.T) {
	src := `
module m (a, b, s, clk, q);
  input a, b, s, clk;
  output q;
  wire y, z;
  MUX2 mx (.Y(y), .S(s), .A(a), .B(b));
  AOI21_X2 ao (.A(a), .B(b), .C(y), .Y(z));
  DFF r (.CK(clk), .D(z), .Q(q));
endmodule
`
	nl, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	y, _ := nl.NetByName("y")
	mx := nl.Gate(nl.Net(y).Driver)
	if mx.Kind != logic.Mux2 {
		t.Fatalf("mux kind %s", mx.Kind)
	}
	// Pin order [sel, a, b].
	if nl.NetName(mx.Inputs[0]) != "s" || nl.NetName(mx.Inputs[1]) != "a" || nl.NetName(mx.Inputs[2]) != "b" {
		t.Errorf("mux pins: %s %s %s", nl.NetName(mx.Inputs[0]), nl.NetName(mx.Inputs[1]), nl.NetName(mx.Inputs[2]))
	}
	z, _ := nl.NetByName("z")
	ao := nl.Gate(nl.Net(z).Driver)
	if ao.Kind != logic.Aoi21 || nl.NetName(ao.Inputs[2]) != "y" {
		t.Errorf("aoi parsed wrong: %s %v", ao.Kind, ao.Inputs)
	}
	q, _ := nl.NetByName("q")
	ff := nl.Gate(nl.Net(q).Driver)
	if ff.Kind != logic.DFF || len(ff.Inputs) != 1 || nl.NetName(ff.Inputs[0]) != "z" {
		t.Errorf("dff parsed wrong: %s %v", ff.Kind, ff.Inputs)
	}
}

func TestParsePrimitives(t *testing.T) {
	src := `
module m (a, b, y);
  input a, b;
  output y;
  wire n1, n2;
  nand (n1, a, b);
  nor g2 (n2, n1, a);
  xor (y, n2, b);
endmodule
`
	nl, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	if nl.GateCount() != 3 {
		t.Errorf("gates %d", nl.GateCount())
	}
}

func TestParseAssignAndConstants(t *testing.T) {
	src := `
module m (a, y, z);
  input a;
  output y, z;
  assign y = a;
  AND2 g (z, a, 1'b1);
endmodule
`
	nl, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	y, _ := nl.NetByName("y")
	if nl.Gate(nl.Net(y).Driver).Kind != logic.Buf {
		t.Error("assign must become BUF")
	}
	if _, ok := nl.NetByName("$const1"); !ok {
		t.Error("constant tie net missing")
	}
}

func TestParseSupply(t *testing.T) {
	src := `
module m (a, y);
  input a;
  output y;
  supply1 vdd;
  AND2 g (y, a, vdd);
endmodule
`
	nl, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	vdd, ok := nl.NetByName("vdd")
	if !ok || nl.Net(vdd).Driver == -1 {
		t.Error("supply net must be driven")
	}
}

func TestParseEscapedNames(t *testing.T) {
	src := "module m (a, \\q[0] );\n  input a;\n  output \\q[0] ;\n  DFF \\r_reg[0] (\\q[0] , a);\nendmodule\n"
	nl, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := nl.NetByName("q[0]"); !ok {
		t.Error("escaped port name lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"missing module", "wire x;", "expected 'module'"},
		{"undeclared port dir", "module m (p);\nendmodule", "no direction"},
		{"unknown cell", "module m (a);\n input a;\n wire y;\n BOGUS77 u (y, a);\nendmodule", "unknown cell"},
		{"unknown pin", "module m (a);\n input a;\n wire y;\n NAND2 u (.Y(y), .QQ(a), .B(a));\nendmodule", "unknown pin"},
		{"double driver", "module m (a);\n input a;\n wire y;\n NOT u1 (y, a);\n NOT u2 (y, a);\nendmodule", "already driven"},
		{"bad arity", "module m (a);\n input a;\n wire y;\n MUX2 u (y, a, a);\nendmodule", "MUX2 with 2 inputs"},
		{"vector as scalar", "module m (a);\n input a;\n wire [1:0] v;\n NOT u (v, a);\nendmodule", "without a bit-select"},
		{"missing input pin", "module m (a);\n input a;\n wire y;\n NAND2 u (.Y(y), .B(a));\nendmodule", "unconnected"},
		{"eof", "module m (a);\n input a;\n", "unexpected end of file"},
		{"bad constant", "module m (a);\n input a;\n wire y;\n AND2 u (y, a, 4'hF);\nendmodule", "unsupported constant"},
	}
	for _, c := range cases {
		_, err := Parse("t.v", c.src)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestParseFloatingNetRejected(t *testing.T) {
	src := `
module m (a, y);
  input a;
  output y;
  wire ghost;
  BUF b (y, a);
endmodule
`
	if _, err := Parse("t.v", src); err == nil {
		t.Error("netlist with undriven non-PI wire accepted")
	}
}

func TestParseGateOrderPreserved(t *testing.T) {
	src := `
module m (a);
  input a;
  wire n1, n2, n3;
  NOT u3 (n3, a);
  NOT u1 (n1, a);
  NOT u2 (n2, a);
endmodule
`
	nl, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"u3", "u1", "u2"}
	for i, w := range want {
		if nl.Gate(int32ToGateID(i)).Name != w {
			t.Fatalf("gate order not preserved")
		}
	}
}
