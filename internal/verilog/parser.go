package verilog

import (
	"fmt"
	"io"
	"os"
	"strconv"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// Parse parses a single flattened module from src and returns its netlist.
// file is used for error positions only.
func Parse(file, src string) (*netlist.Netlist, error) {
	p := &parser{lx: newLexer(file, src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	nl, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	return nl, nil
}

// ParseLenient parses like Parse but for diagnostic front ends (gatelint):
// structural violations — multiply-driven nets, bad gate arities — are
// recorded on the netlist (see netlist.AddGateLenient and
// netlist.StructuralViolations) instead of aborting the parse, and the final
// Validate pass is skipped so a linter can report every defect in one run.
// Syntax errors still fail.
func ParseLenient(file, src string) (*netlist.Netlist, error) {
	p := &parser{lx: newLexer(file, src), lenient: true}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseModule()
}

// ParseReader parses a module from r.
func ParseReader(file string, r io.Reader) (*netlist.Netlist, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("verilog: reading %s: %w", file, err)
	}
	return Parse(file, string(data))
}

// ParseFile parses the module in the named file.
func ParseFile(path string) (*netlist.Netlist, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, string(data))
}

type parser struct {
	lx  *lexer
	tok token
	nl  *netlist.Netlist
	// lenient records structural violations on the netlist instead of
	// failing the parse (ParseLenient).
	lenient bool

	// resolveModule, when set (hierarchy elaboration), maps an unknown cell
	// name to an elaborated sub-module netlist and its header port order.
	resolveModule func(cell string) (*netlist.Netlist, []string, bool)
	resolveErr    error

	ports  []string          // header port names, in order
	dir    map[string]byte   // 'i' or 'o' per declared port name
	buses  map[string][2]int // declared vector ranges: name -> [msb, lsb]
	consts [2]netlist.NetID
	anon   int
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{File: p.lx.file, Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("expected %s, found %s %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) accept(k tokenKind) (bool, error) {
	if p.tok.kind != k {
		return false, nil
	}
	return true, p.advance()
}

func (p *parser) keyword() string {
	if p.tok.kind == tokIdent {
		return p.tok.text
	}
	return ""
}

// addGate routes all gate construction: strict parses reject structural
// violations at the offending source line, lenient parses record them on the
// netlist for the linter.
func (p *parser) addGate(name string, kind logic.Kind, output netlist.NetID, inputs ...netlist.NetID) error {
	if p.lenient {
		p.nl.AddGateLenient(name, kind, output, inputs...)
		return nil
	}
	_, err := p.nl.AddGate(name, kind, output, inputs...)
	return err
}

func (p *parser) parseModule() (*netlist.Netlist, error) {
	if p.keyword() != "module" {
		return nil, p.errf("expected 'module'")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	p.nl = netlist.New(nameTok.text)
	p.dir = make(map[string]byte)
	p.buses = make(map[string][2]int)
	p.consts = [2]netlist.NetID{netlist.NoNet, netlist.NoNet}

	if ok, err := p.accept(tokLParen); err != nil {
		return nil, err
	} else if ok {
		if err := p.parsePortHeader(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}

	for {
		switch kw := p.keyword(); {
		case kw == "endmodule":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return p.finish()
		case kw == "input" || kw == "output" || kw == "inout":
			if err := p.parseDirDecl(kw); err != nil {
				return nil, err
			}
		case kw == "wire" || kw == "tri":
			if err := p.parseWireDecl(); err != nil {
				return nil, err
			}
		case kw == "supply0" || kw == "supply1":
			if err := p.parseSupplyDecl(kw == "supply1"); err != nil {
				return nil, err
			}
		case kw == "assign":
			if err := p.parseAssign(); err != nil {
				return nil, err
			}
		case kw != "":
			if kind, ok := primitiveKind(kw); ok {
				if err := p.parsePrimitive(kind); err != nil {
					return nil, err
				}
				break
			}
			if err := p.parseInstance(kw); err != nil {
				return nil, err
			}
		case p.tok.kind == tokEOF:
			return nil, p.errf("unexpected end of file before 'endmodule'")
		default:
			return nil, p.errf("unexpected %s %q", p.tok.kind, p.tok.text)
		}
	}
}

// parsePortHeader handles both classic headers "(a, b, c)" and ANSI headers
// "(input a, output [2:0] y)".
func (p *parser) parsePortHeader() error {
	if ok, err := p.accept(tokRParen); err != nil || ok {
		return err
	}
	curDir := byte(0)
	var curRange *[2]int
	for {
		switch p.keyword() {
		case "input":
			curDir = 'i'
			curRange = nil
			if err := p.advance(); err != nil {
				return err
			}
		case "output":
			curDir = 'o'
			curRange = nil
			if err := p.advance(); err != nil {
				return err
			}
		case "inout":
			curDir = 'i'
			curRange = nil
			if err := p.advance(); err != nil {
				return err
			}
		case "wire", "reg":
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		if p.tok.kind == tokLBracket {
			r, err := p.parseRange()
			if err != nil {
				return err
			}
			curRange = &r
		}
		nameTok, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		p.ports = append(p.ports, nameTok.text)
		if curDir != 0 {
			p.dir[nameTok.text] = curDir
			if curRange != nil {
				p.buses[nameTok.text] = *curRange
				if err := p.declareBus(nameTok.text, *curRange, curDir); err != nil {
					return err
				}
			} else {
				if err := p.declareScalar(nameTok.text, curDir); err != nil {
					return err
				}
			}
		}
		if ok, err := p.accept(tokComma); err != nil {
			return err
		} else if ok {
			continue
		}
		_, err = p.expect(tokRParen)
		return err
	}
}

func (p *parser) parseRange() ([2]int, error) {
	if _, err := p.expect(tokLBracket); err != nil {
		return [2]int{}, err
	}
	msbTok, err := p.expect(tokNumber)
	if err != nil {
		return [2]int{}, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return [2]int{}, err
	}
	lsbTok, err := p.expect(tokNumber)
	if err != nil {
		return [2]int{}, err
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return [2]int{}, err
	}
	msb, _ := strconv.Atoi(msbTok.text)
	lsb, _ := strconv.Atoi(lsbTok.text)
	return [2]int{msb, lsb}, nil
}

func bitName(base string, idx int) string {
	return fmt.Sprintf("%s[%d]", base, idx)
}

func (p *parser) declareBus(name string, r [2]int, dir byte) error {
	lo, hi := r[1], r[0]
	if lo > hi {
		lo, hi = hi, lo
	}
	for i := lo; i <= hi; i++ {
		if err := p.declareScalar(bitName(name, i), dir); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) declareScalar(name string, dir byte) error {
	id := p.nl.EnsureNet(name)
	switch dir {
	case 'i':
		p.nl.MarkPI(id)
	case 'o':
		p.nl.MarkPO(id)
	}
	return nil
}

// parseDirDecl handles "input [3:0] a, b;" style declarations.
func (p *parser) parseDirDecl(kw string) error {
	dir := byte('i')
	if kw == "output" {
		dir = 'o'
	}
	if err := p.advance(); err != nil {
		return err
	}
	if p.keyword() == "wire" || p.keyword() == "reg" {
		if err := p.advance(); err != nil {
			return err
		}
	}
	var rng *[2]int
	if p.tok.kind == tokLBracket {
		r, err := p.parseRange()
		if err != nil {
			return err
		}
		rng = &r
	}
	for {
		nameTok, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		p.dir[nameTok.text] = dir
		if rng != nil {
			p.buses[nameTok.text] = *rng
			if err := p.declareBus(nameTok.text, *rng, dir); err != nil {
				return err
			}
		} else if err := p.declareScalar(nameTok.text, dir); err != nil {
			return err
		}
		if ok, err := p.accept(tokComma); err != nil {
			return err
		} else if !ok {
			break
		}
	}
	_, err := p.expect(tokSemi)
	return err
}

func (p *parser) parseWireDecl() error {
	if err := p.advance(); err != nil {
		return err
	}
	var rng *[2]int
	if p.tok.kind == tokLBracket {
		r, err := p.parseRange()
		if err != nil {
			return err
		}
		rng = &r
	}
	for {
		nameTok, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if rng != nil {
			p.buses[nameTok.text] = *rng
			if err := p.declareBus(nameTok.text, *rng, 0); err != nil {
				return err
			}
		} else {
			p.nl.EnsureNet(nameTok.text)
		}
		if ok, err := p.accept(tokComma); err != nil {
			return err
		} else if !ok {
			break
		}
	}
	_, err := p.expect(tokSemi)
	return err
}

// parseSupplyDecl treats "supply1 vdd;" as a constant net declaration.
func (p *parser) parseSupplyDecl(one bool) error {
	if err := p.advance(); err != nil {
		return err
	}
	for {
		nameTok, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		id := p.nl.EnsureNet(nameTok.text)
		// Model a supply as a buffered constant so the net has a driver.
		c := p.constNet(one)
		p.anon++
		if err := p.addGate(fmt.Sprintf("$supply%d", p.anon), logic.Buf, id, c); err != nil {
			return p.errf("supply net %q: %v", nameTok.text, err)
		}
		if ok, err := p.accept(tokComma); err != nil {
			return err
		} else if !ok {
			break
		}
	}
	_, err := p.expect(tokSemi)
	return err
}

// constNet returns the shared $const0/$const1 tie-off net, creating it (as a
// primary input) on first use.
func (p *parser) constNet(one bool) netlist.NetID {
	idx := 0
	if one {
		idx = 1
	}
	if p.consts[idx] == netlist.NoNet {
		id := p.nl.EnsureNet(fmt.Sprintf("$const%d", idx))
		p.nl.MarkPI(id)
		p.consts[idx] = id
	}
	return p.consts[idx]
}

// netRef parses a net reference: IDENT with optional bit-select, or a based
// constant literal. Undeclared nets are created implicitly, as in Verilog.
func (p *parser) netRef() (netlist.NetID, error) {
	if p.tok.kind == tokBased {
		text := p.tok.text
		if err := p.advance(); err != nil {
			return netlist.NoNet, err
		}
		switch text {
		case "1'b0", "1'B0", "1'h0", "1'd0":
			return p.constNet(false), nil
		case "1'b1", "1'B1", "1'h1", "1'd1":
			return p.constNet(true), nil
		}
		return netlist.NoNet, p.errf("unsupported constant %q", text)
	}
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return netlist.NoNet, err
	}
	name := nameTok.text
	if p.tok.kind == tokLBracket {
		if err := p.advance(); err != nil {
			return netlist.NoNet, err
		}
		idxTok, err := p.expect(tokNumber)
		if err != nil {
			return netlist.NoNet, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return netlist.NoNet, err
		}
		idx, _ := strconv.Atoi(idxTok.text)
		name = bitName(name, idx)
	} else if _, isBus := p.buses[name]; isBus {
		return netlist.NoNet, p.errf("vector net %q used without a bit-select", name)
	}
	return p.nl.EnsureNet(name), nil
}

// parseAssign handles "assign lhs = rhs;" where rhs is a net or a 1-bit
// constant; it becomes a BUF gate so that structure is preserved.
func (p *parser) parseAssign() error {
	if err := p.advance(); err != nil {
		return err
	}
	lhs, err := p.netRef()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokEquals); err != nil {
		return err
	}
	rhs, err := p.netRef()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	p.anon++
	if err := p.addGate(fmt.Sprintf("$assign%d", p.anon), logic.Buf, lhs, rhs); err != nil {
		return p.errf("assign: %v", err)
	}
	return nil
}

// parsePrimitive handles "nand g1 (y, a, b);" with an optional instance name.
func (p *parser) parsePrimitive(kind logic.Kind) error {
	if err := p.advance(); err != nil {
		return err
	}
	inst := ""
	if p.tok.kind == tokIdent {
		inst = p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	var nets []netlist.NetID
	for {
		n, err := p.netRef()
		if err != nil {
			return err
		}
		nets = append(nets, n)
		if ok, err := p.accept(tokComma); err != nil {
			return err
		} else if !ok {
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if len(nets) < 2 {
		return p.errf("gate primitive needs an output and at least one input")
	}
	if inst == "" {
		p.anon++
		inst = fmt.Sprintf("$gate%d", p.anon)
	}
	if err := p.addGate(inst, kind, nets[0], nets[1:]...); err != nil {
		return p.errf("gate %q: %v", inst, err)
	}
	return nil
}

// parseInstance handles library cell instances with positional or named
// connections: "NAND3 U12 (y, a, b, c);" or "DFF r (.D(d), .Q(q), .CK(clk));".
func (p *parser) parseInstance(cell string) error {
	kind, ok := CellKind(cell)
	if !ok {
		if p.resolveModule != nil {
			if sub, portOrder, isMod := p.resolveModule(cell); isMod {
				return p.parseSubmoduleInstance(cell, sub, portOrder)
			}
			if p.resolveErr != nil {
				return p.resolveErr
			}
		}
		return p.errf("unknown cell type %q", cell)
	}
	if err := p.advance(); err != nil {
		return err
	}
	instTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	// Optional "#(...)" parameter lists are not produced by synthesis
	// netlists we target; reject them clearly.
	if p.tok.kind == tokHash {
		return p.errf("parameterized instances are not supported")
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}

	out := netlist.NoNet
	var ins []netlist.NetID
	if p.tok.kind == tokDot {
		slots := make(map[int]netlist.NetID)
		maxSlot := -1
		for {
			if _, err := p.expect(tokDot); err != nil {
				return err
			}
			pinTok, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			if _, err := p.expect(tokLParen); err != nil {
				return err
			}
			n, err := p.netRef()
			if err != nil {
				return err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return err
			}
			slot, known := pinRole(kind, pinTok.text)
			if !known {
				return p.errf("cell %s: unknown pin %q", cell, pinTok.text)
			}
			switch {
			case slot == -1:
				out = n
			case slot >= 0:
				slots[slot] = n
				if slot > maxSlot {
					maxSlot = slot
				}
			}
			if ok, err := p.accept(tokComma); err != nil {
				return err
			} else if !ok {
				break
			}
		}
		ins = make([]netlist.NetID, maxSlot+1)
		for i := range ins {
			n, filled := slots[i]
			if !filled {
				return p.errf("cell %s %s: input pin %d unconnected", cell, instTok.text, i)
			}
			ins[i] = n
		}
	} else {
		var nets []netlist.NetID
		for {
			n, err := p.netRef()
			if err != nil {
				return err
			}
			nets = append(nets, n)
			if ok, err := p.accept(tokComma); err != nil {
				return err
			} else if !ok {
				break
			}
		}
		if len(nets) < 2 {
			return p.errf("cell %s %s: needs an output and at least one input", cell, instTok.text)
		}
		out = nets[0]
		ins = nets[1:]
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if out == netlist.NoNet {
		return p.errf("cell %s %s: output pin unconnected", cell, instTok.text)
	}
	if err := p.addGate(instTok.text, kind, out, ins...); err != nil {
		return p.errf("cell %s %s: %v", cell, instTok.text, err)
	}
	return nil
}

func (p *parser) finish() (*netlist.Netlist, error) {
	for _, port := range p.ports {
		if _, declared := p.dir[port]; !declared {
			return nil, fmt.Errorf("%s: port %q has no direction declaration", p.lx.file, port)
		}
	}
	return p.nl, nil
}

// parseSubmoduleInstance handles a hierarchical instance of another library
// module: the connections are parsed (named ".port(net)" or positional in
// the child's header order), then the elaborated child is spliced inline
// with "<instance>/" name prefixing. Only scalar child ports are supported.
func (p *parser) parseSubmoduleInstance(cell string, sub *netlist.Netlist, portOrder []string) error {
	if err := p.advance(); err != nil {
		return err
	}
	instTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	bindings := map[string]netlist.NetID{}
	if p.tok.kind == tokDot {
		for {
			if _, err := p.expect(tokDot); err != nil {
				return err
			}
			pinTok, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			if _, err := p.expect(tokLParen); err != nil {
				return err
			}
			n, err := p.netRef()
			if err != nil {
				return err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return err
			}
			bindings[pinTok.text] = n
			if ok, err := p.accept(tokComma); err != nil {
				return err
			} else if !ok {
				break
			}
		}
	} else {
		idx := 0
		for {
			n, err := p.netRef()
			if err != nil {
				return err
			}
			if idx >= len(portOrder) {
				return p.errf("instance %s of %s: too many connections (module has %d ports)",
					instTok.text, cell, len(portOrder))
			}
			bindings[portOrder[idx]] = n
			idx++
			if ok, err := p.accept(tokComma); err != nil {
				return err
			} else if !ok {
				break
			}
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	// Resolve port names to the child's net names; vector ports are not
	// supported for hierarchical instances.
	netBindings := map[string]netlist.NetID{}
	for port, parent := range bindings {
		if _, ok := sub.NetByName(port); !ok {
			if _, isVec := sub.NetByName(port + "[0]"); isVec {
				return p.errf("instance %s of %s: vector port %q not supported in hierarchical instances",
					instTok.text, cell, port)
			}
			return p.errf("instance %s of %s: no port %q", instTok.text, cell, port)
		}
		netBindings[port] = parent
	}
	if err := p.splice(sub, instTok.text, netBindings); err != nil {
		return p.errf("%v", err)
	}
	return nil
}
