package verilog

import (
	"strings"
	"testing"
)

// FuzzParse hardens the frontend: arbitrary input must never panic, and
// anything that parses must survive a write/re-parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"module m; endmodule",
		"module m (a, y);\n input a;\n output y;\n BUF b (y, a);\nendmodule",
		"module m (a);\n input [3:0] a;\nendmodule",
		"module m (input a, output y);\n not (y, a);\nendmodule",
		"module m (a, q);\n input a;\n output q;\n DFF r (.D(a), .Q(q), .CK(a));\nendmodule",
		"module m (a, y);\n input a;\n output y;\n assign y = 1'b0;\nendmodule",
		"module \\weird[1] (a);\n input a;\nendmodule",
		"module m (a); input a; wire w; /* unterminated",
		"module m (a); input a; NAND2 g (w, a, 4'hF); endmodule",
		"module m (a, y);\n input a;\n output y;\n supply1 vdd;\n AND2 g (y, a, vdd);\nendmodule",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		nl, err := Parse("fuzz.v", src)
		if err != nil {
			return
		}
		text, err := WriteString(nl)
		if err != nil {
			t.Fatalf("write after successful parse: %v", err)
		}
		back, err := Parse("fuzz2.v", text)
		if err != nil {
			t.Fatalf("round trip failed: %v\ninput: %q\nemitted:\n%s", err, src, text)
		}
		if back.GateCount() != nl.GateCount() || back.NetCount() != nl.NetCount() {
			t.Fatalf("round trip changed counts: %d/%d -> %d/%d",
				nl.GateCount(), nl.NetCount(), back.GateCount(), back.NetCount())
		}
	})
}

// TestParsePinVariants covers the pin-name families of common libraries.
func TestParsePinVariants(t *testing.T) {
	src := `
module m (a, b, c, q);
  input a, b, c;
  output q;
  wire w1, w2, w3, w4, w5;
  NAND2 u1 (.Y(w1), .A1(a), .A2(b));
  OR3 u2 (.Z(w2), .IN1(a), .IN2(b), .IN3(c));
  INV u3 (.Y(w3), .I(w1));
  BUF u4 (.OUT(w4), .IN(w2));
  MUX2 u5 (.O(w5), .S0(c), .D0(w3), .D1(w4));
  FD1 r (.Q(q), .D(w5), .CP(a), .RN(b));
endmodule
`
	nl, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	if nl.GateCount() != 6 {
		t.Errorf("gates %d", nl.GateCount())
	}
}

func TestParseReaderAndFile(t *testing.T) {
	src := "module m (a);\n input a;\nendmodule\n"
	nl, err := ParseReader("m.v", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "m" {
		t.Errorf("name %q", nl.Name)
	}
	if _, err := ParseFile("/nonexistent/never.v"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCellArity(t *testing.T) {
	if CellArity(0, 3) != 4 {
		t.Error("CellArity")
	}
}
