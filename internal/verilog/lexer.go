// Package verilog reads and writes the structural gate-level Verilog subset
// that synthesis tools emit and that gatewords analyzes: a single flattened
// module with port declarations, scalar and vector wire declarations, gate
// primitives (and/or/nand/...), library cell instances with positional or
// named connections, and buffer-style assign statements.
//
// The parser preserves gate statement order — the adjacency heuristic of
// DAC'15 §2.2 operates on netlist-file line order, so order is semantic
// for this tool even though Verilog itself does not care.
package verilog

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber // decimal integer
	tokBased  // based literal like 1'b0
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokSemi
	tokColon
	tokDot
	tokEquals
	tokHash
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of file"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokBased:
		return "based literal"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokColon:
		return "':'"
	case tokDot:
		return "'.'"
	case tokEquals:
		return "'='"
	case tokHash:
		return "'#'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// SyntaxError reports a parse failure with source position.
type SyntaxError struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

type lexer struct {
	file string
	src  string
	pos  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (lx *lexer) errf(line, col int, format string, args ...any) error {
	return &SyntaxError{File: lx.file, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() (byte, bool) {
	if lx.pos >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.pos], true
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// next returns the next token, skipping whitespace and comments.
func (lx *lexer) next() (token, error) {
	for {
		c, ok := lx.peekByte()
		if !ok {
			return token{kind: tokEOF, line: lx.line, col: lx.col}, nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
			continue
		case c == '/':
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
				for {
					c2, ok := lx.peekByte()
					if !ok || c2 == '\n' {
						break
					}
					lx.advance()
				}
				continue
			}
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*' {
				startLine, startCol := lx.line, lx.col
				lx.advance()
				lx.advance()
				closed := false
				for lx.pos < len(lx.src) {
					if lx.src[lx.pos] == '*' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
						lx.advance()
						lx.advance()
						closed = true
						break
					}
					lx.advance()
				}
				if !closed {
					return token{}, lx.errf(startLine, startCol, "unterminated block comment")
				}
				continue
			}
			return token{}, lx.errf(lx.line, lx.col, "unexpected '/'")
		}
		break
	}

	line, col := lx.line, lx.col
	c := lx.src[lx.pos]
	switch c {
	case '(':
		lx.advance()
		return token{tokLParen, "(", line, col}, nil
	case ')':
		lx.advance()
		return token{tokRParen, ")", line, col}, nil
	case '[':
		lx.advance()
		return token{tokLBracket, "[", line, col}, nil
	case ']':
		lx.advance()
		return token{tokRBracket, "]", line, col}, nil
	case ',':
		lx.advance()
		return token{tokComma, ",", line, col}, nil
	case ';':
		lx.advance()
		return token{tokSemi, ";", line, col}, nil
	case ':':
		lx.advance()
		return token{tokColon, ":", line, col}, nil
	case '.':
		lx.advance()
		return token{tokDot, ".", line, col}, nil
	case '=':
		lx.advance()
		return token{tokEquals, "=", line, col}, nil
	case '#':
		lx.advance()
		return token{tokHash, "#", line, col}, nil
	case '\\':
		// Escaped identifier: backslash up to (exclusive) the next
		// whitespace. The backslash is not part of the net name.
		lx.advance()
		var sb strings.Builder
		for {
			c2, ok := lx.peekByte()
			if !ok || c2 == ' ' || c2 == '\t' || c2 == '\r' || c2 == '\n' {
				break
			}
			sb.WriteByte(lx.advance())
		}
		if sb.Len() == 0 {
			return token{}, lx.errf(line, col, "empty escaped identifier")
		}
		return token{tokIdent, sb.String(), line, col}, nil
	}

	if isDigit(c) {
		var sb strings.Builder
		for {
			c2, ok := lx.peekByte()
			if !ok || !isDigit(c2) {
				break
			}
			sb.WriteByte(lx.advance())
		}
		// A based literal like 1'b0 or 4'hF.
		if c2, ok := lx.peekByte(); ok && c2 == '\'' {
			sb.WriteByte(lx.advance())
			for {
				c3, ok := lx.peekByte()
				if !ok || !(isAlnum(c3) || c3 == '_') {
					break
				}
				sb.WriteByte(lx.advance())
			}
			return token{tokBased, sb.String(), line, col}, nil
		}
		return token{tokNumber, sb.String(), line, col}, nil
	}

	if isIdentStart(c) {
		var sb strings.Builder
		for {
			c2, ok := lx.peekByte()
			if !ok || !(isAlnum(c2) || c2 == '_' || c2 == '$') {
				break
			}
			sb.WriteByte(lx.advance())
		}
		return token{tokIdent, sb.String(), line, col}, nil
	}

	return token{}, lx.errf(line, col, "unexpected character %q", rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isAlnum(c byte) bool {
	return isDigit(c) || unicode.IsLetter(rune(c))
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c))
}
