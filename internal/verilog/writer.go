package verilog

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// Write emits nl as structural Verilog in the canonical form this package
// parses back: scalar ports, wire declarations, then one cell instance per
// line in gate order (output pin first, positional connections). Round-trip
// through Parse reproduces the netlist, including gate order.
func Write(w io.Writer, nl *netlist.Netlist) error {
	bw := bufio.NewWriter(w)

	pis, pos := nl.PIs(), nl.POs()
	var ports []string
	for _, id := range pis {
		ports = append(ports, escapeName(nl.NetName(id)))
	}
	for _, id := range pos {
		if !nl.Net(id).IsPI {
			ports = append(ports, escapeName(nl.NetName(id)))
		}
	}
	fmt.Fprintf(bw, "module %s (%s);\n", escapeName(nl.Name), strings.Join(ports, ", "))
	for _, id := range pis {
		fmt.Fprintf(bw, "  input %s;\n", escapeName(nl.NetName(id)))
	}
	for _, id := range pos {
		if !nl.Net(id).IsPI {
			fmt.Fprintf(bw, "  output %s;\n", escapeName(nl.NetName(id)))
		}
	}
	for ni := 0; ni < nl.NetCount(); ni++ {
		id := netlist.NetID(ni)
		n := nl.Net(id)
		if n.IsPI || n.IsPO {
			continue
		}
		fmt.Fprintf(bw, "  wire %s;\n", escapeName(n.Name))
	}
	bw.WriteByte('\n')
	for gi := 0; gi < nl.GateCount(); gi++ {
		g := nl.Gate(netlist.GateID(gi))
		name := g.Name
		if name == "" {
			name = fmt.Sprintf("U%d", gi)
		}
		pins := make([]string, 0, len(g.Inputs)+1)
		pins = append(pins, escapeName(nl.NetName(g.Output)))
		for _, in := range g.Inputs {
			pins = append(pins, escapeName(nl.NetName(in)))
		}
		fmt.Fprintf(bw, "  %s %s (%s);\n", CellName(g.Kind, len(g.Inputs)), escapeName(name), strings.Join(pins, ", "))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// WriteString renders nl to a string; convenient for tests and examples.
func WriteString(nl *netlist.Netlist) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, nl); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// escapeName emits a Verilog-safe identifier: plain when the name is a
// simple identifier, otherwise an escaped identifier (backslash prefix,
// trailing space required by the language).
func escapeName(name string) string {
	if isSimpleIdent(name) {
		return name
	}
	return "\\" + name + " "
}

func isSimpleIdent(name string) bool {
	if name == "" {
		return false
	}
	c := name[0]
	if !(c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
		return false
	}
	for i := 1; i < len(name); i++ {
		c := name[i]
		if !(c == '_' || c == '$' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			return false
		}
	}
	// Avoid colliding with keywords and primitive gate names the parser
	// treats specially.
	switch name {
	case "module", "endmodule", "input", "output", "inout", "wire", "tri",
		"assign", "supply0", "supply1", "reg",
		"and", "or", "nand", "nor", "xor", "xnor", "not", "buf":
		return false
	}
	return true
}

// CellArity returns the pin count (including output) that the writer emits
// for a gate, exposed for tooling that formats reports about cells.
func CellArity(k logic.Kind, inputs int) int { return inputs + 1 }
