package verilog

import (
	"strings"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

const hierSrc = `
// A two-level hierarchy: top instantiates two copies of a half-adder cell
// block and one nested wrapper.
module ha (a, b, s, c);
  input a, b;
  output s, c;
  XOR2 x (s, a, b);
  AND2 g (c, a, b);
endmodule

module wrap (p, q, o);
  input p, q;
  output o;
  wire t, u;
  ha inner (.a(p), .b(q), .s(t), .c(u));
  OR2 m (o, t, u);
endmodule

module top (a0, b0, a1, b1, s0, s1, w);
  input a0, b0, a1, b1;
  output s0, s1, w;
  wire c0, c1;
  ha u0 (a0, b0, s0, c0);
  ha u1 (.a(a1), .b(b1), .s(s1), .c(c1));
  wrap u2 (.p(c0), .q(c1), .o(w));
endmodule
`

func TestParseHierarchyAndElaborate(t *testing.T) {
	lib, err := ParseHierarchy(nil, "hier.v", hierSrc)
	if err != nil {
		t.Fatal(err)
	}
	mods := lib.Modules()
	if len(mods) != 3 || mods[0] != "ha" || mods[2] != "top" {
		t.Fatalf("modules: %v", mods)
	}
	top, err := lib.Top()
	if err != nil || top != "top" {
		t.Fatalf("top: %q %v", top, err)
	}
	nl, err := lib.Elaborate("top")
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 ha (2 gates each) + wrap (1 OR + its inner ha's 2) + nothing else.
	if nl.GateCount() != 7 {
		t.Errorf("gates: %d, want 7", nl.GateCount())
	}
	// Hierarchical names.
	for _, name := range []string{"u2/t", "u2/inner/s"} {
		// u2/inner's s output is bound to wrap-local t, so u2/inner/s must
		// NOT exist; u2/t must.
		_ = name
	}
	if _, ok := nl.NetByName("u2/t"); !ok {
		t.Error("inner wire u2/t missing")
	}
	if _, ok := nl.NetByName("u2/inner/s"); ok {
		t.Error("bound port net should alias the parent net, not exist separately")
	}
	// Gate naming.
	found := false
	for gi := 0; gi < nl.GateCount(); gi++ {
		if nl.Gate(int32g(gi)).Name == "u2/inner/x" {
			found = true
		}
	}
	if !found {
		t.Error("nested gate u2/inner/x missing")
	}
	// Functional sanity: s0 driven by an XOR reading a0, b0.
	s0, _ := nl.NetByName("s0")
	g := nl.Gate(nl.Net(s0).Driver)
	if g.Kind != logic.Xor {
		t.Errorf("s0 driver %s", g.Kind)
	}
	names := map[string]bool{}
	for _, in := range g.Inputs {
		names[nl.NetName(in)] = true
	}
	if !names["a0"] || !names["b0"] {
		t.Errorf("s0 inputs: %v", names)
	}
}

func TestElaborateWriterRoundTrip(t *testing.T) {
	lib, err := ParseHierarchy(nil, "hier.v", hierSrc)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := lib.Elaborate("top")
	if err != nil {
		t.Fatal(err)
	}
	text, err := WriteString(nl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse("flat.v", text)
	if err != nil {
		t.Fatalf("flattened netlist does not re-parse: %v\n%s", err, text)
	}
	if back.GateCount() != nl.GateCount() {
		t.Error("round trip changed gate count")
	}
}

func TestElaborateErrors(t *testing.T) {
	// Cycle.
	cyc := `
module ma (x); input x; mb i (.x(x)); endmodule
module mb (x); input x; ma i (.x(x)); endmodule
`
	lib, err := ParseHierarchy(nil, "c.v", cyc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Elaborate("ma"); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}

	// Unknown module.
	if _, err := lib.Elaborate("zz"); err == nil {
		t.Error("unknown module accepted")
	}

	// Bad port name.
	badPort := `
module leaf (a, y); input a; output y; NOT g (y, a); endmodule
module top2 (p, q); input p; output q; leaf i (.nope(p), .y(q)); endmodule
`
	lib, err = ParseHierarchy(nil, "b.v", badPort)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Elaborate("top2"); err == nil || !strings.Contains(err.Error(), "no port") {
		t.Errorf("bad port not detected: %v", err)
	}

	// Vector port rejection.
	vec := `
module leafv (a, y); input [1:0] a; output y; AND2 g (y, a[0], a[1]); endmodule
module topv (p, q); input p; output q; leafv i (.a(p), .y(q)); endmodule
`
	lib, err = ParseHierarchy(nil, "v.v", vec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Elaborate("topv"); err == nil || !strings.Contains(err.Error(), "vector port") {
		t.Errorf("vector port not rejected: %v", err)
	}

	// Too many positional connections.
	many := `
module leaf2 (a, y); input a; output y; NOT g (y, a); endmodule
module top3 (p, q); input p; output q; leaf2 i (p, q, p); endmodule
`
	lib, err = ParseHierarchy(nil, "m.v", many)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Elaborate("top3"); err == nil || !strings.Contains(err.Error(), "too many connections") {
		t.Errorf("extra connection not detected: %v", err)
	}
}

func TestParseHierarchyErrors(t *testing.T) {
	if _, err := ParseHierarchy(nil, "e.v", "wire x;"); err == nil {
		t.Error("no modules accepted")
	}
	if _, err := ParseHierarchy(nil, "e.v", "module m (a); input a;"); err == nil {
		t.Error("missing endmodule accepted")
	}
}

func TestParseHierarchyAccumulates(t *testing.T) {
	lib, err := ParseHierarchy(nil, "1.v", "module leaf (a, y); input a; output y; NOT g (y, a); endmodule")
	if err != nil {
		t.Fatal(err)
	}
	lib, err = ParseHierarchy(lib, "2.v", "module t (p, q); input p; output q; leaf i (p, q); endmodule")
	if err != nil {
		t.Fatal(err)
	}
	nl, err := lib.Elaborate("t")
	if err != nil {
		t.Fatal(err)
	}
	if nl.GateCount() != 1 {
		t.Errorf("gates %d", nl.GateCount())
	}
}

func int32g(i int) netlist.GateID { return netlist.GateID(i) }
