package verilog

import (
	"math/rand"
	"strings"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

func int32ToGateID(i int) netlist.GateID { return netlist.GateID(i) }

func TestCellKind(t *testing.T) {
	cases := []struct {
		cell string
		kind logic.Kind
		ok   bool
	}{
		{"NAND2", logic.Nand, true},
		{"NAND3", logic.Nand, true},
		{"nand4", logic.Nand, true},
		{"NAND2X1", logic.Nand, true},
		{"NAND2_X4", logic.Nand, true},
		{"AND2", logic.And, true},
		{"OR4", logic.Or, true},
		{"NOR2", logic.Nor, true},
		{"XOR2", logic.Xor, true},
		{"XNOR2", logic.Xnor, true},
		{"MUX2", logic.Mux2, true},
		{"MUX2X1", logic.Mux2, true},
		{"MX2", logic.Mux2, true},
		{"INV", logic.Not, true},
		{"INVX8", logic.Not, true},
		{"NOT", logic.Not, true},
		{"BUF", logic.Buf, true},
		{"AOI21", logic.Aoi21, true},
		{"AOI21_X2", logic.Aoi21, true},
		{"OAI21", logic.Oai21, true},
		{"AOI22", logic.Invalid, false},
		{"DFF", logic.DFF, true},
		{"DFFX1", logic.DFF, true},
		{"FD1", logic.DFF, true},
		{"SDFF", logic.DFF, true},
		{"MYSTERY", logic.Invalid, false},
		{"ND2", logic.Nand, true},
		{"IV", logic.Not, true},
		{"EO2", logic.Xor, true},
	}
	for _, c := range cases {
		kind, ok := CellKind(c.cell)
		if kind != c.kind || ok != c.ok {
			t.Errorf("CellKind(%q) = %s,%v want %s,%v", c.cell, kind, ok, c.kind, c.ok)
		}
	}
}

func TestCellNameParsesBack(t *testing.T) {
	for _, k := range logic.Kinds() {
		arity := 2
		if n, fixed := k.FixedArity(); fixed {
			arity = n
		}
		name := CellName(k, arity)
		got, ok := CellKind(name)
		if !ok || got != k {
			t.Errorf("CellKind(CellName(%s)) = %s,%v", k, got, ok)
		}
	}
}

func TestEscapeName(t *testing.T) {
	cases := map[string]string{
		"plain":  "plain",
		"a[3]":   "\\a[3] ",
		"$const": "$const",
		"3bad":   "\\3bad ",
		"nand":   "\\nand ", // keyword collision
		"wire":   "\\wire ",
	}
	for in, want := range cases {
		if got := escapeName(in); got != want {
			t.Errorf("escapeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// randomNetlist builds a random valid netlist with buses, DFFs, awkward
// names, and every cell kind, for the round-trip property.
func randomNetlist(rng *rand.Rand) *netlist.Netlist {
	nl := netlist.New("rt")
	var nets []netlist.NetID
	for i := 0; i < 5; i++ {
		name := []string{"a", "b[0]", "b[1]", "weird$name", "esc[2]"}[i]
		id := nl.MustNet(name)
		nl.MarkPI(id)
		nets = append(nets, id)
	}
	kinds := logic.CombinationalKinds()
	for i := 0; i < 20; i++ {
		k := kinds[rng.Intn(len(kinds))]
		arity := 2
		if n, fixed := k.FixedArity(); fixed {
			arity = n
		} else if rng.Intn(2) == 0 {
			arity = 3
		}
		ins := make([]netlist.NetID, arity)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		out := nl.MustNet(randName(rng, i))
		nl.MustGate(gname(i), k, out, ins...)
		nets = append(nets, out)
	}
	// Some flip-flops with register-style names.
	for i := 0; i < 3; i++ {
		q := nl.MustNet(gname(100 + i))
		nl.MustGate("ffq"+string(rune('0'+i)), logic.DFF, q, nets[rng.Intn(len(nets))])
		nets = append(nets, q)
	}
	nl.MarkPO(nets[len(nets)-1])
	return nl
}

func randName(rng *rand.Rand, i int) string {
	switch rng.Intn(4) {
	case 0:
		return "n" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	case 1:
		return "bus" + string(rune('0'+i%10)) + "[" + string(rune('0'+i/10)) + "]"
	case 2:
		return "U" + string(rune('0'+i%10)) + string(rune('a'+i/10))
	default:
		return "w_" + string(rune('0'+i%10)) + string(rune('a'+i/10%26))
	}
}

func gname(i int) string { return "g" + string(rune('A'+i%26)) + string(rune('0'+i/26)) }

// TestRoundTrip checks parse(write(nl)) == nl structurally, including gate
// order, which is semantic for the adjacency heuristic.
func TestRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		nl := randomNetlist(rand.New(rand.NewSource(seed)))
		if err := nl.Validate(); err != nil {
			t.Fatalf("seed %d: source invalid: %v", seed, err)
		}
		text, err := WriteString(nl)
		if err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		back, err := Parse("rt.v", text)
		if err != nil {
			t.Fatalf("seed %d: parse back: %v\n%s", seed, err, text)
		}
		if back.NetCount() != nl.NetCount() {
			t.Fatalf("seed %d: nets %d != %d", seed, back.NetCount(), nl.NetCount())
		}
		if back.GateCount() != nl.GateCount() {
			t.Fatalf("seed %d: gates %d != %d", seed, back.GateCount(), nl.GateCount())
		}
		for gi := 0; gi < nl.GateCount(); gi++ {
			g1 := nl.Gate(netlist.GateID(gi))
			g2 := back.Gate(netlist.GateID(gi))
			if g1.Kind != g2.Kind || g1.Name != g2.Name {
				t.Fatalf("seed %d gate %d: %s %q != %s %q", seed, gi, g1.Kind, g1.Name, g2.Kind, g2.Name)
			}
			if nl.NetName(g1.Output) != back.NetName(g2.Output) {
				t.Fatalf("seed %d gate %d: output name mismatch", seed, gi)
			}
			for pi := range g1.Inputs {
				if nl.NetName(g1.Inputs[pi]) != back.NetName(g2.Inputs[pi]) {
					t.Fatalf("seed %d gate %d pin %d: input name mismatch", seed, gi, pi)
				}
			}
		}
		// Port markings survive.
		for _, pi := range nl.PIs() {
			id, ok := back.NetByName(nl.NetName(pi))
			if !ok || !back.Net(id).IsPI {
				t.Fatalf("seed %d: PI %q lost", seed, nl.NetName(pi))
			}
		}
	}
}

func TestWriterOutputShape(t *testing.T) {
	nl := netlist.New("mod")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	y := nl.MustNet("y")
	nl.MarkPO(y)
	nl.MustGate("u1", logic.Not, y, a)
	s, err := WriteString(nl)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"module mod (a, y);", "input a;", "output y;", "NOT u1 (y, a);", "endmodule"} {
		if !strings.Contains(s, frag) {
			t.Errorf("output missing %q:\n%s", frag, s)
		}
	}
}
