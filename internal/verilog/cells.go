package verilog

import (
	"strings"

	"gatewords/internal/logic"
)

// CellKind resolves a library cell name to a logic.Kind. It accepts the
// canonical names this package writes (NAND3, MUX2, DFF, ...) plus the
// common naming families found in synthesized netlists: an upper-case base
// name optionally followed by an arity and/or a drive-strength suffix such
// as "X1" or "_X2" (NAND2X1, AOI21_X2, INVX4, FD1, ...). It returns
// (Invalid, false) for names it does not recognize.
func CellKind(cell string) (logic.Kind, bool) {
	name := strings.ToUpper(cell)
	if k, ok := cellBase(name); ok {
		return k, true
	}
	// Retry with a drive-strength suffix stripped: X<d> or _X<d> at the end.
	if i := strings.LastIndex(name, "_X"); i > 0 && allDigits(name[i+2:]) {
		return cellBase(name[:i])
	}
	if i := strings.LastIndex(name, "X"); i > 0 && allDigits(name[i+1:]) {
		return cellBase(name[:i])
	}
	return logic.Invalid, false
}

func cellBase(name string) (logic.Kind, bool) {
	base := strings.TrimRight(name, "0123456789")
	switch base {
	case "AND":
		return logic.And, true
	case "OR":
		return logic.Or, true
	case "NAND", "ND":
		return logic.Nand, true
	case "NOR", "NR":
		return logic.Nor, true
	case "XOR", "EO":
		return logic.Xor, true
	case "XNOR", "EN":
		return logic.Xnor, true
	case "NOT", "INV", "IV":
		return logic.Not, true
	case "BUF", "BUFF", "B":
		return logic.Buf, true
	case "MUX", "MX":
		return logic.Mux2, true
	case "AOI":
		if strings.HasSuffix(name, "21") {
			return logic.Aoi21, true
		}
		return logic.Invalid, false
	case "OAI":
		if strings.HasSuffix(name, "21") {
			return logic.Oai21, true
		}
		return logic.Invalid, false
	case "DFF", "FD", "SDFF", "DFFR", "DFFS":
		return logic.DFF, true
	}
	return logic.Invalid, false
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// CellName returns the canonical cell name emitted by the writer for a gate
// of the given kind and input count: variadic kinds carry their arity
// (NAND3), fixed-pin kinds use their bare name.
func CellName(k logic.Kind, arity int) string {
	switch k {
	case logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor:
		return k.String() + itoa(arity)
	case logic.Not:
		return "NOT"
	case logic.Buf:
		return "BUF"
	case logic.Mux2:
		return "MUX2"
	case logic.Aoi21:
		return "AOI21"
	case logic.Oai21:
		return "OAI21"
	case logic.DFF:
		return "DFF"
	}
	return "UNKNOWN"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// primitiveKind resolves a Verilog gate primitive keyword (lower case) used
// in "nand g1 (y, a, b);" statements.
func primitiveKind(word string) (logic.Kind, bool) {
	switch word {
	case "and":
		return logic.And, true
	case "or":
		return logic.Or, true
	case "nand":
		return logic.Nand, true
	case "nor":
		return logic.Nor, true
	case "xor":
		return logic.Xor, true
	case "xnor":
		return logic.Xnor, true
	case "not":
		return logic.Not, true
	case "buf":
		return logic.Buf, true
	}
	return logic.Invalid, false
}

// pinRole classifies a named connection pin for a cell of the given kind.
// It returns the input slot index, or -1 for the output pin, or -2 for pins
// that are ignored (clock, asynchronous set/reset, scan enables, ...).
// Kind-specific data pins are matched first so that, for example, "C" is the
// third input of an AOI21 but an ignored clock pin on a DFF.
func pinRole(kind logic.Kind, pin string) (slot int, ok bool) {
	p := strings.ToUpper(pin)
	switch kind {
	case logic.DFF:
		switch p {
		case "D":
			return 0, true
		case "Q":
			return -1, true
		}
	case logic.Mux2:
		switch p {
		case "S", "S0", "SEL":
			return 0, true
		case "A", "A0", "D0", "I0":
			return 1, true
		case "B", "A1", "D1", "I1":
			return 2, true
		}
	case logic.Aoi21, logic.Oai21:
		switch p {
		case "A", "A1":
			return 0, true
		case "B", "A2":
			return 1, true
		case "C", "B1":
			return 2, true
		}
	case logic.Not, logic.Buf:
		switch p {
		case "A", "I", "IN":
			return 0, true
		}
	default:
		// Variadic gates: A..H or A1..A9 / IN1..IN9.
		if len(p) == 1 && p[0] >= 'A' && p[0] <= 'H' {
			return int(p[0] - 'A'), true
		}
		if len(p) == 2 && p[0] == 'A' && p[1] >= '1' && p[1] <= '9' {
			return int(p[1] - '1'), true
		}
		if strings.HasPrefix(p, "IN") && allDigits(p[2:]) {
			return int(p[2]-'0') - 1, true
		}
	}
	switch p {
	case "Y", "Z", "OUT", "O", "Q":
		return -1, true
	case "QN", "CLK", "CK", "C", "CP", "CLOCK", "R", "RN", "S", "SN", "RST", "RESET", "SET", "SE", "SI", "TE", "TI":
		return -2, true
	}
	return 0, false
}
