package verilog

import (
	"strings"
	"testing"

	"gatewords/internal/netlist"
)

// TestParseLenientMultiDriver: strict Parse rejects a doubly-driven net at
// the second driver; ParseLenient keeps both gates and records the conflict.
func TestParseLenientMultiDriver(t *testing.T) {
	src := `
module m (a, b, y);
  input a, b;
  output y;
  not g1 (y, a);
  not g2 (y, b);
endmodule
`
	if _, err := Parse("t.v", src); err == nil || !strings.Contains(err.Error(), "already driven") {
		t.Errorf("strict parse accepted multi-driver: %v", err)
	}
	nl, err := ParseLenient("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	if nl.GateCount() != 2 {
		t.Fatalf("gates = %d, want both drivers kept", nl.GateCount())
	}
	extras := nl.ExtraDrivers()
	if len(extras) != 1 {
		t.Fatalf("extra drivers = %+v", extras)
	}
	y, _ := nl.NetByName("y")
	if extras[0].Net != y || nl.Gate(extras[0].Gate).Name != "g2" {
		t.Errorf("conflict misrecorded: %+v", extras[0])
	}
	vs := nl.StructuralViolations()
	found := false
	for _, v := range vs {
		if v.Code == netlist.CodeMultiDriver {
			found = true
		}
	}
	if !found {
		t.Errorf("violations = %+v", vs)
	}
}

// TestParseLenientBadArity: a NAND with one input parses leniently and
// surfaces as an arity violation rather than a parse error.
func TestParseLenientBadArity(t *testing.T) {
	src := `
module m (a, y);
  input a;
  output y;
  nand g1 (y, a);
endmodule
`
	if _, err := Parse("t.v", src); err == nil {
		t.Error("strict parse accepted NAND/1")
	}
	nl, err := ParseLenient("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	vs := nl.StructuralViolations()
	found := false
	for _, v := range vs {
		if v.Code == netlist.CodeArity {
			found = true
		}
	}
	if !found {
		t.Errorf("arity violation not recorded: %+v", vs)
	}
}

// TestParseLenientSkipsValidate: an undriven internal net fails strict
// parsing at Validate but survives a lenient parse for the linter to report.
func TestParseLenientSkipsValidate(t *testing.T) {
	src := `
module m (a, y);
  input a;
  output y;
  wire phantom;
  and g1 (y, a, phantom);
endmodule
`
	if _, err := Parse("t.v", src); err == nil || !strings.Contains(err.Error(), "undriven") {
		t.Errorf("strict parse accepted undriven net: %v", err)
	}
	nl, err := ParseLenient("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := nl.NetByName("phantom"); !ok {
		t.Fatal("phantom net lost")
	}
}

// TestParseLenientSyntaxStillFails: leniency is structural only.
func TestParseLenientSyntaxStillFails(t *testing.T) {
	if _, err := ParseLenient("t.v", "module m (a; endmodule"); err == nil {
		t.Error("syntax error accepted")
	}
}

// TestParseLenientCleanMatchesStrict: on a well-formed module the two modes
// build the same netlist.
func TestParseLenientCleanMatchesStrict(t *testing.T) {
	src := `
module m (a, b, q);
  input a, b;
  output q;
  wire w;
  nand g1 (w, a, b);
  DFF r (.D(w), .Q(q), .CK(a));
endmodule
`
	strict, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	lenient, err := ParseLenient("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	if strict.GateCount() != lenient.GateCount() || strict.NetCount() != lenient.NetCount() {
		t.Errorf("strict %d/%d vs lenient %d/%d",
			strict.GateCount(), strict.NetCount(), lenient.GateCount(), lenient.NetCount())
	}
	if err := lenient.Validate(); err != nil {
		t.Errorf("lenient parse of clean module invalid: %v", err)
	}
}
