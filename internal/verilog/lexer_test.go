package verilog

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	lx := newLexer("test.v", src)
	var out []token
	for {
		tok, err := lx.next()
		if err != nil {
			t.Fatalf("lex error: %v", err)
		}
		if tok.kind == tokEOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestLexBasicTokens(t *testing.T) {
	toks := lexAll(t, "module m (a, b[3]); .= : #")
	kinds := []tokenKind{tokIdent, tokIdent, tokLParen, tokIdent, tokComma,
		tokIdent, tokLBracket, tokNumber, tokRBracket, tokRParen, tokSemi,
		tokDot, tokEquals, tokColon, tokHash}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d: kind %v want %v (%q)", i, toks[i].kind, k, toks[i].text)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexAll(t, "a // line comment\nb /* block\ncomment */ c")
	if len(toks) != 3 || toks[0].text != "a" || toks[1].text != "b" || toks[2].text != "c" {
		t.Fatalf("comments not skipped: %+v", toks)
	}
	if toks[1].line != 2 || toks[2].line != 3 {
		t.Errorf("line tracking wrong: %+v", toks)
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	lx := newLexer("test.v", "a /* never ends")
	if _, err := lx.next(); err != nil {
		t.Fatalf("first token: %v", err)
	}
	if _, err := lx.next(); err == nil {
		t.Fatal("unterminated block comment not reported")
	}
}

func TestLexEscapedIdentifier(t *testing.T) {
	toks := lexAll(t, `\bus[3] plain`)
	if len(toks) != 2 || toks[0].text != "bus[3]" || toks[0].kind != tokIdent {
		t.Fatalf("escaped ident: %+v", toks)
	}
}

func TestLexEmptyEscapedIdentifier(t *testing.T) {
	lx := newLexer("test.v", `\ x`)
	if _, err := lx.next(); err == nil {
		t.Fatal("empty escaped identifier accepted")
	}
}

func TestLexBasedLiteral(t *testing.T) {
	toks := lexAll(t, "1'b0 4'hF 12")
	if toks[0].kind != tokBased || toks[0].text != "1'b0" {
		t.Errorf("based literal: %+v", toks[0])
	}
	if toks[1].kind != tokBased || toks[1].text != "4'hF" {
		t.Errorf("based literal: %+v", toks[1])
	}
	if toks[2].kind != tokNumber || toks[2].text != "12" {
		t.Errorf("number: %+v", toks[2])
	}
}

func TestLexErrorPosition(t *testing.T) {
	lx := newLexer("file.v", "ok\n  @")
	if _, err := lx.next(); err != nil {
		t.Fatal(err)
	}
	_, err := lx.next()
	if err == nil {
		t.Fatal("bad character accepted")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.File != "file.v" || se.Line != 2 || se.Col != 3 {
		t.Errorf("position %s:%d:%d", se.File, se.Line, se.Col)
	}
	if !strings.Contains(se.Error(), "file.v:2:3") {
		t.Errorf("Error() = %q", se.Error())
	}
}
