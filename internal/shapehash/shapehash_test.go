package shapehash

import (
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// uniformWord drives n bits with structurally identical cones:
// bit_i = NAND(NAND(a_i, s), NAND(b_i, s2)).
func uniformWord(t *testing.T, nl *netlist.Netlist, prefix string, n int, s, s2 netlist.NetID) []netlist.NetID {
	t.Helper()
	var bits []netlist.NetID
	var roots []struct{ x, y netlist.NetID }
	for i := 0; i < n; i++ {
		sfx := prefix + string(rune('0'+i))
		a := nl.MustNet("a" + sfx)
		nl.MarkPI(a)
		b := nl.MustNet("b" + sfx)
		nl.MarkPI(b)
		x := nl.MustNet("x" + sfx)
		nl.MustGate("gx"+sfx, logic.Nand, x, a, s)
		y := nl.MustNet("y" + sfx)
		nl.MustGate("gy"+sfx, logic.Nand, y, b, s2)
		roots = append(roots, struct{ x, y netlist.NetID }{x, y})
	}
	// Emit the root gates consecutively so they form one adjacency run.
	for i, r := range roots {
		sfx := prefix + string(rune('0'+i))
		bit := nl.MustNet("bit" + sfx)
		nl.MustGate("gb"+sfx, logic.Nand, bit, r.x, r.y)
		bits = append(bits, bit)
	}
	return bits
}

func TestIdentifyGroupsUniformWord(t *testing.T) {
	nl := netlist.New("t")
	s := nl.MustNet("s")
	s2 := nl.MustNet("s2")
	nl.MarkPI(s)
	nl.MarkPI(s2)
	bits := uniformWord(t, nl, "w", 4, s, s2)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	res := Identify(nl, 0)
	found := false
	for _, w := range res.Words {
		if len(w) == 4 && contains(w, bits) {
			found = true
		}
	}
	if !found {
		t.Fatalf("uniform word not grouped; words: %v", res.Words)
	}
	if res.Groups == 0 || res.Bits == 0 {
		t.Errorf("stats: %+v", res)
	}
}

func TestIdentifySplitsOnStructureChange(t *testing.T) {
	nl := netlist.New("t")
	s := nl.MustNet("s")
	s2 := nl.MustNet("s2")
	nl.MarkPI(s)
	nl.MarkPI(s2)
	// Two bits of one shape, then two of another, all NAND2 roots so they
	// share one adjacency run but must split into two words.
	b1 := uniformWord(t, nl, "p", 2, s, s2)
	var b2 []netlist.NetID
	for i := 0; i < 2; i++ {
		sfx := "q" + string(rune('0'+i))
		a := nl.MustNet("a" + sfx)
		nl.MarkPI(a)
		x := nl.MustNet("x" + sfx)
		nl.MustGate("gx"+sfx, logic.Nor, x, a, s) // NOR subtree: different shape
		bit := nl.MustNet("bit" + sfx)
		nl.MustGate("gb"+sfx, logic.Nand, bit, x, x)
		b2 = append(b2, bit)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	res := Identify(nl, 0)
	if !hasWord(res.Words, b1) {
		t.Fatalf("uniform pair not grouped: %v", res.Words)
	}
	// No generated word may mix the two shapes.
	inB1 := map[netlist.NetID]bool{}
	for _, n := range b1 {
		inB1[n] = true
	}
	for _, w := range res.Words {
		hasP, hasQ := false, false
		for _, n := range w {
			if inB1[n] {
				hasP = true
			}
			for _, q := range b2 {
				if n == q {
					hasQ = true
				}
			}
		}
		if hasP && hasQ {
			t.Errorf("full-match baseline merged different shapes: %v", w)
		}
	}
}

func TestIdentifyEquality_NotChaining(t *testing.T) {
	// Full matching is an equivalence: A A B A sequences split into
	// {A,A},{B},{A} because grouping is sequential-adjacent.
	nl := netlist.New("t")
	s := nl.MustNet("s")
	s2 := nl.MustNet("s2")
	nl.MarkPI(s)
	nl.MarkPI(s2)
	// Phase 1: internals for all four bits (x subtrees); phase 2: the root
	// gates on consecutive lines so they form one adjacency run.
	var xs []netlist.NetID
	mkX := func(sfx string, kind logic.Kind, sel netlist.NetID) {
		a := nl.MustNet("a" + sfx)
		nl.MarkPI(a)
		x := nl.MustNet("x" + sfx)
		nl.MustGate("gx"+sfx, kind, x, a, sel)
		xs = append(xs, x)
	}
	mkX("0", logic.Nand, s)
	mkX("1", logic.Nand, s)
	mkX("2", logic.Nor, s2)
	mkX("3", logic.Nand, s)
	var bits []netlist.NetID
	for i, x := range xs {
		sfx := string(rune('0' + i))
		bit := nl.MustNet("bit" + sfx)
		nl.MustGate("gb"+sfx, logic.Nand, bit, x, x)
		bits = append(bits, bit)
	}
	a1, a2, b, a3 := bits[0], bits[1], bits[2], bits[3]
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	res := Identify(nl, 0)
	if !hasWord(res.Words, []netlist.NetID{a1, a2}) {
		t.Error("adjacent equal bits not grouped")
	}
	if !hasWord(res.Words, []netlist.NetID{b}) || !hasWord(res.Words, []netlist.NetID{a3}) {
		t.Errorf("sequential grouping must isolate the trailing bits: %v", res.Words)
	}
}

func contains(w []netlist.NetID, want []netlist.NetID) bool {
	set := map[netlist.NetID]bool{}
	for _, n := range w {
		set[n] = true
	}
	for _, n := range want {
		if !set[n] {
			return false
		}
	}
	return true
}

func hasWord(words [][]netlist.NetID, exact []netlist.NetID) bool {
	for _, w := range words {
		if len(w) != len(exact) {
			continue
		}
		if contains(w, exact) {
			return true
		}
	}
	return false
}
