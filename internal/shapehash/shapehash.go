// Package shapehash implements the baseline word-identification technique
// that DAC'15 Table 1 calls "Base": the shape-hashing matcher in the style
// of WordRev (Li et al., HOST'13). It shares the adjacency grouping and
// hash-key machinery with the control-signal technique — cones keyed as
// hash-consed (gate kind, sorted child key) tuples, so whole-cone equality
// is a single integer compare — but considers only the un-simplified
// netlist structure and groups only bits whose fanin cones match fully.
package shapehash

import (
	"gatewords/internal/cone"
	"gatewords/internal/group"
	"gatewords/internal/netlist"
)

// Result holds the generated word set of the baseline.
type Result struct {
	Words  [][]netlist.NetID
	Groups int // first-level adjacency groups visited
	Bits   int // candidate bits with analyzable cones
}

// Identify runs shape hashing on nl with the given fanin-cone depth
// (cone.DefaultDepth when depth <= 0).
func Identify(nl *netlist.Netlist, depth int) *Result {
	groups := group.Adjacent(nl, group.Options{})
	it := cone.NewInterner()
	b := cone.NewBuilder(nl, it, depth)
	res := &Result{Groups: len(groups)}
	for _, g := range groups {
		var prev *cone.BitCone
		var run []netlist.NetID
		flush := func() {
			if len(run) > 0 {
				res.Words = append(res.Words, run)
				run = nil
			}
		}
		for _, net := range g {
			bc := b.Bit(net)
			if bc == nil {
				flush()
				prev = nil
				continue
			}
			res.Bits++
			if prev == nil || !cone.FullMatch(prev, bc) {
				flush()
			}
			run = append(run, net)
			prev = bc
		}
		flush()
	}
	return res
}
