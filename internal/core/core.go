// Package core implements the word-identification procedure of DAC'15
// "On Using Control Signals for Word-Level Identification in A Gate-Level
// Netlist" (Tashjian & Davoodi) — the flow of the paper's Figure 2:
//
//  1. Find potential bits of a word by netlist-file adjacency (§2.2).
//  2. Within each group, form subgroups of bits with fully or partially
//     matching fanin-cone structure, remembering the dissimilar subtrees
//     (§2.3).
//  3. Identify the relevant control signals among the dissimilar subtrees
//     (§2.4).
//  4. Assign feasible values to one, then two (configurably three) control
//     signals at a time, simplify the circuit by forward/backward constant
//     propagation, and re-check whether the bits' cones have become fully
//     similar (§2.5). Successful assignments turn partially matching
//     subgroups into verified words.
//
// Subgroups whose bits remain strongly partially similar (every bit shares
// at least a Theta fraction of its subtrees with the subgroup's common
// structure) are still emitted as unverified words: partial-match grouping
// alone recovers words on benchmarks where no useful control signal exists,
// matching the paper's b03/b04 rows, which improve on the baseline with
// zero control signals found.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"gatewords/internal/cone"
	"gatewords/internal/ctrlsig"
	"gatewords/internal/eqcheck"
	"gatewords/internal/group"
	"gatewords/internal/guard"
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/obs"
	"gatewords/internal/reduce"
)

// Options configures the pipeline. The zero value selects the paper's
// settings: cone depth 4, at most two simultaneous control assignments,
// partial-group emission with cohesion threshold 1/2.
type Options struct {
	// Depth is the fanin-cone depth in levels of logic (default 4).
	Depth int
	// MaxAssign is the maximum number of control signals assigned
	// simultaneously, 1..3 (default 2, the paper's setting; 3 implements
	// the paper's future-work extension).
	MaxAssign int
	// Theta is the cohesion threshold for emitting a partially matching
	// subgroup as an unverified word: every bit must share at least this
	// fraction of its subtrees with the subgroup's common structure.
	// Default 0.5.
	Theta float64
	// NoPartialGroups disables the Theta rule, so only fully similar
	// (possibly after reduction) bit sets become words. Ablation knob.
	NoPartialGroups bool
	// MaxTrials caps assignment trials per subgroup (default 96).
	MaxTrials int
	// MaxControlSignals caps the relevant signals considered per subgroup
	// (default 8); the paper observes the count per word is small.
	MaxControlSignals int
	// DFFInputsOnly restricts candidate bits to flip-flop D inputs.
	DFFInputsOnly bool
	// CollectTrace records a human-readable decision log in Result.Trace.
	CollectTrace bool
	// Workers sets the number of adjacency groups processed concurrently:
	// 0 or 1 is sequential; negative selects GOMAXPROCS. Groups are
	// independent (the netlist is read-only during identification), and
	// results are merged in group order, so the output is identical to the
	// sequential run.
	Workers int
	// VerifyReduction proves, for every emitted word that relied on a
	// control-signal reduction, that each bit's rewritten cone is equivalent
	// to the original cone under the inferred constants (AIG + SAT, see
	// internal/eqcheck). Outcomes land in Stats.ConesProved / ConesRefuted /
	// ConesUnknown; refutations and undecided cones are itemized in
	// Result.ReductionChecks.
	VerifyReduction bool
	// VerifyMaxConflicts bounds the per-cone SAT effort when VerifyReduction
	// is on (0 = the eqcheck default; negative disables the SAT stage).
	VerifyMaxConflicts int
	// Context, when non-nil, bounds the run: cancellation (or a deadline) is
	// checked cooperatively at group, subgroup, and trial granularity. An
	// interrupted run returns the words emitted so far — every emitted word
	// is complete, never a half-merged subgroup — with Stats.Interrupted set.
	Context context.Context
	// Observer, when non-nil, receives per-stage wall times, work counters,
	// and peak gauges (see internal/obs). Every group — sequential or
	// parallel — records into a private per-group recorder; the per-group
	// recorders are merged into Observer in group order, so the observed
	// totals (and the Result) are independent of worker scheduling. A nil
	// Observer costs nothing on the hot path.
	Observer *obs.Recorder
	// Budgets bounds per-group pipeline work (cone scope, matching cross
	// product, assignment trials). A subgroup that exceeds a budget degrades
	// to the cheap full-structural match and is itemized in
	// Result.Degradations rather than aborting the run. The zero value is
	// unlimited.
	Budgets guard.Budgets
	// FailFast stops the run at the first recovered group failure: the
	// sequential path processes no further groups, and parallel workers stop
	// picking up new ones (in-flight groups still finish). Completed groups'
	// words are kept. Off by default: a failed group is isolated and the run
	// continues.
	FailFast bool
}

func (o Options) withDefaults() Options {
	if o.Depth <= 0 {
		o.Depth = cone.DefaultDepth
	}
	if o.Depth > cone.MaxDepth {
		// Out-of-range depths are clamped rather than rejected; the key
		// engine sizes per-level scratch by depth and memoizes per (net,
		// depth), so an unbounded depth is never meaningful.
		o.Depth = cone.MaxDepth
	}
	if o.MaxAssign <= 0 {
		o.MaxAssign = 2
	}
	if o.MaxAssign > 3 {
		o.MaxAssign = 3
	}
	if o.Theta <= 0 {
		o.Theta = 0.5
	}
	if o.MaxTrials <= 0 {
		o.MaxTrials = 96
	}
	if o.MaxControlSignals <= 0 {
		o.MaxControlSignals = 8
	}
	return o
}

// Word is one generated word.
type Word struct {
	Bits []netlist.NetID
	// Verified marks words whose bits' cones are fully similar, either
	// directly or on the reduced circuit under Assignment.
	Verified bool
	// Controls lists the control signals whose assignment produced this
	// word (empty when no reduction was needed).
	Controls []netlist.NetID
	// Assignment is the successful control-value assignment, if any.
	Assignment map[netlist.NetID]logic.Value
}

// Stats counts pipeline work for reporting and benchmarks.
type Stats struct {
	Groups        int // first-level adjacency groups
	Subgroups     int // partially/fully matched subgroups
	CandidateBits int // bits with analyzable cones
	// Trials counts assignment trials attempted, i.e. reduce.Apply
	// invocations: every trial the enumeration budget admitted, feasible or
	// not.
	Trials int
	// Reductions counts the trials whose propagation succeeded (no
	// contradiction), i.e. the trials that actually produced a reduced
	// circuit to re-match on. Trials - Reductions is the infeasible count.
	Reductions        int
	ReducedWords      int // words verified through reduction
	PartialGroupWords int // words emitted by the Theta rule
	// Cone-equivalence verification outcomes (Options.VerifyReduction).
	ConesProved  int // rewritten cones proved equivalent to their originals
	ConesRefuted int // cones with a counterexample — a soundness bug
	ConesUnknown int // cones the SAT budget could not decide
	// Interrupted reports that Options.Context was cancelled (or its
	// deadline expired) before the pipeline finished: the Result is the
	// partial output accumulated up to the interruption point.
	Interrupted bool
	// DegradedGroups counts adjacency groups in which at least one subgroup
	// hit an Options.Budgets limit and degraded to the full-structural match
	// (itemized in Result.Degradations).
	DegradedGroups int
}

// ReductionCheck itemizes one reduction-verification anomaly: a rewritten
// cone the equivalence checker refuted or could not decide. Proved cones are
// only counted (Stats.ConesProved) — on a healthy build every cone proves.
type ReductionCheck struct {
	Bit     netlist.NetID
	Name    string          // net name of the cone root
	Assign  string          // formatted control assignment
	Verdict string          // "not-equivalent" or "unknown"
	Stage   string          // pipeline stage that decided (or gave up)
	Cex     map[string]bool // counterexample, for refutations
}

// Result is the pipeline output.
type Result struct {
	Words []Word
	// UsedControlSignals are the distinct control signals whose assignments
	// contributed to emitted words (the paper's "#Control Signals" column).
	UsedControlSignals []netlist.NetID
	// FoundControlSignals are all distinct relevant control signals
	// identified, whether or not an assignment helped.
	FoundControlSignals []netlist.NetID
	// ReductionChecks lists verification anomalies (refuted or undecided
	// cones) when Options.VerifyReduction is set; empty on a sound run.
	ReductionChecks []ReductionCheck
	// Failures records every group whose pipeline panicked: the panic was
	// recovered at the group boundary, the group's partial output discarded,
	// and the remaining groups' words returned intact. Empty on a healthy
	// run.
	Failures []guard.GroupFailure
	// Degradations itemizes every subgroup that hit an Options.Budgets limit
	// and fell back to the full-structural match, in group order.
	Degradations []guard.Degradation
	Stats        Stats
	Trace        []string
}

// GeneratedWords returns just the bit sets, in emission order, for metric
// evaluation.
func (r *Result) GeneratedWords() [][]netlist.NetID {
	out := make([][]netlist.NetID, len(r.Words))
	for i, w := range r.Words {
		out[i] = w.Bits
	}
	return out
}

// Identify runs the full pipeline on nl.
func Identify(nl *netlist.Netlist, opt Options) *Result {
	opt = opt.withDefaults()
	var groups [][]netlist.NetID
	opt.Observer.Do(opt.Context, obs.StageGroup, func() {
		groups = group.Adjacent(nl, group.Options{DFFInputsOnly: opt.DFFInputsOnly})
	})

	workers := opt.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 && len(groups) > 1 {
		return identifyParallel(nl, opt, groups, workers)
	}

	outs := make([]groupOutcome, len(groups))
	for gi := range groups {
		outs[gi] = runGroup(nl, opt, gi, groups[gi])
		if opt.FailFast && outs[gi].failure != nil {
			break
		}
	}
	return mergeOutcomes(len(groups), outs, opt.Observer)
}

func newPipeline(nl *netlist.Netlist, opt Options) *pipeline {
	p := &pipeline{
		nl:     nl,
		opt:    opt,
		rec:    opt.Observer,
		it:     cone.NewInterner(),
		used:   make(map[netlist.NetID]bool),
		found:  make(map[netlist.NetID]bool),
		result: &Result{},
		stage:  "init",
	}
	p.b = cone.NewBuilder(nl, p.it, opt.Depth)
	return p
}

// groupOutcome is one adjacency group's contribution to the run: its partial
// Result, its private observer recorder (nil without an Observer), and the
// recovered failure if its pipeline panicked. A zero outcome (nil res) marks
// a group that never ran because FailFast stopped the run first.
type groupOutcome struct {
	res     *Result
	rec     *obs.Recorder
	failure *guard.GroupFailure
}

// runGroup runs one adjacency group through a fresh pipeline inside the
// group's failure domain. Each group gets a private interner/builder (hash
// keys are only ever compared within a group) and a private recorder, and
// runs under a recover boundary: a panic anywhere in the group's pipeline —
// including construction — becomes a GroupFailure, the group's partial
// result and observations are discarded wholesale (replaced by an empty
// Result and a recorder holding only the recovery count), and the caller
// merges the surviving groups as if the failed one had produced no words.
func runGroup(nl *netlist.Netlist, opt Options, gi int, nets []netlist.NetID) (out groupOutcome) {
	parent := opt.Observer
	if parent != nil {
		out.rec = obs.New()
		if parent.ProfileLabelsEnabled() {
			out.rec.EnableProfileLabels()
		}
		opt.Observer = out.rec
	}
	var p *pipeline
	defer func() {
		if v := recover(); v != nil {
			stage := "init"
			if p != nil {
				stage = p.stage
			}
			out.failure = guard.NewGroupFailure(gi, stage, v)
			out.res = &Result{}
			if parent != nil {
				out.rec = obs.New()
				out.rec.Add(obs.CtrPanicsRecovered, 1)
			}
		}
	}()
	p = newPipeline(nl, opt)
	p.group = gi
	if !p.cancelled() {
		p.processGroup(nets)
	}
	p.result.UsedControlSignals = sortedNets(p.used)
	p.result.FoundControlSignals = sortedNets(p.found)
	if len(p.result.Degradations) > 0 {
		p.result.Stats.DegradedGroups = 1
	}
	out.res = p.result
	return out
}

// mergeOutcomes folds per-group outcomes into one Result, in group order, so
// the output is identical between the sequential and parallel paths
// regardless of worker scheduling. Failed groups contribute their failure
// record and recovery counter; fail-fast-skipped groups (zero outcomes)
// contribute nothing.
func mergeOutcomes(nGroups int, outs []groupOutcome, parent *obs.Recorder) *Result {
	merged := &Result{}
	merged.Stats.Groups = nGroups
	used := make(map[netlist.NetID]bool)
	found := make(map[netlist.NetID]bool)
	for _, out := range outs {
		if out.failure != nil {
			merged.Failures = append(merged.Failures, *out.failure)
		}
		if parent != nil && out.rec != nil {
			parent.Merge(out.rec)
		}
		r := out.res
		if r == nil {
			continue
		}
		merged.Words = append(merged.Words, r.Words...)
		merged.Trace = append(merged.Trace, r.Trace...)
		merged.Stats.Subgroups += r.Stats.Subgroups
		merged.Stats.CandidateBits += r.Stats.CandidateBits
		merged.Stats.Trials += r.Stats.Trials
		merged.Stats.Reductions += r.Stats.Reductions
		merged.Stats.ReducedWords += r.Stats.ReducedWords
		merged.Stats.PartialGroupWords += r.Stats.PartialGroupWords
		merged.Stats.ConesProved += r.Stats.ConesProved
		merged.Stats.ConesRefuted += r.Stats.ConesRefuted
		merged.Stats.ConesUnknown += r.Stats.ConesUnknown
		merged.Stats.Interrupted = merged.Stats.Interrupted || r.Stats.Interrupted
		merged.Stats.DegradedGroups += r.Stats.DegradedGroups
		merged.ReductionChecks = append(merged.ReductionChecks, r.ReductionChecks...)
		merged.Degradations = append(merged.Degradations, r.Degradations...)
		for _, n := range r.UsedControlSignals {
			used[n] = true
		}
		for _, n := range r.FoundControlSignals {
			found[n] = true
		}
	}
	merged.UsedControlSignals = sortedNets(used)
	merged.FoundControlSignals = sortedNets(found)
	return merged
}

// identifyParallel fans adjacency groups out over a worker pool. Each group
// runs in its own failure domain (runGroup), and per-group outcomes merge in
// group order so the output matches the sequential pipeline exactly
// regardless of worker scheduling. Under FailFast, workers stop picking up
// new groups once any group fails; which in-flight groups complete depends
// on scheduling, so a fail-fast parallel result is best-effort (the
// non-fail-fast result is deterministic).
func identifyParallel(nl *netlist.Netlist, opt Options, groups [][]netlist.NetID, workers int) *Result {
	outs := make([]groupOutcome, len(groups))
	var failed atomic.Bool
	var wg sync.WaitGroup
	// Pool-level failures: panics that escape runGroup's per-group boundary
	// (pool bookkeeping itself panicking). The backstop keeps the process
	// alive and surfaces the failure in the merged result instead.
	var poolMu sync.Mutex
	var poolFailures []guard.GroupFailure
	// Buffered so the feed loop below can never block on a worker that died
	// in the backstop: every index is deposited up front regardless of how
	// many workers survive to drain it.
	work := make(chan int, len(groups))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer guard.Rescue("pool", func(f *guard.GroupFailure) {
				failed.Store(true)
				poolMu.Lock()
				poolFailures = append(poolFailures, *f)
				poolMu.Unlock()
			})
			for gi := range work {
				if opt.FailFast && failed.Load() {
					continue
				}
				outs[gi] = runGroup(nl, opt, gi, groups[gi])
				if outs[gi].failure != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for gi := range groups {
		work <- gi
	}
	close(work)
	wg.Wait()
	merged := mergeOutcomes(len(groups), outs, opt.Observer)
	merged.Failures = append(merged.Failures, poolFailures...)
	return merged
}

type pipeline struct {
	nl     *netlist.Netlist
	opt    Options
	rec    *obs.Recorder // nil disables observation at ~zero cost
	it     *cone.Interner
	b      *cone.Builder
	ov     *cone.Overlay // lazily created, reused across assignment trials
	used   map[netlist.NetID]bool
	found  map[netlist.NetID]bool
	result *Result
	// group is the adjacency-group index this pipeline is running (each
	// pipeline instance runs exactly one group; see runGroup).
	group int
	// stage tracks the last entered pipeline stage ("init" before the
	// first); runGroup's recover boundary reads it to attribute a panic.
	stage string
	// groupTrials counts assignment trials across the whole group, the
	// currency of Budgets.MaxTrialsPerGroup.
	groupTrials int
}

// enterStage marks the pipeline as inside the named stage — the label a
// recovered panic is attributed to — and gives guard.Inject its per-stage
// fault-injection point (a no-op unless a test planted a fault).
func (p *pipeline) enterStage(name string) {
	p.stage = name
	guard.Inject(name, p.group)
}

func (p *pipeline) tracef(format string, args ...any) {
	if p.opt.CollectTrace {
		p.result.Trace = append(p.result.Trace, fmt.Sprintf(format, args...))
	}
}

// cancelled reports whether Options.Context has been cancelled, latching
// Stats.Interrupted on the first observation. It is the single cooperative
// cancellation check, consulted before each group, each subgroup, and each
// assignment trial.
func (p *pipeline) cancelled() bool {
	if p.opt.Context == nil {
		return false
	}
	if p.result.Stats.Interrupted {
		return true
	}
	if p.opt.Context.Err() != nil {
		p.result.Stats.Interrupted = true
		return true
	}
	return false
}

// processGroup forms subgroups by sequential full-or-partial matching
// (§2.3), then resolves each. Matching is completed for the whole group
// before any subgroup is resolved so the match work is attributed to its own
// stage and so cancellation between subgroups never abandons a half-matched
// one.
func (p *pipeline) processGroup(nets []netlist.NetID) {
	var subgroups [][]*cone.BitCone
	p.rec.Do(p.opt.Context, obs.StageMatch, func() {
		p.enterStage(obs.StageMatch.String())
		var bits []*cone.BitCone
		flush := func() {
			if len(bits) > 0 {
				subgroups = append(subgroups, bits)
				bits = nil
			}
		}
		var prev *cone.BitCone
		for _, net := range nets {
			bc := p.b.Bit(net)
			if bc == nil {
				flush()
				prev = nil
				continue
			}
			p.result.Stats.CandidateBits++
			if prev != nil && !cone.FullMatch(prev, bc) && !cone.PartialMatch(prev, bc) {
				flush()
			}
			bits = append(bits, bc)
			prev = bc
		}
		flush()
	})
	for _, sg := range subgroups {
		if p.cancelled() {
			return
		}
		p.result.Stats.Subgroups++
		p.rec.Max(obs.GaugeSubgroupBits, int64(len(sg)))
		p.resolveSubgroup(sg)
	}
}

// resolveSubgroup turns one subgroup of partially/fully matching bits into
// generated words (§2.4 + §2.5).
func (p *pipeline) resolveSubgroup(bits []*cone.BitCone) {
	if len(bits) == 1 {
		p.emit(Word{Bits: []netlist.NetID{bits[0].Net}, Verified: true})
		return
	}
	common := cone.CommonKeys(bits)
	dissim := make([][]cone.Subtree, len(bits))
	totalDissim := 0
	for i, bc := range bits {
		dissim[i] = cone.Dissimilar(bc, common)
		totalDissim += len(dissim[i])
	}
	if totalDissim == 0 {
		p.emit(Word{Bits: bitNets(bits), Verified: true})
		return
	}

	// Budget gates, cheapest first. Each one degrades the subgroup to the
	// full-structural match instead of starting work it cannot finish.
	b := p.opt.Budgets
	if b.MaxSubgroupPairs > 0 && len(bits)*totalDissim > b.MaxSubgroupPairs {
		p.degrade(bits, guard.ReasonSubgroupPairs,
			fmt.Sprintf("%d bits x %d subtrees = %d pairs > budget %d",
				len(bits), totalDissim, len(bits)*totalDissim, b.MaxSubgroupPairs))
		return
	}
	if b.MaxTrialsPerGroup > 0 && p.groupTrials >= b.MaxTrialsPerGroup {
		p.degrade(bits, guard.ReasonTrials,
			fmt.Sprintf("group trial budget %d already spent", b.MaxTrialsPerGroup))
		return
	}

	// Fanin-closed scope of the subgroup's cones, computed once: per trial,
	// the dirty walk and re-keying stay inside it no matter how far the
	// reduction propagated. It is also the cone-size budget's measure.
	scope := p.subgroupScope(bits)
	if b.MaxConeGates > 0 && len(scope) > b.MaxConeGates {
		p.degrade(bits, guard.ReasonConeGates,
			fmt.Sprintf("cone scope %d nets > budget %d", len(scope), b.MaxConeGates))
		return
	}

	var signals []ctrlsig.Signal
	p.rec.Do(p.opt.Context, obs.StageCtrlSig, func() {
		p.enterStage(obs.StageCtrlSig.String())
		signals = ctrlsig.Find(p.nl, p.b, dissim, p.opt.Depth-1)
	})
	p.rec.Max(obs.GaugeControlSignals, int64(len(signals)))
	if len(signals) > p.opt.MaxControlSignals {
		signals = signals[:p.opt.MaxControlSignals]
	}
	for _, s := range signals {
		p.found[s.Net] = true
	}
	p.tracef("subgroup %s: %d dissimilar subtrees, %d control signals",
		p.nl.NetName(bits[0].Net), totalDissim, len(signals))

	baseClasses := classesByKey(bits, nil)
	bestSize := maxClassSize(baseClasses)
	var bestTrial *trialResult

	trials := 0
	stop := false
	truncated := false
	p.rec.Do(p.opt.Context, obs.StageTrial, func() {
		p.enterStage(obs.StageTrial.String())
		p.forEachAssignment(signals, func(assign map[netlist.NetID]logic.Value) bool {
			if stop || trials >= p.opt.MaxTrials || p.cancelled() {
				return false
			}
			if b.MaxTrialsPerGroup > 0 && p.groupTrials >= b.MaxTrialsPerGroup {
				// Mid-enumeration exhaustion truncates the search but keeps
				// the evidence gathered so far: the normal fallback below
				// still uses the best trial seen before the budget ran out.
				truncated = true
				return false
			}
			trials++
			p.groupTrials++
			p.result.Stats.Trials++
			p.rec.Add(obs.CtrTrials, 1)
			tr := p.tryAssignment(bits, scope, assign)
			if tr == nil {
				p.tracef("subgroup %s: trial %s infeasible", p.nl.NetName(bits[0].Net), p.formatAssign(assign))
				return true
			}
			p.tracef("subgroup %s: trial %s -> max class %d/%d", p.nl.NetName(bits[0].Net), p.formatAssign(assign), tr.maxClass, len(bits))
			if tr.maxClass == len(bits) {
				bestTrial = tr
				stop = true
				return false
			}
			if tr.maxClass > bestSize {
				bestSize = tr.maxClass
				bestTrial = tr
			}
			return true
		})
	})
	if p.result.Stats.Interrupted {
		// Cancelled mid-trial-loop: the subgroup's exploration is incomplete,
		// so emit nothing for it — a partial Result never contains a word
		// whose evidence was cut short.
		return
	}
	if truncated {
		p.recordDegradation(bits, guard.ReasonTrials,
			fmt.Sprintf("group trial budget %d exhausted after %d trials in this subgroup",
				b.MaxTrialsPerGroup, trials))
	}

	if bestTrial != nil && bestTrial.maxClass == len(bits) {
		// The assignment made every bit fully similar: one verified word.
		ctrls := assignNets(bestTrial.assign)
		for _, c := range ctrls {
			p.used[c] = true
		}
		p.result.Stats.ReducedWords++
		p.tracef("subgroup %s: verified %d-bit word via assignment %s",
			p.nl.NetName(bits[0].Net), len(bits), p.formatAssign(bestTrial.assign))
		if p.opt.VerifyReduction {
			p.rec.Do(p.opt.Context, obs.StageVerify, func() { p.verifyTrial(bits, bestTrial) })
		}
		p.emit(Word{Bits: bitNets(bits), Verified: true, Controls: ctrls, Assignment: bestTrial.assign})
		return
	}

	// No assignment equalized the whole subgroup. If the bits are still
	// strongly cohesive, keep them together as an unverified word.
	if !p.opt.NoPartialGroups && p.cohesive(bits, common) {
		p.result.Stats.PartialGroupWords++
		p.tracef("subgroup %s: emitted as cohesive partial group (%d bits)",
			p.nl.NetName(bits[0].Net), len(bits))
		p.emit(Word{Bits: bitNets(bits)})
		return
	}

	// Otherwise fall back to the best full-similarity classes seen: the
	// best reducing assignment if it beat the unreduced structure, else the
	// unreduced classes.
	classes := baseClasses
	var ctrls []netlist.NetID
	var assign map[netlist.NetID]logic.Value
	if bestTrial != nil {
		classes = bestTrial.classes
		ctrls = assignNets(bestTrial.assign)
		assign = bestTrial.assign
		for _, c := range ctrls {
			p.used[c] = true
		}
		p.result.Stats.ReducedWords++
		if p.opt.VerifyReduction {
			// Verify only the bits that ride the reduction into a word:
			// members of multi-bit classes.
			inWord := make(map[netlist.NetID]bool)
			for _, cls := range classes {
				if len(cls) >= 2 {
					for _, n := range cls {
						inWord[n] = true
					}
				}
			}
			var vbits []*cone.BitCone
			for _, bc := range bits {
				if inWord[bc.Net] {
					vbits = append(vbits, bc)
				}
			}
			if len(vbits) > 0 {
				p.rec.Do(p.opt.Context, obs.StageVerify, func() { p.verifyTrial(vbits, bestTrial) })
			}
		}
	}
	for _, cls := range classes {
		// Only multi-bit classes carry verification evidence: their cones
		// became fully similar (possibly under the best assignment).
		// Leftover singletons matched nothing and stay unverified.
		w := Word{Bits: cls, Verified: len(cls) >= 2}
		if len(cls) >= 2 && ctrls != nil {
			w.Controls = ctrls
			w.Assignment = assign
		}
		p.emit(w)
	}
}

// recordDegradation itemizes one budget violation and counts it for the
// observer. It does not emit words: the caller decides whether the subgroup
// keeps its partial evidence (trial truncation) or falls all the way back to
// the structural classes (degrade).
func (p *pipeline) recordDegradation(bits []*cone.BitCone, reason, detail string) {
	p.result.Degradations = append(p.result.Degradations, guard.Degradation{
		Group:    p.group,
		Subgroup: p.nl.NetName(bits[0].Net),
		Reason:   reason,
		Detail:   detail,
	})
	p.rec.Add(obs.CtrDegradedSubgroups, 1)
	p.tracef("subgroup %s: degraded (%s): %s", p.nl.NetName(bits[0].Net), reason, detail)
}

// degrade is the budget-exceeded fallback: record the degradation and emit
// the subgroup's full-structural word classes — what the shape-hashing
// baseline would produce — skipping control-signal discovery and trials
// entirely. Multi-bit classes carry full-similarity evidence and stay
// verified; leftover singletons matched nothing.
func (p *pipeline) degrade(bits []*cone.BitCone, reason, detail string) {
	p.recordDegradation(bits, reason, detail)
	for _, cls := range classesByKey(bits, nil) {
		p.emit(Word{Bits: cls, Verified: len(cls) >= 2})
	}
}

// cohesive reports whether every bit shares at least Theta of its subtrees
// with the subgroup's common structure.
func (p *pipeline) cohesive(bits []*cone.BitCone, common []cone.KeyID) bool {
	if len(common) == 0 {
		return false
	}
	for _, bc := range bits {
		if cone.SimilarFraction(bc, common) < p.opt.Theta {
			return false
		}
	}
	return true
}

type trialResult struct {
	assign   map[netlist.NetID]logic.Value
	red      *reduce.Reduction
	classes  [][]netlist.NetID
	maxClass int
}

// verifyTrial proves each bit cone of the subgroup equivalent, under tr's
// reduction, to its original — only the winning trial of a subgroup is
// verified, so cost scales with emitted words, not with trials. bits is
// restricted to the bits that actually rode the reduction into a word.
func (p *pipeline) verifyTrial(bits []*cone.BitCone, tr *trialResult) {
	p.enterStage(obs.StageVerify.String())
	roots := make([]netlist.NetID, len(bits))
	for i, bc := range bits {
		roots[i] = bc.Net
	}
	// RetryUnknown gives budget-exhausted cones an escalating-retry ladder:
	// the budget doubles per retry, so undecided verdicts cost extra effort
	// only where the first attempt came up empty.
	vr := tr.red.VerifyCones(roots, p.opt.Depth, eqcheck.Options{
		MaxConflicts: p.opt.VerifyMaxConflicts,
		RetryUnknown: 2,
		Observer:     p.rec,
	})
	p.result.Stats.ConesProved += vr.Proved
	p.result.Stats.ConesRefuted += vr.Refuted
	p.result.Stats.ConesUnknown += vr.Unknown
	for _, c := range vr.Checks {
		if c.Result.Verdict == eqcheck.Equivalent {
			continue
		}
		p.result.ReductionChecks = append(p.result.ReductionChecks, ReductionCheck{
			Bit:     c.Root,
			Name:    c.Name,
			Assign:  p.formatAssign(tr.assign),
			Verdict: c.Result.Verdict.String(),
			Stage:   c.Result.Stage,
			Cex:     c.Result.Cex,
		})
		p.tracef("VERIFY %s under %s: %s (stage %s)",
			c.Name, p.formatAssign(tr.assign), c.Result.Verdict, c.Result.Stage)
	}
}

// subgroupScope returns the union of the bits' fanin-cone nets: each bit,
// its subtree roots, and every net within cone depth below them. The set is
// fanin-closed over the keyed subtrees, which is the soundness condition for
// reduce.DirtyDistancesIn.
func (p *pipeline) subgroupScope(bits []*cone.BitCone) map[netlist.NetID]bool {
	scope := make(map[netlist.NetID]bool)
	for _, bc := range bits {
		scope[bc.Net] = true
		for _, st := range bc.Subtrees {
			p.b.CollectSubtreeNets(st.Root, p.opt.Depth-1, scope)
		}
	}
	return scope
}

// tryAssignment propagates one assignment and regroups the subgroup's bits
// by full similarity on the reduced circuit. It returns nil for infeasible
// (contradictory) assignments or ones that constant-fold a bit away.
//
// Re-matching is incremental: instead of re-deriving every key under a
// fresh Builder per trial, a cone.Overlay reuses the subgroup builder's
// memoized keys for all subtrees out of the reduction's reach and re-keys
// only nets within Depth fanin levels of a changed net. The dirty walk is
// confined to the subgroup's cone scope, so trial cost is bounded by the
// subgroup's cones, not by the size of the reduced region.
func (p *pipeline) tryAssignment(bits []*cone.BitCone, scope map[netlist.NetID]bool, assign map[netlist.NetID]logic.Value) *trialResult {
	red, err := reduce.ApplyObserved(p.nl, assign, p.rec)
	if err != nil {
		p.tracef("reduce conflict: %v", err)
		return nil
	}
	p.result.Stats.Reductions++
	p.rec.Add(obs.CtrReductions, 1)
	dist := red.DirtyDistancesIn(scope, p.opt.Depth-1)
	if p.ov == nil {
		p.ov = p.b.Overlay(red, dist)
	} else {
		p.ov.Reset(red, dist)
	}
	newBits := make([]*cone.BitCone, len(bits))
	for i, bc := range bits {
		nb := p.ov.Bit(bc.Net)
		if nb == nil {
			p.tracef("bit %s simplified away (const=%v)", p.nl.NetName(bc.Net), red.Value(bc.Net))
			return nil
		}
		newBits[i] = nb
	}
	classes := classesByKey(newBits, bits)
	return &trialResult{assign: assign, red: red, classes: classes, maxClass: maxClassSize(classes)}
}

// forEachAssignment enumerates feasible assignments: singles first, then
// pairs, then triples, bounded by MaxAssign. fn returns false to stop.
func (p *pipeline) forEachAssignment(signals []ctrlsig.Signal, fn func(map[netlist.NetID]logic.Value) bool) {
	single := func() bool {
		for _, s := range signals {
			for _, v := range s.Values {
				if !fn(map[netlist.NetID]logic.Value{s.Net: v}) {
					return false
				}
			}
		}
		return true
	}
	pair := func() bool {
		for i := 0; i < len(signals); i++ {
			for j := i + 1; j < len(signals); j++ {
				for _, vi := range signals[i].Values {
					for _, vj := range signals[j].Values {
						if !fn(map[netlist.NetID]logic.Value{signals[i].Net: vi, signals[j].Net: vj}) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	triple := func() bool {
		for i := 0; i < len(signals); i++ {
			for j := i + 1; j < len(signals); j++ {
				for k := j + 1; k < len(signals); k++ {
					for _, vi := range signals[i].Values {
						for _, vj := range signals[j].Values {
							for _, vk := range signals[k].Values {
								m := map[netlist.NetID]logic.Value{
									signals[i].Net: vi,
									signals[j].Net: vj,
									signals[k].Net: vk,
								}
								if !fn(m) {
									return false
								}
							}
						}
					}
				}
			}
		}
		return true
	}
	if !single() {
		return
	}
	if p.opt.MaxAssign >= 2 && !pair() {
		return
	}
	if p.opt.MaxAssign >= 3 {
		triple()
	}
}

func (p *pipeline) emit(w Word) { p.result.Words = append(p.result.Words, w) }

func (p *pipeline) formatAssign(assign map[netlist.NetID]logic.Value) string {
	nets := assignNets(assign)
	s := ""
	for i, n := range nets {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%s", p.nl.NetName(n), assign[n])
	}
	return s
}

// classesByKey groups bits by whole-cone key equality, preserving first-seen
// order. orig, when non-nil, supplies the net IDs to report (the bits'
// identities in the original netlist).
func classesByKey(bits []*cone.BitCone, orig []*cone.BitCone) [][]netlist.NetID {
	type class struct {
		kind logic.Kind
		key  cone.KeyID
	}
	index := make(map[class]int)
	var classes [][]netlist.NetID
	for i, bc := range bits {
		net := bc.Net
		if orig != nil {
			net = orig[i].Net
		}
		c := class{kind: bc.RootKind, key: bc.FullKey}
		if ci, ok := index[c]; ok {
			classes[ci] = append(classes[ci], net)
			continue
		}
		index[c] = len(classes)
		classes = append(classes, []netlist.NetID{net})
	}
	return classes
}

func maxClassSize(classes [][]netlist.NetID) int {
	m := 0
	for _, c := range classes {
		if len(c) > m {
			m = len(c)
		}
	}
	return m
}

func bitNets(bits []*cone.BitCone) []netlist.NetID {
	out := make([]netlist.NetID, len(bits))
	for i, bc := range bits {
		out[i] = bc.Net
	}
	return out
}

func assignNets(assign map[netlist.NetID]logic.Value) []netlist.NetID {
	out := make([]netlist.NetID, 0, len(assign))
	for n := range assign {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedNets(m map[netlist.NetID]bool) []netlist.NetID {
	out := make([]netlist.NetID, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
