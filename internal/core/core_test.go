package core

import (
	"strings"
	"testing"

	"gatewords/internal/cone"
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// wordNet builds one Figure-1-style word at gate level (internals first,
// roots adjacent): bit_i = NAND3(X_i, Y_i, Z_i) with X/Y similar and Z
// divergent, killable by k=0 (k = NAND(p,q) decode).
func wordNet(t *testing.T, nBits int, secondSignal bool) (*netlist.Netlist, []netlist.NetID, netlist.NetID, netlist.NetID) {
	t.Helper()
	nl := netlist.New("w")
	pi := func(n string) netlist.NetID {
		id := nl.MustNet(n)
		nl.MarkPI(id)
		return id
	}
	p, q := pi("p"), pi("q")
	s1, s2 := pi("s1"), pi("s2")
	k := nl.MustNet("k")
	nl.MustGate("gk", logic.Nand, k, p, q)
	k2 := netlist.NoNet
	if secondSignal {
		r, w := pi("r"), pi("w")
		k2 = nl.MustNet("k2")
		nl.MustGate("gk2", logic.Nand, k2, r, w)
	}
	type spec struct{ x, y, z netlist.NetID }
	var specs []spec
	for i := 0; i < nBits; i++ {
		sfx := string(rune('0' + i))
		a, b, c := pi("a"+sfx), pi("b"+sfx), pi("c"+sfx)
		x := nl.MustNet("x" + sfx)
		nl.MustGate("gx"+sfx, logic.Nand, x, a, s1)
		y := nl.MustNet("y" + sfx)
		nl.MustGate("gy"+sfx, logic.Nand, y, b, s2)
		z := nl.MustNet("z" + sfx)
		switch {
		case secondSignal && i >= nBits/2:
			// High half killable only by k2, but contains both signals.
			inner := nl.MustNet("zi" + sfx)
			nl.MustGate("gzi"+sfx, logic.Nand, inner, c, k)
			nl.MustGate("gz"+sfx, logic.Oai21, z, inner, inner, k2)
		case secondSignal:
			inner := nl.MustNet("zi" + sfx)
			nl.MustGate("gzi"+sfx, logic.Nand, inner, c, k2)
			nl.MustGate("gz"+sfx, logic.Nand, z, inner, k)
		case i == 0:
			nl.MustGate("gz"+sfx, logic.Nand, z, c, k)
		case i == 1:
			m := pi("m" + sfx)
			nl.MustGate("gz"+sfx, logic.Nand, z, c, m, k)
		default:
			inner := nl.MustNet("zi" + sfx)
			nl.MustGate("gzi"+sfx, logic.Nand, inner, c, pi("m"+sfx))
			nl.MustGate("gz"+sfx, logic.Nand, z, inner, k)
		}
		specs = append(specs, spec{x, y, z})
	}
	var bits []netlist.NetID
	for i, s := range specs {
		bit := nl.MustNet("bit" + string(rune('0'+i)))
		nl.MustGate("gb"+string(rune('0'+i)), logic.Nand, bit, s.x, s.y, s.z)
		bits = append(bits, bit)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl, bits, k, k2
}

func findWord(res *Result, bits []netlist.NetID) *Word {
	for i := range res.Words {
		set := map[netlist.NetID]bool{}
		for _, n := range res.Words[i].Bits {
			set[n] = true
		}
		all := true
		for _, b := range bits {
			if !set[b] {
				all = false
				break
			}
		}
		if all {
			return &res.Words[i]
		}
	}
	return nil
}

func TestIdentifySingleControlSignal(t *testing.T) {
	nl, bits, k, _ := wordNet(t, 4, false)
	res := Identify(nl, Options{CollectTrace: true})
	w := findWord(res, bits)
	if w == nil {
		t.Fatalf("word not found; trace: %v", res.Trace)
	}
	if !w.Verified {
		t.Errorf("word not verified; trace: %v", res.Trace)
	}
	if len(w.Controls) != 1 || w.Controls[0] != k {
		t.Errorf("controls = %v, want [k]; trace: %v", w.Controls, res.Trace)
	}
	if w.Assignment[k] != logic.Zero {
		t.Errorf("assignment = %v", w.Assignment)
	}
	if res.Stats.ReducedWords != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func TestIdentifyPairAssignment(t *testing.T) {
	nl, bits, k, k2 := wordNet(t, 4, true)
	res := Identify(nl, Options{CollectTrace: true})
	w := findWord(res, bits)
	if w == nil || !w.Verified {
		t.Fatalf("word not verified; trace: %v", res.Trace)
	}
	if len(w.Controls) != 2 {
		t.Fatalf("controls = %v, want pair {k, k2}; trace: %v", w.Controls, res.Trace)
	}
	got := map[netlist.NetID]bool{w.Controls[0]: true, w.Controls[1]: true}
	if !got[k] || !got[k2] {
		t.Errorf("controls = %v, want {%d,%d}", w.Controls, k, k2)
	}
}

func TestIdentifyMaxAssignOneFailsPair(t *testing.T) {
	nl, bits, _, _ := wordNet(t, 4, true)
	res := Identify(nl, Options{MaxAssign: 1, NoPartialGroups: true})
	w := findWord(res, bits)
	if w != nil && w.Verified && len(w.Controls) == 2 {
		t.Error("pair assignment used despite MaxAssign=1")
	}
	// With the cohesion rule disabled and only single assignments, the
	// word cannot be emitted whole.
	if w != nil {
		t.Errorf("word found whole with MaxAssign=1 and no partial groups: %+v", w)
	}
}

func TestIdentifyCohesionRule(t *testing.T) {
	// Without control signals (divergent subtrees over disjoint nets), the
	// cohesion rule still emits the whole subgroup.
	nl := netlist.New("t")
	pi := func(n string) netlist.NetID {
		id := nl.MustNet(n)
		nl.MarkPI(id)
		return id
	}
	s1, s2 := pi("s1"), pi("s2")
	type spec struct{ x, y, z netlist.NetID }
	var specs []spec
	kinds := []logic.Kind{logic.And, logic.Or, logic.Xor}
	for i := 0; i < 3; i++ {
		sfx := string(rune('0' + i))
		a, b, u, v := pi("a"+sfx), pi("b"+sfx), pi("u"+sfx), pi("v"+sfx)
		x := nl.MustNet("x" + sfx)
		nl.MustGate("gx"+sfx, logic.Nand, x, a, s1)
		y := nl.MustNet("y" + sfx)
		nl.MustGate("gy"+sfx, logic.Nand, y, b, s2)
		z := nl.MustNet("z" + sfx)
		nl.MustGate("gz"+sfx, kinds[i], z, u, v)
		specs = append(specs, spec{x, y, z})
	}
	var bits []netlist.NetID
	for i, s := range specs {
		bit := nl.MustNet("bit" + string(rune('0'+i)))
		nl.MustGate("gb"+string(rune('0'+i)), logic.Nand, bit, s.x, s.y, s.z)
		bits = append(bits, bit)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	res := Identify(nl, Options{})
	w := findWord(res, bits)
	if w == nil {
		t.Fatal("cohesive subgroup not emitted")
	}
	if w.Verified || len(w.Controls) != 0 {
		t.Errorf("cohesion-rule word must be unverified and control-free: %+v", w)
	}
	if res.Stats.PartialGroupWords != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}

	// Ablation: with the rule off the word is not emitted whole.
	res = Identify(nl, Options{NoPartialGroups: true})
	if findWord(res, bits) != nil {
		t.Error("NoPartialGroups still emitted the cohesive subgroup")
	}
}

func TestIdentifyFullySimilarNeedsNoControls(t *testing.T) {
	nl := netlist.New("t")
	pi := func(n string) netlist.NetID {
		id := nl.MustNet(n)
		nl.MarkPI(id)
		return id
	}
	s := pi("s")
	var xs, bits []netlist.NetID
	for i := 0; i < 3; i++ {
		sfx := string(rune('0' + i))
		a := pi("a" + sfx)
		x := nl.MustNet("x" + sfx)
		nl.MustGate("gx"+sfx, logic.Nand, x, a, s)
		xs = append(xs, x)
	}
	for i, x := range xs {
		bit := nl.MustNet("bit" + string(rune('0'+i)))
		nl.MustGate("gb"+string(rune('0'+i)), logic.Nand, bit, x, x)
		bits = append(bits, bit)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	res := Identify(nl, Options{})
	w := findWord(res, bits)
	if w == nil || !w.Verified || len(w.Controls) != 0 {
		t.Fatalf("fully similar word mishandled: %+v", w)
	}
	if res.Stats.Reductions != 0 {
		t.Errorf("no reductions expected: %+v", res.Stats)
	}
}

func TestIdentifyDeterministic(t *testing.T) {
	nl, _, _, _ := wordNet(t, 4, true)
	a := Identify(nl, Options{})
	b := Identify(nl, Options{})
	if len(a.Words) != len(b.Words) {
		t.Fatal("word count differs across runs")
	}
	for i := range a.Words {
		if len(a.Words[i].Bits) != len(b.Words[i].Bits) {
			t.Fatal("word sizes differ across runs")
		}
		for j := range a.Words[i].Bits {
			if a.Words[i].Bits[j] != b.Words[i].Bits[j] {
				t.Fatal("word bits differ across runs")
			}
		}
	}
	if len(a.UsedControlSignals) != len(b.UsedControlSignals) {
		t.Fatal("control signals differ across runs")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Depth != 4 || o.MaxAssign != 2 || o.Theta != 0.5 || o.MaxTrials != 96 || o.MaxControlSignals != 8 {
		t.Errorf("defaults: %+v", o)
	}
	if o := (Options{MaxAssign: 9}).withDefaults(); o.MaxAssign != 3 {
		t.Errorf("MaxAssign clamp: %d", o.MaxAssign)
	}
}

func TestGeneratedWords(t *testing.T) {
	nl, bits, _, _ := wordNet(t, 3, false)
	res := Identify(nl, Options{})
	gen := res.GeneratedWords()
	if len(gen) != len(res.Words) {
		t.Fatal("length mismatch")
	}
	_ = bits
}

func TestOptionsDepthClamp(t *testing.T) {
	if o := (Options{Depth: 1 << 20}).withDefaults(); o.Depth != cone.MaxDepth {
		t.Errorf("Depth clamp: %d, want %d", o.Depth, cone.MaxDepth)
	}
	if o := (Options{Depth: -3}).withDefaults(); o.Depth != cone.DefaultDepth {
		t.Errorf("Depth default: %d, want %d", o.Depth, cone.DefaultDepth)
	}
}

// TestStatsTrialsVsReductions pins the accounting contract: Trials counts
// every reduce.Apply invocation the enumeration admitted; Reductions counts
// only the feasible ones. The trace records each, so the counters must agree
// with the trace line-for-line.
func TestStatsTrialsVsReductions(t *testing.T) {
	nl, _, _, _ := wordNet(t, 4, true)
	res := Identify(nl, Options{CollectTrace: true})
	trialLines, classLines := 0, 0
	for _, line := range res.Trace {
		if strings.Contains(line, ": trial ") {
			trialLines++
		}
		if strings.Contains(line, "-> max class") {
			classLines++
		}
	}
	if res.Stats.Trials != trialLines {
		t.Errorf("Stats.Trials = %d, %d trial lines in trace", res.Stats.Trials, trialLines)
	}
	if res.Stats.Reductions != classLines {
		t.Errorf("Stats.Reductions = %d, %d feasible-trial lines in trace", res.Stats.Reductions, classLines)
	}
	if res.Stats.Reductions > res.Stats.Trials {
		t.Errorf("Reductions %d exceeds Trials %d", res.Stats.Reductions, res.Stats.Trials)
	}
	if res.Stats.Trials == 0 {
		t.Error("expected at least one trial on the two-signal circuit")
	}
}

// TestTryAssignmentAccounting drives tryAssignment directly: an infeasible
// assignment must not count as a reduction, a feasible one must.
func TestTryAssignmentAccounting(t *testing.T) {
	nl := netlist.New("t")
	pi := func(n string) netlist.NetID {
		id := nl.MustNet(n)
		nl.MarkPI(id)
		return id
	}
	k, a, b := pi("k"), pi("a"), pi("b")
	z := nl.MustNet("z")
	nl.MustGate("gz", logic.Not, z, k)
	bit := nl.MustNet("bit")
	nl.MustGate("gb", logic.Nand, bit, a, b)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	p := newPipeline(nl, Options{}.withDefaults())
	bits := []*cone.BitCone{p.b.Bit(bit)}
	if bits[0] == nil {
		t.Fatal("no cone for bit")
	}
	scope := p.subgroupScope(bits)

	// k=0 forces z=1; also asserting z=0 is a contradiction.
	if tr := p.tryAssignment(bits, scope, map[netlist.NetID]logic.Value{k: logic.Zero, z: logic.Zero}); tr != nil {
		t.Fatal("contradictory assignment accepted")
	}
	if p.result.Stats.Reductions != 0 {
		t.Errorf("infeasible trial counted as reduction: %+v", p.result.Stats)
	}

	tr := p.tryAssignment(bits, scope, map[netlist.NetID]logic.Value{k: logic.Zero})
	if tr == nil {
		t.Fatal("feasible assignment rejected")
	}
	if p.result.Stats.Reductions != 1 {
		t.Errorf("feasible trial not counted: %+v", p.result.Stats)
	}
	if tr.maxClass != 1 || len(tr.classes) != 1 {
		t.Errorf("trial classes: %+v", tr)
	}
}

// TestFallbackSingletonsUnverified is the regression test for the
// tautological Verified flag: when a subgroup neither equalizes under any
// assignment nor passes the cohesion test, the fallback classes that are
// singletons carry no verification evidence and must be emitted unverified.
func TestFallbackSingletonsUnverified(t *testing.T) {
	nl := netlist.New("t")
	pi := func(n string) netlist.NetID {
		id := nl.MustNet(n)
		nl.MarkPI(id)
		return id
	}
	s := pi("s")
	zKinds := [][2]logic.Kind{
		{logic.And, logic.Or},
		{logic.Xor, logic.Nor},
		{logic.Xnor, logic.Aoi21},
	}
	type spec struct{ x, z1, z2 netlist.NetID }
	var specs []spec
	for i := 0; i < 3; i++ {
		sfx := string(rune('0' + i))
		a := pi("a" + sfx)
		x := nl.MustNet("x" + sfx)
		nl.MustGate("gx"+sfx, logic.Nand, x, a, s)
		// Two divergent subtrees per bit over bit-private PIs: similarity is
		// 1/3 < Theta, and the dissimilar regions share no nets, so no
		// control signal exists and no assignment is ever tried.
		u, v, w, r := pi("u"+sfx), pi("v"+sfx), pi("w"+sfx), pi("r"+sfx)
		z1 := nl.MustNet("z1" + sfx)
		nl.MustGate("gz1"+sfx, zKinds[i][0], z1, u, v)
		z2 := nl.MustNet("z2" + sfx)
		if zKinds[i][1] == logic.Aoi21 {
			nl.MustGate("gz2"+sfx, zKinds[i][1], z2, w, r, pi("t"+sfx))
		} else {
			nl.MustGate("gz2"+sfx, zKinds[i][1], z2, w, r)
		}
		specs = append(specs, spec{x, z1, z2})
	}
	var bits []netlist.NetID
	for i, sp := range specs {
		sfx := string(rune('0' + i))
		bit := nl.MustNet("bit" + sfx)
		nl.MustGate("gb"+sfx, logic.Nand, bit, sp.x, sp.z1, sp.z2)
		bits = append(bits, bit)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	res := Identify(nl, Options{CollectTrace: true})
	if w := findWord(res, bits); w != nil {
		t.Fatalf("subgroup emitted whole despite cohesion failure: %+v (trace %v)", w, res.Trace)
	}
	for _, b := range bits {
		w := findWord(res, []netlist.NetID{b})
		if w == nil {
			t.Fatalf("bit %s not emitted; trace: %v", nl.NetName(b), res.Trace)
		}
		if len(w.Bits) != 1 {
			continue // part of a larger (verified) class, not this bug's path
		}
		if w.Verified {
			t.Errorf("fallback singleton %s emitted as verified", nl.NetName(b))
		}
	}
}
