package core

import (
	"reflect"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// bigNet stitches several independent word structures together so there are
// enough adjacency groups for parallelism to engage.
func bigNet(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl, _, _, _ := wordNet(t, 4, false)
	// wordNet builds into a fresh netlist; replicate more structures by
	// hand: several uniform columns of different shapes.
	add := func(prefix string, n int) {
		s := nl.MustNet(prefix + "_s")
		nl.MarkPI(s)
		var xs []netlist.NetID
		for i := 0; i < n; i++ {
			sfx := prefix + string(rune('0'+i))
			a := nl.MustNet("a" + sfx)
			nl.MarkPI(a)
			x := nl.MustNet("x" + sfx)
			nl.MustGate("gx"+sfx, pickKind(i), x, a, s)
			xs = append(xs, x)
		}
		for i, x := range xs {
			bit := nl.MustNet("bit" + prefix + string(rune('0'+i)))
			nl.MustGate("gb"+prefix+string(rune('0'+i)), pickKind(0), bit, x, x)
		}
	}
	for _, p := range []string{"p", "q", "r", "w", "v"} {
		add(p, 4)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func pickKind(i int) logic.Kind {
	kinds := []logic.Kind{logic.Nand, logic.Nor, logic.And, logic.Or}
	return kinds[i%len(kinds)]
}

func TestParallelMatchesSequential(t *testing.T) {
	nl := bigNet(t)
	seq := Identify(nl, Options{})
	for _, workers := range []int{2, 4, -1} {
		par := Identify(nl, Options{Workers: workers})
		if !reflect.DeepEqual(seq.GeneratedWords(), par.GeneratedWords()) {
			t.Fatalf("workers=%d: words differ", workers)
		}
		if !reflect.DeepEqual(seq.UsedControlSignals, par.UsedControlSignals) {
			t.Fatalf("workers=%d: used control signals differ", workers)
		}
		if !reflect.DeepEqual(seq.FoundControlSignals, par.FoundControlSignals) {
			t.Fatalf("workers=%d: found control signals differ", workers)
		}
		if seq.Stats.Subgroups != par.Stats.Subgroups ||
			seq.Stats.CandidateBits != par.Stats.CandidateBits ||
			seq.Stats.ReducedWords != par.Stats.ReducedWords {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", workers, seq.Stats, par.Stats)
		}
	}
}
