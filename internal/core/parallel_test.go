package core

import (
	"context"
	"reflect"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/obs"
)

// bigNet stitches several independent word structures together so there are
// enough adjacency groups for parallelism to engage.
func bigNet(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl, _, _, _ := wordNet(t, 4, false)
	// wordNet builds into a fresh netlist; replicate more structures by
	// hand: several uniform columns of different shapes.
	add := func(prefix string, n int) {
		s := nl.MustNet(prefix + "_s")
		nl.MarkPI(s)
		var xs []netlist.NetID
		for i := 0; i < n; i++ {
			sfx := prefix + string(rune('0'+i))
			a := nl.MustNet("a" + sfx)
			nl.MarkPI(a)
			x := nl.MustNet("x" + sfx)
			nl.MustGate("gx"+sfx, pickKind(i), x, a, s)
			xs = append(xs, x)
		}
		for i, x := range xs {
			bit := nl.MustNet("bit" + prefix + string(rune('0'+i)))
			nl.MustGate("gb"+prefix+string(rune('0'+i)), pickKind(0), bit, x, x)
		}
	}
	for _, p := range []string{"p", "q", "r", "w", "v"} {
		add(p, 4)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func pickKind(i int) logic.Kind {
	kinds := []logic.Kind{logic.Nand, logic.Nor, logic.And, logic.Or}
	return kinds[i%len(kinds)]
}

func TestParallelMatchesSequential(t *testing.T) {
	nl := bigNet(t)
	seqRec := obs.New()
	seq := Identify(nl, Options{Observer: seqRec})
	if seq.Stats.Interrupted {
		t.Fatal("sequential run without a context marked interrupted")
	}
	for _, workers := range []int{2, 4, 8, -1} {
		parRec := obs.New()
		par := Identify(nl, Options{Workers: workers, Observer: parRec})
		if !reflect.DeepEqual(seq.GeneratedWords(), par.GeneratedWords()) {
			t.Fatalf("workers=%d: words differ", workers)
		}
		if !reflect.DeepEqual(seq.UsedControlSignals, par.UsedControlSignals) {
			t.Fatalf("workers=%d: used control signals differ", workers)
		}
		if !reflect.DeepEqual(seq.FoundControlSignals, par.FoundControlSignals) {
			t.Fatalf("workers=%d: found control signals differ", workers)
		}
		// The full Stats struct — including Interrupted and the verification
		// counters — must match the sequential run exactly: parallel merging
		// is in group order and groups are independent.
		if seq.Stats != par.Stats {
			t.Fatalf("workers=%d: stats differ:\nseq %+v\npar %+v", workers, seq.Stats, par.Stats)
		}
		// The merged observer must agree with the sequential one on
		// everything deterministic: work counters, peak gauges, and span
		// counts. (Stage wall times are scheduling-dependent and excluded.)
		for c := obs.Counter(0); c < obs.NumCounters; c++ {
			if seqRec.Count(c) != parRec.Count(c) {
				t.Errorf("workers=%d: counter %s = %d, seq %d", workers, c, parRec.Count(c), seqRec.Count(c))
			}
		}
		for g := obs.Gauge(0); g < obs.NumGauges; g++ {
			if seqRec.GaugeValue(g) != parRec.GaugeValue(g) {
				t.Errorf("workers=%d: gauge %s = %d, seq %d", workers, g, parRec.GaugeValue(g), seqRec.GaugeValue(g))
			}
		}
		for s := obs.Stage(0); s < obs.NumStages; s++ {
			if seqRec.StageSpans(s) != parRec.StageSpans(s) {
				t.Errorf("workers=%d: stage %s spans = %d, seq %d", workers, s, parRec.StageSpans(s), seqRec.StageSpans(s))
			}
		}
	}
}

// TestParallelCancelledContext pins cancellation in the fan-out path: a
// context cancelled before the run starts yields an empty, interrupted
// Result from both the sequential and the parallel pipeline.
func TestParallelCancelledContext(t *testing.T) {
	nl := bigNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{0, 2, 8} {
		res := Identify(nl, Options{Workers: workers, Context: ctx, Observer: obs.New()})
		if !res.Stats.Interrupted {
			t.Fatalf("workers=%d: cancelled run not marked interrupted", workers)
		}
		if len(res.Words) != 0 {
			t.Fatalf("workers=%d: cancelled-before-start run emitted %d words", workers, len(res.Words))
		}
	}
}
