package core

import (
	"context"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"gatewords/internal/netlist"
)

// countdownCtx is a context whose Err() flips to context.Canceled after a
// fixed number of observations. Because cancelled() is the pipeline's single
// cooperative check point, this drives cancellation into every interior
// position of a run deterministically — something a timer can't do.
type countdownCtx struct {
	context.Context
	remaining int64
}

func (c *countdownCtx) Err() error {
	if atomic.AddInt64(&c.remaining, -1) < 0 {
		return context.Canceled
	}
	return nil
}

func wordKeys(words [][]netlist.NetID) []string {
	keys := make([]string, len(words))
	for i, w := range words {
		keys[i] = fmt.Sprint(w)
	}
	return keys
}

// isSubsequence reports whether sub appears within full in order.
func isSubsequence(sub, full []string) bool {
	j := 0
	for _, s := range sub {
		for j < len(full) && full[j] != s {
			j++
		}
		if j == len(full) {
			return false
		}
		j++
	}
	return true
}

// TestCancelMidRunPartialResult sweeps the cancellation point across the
// whole run, sequential and parallel: wherever the context dies, the partial
// result must be a duplicate-free, order-preserving subsequence of the clean
// run's words (a group contributes either all, a prefix, or none of its
// words — never a word whose evidence was cut short, never a word twice),
// and any run that lost words must say so via Stats.Interrupted.
func TestCancelMidRunPartialResult(t *testing.T) {
	nl := bigNet(t)
	clean := Identify(nl, Options{})
	cleanKeys := wordKeys(clean.GeneratedWords())
	if len(cleanKeys) < 4 {
		t.Fatalf("test net too small: %d clean words", len(cleanKeys))
	}

	for _, workers := range []int{0, 4} {
		sawPartial := false
		for k := int64(0); k <= 64; k++ {
			ctx := &countdownCtx{Context: context.Background(), remaining: k}
			res := Identify(nl, Options{Workers: workers, Context: ctx})
			keys := wordKeys(res.GeneratedWords())

			seen := make(map[string]bool, len(keys))
			for _, key := range keys {
				if seen[key] {
					t.Fatalf("workers=%d k=%d: word %s merged twice", workers, k, key)
				}
				seen[key] = true
			}
			if !isSubsequence(keys, cleanKeys) {
				t.Fatalf("workers=%d k=%d: partial words not a subsequence of the clean run\npartial: %v\nclean:   %v",
					workers, k, keys, cleanKeys)
			}
			if len(keys) < len(cleanKeys) && !res.Stats.Interrupted {
				t.Fatalf("workers=%d k=%d: dropped %d words without marking Interrupted",
					workers, k, len(cleanKeys)-len(keys))
			}
			if !res.Stats.Interrupted && !reflect.DeepEqual(keys, cleanKeys) {
				t.Fatalf("workers=%d k=%d: uninterrupted run differs from clean run", workers, k)
			}
			if workers == 0 {
				// Sequential runs visit groups in order, so the partial
				// result is not just a subsequence but a strict prefix.
				if !reflect.DeepEqual(keys, cleanKeys[:len(keys)]) {
					t.Fatalf("k=%d: sequential partial result is not a prefix\npartial: %v\nclean:   %v",
						k, keys, cleanKeys)
				}
			}
			if res.Stats.Interrupted && len(keys) < len(cleanKeys) {
				sawPartial = true
			}
		}
		if !sawPartial {
			t.Errorf("workers=%d: countdown sweep never produced a proper partial result; test lost its bite", workers)
		}

		// A countdown that outlives the run must change nothing.
		ctx := &countdownCtx{Context: context.Background(), remaining: 1 << 40}
		res := Identify(nl, Options{Workers: workers, Context: ctx})
		if res.Stats.Interrupted {
			t.Errorf("workers=%d: unexhausted countdown marked the run interrupted", workers)
		}
		if !reflect.DeepEqual(wordKeys(res.GeneratedWords()), cleanKeys) {
			t.Errorf("workers=%d: unexhausted countdown changed the result", workers)
		}
	}
}
