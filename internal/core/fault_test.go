package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"gatewords/internal/guard"
	"gatewords/internal/netlist"
	"gatewords/internal/obs"
)

// wordSet renders a result's words as order-insensitive multiset keys so the
// fault tests can check containment without attributing words to groups.
func wordSet(res *Result) map[string]int {
	set := make(map[string]int)
	for _, w := range res.Words {
		set[fmt.Sprint(w.Bits)]++
	}
	return set
}

// TestFaultMatrix plants one fault at every pipeline stage, in both the
// sequential and the parallel path, and checks the recovery contract each
// time: no crash, exactly one structured failure attributed to the planted
// stage, the recovery counted in the observer, and every surviving word one
// the clean run also produced.
func TestFaultMatrix(t *testing.T) {
	defer guard.Reset()
	nl := bigNet(t)
	clean := Identify(nl, Options{VerifyReduction: true})
	if len(clean.Failures) != 0 {
		t.Fatalf("clean run reported failures: %v", clean.Failures)
	}
	cleanWords := wordSet(clean)
	for _, stage := range []string{"match", "ctrlsig", "trial", "verify"} {
		for _, workers := range []int{0, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", stage, workers), func(t *testing.T) {
				guard.Reset()
				guard.Plant(stage, guard.AnyGroup)
				rec := obs.New()
				res := Identify(nl, Options{Workers: workers, Observer: rec, VerifyReduction: true})
				if guard.Planted() != 0 {
					t.Fatalf("stage %q never reached: the plant did not fire", stage)
				}
				if len(res.Failures) != 1 {
					t.Fatalf("Failures = %v, want exactly one", res.Failures)
				}
				f := res.Failures[0]
				if f.Stage != stage {
					t.Errorf("failure attributed to stage %q, want %q", f.Stage, stage)
				}
				if !strings.Contains(f.Message, "injected fault") {
					t.Errorf("failure message %q does not name the injected fault", f.Message)
				}
				if f.Stack == "" {
					t.Error("failure carries no stack")
				}
				if got := rec.Count(obs.CtrPanicsRecovered); got != 1 {
					t.Errorf("panics_recovered counter = %d, want 1", got)
				}
				// Isolation: the failed group's output is discarded, never
				// replaced by something the clean run would not produce.
				for w, n := range wordSet(res) {
					if cleanWords[w] < n {
						t.Errorf("faulted run emitted word %s not in the clean run", w)
					}
				}
			})
		}
	}
}

// TestFaultFailFastSequential pins FailFast: the sequential pipeline stops at
// the first failed group instead of continuing, so a fault in the first
// group leaves no words at all.
func TestFaultFailFastSequential(t *testing.T) {
	defer guard.Reset()
	nl := bigNet(t)
	guard.Plant("match", 0)
	res := Identify(nl, Options{FailFast: true})
	if len(res.Failures) != 1 || res.Failures[0].Group != 0 {
		t.Fatalf("Failures = %v, want exactly one in group 0", res.Failures)
	}
	if len(res.Words) != 0 {
		t.Fatalf("fail-fast run after a group-0 fault emitted %d words", len(res.Words))
	}
}

// TestFaultBudgetDegradation drives every budget to an absurdly low limit
// and checks the degradation contract: the run completes without failures,
// each degraded subgroup is itemized with the right reason, the affected
// groups are counted, and the observer counter agrees.
func TestFaultBudgetDegradation(t *testing.T) {
	big := bigNet(t)
	// The trials budget only truncates a group that wants several trials;
	// the two-control-signal word net runs three.
	multiTrial, _, _, _ := wordNet(t, 4, true)
	for _, tc := range []struct {
		name    string
		nl      *netlist.Netlist
		budgets guard.Budgets
		reason  string
	}{
		{"cone-gates", big, guard.Budgets{MaxConeGates: 1}, guard.ReasonConeGates},
		{"subgroup-pairs", big, guard.Budgets{MaxSubgroupPairs: 1}, guard.ReasonSubgroupPairs},
		{"trials", multiTrial, guard.Budgets{MaxTrialsPerGroup: 1}, guard.ReasonTrials},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nl := tc.nl
			clean := Identify(nl, Options{})
			rec := obs.New()
			res := Identify(nl, Options{Observer: rec, Budgets: tc.budgets})
			if len(res.Failures) != 0 {
				t.Fatalf("budget run reported failures: %v", res.Failures)
			}
			if len(res.Degradations) == 0 {
				t.Fatalf("budget %+v triggered no degradations", tc.budgets)
			}
			for _, d := range res.Degradations {
				if d.Reason != tc.reason {
					t.Errorf("degradation reason %q, want %q (%s)", d.Reason, tc.reason, d)
				}
				if d.Subgroup == "" || d.Detail == "" {
					t.Errorf("degradation missing subgroup or detail: %+v", d)
				}
			}
			if res.Stats.DegradedGroups == 0 {
				t.Error("DegradedGroups = 0 with degradations present")
			}
			if got := rec.Count(obs.CtrDegradedSubgroups); got != int64(len(res.Degradations)) {
				t.Errorf("degraded_subgroups counter = %d, want %d", got, len(res.Degradations))
			}
			// Degraded mode must still be usable: the structural fallback
			// keeps emitting words rather than dropping the subgroup.
			if len(clean.Words) > 0 && len(res.Words) == 0 {
				t.Error("degraded run emitted no words at all")
			}
			// Parallel degradation must agree with sequential exactly.
			par := Identify(nl, Options{Workers: 4, Budgets: tc.budgets})
			if !reflect.DeepEqual(par.Degradations, res.Degradations) {
				t.Errorf("parallel degradations differ:\nseq %v\npar %v", res.Degradations, par.Degradations)
			}
			if !reflect.DeepEqual(par.GeneratedWords(), res.GeneratedWords()) {
				t.Error("parallel degraded words differ from sequential")
			}
		})
	}
}
