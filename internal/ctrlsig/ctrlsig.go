// Package ctrlsig identifies the relevant control signals of a potential
// word (DAC'15 §2.4). Given the dissimilar subtrees recorded for the bits
// of a subgroup, the relevant control signals are the nets common to every
// dissimilar subtree, minus any net lying in the fanin cone of another
// common net (whose reduction effect it would duplicate). Signals appearing
// only in matching subtrees are never candidates: they cannot create new
// structural similarity.
package ctrlsig

import (
	"sort"

	"gatewords/internal/cone"
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// Signal is one relevant control signal with its feasible assignment values
// (§2.5: the controlling value of a gate the signal feeds; both values when
// it feeds only gates without a controlling value).
type Signal struct {
	Net    netlist.NetID
	Values []logic.Value
}

// Find computes the relevant control signals for a subgroup. dissim holds,
// per bit, the dissimilar subtrees recorded during partial matching;
// subDepth is the subtree expansion depth (cone depth - 1). nl must be the
// netlist the builder analyzes.
func Find(nl *netlist.Netlist, b *cone.Builder, dissim [][]cone.Subtree, subDepth int) []Signal {
	var sets []map[netlist.NetID]bool
	union := make(map[netlist.NetID]bool)
	for _, subtrees := range dissim {
		for _, st := range subtrees {
			nets := b.SubtreeNets(st.Root, subDepth)
			sets = append(sets, nets)
			for n := range nets {
				union[n] = true
			}
		}
	}
	if len(sets) < 2 {
		// With fewer than two dissimilar subtrees there is no "common among
		// all" evidence; the only defensible candidate is the root of the
		// single extra subtree, if any.
		if len(sets) == 1 {
			root := dissim0Root(dissim)
			if root != netlist.NoNet {
				return []Signal{makeSignal(nl, root, union)}
			}
		}
		return nil
	}

	// Common nets across every dissimilar subtree.
	var common []netlist.NetID
	for n := range sets[0] {
		inAll := true
		for _, s := range sets[1:] {
			if !s[n] {
				inAll = false
				break
			}
		}
		if inAll {
			common = append(common, n)
		}
	}
	if len(common) == 0 {
		return nil
	}
	// common is collected in map order; canonicalize before the dominance
	// walk so everything downstream of it is order-independent by
	// construction, not just after the final sort of out.
	sort.Slice(common, func(i, j int) bool { return common[i] < common[j] })

	// Prune dominated nets: drop any common net reachable through drivers
	// from another common net within the dissimilar region (§2.4: U223 is
	// in the fanin cone of U201, so U223 goes).
	dominated := make(map[netlist.NetID]bool)
	for _, src := range common {
		markFaninWithin(nl, src, union, dominated)
	}
	var out []Signal
	for _, n := range common {
		if dominated[n] {
			continue
		}
		out = append(out, makeSignal(nl, n, union))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Net < out[j].Net })
	return out
}

func dissim0Root(dissim [][]cone.Subtree) netlist.NetID {
	for _, subtrees := range dissim {
		for _, st := range subtrees {
			return st.Root
		}
	}
	return netlist.NoNet
}

// markFaninWithin marks every net strictly inside the fanin cone of src,
// bounded to the region (the union of dissimilar-subtree nets), as
// dominated by src.
func markFaninWithin(nl *netlist.Netlist, src netlist.NetID, region, dominated map[netlist.NetID]bool) {
	var walk func(n netlist.NetID)
	seen := map[netlist.NetID]bool{src: true}
	walk = func(n netlist.NetID) {
		d := nl.Net(n).Driver
		if d == netlist.NoGate {
			return
		}
		g := nl.Gate(d)
		if !g.Kind.IsCombinational() {
			return
		}
		for _, in := range g.Inputs {
			if seen[in] || !region[in] {
				continue
			}
			seen[in] = true
			dominated[in] = true
			walk(in)
		}
	}
	walk(src)
	return
}

// makeSignal derives the feasible assignment values for a control net: the
// controlling values of the gates it feeds inside the dissimilar region.
// When the net feeds only gates without a controlling value (parity gates,
// muxes), both values are feasible.
func makeSignal(nl *netlist.Netlist, n netlist.NetID, region map[netlist.NetID]bool) Signal {
	s := Signal{Net: n}
	have := map[logic.Value]bool{}
	addFrom := func(restrict bool) {
		for _, g := range nl.Net(n).Fanout {
			gate := nl.Gate(g)
			if restrict && !region[gate.Output] {
				continue
			}
			if cv, ok := gate.Kind.ControllingValue(); ok {
				have[cv] = true
			}
		}
	}
	addFrom(true)
	if len(have) == 0 {
		addFrom(false)
	}
	if len(have) == 0 {
		have[logic.Zero] = true
		have[logic.One] = true
	}
	// Deterministic order: 0 before 1.
	if have[logic.Zero] {
		s.Values = append(s.Values, logic.Zero)
	}
	if have[logic.One] {
		s.Values = append(s.Values, logic.One)
	}
	return s
}
