package ctrlsig

import (
	"testing"

	"gatewords/internal/cone"
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// figure1ish builds three bits in the Figure-1 pattern directly at gate
// level and returns the pieces needed for control-signal analysis:
//
//	u223 = NAND(p, q)          (common decode root, dominated)
//	u201 = NAND(u223, r)       (relevant)
//	u221 = NAND(u223, s)       (relevant)
//	Z_i  = per-bit combos of u201/u221 with data ru<i>
//	bit_i = NAND3(X_i, Y_i, Z_i), X/Y similar
func figure1ish(t *testing.T) (nl *netlist.Netlist, bits []netlist.NetID, names map[string]netlist.NetID) {
	t.Helper()
	nl = netlist.New("f1")
	names = map[string]netlist.NetID{}
	net := func(n string) netlist.NetID {
		id := nl.MustNet(n)
		names[n] = id
		return id
	}
	pi := func(n string) netlist.NetID {
		id := net(n)
		nl.MarkPI(id)
		return id
	}
	p, q, r, s := pi("p"), pi("q"), pi("r"), pi("s")
	u202 := net("u202")
	nl.MustGate("u202", logic.Nand, u202, pi("t"), pi("u"))
	u223 := net("u223")
	nl.MustGate("u223", logic.Nand, u223, p, q)
	u201 := net("u201")
	nl.MustGate("u201", logic.Nand, u201, u223, r)
	u221 := net("u221")
	nl.MustGate("u221", logic.Nand, u221, u223, s)

	for i := 0; i < 3; i++ {
		sfx := string(rune('0' + i))
		x := net("x" + sfx)
		nl.MustGate("gx"+sfx, logic.Nand, x, pi("coda0_"+sfx), u202)
		y := net("y" + sfx)
		nl.MustGate("gy"+sfx, logic.Nand, y, pi("coda1_"+sfx), u202)
		z := net("z" + sfx)
		switch i {
		case 0:
			nl.MustGate("gz"+sfx, logic.Nand, z, pi("ru0"), u221, u201)
		case 1:
			nl.MustGate("gz"+sfx, logic.Nand, z, pi("ru1"), u201, u221)
		default:
			inner := net("zi" + sfx)
			nl.MustGate("gzi"+sfx, logic.Nand, inner, pi("ru2x"), u221)
			nl.MustGate("gz"+sfx, logic.Nand, z, inner, u201)
		}
		bit := net("bit" + sfx)
		nl.MustGate("gb"+sfx, logic.Nand, bit, x, y, z)
		bits = append(bits, bit)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl, bits, names
}

func analyze(t *testing.T, nl *netlist.Netlist, bits []netlist.NetID) (*cone.Builder, [][]cone.Subtree) {
	t.Helper()
	it := cone.NewInterner()
	b := cone.NewBuilder(nl, it, 4)
	var cones []*cone.BitCone
	for _, n := range bits {
		bc := b.Bit(n)
		if bc == nil {
			t.Fatalf("no cone for %s", nl.NetName(n))
		}
		cones = append(cones, bc)
	}
	common := cone.CommonKeys(cones)
	dissim := make([][]cone.Subtree, len(cones))
	for i, bc := range cones {
		dissim[i] = cone.Dissimilar(bc, common)
	}
	return b, dissim
}

func TestFindRelevantSignals(t *testing.T) {
	nl, bits, names := figure1ish(t)
	b, dissim := analyze(t, nl, bits)
	sigs := Find(nl, b, dissim, 3)
	got := map[netlist.NetID]Signal{}
	for _, s := range sigs {
		got[s.Net] = s
	}
	if _, ok := got[names["u201"]]; !ok {
		t.Errorf("u201 not found; sigs: %v", sigNames(nl, sigs))
	}
	if _, ok := got[names["u221"]]; !ok {
		t.Errorf("u221 not found; sigs: %v", sigNames(nl, sigs))
	}
	if _, ok := got[names["u223"]]; ok {
		t.Error("dominated u223 must be pruned")
	}
	if _, ok := got[names["p"]]; ok {
		t.Error("dominated PI p must be pruned")
	}
	if _, ok := got[names["u202"]]; ok {
		t.Error("u202 appears only in matching subtrees and must not be a signal")
	}
	// Feasible values: u201/u221 feed NANDs, so the controlling value 0.
	for _, name := range []string{"u201", "u221"} {
		s := got[names[name]]
		if len(s.Values) != 1 || s.Values[0] != logic.Zero {
			t.Errorf("%s values = %v, want [0]", name, s.Values)
		}
	}
}

func TestFindNoCommonNets(t *testing.T) {
	// Three bits whose dissimilar subtrees use disjoint nets: no signals.
	nl := netlist.New("t")
	var bits []netlist.NetID
	shared := nl.MustNet("sh")
	nl.MarkPI(shared)
	for i := 0; i < 3; i++ {
		sfx := string(rune('0' + i))
		a := nl.MustNet("a" + sfx)
		nl.MarkPI(a)
		b := nl.MustNet("b" + sfx)
		nl.MarkPI(b)
		x := nl.MustNet("x" + sfx)
		nl.MustGate("gx"+sfx, logic.Nand, x, a, shared)
		var z netlist.NetID
		z = nl.MustNet("z" + sfx)
		switch i {
		case 0:
			nl.MustGate("gz"+sfx, logic.And, z, a, b)
		case 1:
			nl.MustGate("gz"+sfx, logic.Or, z, a, b)
		default:
			nl.MustGate("gz"+sfx, logic.Xor, z, a, b)
		}
		bit := nl.MustNet("bit" + sfx)
		nl.MustGate("gb"+sfx, logic.Nand, bit, x, z)
		bits = append(bits, bit)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	b, dissim := analyze(t, nl, bits)
	if sigs := Find(nl, b, dissim, 3); len(sigs) != 0 {
		t.Errorf("expected no signals, got %v", sigNames(nl, sigs))
	}
}

func TestFindSingleDissimilarSubtree(t *testing.T) {
	// One bit has an extra subtree: its root is the only candidate.
	nl := netlist.New("t")
	sh := nl.MustNet("sh")
	nl.MarkPI(sh)
	mkbit := func(sfx string, extra bool) netlist.NetID {
		a := nl.MustNet("a" + sfx)
		nl.MarkPI(a)
		b := nl.MustNet("b" + sfx)
		nl.MarkPI(b)
		x := nl.MustNet("x" + sfx)
		nl.MustGate("gx"+sfx, logic.Nand, x, a, sh)
		y := nl.MustNet("y" + sfx)
		nl.MustGate("gy"+sfx, logic.Nand, y, b, sh)
		if !extra {
			bit := nl.MustNet("bit" + sfx)
			nl.MustGate("gb"+sfx, logic.Nand, bit, x, y)
			return bit
		}
		e := nl.MustNet("e" + sfx)
		nl.MustGate("ge"+sfx, logic.Nor, e, a, sh)
		bit := nl.MustNet("bit" + sfx)
		nl.MustGate("gb"+sfx, logic.Nand, bit, x, y, e)
		return bit
	}
	b0 := mkbit("0", false)
	b1 := mkbit("1", true)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	b, dissim := analyze(t, nl, []netlist.NetID{b0, b1})
	sigs := Find(nl, b, dissim, 3)
	if len(sigs) != 1 {
		t.Fatalf("sigs = %v", sigNames(nl, sigs))
	}
	if nl.NetName(sigs[0].Net) != "e1" {
		t.Errorf("signal = %s, want e1 (root of the extra subtree)", nl.NetName(sigs[0].Net))
	}
}

// TestFindSingleSubtreeParityRoot drives the len(sets)==1 path end to end
// when the lone extra subtree's root feeds only a parity gate: the root is
// the only candidate and, lacking a controlling value anywhere in its
// fanout, it gets both assignment values.
func TestFindSingleSubtreeParityRoot(t *testing.T) {
	nl := netlist.New("t")
	sh := nl.MustNet("sh")
	nl.MarkPI(sh)
	mkparts := func(sfx string) (x, y netlist.NetID) {
		a := nl.MustNet("a" + sfx)
		nl.MarkPI(a)
		b := nl.MustNet("b" + sfx)
		nl.MarkPI(b)
		x = nl.MustNet("x" + sfx)
		nl.MustGate("gx"+sfx, logic.Nand, x, a, sh)
		y = nl.MustNet("y" + sfx)
		nl.MustGate("gy"+sfx, logic.Nand, y, b, sh)
		return x, y
	}
	x0, y0 := mkparts("0")
	b0 := nl.MustNet("bit0")
	nl.MustGate("gb0", logic.Xor, b0, x0, y0)
	x1, y1 := mkparts("1")
	e := nl.MustNet("e1")
	nl.MustGate("ge1", logic.Nor, e, x1, sh)
	b1 := nl.MustNet("bit1")
	// The extra subtree root e feeds only this XOR: no controlling value.
	nl.MustGate("gb1", logic.Xor, b1, x1, y1, e)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	b, dissim := analyze(t, nl, []netlist.NetID{b0, b1})
	total := 0
	for _, d := range dissim {
		total += len(d)
	}
	if total != 1 {
		t.Fatalf("want exactly one dissimilar subtree, got %d", total)
	}
	sigs := Find(nl, b, dissim, 3)
	if len(sigs) != 1 || nl.NetName(sigs[0].Net) != "e1" {
		t.Fatalf("sigs = %v, want just e1", sigNames(nl, sigs))
	}
	if len(sigs[0].Values) != 2 {
		t.Errorf("values = %v, want both (root feeds only parity gates)", sigs[0].Values)
	}
}

// TestMakeSignalRegionFallback covers the two-stage fanout scan: inside the
// dissimilar region the net feeds only a MUX (no controlling value), so the
// scan widens to the full fanout and picks up the NAND's controlling 0.
func TestMakeSignalRegionFallback(t *testing.T) {
	nl := netlist.New("t")
	pi := func(n string) netlist.NetID {
		id := nl.MustNet(n)
		nl.MarkPI(id)
		return id
	}
	c, a, b2, d := pi("c"), pi("a"), pi("b"), pi("d")
	inRegion := nl.MustNet("m")
	nl.MustGate("gm", logic.Mux2, inRegion, c, a, b2)
	outside := nl.MustNet("o")
	nl.MustGate("go", logic.Nand, outside, c, d)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	s := makeSignal(nl, c, map[netlist.NetID]bool{inRegion: true})
	if len(s.Values) != 1 || s.Values[0] != logic.Zero {
		t.Errorf("values = %v, want [0] via out-of-region NAND", s.Values)
	}
}

func TestMakeSignalValueFallback(t *testing.T) {
	// A signal feeding only XOR gates has no controlling value: both
	// values are feasible.
	nl := netlist.New("t")
	a := nl.MustNet("a")
	c := nl.MustNet("c")
	nl.MarkPI(a)
	nl.MarkPI(c)
	y := nl.MustNet("y")
	nl.MustGate("g", logic.Xor, y, a, c)
	s := makeSignal(nl, c, map[netlist.NetID]bool{y: true})
	if len(s.Values) != 2 {
		t.Errorf("values = %v, want both", s.Values)
	}
}

func sigNames(nl *netlist.Netlist, sigs []Signal) []string {
	out := make([]string, len(sigs))
	for i, s := range sigs {
		out[i] = nl.NetName(s.Net)
	}
	return out
}
