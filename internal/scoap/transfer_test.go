package scoap

import (
	"testing"

	"gatewords/internal/logic"
)

// brutePair is the reference controllability: minimum-cost partial
// assignment enumeration over {X,0,1}^n with three-valued evaluation. A
// partial assignment justifies output v when logic.TryEval already returns v
// with the unassigned pins at X; its cost charges only the assigned pins.
func brutePair(k logic.Kind, in []Pair) Pair {
	vals := make([]logic.Value, len(in))
	best := Pair{C0: Inf, C1: Inf}
	var rec func(i int, cost Cost)
	rec = func(i int, cost Cost) {
		if i == len(in) {
			out, err := logic.TryEval(k, vals)
			if err != nil {
				return
			}
			switch out {
			case logic.Zero:
				best.C0 = min2(best.C0, cost)
			case logic.One:
				best.C1 = min2(best.C1, cost)
			}
			return
		}
		vals[i] = logic.X
		rec(i+1, cost)
		vals[i] = logic.Zero
		rec(i+1, add(cost, in[i].C0))
		vals[i] = logic.One
		rec(i+1, add(cost, in[i].C1))
	}
	rec(0, 0)
	return Pair{C0: add(best.C0, 1), C1: add(best.C1, 1)}
}

// bruteObs is the reference observability of one pin: the cheapest partial
// assignment of the other pins under which flipping the pin flips the output
// between two known values.
func bruteObs(k logic.Kind, pin int, in []Pair, coOut Cost) Cost {
	vals := make([]logic.Value, len(in))
	best := Inf
	var rec func(i int, cost Cost)
	rec = func(i int, cost Cost) {
		if i == len(in) {
			vals[pin] = logic.Zero
			o0, err := logic.TryEval(k, vals)
			if err != nil {
				return
			}
			vals[pin] = logic.One
			o1, _ := logic.TryEval(k, vals)
			vals[pin] = logic.X
			if o0.Known() && o1.Known() && o0 != o1 {
				best = min2(best, cost)
			}
			return
		}
		if i == pin {
			vals[i] = logic.X
			rec(i+1, cost)
			return
		}
		vals[i] = logic.X
		rec(i+1, cost)
		vals[i] = logic.Zero
		rec(i+1, add(cost, in[i].C0))
		vals[i] = logic.One
		rec(i+1, add(cost, in[i].C1))
	}
	rec(0, 0)
	return add(add(coOut, best), 1)
}

// pairSlate covers the interesting cost shapes: symmetric, skewed, zero,
// one-sided-infinite, fully infinite, and near-saturation.
var pairSlate = []Pair{
	{C0: 1, C1: 1},
	{C0: 2, C1: 1},
	{C0: 1, C1: 3},
	{C0: 4, C1: 2},
	{C0: 0, C1: 5},
	{C0: Inf, C1: 2},
	{C0: 3, C1: Inf},
	{C0: Inf - 1, C1: 1},
}

// arities returns the input counts to test for a kind: the fixed arity, or
// 2..4 for the variadic gates (the "every gate kind ≤4 inputs" contract).
func arities(k logic.Kind) []int {
	if n, ok := k.FixedArity(); ok {
		return []int{n}
	}
	return []int{2, 3, 4}
}

// forEachCombo enumerates every assignment of pairSlate entries to n pins.
func forEachCombo(n int, fn func(in []Pair)) {
	in := make([]Pair, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			fn(in)
			return
		}
		for _, p := range pairSlate {
			in[i] = p
			rec(i + 1)
		}
	}
	rec(0)
}

// TestTransferSoundness pins every closed-form transfer function against the
// brute-force minimum-assignment enumeration, for every combinational kind,
// every arity up to 4, and the full cross product of slate cost pairs —
// controllability on every combination, observability on every pin with
// three downstream observabilities.
func TestTransferSoundness(t *testing.T) {
	coSlate := []Cost{0, 5, Inf}
	for _, k := range logic.CombinationalKinds() {
		for _, n := range arities(k) {
			mismatches := 0
			forEachCombo(n, func(in []Pair) {
				if mismatches > 5 {
					return
				}
				got, want := CtrlTransfer(k, in), brutePair(k, in)
				if got != want {
					t.Errorf("%s/%d ctrl %v: got %+v want %+v", k, n, in, got, want)
					mismatches++
				}
				for pin := 0; pin < n; pin++ {
					for _, co := range coSlate {
						gotO, wantO := ObsTransfer(k, pin, in, co), bruteObs(k, pin, in, co)
						if gotO != wantO {
							t.Errorf("%s/%d obs pin %d co %v %v: got %v want %v",
								k, n, pin, co, in, gotO, wantO)
							mismatches++
						}
					}
				}
			})
		}
	}
}

// TestTransferMalformed pins the lenient-netlist contract: invalid arities
// and non-combinational kinds score Inf on both functions instead of
// panicking.
func TestTransferMalformed(t *testing.T) {
	bad := []struct {
		k  logic.Kind
		in []Pair
	}{
		{logic.Not, []Pair{{C0: 1, C1: 1}, {C0: 1, C1: 1}}},
		{logic.And, []Pair{{C0: 1, C1: 1}}},
		{logic.Mux2, []Pair{{C0: 1, C1: 1}}},
		{logic.DFF, []Pair{{C0: 1, C1: 1}}},
		{logic.Invalid, []Pair{{C0: 1, C1: 1}, {C0: 1, C1: 1}}},
	}
	for _, tc := range bad {
		if got := CtrlTransfer(tc.k, tc.in); got != (Pair{C0: Inf, C1: Inf}) {
			t.Errorf("CtrlTransfer(%s, %d inputs) = %+v, want Inf pair", tc.k, len(tc.in), got)
		}
		if got := ObsTransfer(tc.k, 0, tc.in, 0); got != Inf {
			t.Errorf("ObsTransfer(%s, %d inputs) = %v, want Inf", tc.k, len(tc.in), got)
		}
	}
	if got := ObsTransfer(logic.And, 2, []Pair{{C0: 1, C1: 1}, {C0: 1, C1: 1}}, 0); got != Inf {
		t.Errorf("ObsTransfer out-of-range pin = %v, want Inf", got)
	}
}

// TestSaturatingAdd pins the arithmetic backstop.
func TestSaturatingAdd(t *testing.T) {
	cases := []struct{ a, b, want Cost }{
		{1, 2, 3},
		{Inf, 0, Inf},
		{0, Inf, Inf},
		{Inf, Inf, Inf},
		{Inf - 1, 1, Inf},
		{Inf - 1, 2, Inf},
		{Inf / 2, Inf / 2, Inf - 1},
	}
	for _, c := range cases {
		if got := add(c.a, c.b); got != c.want {
			t.Errorf("add(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
