package scoap

import (
	"bytes"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// buildAnd returns a, b (PIs), y = AND(a, b) with y a PO.
func buildAnd(t *testing.T) (*netlist.Netlist, netlist.NetID, netlist.NetID, netlist.NetID) {
	t.Helper()
	nl := netlist.New("and2")
	a, b, y := nl.MustNet("a"), nl.MustNet("b"), nl.MustNet("y")
	nl.MarkPI(a)
	nl.MarkPI(b)
	nl.MarkPO(y)
	nl.MustGate("g", logic.And, y, a, b)
	return nl, a, b, y
}

// TestHandComputedScores pins the textbook SCOAP values on a 2-input AND.
func TestHandComputedScores(t *testing.T) {
	nl, a, b, y := buildAnd(t)
	r := Compute(nl, Config{})
	if got := r.Controllability(a); got != (Pair{C0: 1, C1: 1}) {
		t.Errorf("CC(a) = %+v, want {1 1}", got)
	}
	// CC0(y) = min(CC0 a, CC0 b) + 1 = 2; CC1(y) = CC1 a + CC1 b + 1 = 3.
	if got := r.Controllability(y); got != (Pair{C0: 2, C1: 3}) {
		t.Errorf("CC(y) = %+v, want {2 3}", got)
	}
	// CO(y) = 0 at the PO; CO(a) = CO(y) + CC1(b) + 1 = 2.
	if r.Observability(y) != 0 || r.Observability(a) != 2 || r.Observability(b) != 2 {
		t.Errorf("CO = y:%v a:%v b:%v, want 0/2/2",
			r.Observability(y), r.Observability(a), r.Observability(b))
	}
	if !r.HasPO || r.WidenedSCCs != 0 {
		t.Errorf("HasPO=%v WidenedSCCs=%d", r.HasPO, r.WidenedSCCs)
	}
}

// TestInverterChain pins the per-level charge and polarity swap.
func TestInverterChain(t *testing.T) {
	nl := netlist.New("chain")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	x := nl.MustNet("x")
	y := nl.MustNet("y")
	nl.MustGate("n1", logic.Not, x, a)
	nl.MustGate("n2", logic.Not, y, x)
	nl.MarkPO(y)
	r := Compute(nl, Config{})
	if got := r.Controllability(x); got != (Pair{C0: 2, C1: 2}) {
		t.Errorf("CC(x) = %+v", got)
	}
	if got := r.Controllability(y); got != (Pair{C0: 3, C1: 3}) {
		t.Errorf("CC(y) = %+v", got)
	}
	// CO(a) = two inverter levels above the PO.
	if got := r.Observability(a); got != 2 {
		t.Errorf("CO(a) = %v, want 2", got)
	}
}

// TestSequentialCost pins the DFF boundary charge in both directions and its
// configurability.
func TestSequentialCost(t *testing.T) {
	build := func() (*netlist.Netlist, netlist.NetID, netlist.NetID) {
		nl := netlist.New("seq")
		d := nl.MustNet("d")
		nl.MarkPI(d)
		q := nl.MustNet("q")
		nl.MustGate("r", logic.DFF, q, d)
		nl.MarkPO(q)
		return nl, d, q
	}
	nl, d, q := build()
	r := Compute(nl, Config{})
	if got := r.Controllability(q); got != (Pair{C0: 2, C1: 2}) {
		t.Errorf("default SeqCost: CC(q) = %+v, want {2 2}", got)
	}
	if got := r.Observability(d); got != 1 {
		t.Errorf("default SeqCost: CO(d) = %v, want 1", got)
	}
	nl, d, q = build()
	r = Compute(nl, Config{SeqCost: 5})
	if got := r.Controllability(q); got != (Pair{C0: 6, C1: 6}) {
		t.Errorf("SeqCost 5: CC(q) = %+v, want {6 6}", got)
	}
	if got := r.Observability(d); got != 5 {
		t.Errorf("SeqCost 5: CO(d) = %v, want 5", got)
	}
}

// TestSequentialFeedback pins the fixed point through a register loop: a
// mux-loaded register is controllable through its load path, and the
// feedback arm settles on the positive-cycle fixed point instead of
// diverging or oscillating.
func TestSequentialFeedback(t *testing.T) {
	nl := netlist.New("fb")
	load := nl.MustNet("load")
	data := nl.MustNet("data")
	nl.MarkPI(load)
	nl.MarkPI(data)
	q := nl.MustNet("q")
	d := nl.MustNet("d")
	// d = load ? data : q   (Mux2 inputs are [sel, a, b]: sel=load, a=q, b=data)
	nl.MustGate("m", logic.Mux2, d, load, q, data)
	nl.MustGate("r", logic.DFF, q, d)
	nl.MarkPO(q)
	r := Compute(nl, Config{})
	// Cheapest CC1(d): load=1, data=1 → 1+1+1 = 3; then CC1(q) = 4. The
	// feedback arm (load=0, q) costs 1+4+1 = 6 and must not win or loop.
	if got := r.Controllability(d); got != (Pair{C0: 3, C1: 3}) {
		t.Errorf("CC(d) = %+v, want {3 3}", got)
	}
	if got := r.Controllability(q); got != (Pair{C0: 4, C1: 4}) {
		t.Errorf("CC(q) = %+v, want {4 4}", got)
	}
	if r.WidenedSCCs != 0 {
		t.Errorf("WidenedSCCs = %d on a sequential loop", r.WidenedSCCs)
	}
}

// TestXSourcePoisoning: an undriven non-PI input makes dependent scores Inf
// while controlling paths stay finite.
func TestXSourcePoisoning(t *testing.T) {
	nl := netlist.New("x")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	u := nl.MustNet("u") // undriven, not a PI: an X source
	y := nl.MustNet("y")
	nl.MustGate("g", logic.And, y, a, u)
	nl.MarkPO(y)
	r := Compute(nl, Config{})
	if !r.AlwaysX(u) {
		t.Error("X source not AlwaysX")
	}
	// y can still be forced to 0 through a, but never to 1.
	if got := r.Controllability(y); got != (Pair{C0: 2, C1: Inf}) {
		t.Errorf("CC(y) = %+v, want {2 Inf}", got)
	}
	// a is unobservable: sensitizing it needs u = 1.
	if got := r.Observability(a); got != Inf {
		t.Errorf("CO(a) = %v, want Inf", got)
	}
}

// buildLatch returns a lenient cross-coupled NAND pair (a combinational
// cycle) hanging off two PIs.
func buildLatch(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("latch")
	s, rr := nl.MustNet("s"), nl.MustNet("r")
	nl.MarkPI(s)
	nl.MarkPI(rr)
	q, qn := nl.MustNet("q"), nl.MustNet("qn")
	nl.AddGateLenient("g1", logic.Nand, q, s, qn)
	nl.AddGateLenient("g2", logic.Nand, qn, rr, q)
	nl.MarkPO(q)
	return nl
}

// TestCombinationalCycleConverges: the SR-latch cycle has a finite positive-
// weight fixed point, reached without widening, deterministically.
func TestCombinationalCycleConverges(t *testing.T) {
	nl := buildLatch(t)
	r1 := Compute(nl, Config{})
	if r1.WidenedSCCs != 0 {
		t.Fatalf("WidenedSCCs = %d, want 0", r1.WidenedSCCs)
	}
	q, _ := nl.NetByName("q")
	// CC1(q): s=0 controls NAND g1 to 1 → 2. CC0(q): s=1 and qn=1 (via r=0,
	// cost 2) → 1+2+1 = 4.
	if got := r1.Controllability(q); got != (Pair{C0: 4, C1: 2}) {
		t.Errorf("CC(q) = %+v, want {4 2}", got)
	}
	var b1, b2 bytes.Buffer
	if err := r1.WriteText(&b1, nl); err != nil {
		t.Fatal(err)
	}
	if err := Compute(nl, Config{}).WriteText(&b2, nl); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("two runs differ:\n%s----\n%s", b1.String(), b2.String())
	}
}

// TestWidening: an exhausted relaxation budget widens the cycle's nets to
// Inf — deterministically — instead of spinning.
func TestWidening(t *testing.T) {
	nl := buildLatch(t)
	r1 := Compute(nl, Config{EvalBudget: 1})
	if r1.WidenedSCCs == 0 {
		t.Fatal("expected widening under a 1-relaxation budget")
	}
	q, _ := nl.NetByName("q")
	qn, _ := nl.NetByName("qn")
	if !r1.AlwaysX(q) || !r1.AlwaysX(qn) {
		t.Errorf("widened cycle nets not Inf: q=%+v qn=%+v",
			r1.Controllability(q), r1.Controllability(qn))
	}
	var b1, b2 bytes.Buffer
	if err := r1.WriteText(&b1, nl); err != nil {
		t.Fatal(err)
	}
	if err := Compute(nl, Config{EvalBudget: 1}).WriteText(&b2, nl); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("widened runs are not byte-identical")
	}
	// PIs outside the cycle keep their seeds.
	s, _ := nl.NetByName("s")
	if got := r1.Controllability(s); got != (Pair{C0: 1, C1: 1}) {
		t.Errorf("CC(s) = %+v after widening, want {1 1}", got)
	}
}

// TestNoPO: without primary outputs observability is skipped and every CO
// stays Inf.
func TestNoPO(t *testing.T) {
	nl := netlist.New("nopo")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	y := nl.MustNet("y")
	nl.MustGate("g", logic.Not, y, a)
	r := Compute(nl, Config{})
	if r.HasPO {
		t.Error("HasPO on a PO-less design")
	}
	if r.Observability(a) != Inf || r.Observability(y) != Inf {
		t.Error("CO must stay Inf without POs")
	}
}

// TestTestability pins the combined scalar's saturation.
func TestTestability(t *testing.T) {
	nl, a, _, y := buildAnd(t)
	r := Compute(nl, Config{})
	if got := r.Testability(y); got != 5 { // 2 + 3 + 0
		t.Errorf("Testability(y) = %v, want 5", got)
	}
	if got := r.Testability(a); got != 4 { // 1 + 1 + 2
		t.Errorf("Testability(a) = %v, want 4", got)
	}
	nl2 := netlist.New("sat")
	u := nl2.MustNet("u")
	p := nl2.MustNet("p")
	nl2.MarkPI(p)
	z := nl2.MustNet("z")
	nl2.MustGate("g", logic.And, z, p, u)
	r2 := Compute(nl2, Config{})
	if got := r2.Testability(z); got != Inf {
		t.Errorf("Testability(z) = %v, want Inf", got)
	}
}

// TestMalformedGateScoresInf: lenient arity violations act as X sources.
func TestMalformedGateScoresInf(t *testing.T) {
	nl := netlist.New("bad")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	y := nl.MustNet("y")
	nl.AddGateLenient("g", logic.Not, y, a, a) // NOT with 2 inputs
	nl.MarkPO(y)
	r := Compute(nl, Config{})
	if !r.AlwaysX(y) {
		t.Errorf("malformed gate output = %+v, want Inf pair", r.Controllability(y))
	}
}
