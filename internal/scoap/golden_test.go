package scoap

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"gatewords/internal/bench"
)

// TestGoldenB14Scores pins the full SCOAP score dump of the generated
// b14-class benchmark against a checked-in golden file: any drift in
// transfer functions, widening, iteration order, or the generator itself
// shows up as a diff. Regenerate with SCOAP_GOLDEN_UPDATE=1.
func TestGoldenB14Scores(t *testing.T) {
	p, ok := bench.ProfileByName("b14a")
	if !ok {
		t.Fatal("benchmark b14a not registered")
	}
	gen, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	r := Compute(gen.NL, Config{})
	if r.WidenedSCCs != 0 {
		t.Errorf("b14a widened %d SCCs; expected clean convergence", r.WidenedSCCs)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf, gen.NL); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "b14a_scoap.golden.txt")
	if os.Getenv("SCOAP_GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with SCOAP_GOLDEN_UPDATE=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("b14a SCOAP scores drifted from golden (%d vs %d bytes); regenerate with SCOAP_GOLDEN_UPDATE=1 and review the diff",
			buf.Len(), len(want))
	}
}
