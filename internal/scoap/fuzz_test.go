package scoap

import (
	"bytes"
	"testing"

	"gatewords/internal/verilog"
)

// FuzzScoap hardens the solver front end: arbitrary input routed through the
// lenient parser must never panic Compute, must finish (converge or widen —
// the Compute contract, backstopped by the relaxation budget), and two runs
// must produce byte-identical score dumps.
func FuzzScoap(f *testing.F) {
	seeds := []string{
		"",
		"module m; endmodule",
		"module m (a, y);\n input a;\n output y;\n BUF b (y, a);\nendmodule",
		"module m (a, b, y);\n input a, b;\n output y;\n and g (y, a, b);\nendmodule",
		"module m (y);\n output y;\n wire x;\n not g1 (y, x);\n not g2 (x, y);\nendmodule", // comb cycle
		"module m (s, r, q);\n input s, r;\n output q;\n wire qn;\n nand g1 (q, s, qn);\n nand g2 (qn, r, q);\nendmodule",
		"module m (a, q);\n input a;\n output q;\n DFF r (.D(a), .Q(q), .CK(a));\nendmodule",
		"module m (a, y);\n input a;\n output y;\n nand g (y, a);\nendmodule", // bad arity
		"module m (a);\n input a;\n wire w;\nendmodule",                       // floating + undriven
		"module m (s, a, b, y);\n input s, a, b;\n output y;\n MUX2 g (y, s, a, b);\nendmodule",
		"module m (a, y);\n input a;\n output y;\n xor t (y, a, a);\nendmodule",
		"module m (a); input a; wire w; /* unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		nl, err := verilog.ParseLenient("fuzz.v", src)
		if err != nil {
			return
		}
		var run1, run2 bytes.Buffer
		if err := Compute(nl, Config{}).WriteText(&run1, nl); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		if err := Compute(nl, Config{}).WriteText(&run2, nl); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		if !bytes.Equal(run1.Bytes(), run2.Bytes()) {
			t.Fatalf("nondeterministic scores for %q:\n%s\n----\n%s", src, run1.String(), run2.String())
		}
	})
}
