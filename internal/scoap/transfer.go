// Per-gate-kind SCOAP transfer functions. The contract both functions obey
// (pinned exhaustively by TestTransferSoundness against brute-force
// enumeration over three-valued partial assignments):
//
//   - CtrlTransfer(k, in).Cv = 1 + the minimum, over partial input
//     assignments σ ∈ {0,1,X}^n with logic.TryEval(k, σ) = v, of the summed
//     per-input cost of σ's assigned pins (CC0 for a 0, CC1 for a 1, X
//     free).
//   - ObsTransfer(k, pin, in, co) = co + 1 + the minimum, over partial
//     assignments σ to the other pins that make the output a known,
//     complementary function of pin (σ∪{pin=0} and σ∪{pin=1} evaluate to
//     distinct known values), of σ's summed cost.
//
// Both treat input pins as independent — the standard SCOAP approximation;
// reconvergent fanout and tied pins make the scores optimistic, never
// invalid. Malformed arities (possible on leniently parsed netlists) score
// Inf: a broken gate can be neither controlled nor sensitized.
package scoap

import "gatewords/internal/logic"

// CtrlTransfer computes the output controllability pair of a k-kind
// combinational gate from its input pairs (including the +1 level charge).
func CtrlTransfer(k logic.Kind, in []Pair) Pair {
	if !k.IsCombinational() || !k.ValidArity(len(in)) {
		return Pair{C0: Inf, C1: Inf}
	}
	var p Pair
	switch k {
	case logic.Buf:
		p = in[0]
	case logic.Not:
		p = Pair{C0: in[0].C1, C1: in[0].C0}
	case logic.And:
		p = andPair(in)
	case logic.Nand:
		p = invert(andPair(in))
	case logic.Or:
		p = orPair(in)
	case logic.Nor:
		p = invert(orPair(in))
	case logic.Xor:
		p = parityPair(in)
	case logic.Xnor:
		p = invert(parityPair(in))
	case logic.Mux2:
		p = muxPair(in[0], in[1], in[2])
	case logic.Aoi21:
		// !((a&b) | c): 1 needs (a&b)=0 and c=0; 0 needs a=b=1 or c=1.
		p = Pair{
			C1: add(min2(in[0].C0, in[1].C0), in[2].C0),
			C0: min2(add(in[0].C1, in[1].C1), in[2].C1),
		}
	case logic.Oai21:
		// !((a|b) & c): 1 needs a=b=0 or c=0; 0 needs (a|b)=1 and c=1.
		p = Pair{
			C1: min2(add(in[0].C0, in[1].C0), in[2].C0),
			C0: add(min2(in[0].C1, in[1].C1), in[2].C1),
		}
	default:
		return Pair{C0: Inf, C1: Inf}
	}
	return Pair{C0: add(p.C0, 1), C1: add(p.C1, 1)}
}

// andPair is the AND-gate body: 0 from the cheapest controlling input, 1
// from every input at 1.
func andPair(in []Pair) Pair {
	p := Pair{C0: Inf, C1: 0}
	for _, ip := range in {
		p.C0 = min2(p.C0, ip.C0)
		p.C1 = add(p.C1, ip.C1)
	}
	return p
}

// orPair is the dual: 1 from the cheapest controlling input, 0 from all at 0.
func orPair(in []Pair) Pair {
	p := Pair{C0: 0, C1: Inf}
	for _, ip := range in {
		p.C1 = min2(p.C1, ip.C1)
		p.C0 = add(p.C0, ip.C0)
	}
	return p
}

// parityPair runs the min-plus parity DP: even/odd track the cheapest full
// assignment of the inputs seen so far with even/odd count of ones (XOR
// needs every input known).
func parityPair(in []Pair) Pair {
	even, odd := Cost(0), Inf
	for _, ip := range in {
		even, odd = min2(add(even, ip.C0), add(odd, ip.C1)),
			min2(add(odd, ip.C0), add(even, ip.C1))
	}
	return Pair{C0: even, C1: odd}
}

// muxPair scores out = sel ? b : a. The third term is the X-optimism path:
// both data pins at v determine the output with the select unknown.
func muxPair(sel, a, b Pair) Pair {
	return Pair{
		C0: min2(min2(add(sel.C0, a.C0), add(sel.C1, b.C0)), add(a.C0, b.C0)),
		C1: min2(min2(add(sel.C0, a.C1), add(sel.C1, b.C1)), add(a.C1, b.C1)),
	}
}

func invert(p Pair) Pair { return Pair{C0: p.C1, C1: p.C0} }

// ObsTransfer computes the observability of input pin `pin` of a k-kind
// combinational gate: the output's observability plus the cheapest
// sensitization of the remaining pins plus the level charge.
func ObsTransfer(k logic.Kind, pin int, in []Pair, coOut Cost) Cost {
	if !k.IsCombinational() || !k.ValidArity(len(in)) || pin < 0 || pin >= len(in) {
		return Inf
	}
	var sens Cost
	switch k {
	case logic.Buf, logic.Not:
		sens = 0
	case logic.And, logic.Nand:
		// Every side pin at its non-controlling 1.
		sens = 0
		for i, ip := range in {
			if i != pin {
				sens = add(sens, ip.C1)
			}
		}
	case logic.Or, logic.Nor:
		sens = 0
		for i, ip := range in {
			if i != pin {
				sens = add(sens, ip.C0)
			}
		}
	case logic.Xor, logic.Xnor:
		// Parity passes any known side values: each side pin at its cheaper
		// polarity.
		sens = 0
		for i, ip := range in {
			if i != pin {
				sens = add(sens, min2(ip.C0, ip.C1))
			}
		}
	case logic.Mux2:
		sel, a, b := in[0], in[1], in[2]
		switch pin {
		case 0: // select observable only when the data pins differ
			sens = min2(add(a.C0, b.C1), add(a.C1, b.C0))
		case 1:
			sens = sel.C0
		default:
			sens = sel.C1
		}
	case logic.Aoi21:
		// !((a&b) | c): a needs b=1 c=0 (b symmetric); c needs (a&b)=0.
		a, b, c := in[0], in[1], in[2]
		switch pin {
		case 0:
			sens = add(b.C1, c.C0)
		case 1:
			sens = add(a.C1, c.C0)
		default:
			sens = min2(a.C0, b.C0)
		}
	case logic.Oai21:
		// !((a|b) & c): a needs b=0 c=1 (b symmetric); c needs (a|b)=1.
		a, b, c := in[0], in[1], in[2]
		switch pin {
		case 0:
			sens = add(b.C0, c.C1)
		case 1:
			sens = add(a.C0, c.C1)
		default:
			sens = min2(a.C1, b.C1)
		}
	default:
		return Inf
	}
	return add(add(coOut, sens), 1)
}
