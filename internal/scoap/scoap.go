// Package scoap computes SCOAP testability scores — combinational
// controllability (CC0/CC1) and observability (CO) — for every net of a
// gate-level netlist, the classic static dataflow analysis of Goldstein's
// SCOAP (and the per-gate scoring behind Trust-Hub Trojan benchmarks).
//
// CC0(n)/CC1(n) estimate how many input assignments are needed to drive net
// n to 0/1; CO(n) estimates how many are needed to propagate n's value to a
// primary output. Both are min-plus dataflow problems: controllability flows
// forward from primary inputs through per-gate-kind transfer functions,
// observability flows backward from primary outputs through pin
// sensitization costs, and flip-flop boundaries add a configurable
// sequential depth cost (the SC0/SC1/SO time-frame charge, collapsed to one
// constant per register crossing). Hard-to-control and hard-to-observe
// outliers are the canonical static tell of inserted Hardware-Trojan
// triggers, which is what internal rules NL5xx and the gatetriage ranking
// consume.
//
// The solver is a deterministic worklist fixed point (SPFA-style: FIFO over
// gates, relaxations strictly decrease a score) with saturating arithmetic;
// Inf means "cannot be controlled/observed" (X sources, dead cones, or
// widened cycles). Every transfer adds at least one, so all dataflow cycles
// — lenient combinational cycles and sequential register feedback alike —
// have positive weight and the fixed point is unique and reached in finitely
// many relaxations. A relaxation budget backstops adversarial inputs: if a
// pass exhausts it, the combinational SCCs still in flight are widened to
// Inf (deterministically, via netlist.CombinationalSCCs), frozen, and the
// pass restarts once. Scores are therefore a pure function of the netlist
// and Config — byte-identical across runs and worker counts.
package scoap

import (
	"fmt"
	"io"
	"math"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// Cost is a saturating SCOAP score. Inf is the absorbing top: uncontrollable
// or unobservable.
type Cost uint32

// Inf is the saturated "impossible" score.
const Inf Cost = math.MaxUint32

// add is saturating addition: any sum at or above Inf, or involving Inf,
// stays Inf.
func add(a, b Cost) Cost {
	if a == Inf || b == Inf {
		return Inf
	}
	if s := uint64(a) + uint64(b); s < uint64(Inf) {
		return Cost(s)
	}
	return Inf
}

// min2 returns the smaller cost.
func min2(a, b Cost) Cost {
	if b < a {
		return b
	}
	return a
}

// String renders the cost ("inf" for Inf).
func (c Cost) String() string {
	if c == Inf {
		return "inf"
	}
	return fmt.Sprintf("%d", uint32(c))
}

// Finite reports whether the cost is below Inf.
func (c Cost) Finite() bool { return c != Inf }

// Pair is the (CC0, CC1) controllability of one net.
type Pair struct {
	C0, C1 Cost
}

// DefaultSeqCost is the default register-crossing charge: each DFF boundary
// adds one to the score in both directions, the one-time-frame cost of the
// sequential SCOAP measures.
const DefaultSeqCost = 1

// Config tunes the analysis. The zero value is ready to use.
type Config struct {
	// SeqCost is the cost added when a score crosses a flip-flop (forward:
	// CC(Q) = CC(D) + SeqCost; backward: CO(D) = CO(Q) + SeqCost). Values
	// below 1 select DefaultSeqCost — a zero-cost crossing would give
	// sequential feedback loops zero weight and break convergence.
	SeqCost int
	// EvalBudget caps gate relaxations per pass; 0 selects 64×gates + 256.
	// Exhausting it widens the still-active combinational SCCs to Inf and
	// restarts the pass once (Result.WidenedSCCs counts them).
	EvalBudget int64
}

func (c Config) seqCost() Cost {
	if c.SeqCost < 1 {
		return DefaultSeqCost
	}
	if c.SeqCost > int(Inf) {
		return Inf
	}
	return Cost(c.SeqCost)
}

func (c Config) budget(gates int) int64 {
	if c.EvalBudget > 0 {
		return c.EvalBudget
	}
	return 64*int64(gates) + 256
}

// Result holds the computed scores, indexed by netlist.NetID.
type Result struct {
	CC0, CC1 []Cost
	CO       []Cost
	// HasPO records whether observability was seeded: with no primary
	// outputs every CO is Inf and observability-based verdicts should be
	// skipped.
	HasPO bool
	// Iterations counts gate relaxation steps across the forward and
	// backward passes (the scoap_iterations counter).
	Iterations int64
	// WidenedSCCs counts combinational SCCs widened to Inf because a pass
	// exhausted its relaxation budget (the scoap_widened_sccs counter).
	WidenedSCCs int
}

// Controllability returns the (CC0, CC1) pair of a net.
func (r *Result) Controllability(n netlist.NetID) Pair {
	return Pair{C0: r.CC0[n], C1: r.CC1[n]}
}

// Observability returns the CO score of a net.
func (r *Result) Observability(n netlist.NetID) Cost { return r.CO[n] }

// Testability is the combined per-net score CC0+CC1+CO (saturating) — the
// scalar the NL5xx rules and the triage ranking threshold on. Higher is
// harder to test; Inf means the net can never be fully exercised.
func (r *Result) Testability(n netlist.NetID) Cost {
	return add(add(r.CC0[n], r.CC1[n]), r.CO[n])
}

// AlwaysX reports whether the net can be driven to neither 0 nor 1 — it is
// permanently unknown (downstream of an X source, or inside a widened
// cycle).
func (r *Result) AlwaysX(n netlist.NetID) bool {
	return r.CC0[n] == Inf && r.CC1[n] == Inf
}

// Compute runs the full analysis over nl. It never mutates the netlist and
// accepts leniently parsed netlists: malformed gates (bad arities) score Inf,
// multi-driven nets keep their recorded driver, and combinational cycles
// either converge through the positive-weight fixed point or widen.
func Compute(nl *netlist.Netlist, cfg Config) *Result {
	nNets, nGates := nl.NetCount(), nl.GateCount()
	res := &Result{
		CC0: make([]Cost, nNets),
		CC1: make([]Cost, nNets),
		CO:  make([]Cost, nNets),
	}
	for i := 0; i < nNets; i++ {
		res.CC0[i], res.CC1[i], res.CO[i] = Inf, Inf, Inf
	}
	st := &solver{nl: nl, cfg: cfg, res: res, inQ: make([]bool, nGates)}
	st.forward()
	st.backward()
	return res
}

// solver carries one Compute run's worklist state.
type solver struct {
	nl   *netlist.Netlist
	cfg  Config
	res  *Result
	inQ  []bool
	q    []netlist.GateID // FIFO ring storage (reset per pass)
	head int

	frozen []bool // per-net: pinned at Inf by widening
	inbuf  []Pair
}

func (s *solver) resetQueue() {
	s.q = s.q[:0]
	s.head = 0
	for i := range s.inQ {
		s.inQ[i] = false
	}
}

func (s *solver) push(g netlist.GateID) {
	if s.inQ[g] {
		return
	}
	s.inQ[g] = true
	s.q = append(s.q, g)
}

func (s *solver) pop() (netlist.GateID, bool) {
	if s.head >= len(s.q) {
		return netlist.NoGate, false
	}
	g := s.q[s.head]
	s.head++
	s.inQ[g] = false
	// Compact the ring occasionally so a long run does not hold the whole
	// history live.
	if s.head > 4096 && s.head*2 > len(s.q) {
		s.q = append(s.q[:0], s.q[s.head:]...)
		s.head = 0
	}
	return g, true
}

// seedAll enqueues every gate in ID order — the deterministic initial
// frontier of each pass.
func (s *solver) seedAll() {
	s.resetQueue()
	for gi := 0; gi < s.nl.GateCount(); gi++ {
		s.push(netlist.GateID(gi))
	}
}

// forward computes CC0/CC1: primary inputs cost 1, each gate applies its
// kind's controllability transfer, DFFs charge the sequential crossing.
func (s *solver) forward() {
	nl, res := s.nl, s.res
	for ni := 0; ni < nl.NetCount(); ni++ {
		if nl.Net(netlist.NetID(ni)).IsPI {
			res.CC0[ni], res.CC1[ni] = 1, 1
		}
	}
	s.runPass(s.relaxForward, func(n netlist.NetID) {
		res.CC0[n], res.CC1[n] = Inf, Inf
	}, func() {
		// Restart: re-seed PI costs (frozen nets stay Inf).
		for ni := 0; ni < nl.NetCount(); ni++ {
			id := netlist.NetID(ni)
			if s.frozen[id] {
				res.CC0[ni], res.CC1[ni] = Inf, Inf
				continue
			}
			res.CC0[ni], res.CC1[ni] = Inf, Inf
			if nl.Net(id).IsPI {
				res.CC0[ni], res.CC1[ni] = 1, 1
			}
		}
	})
}

// relaxForward recomputes one gate's output controllability from its current
// input scores; it returns the gates to re-examine when the score dropped.
func (s *solver) relaxForward(g netlist.GateID) bool {
	nl, res := s.nl, s.res
	gate := nl.Gate(g)
	out := gate.Output
	if out < 0 || int(out) >= len(res.CC0) || (s.frozen != nil && s.frozen[out]) {
		return false
	}
	var next Pair
	if gate.Kind == logic.DFF {
		if len(gate.Inputs) != 1 {
			return false
		}
		d := gate.Inputs[0]
		sc := s.cfg.seqCost()
		next = Pair{C0: add(res.CC0[d], sc), C1: add(res.CC1[d], sc)}
	} else {
		s.inbuf = s.inbuf[:0]
		for _, in := range gate.Inputs {
			s.inbuf = append(s.inbuf, Pair{C0: res.CC0[in], C1: res.CC1[in]})
		}
		next = CtrlTransfer(gate.Kind, s.inbuf)
	}
	improved := false
	if next.C0 < res.CC0[out] {
		res.CC0[out] = next.C0
		improved = true
	}
	if next.C1 < res.CC1[out] {
		res.CC1[out] = next.C1
		improved = true
	}
	if improved {
		for _, f := range nl.Net(out).Fanout {
			if f >= 0 && int(f) < nl.GateCount() {
				s.push(f)
			}
		}
	}
	return improved
}

// backward computes CO: primary outputs cost 0, each gate charges the pin
// sensitization cost of propagating an input to its output, DFFs charge the
// sequential crossing from Q back to D.
func (s *solver) backward() {
	nl, res := s.nl, s.res
	seedPOs := func() {
		for ni := 0; ni < nl.NetCount(); ni++ {
			id := netlist.NetID(ni)
			res.CO[ni] = Inf
			if s.frozen != nil && s.frozen[id] {
				continue
			}
			if nl.Net(id).IsPO {
				res.CO[ni] = 0
				res.HasPO = true
			}
		}
	}
	seedPOs()
	if !res.HasPO {
		return
	}
	s.runPass(s.relaxBackward, func(n netlist.NetID) {
		res.CO[n] = Inf
	}, seedPOs)
}

// relaxBackward propagates observability from a gate's output net to its
// input nets.
func (s *solver) relaxBackward(g netlist.GateID) bool {
	nl, res := s.nl, s.res
	gate := nl.Gate(g)
	out := gate.Output
	if out < 0 || int(out) >= len(res.CO) {
		return false
	}
	coOut := res.CO[out]
	improved := false
	relax := func(in netlist.NetID, co Cost) {
		if s.frozen != nil && s.frozen[in] {
			return
		}
		if co < res.CO[in] {
			res.CO[in] = co
			if d := nl.Net(in).Driver; d != netlist.NoGate {
				s.push(d)
			}
			improved = true
		}
	}
	if gate.Kind == logic.DFF {
		if len(gate.Inputs) == 1 {
			relax(gate.Inputs[0], add(coOut, s.cfg.seqCost()))
		}
		return improved
	}
	s.inbuf = s.inbuf[:0]
	for _, in := range gate.Inputs {
		s.inbuf = append(s.inbuf, Pair{C0: res.CC0[in], C1: res.CC1[in]})
	}
	for pin, in := range gate.Inputs {
		if in < 0 || int(in) >= len(res.CO) {
			continue
		}
		relax(in, ObsTransfer(gate.Kind, pin, s.inbuf, coOut))
	}
	return improved
}

// runPass drains the worklist under the relaxation budget. If the budget is
// exhausted, the combinational SCCs still in flight are widened: every
// member gate's output net is reset by widen() and frozen at Inf, the pass
// restarts once via reseed(), and a second exhaustion hard-stops (the scores
// then under-approximate the fixed point but remain deterministic).
func (s *solver) runPass(relax func(netlist.GateID) bool, widen func(netlist.NetID), reseed func()) {
	budget := s.cfg.budget(s.nl.GateCount())
	s.seedAll()
	for restart := 0; ; restart++ {
		spent := int64(0)
		for {
			g, ok := s.pop()
			if !ok {
				return
			}
			spent++
			s.res.Iterations++
			relax(g)
			if spent >= budget {
				break
			}
		}
		if restart >= 1 {
			return // second exhaustion: stop deterministically
		}
		if !s.widenActiveSCCs(widen) {
			return // budget spent outside any combinational cycle: accept
		}
		reseed()
		s.seedAll()
	}
}

// widenActiveSCCs freezes the nets of every combinational SCC that still has
// a member gate queued, reporting whether anything was widened.
func (s *solver) widenActiveSCCs(widen func(netlist.NetID)) bool {
	if s.frozen == nil {
		s.frozen = make([]bool, s.nl.NetCount())
	}
	widened := false
	for _, comp := range s.nl.CombinationalSCCs() {
		active := false
		for _, g := range comp {
			if s.inQ[g] {
				active = true
				break
			}
		}
		if !active {
			continue
		}
		for _, g := range comp {
			out := s.nl.Gate(g).Output
			if out >= 0 && int(out) < len(s.frozen) && !s.frozen[out] {
				s.frozen[out] = true
				widen(out)
			}
		}
		s.res.WidenedSCCs++
		widened = true
	}
	return widened
}

// WriteText renders one line per net — "<name> cc0 cc1 co" in net ID
// (declaration) order — followed by a summary line. The rendering is
// byte-deterministic and is what the committed b14a golden pins.
func (r *Result) WriteText(w io.Writer, nl *netlist.Netlist) error {
	for ni := 0; ni < nl.NetCount(); ni++ {
		id := netlist.NetID(ni)
		if _, err := fmt.Fprintf(w, "%s %s %s %s\n",
			nl.NetName(id), r.CC0[ni], r.CC1[ni], r.CO[ni]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# nets=%d iterations=%d widened_sccs=%d has_po=%v\n",
		nl.NetCount(), r.Iterations, r.WidenedSCCs, r.HasPO)
	return err
}
