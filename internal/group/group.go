// Package group implements the first-level grouping of potential word bits
// (DAC'15 §2.2): a single pass over the netlist in file order, grouping the
// output nets of consecutive gate lines whose fanin-cone roots have the same
// gate type. The pass is O(N) in the number of nets; cross-checking between
// adjacent groups is deliberately out of scope (the paper leaves it to
// future work), which the tests pin down.
package group

import (
	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// Options tunes candidate selection.
type Options struct {
	// DFFInputsOnly restricts candidate bits to nets that feed flip-flop D
	// pins. The paper groups every net line; reference words are always FF
	// input nets, so this is a cheap precision/recall trade-off exposed for
	// ablation. Default false (paper behavior).
	DFFInputsOnly bool
}

// Adjacent returns groups of potential word bits. Each group is a maximal
// run of consecutive gate lines whose root gate types are equal, where the
// gate type includes the input count — the paper's example groups nets whose
// roots are all "3-input NAND gates", so a 2-input NAND line breaks the run.
// Flip-flop lines are not candidates themselves (a word bit is the net
// feeding the register, whose cone is combinational) and they break runs.
func Adjacent(nl *netlist.Netlist, opt Options) [][]netlist.NetID {
	feedsDFF := map[netlist.NetID]bool{}
	if opt.DFFInputsOnly {
		for _, g := range nl.DFFs() {
			for _, in := range nl.Gate(g).Inputs {
				feedsDFF[in] = true
			}
		}
	}
	type rootType struct {
		kind  logic.Kind
		arity int
	}
	var groups [][]netlist.NetID
	var run []netlist.NetID
	prev := rootType{kind: logic.Invalid}
	flush := func() {
		if len(run) > 0 {
			groups = append(groups, run)
			run = nil
		}
		prev = rootType{kind: logic.Invalid}
	}
	for gi := 0; gi < nl.GateCount(); gi++ {
		g := nl.Gate(netlist.GateID(gi))
		if !g.Kind.IsCombinational() {
			flush()
			continue
		}
		if opt.DFFInputsOnly && !feedsDFF[g.Output] {
			flush()
			continue
		}
		cur := rootType{kind: g.Kind, arity: len(g.Inputs)}
		if cur != prev {
			flush()
			prev = cur
		}
		run = append(run, g.Output)
	}
	flush()
	return groups
}
