package group

import (
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// build assembles a netlist from a gate plan; each entry drives net g<i>.
func build(t *testing.T, plan []struct {
	kind  logic.Kind
	arity int
}) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("t")
	a := nl.MustNet("a")
	b := nl.MustNet("b")
	c := nl.MustNet("c")
	nl.MarkPI(a)
	nl.MarkPI(b)
	nl.MarkPI(c)
	srcs := []netlist.NetID{a, b, c}
	for i, p := range plan {
		out := nl.MustNet("g" + string(rune('0'+i/10)) + string(rune('0'+i%10)))
		ins := make([]netlist.NetID, p.arity)
		for j := range ins {
			ins[j] = srcs[j%len(srcs)]
		}
		nl.MustGate("inst"+string(rune('0'+i/10))+string(rune('0'+i%10)), p.kind, out, ins...)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

type pk = struct {
	kind  logic.Kind
	arity int
}

func TestAdjacentRuns(t *testing.T) {
	nl := build(t, []pk{
		{logic.Nand, 3}, {logic.Nand, 3}, {logic.Nand, 3}, // run of 3
		{logic.Nor, 2}, {logic.Nor, 2}, // run of 2
		{logic.Nand, 3}, // new run: interrupted by the NORs
	})
	groups := Adjacent(nl, Options{})
	if len(groups) != 3 {
		t.Fatalf("groups = %d: %v", len(groups), groups)
	}
	if len(groups[0]) != 3 || len(groups[1]) != 2 || len(groups[2]) != 1 {
		t.Errorf("group sizes: %d %d %d", len(groups[0]), len(groups[1]), len(groups[2]))
	}
}

func TestAdjacentAritySplits(t *testing.T) {
	// Same kind, different input counts: "3-input NAND" is a different
	// root type from "2-input NAND".
	nl := build(t, []pk{{logic.Nand, 2}, {logic.Nand, 2}, {logic.Nand, 3}, {logic.Nand, 3}})
	groups := Adjacent(nl, Options{})
	if len(groups) != 2 || len(groups[0]) != 2 || len(groups[1]) != 2 {
		t.Fatalf("arity must split runs: %v", groups)
	}
}

func TestAdjacentDFFBreaksRuns(t *testing.T) {
	nl := netlist.New("t")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	x := nl.MustNet("x")
	nl.MustGate("g1", logic.Not, x, a)
	q := nl.MustNet("q")
	nl.MustGate("ff", logic.DFF, q, x)
	y := nl.MustNet("y")
	nl.MustGate("g2", logic.Not, y, q)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	groups := Adjacent(nl, Options{})
	if len(groups) != 2 {
		t.Fatalf("DFF must break runs: %v", groups)
	}
}

func TestAdjacentDFFInputsOnly(t *testing.T) {
	nl := netlist.New("t")
	a := nl.MustNet("a")
	nl.MarkPI(a)
	d1 := nl.MustNet("d1")
	nl.MustGate("g1", logic.Not, d1, a)
	junk := nl.MustNet("junk")
	nl.MustGate("g2", logic.Not, junk, a)
	d2 := nl.MustNet("d2")
	nl.MustGate("g3", logic.Not, d2, junk)
	q1 := nl.MustNet("q1")
	nl.MustGate("ff1", logic.DFF, q1, d1)
	q2 := nl.MustNet("q2")
	nl.MustGate("ff2", logic.DFF, q2, d2)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	all := Adjacent(nl, Options{})
	if len(all) != 1 || len(all[0]) != 3 {
		t.Fatalf("unrestricted: %v", all)
	}
	restricted := Adjacent(nl, Options{DFFInputsOnly: true})
	// junk breaks the run, so d1 and d2 are separate groups.
	if len(restricted) != 2 {
		t.Fatalf("restricted: %v", restricted)
	}
	for _, g := range restricted {
		for _, n := range g {
			if name := nl.NetName(n); name != "d1" && name != "d2" {
				t.Errorf("non-D net %s in restricted groups", name)
			}
		}
	}
}

func TestAdjacentEmptyNetlist(t *testing.T) {
	nl := netlist.New("t")
	if groups := Adjacent(nl, Options{}); len(groups) != 0 {
		t.Errorf("empty netlist: %v", groups)
	}
}

// TestAdjacentLinear pins the §2.2 contract: the pass visits each line once
// and never merges across non-adjacent lines even when root types repeat.
func TestAdjacentNoCrossGroupMerging(t *testing.T) {
	nl := build(t, []pk{{logic.Nand, 2}, {logic.Nor, 2}, {logic.Nand, 2}})
	groups := Adjacent(nl, Options{})
	if len(groups) != 3 {
		t.Fatalf("cross-group merging happened: %v", groups)
	}
}
