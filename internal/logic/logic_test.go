package logic

import (
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	cases := map[Value]string{Zero: "0", One: "1", X: "X", Value(7): "X"}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("Value(%d).String() = %q, want %q", v, got, want)
		}
	}
}

func TestValueNot(t *testing.T) {
	if Zero.Not() != One || One.Not() != Zero || X.Not() != X {
		t.Errorf("Not: got %s %s %s", Zero.Not(), One.Not(), X.Not())
	}
}

func TestValueKnown(t *testing.T) {
	if !Zero.Known() || !One.Known() || X.Known() {
		t.Error("Known misclassifies values")
	}
}

func TestFromBool(t *testing.T) {
	if FromBool(true) != One || FromBool(false) != Zero {
		t.Error("FromBool wrong")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		if got := KindFromString(k.String()); got != k {
			t.Errorf("KindFromString(%q) = %s", k.String(), got)
		}
	}
	if KindFromString("INVALID") != Invalid {
		t.Error("KindFromString must not resolve INVALID")
	}
	if KindFromString("nand") != Invalid {
		t.Error("KindFromString is case-sensitive")
	}
}

func TestKindClassification(t *testing.T) {
	if !DFF.IsSequential() || DFF.IsCombinational() {
		t.Error("DFF classification wrong")
	}
	for _, k := range CombinationalKinds() {
		if !k.IsCombinational() || k.IsSequential() {
			t.Errorf("%s classification wrong", k)
		}
	}
	if Input.IsCombinational() || Input.IsSequential() {
		t.Error("Input pseudo-kind must be neither")
	}
}

func TestArity(t *testing.T) {
	cases := []struct {
		k    Kind
		n    int
		want bool
	}{
		{And, 1, false}, {And, 2, true}, {And, 7, true},
		{Not, 1, true}, {Not, 2, false},
		{Buf, 1, true},
		{Mux2, 3, true}, {Mux2, 2, false},
		{Aoi21, 3, true}, {Oai21, 3, true}, {Oai21, 4, false},
		{DFF, 1, true}, {DFF, 2, false},
		{Xor, 2, true}, {Xor, 5, true}, {Xor, 1, false},
	}
	for _, c := range cases {
		if got := c.k.ValidArity(c.n); got != c.want {
			t.Errorf("%s.ValidArity(%d) = %v, want %v", c.k, c.n, got, c.want)
		}
	}
}

func TestControllingValues(t *testing.T) {
	cases := []struct {
		k   Kind
		cv  Value
		has bool
		out Value
	}{
		{And, Zero, true, Zero},
		{Nand, Zero, true, One},
		{Or, One, true, One},
		{Nor, One, true, Zero},
		{Xor, X, false, X},
		{Mux2, X, false, X},
		{Not, X, false, X},
	}
	for _, c := range cases {
		cv, has := c.k.ControllingValue()
		if has != c.has || cv != c.cv {
			t.Errorf("%s.ControllingValue() = %s,%v want %s,%v", c.k, cv, has, c.cv, c.has)
		}
		out, hasOut := c.k.ControlledOutput()
		if has && (!hasOut || out != c.out) {
			t.Errorf("%s.ControlledOutput() = %s,%v want %s", c.k, out, hasOut, c.out)
		}
	}
}

// TestEvalTruthTables checks binary evaluation against the boolean
// definitions over all 0/1 input combinations for every kind and small
// arities.
func TestEvalTruthTables(t *testing.T) {
	ref := func(k Kind, bits []bool) bool {
		and := func() bool {
			for _, b := range bits {
				if !b {
					return false
				}
			}
			return true
		}
		or := func() bool {
			for _, b := range bits {
				if b {
					return true
				}
			}
			return false
		}
		xor := func() bool {
			p := false
			for _, b := range bits {
				p = p != b
			}
			return p
		}
		switch k {
		case And:
			return and()
		case Nand:
			return !and()
		case Or:
			return or()
		case Nor:
			return !or()
		case Xor:
			return xor()
		case Xnor:
			return !xor()
		case Not:
			return !bits[0]
		case Buf:
			return bits[0]
		case Mux2:
			if bits[0] {
				return bits[2]
			}
			return bits[1]
		case Aoi21:
			return !(bits[0] && bits[1] || bits[2])
		case Oai21:
			return !((bits[0] || bits[1]) && bits[2])
		}
		t.Fatalf("no reference for %s", k)
		return false
	}
	for _, k := range CombinationalKinds() {
		arities := []int{2, 3, 4}
		if n, fixed := k.FixedArity(); fixed {
			arities = []int{n}
		}
		for _, n := range arities {
			for mask := 0; mask < 1<<n; mask++ {
				bits := make([]bool, n)
				vals := make([]Value, n)
				for i := range bits {
					bits[i] = mask>>i&1 == 1
					vals[i] = FromBool(bits[i])
				}
				want := FromBool(ref(k, bits))
				if got := Eval(k, vals); got != want {
					t.Fatalf("Eval(%s, %v) = %s, want %s", k, bits, got, want)
				}
			}
		}
	}
}

func TestEvalPartialKnowledge(t *testing.T) {
	cases := []struct {
		k    Kind
		in   []Value
		want Value
	}{
		{And, []Value{Zero, X}, Zero},
		{And, []Value{One, X}, X},
		{Nand, []Value{Zero, X, X}, One},
		{Or, []Value{One, X}, One},
		{Nor, []Value{X, One}, Zero},
		{Xor, []Value{X, One}, X},
		{Mux2, []Value{X, One, One}, One}, // both data equal: sel irrelevant
		{Mux2, []Value{X, One, Zero}, X},
		{Mux2, []Value{Zero, One, X}, One},
		{Aoi21, []Value{X, X, One}, Zero},
		{Aoi21, []Value{Zero, X, X}, X},
		{Oai21, []Value{X, X, Zero}, One},
	}
	for _, c := range cases {
		if got := Eval(c.k, c.in); got != c.want {
			t.Errorf("Eval(%s, %v) = %s, want %s", c.k, c.in, got, c.want)
		}
	}
}

func TestEvalPanicsOnBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval(Not, 2 inputs) must panic")
		}
	}()
	Eval(Not, []Value{One, Zero})
}

// TestTryEval pins the non-panicking entry point used on leniently parsed
// netlists: bad arities and non-combinational kinds come back as errors with
// the same messages Eval panics with, and valid calls agree with Eval.
func TestTryEval(t *testing.T) {
	if _, err := TryEval(Not, []Value{One, Zero}); err == nil {
		t.Error("TryEval(NOT/2) returned no error")
	} else if want := "logic: NOT gate with 2 inputs"; err.Error() != want {
		t.Errorf("TryEval(NOT/2) err = %q, want %q", err, want)
	}
	if _, err := TryEval(DFF, []Value{One}); err == nil {
		t.Error("TryEval(DFF) returned no error")
	}
	for _, c := range []struct {
		k    Kind
		in   []Value
		want Value
	}{
		{And, []Value{One, One}, One},
		{Nand, []Value{One, Zero}, One},
		{Xor, []Value{One, Zero, X}, X},
		{Mux2, []Value{Zero, One, Zero}, One},
	} {
		got, err := TryEval(c.k, c.in)
		if err != nil {
			t.Errorf("TryEval(%s, %v): %v", c.k, c.in, err)
			continue
		}
		if got != c.want || got != Eval(c.k, c.in) {
			t.Errorf("TryEval(%s, %v) = %s, want %s (= Eval)", c.k, c.in, got, c.want)
		}
	}
}

// completions enumerates all 0/1 fillings of the unknown positions.
func completions(in []Value) [][]Value {
	var unknown []int
	for i, v := range in {
		if !v.Known() {
			unknown = append(unknown, i)
		}
	}
	var out [][]Value
	for mask := 0; mask < 1<<len(unknown); mask++ {
		c := append([]Value(nil), in...)
		for j, idx := range unknown {
			c[idx] = FromBool(mask>>j&1 == 1)
		}
		out = append(out, c)
	}
	return out
}

// TestImplyInputsSoundAndConflictExact brute-forces every kind, arity <= 3
// (4 for variadic), output value, and three-valued input combination: any
// value ImplyInputs forces must hold in every completion consistent with the
// output, and a conflict must be reported exactly when no completion exists.
func TestImplyInputsSoundAndConflictExact(t *testing.T) {
	for _, k := range CombinationalKinds() {
		arities := []int{2, 3, 4}
		if n, fixed := k.FixedArity(); fixed {
			arities = []int{n}
		}
		for _, n := range arities {
			total := 1
			for i := 0; i < n; i++ {
				total *= 3
			}
			for code := 0; code < total; code++ {
				in := make([]Value, n)
				c := code
				for i := 0; i < n; i++ {
					in[i] = Value(c % 3) // X, Zero, One
					c /= 3
				}
				for _, out := range []Value{Zero, One} {
					consistent := [][]Value{}
					for _, comp := range completions(in) {
						if Eval(k, comp) == out {
							consistent = append(consistent, comp)
						}
					}
					work := append([]Value(nil), in...)
					_, conflict := ImplyInputs(k, out, work)
					if len(consistent) == 0 {
						// ImplyInputs is unit propagation, not a SAT check:
						// it may miss some conflicts, but when it reports
						// one, it must be real — checked in the else branch.
						continue
					}
					if conflict {
						t.Fatalf("ImplyInputs(%s, %s, %v): spurious conflict", k, out, in)
					}
					for i, v := range work {
						if !v.Known() || in[i].Known() {
							continue
						}
						for _, comp := range consistent {
							if comp[i] != v {
								t.Fatalf("ImplyInputs(%s, %s, %v) forced in[%d]=%s but completion %v is consistent",
									k, out, in, i, v, comp)
							}
						}
					}
				}
			}
		}
	}
}

// TestEvalMonotone checks that refining an X input to a concrete value never
// changes an already-known output (quick property).
func TestEvalMonotone(t *testing.T) {
	f := func(kindSel uint8, raw []uint8, pos uint8, bit bool) bool {
		kinds := CombinationalKinds()
		k := kinds[int(kindSel)%len(kinds)]
		n := 3
		if fixed, ok := k.FixedArity(); ok {
			n = fixed
		}
		in := make([]Value, n)
		for i := range in {
			if i < len(raw) {
				in[i] = Value(raw[i] % 3)
			}
		}
		before := Eval(k, in)
		if !before.Known() {
			return true
		}
		p := int(pos) % n
		if in[p].Known() {
			return true
		}
		in[p] = FromBool(bit)
		return Eval(k, in) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
