// Package logic defines the gate-level cell vocabulary used throughout
// gatewords: gate kinds, three-valued signal values (0, 1, X), controlling
// and controlled values, forward truth evaluation under partial knowledge,
// and backward implication rules.
//
// The reverse-engineering algorithms in this module are purely structural:
// they treat a gate kind as an opaque token when hashing circuit shapes. The
// semantic definitions here are what the circuit reducer (internal/reduce)
// and the validation simulator (internal/sim) rely on, so the two views stay
// consistent by construction.
package logic

import "fmt"

// Value is a three-valued logic level. X means "unknown / unassigned"; it is
// the lattice bottom that forward evaluation refines toward 0 or 1.
type Value uint8

// The three signal values.
const (
	X Value = iota // unknown
	Zero
	One
)

// String returns "0", "1" or "X".
func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "X"
	}
}

// Known reports whether v is a definite 0 or 1.
func (v Value) Known() bool { return v == Zero || v == One }

// Not returns the complement of v; X maps to X.
func (v Value) Not() Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	default:
		return X
	}
}

// FromBool converts a Go bool to a Value.
func FromBool(b bool) Value {
	if b {
		return One
	}
	return Zero
}

// Kind identifies a cell type. The combinational kinds below form the
// technology alphabet of the mini synthesis flow; DFF is the only sequential
// kind. Input is a pseudo-kind used for primary inputs when a gate token is
// needed (it never appears as a real gate in a netlist).
type Kind uint8

// Supported cell kinds.
const (
	Invalid Kind = iota
	And          // n-input AND
	Or           // n-input OR
	Nand         // n-input NAND
	Nor          // n-input NOR
	Xor          // n-input XOR (odd parity)
	Xnor         // n-input XNOR (even parity)
	Not          // inverter
	Buf          // buffer
	Mux2         // 2:1 mux; inputs are [sel, a, b], output = sel ? b : a
	Aoi21        // AND-OR-INVERT: !((a&b) | c); inputs [a, b, c]
	Oai21        // OR-AND-INVERT: !((a|b) & c); inputs [a, b, c]
	DFF          // D flip-flop; inputs [d], output is register state
	Input        // pseudo-kind for primary inputs
	numKinds
)

var kindNames = [...]string{
	Invalid: "INVALID",
	And:     "AND",
	Or:      "OR",
	Nand:    "NAND",
	Nor:     "NOR",
	Xor:     "XOR",
	Xnor:    "XNOR",
	Not:     "NOT",
	Buf:     "BUF",
	Mux2:    "MUX2",
	Aoi21:   "AOI21",
	Oai21:   "OAI21",
	DFF:     "DFF",
	Input:   "INPUT",
}

// String returns the canonical upper-case cell name, e.g. "NAND".
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromString parses a canonical cell name (case-sensitive, upper-case) as
// produced by Kind.String. It returns Invalid for unknown names.
func KindFromString(s string) Kind {
	for k, name := range kindNames {
		if name == s && Kind(k) != Invalid {
			return Kind(k)
		}
	}
	return Invalid
}

// Kinds returns all real cell kinds (everything except Invalid and Input),
// in a stable order. Useful for table-driven tests and generators.
func Kinds() []Kind {
	return []Kind{And, Or, Nand, Nor, Xor, Xnor, Not, Buf, Mux2, Aoi21, Oai21, DFF}
}

// CombinationalKinds returns the combinational subset of Kinds.
func CombinationalKinds() []Kind {
	return []Kind{And, Or, Nand, Nor, Xor, Xnor, Not, Buf, Mux2, Aoi21, Oai21}
}

// IsSequential reports whether k is a state-holding cell.
func (k Kind) IsSequential() bool { return k == DFF }

// IsCombinational reports whether k is a combinational cell.
func (k Kind) IsCombinational() bool {
	switch k {
	case And, Or, Nand, Nor, Xor, Xnor, Not, Buf, Mux2, Aoi21, Oai21:
		return true
	}
	return false
}

// FixedArity returns the required input count for kinds with a fixed pin
// list, and (0, false) for variadic kinds (And, Or, Nand, Nor, Xor, Xnor,
// which accept 2 or more inputs).
func (k Kind) FixedArity() (int, bool) {
	switch k {
	case Not, Buf, DFF:
		return 1, true
	case Mux2, Aoi21, Oai21:
		return 3, true
	case And, Or, Nand, Nor, Xor, Xnor:
		return 0, false
	}
	return 0, false
}

// ValidArity reports whether a k-kind gate may have n inputs.
func (k Kind) ValidArity(n int) bool {
	if fixed, ok := k.FixedArity(); ok {
		return n == fixed
	}
	switch k {
	case And, Or, Nand, Nor, Xor, Xnor:
		return n >= 2
	}
	return false
}

// ControllingValue returns the input value that by itself determines the
// output of a k-kind gate, and whether such a value exists. AND/NAND are
// controlled by 0; OR/NOR by 1. Parity gates, buffers, inverters, muxes and
// the complex AOI/OAI cells have no single controlling value on an arbitrary
// pin.
func (k Kind) ControllingValue() (Value, bool) {
	switch k {
	case And, Nand:
		return Zero, true
	case Or, Nor:
		return One, true
	}
	return X, false
}

// ControlledOutput returns the output produced when a controlling value is
// applied to a k-kind gate (the "controlled value"), and whether k has one.
func (k Kind) ControlledOutput() (Value, bool) {
	switch k {
	case And:
		return Zero, true
	case Nand:
		return One, true
	case Or:
		return One, true
	case Nor:
		return Zero, true
	}
	return X, false
}

// Eval computes the output of a k-kind combinational gate over three-valued
// inputs. The result is X unless the known inputs fully determine it. Eval
// panics if the arity is invalid for k, since that indicates a malformed
// netlist that should have been rejected earlier. Call sites that accept
// leniently parsed netlists — where malformed gates are legal — must use
// TryEval instead.
func Eval(k Kind, in []Value) Value {
	v, err := TryEval(k, in)
	if err != nil {
		panic(err.Error())
	}
	return v
}

// TryEval is the non-panicking form of Eval: an invalid arity for k, or a
// non-combinational kind, is reported as an error (with X) instead of a
// panic. verilog.ParseLenient can legally produce such gates, so the lenient
// pipeline routes through TryEval and degrades the offending gate rather
// than crashing.
func TryEval(k Kind, in []Value) (Value, error) {
	if !k.ValidArity(len(in)) {
		return X, fmt.Errorf("logic: %s gate with %d inputs", k, len(in))
	}
	switch k {
	case Buf:
		return in[0], nil
	case Not:
		return in[0].Not(), nil
	case And:
		return evalAnd(in), nil
	case Nand:
		return evalAnd(in).Not(), nil
	case Or:
		return evalOr(in), nil
	case Nor:
		return evalOr(in).Not(), nil
	case Xor:
		return evalXor(in), nil
	case Xnor:
		return evalXor(in).Not(), nil
	case Mux2:
		return evalMux(in[0], in[1], in[2]), nil
	case Aoi21:
		return evalOr([]Value{evalAnd(in[:2]), in[2]}).Not(), nil
	case Oai21:
		return evalAnd([]Value{evalOr(in[:2]), in[2]}).Not(), nil
	}
	return X, fmt.Errorf("logic: Eval on non-combinational kind %s", k)
}

func evalAnd(in []Value) Value {
	sawX := false
	for _, v := range in {
		switch v {
		case Zero:
			return Zero
		case X:
			sawX = true
		}
	}
	if sawX {
		return X
	}
	return One
}

func evalOr(in []Value) Value {
	sawX := false
	for _, v := range in {
		switch v {
		case One:
			return One
		case X:
			sawX = true
		}
	}
	if sawX {
		return X
	}
	return Zero
}

func evalXor(in []Value) Value {
	parity := Zero
	for _, v := range in {
		if v == X {
			return X
		}
		if v == One {
			parity = parity.Not()
		}
	}
	return parity
}

// evalMux computes sel ? b : a, including the X-optimism rule: if a == b and
// both are known, the output is that value regardless of sel.
func evalMux(sel, a, b Value) Value {
	switch sel {
	case Zero:
		return a
	case One:
		return b
	}
	if a.Known() && a == b {
		return a
	}
	return X
}

// ImplyInputs performs backward implication: given a known output value out
// and the current (possibly partial) input values of a k-kind gate, it
// refines entries of in that are forced by gate semantics. It reports how
// many inputs were newly determined and whether the state is consistent
// (conflict == false). in is modified in place.
//
// The rules are unit-propagation style:
//   - AND out=1 / NAND out=0  => every input is 1 (dually OR/NOR with 0).
//   - AND out=0 with exactly one non-1 input left => that input is 0
//     (dually for OR/NAND/NOR).
//   - NOT/BUF propagate directly.
//   - XOR/XNOR with exactly one unknown input => it is determined by parity.
//   - MUX2 with known select propagates to the selected data pin.
//   - AOI21/OAI21 are decomposed through their internal structure.
func ImplyInputs(k Kind, out Value, in []Value) (newlyKnown int, conflict bool) {
	if !out.Known() {
		return 0, false
	}
	switch k {
	case Buf:
		return implySet(in, 0, out)
	case Not:
		return implySet(in, 0, out.Not())
	case And:
		return implyAndLike(in, out, One, Zero)
	case Nand:
		return implyAndLike(in, out.Not(), One, Zero)
	case Or:
		// OR is AND-like with identity 0: out==0 forces every input to 0.
		return implyAndLike(in, out, Zero, One)
	case Nor:
		return implyAndLike(in, out.Not(), Zero, One)
	case Xor:
		return implyParity(in, out)
	case Xnor:
		return implyParity(in, out.Not())
	case Mux2:
		return implyMux(in, out)
	case Aoi21, Oai21:
		return implyComplex(k, in, out)
	}
	return 0, false
}

// implySet forces in[i] = v, reporting conflicts with an existing known value.
func implySet(in []Value, i int, v Value) (int, bool) {
	if in[i] == v {
		return 0, false
	}
	if in[i].Known() {
		return 0, true
	}
	in[i] = v
	return 1, false
}

// implyAndLike handles the AND family after normalizing the output: treat
// the gate as AND with "identity" value id (the non-controlling input value)
// and controlling value ctrl. outAsAnd is the output expressed as if the
// gate were a plain AND/OR (caller pre-inverts for NAND/NOR).
func implyAndLike(in []Value, outAsAnd, id, ctrl Value) (int, bool) {
	n := 0
	if outAsAnd == id {
		// Output at identity level: all inputs must be at identity level.
		for i := range in {
			d, bad := implySet(in, i, id)
			if bad {
				return n, true
			}
			n += d
		}
		return n, false
	}
	// Output at controlled level: at least one input is controlling. If any
	// input is already controlling, nothing to infer. If exactly one input
	// is unknown and the rest are identity, it must be controlling.
	unknown := -1
	for i, v := range in {
		switch v {
		case ctrl:
			return n, false
		case X:
			if unknown >= 0 {
				return n, false // two candidates; nothing forced
			}
			unknown = i
		}
	}
	if unknown < 0 {
		return n, true // all identity but output controlled: conflict
	}
	d, bad := implySet(in, unknown, ctrl)
	return n + d, bad
}

// implyParity handles XOR: if exactly one input is unknown, it is set so the
// total parity matches out (out here is the required XOR of all inputs).
func implyParity(in []Value, out Value) (int, bool) {
	unknown := -1
	parity := Zero
	for i, v := range in {
		switch v {
		case X:
			if unknown >= 0 {
				return 0, false
			}
			unknown = i
		case One:
			parity = parity.Not()
		}
	}
	if unknown < 0 {
		if parity != out {
			return 0, true
		}
		return 0, false
	}
	need := Zero
	if parity != out {
		need = One
	}
	return implySet(in, unknown, need)
}

func implyMux(in []Value, out Value) (int, bool) {
	sel, a, b := in[0], in[1], in[2]
	n := 0
	switch sel {
	case Zero:
		d, bad := implySet(in, 1, out)
		return d, bad
	case One:
		d, bad := implySet(in, 2, out)
		return d, bad
	}
	// Select unknown. If one data pin is known to differ from out, the
	// select must point at the other pin.
	if a.Known() && a != out && b.Known() && b != out {
		return 0, true
	}
	if a.Known() && a != out {
		d, bad := implySet(in, 0, One)
		n += d
		if bad {
			return n, true
		}
		d, bad = implySet(in, 2, out)
		return n + d, bad
	}
	if b.Known() && b != out {
		d, bad := implySet(in, 0, Zero)
		n += d
		if bad {
			return n, true
		}
		d, bad = implySet(in, 1, out)
		return n + d, bad
	}
	return 0, false
}

// implyComplex performs implication for AOI21/OAI21 by brute force over the
// at-most-8 completions of the unknown inputs: an input is forced if it has
// the same value in every completion consistent with out.
func implyComplex(k Kind, in []Value, out Value) (int, bool) {
	unknown := make([]int, 0, 3)
	for i, v := range in {
		if !v.Known() {
			unknown = append(unknown, i)
		}
	}
	if len(unknown) == 0 {
		if Eval(k, in) != out {
			return 0, true
		}
		return 0, false
	}
	// forced[j] tracks the candidate forced value of unknown[j].
	forced := make([]Value, len(unknown))
	seen := false
	trial := make([]Value, len(in))
	for mask := 0; mask < 1<<len(unknown); mask++ {
		copy(trial, in)
		for j, idx := range unknown {
			if mask>>j&1 == 1 {
				trial[idx] = One
			} else {
				trial[idx] = Zero
			}
		}
		if Eval(k, trial) != out {
			continue
		}
		if !seen {
			for j, idx := range unknown {
				forced[j] = trial[idx]
			}
			seen = true
			continue
		}
		for j, idx := range unknown {
			if forced[j] != trial[idx] {
				forced[j] = X
			}
		}
	}
	if !seen {
		return 0, true
	}
	n := 0
	for j, idx := range unknown {
		if forced[j].Known() {
			in[idx] = forced[j]
			n++
		}
	}
	return n, false
}
