package logic

import "testing"

// allValues is the full three-valued domain.
var allValues = []Value{Zero, One, X}

// combKinds is every combinational kind with a representative arity for
// exhaustive enumeration (variadic kinds are covered at 2, 3 and 4 inputs by
// TestEvalThreeValuedSoundness).
var combKinds = []Kind{Buf, Not, And, Or, Nand, Nor, Xor, Xnor, Mux2, Aoi21, Oai21}

// TestMux2ExhaustiveTable pins down the full 27-entry MUX2 truth table,
// including the X-optimism rule: with an unknown select but equal known data
// pins, the output is that data value — the select cannot matter. A
// pessimistic implementation (returning X whenever sel is X) would make the
// reduction pipeline discard cones the paper's §2.5 rewrites keep.
func TestMux2ExhaustiveTable(t *testing.T) {
	want := func(sel, a, b Value) Value {
		switch sel {
		case Zero:
			return a
		case One:
			return b
		}
		if a.Known() && a == b {
			return a
		}
		return X
	}
	for _, sel := range allValues {
		for _, a := range allValues {
			for _, b := range allValues {
				got := Eval(Mux2, []Value{sel, a, b})
				if got != want(sel, a, b) {
					t.Errorf("Eval(Mux2, sel=%v a=%v b=%v) = %v, want %v",
						sel, a, b, got, want(sel, a, b))
				}
			}
		}
	}
}

// TestMux2XOptimismCases spells out the three behaviorally distinct X-select
// rows as documentation-grade assertions.
func TestMux2XOptimismCases(t *testing.T) {
	cases := []struct {
		sel, a, b, want Value
	}{
		{X, One, One, One}, // equal data: select is irrelevant
		{X, Zero, Zero, Zero},
		{X, Zero, One, X}, // data differ: output genuinely unknown
		{X, One, X, X},    // one data pin unknown: no optimism
		{X, X, X, X},
	}
	for _, c := range cases {
		if got := Eval(Mux2, []Value{c.sel, c.a, c.b}); got != c.want {
			t.Errorf("Eval(Mux2, %v %v %v) = %v, want %v", c.sel, c.a, c.b, got, c.want)
		}
	}
}

// TestEvalThreeValuedSoundness is the semantic contract of the whole
// three-valued layer: whenever Eval returns a known value on a partially-X
// vector, every completion of the X inputs to concrete booleans must produce
// exactly that value. Exhaustive over every kind and every valid arity up to
// four.
func TestEvalThreeValuedSoundness(t *testing.T) {
	for _, k := range combKinds {
		for n := 1; n <= 4; n++ {
			if !k.ValidArity(n) {
				continue
			}
			vec := make([]Value, n)
			var walk func(i int)
			walk = func(i int) {
				if i == n {
					checkCompletions(t, k, vec)
					return
				}
				for _, v := range allValues {
					vec[i] = v
					walk(i + 1)
				}
			}
			walk(0)
		}
	}
}

// checkCompletions enumerates all boolean completions of vec's X entries and
// asserts a known Eval result is invariant across them.
func checkCompletions(t *testing.T, k Kind, vec []Value) {
	t.Helper()
	out := Eval(k, vec)
	if !out.Known() {
		return
	}
	var xPos []int
	for i, v := range vec {
		if !v.Known() {
			xPos = append(xPos, i)
		}
	}
	full := append([]Value(nil), vec...)
	for mask := 0; mask < 1<<len(xPos); mask++ {
		for j, p := range xPos {
			if mask>>j&1 == 1 {
				full[p] = One
			} else {
				full[p] = Zero
			}
		}
		if got := Eval(k, full); got != out {
			t.Errorf("Eval(%v, %v) = %v but completion %v gives %v — unsound optimism",
				k, vec, out, full, got)
			return
		}
	}
}
