package refwords

import (
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

func TestSplitRegisterName(t *testing.T) {
	cases := []struct {
		in   string
		base string
		idx  int
		ok   bool
	}{
		{"count_reg[3]", "count_reg", 3, true},
		{"count_reg_3_", "count_reg", 3, true},
		{"count_reg(12)", "count_reg", 12, true},
		{"state_reg[0]", "state_reg", 0, true},
		{"a[10]", "a", 10, true},
		{"plain", "", 0, false},
		{"foo_3", "", 0, false}, // ambiguous: register named foo_3
		{"foo_reg[-1]", "", 0, false},
		{"foo_reg[x]", "", 0, false},
		{"_3_", "", 0, false},
		{"x_12_", "x", 12, true},
		{"[3]", "", 0, false},
	}
	for _, c := range cases {
		base, idx, ok := SplitRegisterName(c.in)
		if base != c.base || idx != c.idx || ok != c.ok {
			t.Errorf("SplitRegisterName(%q) = %q,%d,%v want %q,%d,%v",
				c.in, base, idx, ok, c.base, c.idx, c.ok)
		}
	}
}

// regNet builds a netlist with flip-flops named per names; each FF's D net
// is "d<i>".
func regNet(t *testing.T, names ...string) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("t")
	src := nl.MustNet("src")
	nl.MarkPI(src)
	for i, name := range names {
		d := nl.MustNet("d" + string(rune('0'+i)))
		nl.MustGate("inv"+string(rune('0'+i)), logic.Not, d, src)
		q := nl.MustNet(name)
		nl.MustGate(name+"_g", logic.DFF, q, d)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestExtractGroupsAndOrders(t *testing.T) {
	// Deliberately out of order and mixed formats.
	nl := regNet(t, "cnt_reg[2]", "cnt_reg[0]", "cnt_reg[1]", "st_reg_1_", "st_reg_0_", "flag")
	words := Extract(nl, Options{})
	if len(words) != 2 {
		t.Fatalf("words = %d: %+v", len(words), words)
	}
	if words[0].Name != "cnt_reg" || words[1].Name != "st_reg" {
		t.Errorf("names: %q %q", words[0].Name, words[1].Name)
	}
	// Bits ordered by index; bit i of cnt is FF with name cnt_reg[i] whose
	// D net is d<position in names>.
	cnt := words[0]
	if cnt.Size() != 3 || cnt.Indices[0] != 0 || cnt.Indices[2] != 2 {
		t.Fatalf("cnt word: %+v", cnt)
	}
	if nl.NetName(cnt.Bits[0]) != "d1" || nl.NetName(cnt.Bits[2]) != "d0" {
		t.Errorf("bit order: %s %s %s",
			nl.NetName(cnt.Bits[0]), nl.NetName(cnt.Bits[1]), nl.NetName(cnt.Bits[2]))
	}
}

func TestExtractMinBits(t *testing.T) {
	nl := regNet(t, "w_reg[0]", "w_reg[1]", "w_reg[2]", "lone_reg[0]")
	if words := Extract(nl, Options{}); len(words) != 1 {
		t.Errorf("default MinBits: %d words", len(words))
	}
	if words := Extract(nl, Options{MinBits: 1}); len(words) != 2 {
		t.Errorf("MinBits 1: %d words", len(words))
	}
	if words := Extract(nl, Options{MinBits: 4}); len(words) != 0 {
		t.Errorf("MinBits 4: %d words", len(words))
	}
}

func TestExtractDuplicateIndex(t *testing.T) {
	// Two FFs claiming w_reg[1]: first wins, no crash, width stays 2.
	nl := netlist.New("t")
	src := nl.MustNet("src")
	nl.MarkPI(src)
	mk := func(i int, q string) {
		d := nl.MustNet("d" + string(rune('0'+i)))
		nl.MustGate("g"+string(rune('0'+i)), logic.Not, d, src)
		qn := nl.MustNet(q)
		nl.MustGate(q+"_ff", logic.DFF, qn, d)
	}
	mk(0, "w_reg[0]")
	mk(1, "w_reg[1]")
	mk(2, "w_reg[1]x") // unrelated: no index pattern... actually has none
	// A true duplicate requires a distinct net name mapping to the same
	// base+index; use the underscore format.
	mk(3, "w_reg_1_")
	words := Extract(nl, Options{})
	if len(words) != 1 || words[0].Size() != 2 {
		t.Fatalf("words: %+v", words)
	}
}

func TestExtractUsesDInputs(t *testing.T) {
	nl := regNet(t, "r_reg[0]", "r_reg[1]")
	words := Extract(nl, Options{})
	if len(words) != 1 {
		t.Fatal("missing word")
	}
	for _, b := range words[0].Bits {
		name := nl.NetName(b)
		if name == "r_reg[0]" || name == "r_reg[1]" {
			t.Error("reference word must hold D-input nets, not Q outputs")
		}
	}
}
