// Package refwords builds the golden reference words used to evaluate word
// identification, following the methodology of DAC'15 §3: synthesis
// preserves RTL register names on flip-flop output nets ("count_reg[3]",
// "count_reg_3_", ...), so grouping flip-flops by register base name yields
// verified words. Because word identification matches fanin-cone structure,
// a reference word consists of the D *input* nets of the register's
// flip-flops, not the named output nets.
package refwords

import (
	"sort"
	"strconv"
	"strings"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
)

// Word is one golden reference word.
type Word struct {
	Name    string          // register base name, e.g. "count_reg"
	Bits    []netlist.NetID // D-input nets, ordered by bit index
	Indices []int           // bit indices parallel to Bits
}

// Size returns the word width in bits.
func (w Word) Size() int { return len(w.Bits) }

// Options configures reference extraction.
type Options struct {
	// MinBits is the minimum register width that counts as a word.
	// Single-bit registers are flags, not words; the default is 2.
	MinBits int
}

// Extract scans the flip-flops of nl and groups them into reference words by
// the register base name and bit index parsed from each FF's output net
// name. Flip-flops whose names carry no bit index, and registers narrower
// than MinBits, are excluded. Words are returned sorted by name.
func Extract(nl *netlist.Netlist, opt Options) []Word {
	if opt.MinBits < 1 {
		opt.MinBits = 2
	}
	type bit struct {
		idx int
		d   netlist.NetID
	}
	groups := make(map[string][]bit)
	for _, g := range nl.DFFs() {
		gate := nl.Gate(g)
		base, idx, ok := SplitRegisterName(nl.NetName(gate.Output))
		if !ok {
			continue
		}
		if gate.Kind != logic.DFF || len(gate.Inputs) == 0 {
			continue
		}
		groups[base] = append(groups[base], bit{idx: idx, d: gate.Inputs[0]})
	}
	words := make([]Word, 0, len(groups))
	for base, bits := range groups {
		sort.Slice(bits, func(i, j int) bool { return bits[i].idx < bits[j].idx })
		// Drop duplicate indices deterministically (first wins); they
		// indicate a malformed netlist but should not crash evaluation.
		w := Word{Name: base}
		for i, b := range bits {
			if i > 0 && b.idx == bits[i-1].idx {
				continue
			}
			w.Bits = append(w.Bits, b.d)
			w.Indices = append(w.Indices, b.idx)
		}
		if w.Size() >= opt.MinBits {
			words = append(words, w)
		}
	}
	sort.Slice(words, func(i, j int) bool { return words[i].Name < words[j].Name })
	return words
}

// SplitRegisterName parses a flip-flop output net name into a register base
// name and bit index. Recognized forms, in priority order:
//
//	base[3]    (bracketed bit-select, possibly from an escaped identifier)
//	base_3_    (Synopsys-style flattened name)
//	base(3)    (parenthesized VHDL-style)
//
// A plain trailing "_3" is deliberately NOT treated as a bit index: it is
// indistinguishable from a register named "foo_3".
func SplitRegisterName(name string) (base string, idx int, ok bool) {
	if n := len(name); n >= 3 && name[n-1] == ']' {
		if open := strings.LastIndexByte(name, '['); open > 0 {
			if v, err := strconv.Atoi(name[open+1 : n-1]); err == nil && v >= 0 {
				return name[:open], v, true
			}
		}
	}
	if n := len(name); n >= 3 && name[n-1] == ')' {
		if open := strings.LastIndexByte(name, '('); open > 0 {
			if v, err := strconv.Atoi(name[open+1 : n-1]); err == nil && v >= 0 {
				return name[:open], v, true
			}
		}
	}
	if n := len(name); n >= 3 && name[n-1] == '_' {
		body := name[:n-1]
		if us := strings.LastIndexByte(body, '_'); us > 0 {
			if v, err := strconv.Atoi(body[us+1:]); err == nil && v >= 0 {
				return name[:us], v, true
			}
		}
	}
	return "", 0, false
}
