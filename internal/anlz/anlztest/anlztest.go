// Package anlztest is the fixture-driven test harness for gatevet analyzers,
// a compact analogue of golang.org/x/tools/go/analysis/analysistest. A test
// points it at a testdata/src root and a fixture import path; the harness
// type-checks the fixture, runs one analyzer over it raw (no allowlist, no
// suppression), and matches every finding against `// want "regex"`
// annotations on the flagged lines. Extra findings and unsatisfied wants both
// fail the test.
package anlztest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gatewords/internal/anlz"
)

// sharedLoader memoizes one loader per test binary so fixtures (and the
// standard-library packages they pull in) are type-checked once, not once per
// subtest. Loader methods are single-goroutine; analyzer tests must not run
// in parallel.
var sharedLoader *anlz.Loader

// Loader returns the process-wide fixture loader, creating it on first use.
func Loader(t *testing.T) *anlz.Loader {
	t.Helper()
	if sharedLoader == nil {
		l, err := anlz.NewLoader(".")
		if err != nil {
			t.Fatalf("anlztest: creating loader: %v", err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run type-checks the fixture package at <srcRoot>/<path> and checks the
// analyzer's findings against the fixture's want annotations.
func Run(t *testing.T, srcRoot string, path string, a *anlz.Analyzer) {
	t.Helper()
	loader := Loader(t)
	abs, err := filepath.Abs(srcRoot)
	if err != nil {
		t.Fatalf("anlztest: %v", err)
	}
	loader.AddSourceRoot(abs)
	pkg, err := loader.LoadDir(filepath.Join(abs, filepath.FromSlash(path)), path)
	if err != nil {
		t.Fatalf("anlztest: loading %s: %v", path, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("anlztest: fixture %s does not type-check: %v", path, terr)
	}
	diags, err := anlz.RunOne(loader, pkg, a)
	if err != nil {
		t.Fatalf("anlztest: running %s on %s: %v", a.Name, path, err)
	}
	wants := collectWants(t, loader.Fset, pkg)

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q: no matching finding", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unhit want on the diagnostic's line whose regexp
// matches its message.
func claim(wants []*want, d anlz.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants parses every `// want "re" ["re" ...]` comment in the
// package's files. The expectation applies to the line the comment sits on.
func collectWants(t *testing.T, fset *token.FileSet, pkg *anlz.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitQuoted(text) {
					raw, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts the double-quoted Go string literals from a want
// comment's payload, honoring backslash escapes.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		if s[i] != '"' {
			continue
		}
		j := i + 1
		for j < len(s) {
			if s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == '"' {
				break
			}
			j++
		}
		if j >= len(s) {
			break
		}
		out = append(out, s[i:j+1])
		i = j
	}
	return out
}
