package anlz

// suppress.go implements finding suppression. A diagnostic is suppressed by
//
//	//anlz:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line immediately above it. <analyzer>
// is one analyzer name or "*"; the reason is mandatory — an ignore without
// one is itself reported (by the pseudo-analyzer "anlz"), so every
// suppression in the tree carries its justification.

import (
	"go/ast"
	"go/token"
	"strings"
)

const ignorePrefix = "//anlz:ignore"

// ignoreDirective is one parsed suppression comment.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string // analyzer name or "*"
	reason   string
}

// collectIgnores parses every //anlz:ignore directive in the files.
// Malformed directives (no analyzer, or no reason) are returned as
// diagnostics instead.
func collectIgnores(fset *token.FileSet, files []*ast.File) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other directive, e.g. //anlz:ignoreX
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, newDiagnostic("anlz", pos,
						"malformed //anlz:ignore: want \"//anlz:ignore <analyzer> <reason>\""))
					continue
				}
				dirs = append(dirs, ignoreDirective{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return dirs, bad
}

// suppressed reports whether d is covered by a directive on its line or the
// line above.
func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename {
			continue
		}
		if dir.analyzer != "*" && dir.analyzer != d.Analyzer {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}
