// Package anlzutil holds the shared machinery of the gatevet analyzers:
// static callee resolution, a depth-bounded transitive call walk over module
// function bodies (the poor man's call graph the contracts need), and
// recover-boundary detection for goroutine auditing.
package anlzutil

import (
	"go/ast"
	"go/types"

	"gatewords/internal/anlz"
)

// Callee resolves the statically-known target of a call: a plain function, a
// method (through the selection), or a conversion's nil. Calls through
// function values, interface methods bound dynamically, and built-ins return
// nil — the analyzers treat those as unresolvable and decide conservatively
// per contract.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: fmt.Fprintf, sort.Strings, ...
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsFunc reports whether fn is the named function or method of the package
// with the given import path: IsFunc(fn, "context", "Err") matches
// (context.Context).Err, IsFunc(fn, "fmt", "Fprintf") matches fmt.Fprintf.
func IsFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// CallWalk is one depth-bounded transitive search over statically resolvable
// calls, starting from a syntax subtree and descending into module function
// bodies through the loader. Nested function literals are walked as part of
// the body containing them (they run — or are scheduled — within it).
type CallWalk struct {
	Loader *anlz.Loader
	// MaxDepth bounds descent into callee bodies (0 = only the start node).
	MaxDepth int
	// Match is consulted on every resolvable callee; returning true ends the
	// walk successfully.
	Match func(*types.Func) bool
	// Dynamic, when non-nil, is consulted on calls whose callee cannot be
	// resolved statically (function values, dynamic interface methods),
	// with the depth the call was found at; returning true ends the walk
	// successfully. Nil means dynamic calls never match.
	Dynamic func(call *ast.CallExpr, depth int) bool
}

// Found reports whether the walk from root (typed by info) reaches a
// matching call.
func (w *CallWalk) Found(root ast.Node, info *types.Info) bool {
	type frame struct {
		node  ast.Node
		info  *types.Info
		depth int
	}
	queue := []frame{{root, info, 0}}
	seen := make(map[*types.Func]bool)
	for len(queue) > 0 {
		fr := queue[0]
		queue = queue[1:]
		matched := false
		ast.Inspect(fr.node, func(n ast.Node) bool {
			if matched {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := Callee(fr.info, call)
			if fn == nil {
				// Builtins and type conversions are not calls in the walk's
				// sense: neither work, nor a place cancellation could hide.
				if tv, ok := fr.info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
					return true
				}
				if w.Dynamic != nil && w.Dynamic(call, fr.depth) {
					matched = true
				}
				return true
			}
			if w.Match(fn) {
				matched = true
				return false
			}
			if fr.depth < w.MaxDepth && !seen[fn] {
				seen[fn] = true
				if src, ok := w.Loader.FuncSource(fn); ok {
					queue = append(queue, frame{src.Decl.Body, src.Pkg.Info, fr.depth + 1})
				}
			}
			return true
		})
		if matched {
			return true
		}
	}
	return false
}

// callsRecoverDirectly reports whether the function body calls the recover
// built-in in its own statements (not inside a nested function literal —
// recover only works when called directly by a deferred function).
func callsRecoverDirectly(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "recover" {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

// EstablishesRecover reports whether the deferred call d is a recover
// boundary: either a function literal calling recover directly, or a
// statically resolvable function whose body does (e.g. guard.Rescue).
func EstablishesRecover(loader *anlz.Loader, info *types.Info, d *ast.DeferStmt) bool {
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		return callsRecoverDirectly(lit.Body, info)
	}
	if fn := Callee(info, d.Call); fn != nil {
		if src, ok := loader.FuncSource(fn); ok {
			return callsRecoverDirectly(src.Decl.Body, src.Pkg.Info)
		}
	}
	return false
}

// GuardedGoroutine reports whether the function started by a go statement
// establishes a recover boundary in its leading deferred statements: the
// statement list may open with any run of defers (defer wg.Done() first is
// the pool idiom), and one of them must establish recover. A go statement
// calling a named function is resolved and judged by the same rule.
func GuardedGoroutine(loader *anlz.Loader, info *types.Info, g *ast.GoStmt) bool {
	var body *ast.BlockStmt
	bodyInfo := info
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		fn := Callee(info, g.Call)
		if fn == nil {
			return false
		}
		src, ok := loader.FuncSource(fn)
		if !ok {
			return false
		}
		body = src.Decl.Body
		bodyInfo = src.Pkg.Info
	}
	for _, stmt := range body.List {
		d, ok := stmt.(*ast.DeferStmt)
		if !ok {
			break // the leading defer run is over
		}
		if EstablishesRecover(loader, bodyInfo, d) {
			return true
		}
	}
	return false
}

// MentionsObject reports whether the expression subtree references the given
// object (used to tie a sort call to the slice it sorts).
func MentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// IsSortCall reports whether the call is a recognized slice-ordering call:
// anything in package sort or slices, or a module function whose name
// contains "sort"/"Sort" (the repo's own canonicalizers, e.g. sortedNets).
func IsSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	name := fn.Name()
	for i := 0; i+4 <= len(name); i++ {
		if s := name[i : i+4]; s == "sort" || s == "Sort" {
			return true
		}
	}
	return false
}
