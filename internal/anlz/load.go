package anlz

// load.go parses and type-checks packages from source, fully offline. The
// repo has no module dependencies (go.mod requires nothing), so every import
// is either module-internal — resolved against the module root on disk — or
// standard library, resolved through go/importer's source importer, which
// type-checks GOROOT sources without compiled export data. Test harnesses
// can additionally register GOPATH-style source roots (testdata/src layouts)
// whose single-segment import paths resolve to fixture packages.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("gatewords/internal/core", or a fixture path
	// like "mapdet_pos" under a registered source root).
	Path string
	// Dir is the absolute directory the files came from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects go/types errors. Checking continues past them, so
	// analyzers still see the (partial) Info, but the multichecker treats a
	// module package that fails to type-check as a hard error.
	TypeErrors []error
}

// FuncSource locates a module function's syntax for cross-package analysis:
// the declaration plus the package whose Info type-checked its body.
type FuncSource struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Loader loads packages and memoizes them by directory. It is not
// goroutine-safe; gatevet and the tests drive it from one goroutine.
type Loader struct {
	Fset *token.FileSet

	moduleRoot string
	modulePath string
	std        types.Importer
	byDir      map[string]*Package
	loading    map[string]bool
	srcRoots   []string
	funcs      map[*types.Func]FuncSource
}

// NewLoader returns a loader rooted at the module containing dir (the
// nearest parent with a go.mod). Cgo is disabled on the shared build context
// so standard-library packages with cgo variants (net, os/user) resolve to
// their pure-Go fallbacks — the source importer cannot preprocess cgo files
// offline.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleRoot: root,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		byDir:      make(map[string]*Package),
		loading:    make(map[string]bool),
		funcs:      make(map[*types.Func]FuncSource),
	}, nil
}

// ModulePath returns the module's import path (the go.mod module line).
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleRoot returns the module's root directory.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// AddSourceRoot registers a GOPATH-style source root (a testdata/src
// directory): import path "x" resolves to <root>/x. Later roots win over
// earlier ones for the same path.
func (l *Loader) AddSourceRoot(root string) {
	l.srcRoots = append([]string{root}, l.srcRoots...)
}

// FuncSource returns the syntax of a module function, if the loader has
// type-checked the package declaring it. Functions without bodies (external
// or interface methods) and non-module functions return ok=false.
func (l *Loader) FuncSource(fn *types.Func) (FuncSource, bool) {
	src, ok := l.funcs[fn]
	return src, ok
}

// findModule walks up from dir to the nearest go.mod.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if after, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(after), nil
				}
			}
			return "", "", fmt.Errorf("anlz: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("anlz: no go.mod above %s", dir)
		}
		d = parent
	}
}

// LoadModule loads every non-test package of the module: each directory under
// the root holding .go files, skipping testdata, hidden, and VCS directories.
// Packages come back sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.moduleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.moduleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if gf, _ := goFiles(path); len(gf) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir, l.importPathFor(dir))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads the single package in dir under the given import path (used
// by the analysistest harness for fixture packages).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadDir(abs, path)
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// goFiles lists the non-test .go files of dir, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.byDir[dir]; ok {
		return pkg, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("anlz: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("anlz: no Go files in %s", dir)
	}
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		// A directory is one package; ignore stray files with a different
		// package clause (the go tool would reject them anyway).
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name == pkgName {
			files = append(files, f)
		}
	}

	pkg := &Package{Path: path, Dir: dir, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) { return l.resolveImport(p) }),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	pkg.Types = tpkg
	pkg.Info = info
	l.byDir[dir] = pkg
	l.indexFuncs(pkg)
	return pkg, nil
}

// indexFuncs records every declared function body for cross-package lookup.
func (l *Loader) indexFuncs(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				l.funcs[fn] = FuncSource{Decl: fd, Pkg: pkg}
			}
		}
	}
}

// resolveImport answers one import during type checking: module-internal
// paths from the module tree, registered source roots for fixtures, and the
// standard library through the source importer.
func (l *Loader) resolveImport(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		dir := l.moduleRoot
		if path != l.modulePath {
			dir = filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modulePath+"/")))
		}
		pkg, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	for _, root := range l.srcRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if names, err := goFiles(dir); err == nil && len(names) > 0 {
			pkg, err := l.loadDir(dir, path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
