package anlz

// run.go applies analyzers to loaded packages: package allowlists, the
// per-package analysis passes, //anlz:ignore filtering, and deterministic
// ordering of the surviving findings.

import (
	"fmt"
	"strings"
)

// PackageMatch reports whether a package import path is covered by the
// allowlist patterns: an exact path, or everything below a pattern ending in
// "/...". An empty allowlist matches every package.
func PackageMatch(patterns []string, path string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if path == sub || strings.HasPrefix(path, sub+"/") {
				return true
			}
			continue
		}
		if path == pat {
			return true
		}
	}
	return false
}

// Run applies the analyzers to the packages and returns the surviving
// findings, sorted by position. Analyzer package allowlists are honored;
// suppressed findings are dropped; malformed suppression directives are
// reported. A non-nil error means an analyzer itself failed (not that it
// found something).
func Run(loader *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores, bad := collectIgnores(loader.Fset, pkg.Files)
		diags = append(diags, bad...)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			if !PackageMatch(a.Packages, pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     loader.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Loader:   loader,
				diags:    &pkgDiags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("anlz: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		for _, d := range pkgDiags {
			if !suppressed(d, ignores) {
				diags = append(diags, d)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunOne applies one analyzer to one package with no allowlist or
// suppression filtering — the analysistest entry point, where every raw
// finding must line up with a want annotation. (Suppression is still
// testable: tested through Run.)
func RunOne(loader *Loader, pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     loader.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Loader:   loader,
		diags:    &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	sortDiagnostics(diags)
	return diags, nil
}
