package anlz

import (
	"go/token"
	"testing"
)

func TestPackageMatch(t *testing.T) {
	cases := []struct {
		patterns []string
		path     string
		want     bool
	}{
		{nil, "anything", true},
		{[]string{"gatewords"}, "gatewords", true},
		{[]string{"gatewords"}, "gatewords/internal/core", false},
		{[]string{"gatewords/internal/core"}, "gatewords/internal/core", true},
		{[]string{"gatewords/internal/..."}, "gatewords/internal/core", true},
		{[]string{"gatewords/internal/..."}, "gatewords/internal", true},
		{[]string{"gatewords/internal/..."}, "gatewords/internalx", false},
		{[]string{"a", "b"}, "b", true},
	}
	for _, c := range cases {
		if got := PackageMatch(c.patterns, c.path); got != c.want {
			t.Errorf("PackageMatch(%v, %q) = %v, want %v", c.patterns, c.path, got, c.want)
		}
	}
}

func TestSortDiagnosticsDeterministic(t *testing.T) {
	mk := func(file string, line, col int, analyzer, msg string) Diagnostic {
		return newDiagnostic(analyzer, token.Position{Filename: file, Line: line, Column: col}, msg)
	}
	ds := []Diagnostic{
		mk("b.go", 1, 1, "x", "m"),
		mk("a.go", 2, 1, "x", "m"),
		mk("a.go", 1, 5, "x", "m"),
		mk("a.go", 1, 1, "y", "m"),
		mk("a.go", 1, 1, "x", "n"),
		mk("a.go", 1, 1, "x", "m"),
	}
	sortDiagnostics(ds)
	var got []string
	for _, d := range ds {
		got = append(got, d.String())
	}
	want := []string{
		"a.go:1:1: x: m",
		"a.go:1:1: x: n",
		"a.go:1:1: y: m",
		"a.go:1:5: x: m",
		"a.go:2:1: x: m",
		"b.go:1:1: x: m",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestLoaderModulePath smoke-tests loader construction against the real
// module root.
func TestLoaderModulePath(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath() != "gatewords" {
		t.Errorf("module path = %q, want gatewords", l.ModulePath())
	}
	if l.ModuleRoot() == "" {
		t.Error("empty module root")
	}
}

// TestDiagnosticJSONMirror pins that the JSON mirror fields are populated by
// construction.
func TestDiagnosticJSONMirror(t *testing.T) {
	d := newDiagnostic("mapdet", token.Position{Filename: "f.go", Line: 3, Column: 7}, "msg")
	if d.File != "f.go" || d.Line != 3 || d.Col != 7 {
		t.Errorf("mirror fields = %q:%d:%d, want f.go:3:7", d.File, d.Line, d.Col)
	}
}
