package passes

import (
	"go/ast"
	"go/types"

	"gatewords/internal/anlz"
	"gatewords/internal/anlz/anlzutil"
)

// NoRand enforces the injected-entropy contract in result-producing packages:
// identification results must be reproducible from Options.Seed alone, so the
// global math/rand source (seeded from runtime state) and wall-clock reads
// are both banned. Seeded local sources — rand.New(rand.NewSource(seed)) —
// are the sanctioned idiom and stay legal; time.Now stays legal in the
// measurement layers (obs clocks, bench harness timing).
var NoRand = &anlz.Analyzer{
	Name:     "norand",
	Doc:      "forbid global math/rand and time.Now in result-producing packages",
	Contract: "results are a pure function of inputs and Options.Seed: randomness comes from seeded injected sources, time from the injected clock",
	Packages: []string{
		"gatewords",
		"gatewords/internal/core",
		"gatewords/internal/reduce",
		"gatewords/internal/eqcheck",
		"gatewords/internal/netlist",
		"gatewords/internal/netlint",
		"gatewords/internal/scoap",
		"gatewords/internal/sim",
		"gatewords/internal/bench",
	},
	Run: runNoRand,
}

func runNoRand(pass *anlz.Pass) error {
	// The bench harness measures wall time by design; it is still covered by
	// the global-rand rule.
	allowWallClock := pass.Pkg != nil && lastSegment(pass.Pkg.Path()) == "bench"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := anlzutil.Callee(pass.Info, call)
			if fn == nil {
				return true
			}
			if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") {
				// Methods on a *rand.Rand built from a seeded source are the
				// sanctioned idiom; package-level functions draw from the
				// global source. New/NewSource construct, they don't draw.
				sig, _ := fn.Type().(*types.Signature)
				if sig != nil && sig.Recv() == nil && fn.Name() != "New" && fn.Name() != "NewSource" {
					pass.Reportf(call.Pos(), "global math/rand.%s is seeded from runtime state; use rand.New(rand.NewSource(seed)) with an injected seed", fn.Name())
				}
				return true
			}
			if !allowWallClock && anlzutil.IsFunc(fn, "time", "Now") {
				pass.Reportf(call.Pos(), "time.Now in result-producing code breaks reproducibility; use the injected clock")
			}
			return true
		})
	}
	return nil
}
