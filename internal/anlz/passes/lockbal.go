package passes

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gatewords/internal/anlz"
	"gatewords/internal/anlz/anlzutil"
)

// LockBal enforces the facade-lock contract from the concurrency redesign:
// the Observer mutex (and the service Server mutex) are leaf locks — nothing
// blocking may happen while one is held. The analyzer tracks sync.Mutex /
// RWMutex lock state linearly through each function body and flags channel
// sends and receives, selects without a default, and calls into known
// blockers (Identify re-entry, WaitGroup.Wait, time.Sleep) inside a held
// region. Branches that end in a terminating statement do not merge their
// lock state back, so the explicit lock/unlock-and-return idiom stays legal.
var LockBal = &anlz.Analyzer{
	Name:     "lockbal",
	Doc:      "flag blocking operations while holding a mutex",
	Contract: "facade and service mutexes are leaf locks: no channel ops, selects without default, Identify re-entry, or sleeps while held",
	Packages: []string{
		"gatewords",
		"gatewords/internal/service",
	},
	Run: runLockBal,
}

// lockState is the set of held mutexes, keyed by the rendered receiver
// expression ("o.mu", "s.mu").
type lockState map[string]bool

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s lockState) names() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// intersect keeps only mutexes held on every merged path.
func intersect(states []lockState) lockState {
	if len(states) == 0 {
		return lockState{}
	}
	out := states[0].clone()
	for _, st := range states[1:] {
		for k := range out {
			if !st[k] {
				delete(out, k)
			}
		}
	}
	return out
}

func runLockBal(pass *anlz.Pass) error {
	lb := &lockbal{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					lb.scanBlock(n.Body.List, lockState{})
				}
			case *ast.FuncLit:
				// A literal's body runs with its own lock state (goroutine,
				// callback, deferred cleanup) — scan it fresh.
				lb.scanBlock(n.Body.List, lockState{})
			}
			return true
		})
	}
	return nil
}

type lockbal struct {
	pass *anlz.Pass
}

// mutexOp classifies a call as a sync.Mutex/RWMutex state change and returns
// the receiver key.
func (lb *lockbal) mutexOp(call *ast.CallExpr) (key string, lock bool, ok bool) {
	fn := anlzutil.Callee(lb.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

// scanBlock walks statements in order, maintaining the held set. It returns
// the outgoing state and whether the block ends in a terminating statement.
func (lb *lockbal) scanBlock(stmts []ast.Stmt, held lockState) (lockState, bool) {
	for _, stmt := range stmts {
		var terminated bool
		held, terminated = lb.scanStmt(stmt, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (lb *lockbal) scanStmt(stmt ast.Stmt, held lockState) (lockState, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, lock, ok := lb.mutexOp(call); ok {
				if lock {
					held[key] = true
				} else {
					delete(held, key)
				}
				return held, false
			}
			if isPanicCall(lb.pass.Info, call) {
				lb.checkExpr(s.X, held)
				return held, true
			}
		}
		lb.checkExpr(s.X, held)
		return held, false
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held to function exit — correct,
		// and every later blocking op in this body is still a violation. The
		// deferred call itself runs after the scanned region; don't check it.
		return held, false
	case *ast.GoStmt:
		// Spawning is non-blocking; the goroutine body runs without this
		// lock state and is scanned separately as a FuncLit.
		return held, false
	case *ast.SendStmt:
		if len(held) > 0 {
			lb.pass.Reportf(s.Pos(), "channel send while holding %s; the lock is a leaf — move blocking work outside the critical section", held.names())
		}
		lb.checkExpr(s.Value, held)
		return held, false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lb.checkExpr(e, held)
		}
		return held, false
	case *ast.DeclStmt:
		lb.checkExpr(s.Decl, held)
		return held, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lb.checkExpr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.BlockStmt:
		return lb.scanBlock(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = lb.scanStmt(s.Init, held)
		}
		lb.checkExpr(s.Cond, held)
		var outs []lockState
		if out, term := lb.scanBlock(s.Body.List, held.clone()); !term {
			outs = append(outs, out)
		}
		if s.Else != nil {
			if out, term := lb.scanStmt(s.Else, held.clone()); !term {
				outs = append(outs, out)
			}
		} else {
			outs = append(outs, held.clone())
		}
		if len(outs) == 0 {
			return held, true
		}
		return intersect(outs), false
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = lb.scanStmt(s.Init, held)
		}
		if s.Cond != nil {
			lb.checkExpr(s.Cond, held)
		}
		lb.scanBlock(s.Body.List, held.clone())
		return held, false
	case *ast.RangeStmt:
		lb.checkExpr(s.X, held)
		lb.scanBlock(s.Body.List, held.clone())
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = lb.scanStmt(s.Init, held)
		}
		if s.Tag != nil {
			lb.checkExpr(s.Tag, held)
		}
		return lb.scanCases(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = lb.scanStmt(s.Init, held)
		}
		return lb.scanCases(s.Body, held)
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			lb.pass.Reportf(s.Pos(), "select without default while holding %s; the lock is a leaf — use a non-blocking select or release first", held.names())
		}
		for _, clause := range s.Body.List {
			if comm, ok := clause.(*ast.CommClause); ok {
				lb.scanBlock(comm.Body, held.clone())
			}
		}
		return held, false
	case *ast.LabeledStmt:
		return lb.scanStmt(s.Stmt, held)
	default:
		return held, false
	}
}

// scanCases merges switch case bodies like if branches: case bodies that
// terminate don't contribute, and a switch without a default keeps the
// incoming state as the fall-through path.
func (lb *lockbal) scanCases(body *ast.BlockStmt, held lockState) (lockState, bool) {
	var outs []lockState
	hasDefault := false
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			lb.checkExpr(e, held)
		}
		if out, term := lb.scanBlock(cc.Body, held.clone()); !term {
			outs = append(outs, out)
		}
	}
	if !hasDefault {
		outs = append(outs, held.clone())
	}
	if len(outs) == 0 {
		return held, true
	}
	return intersect(outs), false
}

// checkExpr flags blocking operations in an expression evaluated while held:
// channel receives and calls to known blockers. Function literals are skipped
// — they run with their own state.
func (lb *lockbal) checkExpr(n ast.Node, held lockState) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				lb.pass.Reportf(n.Pos(), "channel receive while holding %s; the lock is a leaf — move blocking work outside the critical section", held.names())
			}
		case *ast.CallExpr:
			fn := anlzutil.Callee(lb.pass.Info, n)
			if fn == nil {
				return true
			}
			switch {
			case anlzutil.IsFunc(fn, "time", "Sleep"):
				lb.pass.Reportf(n.Pos(), "time.Sleep while holding %s", held.names())
			case fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait":
				lb.pass.Reportf(n.Pos(), "WaitGroup.Wait while holding %s can deadlock against workers that need the lock", held.names())
			case fn.Name() == "Identify":
				lb.pass.Reportf(n.Pos(), "Identify re-entry while holding %s; identification takes the Observer lock and would deadlock", held.names())
			}
		}
		return true
	})
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if comm, ok := clause.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
