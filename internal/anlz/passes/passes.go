// Package passes holds the gatevet analyzers: six compile-time checks that
// encode the pipeline's cross-cutting contracts (deterministic output,
// cooperative cancellation, fault isolation, a closed observability schema,
// injected randomness and clocks, and a non-reentrant facade lock). Each
// analyzer documents the contract it enforces in its Contract field; the
// DESIGN.md §11 table is generated from the same wording.
package passes

import "gatewords/internal/anlz"

// All returns every gatevet analyzer, sorted by name.
func All() []*anlz.Analyzer {
	return []*anlz.Analyzer{
		CtxPoll,
		GuardGo,
		LockBal,
		MapDet,
		NoRand,
		ObsKeys,
	}
}

// lastSegment returns the final element of a slash-separated import path.
// Contract markers match on it so analyzer fixtures can model the marker
// packages (obs, guard, eqcheck, ...) with local single-segment stand-ins.
func lastSegment(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
