package passes

import (
	"go/ast"
	"go/token"
	"go/types"

	"gatewords/internal/anlz"
)

// ObsKeys enforces the closed observability schema: the obs package's Stage,
// Counter, and Gauge types are uint8 enums whose members are the only valid
// identifiers, because the BENCH_pipeline.json golden file pins the full
// counter table. A raw integer literal materialized as one of those types
// bypasses the enum (and its NumStages/NumCounters bounds), so it is flagged
// everywhere outside the obs package itself.
var ObsKeys = &anlz.Analyzer{
	Name:     "obskeys",
	Doc:      "flag raw literals used as obs.Stage/Counter/Gauge identifiers",
	Contract: "the obs counter schema is closed: stage/counter/gauge identifiers are named enum constants, never numeric literals",
	Run:      runObsKeys,
}

// obsEnum reports whether t is one of the obs identifier enums. Matched by
// final package-path segment so fixtures can model the obs package locally.
func obsEnum(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || lastSegment(obj.Pkg().Path()) != "obs" {
		return false
	}
	switch obj.Name() {
	case "Stage", "Counter", "Gauge":
		return true
	}
	return false
}

func runObsKeys(pass *anlz.Pass) error {
	if pass.Pkg != nil && lastSegment(pass.Pkg.Path()) == "obs" {
		return nil // the enum's home defines the literals
	}
	seen := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				// An untyped constant materialized as an enum type: argument
				// passing, assignment, composite literal element, ... Literal
				// zero stays legal — it is the zero value and the canonical
				// origin of bounds loops (for c := Counter(0); c < NumCounters).
				if n.Kind == token.INT && n.Value != "0" && !seen[n.Pos()] {
					if t := pass.TypeOf(n); t != nil && obsEnum(t) {
						seen[n.Pos()] = true
						pass.Reportf(n.Pos(), "raw literal %s used as %s; use a named enum constant — the schema is closed", n.Value, types.TypeString(t, nil))
					}
				}
			case *ast.CallExpr:
				// Explicit conversion of a literal: obs.Counter(3).
				tv, ok := pass.Info.Types[n.Fun]
				if !ok || !tv.IsType() || !obsEnum(tv.Type) || len(n.Args) != 1 {
					return true
				}
				if lit, ok := ast.Unparen(n.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.INT && lit.Value != "0" && !seen[lit.Pos()] {
					seen[lit.Pos()] = true
					pass.Reportf(lit.Pos(), "raw literal %s converted to %s; use a named enum constant — the schema is closed", lit.Value, types.TypeString(tv.Type, nil))
				}
			}
			return true
		})
	}
	return nil
}
