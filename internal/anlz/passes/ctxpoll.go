package passes

import (
	"go/ast"
	"go/types"

	"gatewords/internal/anlz"
	"gatewords/internal/anlz/anlzutil"
)

// CtxPoll enforces the cooperative-cancellation contract: any loop that does
// stage-level work per iteration (simulation, SAT calls, reduction passes —
// recognized by calls into the marker set below) must poll for cancellation,
// directly or through a callee, so Options.Context deadlines cut runs off at
// group/subgroup/trial granularity instead of running netlist-sized trip
// counts to completion.
var CtxPoll = &anlz.Analyzer{
	Name:     "ctxpoll",
	Doc:      "flag work loops that never poll for cancellation",
	Contract: "every loop doing per-iteration stage work honors Options.Context: cancellation yields a strict prefix of results, never a hung run",
	Packages: []string{
		"gatewords/internal/core",
		"gatewords/internal/reduce",
		"gatewords/internal/eqcheck",
	},
	Run: runCtxPoll,
}

// workMarker reports whether fn is a stage-level unit of work. Marker
// packages are matched by final path segment so fixtures can model them.
func workMarker(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	switch lastSegment(fn.Pkg().Path()) {
	case "obs":
		return name == "Do"
	case "guard":
		return name == "Inject"
	case "reduce":
		return name == "Apply" || name == "ApplyObserved" || name == "VerifyCones"
	case "eqcheck":
		return name == "CheckLits" || name == "CheckNetlists" || name == "Solve"
	}
	return false
}

// cancelMarker reports whether fn observes cancellation: context.Context's
// Err/Done, or a module helper named for the act of checking (cancelled,
// Cancelled, canceled, Canceled).
func cancelMarker(fn *types.Func) bool {
	if anlzutil.IsFunc(fn, "context", "Err") || anlzutil.IsFunc(fn, "context", "Done") {
		return true
	}
	switch fn.Name() {
	case "cancelled", "Cancelled", "canceled", "Canceled":
		return true
	}
	return false
}

func runCtxPoll(pass *anlz.Pass) error {
	// Work must be near the surface of the loop body (the loop is the stage
	// driver); cancellation may be buried deeper in a callee, and a call the
	// checker cannot resolve is conservatively assumed to check.
	work := &anlzutil.CallWalk{Loader: pass.Loader, MaxDepth: 2, Match: workMarker}
	// A dynamic call directly in the loop body is conservatively assumed to
	// check (function-valued poll hooks); one buried in a callee is not — a
	// deep interface call should not launder a missing poll.
	cancel := &anlzutil.CallWalk{
		Loader:   pass.Loader,
		MaxDepth: 4,
		Match:    cancelMarker,
		Dynamic:  func(_ *ast.CallExpr, depth int) bool { return depth == 0 },
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			if work.Found(body, pass.Info) && !cancel.Found(body, pass.Info) {
				pass.Reportf(n.Pos(), "loop performs stage-level work but never polls for cancellation; check Options.Context (or a cancelled() helper) each iteration")
			}
			return true
		})
	}
	return nil
}
