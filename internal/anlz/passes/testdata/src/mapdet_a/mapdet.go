package mapdet_a

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func direct(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration writes to output"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func builder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want "map iteration writes to output"
		b.WriteString(k)
	}
	return b.String()
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "appends to keys, which is never sorted"
		keys = append(keys, k)
	}
	return keys
}

func collectSorted(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k, m[k])
	}
}

func loopLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var acc []int
		acc = append(acc, vs...)
		total += len(acc)
	}
	return total
}

func overSlice(w io.Writer, xs []string) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
