package norand_a

import (
	"math/rand"
	"time"
)

func globalRand() int {
	return rand.Intn(10) // want "global math/rand.Intn"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "global math/rand.Shuffle"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now in result-producing code"
}

func injectedClock(now func() time.Time) int64 {
	return now().UnixNano()
}

func durationsAreFine(d time.Duration) time.Duration {
	return d * 2
}
