package guardgo_a

import (
	"sync"

	"guard"
)

func bare(work chan int, out []int) {
	go func() { // want "no recover boundary"
		for gi := range work {
			out[gi] = gi
		}
	}()
}

func doneOnly(wg *sync.WaitGroup, work chan int) {
	go func() { // want "no recover boundary"
		defer wg.Done()
		for range work {
		}
	}()
}

func rescued(wg *sync.WaitGroup, work chan int) {
	go func() {
		defer wg.Done()
		defer guard.Rescue("pool", nil)
		for range work {
		}
	}()
}

func inlineRecover(work chan int) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				_ = r
			}
		}()
		for range work {
		}
	}()
}

// leakHelper defers a helper that looks protective but never recovers.
func leakHelper(work chan int) {
	go func() { // want "no recover boundary"
		defer guard.Leak("pool", nil)
		for range work {
		}
	}()
}

// lateRescue recovers, but only after non-defer statements — a panic in the
// opening statements escapes, so the leading-defer rule flags it.
func lateRescue(work chan int, n *int) {
	go func() { // want "no recover boundary"
		*n++
		defer guard.Rescue("pool", nil)
		for range work {
		}
	}()
}

func namedWorker(work chan int) {
	for range work {
	}
}

func namedUnguarded(work chan int) {
	go namedWorker(work) // want "no recover boundary"
}

func guardedWorker(work chan int) {
	defer guard.Rescue("pool", nil)
	for range work {
	}
}

func namedGuarded(work chan int) {
	go guardedWorker(work)
}
