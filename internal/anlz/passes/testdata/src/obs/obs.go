// Package obs is a fixture stand-in for gatewords/internal/obs: the obskeys
// analyzer matches the Stage/Counter/Gauge enums by the final import-path
// segment.
package obs

type Stage uint8

type Counter uint8

type Gauge uint8

const (
	StageParse Stage = iota
	StageSim
	NumStages
)

const (
	CGroups Counter = iota
	CTrials
	NumCounters
)

// Add is a schema sink: callers must pass named constants.
func Add(c Counter, n int64) {}

// Enter is a schema sink for stages.
func Enter(s Stage) {}
