package lockbal_a

import (
	"sync"
	"time"
)

type facade struct {
	mu   sync.Mutex
	wg   sync.WaitGroup
	jobs chan int
	n    int
}

// Identify stands in for the facade entry point the denylist names.
func (f *facade) Identify() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

func (f *facade) sendHeld() {
	f.mu.Lock()
	f.jobs <- 1 // want "channel send while holding f.mu"
	f.mu.Unlock()
}

func (f *facade) recvHeld() int {
	f.mu.Lock()
	v := <-f.jobs // want "channel receive while holding f.mu"
	f.mu.Unlock()
	return v
}

func (f *facade) recvUnderDefer() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return <-f.jobs // want "channel receive while holding f.mu"
}

func (f *facade) sendAfterUnlock() {
	f.mu.Lock()
	f.n++
	f.mu.Unlock()
	f.jobs <- 1
}

func (f *facade) earlyReturnThenSend() {
	f.mu.Lock()
	if f.n == 0 {
		f.mu.Unlock()
		return
	}
	f.n--
	f.mu.Unlock()
	f.jobs <- 1
}

func (f *facade) selectBlocking() {
	f.mu.Lock()
	defer f.mu.Unlock()
	select { // want "select without default while holding f.mu"
	case f.jobs <- 1:
	case <-time.After(time.Second):
	}
}

func (f *facade) selectNonBlocking() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case f.jobs <- 1:
		return true
	default:
		return false
	}
}

func (f *facade) sleepHeld() {
	f.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding f.mu"
	f.mu.Unlock()
}

func (f *facade) waitHeld() {
	f.mu.Lock()
	f.wg.Wait() // want "WaitGroup.Wait while holding f.mu"
	f.mu.Unlock()
}

func (f *facade) reentry() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.Identify() // want "Identify re-entry while holding f.mu"
}

func (f *facade) goroutineIsFresh() {
	f.mu.Lock()
	defer f.mu.Unlock()
	go func() {
		f.jobs <- 1
	}()
}

func (f *facade) branchBothUnlock(flag bool) {
	f.mu.Lock()
	if flag {
		f.mu.Unlock()
	} else {
		f.mu.Unlock()
	}
	f.jobs <- 2
}
