// Package eqcheck is a fixture stand-in for gatewords/internal/eqcheck: the
// ctxpoll analyzer matches work markers by the final import-path segment.
package eqcheck

// Result mirrors the shape of a SAT verdict enough for fixtures.
type Result struct {
	Equivalent bool
}

// CheckLits is a work marker: one SAT equivalence query.
func CheckLits(a, b int) Result {
	return Result{Equivalent: a == b}
}

// Solve is a work marker too.
func Solve(n int) int {
	return n
}
