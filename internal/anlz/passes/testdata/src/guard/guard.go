// Package guard is a fixture stand-in for gatewords/internal/guard: the
// guardgo analyzer resolves deferred helpers and accepts any whose body calls
// recover directly.
package guard

// Rescue converts a panic in the surrounding goroutine into a callback. It
// must be deferred directly: defer guard.Rescue("stage", onPanic).
func Rescue(stage string, onPanic func(any)) {
	if r := recover(); r != nil {
		if onPanic != nil {
			onPanic(r)
		}
	}
}

// Leak looks like a rescue helper but never calls recover.
func Leak(stage string, onPanic func(any)) {
	if onPanic != nil {
		onPanic(stage)
	}
}
