package ignore_a

import (
	"math/rand"
	"time"
)

// sameLine suppresses on the flagged line itself.
func sameLine() int {
	return rand.Intn(10) //anlz:ignore norand fixture exercises same-line suppression
}

// lineAbove suppresses from the line immediately above.
func lineAbove() int64 {
	//anlz:ignore norand fixture exercises line-above suppression
	return time.Now().UnixNano()
}

// wildcard suppresses any analyzer.
func wildcard() int {
	return rand.Intn(3) //anlz:ignore * fixture exercises wildcard suppression
}

// wrongAnalyzer names a different analyzer, so the finding survives.
func wrongAnalyzer() int {
	return rand.Intn(5) //anlz:ignore mapdet suppression names the wrong analyzer
}

// unsuppressed survives untouched.
func unsuppressed() int {
	return rand.Intn(7)
}

// malformed lacks a reason, which is itself a finding.
func malformed() int {
	return rand.Intn(9) //anlz:ignore norand
}
