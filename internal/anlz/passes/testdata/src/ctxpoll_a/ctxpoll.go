package ctxpoll_a

import (
	"context"

	"eqcheck"
)

type pipeline struct {
	ctx context.Context
}

func (p *pipeline) cancelled() bool {
	return p.ctx != nil && p.ctx.Err() != nil
}

func unpolled(roots []int) []eqcheck.Result {
	out := make([]eqcheck.Result, 0, len(roots))
	for _, r := range roots { // want "never polls for cancellation"
		out = append(out, eqcheck.CheckLits(r, r))
	}
	return out
}

func polledDirect(ctx context.Context, roots []int) []eqcheck.Result {
	out := make([]eqcheck.Result, 0, len(roots))
	for _, r := range roots {
		if ctx.Err() != nil {
			break
		}
		out = append(out, eqcheck.CheckLits(r, r))
	}
	return out
}

func polledHelper(p *pipeline, roots []int) []eqcheck.Result {
	out := make([]eqcheck.Result, 0, len(roots))
	for _, r := range roots {
		if p.cancelled() {
			break
		}
		out = append(out, eqcheck.CheckLits(r, r))
	}
	return out
}

// polledDeep buries the poll one call down; the cancel walk descends.
func solveOne(ctx context.Context, r int) eqcheck.Result {
	if ctx.Err() != nil {
		return eqcheck.Result{}
	}
	return eqcheck.CheckLits(r, r)
}

func polledDeepLoop(ctx context.Context, roots []int) []eqcheck.Result {
	out := make([]eqcheck.Result, 0, len(roots))
	for _, r := range roots {
		out = append(out, solveOne(ctx, r))
	}
	return out
}

// noWork loops without stage-level work: not the analyzer's business.
func noWork(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// unpolledFor covers the plain for-statement form.
func unpolledFor(n int) int {
	total := 0
	for i := 0; i < n; i++ { // want "never polls for cancellation"
		total += eqcheck.Solve(i)
	}
	return total
}
