package obskeys_a

import (
	"obs"
)

func named() {
	obs.Add(obs.CGroups, 1)
	obs.Enter(obs.StageSim)
}

func rawArgument() {
	obs.Add(3, 1) // want "raw literal 3 used as obs.Counter"
}

func rawConversion() int64 {
	c := obs.Counter(7) // want "raw literal 7 converted to obs.Counter"
	return int64(c)
}

func rawAssignment() {
	var s obs.Stage = 2 // want "raw literal 2 used as obs.Stage"
	obs.Enter(s)
}

func rawComposite() []obs.Counter {
	return []obs.Counter{obs.CGroups, 4} // want "raw literal 4 used as obs.Counter"
}

// derived arithmetic on existing enum values is legal: bounds loops do this.
func derived() {
	for c := obs.Counter(0); c < obs.NumCounters; c++ {
		obs.Add(c, 0)
	}
}

// plainInts never touch the enums.
func plainInts() int64 {
	var n int64 = 42
	obs.Add(obs.CTrials, n)
	return n + 7
}
