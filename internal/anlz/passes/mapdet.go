package passes

import (
	"go/ast"
	"go/types"
	"strings"

	"gatewords/internal/anlz"
	"gatewords/internal/anlz/anlzutil"
)

// MapDet enforces the byte-identical-output contract at its most common
// failure point: Go map iteration order is deliberately randomized, so a
// `for range` over a map that feeds output directly — or collects into a
// slice that is never sorted — produces different bytes on different runs.
var MapDet = &anlz.Analyzer{
	Name:     "mapdet",
	Doc:      "flag map iteration that reaches output without an intervening sort",
	Contract: "identification output is byte-identical across runs; map iteration order must never leak into rendered or collected results",
	Run:      runMapDet,
}

func runMapDet(pass *anlz.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				if t := pass.TypeOf(rng.X); t == nil || !isMap(t) {
					continue
				}
				checkMapRange(pass, rng, block.List[i+1:])
			}
			return true
		})
	}
	return nil
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one range-over-map. Direct writes to output streams
// inside the body are always findings; appends to slices declared outside the
// loop are findings unless a later statement in the enclosing block sorts the
// slice.
func checkMapRange(pass *anlz.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isOutputCall(pass.Info, n) {
				pass.Reportf(rng.For, "map iteration writes to output; iteration order is nondeterministic — collect and sort keys first")
				return false
			}
			if obj := appendTarget(pass.Info, n, rng); obj != nil && !sortedLater(pass.Info, rest, obj) {
				pass.Reportf(rng.For, "map iteration appends to %s, which is never sorted before use — sort it after the loop", obj.Name())
				return false
			}
		}
		return true
	})
}

// isOutputCall recognizes calls that emit bytes: the fmt print family and
// Write/WriteString/WriteByte/WriteRune methods (io.Writer, strings.Builder,
// bytes.Buffer, bufio.Writer, ...).
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	fn := anlzutil.Callee(info, call)
	if fn == nil {
		// An unresolvable method call named Write* is still treated as
		// output — dynamic io.Writer values are the common case.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return isWriteName(sel.Sel.Name)
		}
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		name := fn.Name()
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
	}
	return isWriteName(fn.Name())
}

func isWriteName(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// appendTarget returns the object of x in `x = append(x, ...)` when x is a
// slice variable declared outside the range statement, else nil.
func appendTarget(info *types.Info, call *ast.CallExpr, rng *ast.RangeStmt) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[target]
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil // loop-local accumulator, not an outer collection
	}
	return obj
}

// sortedLater reports whether a later sibling statement sorts the collected
// slice (any sort/slices call, or a module canonicalizer with Sort in its
// name, mentioning the object).
func sortedLater(info *types.Info, rest []ast.Stmt, obj types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if anlzutil.IsSortCall(info, call) && anlzutil.MentionsObject(info, call, obj) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
