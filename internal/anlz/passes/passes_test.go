package passes_test

import (
	"path/filepath"
	"strings"
	"testing"

	"gatewords/internal/anlz"
	"gatewords/internal/anlz/anlztest"
	"gatewords/internal/anlz/passes"
)

const srcRoot = "testdata/src"

func TestMapDet(t *testing.T)  { anlztest.Run(t, srcRoot, "mapdet_a", passes.MapDet) }
func TestCtxPoll(t *testing.T) { anlztest.Run(t, srcRoot, "ctxpoll_a", passes.CtxPoll) }
func TestGuardGo(t *testing.T) { anlztest.Run(t, srcRoot, "guardgo_a", passes.GuardGo) }
func TestObsKeys(t *testing.T) { anlztest.Run(t, srcRoot, "obskeys_a", passes.ObsKeys) }
func TestNoRand(t *testing.T)  { anlztest.Run(t, srcRoot, "norand_a", passes.NoRand) }
func TestLockBal(t *testing.T) { anlztest.Run(t, srcRoot, "lockbal_a", passes.LockBal) }

// TestAll pins the registry: six analyzers, sorted, fully documented.
func TestAll(t *testing.T) {
	all := passes.All()
	want := []string{"ctxpoll", "guardgo", "lockbal", "mapdet", "norand", "obskeys"}
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Contract == "" || a.Run == nil {
			t.Errorf("%s: missing Doc, Contract, or Run", a.Name)
		}
	}
}

// TestSuppression runs norand through the full Run path (which honors
// //anlz:ignore) over a fixture mixing suppressed, surviving, and malformed
// directives.
func TestSuppression(t *testing.T) {
	loader := anlztest.Loader(t)
	abs, err := filepath.Abs(srcRoot)
	if err != nil {
		t.Fatal(err)
	}
	loader.AddSourceRoot(abs)
	pkg, err := loader.LoadDir(filepath.Join(abs, "ignore_a"), "ignore_a")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	// Copy the analyzer with its package allowlist cleared so Run applies it
	// to the fixture path.
	norand := *passes.NoRand
	norand.Packages = nil
	diags, err := anlz.Run(loader, []*anlz.Package{pkg}, []*anlz.Analyzer{&norand})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+"/"+funcOf(d.Message))
	}
	// Survivors: the wrong-analyzer line, the unsuppressed line, and the
	// malformed directive (as pseudo-analyzer anlz) plus the finding it
	// failed to suppress.
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	if counts["anlz"] != 1 {
		t.Errorf("want exactly 1 malformed-directive diagnostic, got %d (%v)", counts["anlz"], got)
	}
	if counts["norand"] != 3 {
		t.Errorf("want 3 surviving norand findings (wrongAnalyzer, unsuppressed, malformed), got %d (%v)", counts["norand"], got)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "suppression") && d.Analyzer == "norand" && !strings.Contains(d.Message, "math/rand") {
			t.Errorf("unexpected surviving finding: %s", d)
		}
	}
}

func funcOf(msg string) string {
	if i := strings.IndexByte(msg, ' '); i > 0 {
		return msg[:i]
	}
	return msg
}
