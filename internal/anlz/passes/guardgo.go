package passes

import (
	"go/ast"

	"gatewords/internal/anlz"
	"gatewords/internal/anlz/anlzutil"
)

// GuardGo enforces the fault-isolation contract: every goroutine spawned in
// the identification pipeline and the service layer must establish a recover
// boundary in its leading defers, so a panic in one group's worker degrades
// that group instead of killing the process. The boundary is either a
// deferred function literal calling recover directly or a deferred call to a
// helper (guard.Rescue) whose body does.
var GuardGo = &anlz.Analyzer{
	Name:     "guardgo",
	Doc:      "flag goroutines without a leading recover boundary",
	Contract: "every goroutine in internal/core and internal/service runs inside a recover boundary; a worker panic becomes a recorded GroupFailure, never a process crash",
	Packages: []string{
		"gatewords/internal/core",
		"gatewords/internal/service",
	},
	Run: runGuardGo,
}

func runGuardGo(pass *anlz.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !anlzutil.GuardedGoroutine(pass.Loader, pass.Info, g) {
				pass.Reportf(g.Pos(), "goroutine has no recover boundary in its leading defers; add defer guard.Rescue(...) so a panic degrades the group instead of crashing the process")
			}
			return true
		})
	}
	return nil
}
