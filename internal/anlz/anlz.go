// Package anlz is the repo's static-analysis framework: a small,
// self-contained analogue of golang.org/x/tools/go/analysis built entirely on
// the standard library (go/parser, go/types, and the offline source
// importer), so it runs in the same hermetic, network-free environment as the
// build itself.
//
// The pipeline established hard cross-cutting contracts — byte-identical JSON
// output across sequential and parallel runs, cooperative cancellation at
// every stage-granularity loop, every pool goroutine inside a recover
// boundary, a closed obs counter schema, injected randomness and clocks only
// — that until now were enforced by a handful of runtime tests a future
// change could silently rot. The analyzers under internal/anlz/passes encode
// those contracts as compile-time checks; cmd/gatevet is the multichecker
// that runs them over the module, and `make check` refuses a tree that is
// not gatevet-clean.
//
// The moving parts:
//
//   - Loader (load.go) parses and type-checks packages from source with no
//     module downloads: module-internal imports resolve against the module
//     root on disk, test fixtures against registered GOPATH-style source
//     roots, and the standard library through go/importer's source importer.
//
//   - Analyzer/Pass mirror their x/tools namesakes: an Analyzer declares a
//     name, a doc string, an optional package allowlist, and a Run function
//     that inspects one type-checked package and reports Diagnostics.
//
//   - Run (run.go) applies analyzers to loaded packages, honors package
//     allowlists, filters diagnostics through `//anlz:ignore` suppression
//     comments (suppress.go), and returns a deterministically sorted list.
package anlz

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. The zero value is not useful: Name and Run
// are required.
type Analyzer struct {
	// Name is the analyzer's stable identifier: the tag in diagnostics, the
	// handle in -only/-disable flags, and the name `//anlz:ignore` comments
	// suppress by.
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Contract is the repo invariant the analyzer enforces, for the -list
	// output and DESIGN.md table.
	Contract string
	// Packages restricts the analyzer to module packages whose import path
	// equals one of these entries or lives below an entry ending in "/...".
	// Empty means every package. The runner applies the restriction; test
	// harnesses invoking Run directly bypass it.
	Packages []string
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Loader gives analyzers cross-package reach: function bodies of other
	// module packages (FuncSource) for transitive call analysis.
	Loader *Loader

	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, newDiagnostic(p.Analyzer.Name, p.Fset.Position(pos), fmt.Sprintf(format, args...)))
}

// TypeOf returns the type of expression e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.Info.TypeOf(e); t != nil {
		return t
	}
	return nil
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`

	// File/Line/Col mirror Pos for JSON output (token.Position's own JSON
	// form spells the filename field "Filename", which no other tool here
	// uses).
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// newDiagnostic builds a Diagnostic with the JSON mirror fields filled in.
func newDiagnostic(analyzer string, pos token.Position, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      pos,
		Message:  msg,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
	}
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by position, then analyzer, then message,
// making multichecker output byte-deterministic.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
