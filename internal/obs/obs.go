// Package obs is the pipeline's observability layer: a lightweight,
// allocation-conscious Recorder that attributes wall time, work counters, and
// peak gauges to the identification stages of DAC'15 Figure 2 (adjacency
// grouping → cone matching → control-signal discovery → trial/reduce loop →
// reduction verification).
//
// The design contract is zero cost when disabled: every method is safe on a
// nil *Recorder and returns before touching the clock, so the hot path pays
// one nil check and nothing else (pinned by BenchmarkObserverOff against
// BenchmarkObserverOn at the module root). When enabled, a Recorder is a
// couple of fixed arrays — no maps, no locks — so one recorder per worker is
// cheap and recorders merge deterministically (Merge is commutative over
// sums and maxima, and the parallel pipeline merges per-group recorders in
// group order).
//
// Stage regions can additionally be labeled for CPU profiling: after
// EnableProfileLabels, Do wraps each region in runtime/pprof.Do with a
// "stage" label so `go tool pprof -tagfocus` splits profile samples by
// pipeline stage. Labeling is off by default because pprof.Do allocates a
// label set and context per call — fine for the handful of regions a profile
// run cares about, too hot for the thousands of match spans a large netlist
// produces when nobody is profiling.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime/pprof"
	"strings"
	"time"
)

// Stage identifies one pipeline stage for span accounting.
type Stage uint8

// The pipeline stages, in execution order. NumStages bounds the enum.
const (
	// StageGroup is first-level adjacency grouping (§2.2).
	StageGroup Stage = iota
	// StageMatch is cone building and full/partial subgroup matching (§2.3).
	StageMatch
	// StageCtrlSig is control-signal discovery in dissimilar subtrees (§2.4).
	StageCtrlSig
	// StageTrial is the assignment trial / reduce / re-match loop (§2.5).
	StageTrial
	// StageVerify is cone-equivalence verification of winning reductions.
	StageVerify
	// StageScoap is the SCOAP testability fixed point (internal/scoap),
	// run by netlint NL5xx rules and by triage.
	StageScoap
	// StageTriage is suspect scoring and ranking (gatewords.Triage).
	StageTriage

	NumStages
)

var stageNames = [NumStages]string{"group", "match", "ctrlsig", "trial", "verify", "scoap", "triage"}

// String names the stage ("group", "match", "ctrlsig", "trial", "verify",
// "scoap", "triage").
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// Counter identifies one monotonically accumulated work counter.
type Counter uint8

// The work counters. NumCounters bounds the enum.
const (
	// CtrTrials counts assignment trials attempted (reduce.Apply calls).
	CtrTrials Counter = iota
	// CtrReductions counts feasible trials (propagation without conflict).
	CtrReductions
	// CtrReduceGateVisits counts gate evaluations during constant propagation.
	CtrReduceGateVisits
	// CtrEqChecks counts equivalence/satisfiability queries issued.
	CtrEqChecks
	// CtrSimRounds counts 64-pattern random-simulation rounds in eqcheck.
	CtrSimRounds
	// CtrSATDecisions counts DPLL decisions.
	CtrSATDecisions
	// CtrSATPropagations counts DPLL unit propagations.
	CtrSATPropagations
	// CtrSATConflicts counts DPLL conflicts (the SAT budget's currency).
	CtrSATConflicts
	// CtrSATRetries counts eqcheck retry-ladder escalations: SAT stages rerun
	// with a doubled conflict budget after an Unknown verdict.
	CtrSATRetries
	// CtrPanicsRecovered counts group pipelines that panicked and were
	// converted into GroupFailure records (see internal/guard). A failed
	// group's own recorder is discarded, so this counter is the only
	// observation it contributes.
	CtrPanicsRecovered
	// CtrDegradedSubgroups counts subgroups degraded to the full-structural
	// match because a resource budget was exceeded (see guard.Budgets).
	CtrDegradedSubgroups
	// CtrScoapIterations counts worklist relaxations of the SCOAP fixed point.
	CtrScoapIterations
	// CtrScoapWidenedSCCs counts combinational SCCs widened to ∞ because the
	// SCOAP relaxation budget ran out before convergence.
	CtrScoapWidenedSCCs
	// CtrTriageSuspects counts suspects emitted by gatewords.Triage.
	CtrTriageSuspects
	// CtrSATLearned counts clauses learned by CDCL conflict analysis.
	CtrSATLearned
	// CtrSATRestarts counts CDCL restarts (Luby sequence).
	CtrSATRestarts
	// CtrSATAssumpSolves counts incremental assumption solves on a warm
	// solver (Solver.SolveUnder), as opposed to from-scratch encodings.
	CtrSATAssumpSolves
	// CtrSATModelsRejected counts SAT models that failed re-simulation
	// against the AIG — each one is a solver bug surfaced instead of a
	// silently degraded Unknown.
	CtrSATModelsRejected
	// CtrJobsShed counts service submissions refused by admission control
	// (deadline infeasible or load shedding), as opposed to queue-full
	// rejections. Shed jobs never executed; the counter is the price the
	// daemon paid to stay inside its latency contract.
	CtrJobsShed
	// CtrQuarantineTrips counts circuit-breaker trips: a netlist fingerprint
	// crossing the consecutive-failure threshold and entering quarantine.
	CtrQuarantineTrips
	// CtrJournalReplays counts jobs restored from the durable job journal at
	// daemon startup (terminal jobs re-served plus queued jobs re-enqueued).
	CtrJournalReplays
	// CtrJournalTornRecords counts torn or corrupt journal tails detected and
	// discarded during replay — a crash mid-append, never silently replayed.
	CtrJournalTornRecords

	NumCounters
)

var counterNames = [NumCounters]string{
	"trials", "reductions", "reduce_gate_visits", "eq_checks",
	"sim_rounds", "sat_decisions", "sat_propagations", "sat_conflicts",
	"sat_retries", "panics_recovered", "degraded_subgroups",
	"scoap_iterations", "scoap_widened_sccs", "triage_suspects",
	"sat_learned_clauses", "sat_restarts", "sat_assumption_solves",
	"sat_models_rejected", "jobs_shed", "quarantine_trips",
	"journal_replays", "journal_torn_records",
}

// String names the counter.
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("Counter(%d)", uint8(c))
}

// Gauge identifies one high-watermark gauge (Max keeps the peak).
type Gauge uint8

// The gauges. NumGauges bounds the enum.
const (
	// GaugeSubgroupBits is the widest subgroup resolved (bits).
	GaugeSubgroupBits Gauge = iota
	// GaugeControlSignals is the most control signals found for one subgroup.
	GaugeControlSignals
	// GaugeReduceQueue is the deepest constant-propagation worklist.
	GaugeReduceQueue

	NumGauges
)

var gaugeNames = [NumGauges]string{"max_subgroup_bits", "max_control_signals", "max_reduce_queue"}

// String names the gauge.
func (g Gauge) String() string {
	if g < NumGauges {
		return gaugeNames[g]
	}
	return fmt.Sprintf("Gauge(%d)", uint8(g))
}

// Recorder accumulates per-stage spans, counters, and gauges. The zero value
// is ready to use; a nil *Recorder is a valid no-op sink on every method.
// A Recorder is not goroutine-safe: give each worker its own and Merge.
type Recorder struct {
	stageNS    [NumStages]int64
	stageSpans [NumStages]int64
	counters   [NumCounters]int64
	gauges     [NumGauges]int64
	labels     bool // Do also applies pprof stage labels (EnableProfileLabels)
}

// New returns an empty Recorder.
func New() *Recorder { return &Recorder{} }

// EnableProfileLabels makes Do wrap each region in runtime/pprof.Do with a
// stage=<name> goroutine label, attributing CPU-profile samples to pipeline
// stages. Enable it only while a CPU profile is being taken: each labeled
// region allocates a label set and context.
func (r *Recorder) EnableProfileLabels() {
	if r == nil {
		return
	}
	r.labels = true
}

// ProfileLabelsEnabled reports whether Do applies pprof labels (false on nil).
func (r *Recorder) ProfileLabelsEnabled() bool { return r != nil && r.labels }

// Span is an open stage timer from Start. The zero Span (from a nil
// Recorder) is a no-op.
type Span struct {
	r     *Recorder
	stage Stage
	start time.Time
}

// Start opens a span attributing wall time to stage s until End.
func (r *Recorder) Start(s Stage) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, stage: s, start: time.Now()}
}

// End closes the span, adding its duration to the stage. time.Time carries a
// monotonic reading, so the difference is immune to wall-clock steps.
func (sp Span) End() {
	if sp.r == nil {
		return
	}
	sp.r.stageNS[sp.stage] += int64(time.Since(sp.start))
	sp.r.stageSpans[sp.stage]++
}

// Do runs fn as one span of stage s. After EnableProfileLabels it also
// labels the goroutine with pprof label stage=s for the duration, so
// CPU-profile samples attribute to the stage. With a nil Recorder fn runs
// directly — no clock, no labels.
func (r *Recorder) Do(ctx context.Context, s Stage, fn func()) {
	if r == nil {
		fn()
		return
	}
	sp := r.Start(s)
	if r.labels {
		if ctx == nil {
			ctx = context.Background()
		}
		pprof.Do(ctx, pprof.Labels("stage", s.String()), func(context.Context) { fn() })
	} else {
		fn()
	}
	sp.End()
}

// Add accumulates n into counter c.
func (r *Recorder) Add(c Counter, n int64) {
	if r == nil {
		return
	}
	r.counters[c] += n
}

// Max raises gauge g to v if v is the new peak.
func (r *Recorder) Max(g Gauge, v int64) {
	if r == nil || v <= r.gauges[g] {
		return
	}
	r.gauges[g] = v
}

// Clone returns an independent copy of the recorder's current state — the
// snapshot primitive behind serving live observability (a server holds its
// aggregate recorder under a lock, clones it, and renders the clone outside
// the lock). Cloning nil returns nil, which every Recorder method accepts.
func (r *Recorder) Clone() *Recorder {
	if r == nil {
		return nil
	}
	c := *r // the state is fixed-size arrays; shallow copy is a deep copy
	return &c
}

// Merge folds o into r: stage times, span counts, and counters add; gauges
// keep the maximum. Merging nil (either side nil) is a no-op.
func (r *Recorder) Merge(o *Recorder) {
	if r == nil || o == nil {
		return
	}
	for i := range r.stageNS {
		r.stageNS[i] += o.stageNS[i]
		r.stageSpans[i] += o.stageSpans[i]
	}
	for i := range r.counters {
		r.counters[i] += o.counters[i]
	}
	for i := range r.gauges {
		if o.gauges[i] > r.gauges[i] {
			r.gauges[i] = o.gauges[i]
		}
	}
}

// StageNS returns the accumulated nanoseconds of stage s (0 on nil).
func (r *Recorder) StageNS(s Stage) int64 {
	if r == nil {
		return 0
	}
	return r.stageNS[s]
}

// StageSpans returns the number of closed spans of stage s (0 on nil).
func (r *Recorder) StageSpans(s Stage) int64 {
	if r == nil {
		return 0
	}
	return r.stageSpans[s]
}

// Count returns the value of counter c (0 on nil).
func (r *Recorder) Count(c Counter) int64 {
	if r == nil {
		return 0
	}
	return r.counters[c]
}

// GaugeValue returns the peak of gauge g (0 on nil).
func (r *Recorder) GaugeValue(g Gauge) int64 {
	if r == nil {
		return 0
	}
	return r.gauges[g]
}

// TotalNS returns the sum of all stage times.
func (r *Recorder) TotalNS() int64 {
	if r == nil {
		return 0
	}
	var t int64
	for _, ns := range r.stageNS {
		t += ns
	}
	return t
}

// stageJSON / counterJSON / gaugeJSON are the rendered snapshot rows. Slices
// in enum order (not maps) keep the encoding byte-deterministic.
type stageJSON struct {
	Stage string  `json:"stage"`
	MS    float64 `json:"ms"`
	Spans int64   `json:"spans"`
}

type counterJSON struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type gaugeJSON struct {
	Name string `json:"name"`
	Peak int64  `json:"peak"`
}

type recorderJSON struct {
	Stages   []stageJSON   `json:"stages"`
	Counters []counterJSON `json:"counters"`
	Gauges   []gaugeJSON   `json:"gauges"`
}

func (r *Recorder) snapshot() recorderJSON {
	var doc recorderJSON
	for s := Stage(0); s < NumStages; s++ {
		doc.Stages = append(doc.Stages, stageJSON{
			Stage: s.String(),
			MS:    round3(float64(r.StageNS(s)) / 1e6),
			Spans: r.StageSpans(s),
		})
	}
	for c := Counter(0); c < NumCounters; c++ {
		doc.Counters = append(doc.Counters, counterJSON{Name: c.String(), Value: r.Count(c)})
	}
	for g := Gauge(0); g < NumGauges; g++ {
		doc.Gauges = append(doc.Gauges, gaugeJSON{Name: g.String(), Peak: r.GaugeValue(g)})
	}
	return doc
}

func round3(f float64) float64 {
	return float64(int64(f*1000+0.5)) / 1000
}

// MarshalJSON renders the recorder deterministically: stages, counters, and
// gauges as arrays in enum order, times in (rounded) milliseconds. A nil
// recorder renders as the all-zero document.
func (r *Recorder) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.snapshot())
}

// WriteText renders an aligned human-readable breakdown.
func (r *Recorder) WriteText(w io.Writer) error {
	doc := r.snapshot()
	total := float64(r.TotalNS()) / 1e6
	for _, s := range doc.Stages {
		pctOf := 0.0
		if total > 0 {
			pctOf = 100 * s.MS / total
		}
		if _, err := fmt.Fprintf(w, "stage   %-8s %10.3fms %5.1f%%  (%d spans)\n",
			s.Stage, s.MS, pctOf, s.Spans); err != nil {
			return err
		}
	}
	for _, c := range doc.Counters {
		if _, err := fmt.Fprintf(w, "counter %-20s %12d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range doc.Gauges {
		if _, err := fmt.Fprintf(w, "gauge   %-20s %12d\n", g.Name, g.Peak); err != nil {
			return err
		}
	}
	return nil
}

// StageLine renders the stage split on one line, for table footnotes:
// "group=0.1ms match=2.3ms ctrlsig=0.4ms trial=8.9ms verify=0ms".
func (r *Recorder) StageLine() string {
	var sb strings.Builder
	for s := Stage(0); s < NumStages; s++ {
		if s > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%.1fms", s, float64(r.StageNS(s))/1e6)
	}
	return sb.String()
}
