package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilRecorderIsSafe pins the zero-cost-when-nil contract: every method
// of a nil *Recorder must be a no-op, not a panic — the pipeline threads the
// recorder unconditionally and relies on this.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	sp := r.Start(StageTrial)
	sp.End()
	r.Add(CtrTrials, 3)
	r.Max(GaugeReduceQueue, 9)
	r.Merge(New())
	New().Merge(r)
	ran := false
	r.Do(context.Background(), StageMatch, func() { ran = true })
	if !ran {
		t.Fatal("Do on nil recorder must still run fn")
	}
	if r.StageNS(StageTrial) != 0 || r.Count(CtrTrials) != 0 || r.GaugeValue(GaugeReduceQueue) != 0 || r.TotalNS() != 0 {
		t.Fatal("nil recorder accessors must return 0")
	}
	// encoding/json renders a nil Marshaler pointer as null without calling
	// the method; direct callers (the facade) still get the zero document.
	if data, err := r.MarshalJSON(); err != nil || !bytes.Contains(data, []byte(`"stages"`)) {
		t.Fatalf("nil recorder must marshal to the zero document: %s, %v", data, err)
	}
}

func TestSpansCountersGauges(t *testing.T) {
	r := New()
	sp := r.Start(StageTrial)
	time.Sleep(time.Millisecond)
	sp.End()
	if r.StageNS(StageTrial) <= 0 {
		t.Fatal("span recorded no time")
	}
	if r.StageSpans(StageTrial) != 1 {
		t.Fatalf("spans = %d, want 1", r.StageSpans(StageTrial))
	}
	r.Add(CtrTrials, 2)
	r.Add(CtrTrials, 3)
	if r.Count(CtrTrials) != 5 {
		t.Fatalf("counter = %d, want 5", r.Count(CtrTrials))
	}
	r.Max(GaugeSubgroupBits, 4)
	r.Max(GaugeSubgroupBits, 2) // lower value must not regress the peak
	if r.GaugeValue(GaugeSubgroupBits) != 4 {
		t.Fatalf("gauge = %d, want 4", r.GaugeValue(GaugeSubgroupBits))
	}
}

func TestDoLabelsAndTimes(t *testing.T) {
	r := New()
	if r.ProfileLabelsEnabled() {
		t.Fatal("profile labels must be off by default (pprof.Do allocates per span)")
	}
	ran := false
	r.Do(nil, StageCtrlSig, func() { ran = true }) //nolint:staticcheck // nil ctx is part of the contract
	if !ran {
		t.Fatal("fn did not run")
	}
	if r.StageSpans(StageCtrlSig) != 1 {
		t.Fatalf("Do must record exactly one span, got %d", r.StageSpans(StageCtrlSig))
	}
	// With labels enabled the pprof.Do path must still run fn and record one
	// span per region (label application itself is the stdlib's contract).
	r.EnableProfileLabels()
	if !r.ProfileLabelsEnabled() {
		t.Fatal("EnableProfileLabels did not stick")
	}
	r.Do(nil, StageCtrlSig, func() { ran = true }) //nolint:staticcheck
	if r.StageSpans(StageCtrlSig) != 2 {
		t.Fatalf("labeled Do must record a span, got %d", r.StageSpans(StageCtrlSig))
	}
	var nilRec *Recorder
	nilRec.EnableProfileLabels() // must not panic
	if nilRec.ProfileLabelsEnabled() {
		t.Fatal("nil recorder reports labels enabled")
	}
}

func TestMergeSumsAndMaxes(t *testing.T) {
	a, b := New(), New()
	a.stageNS[StageMatch] = 10
	a.stageSpans[StageMatch] = 1
	b.stageNS[StageMatch] = 5
	b.stageSpans[StageMatch] = 2
	a.Add(CtrReductions, 7)
	b.Add(CtrReductions, 4)
	a.Max(GaugeReduceQueue, 3)
	b.Max(GaugeReduceQueue, 8)
	a.Merge(b)
	if a.StageNS(StageMatch) != 15 || a.StageSpans(StageMatch) != 3 {
		t.Fatalf("merged stage = %d ns / %d spans", a.StageNS(StageMatch), a.StageSpans(StageMatch))
	}
	if a.Count(CtrReductions) != 11 {
		t.Fatalf("merged counter = %d, want 11", a.Count(CtrReductions))
	}
	if a.GaugeValue(GaugeReduceQueue) != 8 {
		t.Fatalf("merged gauge = %d, want 8", a.GaugeValue(GaugeReduceQueue))
	}
}

// TestCloneIsIndependent pins the snapshot contract: a clone carries the
// source's exact state, and neither side observes later writes to the other.
func TestCloneIsIndependent(t *testing.T) {
	if (*Recorder)(nil).Clone() != nil {
		t.Fatal("Clone of nil recorder should be nil")
	}
	r := New()
	r.stageNS[StageTrial] = 100
	r.stageSpans[StageTrial] = 1
	r.Add(CtrTrials, 5)
	r.Max(GaugeSubgroupBits, 9)
	r.EnableProfileLabels()
	c := r.Clone()
	if c.StageNS(StageTrial) != 100 || c.Count(CtrTrials) != 5 || c.GaugeValue(GaugeSubgroupBits) != 9 {
		t.Fatalf("clone lost state: %d ns, %d trials, %d gauge",
			c.StageNS(StageTrial), c.Count(CtrTrials), c.GaugeValue(GaugeSubgroupBits))
	}
	if !c.ProfileLabelsEnabled() {
		t.Error("clone lost the profile-labels flag")
	}
	r.Add(CtrTrials, 1)
	c.Add(CtrTrials, 10)
	if r.Count(CtrTrials) != 6 || c.Count(CtrTrials) != 15 {
		t.Errorf("clone aliases source: r=%d c=%d", r.Count(CtrTrials), c.Count(CtrTrials))
	}
}

// TestJSONDeterministic pins byte-identical rendering for equal recorders —
// the property the committed BENCH_pipeline.json and golden diffs rely on.
func TestJSONDeterministic(t *testing.T) {
	build := func() *Recorder {
		r := New()
		r.stageNS[StageTrial] = 1_234_567
		r.stageSpans[StageTrial] = 2
		r.Add(CtrSATConflicts, 42)
		r.Max(GaugeControlSignals, 6)
		return r
	}
	a, _ := json.Marshal(build())
	b, _ := json.Marshal(build())
	if !bytes.Equal(a, b) {
		t.Fatalf("non-deterministic JSON:\n%s\n%s", a, b)
	}
	for _, want := range []string{`"stage":"group"`, `"name":"sat_conflicts"`, `"value":42`, `"name":"max_control_signals"`, `"peak":6`, `"ms":1.235`} {
		if !bytes.Contains(a, []byte(want)) {
			t.Errorf("JSON missing %s:\n%s", want, a)
		}
	}
}

func TestWriteTextAndStageLine(t *testing.T) {
	r := New()
	r.stageNS[StageMatch] = 2_000_000
	r.stageSpans[StageMatch] = 4
	r.Add(CtrTrials, 9)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stage   match", "counter trials", "gauge   max_reduce_queue", "(4 spans)"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	line := r.StageLine()
	if !strings.Contains(line, "match=2.0ms") || !strings.Contains(line, "verify=0.0ms") {
		t.Errorf("StageLine = %q", line)
	}
}

func TestEnumNames(t *testing.T) {
	if StageCtrlSig.String() != "ctrlsig" || Stage(200).String() != "Stage(200)" {
		t.Error("stage names")
	}
	if CtrReduceGateVisits.String() != "reduce_gate_visits" || Counter(200).String() != "Counter(200)" {
		t.Error("counter names")
	}
	if GaugeSubgroupBits.String() != "max_subgroup_bits" || Gauge(200).String() != "Gauge(200)" {
		t.Error("gauge names")
	}
}
