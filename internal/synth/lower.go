// Package synth is the mini synthesis flow that turns an rtl.Design into a
// flattened gate-level netlist.Netlist. It bit-blasts word-level
// expressions, constant-folds during lowering (the optimization that creates
// the per-bit structural divergence the paper exploits), shares common
// subexpressions at the gate level, renames internal nets to synthetic
// U-numbers, and preserves register names on flip-flop output nets — the
// exact combination of behaviors the DAC'15 experimental setup depends on.
//
// Gate emission order is engineered the way cell creation order falls out
// of per-register mapping in real tools: for each register, internal gates
// first, then the per-bit root gates consecutively, then the flip-flops.
// The adjacency grouping of §2.2 keys on that order.
package synth

import (
	"fmt"

	"gatewords/internal/logic"
	"gatewords/internal/rtl"
)

// MuxStyle selects how word-level muxes are mapped to gates.
type MuxStyle uint8

// Mux mapping styles.
const (
	// MuxCell maps to a MUX2 library cell.
	MuxCell MuxStyle = iota
	// MuxNand maps to the classic four-NAND decomposition.
	MuxNand
	// MuxAoi maps to NOT(AOI21(a, !s, b&s)).
	MuxAoi
)

// lowerExpr bit-blasts a word-level expression into per-bit structures,
// folding constants as it goes.
func lowerExpr(e rtl.Expr, widths map[string]int, style MuxStyle, maxFanin int) ([]rtl.BitExpr, error) {
	switch n := e.(type) {
	case rtl.Ref:
		w, ok := widths[n.Name]
		if !ok {
			return nil, fmt.Errorf("synth: undefined signal %q", n.Name)
		}
		out := make([]rtl.BitExpr, w)
		for i := 0; i < w; i++ {
			out[i] = rtl.BRef{Name: n.Name, Bit: i}
		}
		return out, nil
	case rtl.Const:
		out := make([]rtl.BitExpr, len(n.Bits))
		for i, b := range n.Bits {
			out[i] = rtl.BConst{V: b}
		}
		return out, nil
	case rtl.Not:
		a, err := lowerExpr(n.A, widths, style, maxFanin)
		if err != nil {
			return nil, err
		}
		for i := range a {
			a[i] = fold(logic.Not, a[i])
		}
		return a, nil
	case rtl.Bin:
		a, err := lowerExpr(n.A, widths, style, maxFanin)
		if err != nil {
			return nil, err
		}
		b, err := lowerExpr(n.B, widths, style, maxFanin)
		if err != nil {
			return nil, err
		}
		out := make([]rtl.BitExpr, len(a))
		for i := range a {
			out[i] = fold(n.Kind, a[i], b[i])
		}
		return out, nil
	case rtl.Add:
		a, err := lowerExpr(n.A, widths, style, maxFanin)
		if err != nil {
			return nil, err
		}
		b, err := lowerExpr(n.B, widths, style, maxFanin)
		if err != nil {
			return nil, err
		}
		return lowerAdd(a, b, rtl.BConst{V: false}), nil
	case rtl.Inc:
		a, err := lowerExpr(n.A, widths, style, maxFanin)
		if err != nil {
			return nil, err
		}
		zeros := make([]rtl.BitExpr, len(a))
		for i := range zeros {
			zeros[i] = rtl.BConst{V: false}
		}
		return lowerAdd(a, zeros, rtl.BConst{V: true}), nil
	case rtl.Mux:
		sel, err := lowerExpr(n.Sel, widths, style, maxFanin)
		if err != nil {
			return nil, err
		}
		a, err := lowerExpr(n.A, widths, style, maxFanin)
		if err != nil {
			return nil, err
		}
		b, err := lowerExpr(n.B, widths, style, maxFanin)
		if err != nil {
			return nil, err
		}
		out := make([]rtl.BitExpr, len(a))
		for i := range a {
			out[i] = lowerMux(sel[0], a[i], b[i], style)
		}
		return out, nil
	case rtl.Concat:
		var out []rtl.BitExpr
		for _, p := range n.Parts {
			bits, err := lowerExpr(p, widths, style, maxFanin)
			if err != nil {
				return nil, err
			}
			out = append(out, bits...)
		}
		return out, nil
	case rtl.EqConst:
		a, err := lowerExpr(n.A, widths, style, maxFanin)
		if err != nil {
			return nil, err
		}
		terms := make([]rtl.BitExpr, len(a))
		for i := range a {
			if n.K>>uint(i)&1 == 1 {
				terms[i] = a[i]
			} else {
				terms[i] = fold(logic.Not, a[i])
			}
		}
		return []rtl.BitExpr{reduceTree(logic.And, terms, maxFanin)}, nil
	case rtl.RedOr:
		a, err := lowerExpr(n.A, widths, style, maxFanin)
		if err != nil {
			return nil, err
		}
		return []rtl.BitExpr{reduceTree(logic.Or, a, maxFanin)}, nil
	default:
		return nil, fmt.Errorf("synth: cannot lower %T", e)
	}
}

// lowerMux maps one bit of a 2:1 mux (sel ? b : a) in the requested style,
// folding when an operand is constant.
func lowerMux(sel, a, b rtl.BitExpr, style MuxStyle) rtl.BitExpr {
	if bc, ok := b.(rtl.BConst); ok {
		if bc.V {
			return fold(logic.Or, sel, a) // sel ? 1 : a
		}
		return fold(logic.And, fold(logic.Not, sel), a) // sel ? 0 : a
	}
	if ac, ok := a.(rtl.BConst); ok {
		if ac.V {
			return fold(logic.Or, fold(logic.Not, sel), b) // sel ? b : 1
		}
		return fold(logic.And, sel, b) // sel ? b : 0
	}
	if sc, ok := sel.(rtl.BConst); ok {
		if sc.V {
			return b
		}
		return a
	}
	switch style {
	case MuxNand:
		ns := fold(logic.Not, sel)
		return fold(logic.Nand, fold(logic.Nand, a, ns), fold(logic.Nand, b, sel))
	case MuxAoi:
		ns := fold(logic.Not, sel)
		return fold(logic.Not, fold(logic.Aoi21, a, ns, fold(logic.And, b, sel)))
	default:
		return fold(logic.Mux2, sel, a, b)
	}
}

// lowerAdd builds a ripple-carry adder; the shared Xor(a,b) and carry terms
// are deduplicated later by gate-level CSE.
func lowerAdd(a, b []rtl.BitExpr, carry rtl.BitExpr) []rtl.BitExpr {
	out := make([]rtl.BitExpr, len(a))
	for i := range a {
		axb := fold(logic.Xor, a[i], b[i])
		out[i] = fold(logic.Xor, axb, carry)
		ab := fold(logic.And, a[i], b[i])
		ac := fold(logic.And, axb, carry)
		carry = fold(logic.Or, ab, ac)
	}
	return out
}

// reduceTree combines terms with a balanced tree of at-most-maxFanin gates.
func reduceTree(kind logic.Kind, terms []rtl.BitExpr, maxFanin int) rtl.BitExpr {
	if maxFanin < 2 {
		maxFanin = 3
	}
	for len(terms) > 1 {
		var next []rtl.BitExpr
		for i := 0; i < len(terms); i += maxFanin {
			end := i + maxFanin
			if end > len(terms) {
				end = len(terms)
			}
			chunk := terms[i:end]
			if len(chunk) == 1 {
				next = append(next, chunk[0])
				continue
			}
			next = append(next, fold(kind, chunk...))
		}
		terms = next
	}
	return terms[0]
}

// fold builds a BOp while performing local constant folding and trivial
// rewrites; this mirrors what logic optimization does during synthesis and
// is the source of per-bit structural divergence for words that load
// constants under control signals.
func fold(kind logic.Kind, args ...rtl.BitExpr) rtl.BitExpr {
	switch kind {
	case logic.Buf:
		return args[0]
	case logic.Not:
		switch a := args[0].(type) {
		case rtl.BConst:
			return rtl.BConst{V: !a.V}
		case rtl.BOp:
			if a.Kind == logic.Not {
				return a.Args[0]
			}
		}
		return rtl.BOp{Kind: logic.Not, Args: args}

	case logic.And, logic.Nand:
		live := make([]rtl.BitExpr, 0, len(args))
		for _, a := range args {
			if c, ok := a.(rtl.BConst); ok {
				if !c.V {
					return rtl.BConst{V: kind == logic.Nand}
				}
				continue // drop constant 1
			}
			live = append(live, a)
		}
		switch len(live) {
		case 0:
			return rtl.BConst{V: kind == logic.Nand}
		case 1:
			if kind == logic.Nand {
				return fold(logic.Not, live[0])
			}
			return live[0]
		}
		return rtl.BOp{Kind: kind, Args: live}

	case logic.Or, logic.Nor:
		live := make([]rtl.BitExpr, 0, len(args))
		for _, a := range args {
			if c, ok := a.(rtl.BConst); ok {
				if c.V {
					return rtl.BConst{V: kind == logic.Nor}
				}
				continue // drop constant 0
			}
			live = append(live, a)
		}
		switch len(live) {
		case 0:
			return rtl.BConst{V: kind == logic.Nor}
		case 1:
			if kind == logic.Nor {
				return fold(logic.Not, live[0])
			}
			return live[0]
		}
		return rtl.BOp{Kind: kind, Args: live}

	case logic.Xor, logic.Xnor:
		parityFlip := kind == logic.Xnor
		live := make([]rtl.BitExpr, 0, len(args))
		for _, a := range args {
			if c, ok := a.(rtl.BConst); ok {
				if c.V {
					parityFlip = !parityFlip
				}
				continue
			}
			live = append(live, a)
		}
		switch len(live) {
		case 0:
			return rtl.BConst{V: parityFlip}
		case 1:
			if parityFlip {
				return fold(logic.Not, live[0])
			}
			return live[0]
		}
		k := logic.Xor
		if parityFlip {
			k = logic.Xnor
		}
		return rtl.BOp{Kind: k, Args: live}

	case logic.Mux2:
		sel, a, b := args[0], args[1], args[2]
		if sc, ok := sel.(rtl.BConst); ok {
			if sc.V {
				return b
			}
			return a
		}
		ac, aConst := a.(rtl.BConst)
		bc, bConst := b.(rtl.BConst)
		switch {
		case aConst && bConst && ac.V == bc.V:
			return ac
		case aConst && bConst: // sel ? b : a with a != b
			if bc.V {
				return sel // sel ? 1 : 0
			}
			return fold(logic.Not, sel) // sel ? 0 : 1
		case bConst && bc.V:
			return fold(logic.Or, sel, a)
		case bConst:
			return fold(logic.And, fold(logic.Not, sel), a)
		case aConst && ac.V:
			return fold(logic.Or, fold(logic.Not, sel), b)
		case aConst:
			return fold(logic.And, sel, b)
		}
		return rtl.BOp{Kind: logic.Mux2, Args: args}

	case logic.Aoi21: // !((a&b)|c)
		a, b, c := args[0], args[1], args[2]
		if cc, ok := c.(rtl.BConst); ok {
			if cc.V {
				return rtl.BConst{V: false}
			}
			return fold(logic.Nand, a, b)
		}
		if ac, ok := a.(rtl.BConst); ok {
			if ac.V {
				return fold(logic.Nor, b, c)
			}
			return fold(logic.Not, c)
		}
		if bc, ok := b.(rtl.BConst); ok {
			if bc.V {
				return fold(logic.Nor, a, c)
			}
			return fold(logic.Not, c)
		}
		return rtl.BOp{Kind: logic.Aoi21, Args: args}

	case logic.Oai21: // !((a|b)&c)
		a, b, c := args[0], args[1], args[2]
		if cc, ok := c.(rtl.BConst); ok {
			if !cc.V {
				return rtl.BConst{V: true}
			}
			return fold(logic.Nor, a, b)
		}
		if ac, ok := a.(rtl.BConst); ok {
			if !ac.V {
				return fold(logic.Nand, b, c)
			}
			return fold(logic.Not, c)
		}
		if bc, ok := b.(rtl.BConst); ok {
			if !bc.V {
				return fold(logic.Nand, a, c)
			}
			return fold(logic.Not, c)
		}
		return rtl.BOp{Kind: logic.Oai21, Args: args}
	}
	return rtl.BOp{Kind: kind, Args: args}
}
