package synth

import (
	"fmt"
	"strconv"
	"strings"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/rtl"
)

// emitter converts bit-level expressions into gates with gate-level common
// subexpression elimination; internal nets get synthetic U-numbered names
// (net name == driving gate name, as in the paper's figures).
type emitter struct {
	nl     *netlist.Netlist
	sig    map[string][]netlist.NetID // signal name -> bit nets
	memo   map[string]netlist.NetID   // canonical op key -> net
	consts [2]netlist.NetID
	unum   int
}

func newEmitter(nl *netlist.Netlist, firstU int) *emitter {
	return &emitter{
		nl:     nl,
		sig:    make(map[string][]netlist.NetID),
		memo:   make(map[string]netlist.NetID),
		consts: [2]netlist.NetID{netlist.NoNet, netlist.NoNet},
		unum:   firstU - 1,
	}
}

func (em *emitter) fresh() (string, netlist.NetID) {
	em.unum++
	name := "U" + strconv.Itoa(em.unum)
	return name, em.nl.MustNet(name)
}

func (em *emitter) constNet(v bool) netlist.NetID {
	idx := 0
	if v {
		idx = 1
	}
	if em.consts[idx] == netlist.NoNet {
		id := em.nl.MustNet(fmt.Sprintf("$const%d", idx))
		em.nl.MarkPI(id)
		em.consts[idx] = id
	}
	return em.consts[idx]
}

// emit lowers a bit expression to a net, sharing structurally identical
// subexpressions (CSE).
func (em *emitter) emit(be rtl.BitExpr) (netlist.NetID, error) {
	switch n := be.(type) {
	case rtl.BRef:
		nets, ok := em.sig[n.Name]
		if !ok {
			return netlist.NoNet, fmt.Errorf("undefined signal %q", n.Name)
		}
		if n.Bit < 0 || n.Bit >= len(nets) {
			return netlist.NoNet, fmt.Errorf("bit %d out of range for %q", n.Bit, n.Name)
		}
		return nets[n.Bit], nil
	case rtl.BConst:
		return em.constNet(n.V), nil
	case rtl.BOp:
		args, err := em.emitArgs(n.Args)
		if err != nil {
			return netlist.NoNet, err
		}
		key := opKey(n.Kind, args)
		if id, ok := em.memo[key]; ok {
			return id, nil
		}
		name, out := em.fresh()
		if _, err := em.nl.AddGate(name, n.Kind, out, args...); err != nil {
			return netlist.NoNet, err
		}
		em.memo[key] = out
		return out, nil
	default:
		return netlist.NoNet, fmt.Errorf("unknown bit expression %T", be)
	}
}

func (em *emitter) emitArgs(argExprs []rtl.BitExpr) ([]netlist.NetID, error) {
	args := make([]netlist.NetID, len(argExprs))
	for i, a := range argExprs {
		n, err := em.emit(a)
		if err != nil {
			return nil, err
		}
		args[i] = n
	}
	return args, nil
}

// opKey is the CSE key: gate kind plus argument net IDs. Commutative kinds
// sort their arguments so a&b and b&a share.
func opKey(kind logic.Kind, args []netlist.NetID) string {
	ids := append([]netlist.NetID(nil), args...)
	switch kind {
	case logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor:
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(kind.String())
	for _, id := range ids {
		sb.WriteByte(',')
		sb.WriteString(strconv.Itoa(int(id)))
	}
	return sb.String()
}

// emitRegister performs the ordered per-register emission: every bit's
// internal gates first, then the per-bit root gates consecutively, then the
// flip-flops. It returns the D-input nets (the word bits).
func (em *emitter) emitRegister(r *rtl.Reg, bits []rtl.BitExpr) ([]netlist.NetID, error) {
	type rootSpec struct {
		direct netlist.NetID // set when the bit has no root gate
		kind   logic.Kind
		args   []netlist.NetID
	}
	specs := make([]rootSpec, len(bits))

	// Phase 1: internals.
	for i, be := range bits {
		switch n := be.(type) {
		case rtl.BOp:
			args, err := em.emitArgs(n.Args)
			if err != nil {
				return nil, err
			}
			specs[i] = rootSpec{direct: netlist.NoNet, kind: n.Kind, args: args}
		default:
			id, err := em.emit(be)
			if err != nil {
				return nil, err
			}
			specs[i] = rootSpec{direct: id}
		}
	}

	// Phase 2: root gates, consecutively. Roots are always fresh gates —
	// never CSE-shared — so each word bit is a distinct net and the roots
	// sit on adjacent netlist lines.
	roots := make([]netlist.NetID, len(bits))
	for i, spec := range specs {
		if spec.direct != netlist.NoNet {
			roots[i] = spec.direct
			continue
		}
		name, out := em.fresh()
		if _, err := em.nl.AddGate(name, spec.kind, out, spec.args...); err != nil {
			return nil, err
		}
		roots[i] = out
	}

	// Phase 3: flip-flops.
	outs := em.sig[r.Name]
	for i, d := range roots {
		gname := em.nl.NetName(outs[i])
		if _, err := em.nl.AddGate(gname, logic.DFF, outs[i], d); err != nil {
			return nil, err
		}
	}
	return roots, nil
}
