package synth

import (
	"strings"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/rtl"
	"gatewords/internal/verilog"
)

func TestRegStyleOverride(t *testing.T) {
	d := &rtl.Design{
		Name:   "m",
		Inputs: []rtl.Signal{{Name: "a", Width: 2}, {Name: "b", Width: 2}, {Name: "s", Width: 1}},
		Regs: []*rtl.Reg{
			{Name: "r1", Width: 2, Next: rtl.Mux{Sel: rtl.Ref{Name: "s"}, A: rtl.Ref{Name: "a"}, B: rtl.Ref{Name: "b"}}},
			{Name: "r2", Width: 2, Next: rtl.Mux{Sel: rtl.Ref{Name: "s"}, A: rtl.Ref{Name: "a"}, B: rtl.Ref{Name: "b"}}},
		},
	}
	res, err := Synthesize(d, Options{
		MuxStyle:  MuxCell,
		RegStyles: map[string]MuxStyle{"r2": MuxNand},
	})
	if err != nil {
		t.Fatal(err)
	}
	nl := res.NL
	kindOf := func(reg string) logic.Kind {
		d := nl.Net(res.RegRoots[reg][0]).Driver
		return nl.Gate(d).Kind
	}
	if kindOf("r1") != logic.Mux2 {
		t.Errorf("r1 root = %s, want MUX2", kindOf("r1"))
	}
	if kindOf("r2") != logic.Nand {
		t.Errorf("r2 root = %s, want NAND (override)", kindOf("r2"))
	}
}

func TestFirstUNumber(t *testing.T) {
	d := &rtl.Design{
		Name:   "m",
		Inputs: []rtl.Signal{{Name: "a", Width: 2}},
		Regs:   []*rtl.Reg{{Name: "r", Width: 2, Next: rtl.Not{A: rtl.Ref{Name: "a"}}}},
	}
	res, err := Synthesize(d, Options{FirstUNumber: 500})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.NL.NetByName("U500"); !ok {
		t.Error("numbering did not start at U500")
	}
	if _, ok := res.NL.NetByName("U100"); ok {
		t.Error("default numbering leaked")
	}
}

func TestConstSurvivesAsTie(t *testing.T) {
	// A register bit tied to a constant keeps a tie-off net.
	d := &rtl.Design{
		Name:   "m",
		Inputs: []rtl.Signal{{Name: "a", Width: 1}},
		Regs: []*rtl.Reg{{Name: "r", Width: 2,
			NextBits: []rtl.BitExpr{rtl.Bit("a", 0), rtl.BConst{V: true}}}},
	}
	res, err := Synthesize(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.NL.NetByName("$const1"); !ok {
		t.Error("tie-off net missing")
	}
	if res.RegRoots["r"][1] != mustNet(t, res, "$const1") {
		t.Error("D net not tied to the constant")
	}
}

func mustNet(t *testing.T, res *Result, name string) netlist.NetID {
	t.Helper()
	n, ok := res.NL.NetByName(name)
	if !ok {
		t.Fatalf("net %s missing", name)
	}
	return n
}

func TestMaxFaninControlsReductionTrees(t *testing.T) {
	d := &rtl.Design{
		Name:    "m",
		Inputs:  []rtl.Signal{{Name: "a", Width: 9}},
		Outputs: []rtl.Output{{Name: "o", Expr: rtl.RedOr{A: rtl.Ref{Name: "a"}}}},
	}
	wide, err := Synthesize(d, Options{MaxFanin: 9})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Synthesize(d, Options{MaxFanin: 2})
	if err != nil {
		t.Fatal(err)
	}
	if wide.NL.ComputeStats().Gates >= narrow.NL.ComputeStats().Gates {
		t.Errorf("fanin cap did not change tree shape: %d vs %d gates",
			wide.NL.ComputeStats().Gates, narrow.NL.ComputeStats().Gates)
	}
	if wide.NL.ComputeStats().MaxFanin != 9 {
		t.Errorf("max fanin %d", wide.NL.ComputeStats().MaxFanin)
	}
}

func TestSynthesizeErrorPaths(t *testing.T) {
	// Wire with neither Expr nor Bits fails validation inside Synthesize.
	d := &rtl.Design{Name: "m", Wires: []rtl.Wire{{Name: "w", Width: 1}}}
	if _, err := Synthesize(d, Options{}); err == nil {
		t.Error("invalid wire accepted")
	}
	// Unknown signal in an output expression.
	d = &rtl.Design{Name: "m", Outputs: []rtl.Output{{Name: "o", Expr: rtl.Ref{Name: "ghost"}}}}
	if _, err := Synthesize(d, Options{}); err == nil {
		t.Error("undefined output ref accepted")
	}
}

func TestDirectRegisterConnection(t *testing.T) {
	// A register bit wired straight to another signal (shift style) has no
	// root gate; the D net is the source itself.
	d := &rtl.Design{
		Name:   "m",
		Inputs: []rtl.Signal{{Name: "si", Width: 1}},
		Regs: []*rtl.Reg{{Name: "r", Width: 3, NextBits: []rtl.BitExpr{
			rtl.Bit("si", 0),
			rtl.Bit("r", 0),
			rtl.Bit("r", 1),
		}}},
	}
	res, err := Synthesize(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl := res.NL
	if nl.NetName(res.RegRoots["r"][0]) != "si" {
		t.Errorf("bit 0 D = %s", nl.NetName(res.RegRoots["r"][0]))
	}
	if nl.NetName(res.RegRoots["r"][1]) != "r_reg[0]" {
		t.Errorf("bit 1 D = %s", nl.NetName(res.RegRoots["r"][1]))
	}
	text, err := verilog.WriteString(nl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "DFF") {
		t.Error("no DFFs emitted")
	}
}
