package synth

import (
	"math/rand"
	"strings"
	"testing"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/rtl"
	"gatewords/internal/sim"
	"gatewords/internal/verilog"
)

// testDesign exercises every word-level operator.
func testDesign() *rtl.Design {
	return &rtl.Design{
		Name: "dut",
		Inputs: []rtl.Signal{
			{Name: "a", Width: 4}, {Name: "b", Width: 4},
			{Name: "en", Width: 1}, {Name: "rst", Width: 1},
		},
		Wires: []rtl.Wire{
			{Name: "sum", Width: 4, Expr: rtl.Add{A: rtl.Ref{Name: "a"}, B: rtl.Ref{Name: "b"}}},
			{Name: "sel", Width: 1, Bits: []rtl.BitExpr{rtl.B(logic.Nand, rtl.Bit("en", 0), rtl.Bit("rst", 0))}},
		},
		Regs: []*rtl.Reg{
			{Name: "acc", Width: 4, Next: rtl.Mux{Sel: rtl.Ref{Name: "sel"}, A: rtl.Ref{Name: "acc"}, B: rtl.Ref{Name: "sum"}}},
			{Name: "cnt", Width: 3, Next: rtl.Inc{A: rtl.Ref{Name: "cnt"}}},
			{Name: "mask", Width: 4, Next: rtl.Bin{Kind: logic.Xor, A: rtl.Ref{Name: "acc"}, B: rtl.Not{A: rtl.Ref{Name: "b"}}}},
			{Name: "ld", Width: 4, Next: rtl.Mux{Sel: rtl.Ref{Name: "rst"}, A: rtl.Ref{Name: "acc"}, B: rtl.Const{Bits: []bool{false, true, true, false}}}},
		},
		Outputs: []rtl.Output{
			{Name: "full", Expr: rtl.EqConst{A: rtl.Ref{Name: "cnt"}, K: 5}},
			{Name: "any", Expr: rtl.RedOr{A: rtl.Ref{Name: "acc"}}},
		},
	}
}

// driveAndCompare simulates the synthesized netlist under random vectors
// and checks every register's next state and every output against the RTL
// reference evaluator.
func driveAndCompare(t *testing.T, d *rtl.Design, opt Options, vectors int, seed int64) {
	t.Helper()
	res, err := Synthesize(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	nl := res.NL
	s, err := sim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Map FF index -> (reg, bit) through output net names.
	dffs := nl.DFFs()
	rng := rand.New(rand.NewSource(seed))

	for vec := 0; vec < vectors; vec++ {
		env := rtl.Env{}
		for _, in := range d.Inputs {
			bits := make([]logic.Value, in.Width)
			for i := range bits {
				bits[i] = logic.FromBool(rng.Intn(2) == 1)
			}
			env[in.Name] = bits
		}
		for _, r := range d.Regs {
			bits := make([]logic.Value, r.Width)
			for i := range bits {
				bits[i] = logic.FromBool(rng.Intn(2) == 1)
			}
			env[r.Name] = bits
		}
		// Reference result.
		_, nextRegs, outs, err := d.EvalStep(env)
		if err != nil {
			t.Fatal(err)
		}
		// Drive the netlist.
		for _, in := range d.Inputs {
			for i, v := range env[in.Name] {
				id, ok := nl.NetByName(portBit(in.Name, i, in.Width))
				if !ok {
					t.Fatalf("input net %s missing", portBit(in.Name, i, in.Width))
				}
				if err := s.SetInput(id, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		if opt.InsertScan {
			for _, n := range []string{"scan_en", "scan_in"} {
				id, _ := nl.NetByName(n)
				if err := s.SetInput(id, logic.Zero); err != nil {
					t.Fatal(err)
				}
			}
		}
		for fi, g := range dffs {
			qname := nl.NetName(nl.Gate(g).Output)
			set := false
			for _, r := range d.Regs {
				for i := 0; i < r.Width; i++ {
					if qname == regBitName(r.Name, i, r.Width) {
						s.SetState(fi, env[r.Name][i])
						set = true
					}
				}
			}
			if !set {
				t.Fatalf("FF %s not mapped to a register", qname)
			}
		}
		s.Settle()
		// Compare next-state on the D nets.
		for _, r := range d.Regs {
			for i, dnet := range res.RegRoots[r.Name] {
				got := s.Value(dnet)
				want := nextRegs[r.Name][i]
				if got != want {
					t.Fatalf("vec %d: %s bit %d: netlist %s, rtl %s", vec, r.Name, i, got, want)
				}
			}
		}
		for _, o := range d.Outputs {
			want := outs[o.Name]
			for i, w := range want {
				id, ok := nl.NetByName(portBit(o.Name, i, len(want)))
				if !ok {
					t.Fatalf("output net missing")
				}
				if got := s.Value(id); got != w {
					t.Fatalf("vec %d: output %s bit %d: netlist %s, rtl %s", vec, o.Name, i, got, w)
				}
			}
		}
	}
}

func regBitName(name string, i, w int) string { return regBit(name, i, w) }

func TestSynthesisMatchesRTL(t *testing.T) {
	for _, style := range []MuxStyle{MuxCell, MuxNand, MuxAoi} {
		driveAndCompare(t, testDesign(), Options{MuxStyle: style}, 24, int64(style)+1)
	}
}

func TestSynthesisValidatesAndRoundTrips(t *testing.T) {
	res, err := Synthesize(testDesign(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.NL.Validate(); err != nil {
		t.Fatal(err)
	}
	text, err := verilog.WriteString(res.NL)
	if err != nil {
		t.Fatal(err)
	}
	back, err := verilog.Parse("dut.v", text)
	if err != nil {
		t.Fatalf("emitted Verilog does not re-parse: %v", err)
	}
	if back.GateCount() != res.NL.GateCount() {
		t.Errorf("round trip gate count %d != %d", back.GateCount(), res.NL.GateCount())
	}
}

func TestRegisterNamingConventions(t *testing.T) {
	res, err := Synthesize(testDesign(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"acc_reg[0]", "acc_reg[3]", "cnt_reg[2]", "ld_reg[0]"} {
		if _, ok := res.NL.NetByName(name); !ok {
			t.Errorf("FF output %s missing", name)
		}
	}
	// 1-bit registers get the bare _reg suffix (no index).
	d := &rtl.Design{
		Name:   "flag",
		Inputs: []rtl.Signal{{Name: "a", Width: 1}},
		Regs:   []*rtl.Reg{{Name: "f", Width: 1, Next: rtl.Not{A: rtl.Ref{Name: "a"}}}},
	}
	res, err = Synthesize(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.NL.NetByName("f_reg"); !ok {
		t.Error("1-bit register must be named f_reg")
	}
}

func TestCSESharesCarryChain(t *testing.T) {
	// An 8-bit adder with shared carries stays linear in width: well under
	// the ~8 gates/bit of an unshared unfolding, and each carry term is
	// emitted once.
	d := &rtl.Design{
		Name:   "add8",
		Inputs: []rtl.Signal{{Name: "a", Width: 8}, {Name: "b", Width: 8}},
		Regs:   []*rtl.Reg{{Name: "s", Width: 8, Next: rtl.Add{A: rtl.Ref{Name: "a"}, B: rtl.Ref{Name: "b"}}}},
	}
	res, err := Synthesize(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.NL.ComputeStats()
	if st.Gates > 8*6 {
		t.Errorf("adder not shared: %d gates", st.Gates)
	}
}

func TestRootGatesAdjacent(t *testing.T) {
	res, err := Synthesize(testDesign(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl := res.NL
	for reg, roots := range res.RegRoots {
		var ids []netlist.GateID
		for _, d := range roots {
			g := nl.Net(d).Driver
			if g == netlist.NoGate {
				t.Fatalf("%s: D net without driver", reg)
			}
			ids = append(ids, g)
		}
		for i := 1; i < len(ids); i++ {
			if ids[i] != ids[i-1]+1 {
				t.Errorf("%s: root gates not adjacent: %v", reg, ids)
				break
			}
		}
	}
}

func TestInsertScan(t *testing.T) {
	d := testDesign()
	res, err := Synthesize(d, Options{InsertScan: true})
	if err != nil {
		t.Fatal(err)
	}
	nl := res.NL
	for _, n := range []string{"scan_en", "scan_in", "scan_out"} {
		if _, ok := nl.NetByName(n); !ok {
			t.Fatalf("scan net %s missing", n)
		}
	}
	// Functional mode (scan_en = 0) must still match the RTL reference.
	driveAndCompare(t, d, Options{InsertScan: true}, 16, 99)

	// Shift mode: with scan_en = 1, every D input equals the previous
	// element of the chain.
	s, err := sim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, pi := range nl.PIs() {
		if err := s.SetInput(pi, logic.FromBool(rng.Intn(2) == 1)); err != nil {
			t.Fatal(err)
		}
	}
	se, _ := nl.NetByName("scan_en")
	siNet, _ := nl.NetByName("scan_in")
	if err := s.SetInput(se, logic.One); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInput(siNet, logic.One); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.StateCount(); i++ {
		s.SetState(i, logic.Zero)
	}
	s.Settle()
	// The first flip-flop in the chain must see scan_in on its D pin.
	firstReg := d.Regs[0].Name
	if got := s.Value(res.RegRoots[firstReg][0]); got != logic.One {
		t.Errorf("scan shift: first D = %s, want 1 (scan_in)", got)
	}
	if got := s.Value(res.RegRoots[firstReg][1]); got != logic.Zero {
		t.Errorf("scan shift: second D = %s, want 0 (previous stage)", got)
	}
}

func TestSynthesizeRejectsInvalidDesign(t *testing.T) {
	d := &rtl.Design{Name: "bad", Regs: []*rtl.Reg{{Name: "r", Width: 1}}}
	if _, err := Synthesize(d, Options{}); err == nil {
		t.Error("invalid design accepted")
	}
}

func TestEmitterDeterminism(t *testing.T) {
	a, err := Synthesize(testDesign(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(testDesign(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := verilog.WriteString(a.NL)
	sb, _ := verilog.WriteString(b.NL)
	if sa != sb {
		t.Error("synthesis is not deterministic")
	}
	if !strings.Contains(sa, "module dut") {
		t.Error("unexpected output")
	}
}
