package synth

import (
	"fmt"

	"gatewords/internal/logic"
	"gatewords/internal/netlist"
	"gatewords/internal/rtl"
)

// Options configures the synthesis flow.
type Options struct {
	// MuxStyle is the default mux mapping style.
	MuxStyle MuxStyle
	// RegStyles overrides the mux style per register name.
	RegStyles map[string]MuxStyle
	// MaxFanin caps gate fanin for reduction trees (default 3).
	MaxFanin int
	// InsertScan threads a scan chain through all flip-flops: each D input
	// is wrapped in a mux selecting between functional data and the
	// previous flip-flop's output under a new "scan_en" primary input.
	// This models the CAD-inserted control signals the paper discusses.
	InsertScan bool
	// ScanStyle is the mapping style for scan muxes (default MuxCell).
	ScanStyle MuxStyle
	// FirstUNumber seeds the synthetic net/gate numbering (default 100,
	// echoing the U-numbered nets of the paper's figures).
	FirstUNumber int
}

func (o Options) withDefaults() Options {
	if o.MaxFanin < 2 {
		o.MaxFanin = 3
	}
	if o.FirstUNumber <= 0 {
		o.FirstUNumber = 100
	}
	return o
}

// Result is the synthesis output.
type Result struct {
	NL *netlist.Netlist
	// RegRoots maps each register name to the D-input nets of its bits —
	// the nets a word-identification technique should discover as a word.
	RegRoots map[string][]netlist.NetID
	// WireNets maps each declared wire name to its bit nets.
	WireNets map[string][]netlist.NetID
}

// Synthesize lowers and maps the design. The resulting netlist validates
// and preserves register names on flip-flop outputs ("<reg>_reg[i]").
func Synthesize(d *rtl.Design, opt Options) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	widths, err := d.Widths()
	if err != nil {
		return nil, err
	}
	em := newEmitter(netlist.New(d.Name), opt.FirstUNumber)
	res := &Result{
		NL:       em.nl,
		RegRoots: make(map[string][]netlist.NetID),
		WireNets: make(map[string][]netlist.NetID),
	}

	// Primary inputs.
	for _, in := range d.Inputs {
		nets := make([]netlist.NetID, in.Width)
		for i := range nets {
			nets[i] = em.nl.MustNet(portBit(in.Name, i, in.Width))
			em.nl.MarkPI(nets[i])
		}
		em.sig[in.Name] = nets
	}
	if opt.InsertScan {
		for _, name := range []string{"scan_en", "scan_in"} {
			id := em.nl.MustNet(name)
			em.nl.MarkPI(id)
			em.sig[name] = []netlist.NetID{id}
			widths[name] = 1
		}
	}

	// Register output nets exist before any logic references them.
	for _, r := range d.Regs {
		nets := make([]netlist.NetID, r.Width)
		for i := range nets {
			nets[i] = em.nl.MustNet(regBit(r.Name, i, r.Width))
		}
		em.sig[r.Name] = nets
	}

	// Shared wires, in declaration order.
	for i := range d.Wires {
		w := &d.Wires[i]
		bits, err := wireBits(w, widths, opt)
		if err != nil {
			return nil, err
		}
		nets := make([]netlist.NetID, len(bits))
		for bi, be := range bits {
			n, err := em.emit(be)
			if err != nil {
				return nil, fmt.Errorf("synth %s: wire %q bit %d: %w", d.Name, w.Name, bi, err)
			}
			nets[bi] = n
		}
		em.sig[w.Name] = nets
		res.WireNets[w.Name] = nets
	}

	// Registers: per register, internals first, then the per-bit root
	// gates consecutively, then the flip-flops. This emission order is what
	// makes the bits of one word adjacent in the netlist file.
	scanPrev := rtl.BitExpr(nil)
	if opt.InsertScan {
		scanPrev = rtl.BRef{Name: "scan_in", Bit: 0}
	}
	for _, r := range d.Regs {
		bits := r.NextBits
		if r.Next != nil {
			style := opt.MuxStyle
			if s, ok := opt.RegStyles[r.Name]; ok {
				style = s
			}
			bits, err = lowerExpr(r.Next, widths, style, opt.MaxFanin)
			if err != nil {
				return nil, fmt.Errorf("synth %s: register %q: %w", d.Name, r.Name, err)
			}
		}
		if opt.InsertScan {
			wrapped := make([]rtl.BitExpr, len(bits))
			for i, be := range bits {
				wrapped[i] = lowerMux(rtl.BRef{Name: "scan_en", Bit: 0}, be, scanPrev, opt.ScanStyle)
				scanPrev = rtl.BRef{Name: r.Name, Bit: i}
			}
			bits = wrapped
		}
		roots, err := em.emitRegister(r, bits)
		if err != nil {
			return nil, fmt.Errorf("synth %s: register %q: %w", d.Name, r.Name, err)
		}
		res.RegRoots[r.Name] = roots
	}

	// Outputs: each bit is buffered into a named PO net.
	for _, o := range d.Outputs {
		bits, err := lowerExpr(o.Expr, widths, opt.MuxStyle, opt.MaxFanin)
		if err != nil {
			return nil, fmt.Errorf("synth %s: output %q: %w", d.Name, o.Name, err)
		}
		for bi, be := range bits {
			src, err := em.emit(be)
			if err != nil {
				return nil, fmt.Errorf("synth %s: output %q bit %d: %w", d.Name, o.Name, bi, err)
			}
			po := em.nl.MustNet(portBit(o.Name, bi, len(bits)))
			em.nl.MarkPO(po)
			em.unum++
			if _, err := em.nl.AddGate(fmt.Sprintf("U%d", em.unum), logic.Buf, po, src); err != nil {
				return nil, err
			}
		}
	}
	if opt.InsertScan {
		// Observe the end of the scan chain.
		last, err := em.emit(scanPrev)
		if err != nil {
			return nil, err
		}
		po := em.nl.MustNet("scan_out")
		em.nl.MarkPO(po)
		em.unum++
		if _, err := em.nl.AddGate(fmt.Sprintf("U%d", em.unum), logic.Buf, po, last); err != nil {
			return nil, err
		}
	}

	if err := em.nl.Validate(); err != nil {
		return nil, fmt.Errorf("synth %s: produced invalid netlist: %w", d.Name, err)
	}
	return res, nil
}

func wireBits(w *rtl.Wire, widths map[string]int, opt Options) ([]rtl.BitExpr, error) {
	if w.Bits != nil {
		return w.Bits, nil
	}
	return lowerExpr(w.Expr, widths, opt.MuxStyle, opt.MaxFanin)
}

// portBit names a port net: plain for 1-bit signals, indexed otherwise.
func portBit(name string, i, width int) string {
	if width == 1 {
		return name
	}
	return fmt.Sprintf("%s[%d]", name, i)
}

// regBit names a flip-flop output net, preserving the register name the way
// the paper's synthesis setup does.
func regBit(name string, i, width int) string {
	if width == 1 {
		return name + "_reg"
	}
	return fmt.Sprintf("%s_reg[%d]", name, i)
}
